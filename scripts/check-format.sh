#!/usr/bin/env bash
# Check-only formatting gate: reports files that deviate from .clang-format
# without rewriting anything. Exits 0 when clang-format is unavailable so
# developer machines without LLVM tooling aren't blocked; CI installs the
# tool and enforces the real verdict.
#
# Usage: scripts/check-format.sh [clang-format-binary]
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${1:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check-format: $CLANG_FORMAT not found; skipping (install LLVM tools to run locally)"
  exit 0
fi

status=0
bad=0
checked=0
while IFS= read -r -d '' file; do
  checked=$((checked + 1))
  if ! "$CLANG_FORMAT" --dry-run -Werror "$file" >/dev/null 2>&1; then
    echo "needs formatting: $file"
    bad=$((bad + 1))
    status=1
  fi
done < <(find src tests bench examples \
              \( -name '*.cpp' -o -name '*.h' \) -print0 | sort -z)

echo "check-format: $checked files checked, $bad need formatting"
exit "$status"
