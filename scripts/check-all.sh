#!/usr/bin/env bash
# One entry point for every source-level static gate: formatting and the
# pagen-lint architecture-contract checker (with its self-test, so a broken
# rule fails the same gate as a broken contract). Compile-time gates —
# clang-tidy, -Werror, sanitizers — live in the build presets and CI jobs;
# this script is the part that needs no compiler.
#
# Usage: scripts/check-all.sh [clang-format-binary]
set -u

cd "$(dirname "$0")/.."

status=0

echo "== check-format =="
if ! ./scripts/check-format.sh "${1:-clang-format}"; then
  status=1
fi

echo "== pagen-lint self-test =="
if ! python3 ./scripts/pagen-lint --self-test; then
  status=1
fi

echo "== pagen-lint src =="
if ! python3 ./scripts/pagen-lint src; then
  status=1
fi

if [ "$status" -ne 0 ]; then
  echo "check-all: FAILED"
else
  echo "check-all: all gates clean"
fi
exit "$status"
