// Extension: in-memory distributed analytics (Section 3.2's "generate
// networks on the fly and analyze ... without performing disk I/O").
//
// Three pipelines over the same workload:
//  (a) gather-then-analyze — edges concatenated centrally, degrees counted
//      on one rank (the naive route);
//  (b) distributed degree pass — per-rank shards, increment messages for
//      remote endpoints, histogram allgather (core/distributed_degree.h);
//  (c) streaming sinks — degrees accumulated during generation, no edge
//      storage at all.
#include <iostream>
#include <vector>

#include "analysis/degree_dist.h"
#include "core/distributed_degree.h"
#include "core/generate.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ext_distributed_analysis") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 1000000);
  cfg.x = cli.get_u64("x", 4);
  cfg.seed = cli.get_u64("seed", 3);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 8));

  std::cout << "=== Extension: analytics without disk I/O (n="
            << fmt_count(cfg.n) << ", x=" << cfg.x << ", P=" << ranks
            << ") ===\n\n";

  Table t({"pipeline", "gen+analyze_s", "peak edge storage", "hist rows"});

  // (a) centralized
  {
    Timer timer;
    core::ParallelOptions opt;
    opt.ranks = ranks;
    const auto result = core::generate(cfg, opt);
    const auto deg = graph::degree_sequence(result.edges, cfg.n);
    const auto hist = analysis::degree_distribution(deg);
    t.add_row({"(a) gather centrally", fmt_f(timer.seconds(), 2),
               fmt_count(result.edges.size()) + " edges",
               std::to_string(hist.size())});
  }

  // (b) distributed pass over shards
  {
    Timer timer;
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.gather_edges = false;
    opt.keep_shards = true;
    const auto result = core::generate(cfg, opt);
    const auto hist = core::distributed_degree_distribution(
        result.shards, cfg.n, opt.scheme);
    Count max_shard = 0;
    for (const auto& s : result.shards) max_shard = std::max<Count>(max_shard, s.size());
    t.add_row({"(b) distributed degree pass", fmt_f(timer.seconds(), 2),
               fmt_count(max_shard) + " edges/rank",
               std::to_string(hist.size())});
  }

  // (c) streaming sinks
  {
    Timer timer;
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.gather_edges = false;
    std::vector<std::vector<Count>> deg_per_rank(
        static_cast<std::size_t>(ranks), std::vector<Count>(cfg.n, 0));
    opt.edge_sink = [&](Rank r, const graph::Edge& e) {
      auto& deg = deg_per_rank[static_cast<std::size_t>(r)];
      ++deg[e.u];
      ++deg[e.v];
    };
    (void)core::generate(cfg, opt);
    std::vector<Count> deg(cfg.n, 0);
    for (const auto& bucket : deg_per_rank) {
      for (NodeId v = 0; v < cfg.n; ++v) deg[v] += bucket[v];
    }
    const auto hist = analysis::degree_distribution(deg);
    t.add_row({"(c) streaming sinks", fmt_f(timer.seconds(), 2), "0 edges",
               std::to_string(hist.size())});
  }

  t.print(std::cout);
  std::cout << "\nall three pipelines produce the identical histogram; (b)\n"
            << "and (c) never materialize the global edge list — the\n"
            << "workflow the paper's Section 3.2 anticipates for analysts.\n";
  return 0;
}
