// Ablation: duplicate-avoidance cost as density grows (Algorithm 3.2's
// Lines 7-10 and 21-29).
//
// Sweeps x at fixed n and reports duplicate retries, their share per edge,
// the deepest wait queue observed, and per-edge message counts — the
// quantities that determine how much the general algorithm pays over the
// x = 1 special case.
#include <iostream>

#include "core/generate.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ablation_retries") << "\n";
    return 0;
  }
  const NodeId n = cli.get_u64("n", 200000);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 16));
  const std::uint64_t seed = cli.get_u64("seed", 12);

  std::cout << "=== Ablation: duplicate retries and queue depth vs x ===\n"
            << "n=" << fmt_count(n) << " P=" << ranks << " (RRP)\n\n";

  Table t({"x", "edges", "retries", "retries/edge", "max_queue", "msgs/edge",
           "wall_s"});
  for (NodeId x : {NodeId{1}, NodeId{2}, NodeId{4}, NodeId{8}, NodeId{16},
                   NodeId{32}}) {
    PaConfig cfg{.n = n, .x = x, .p = 0.5, .seed = seed};
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.gather_edges = false;
    Timer timer;
    const auto result = core::generate(cfg, opt);
    const double secs = timer.seconds();
    Count retries = 0, msgs = 0, max_queue = 0;
    for (const auto& l : result.loads) {
      retries += l.retries;
      msgs += l.total_messages();
      max_queue = std::max(max_queue, l.max_queue_depth);
    }
    const auto edges = static_cast<double>(result.total_edges);
    t.add_row({std::to_string(x), fmt_count(result.total_edges),
               fmt_count(retries), fmt_f(static_cast<double>(retries) / edges, 4),
               fmt_count(max_queue), fmt_f(static_cast<double>(msgs) / edges, 2),
               fmt_f(secs, 2)});
  }
  t.print(std::cout);

  std::cout << "\nshape: retries stay a tiny per-edge fraction even at high x\n"
            << "(duplicates need the uniform draw to re-hit one of the same\n"
            << "x endpoints); the deepest wait queue tracks the most popular\n"
            << "unresolved hub, not n; messages/edge stays ~2(1-p).\n";
  return 0;
}
