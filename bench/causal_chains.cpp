// Causal-chain reconstruction vs Theorem 3.3 oracle (observability bench).
//
// Runs the x = 1 distributed generator with causal tracing enabled across a
// sweep of n, reconstructs the dependency-chain distribution offline from
// the merged per-rank flow/chain events (obs/causal.h), and cross-checks it
// against the sequential ChainTrace oracle — the same recursion
// bench/thm33_dependency_chains tabulates. A deterministic run must match
// EXACTLY: same record count (n - 2), same sum, same maximum. The table
// also shows the Theorem 3.3 shape on the *traced* data: max_L stays under
// 5 ln(n), i.e. the reconstruction reproduces the O(log n) trend, not just
// the totals.
//
//   ./causal_chains                      # sweep n = 1e4, 1e5, 1e6
//   ./causal_chains --nmax=100000       # CI-sized sweep
//
// Writes the chain-analytics JSON ("pagen.chains.v1") of the largest run to
// --out (default CHAINS_report.json). Exits nonzero on any mismatch.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baseline/chain_tracer.h"
#include "core/generate.h"
#include "obs/causal.h"
#include "obs/config.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"nmax", "ranks", "p", "seed", "out"});
  if (cli.help()) {
    std::cout << cli.usage("causal_chains") << "\n";
    return 0;
  }
  const NodeId nmax = cli.get_u64("nmax", 1000000);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 4));
  const double p = cli.get_double("p", 0.5);
  const std::uint64_t seed = cli.get_u64("seed", 33);
  const std::string out_path = cli.get_str("out", "CHAINS_report.json");

  Table t({"n", "records", "traced_max", "oracle_max", "ln(n)", "5*ln(n)",
           "flows", "orphans", "verdict"});
  bool all_match = true;
  for (const NodeId n : {NodeId{10000}, NodeId{100000}, NodeId{1000000}}) {
    if (n > nmax) break;
    PaConfig cfg;
    cfg.n = n;
    cfg.x = 1;
    cfg.p = p;
    cfg.seed = seed;

    // Ring sized so no chain event is dropped: each rank records ~n/ranks
    // chain events plus flow triples for its remote requests.
    obs::Config ocfg;
    ocfg.enabled = true;
    ocfg.causal = true;
    ocfg.ring_capacity =
        static_cast<std::size_t>(4 * n / static_cast<NodeId>(ranks)) + 4096;
    obs::Session session(ranks, ocfg);

    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.obs = &session;
    (void)core::generate(cfg, opt);

    const obs::ChainReport report = obs::reconstruct_chains(session);

    // Theorem 3.3 oracle: the same per-node draws replayed sequentially.
    const baseline::ChainTrace trace(cfg);
    const std::vector<Count> dep = trace.dependency_lengths();
    std::uint64_t oracle_max = 0;
    std::uint64_t oracle_sum = 0;
    Count oracle_records = 0;
    for (NodeId v = 2; v < n; ++v) {
      oracle_max = std::max(oracle_max, dep[v]);
      oracle_sum += dep[v];
      ++oracle_records;
    }

    const bool match = report.chain_records == oracle_records &&
                       report.chain_length.sum() == oracle_sum &&
                       report.max_chain_length == oracle_max &&
                       report.orphan_starts == 0 && report.orphan_ends == 0;
    const bool log_bound =
        static_cast<double>(report.max_chain_length) <=
        5.0 * std::log(static_cast<double>(n));
    all_match = all_match && match && log_bound;

    t.add_row({fmt_count(n), fmt_count(report.chain_records),
               std::to_string(report.max_chain_length),
               std::to_string(oracle_max),
               fmt_f(std::log(static_cast<double>(n)), 2),
               fmt_f(5.0 * std::log(static_cast<double>(n)), 2),
               fmt_count(report.flows),
               fmt_count(report.orphan_starts + report.orphan_ends),
               match ? (log_bound ? "MATCH" : "MATCH(no-log-bound)")
                     : "MISMATCH"});

    std::ofstream os(out_path, std::ios::trunc);
    obs::write_chain_report(os, report);
  }
  t.print(std::cout);
  std::cout << "\ntraced distribution vs sequential Theorem 3.3 oracle: "
            << (all_match ? "MATCH" : "MISMATCH")
            << " (max_L under 5 ln(n) at every n; report: " << out_path
            << ")\n";
  return all_match ? 0 : 1;
}
