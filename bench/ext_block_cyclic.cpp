// Extension: block-cyclic partitioning — interpolating between UCP and RRP.
//
// The paper's Section 3.5 motivates scheme choice by downstream needs
// ("some algorithms require the consecutive nodes to be stored in the same
// processor") versus balance. Block-cyclic partitioning exposes that
// trade-off as one knob: block = 1 is RRP (perfect balance, no locality),
// block = ceil(n/P) is UCP (full locality, worst balance). This bench
// sweeps the block size and reports total-load imbalance and modeled time.
#include <iostream>

#include "analysis/load_balance.h"
#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "core/scaling_model.h"
#include "partition/block_cyclic.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ext_block_cyclic") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 400000);
  cfg.x = cli.get_u64("x", 6);
  cfg.seed = cli.get_u64("seed", 31);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 32));

  std::cout << "=== Extension: block-cyclic partitioning sweep (n="
            << fmt_count(cfg.n) << ", x=" << cfg.x << ", P=" << ranks
            << ") ===\n\n";

  Timer seq_timer;
  (void)baseline::copy_model_general(cfg);
  const core::CostModel model = core::calibrate_cost_model(
      seq_timer.seconds(), cfg.n, 0.5 / static_cast<double>(cfg.x));

  const NodeId ucp_block = (cfg.n + ranks - 1) / ranks;
  Table t({"block", "load imbalance", "msgs imbalance", "modeled_ms",
           "locality (nodes/run)"});
  for (NodeId block :
       {NodeId{1}, NodeId{16}, NodeId{256}, NodeId{4096}, ucp_block}) {
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.custom_partition = partition::make_block_cyclic(cfg.n, ranks, block);
    opt.gather_edges = false;
    const auto result = core::generate(cfg, opt);
    const auto load = analysis::summarize_metric(
        result.loads, analysis::LoadMetric::kTotalLoad);
    const auto msgs = analysis::summarize_metric(
        result.loads, analysis::LoadMetric::kTotalMessages);
    t.add_row({block == ucp_block ? fmt_count(block) + " (=UCP)"
                                  : fmt_count(block),
               fmt_f(load.imbalance, 2), fmt_f(msgs.imbalance, 2),
               fmt_f(1e3 * core::modeled_parallel_seconds(model, result.loads),
                     1),
               fmt_count(block)});
  }
  t.print(std::cout);

  std::cout << "\nshape: small blocks behave like RRP (imbalance -> 1.0),\n"
            << "large blocks like UCP (low ranks swamped by requests for\n"
            << "old nodes); locality — the length of consecutive node runs\n"
            << "per rank — is the price of balance.\n";
  return 0;
}
