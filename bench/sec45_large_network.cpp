// Section 4.5: generating a large network in one run, reporting throughput.
//
// Paper result: "a network with 50 billion edges, with n = 1B and x = 5 ...
// takes only 123 seconds" on 768 processors with RRP.  (Note the paper's
// own inconsistency: n = 1e9 with x = 5 yields 5e9 edges, not 5e10; we
// compare against the stated 50B/123s figure as printed.)
// Default here: n = 2e6, x = 5 on logical ranks of one machine; the honest
// comparison row is edges/second/core.
#include <iostream>

#include "core/generate.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed", "scheme"});
  if (cli.help()) {
    std::cout << cli.usage("sec45_large_network") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 2000000);
  cfg.x = cli.get_u64("x", 5);
  cfg.seed = cli.get_u64("seed", 45);
  core::ParallelOptions opt;
  opt.ranks = static_cast<int>(cli.get_u64("ranks", 8));
  opt.scheme = partition::scheme_from_string(cli.get_str("scheme", "RRP"));
  opt.gather_edges = false;

  std::cout << "=== Section 4.5: large-network generation run ===\n"
            << "n=" << fmt_count(cfg.n) << " x=" << cfg.x
            << " ranks=" << opt.ranks << " scheme="
            << partition::to_string(opt.scheme) << "\n\n";

  Timer timer;
  const auto result = core::generate(cfg, opt);
  const double secs = timer.seconds();

  Count messages = 0;
  for (const auto& l : result.loads) messages += l.total_messages();

  Table t({"metric", "this run", "paper (768 procs)"});
  t.add_row({"edges", fmt_count(result.total_edges), "50,000,000,000"});
  t.add_row({"wall seconds", fmt_f(secs, 2), "123"});
  t.add_row({"edges/second", fmt_count(static_cast<Count>(
                                 static_cast<double>(result.total_edges) / secs)),
             fmt_count(static_cast<Count>(50e9 / 123.0))});
  t.add_row({"edges/second/core",
             fmt_count(static_cast<Count>(
                 static_cast<double>(result.total_edges) / secs)),
             fmt_count(static_cast<Count>(50e9 / 123.0 / 768.0))});
  t.add_row({"algorithm messages", fmt_count(messages), "-"});
  t.print(std::cout);

  std::cout << "\n(this host has one physical core, so edges/second ==\n"
            << "edges/second/core; the paper's per-core rate is the honest\n"
            << "comparison row, and the shape claim is that generation is\n"
            << "memory/O(m)-bound with modest per-edge message overhead)\n";
  return 0;
}
