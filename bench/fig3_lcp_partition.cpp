// Figure 3: distribution of nodes among processors — the exact solution of
// the Eq. 10 load-balance system vs. its linear (arithmetic-progression)
// approximation used by the LCP scheme.
//
// Paper setting: consecutive partitioning with load model of Section 3.5.
// Shape to reproduce: block sizes grow with rank, and the linear
// approximation tracks the exact curve closely enough that LCP load-balances
// nearly as well as the exact solution.
#include <iostream>

#include "partition/lcp_solver.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "ranks", "b", "step"});
  if (cli.help()) {
    std::cout << cli.usage("fig3_lcp_partition") << "\n";
    return 0;
  }
  const NodeId n = cli.get_u64("n", 100000000);  // paper: n = 1e8-scale
  const int ranks = static_cast<int>(cli.get_u64("ranks", 160));
  const double b = cli.get_double("b", 2.0);
  const int step = static_cast<int>(cli.get_u64("step", 8));

  std::cout << "=== Figure 3: exact Eq.10 solution vs linear approximation ===\n"
            << "n=" << fmt_count(n) << " ranks=" << ranks << " b=" << b
            << "\n\n";

  const auto bounds = partition::solve_eq10(n, ranks, b);
  const auto params = partition::fit_lcp_params(n, ranks, b);
  std::cout << "linear model: nodes(rank i) = a + i*d with a="
            << fmt_f(params.a, 1) << " d=" << fmt_f(params.d, 1) << "\n\n";

  Table t({"rank", "exact_nodes", "linear_nodes", "linear/exact"});
  double worst = 0.0;
  for (int i = 0; i < ranks; ++i) {
    const double exact = bounds[static_cast<std::size_t>(i) + 1] -
                         bounds[static_cast<std::size_t>(i)];
    const double approx = params.a + params.d * i;
    worst = std::max(worst, std::abs(approx / exact - 1.0));
    if (i % step == 0 || i == ranks - 1) {
      t.add_row({std::to_string(i), fmt_count(static_cast<Count>(exact)),
                 fmt_count(static_cast<Count>(approx)),
                 fmt_f(approx / exact, 3)});
    }
  }
  t.print(std::cout);
  std::cout << "\nmax relative deviation of the linear approximation: "
            << fmt_f(100.0 * worst, 1) << "%\n"
            << "paper shape: exact boundaries are nearly linear in rank; the\n"
            << "approximation overlaps the exact curve (Fig. 3), deviating\n"
            << "only at the extreme ranks.\n";
  return 0;
}
