// Theorem 3.3 / Section 3.4: dependency-chain lengths.
//
// Claims validated empirically: E[L_t] <= log n; for constant p the average
// is <= 1/p; L_max = O(log n) w.h.p. (the proof shows Pr{L >= 5 log n} <=
// 1/n^3). This bench prints the measured average and maximum chain lengths
// against those bounds across n and p.
//
// Chain lengths are accumulated into obs::Histogram instruments (one per
// (n, p) cell, named "chain.length.n<n>.p<p>") and the table is printed
// from those — the same metrics pipeline the generators use. With
// --metrics-out=FILE the full histograms (count/sum/max + power-of-two
// buckets) are exported as metrics JSON. See docs/observability.md.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>

#include "baseline/chain_tracer.h"
#include "obs/metrics.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"seed", "nmax", "metrics-out"});
  if (cli.help()) {
    std::cout << cli.usage("thm33_dependency_chains") << "\n";
    return 0;
  }
  const std::uint64_t seed = cli.get_u64("seed", 33);
  const NodeId nmax = cli.get_u64("nmax", 1000000);
  const std::string metrics_out = cli.get_str("metrics-out", "");

  std::cout << "=== Theorem 3.3: dependency chain lengths ===\n\n";

  obs::MetricsRegistry reg;
  Table t({"n", "p", "avg_L", "1/p", "ln(n)", "max_L", "5*ln(n)"});
  for (NodeId n : {NodeId{1000}, NodeId{10000}, NodeId{100000},
                   NodeId{1000000}}) {
    if (n > nmax) break;
    for (double p : {0.3, 0.5, 0.7}) {
      const PaConfig cfg{.n = n, .x = 1, .p = p, .seed = seed};
      const baseline::ChainTrace trace(cfg);
      const auto dep = trace.dependency_lengths();
      obs::Histogram& h = reg.histogram("chain.length.n" + std::to_string(n) +
                                        ".p" + fmt_f(p, 1));
      for (NodeId v = 2; v < n; ++v) h.observe(dep[v]);
      t.add_row({fmt_count(n), fmt_f(p, 1), fmt_f(h.mean(), 2),
                 fmt_f(1.0 / p, 2),
                 fmt_f(std::log(static_cast<double>(n)), 2),
                 std::to_string(h.max()),
                 fmt_f(5.0 * std::log(static_cast<double>(n)), 1)});
    }
  }
  t.print(std::cout);

  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    PAGEN_CHECK_MSG(os.good(), "cannot open metrics output " << metrics_out);
    obs::write_metrics_json(os, {&reg});
    std::cout << "\nwrote " << metrics_out << "\n";
  }

  std::cout << "\npaper shape: avg_L stays below both 1/p and ln(n); max_L\n"
            << "grows logarithmically in n and stays below the 5 ln(n)\n"
            << "high-probability bound, so waiting ranks are never stalled\n"
            << "for more than O(log n) hops.\n";
  return 0;
}
