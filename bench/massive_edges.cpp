// Out-of-core massive generation bench (docs/storage.md §6): generate a
// billion-edge-class graph straight into the compressed block store, then
// prove the store is trustworthy by re-loading it under a memory budget
// and checking the exact degree distribution against an in-flight oracle.
//
//   ./massive_edges --edges=1000000000 --store-dir=/data/pcs
//       --budget=$((12<<30))                  # the acceptance run
//   ./massive_edges --edges=10000000          # CI smoke size
//
// Pipeline (x = 1, commfree engine, so generation is communication-free
// and bitwise-deterministic at any rank count):
//
//   1. generate() with store_dir set — every edge streams through the
//      batched sink into delta+varint blocks; the same sink feeds a
//      node-degree oracle (one atomic u32 per node, the only O(n) RAM of
//      the phase). The commfree x = 1 memo runs bounded (--spill-budget
//      per rank) so generator state cannot grow with n.
//   2. Fold the oracle into a (degree -> count) histogram and free it.
//   3. Re-open the store as a ShardedGraphView under --budget bytes and
//      run the distributed degree kernel over the *merged* edge source —
//      one rank, zero message traffic, blocks decoded on the fly.
//   4. The two histograms must match exactly; bytes/edge must be < 8;
//      peak RSS (VmHWM) must stay under the budget. Any miss exits 1.
//
// Writes BENCH_massive.json (see --out).
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/distributed_degree.h"
#include "core/generate.h"
#include "store/graph_view.h"
#include "util/cli.h"
#include "util/rss.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv,
                {"edges", "ranks", "seed", "engine", "store-dir", "budget",
                 "block-edges", "spill-dir", "spill-budget", "out"});
  if (cli.help()) {
    std::cout << cli.usage("massive_edges") << "\n";
    return 0;
  }
  const Count target_edges = cli.get_u64("edges", 10000000);
  const std::string store_dir =
      cli.get_str("store-dir", "/tmp/pagen_massive_store");
  const std::uint64_t budget =
      cli.get_u64("budget", std::uint64_t{12} << 30);
  const std::string out_path = cli.get_str("out", "BENCH_massive.json");

  PaConfig cfg;
  cfg.x = 1;  // one edge per node: n = edges + 1, oracle fits in u32 counters
  cfg.n = target_edges + 1;
  cfg.p = 0.5;
  cfg.seed = cli.get_u64("seed", 1);

  core::ParallelOptions opt;
  opt.engine = cli.get_str("engine", "commfree");
  opt.ranks = static_cast<int>(cli.get_u64("ranks", 4));
  opt.scheme = partition::Scheme::kRrp;
  opt.gather_edges = false;
  opt.store_dir = store_dir;
  opt.store_block_edges = cli.get_u64("block-edges", 65536);
  opt.spill_dir = cli.get_str("spill-dir", store_dir + "/spill");
  opt.spill_budget_bytes =
      cli.get_u64("spill-budget", std::uint64_t{256} << 20);

  // Degree oracle: relaxed atomic u32 per node (max degree < 2(n-1) fits).
  // Rank threads bump both endpoints of every emitted edge concurrently.
  std::vector<std::atomic<std::uint32_t>> oracle(cfg.n);
  opt.edge_batch_sink = [&oracle](Rank, std::span<const graph::Edge> edges) {
    for (const graph::Edge& e : edges) {
      oracle[e.u].fetch_add(1, std::memory_order_relaxed);
      oracle[e.v].fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::cout << "=== massive out-of-core generation ===\n"
            << "edges=" << fmt_count(target_edges) << " ranks=" << opt.ranks
            << " engine=" << opt.engine << " store=" << store_dir
            << " budget=" << fmt_count(budget) << " bytes\n\n";

  Timer gen_timer;
  const auto result = core::generate(cfg, opt);
  const double gen_secs = gen_timer.seconds();
  const double edges_per_sec =
      static_cast<double>(result.total_edges) / gen_secs;
  const double bytes_per_edge =
      static_cast<double>(result.store_bytes) /
      static_cast<double>(result.total_edges);

  // Fold and free the oracle before the reload phase so its 4n bytes do
  // not sit under the budgeted working set.
  core::DegreeHistogram expected;
  {
    std::map<Count, Count> fold;
    for (const auto& d : oracle) {
      ++fold[d.load(std::memory_order_relaxed)];
    }
    expected.assign(fold.begin(), fold.end());
    std::vector<std::atomic<std::uint32_t>>().swap(oracle);
  }

  Timer reload_timer;
  const store::ShardedGraphView view(store_dir, budget);
  // Merged source: the degree kernel runs as a single rank streaming all
  // shards in rank order — no mailbox backlog, the working set is exactly
  // the budgeted block streams plus the kernel's own degree array.
  const core::DegreeHistogram reloaded =
      core::distributed_degree_distribution(view.merged_edge_source(),
                                            partition::Scheme::kRrp);
  const double reload_secs = reload_timer.seconds();

  const bool degree_match = reloaded == expected;
  const std::uint64_t peak_rss = peak_rss_bytes();
  const bool rss_ok = peak_rss > 0 && peak_rss < budget;
  const bool compression_ok = bytes_per_edge < 8.0;
  const bool ok = degree_match && rss_ok && compression_ok;

  Count blocks = 0;
  for (const auto& s : view.manifest().shards) blocks += s.blocks;

  Table t({"metric", "value"});
  t.add_row({"edges generated", fmt_count(result.total_edges)});
  t.add_row({"generation seconds", fmt_f(gen_secs, 2)});
  t.add_row({"edges/second", fmt_count(static_cast<Count>(edges_per_sec))});
  t.add_row({"store bytes", fmt_count(result.store_bytes)});
  t.add_row({"bytes/edge", fmt_f(bytes_per_edge, 3)});
  t.add_row({"blocks", fmt_count(blocks)});
  t.add_row({"reload+degree seconds", fmt_f(reload_secs, 2)});
  t.add_row({"degree histogram match", degree_match ? "EXACT" : "MISMATCH"});
  t.add_row({"peak RSS bytes", fmt_count(peak_rss)});
  t.add_row({"memory budget bytes", fmt_count(budget)});
  t.add_row({"verdict", ok ? "PASS" : "FAIL"});
  t.print(std::cout);

  std::ofstream os(out_path, std::ios::trunc);
  os << "{\n"
     << "  \"schema\": \"pagen.bench.massive.v1\",\n"
     << "  \"workload\": {\"edges\": " << target_edges
     << ", \"n\": " << cfg.n << ", \"x\": " << cfg.x
     << ", \"seed\": " << cfg.seed << ", \"ranks\": " << opt.ranks
     << ", \"engine\": \"" << opt.engine << "\""
     << ", \"block_edges\": " << opt.store_block_edges
     << ", \"budget_bytes\": " << budget << "},\n"
     << "  \"results\": {\n"
     << "    \"edges_generated\": " << result.total_edges << ",\n"
     << "    \"generation_seconds\": " << gen_secs << ",\n"
     << "    \"edges_per_second\": " << edges_per_sec << ",\n"
     << "    \"store_bytes\": " << result.store_bytes << ",\n"
     << "    \"bytes_per_edge\": " << bytes_per_edge << ",\n"
     << "    \"blocks\": " << blocks << ",\n"
     << "    \"reload_seconds\": " << reload_secs << ",\n"
     << "    \"degree_histogram_match\": " << (degree_match ? "true" : "false")
     << ",\n"
     << "    \"peak_rss_bytes\": " << peak_rss << ",\n"
     << "    \"rss_under_budget\": " << (rss_ok ? "true" : "false") << ",\n"
     << "    \"compression_under_8_bytes_per_edge\": "
     << (compression_ok ? "true" : "false") << ",\n"
     << "    \"ok\": " << (ok ? "true" : "false") << "\n"
     << "  }\n"
     << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  if (!ok) {
    std::cerr << "FAIL:" << (degree_match ? "" : " degree-mismatch")
              << (compression_ok ? "" : " compression>=8B/edge")
              << (rss_ok ? "" : " rss-over-budget") << "\n";
    return 1;
  }
  return 0;
}
