// Section 4.3 claim: "We have implemented the sequential version of our
// algorithm in C++. This sequential implementation outperforms the best
// available implementation of BA model given in NetworkX."
//
// NetworkX's generator is the Batagelj–Brandes repetition-list algorithm;
// we compare the naive Θ(n²) scanner, the native Batagelj–Brandes BA, the
// sequential copy model (the paper's T_s reference), and the parallel
// algorithm at P = 8 on the same workload.
#include <iostream>

#include "baseline/ba_batagelj_brandes.h"
#include "baseline/ba_naive.h"
#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "naive_n", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("tab_seq_baselines") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 1000000);
  cfg.x = cli.get_u64("x", 4);
  cfg.seed = cli.get_u64("seed", 43);
  PaConfig naive_cfg = cfg;
  naive_cfg.n = cli.get_u64("naive_n", 20000);

  std::cout << "=== Sequential baselines (Sec. 4.3 comparison) ===\n"
            << "workload: x=" << cfg.x << ", n=" << fmt_count(cfg.n)
            << " (naive at n=" << fmt_count(naive_cfg.n) << ")\n\n";

  Table t({"generator", "n", "edges", "seconds", "edges/sec"});
  auto report = [&](const char* name, NodeId n, Count edges, double secs) {
    t.add_row({name, fmt_count(n), fmt_count(edges), fmt_f(secs, 3),
               fmt_count(static_cast<Count>(static_cast<double>(edges) / secs))});
  };

  {
    Timer timer;
    const auto edges = baseline::ba_naive(naive_cfg);
    report("naive BA (Theta(n^2))", naive_cfg.n, edges.size(),
           timer.seconds());
  }
  {
    Timer timer;
    const auto edges = baseline::ba_batagelj_brandes(cfg);
    report("Batagelj-Brandes BA (NetworkX's algorithm)", cfg.n, edges.size(),
           timer.seconds());
  }
  {
    Timer timer;
    const auto result = baseline::copy_model_general(cfg);
    report("sequential copy model (this paper)", cfg.n, result.edges.size(),
           timer.seconds());
  }
  {
    Timer timer;
    core::ParallelOptions opt;
    opt.ranks = 8;
    opt.gather_edges = false;
    const auto result = core::generate(cfg, opt);
    report("parallel copy model, P=8 (oversubscribed)", cfg.n,
           result.total_edges, timer.seconds());
  }
  t.print(std::cout);

  std::cout << "\npaper shape: the copy-model sequential generator is\n"
            << "competitive with (and in the paper's setup faster than) the\n"
            << "best repetition-list BA implementation, and both dwarf the\n"
            << "naive scanner, whose quadratic cost forbids large n.\n";
  return 0;
}
