// Figure 6: weak scaling — runtime vs. number of processors with the input
// size growing proportionally (fixed edges per processor).
//
// Paper setting: 1e7 edges per processor, P = 16..768.  Default here:
// 25,000 edges per rank (CLI-overridable).  Modeled time from measured
// loads, as in fig5.  Shape to reproduce: nearly constant runtime for LCP
// and RRP; UCP degrades with P.
#include <iostream>
#include <vector>

#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "core/scaling_model.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv,
                {"edges_per_rank", "x", "seed", "pmax", "msg_ratio", "tsv"});
  if (cli.help()) {
    std::cout << cli.usage("fig6_weak_scaling") << "\n";
    return 0;
  }
  const Count edges_per_rank = cli.get_u64("edges_per_rank", 12500);
  const NodeId x = cli.get_u64("x", 6);
  const std::uint64_t seed = cli.get_u64("seed", 6);
  const int pmax = static_cast<int>(cli.get_u64("pmax", 768));
  const double msg_ratio = cli.get_double("msg_ratio", 0.5);

  std::cout << "=== Figure 6: weak scaling (" << fmt_count(edges_per_rank)
            << " edges per rank, x=" << x << ") ===\n"
            << "modeled runtime (ms) from measured per-rank loads\n\n";

  // Calibrate the node cost once, from a real sequential run at the P=16
  // problem size.
  PaConfig calib_cfg{.n = edges_per_rank * 16 / x, .x = x, .p = 0.5,
                     .seed = seed};
  Timer calib_timer;
  (void)baseline::copy_model_general(calib_cfg);
  const core::CostModel model = core::calibrate_cost_model(
      calib_timer.seconds(), calib_cfg.n, msg_ratio / static_cast<double>(x));

  Table t({"P", "n", "edges", "UCP_ms", "LCP_ms", "RRP_ms"});
  for (int p : {16, 32, 64, 128, 256, 512, 768}) {
    if (p > pmax) break;
    PaConfig cfg;
    cfg.x = x;
    cfg.seed = seed;
    cfg.n = edges_per_rank * static_cast<Count>(p) / x;
    std::vector<std::string> row{std::to_string(p), fmt_count(cfg.n),
                                 fmt_count(expected_edge_count(cfg))};
    for (auto scheme : {partition::Scheme::kUcp, partition::Scheme::kLcp,
                        partition::Scheme::kRrp}) {
      core::ParallelOptions opt;
      opt.ranks = p;
      opt.scheme = scheme;
      opt.gather_edges = false;
      const auto result = core::generate(cfg, opt);
      row.push_back(
          fmt_f(1e3 * core::modeled_parallel_seconds(model, result.loads), 1));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  (void)t.save_tsv(cli.get_str("tsv", ""));
  std::cout << "\npaper shape: LCP and RRP stay almost flat as P grows (good\n"
            << "weak scaling); UCP's runtime climbs because rank 0 absorbs\n"
            << "disproportionately many incoming requests (Sec. 4.4).\n";
  return 0;
}
