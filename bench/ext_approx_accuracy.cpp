// Extension: exact vs approximate distributed PA (the Yoo–Henderson-style
// comparator) — quantifying the paper's motivation.
//
// Sweeps the approximation's two control parameters and scores each setting
// against the exact algorithm: KS distance between degree distributions,
// fitted gamma, and hub-degree inflation. The exact algorithm needs no
// parameters and no tuning runs; that asymmetry is the paper's argument.
#include <algorithm>
#include <iostream>

#include "analysis/ks_distance.h"
#include "analysis/powerlaw_fit.h"
#include "baseline/copy_model_seq.h"
#include "core/approx_pa.h"
#include "core/generate.h"
#include "graph/edge_list.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ext_approx_accuracy") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 100000);
  cfg.x = cli.get_u64("x", 4);
  cfg.seed = cli.get_u64("seed", 10);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 8));

  std::cout << "=== Extension: exact algorithm vs approximate comparator ===\n"
            << "n=" << fmt_count(cfg.n) << " x=" << cfg.x << " P=" << ranks
            << "\n\n";

  // Exact reference (the paper's algorithm).
  Timer exact_timer;
  core::ParallelOptions exact_opt;
  exact_opt.ranks = ranks;
  const auto exact = core::generate(cfg, exact_opt);
  const double exact_s = exact_timer.seconds();
  const auto exact_deg = graph::degree_sequence(exact.edges, cfg.n);
  const auto exact_fit = analysis::fit_gamma_mle(exact_deg, cfg.x);
  const Count exact_hub =
      *std::max_element(exact_deg.begin(), exact_deg.end());

  Table t({"generator", "sync_iv", "sample", "KS", "gamma", "hub/exact",
           "wall_s"});
  t.add_row({"exact (Alg 3.2)", "-", "-", "0.0000",
             fmt_f(exact_fit.gamma, 2), "1.00", fmt_f(exact_s, 2)});

  for (Count interval : {Count{64}, Count{512}, Count{4096}, Count{1000000}}) {
    for (Count sample : {Count{64}, Count{1024}}) {
      core::ApproxPaOptions opt;
      opt.ranks = ranks;
      opt.sync_interval = interval;
      opt.sample_size = sample;
      Timer timer;
      const auto approx = core::generate_approx_pa(cfg, opt);
      const double secs = timer.seconds();
      const auto deg = graph::degree_sequence(approx.edges, cfg.n);
      const auto fit = analysis::fit_gamma_mle(deg, cfg.x);
      const Count hub = *std::max_element(deg.begin(), deg.end());
      t.add_row({"approx (YH-style)", fmt_count(interval), fmt_count(sample),
                 fmt_f(analysis::ks_distance(deg, exact_deg), 4),
                 fmt_f(fit.gamma, 2),
                 fmt_f(static_cast<double>(hub) /
                           static_cast<double>(exact_hub),
                       2),
                 fmt_f(secs, 2)});
    }
  }
  t.print(std::cout);

  std::cout
      << "\npaper's critique, measured: the approximation's hub structure is\n"
      << "inflated at every setting (hub/exact >> 1), and its error moves\n"
      << "with the control parameters — finding an acceptable setting takes\n"
      << "repeated tuning runs, while the exact algorithm has no knobs.\n";
  return 0;
}
