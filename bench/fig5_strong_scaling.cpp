// Figure 5: strong scaling — speedup vs. number of processors for the three
// partitioning schemes (UCP, LCP, RRP), fixed problem size.
//
// Paper setting: n = 1e9, x = 6, P = 1..768 on a Sandy Bridge cluster.
// Default here: n = 5e5, x = 6, P in {1..768} logical ranks on one machine.
// Wall-clock cannot show speedup on a single core, so speedup is reported
// from the calibrated load model (DESIGN.md §2/§5): T_s is the *measured*
// sequential copy-model time; T_P comes from the measured per-rank loads.
// Shape to reproduce: near-linear growth, with LCP ≈ RRP > UCP.
//
// --engine=all|mps,commfree,... additionally sweeps the requested engines
// over a small rank ladder and writes the per-engine message-volume report
// to --engines-out (default BENCH_engines.json); commfree must report zero
// logical messages at every P. See bench/engine_sweep.h.
#include <iostream>
#include <string>
#include <vector>

#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "core/scaling_model.h"
#include "engine_sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "seed", "pmax", "msg_ratio", "tsv",
                             "engine", "engines-out"});
  if (cli.help()) {
    std::cout << cli.usage("fig5_strong_scaling") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 500000);
  cfg.x = cli.get_u64("x", 6);
  cfg.seed = cli.get_u64("seed", 5);
  const int pmax = static_cast<int>(cli.get_u64("pmax", 768));
  const double msg_ratio = cli.get_double("msg_ratio", 0.5);

  std::cout << "=== Figure 5: strong scaling (n=" << fmt_count(cfg.n)
            << ", x=" << cfg.x << ") ===\n"
            << "speedup = T_seq(measured) / T_P(load model); see DESIGN.md §5\n\n";

  // Sequential reference: real measured time of the sequential copy model.
  Timer seq_timer;
  const auto seq = baseline::copy_model_general(cfg);
  const double t_seq = seq_timer.seconds();
  std::cout << "sequential copy model: " << fmt_f(t_seq, 3) << " s ("
            << fmt_count(seq.edges.size()) << " edges)\n\n";
  const core::CostModel model =
      core::calibrate_cost_model(t_seq, cfg.n, msg_ratio / static_cast<double>(cfg.x));

  const std::vector<int> all_p{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 768};
  Table t({"P", "UCP", "LCP", "RRP", "wall_RRP_s"});
  for (int p : all_p) {
    if (p > pmax) break;
    std::vector<std::string> row{std::to_string(p)};
    double wall_rrp = 0.0;
    for (auto scheme : {partition::Scheme::kUcp, partition::Scheme::kLcp,
                        partition::Scheme::kRrp}) {
      core::ParallelOptions opt;
      opt.ranks = p;
      opt.scheme = scheme;
      opt.gather_edges = false;
      const auto result = core::generate(cfg, opt);
      const double t_p = core::modeled_parallel_seconds(model, result.loads);
      row.push_back(fmt_f(t_seq / t_p, 1));
      if (scheme == partition::Scheme::kRrp) wall_rrp = result.wall_seconds;
    }
    row.push_back(fmt_f(wall_rrp, 2));
    t.add_row(row);
  }
  t.print(std::cout);
  (void)t.save_tsv(cli.get_str("tsv", ""));
  std::cout << "\npaper shape: speedups grow almost linearly with P; LCP and\n"
            << "RRP outperform UCP due to better load balancing (Sec. 4.3).\n"
            << "(wall_RRP_s is the real oversubscribed wall time, for\n"
            << "reference only — this host has a single physical core.)\n";

  // Engine sweep: the same problem through every requested backend, RRP,
  // over a short rank ladder. The ladder stays small because commfree trades
  // messages for recomputation — its per-rank derivation closure approaches
  // the whole prefix, so total work grows with P (the Sanders & Schulz
  // trade, measured rather than hidden).
  const std::vector<std::string> engines =
      bench::parse_engine_list(cli.get_str("engine", "all"));
  std::vector<int> ladder;
  for (const int p : {1, 2, 4, 8, 16}) {
    if (p <= pmax) ladder.push_back(p);
  }
  std::cout << "\n--- engine sweep (RRP, P in {";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    std::cout << (i != 0 ? "," : "") << ladder[i];
  }
  std::cout << "}) ---\n";
  const auto sweep = bench::run_engine_sweep(cfg, engines, ladder,
                                             partition::Scheme::kRrp);
  bench::print_engine_sweep(std::cout, sweep);
  const std::string engines_out =
      cli.get_str("engines-out", "BENCH_engines.json");
  if (bench::write_engine_sweep_json(engines_out, "fig5_strong_scaling", cfg,
                                     sweep)) {
    std::cout << "wrote " << engines_out << "\n";
  }
  return 0;
}
