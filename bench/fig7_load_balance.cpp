// Figure 7(a-d): per-processor node counts, outgoing request messages,
// incoming request messages, and total load, for UCP, LCP and RRP.
//
// Paper setting: n = 1e8, x = 10, P = 160.  Default here: n = 4e5, x = 10,
// P = 160 (same rank count as the paper; the distributions' shapes are size
// independent).
#include <array>
#include <iostream>
#include <vector>

#include "analysis/load_balance.h"
#include "core/generate.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using pagen::analysis::LoadMetric;

void print_section(const char* title, LoadMetric metric,
                   const std::array<pagen::core::LoadVector, 3>& loads,
                   int ranks, int step) {
  using namespace pagen;
  std::cout << "\n--- " << title << " ---\n";
  std::array<std::vector<double>, 3> series;
  for (int s = 0; s < 3; ++s) series[s] = analysis::extract(loads[s], metric);

  Table t({"rank", "UCP", "LCP", "RRP"});
  for (int r = 0; r < ranks; r += step) {
    t.add_row({std::to_string(r), fmt_count(static_cast<Count>(series[0][r])),
               fmt_count(static_cast<Count>(series[1][r])),
               fmt_count(static_cast<Count>(series[2][r]))});
  }
  t.print(std::cout);

  Table s({"scheme", "min", "mean", "max", "imbalance(max/mean)"});
  const char* names[3] = {"UCP", "LCP", "RRP"};
  for (int i = 0; i < 3; ++i) {
    const auto sum = analysis::summarize_metric(loads[i], metric);
    s.add_row({names[i], fmt_count(static_cast<Count>(sum.summary.min)),
               fmt_count(static_cast<Count>(sum.summary.mean)),
               fmt_count(static_cast<Count>(sum.summary.max)),
               fmt_f(sum.imbalance, 2)});
  }
  s.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed", "step"});
  if (cli.help()) {
    std::cout << cli.usage("fig7_load_balance") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 400000);
  cfg.x = cli.get_u64("x", 10);
  cfg.seed = cli.get_u64("seed", 7);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 160));
  const int step = static_cast<int>(cli.get_u64("step", 16));

  std::cout << "=== Figure 7: node and message distribution across ranks ===\n"
            << "n=" << fmt_count(cfg.n) << " x=" << cfg.x << " P=" << ranks
            << " (paper: n=1e8, x=10, P=160)\n";

  std::array<core::LoadVector, 3> loads;
  const partition::Scheme schemes[3] = {partition::Scheme::kUcp,
                                        partition::Scheme::kLcp,
                                        partition::Scheme::kRrp};
  for (int i = 0; i < 3; ++i) {
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.scheme = schemes[i];
    opt.gather_edges = false;
    loads[static_cast<std::size_t>(i)] = core::generate(cfg, opt).loads;
  }

  print_section("Fig 7(a): nodes per processor", LoadMetric::kNodes, loads,
                ranks, step);
  print_section("Fig 7(b): outgoing request messages",
                LoadMetric::kRequestsSent, loads, ranks, step);
  print_section("Fig 7(c): incoming request messages",
                LoadMetric::kRequestsReceived, loads, ranks, step);
  print_section("Fig 7(d): total load (nodes + messages)",
                LoadMetric::kTotalLoad, loads, ranks, step);

  std::cout
      << "\npaper shape: (a) UCP/RRP flat, LCP linearly increasing;\n"
      << "(b) outgoing ∝ nodes, rank 0 sends none under CP schemes;\n"
      << "(c) incoming skewed to low ranks under UCP/LCP (Lemma 3.4), flat\n"
      << "under RRP; (d) RRP nearly perfectly balanced, LCP good, UCP poor.\n";
  return 0;
}
