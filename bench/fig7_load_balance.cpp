// Figure 7(a-d): per-processor node counts, outgoing request messages,
// incoming request messages, and total load, for UCP, LCP and RRP.
//
// Paper setting: n = 1e8, x = 10, P = 160.  Default here: n = 4e5, x = 10,
// P = 160 (same rank count as the paper; the distributions' shapes are size
// independent).
//
// With --metrics-out=m.json / --trace-out=t.json each scheme's run is
// observed through src/obs/ and exported with the scheme spliced into the
// file name (m.ucp.json, m.lcp.json, m.rrp.json) — the same metrics
// pipeline quickstart uses, so Fig. 7 numbers can be diffed across runs
// instead of scraped from stdout. See docs/observability.md.
//
// --engine=all|mps,commfree,... appends a per-engine message-volume sweep
// (capped rank count — commfree trades messages for recomputation) and
// writes --engines-out (default BENCH_engines_fig7.json, a different file
// from fig5's BENCH_engines.json so the two reports coexist in CI).
#include <algorithm>
#include <array>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/load_balance.h"
#include "core/generate.h"
#include "engine_sweep.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using pagen::analysis::LoadMetric;

void print_section(const char* title, LoadMetric metric,
                   const std::array<pagen::core::LoadVector, 3>& loads,
                   int ranks, int step) {
  using namespace pagen;
  std::cout << "\n--- " << title << " ---\n";
  std::array<std::vector<double>, 3> series;
  for (int s = 0; s < 3; ++s) series[s] = analysis::extract(loads[s], metric);

  Table t({"rank", "UCP", "LCP", "RRP"});
  for (int r = 0; r < ranks; r += step) {
    t.add_row({std::to_string(r), fmt_count(static_cast<Count>(series[0][r])),
               fmt_count(static_cast<Count>(series[1][r])),
               fmt_count(static_cast<Count>(series[2][r]))});
  }
  t.print(std::cout);

  Table s({"scheme", "min", "mean", "max", "imbalance(max/mean)"});
  const char* names[3] = {"UCP", "LCP", "RRP"};
  for (int i = 0; i < 3; ++i) {
    const auto sum = analysis::summarize_metric(loads[i], metric);
    s.add_row({names[i], fmt_count(static_cast<Count>(sum.summary.min)),
               fmt_count(static_cast<Count>(sum.summary.mean)),
               fmt_count(static_cast<Count>(sum.summary.max)),
               fmt_f(sum.imbalance, 2)});
  }
  s.print(std::cout);
}

/// "m.json" + "rrp" -> "m.rrp.json" (scheme spliced before the extension).
std::string with_scheme(const std::string& path, const char* scheme) {
  if (path.empty()) return path;
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) {
    return path + "." + scheme;
  }
  return path.substr(0, dot) + "." + scheme + path.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pagen;
  std::vector<std::string> keys{"n",    "x",      "ranks",      "seed",
                                "step", "engine", "engines-out"};
  for (const std::string& k : obs::cli_keys()) keys.push_back(k);
  const Cli cli(argc, argv, keys);
  if (cli.help()) {
    std::cout << cli.usage("fig7_load_balance") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 400000);
  cfg.x = cli.get_u64("x", 10);
  cfg.seed = cli.get_u64("seed", 7);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 160));
  const int step = static_cast<int>(cli.get_u64("step", 16));
  const obs::Config obs_cfg = obs::config_from_cli(cli);

  std::cout << "=== Figure 7: node and message distribution across ranks ===\n"
            << "n=" << fmt_count(cfg.n) << " x=" << cfg.x << " P=" << ranks
            << " (paper: n=1e8, x=10, P=160)\n";

  std::array<core::LoadVector, 3> loads;
  const partition::Scheme schemes[3] = {partition::Scheme::kUcp,
                                        partition::Scheme::kLcp,
                                        partition::Scheme::kRrp};
  const char* scheme_names[3] = {"ucp", "lcp", "rrp"};
  for (int i = 0; i < 3; ++i) {
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.scheme = schemes[i];
    opt.gather_edges = false;

    std::unique_ptr<obs::Session> session;
    if (obs_cfg.enabled) {
      obs::Config per_scheme = obs_cfg;
      per_scheme.trace_out = with_scheme(obs_cfg.trace_out, scheme_names[i]);
      per_scheme.metrics_out =
          with_scheme(obs_cfg.metrics_out, scheme_names[i]);
      session = std::make_unique<obs::Session>(ranks, per_scheme);
      opt.obs = session.get();
    }

    loads[static_cast<std::size_t>(i)] = core::generate(cfg, opt).loads;

    if (session) {
      for (const std::string& file : session->export_files()) {
        std::cout << "wrote " << file << "\n";
      }
    }
  }

  print_section("Fig 7(a): nodes per processor", LoadMetric::kNodes, loads,
                ranks, step);
  print_section("Fig 7(b): outgoing request messages",
                LoadMetric::kRequestsSent, loads, ranks, step);
  print_section("Fig 7(c): incoming request messages",
                LoadMetric::kRequestsReceived, loads, ranks, step);
  print_section("Fig 7(d): total load (nodes + messages)",
                LoadMetric::kTotalLoad, loads, ranks, step);

  // World-wide totals, reduced the one canonical way (core::
  // merge_across_ranks: volumes sum, max_queue_depth takes the max).
  std::cout << "\n--- totals (merged across ranks) ---\n";
  Table totals({"scheme", "nodes", "req_out", "req_in", "total_load",
                "max_queue_depth"});
  const char* names[3] = {"UCP", "LCP", "RRP"};
  for (int i = 0; i < 3; ++i) {
    const core::RankLoad t =
        core::merge_across_ranks(loads[static_cast<std::size_t>(i)]);
    totals.add_row({names[i], fmt_count(t.nodes), fmt_count(t.requests_sent),
                    fmt_count(t.requests_received), fmt_count(t.total_load()),
                    fmt_count(t.max_queue_depth)});
  }
  totals.print(std::cout);

  std::cout
      << "\npaper shape: (a) UCP/RRP flat, LCP linearly increasing;\n"
      << "(b) outgoing ∝ nodes, rank 0 sends none under CP schemes;\n"
      << "(c) incoming skewed to low ranks under UCP/LCP (Lemma 3.4), flat\n"
      << "under RRP; (d) RRP nearly perfectly balanced, LCP good, UCP poor.\n";

  // Engine sweep at (up to) the configured rank count: the same Fig. 7
  // totals per engine. commfree's rank count is capped at 32 because its
  // redundant recomputation is O(P · n · x) in the worst case — the cap is
  // printed, never silent.
  const std::vector<std::string> engines =
      bench::parse_engine_list(cli.get_str("engine", "all"));
  const int sweep_ranks = std::min(ranks, 32);
  std::cout << "\n--- engine sweep (RRP, P=" << sweep_ranks;
  if (sweep_ranks != ranks) std::cout << ", capped from " << ranks;
  std::cout << ") ---\n";
  const std::vector<int> ladder{sweep_ranks};
  const auto sweep = bench::run_engine_sweep(cfg, engines, ladder,
                                             partition::Scheme::kRrp);
  bench::print_engine_sweep(std::cout, sweep);
  const std::string engines_out =
      cli.get_str("engines-out", "BENCH_engines_fig7.json");
  if (bench::write_engine_sweep_json(engines_out, "fig7_load_balance", cfg,
                                     sweep)) {
    std::cout << "wrote " << engines_out << "\n";
  }
  return 0;
}
