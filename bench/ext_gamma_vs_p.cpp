// Extension: the copy-model exponent as a function of p.
//
// Kumar et al. (the paper's reference [17]) show the copy model's degree
// exponent depends on the copy probability; in this repo's parameterization
// (p = probability of attaching to the uniformly drawn node directly, 1-p
// of copying) the mean-field exponent for x = 1 is
//
//   gamma(p) = 1 + 1/(1 - p)
//
// so p = 1/2 gives the BA value gamma = 3. This bench sweeps p with the
// *distributed* generator and compares fitted exponents to the formula —
// demonstrating the knob the paper mentions ("the value of the exponent
// gamma depends on the choice of p").
#include <iostream>

#include "analysis/powerlaw_fit.h"
#include "core/generate.h"
#include "graph/edge_list.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ext_gamma_vs_p") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 400000);
  cfg.x = 1;
  cfg.seed = cli.get_u64("seed", 17);
  core::ParallelOptions opt;
  opt.ranks = static_cast<int>(cli.get_u64("ranks", 8));

  std::cout << "=== Extension: copy-model exponent vs p (x = 1, n="
            << fmt_count(cfg.n) << ") ===\n\n";

  // Fit from d_min = 16: the x = 1 degree distribution only becomes a pure
  // power law in its tail, and the MLE is biased by the sub-power-law head
  // at small d_min.
  constexpr Count kDmin = 16;
  Table t({"p", "gamma_measured", "gamma_theory = 1 + 1/(1-p)"});
  for (double p : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    cfg.p = p;
    const auto result = core::generate(cfg, opt);
    const auto deg = graph::degree_sequence(result.edges, cfg.n);
    const auto fit = analysis::fit_gamma_mle(deg, kDmin);
    t.add_row({fmt_f(p, 1), fmt_f(fit.gamma, 2), fmt_f(1.0 + 1.0 / (1.0 - p), 2)});
  }
  t.print(std::cout);

  std::cout << "\nshape: measured exponents track the mean-field formula;\n"
            << "p = 0.5 reproduces the Barabási–Albert gamma = 3. Smaller p\n"
            << "(more copying) gives heavier tails. Large p underestimates\n"
            << "slightly at this n: steep tails leave few samples above d_min\n"
            << "(a finite-size effect, not an algorithm error).\n";
  return 0;
}
