// Component micro-benchmarks (google-benchmark): RNG draws, mailbox
// throughput, send-buffer aggregation, partition owner lookups, and the
// sequential generators. These are the unit costs behind the cost model of
// scaling_model.h.
#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <span>

#include "baseline/ba_batagelj_brandes.h"
#include "graph/edge_list.h"
#include "baseline/copy_model_seq.h"
#include "core/genrt/protocol.h"
#include "core/genrt/slot_store.h"
#include "mps/mailbox.h"
#include "partition/partition.h"
#include "rng/counter_rng.h"
#include "rng/xoshiro.h"
#include "util/harmonic.h"

namespace {

using namespace pagen;

void BM_CounterRngRaw(benchmark::State& state) {
  const rng::CounterRng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.raw({1, i++, 2, 3}));
  }
}
BENCHMARK(BM_CounterRngRaw);

void BM_CounterRngBelow(benchmark::State& state) {
  const rng::CounterRng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000003, {1, i++, 2, 3}));
  }
}
BENCHMARK(BM_CounterRngBelow);

void BM_Xoshiro(benchmark::State& state) {
  rng::Xoshiro256pp rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_HarmonicTabulated(benchmark::State& state) {
  const Harmonic h(4096);
  std::uint64_t k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(k % 4000 + 1));
    ++k;
  }
}
BENCHMARK(BM_HarmonicTabulated);

void BM_HarmonicAsymptotic(benchmark::State& state) {
  const Harmonic h(64);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(1000000 + k++));
  }
}
BENCHMARK(BM_HarmonicAsymptotic);

void BM_MailboxPushDrain(benchmark::State& state) {
  mps::Mailbox box;
  std::vector<mps::Envelope> out;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      mps::Envelope e;
      e.src = 0;
      e.tag = 1;
      box.push(std::move(e));
    }
    out.clear();
    box.try_drain(out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MailboxPushDrain)->Arg(1)->Arg(64)->Arg(1024);

void BM_PartitionOwner(benchmark::State& state) {
  const auto scheme = static_cast<partition::Scheme>(state.range(0));
  const auto part = partition::make_partition(scheme, 100000000, 768);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part->owner(u));
    u = (u + 982451653) % 100000000;  // jump around pseudo-randomly
  }
}
BENCHMARK(BM_PartitionOwner)
    ->Arg(static_cast<int>(partition::Scheme::kUcp))
    ->Arg(static_cast<int>(partition::Scheme::kLcp))
    ->Arg(static_cast<int>(partition::Scheme::kRrp));

void BM_SeqCopyModelX1(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const PaConfig cfg{.n = n, .x = 1, .p = 0.5, .seed = seed++};
    benchmark::DoNotOptimize(baseline::copy_model_targets(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SeqCopyModelX1)->Arg(100000);

void BM_SeqCopyModelGeneral(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const PaConfig cfg{.n = n, .x = 4, .p = 0.5, .seed = seed++};
    benchmark::DoNotOptimize(baseline::copy_model_general(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_SeqCopyModelGeneral)->Arg(100000);

void BM_BatageljBrandesBa(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const PaConfig cfg{.n = n, .x = 4, .p = 0.5, .seed = seed++};
    benchmark::DoNotOptimize(baseline::ba_batagelj_brandes(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_BatageljBrandesBa)->Arg(100000);

// --- Outstanding-request table: node-keyed std::map (the pre-genrt
// implementation in both PA generators) vs the flat genrt::SlotStore. A
// 10M-slot resolution storm with a sliding in-flight window models a
// crash-tolerant rank issuing requests and retiring answers; the store's
// note_sent / note_answered are O(1) array writes with zero allocation
// where the map paid an rb-tree insert + erase per request. Recorded in
// BENCH_genrt.json.

constexpr Count kStormSlots = 10'000'000;
constexpr Count kStormWindow = 65536;  ///< in-flight requests at any moment

void BM_OutstandingMap(benchmark::State& state) {
  std::map<Count, core::RequestX1> outstanding;
  for (auto _ : state) {
    for (Count s = 0; s < kStormSlots; ++s) {
      outstanding[s] = {s, s / 2};
      if (s >= kStormWindow) outstanding.erase(s - kStormWindow);
    }
    for (Count s = kStormSlots - kStormWindow; s < kStormSlots; ++s) {
      outstanding.erase(s);
    }
    benchmark::DoNotOptimize(outstanding.empty());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStormSlots));
}
BENCHMARK(BM_OutstandingMap)->Unit(benchmark::kMillisecond);

void BM_OutstandingSlotStore(benchmark::State& state) {
  core::genrt::SlotStore<core::RequestX1> store(kStormSlots,
                                                /*track_requests=*/true,
                                                /*chain_hist=*/nullptr);
  for (auto _ : state) {
    for (Count s = 0; s < kStormSlots; ++s) {
      store.note_sent(s, {s, s / 2});
      if (s >= kStormWindow) store.note_answered(s - kStormWindow);
    }
    for (Count s = kStormSlots - kStormWindow; s < kStormSlots; ++s) {
      store.note_answered(s);
    }
    benchmark::DoNotOptimize(store.outstanding());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStormSlots));
}
BENCHMARK(BM_OutstandingSlotStore)->Unit(benchmark::kMillisecond);

// --- Edge-sink dispatch: per-edge std::function callback (the original
// ParallelOptions::edge_sink contract) vs the batched span adapter
// (edge_batch_sink), modeling genrt::Driver::emit_edge's sink hand-off. The
// batch adapter pays one indirect call per edge_batch_capacity edges plus a
// buffer append, instead of one indirect call per edge — the difference a
// high-volume sink (sharded writer, streaming checksum) sees.

constexpr Count kSinkEdges = 10'000'000;
constexpr std::size_t kSinkBatch = 4096;  ///< edge_batch_capacity default

graph::Edge sink_edge(Count i) {
  return {static_cast<NodeId>(i), static_cast<NodeId>(i / 2)};
}

void BM_EdgeSinkPerEdge(benchmark::State& state) {
  std::uint64_t acc = 0;
  const std::function<void(Rank, const graph::Edge&)> sink =
      [&acc](Rank, const graph::Edge& e) { acc += e.u ^ e.v; };
  for (auto _ : state) {
    for (Count i = 0; i < kSinkEdges; ++i) sink(0, sink_edge(i));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSinkEdges));
}
BENCHMARK(BM_EdgeSinkPerEdge)->Unit(benchmark::kMillisecond);

void BM_EdgeSinkBatched(benchmark::State& state) {
  std::uint64_t acc = 0;
  const std::function<void(Rank, std::span<const graph::Edge>)> sink =
      [&acc](Rank, std::span<const graph::Edge> edges) {
        for (const graph::Edge& e : edges) acc += e.u ^ e.v;
      };
  graph::EdgeList buf;
  buf.reserve(kSinkBatch);
  for (auto _ : state) {
    for (Count i = 0; i < kSinkEdges; ++i) {
      buf.push_back(sink_edge(i));
      if (buf.size() >= kSinkBatch) {
        sink(0, buf);
        buf.clear();
      }
    }
    if (!buf.empty()) {
      sink(0, buf);
      buf.clear();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSinkEdges));
}
BENCHMARK(BM_EdgeSinkBatched)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
