// Component micro-benchmarks (google-benchmark): RNG draws, mailbox
// throughput, send-buffer aggregation, partition owner lookups, and the
// sequential generators. These are the unit costs behind the cost model of
// scaling_model.h.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <span>

#include "baseline/ba_batagelj_brandes.h"
#include "graph/edge_list.h"
#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "core/genrt/protocol.h"
#include "core/genrt/slot_store.h"
#include "mps/mailbox.h"
#include "obs/config.h"
#include "obs/session.h"
#include "partition/partition.h"
#include "graph/varint_io.h"
#include "rng/counter_rng.h"
#include "rng/xoshiro.h"
#include "store/format.h"
#include "util/harmonic.h"

namespace {

using namespace pagen;

void BM_CounterRngRaw(benchmark::State& state) {
  const rng::CounterRng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.raw({1, i++, 2, 3}));
  }
}
BENCHMARK(BM_CounterRngRaw);

void BM_CounterRngBelow(benchmark::State& state) {
  const rng::CounterRng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000003, {1, i++, 2, 3}));
  }
}
BENCHMARK(BM_CounterRngBelow);

void BM_Xoshiro(benchmark::State& state) {
  rng::Xoshiro256pp rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_HarmonicTabulated(benchmark::State& state) {
  const Harmonic h(4096);
  std::uint64_t k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(k % 4000 + 1));
    ++k;
  }
}
BENCHMARK(BM_HarmonicTabulated);

void BM_HarmonicAsymptotic(benchmark::State& state) {
  const Harmonic h(64);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(1000000 + k++));
  }
}
BENCHMARK(BM_HarmonicAsymptotic);

void BM_MailboxPushDrain(benchmark::State& state) {
  mps::Mailbox box;
  std::vector<mps::Envelope> out;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      mps::Envelope e;
      e.src = 0;
      e.tag = 1;
      box.push(std::move(e));
    }
    out.clear();
    box.try_drain(out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MailboxPushDrain)->Arg(1)->Arg(64)->Arg(1024);

void BM_PartitionOwner(benchmark::State& state) {
  const auto scheme = static_cast<partition::Scheme>(state.range(0));
  const auto part = partition::make_partition(scheme, 100000000, 768);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part->owner(u));
    u = (u + 982451653) % 100000000;  // jump around pseudo-randomly
  }
}
BENCHMARK(BM_PartitionOwner)
    ->Arg(static_cast<int>(partition::Scheme::kUcp))
    ->Arg(static_cast<int>(partition::Scheme::kLcp))
    ->Arg(static_cast<int>(partition::Scheme::kRrp));

void BM_SeqCopyModelX1(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const PaConfig cfg{.n = n, .x = 1, .p = 0.5, .seed = seed++};
    benchmark::DoNotOptimize(baseline::copy_model_targets(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SeqCopyModelX1)->Arg(100000);

void BM_SeqCopyModelGeneral(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const PaConfig cfg{.n = n, .x = 4, .p = 0.5, .seed = seed++};
    benchmark::DoNotOptimize(baseline::copy_model_general(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_SeqCopyModelGeneral)->Arg(100000);

void BM_BatageljBrandesBa(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const PaConfig cfg{.n = n, .x = 4, .p = 0.5, .seed = seed++};
    benchmark::DoNotOptimize(baseline::ba_batagelj_brandes(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_BatageljBrandesBa)->Arg(100000);

// --- Outstanding-request table: node-keyed std::map (the pre-genrt
// implementation in both PA generators) vs the flat genrt::SlotStore. A
// 10M-slot resolution storm with a sliding in-flight window models a
// crash-tolerant rank issuing requests and retiring answers; the store's
// note_sent / note_answered are O(1) array writes with zero allocation
// where the map paid an rb-tree insert + erase per request. Recorded in
// BENCH_genrt.json.

constexpr Count kStormSlots = 10'000'000;
constexpr Count kStormWindow = 65536;  ///< in-flight requests at any moment

void BM_OutstandingMap(benchmark::State& state) {
  std::map<Count, core::RequestX1> outstanding;
  for (auto _ : state) {
    for (Count s = 0; s < kStormSlots; ++s) {
      outstanding[s] = {s, s / 2};
      if (s >= kStormWindow) outstanding.erase(s - kStormWindow);
    }
    for (Count s = kStormSlots - kStormWindow; s < kStormSlots; ++s) {
      outstanding.erase(s);
    }
    benchmark::DoNotOptimize(outstanding.empty());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStormSlots));
}
BENCHMARK(BM_OutstandingMap)->Unit(benchmark::kMillisecond);

void BM_OutstandingSlotStore(benchmark::State& state) {
  core::genrt::SlotStore<core::RequestX1> store(kStormSlots,
                                                /*track_requests=*/true,
                                                /*chain_hist=*/nullptr);
  for (auto _ : state) {
    for (Count s = 0; s < kStormSlots; ++s) {
      store.note_sent(s, {s, s / 2});
      if (s >= kStormWindow) store.note_answered(s - kStormWindow);
    }
    for (Count s = kStormSlots - kStormWindow; s < kStormSlots; ++s) {
      store.note_answered(s);
    }
    benchmark::DoNotOptimize(store.outstanding());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStormSlots));
}
BENCHMARK(BM_OutstandingSlotStore)->Unit(benchmark::kMillisecond);

// --- Edge-sink dispatch: per-edge std::function callback (the original
// ParallelOptions::edge_sink contract) vs the batched span adapter
// (edge_batch_sink), modeling genrt::Driver::emit_edge's sink hand-off. The
// batch adapter pays one indirect call per edge_batch_capacity edges plus a
// buffer append, instead of one indirect call per edge — the difference a
// high-volume sink (sharded writer, streaming checksum) sees.

constexpr Count kSinkEdges = 10'000'000;
constexpr std::size_t kSinkBatch = 4096;  ///< edge_batch_capacity default

graph::Edge sink_edge(Count i) {
  return {static_cast<NodeId>(i), static_cast<NodeId>(i / 2)};
}

void BM_EdgeSinkPerEdge(benchmark::State& state) {
  std::uint64_t acc = 0;
  const std::function<void(Rank, const graph::Edge&)> sink =
      [&acc](Rank, const graph::Edge& e) { acc += e.u ^ e.v; };
  for (auto _ : state) {
    for (Count i = 0; i < kSinkEdges; ++i) sink(0, sink_edge(i));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSinkEdges));
}
BENCHMARK(BM_EdgeSinkPerEdge)->Unit(benchmark::kMillisecond);

void BM_EdgeSinkBatched(benchmark::State& state) {
  std::uint64_t acc = 0;
  const std::function<void(Rank, std::span<const graph::Edge>)> sink =
      [&acc](Rank, std::span<const graph::Edge> edges) {
        for (const graph::Edge& e : edges) acc += e.u ^ e.v;
      };
  graph::EdgeList buf;
  buf.reserve(kSinkBatch);
  for (auto _ : state) {
    for (Count i = 0; i < kSinkEdges; ++i) {
      buf.push_back(sink_edge(i));
      if (buf.size() >= kSinkBatch) {
        sink(0, buf);
        buf.clear();
      }
    }
    if (!buf.empty()) {
      sink(0, buf);
      buf.clear();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSinkEdges));
}
BENCHMARK(BM_EdgeSinkBatched)->Unit(benchmark::kMillisecond);

// --- Driver pump with causal stamping off vs on: the full x = 1
// distributed generation (2 ranks, observed session) so the measured loop
// is the real Driver::pump dispatch, not a synthetic one. The "off" run is
// the zero-cost contract of ISSUE 6: with Config::causal unset the driver
// never touches Envelope::causal, so the two runs must move byte-identical
// payload traffic and the "off" run must record zero stamps — asserted
// once at registration, alongside the throughput comparison.

constexpr NodeId kPumpNodes = 50000;

struct PumpTraffic {
  Count bytes = 0;
  Count stamps = 0;
};

PumpTraffic run_observed_pump(bool causal) {
  obs::Config cfg;
  cfg.enabled = true;
  cfg.causal = causal;
  obs::Session session(2, cfg);
  core::ParallelOptions opt;
  opt.ranks = 2;
  opt.gather_edges = false;
  opt.obs = &session;
  const PaConfig pa{.n = kPumpNodes, .x = 1, .p = 0.5, .seed = 7};
  (void)core::generate(pa, opt);
  obs::MetricsRegistry totals;
  for (int r = 0; r < session.nranks(); ++r) {
    totals.merge(session.rank(r).metrics());
  }
  PumpTraffic t;
  t.bytes = totals.counters().at("mps.bytes_sent").value();
  const auto it = totals.counters().find("mps.causal_stamps");
  t.stamps = it == totals.counters().end() ? 0 : it->second.value();
  return t;
}

/// Hard zero-cost check run once before the timed comparison: aborts the
/// bench binary if the disabled path stamped anything or changed traffic.
void assert_causal_zero_cost() {
  static bool checked = false;
  if (checked) return;
  checked = true;
  const PumpTraffic off = run_observed_pump(false);
  const PumpTraffic on = run_observed_pump(true);
  if (off.stamps != 0 || on.stamps == 0 || off.bytes != on.bytes) {
    std::fprintf(stderr,
                 "causal zero-cost contract violated: off {bytes=%llu, "
                 "stamps=%llu} vs on {bytes=%llu, stamps=%llu}\n",
                 static_cast<unsigned long long>(off.bytes),
                 static_cast<unsigned long long>(off.stamps),
                 static_cast<unsigned long long>(on.bytes),
                 static_cast<unsigned long long>(on.stamps));
    std::abort();
  }
}

void BM_DriverPumpCausalOff(benchmark::State& state) {
  assert_causal_zero_cost();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_observed_pump(false).bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPumpNodes));
}
BENCHMARK(BM_DriverPumpCausalOff)->Unit(benchmark::kMillisecond);

void BM_DriverPumpCausalOn(benchmark::State& state) {
  assert_causal_zero_cost();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_observed_pump(true).bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPumpNodes));
}
BENCHMARK(BM_DriverPumpCausalOn)->Unit(benchmark::kMillisecond);

// --- Compressed-store codec costs (src/store/, docs/storage.md). These
// are the per-edge unit costs behind the massive_edges bench: the varint
// primitive both the legacy edge files and the block codec sit on, and a
// full block encode+decode round trip including both checksums.

/// Mixed-width values like the zigzag deltas of a PA emission stream:
/// mostly small (consecutive own nodes), occasionally large (chain jumps).
std::vector<std::uint64_t> varint_corpus(std::size_t count) {
  rng::Xoshiro256pp rng(7);
  std::vector<std::uint64_t> values(count);
  for (auto& v : values) v = rng() >> (rng() % 56);
  return values;
}

void BM_VarintEncode(benchmark::State& state) {
  const auto values = varint_corpus(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes.clear();
    for (const std::uint64_t v : values) graph::put_varint(bytes, v);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VarintEncode)->Arg(65536);

void BM_VarintDecode(benchmark::State& state) {
  const auto values = varint_corpus(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> bytes;
  for (const std::uint64_t v : values) graph::put_varint(bytes, v);
  for (auto _ : state) {
    std::size_t pos = 0;
    std::uint64_t sum = 0;
    while (pos < bytes.size()) sum += graph::get_varint(bytes, pos);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VarintDecode)->Arg(65536);

void BM_EdgeBlockRoundTrip(benchmark::State& state) {
  // One store block of PA-shaped edges: ascending u, targets scattered
  // below — the distribution the delta codec is tuned for.
  const auto block_edges = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256pp rng(11);
  graph::EdgeList edges(block_edges);
  for (std::size_t i = 0; i < block_edges; ++i) {
    const NodeId u = static_cast<NodeId>(1000 + i);
    edges[i] = {u, rng() % u};
  }
  std::vector<std::uint8_t> payload;
  graph::EdgeList decoded;
  for (auto _ : state) {
    const store::BlockHeader header = store::encode_block(edges, payload);
    decoded.clear();
    store::decode_block(header, payload, decoded);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["bytes_per_edge"] = benchmark::Counter(
      static_cast<double>(payload.size()) / static_cast<double>(block_edges));
}
BENCHMARK(BM_EdgeBlockRoundTrip)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
