// Shared --engine sweep for the fig benches (ISSUE 9 satellite).
//
// Runs every requested engine over a rank ladder through the core::generate
// facade, prints a per-engine message-volume table, and writes a
// BENCH_engines JSON report. The point of the report is the message-volume
// column: the mps engine's request/resolved traffic grows with P while the
// communication-free engine must report exactly zero logical messages at
// every rank count — the Sanders & Schulz pseudorandomization trade
// (recompute F_k locally instead of asking its owner).
#pragma once

#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/engine/engine.h"
#include "core/generate.h"
#include "core/load_stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace pagen::bench {

struct EngineSweepRow {
  std::string engine;
  int ranks = 1;
  double wall_s = 0.0;
  core::RankLoad total;  ///< merged across ranks (volumes sum)
};

/// Resolve --engine: "all" (default) -> every registered engine, otherwise a
/// comma-separated list of names, each validated against the registry (a
/// typo throws the registry's "unknown engine" CheckError listing the
/// alternatives).
inline std::vector<std::string> parse_engine_list(const std::string& arg) {
  std::vector<std::string> names;
  if (arg.empty() || arg == "all") {
    for (const core::Engine* e : core::EngineRegistry::instance().engines()) {
      names.emplace_back(e->name());
    }
    return names;
  }
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::size_t end = comma == std::string::npos ? arg.size() : comma;
    if (end > start) {
      const std::string name = arg.substr(start, end - start);
      (void)core::EngineRegistry::instance().require(name);
      names.push_back(name);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

/// Run each engine at every rung of the ladder it supports (single-rank
/// engines run at P = 1 only) and collect wall time plus the merged
/// message-volume counters. Streaming mode: no gather, no shards.
inline std::vector<EngineSweepRow> run_engine_sweep(
    const PaConfig& cfg, std::span<const std::string> engines,
    std::span<const int> rank_ladder, partition::Scheme scheme) {
  std::vector<EngineSweepRow> rows;
  for (const std::string& name : engines) {
    const core::Engine& engine =
        core::EngineRegistry::instance().require(name);
    const bool multi = engine.capabilities().multi_rank;
    for (const int p : rank_ladder) {
      if (p > 1 && !multi) continue;
      core::ParallelOptions opt;
      opt.engine = name;
      opt.ranks = p;
      opt.scheme = scheme;
      opt.gather_edges = false;
      Timer timer;
      const core::ParallelResult result = core::generate(cfg, opt);
      EngineSweepRow row;
      row.engine = name;
      row.ranks = p;
      row.wall_s = timer.seconds();
      row.total = core::merge_across_ranks(result.loads);
      rows.push_back(row);
      if (!multi) break;  // P = 1 is the only rung a sequential engine has
    }
  }
  return rows;
}

inline void print_engine_sweep(std::ostream& os,
                               std::span<const EngineSweepRow> rows) {
  Table t({"engine", "P", "wall_s", "edges", "req_out", "req_in", "res_out",
           "total_msgs"});
  for (const EngineSweepRow& r : rows) {
    t.add_row({r.engine, std::to_string(r.ranks), fmt_f(r.wall_s, 3),
               fmt_count(r.total.edges), fmt_count(r.total.requests_sent),
               fmt_count(r.total.requests_received),
               fmt_count(r.total.resolved_sent),
               fmt_count(r.total.total_messages())});
  }
  t.print(os);
  os << "\ncommfree recomputes remote F_k from the seed instead of asking\n"
        "its owner: the message-volume columns must read 0 at every P.\n";
}

/// BENCH_engines JSON: one row per (engine, P) with the full message-volume
/// breakdown, so CI can assert commfree's zero-message invariant from the
/// artifact alone.
inline bool write_engine_sweep_json(const std::string& path,
                                    const std::string& bench,
                                    const PaConfig& cfg,
                                    std::span<const EngineSweepRow> rows) {
  if (path.empty()) return false;
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) return false;
  os << "{\n"
     << "  \"schema\": \"pagen.bench.engines.v1\",\n"
     << "  \"bench\": \"" << bench << "\",\n"
     << "  \"config\": {\"n\": " << cfg.n << ", \"x\": " << cfg.x
     << ", \"p\": " << cfg.p << ", \"seed\": " << cfg.seed << "},\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EngineSweepRow& r = rows[i];
    os << "    {\"engine\": \"" << r.engine << "\", \"ranks\": " << r.ranks
       << ", \"wall_s\": " << r.wall_s << ", \"edges\": " << r.total.edges
       << ", \"requests_sent\": " << r.total.requests_sent
       << ", \"requests_received\": " << r.total.requests_received
       << ", \"resolved_sent\": " << r.total.resolved_sent
       << ", \"resolved_received\": " << r.total.resolved_received
       << ", \"queued\": " << r.total.queued
       << ", \"total_messages\": " << r.total.total_messages()
       << ", \"retries\": " << r.total.retries << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.good();
}

}  // namespace pagen::bench
