// Design-choice ablations (Section 3.5, "Message Buffering"):
//  (1) per-destination buffer capacity sweep — how much aggregation cuts
//      envelope counts (the paper's argument for buffering: fewer, larger
//      messages; too many outstanding messages otherwise);
//  (2) the RRP deadlock-avoidance rule — force-flushing resolved buffers
//      after every received batch is mandatory for RRP and merely adds small
//      flush traffic under consecutive schemes.
#include <iostream>

#include "core/generate.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ablation_buffering") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 500000);
  cfg.x = cli.get_u64("x", 4);
  cfg.seed = cli.get_u64("seed", 99);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 16));

  std::cout << "=== Ablation 1: message-buffer capacity (RRP, n="
            << fmt_count(cfg.n) << ", x=" << cfg.x << ", P=" << ranks
            << ") ===\n\n";

  Table t({"capacity", "envelopes", "bytes_sent", "alg_messages", "wall_s"});
  for (std::size_t capacity :
       {std::size_t{1}, std::size_t{4}, std::size_t{16}, std::size_t{64},
        std::size_t{256}, std::size_t{1024}, std::size_t{4096}}) {
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.scheme = partition::Scheme::kRrp;
    opt.buffer_capacity = capacity;
    opt.gather_edges = false;
    Timer timer;
    const auto result = core::generate(cfg, opt);
    const double secs = timer.seconds();
    Count envelopes = 0, bytes = 0, alg = 0;
    for (const auto& s : result.comm_stats) {
      envelopes += s.envelopes_sent;
      bytes += s.bytes_sent;
    }
    for (const auto& l : result.loads) alg += l.total_messages();
    t.add_row({std::to_string(capacity), fmt_count(envelopes),
               fmt_count(bytes), fmt_count(alg), fmt_f(secs, 2)});
  }
  t.print(std::cout);
  std::cout << "\nshape: algorithm-level message counts are invariant; the\n"
            << "envelope (wire) count collapses as capacity grows — the\n"
            << "paper's rationale for buffering.\n";

  std::cout << "\n=== Ablation 2: forced resolved-buffer flush rule ===\n"
            << "(consecutive schemes only; RRP requires the rule to avoid\n"
            << "deadlock, Sec. 3.5.2)\n\n";
  Table t2({"scheme", "flush_rule", "envelopes", "wall_s"});
  for (auto scheme : {partition::Scheme::kUcp, partition::Scheme::kLcp}) {
    for (bool rule : {true, false}) {
      core::ParallelOptions opt;
      opt.ranks = ranks;
      opt.scheme = scheme;
      opt.flush_resolved_after_batch = rule;
      opt.gather_edges = false;
      Timer timer;
      const auto result = core::generate(cfg, opt);
      Count envelopes = 0;
      for (const auto& s : result.comm_stats) envelopes += s.envelopes_sent;
      t2.add_row({partition::to_string(scheme), rule ? "on" : "off",
                  fmt_count(envelopes), fmt_f(timer.seconds(), 2)});
    }
  }
  t2.print(std::cout);
  std::cout << "\nshape: disabling the rule under CP schemes stays correct\n"
            << "(rank i only waits on ranks j < i) and trades a few extra\n"
            << "envelopes for delayed responses.\n";
  return 0;
}
