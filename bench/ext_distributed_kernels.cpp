// Extension: the distributed analytics kernel suite running over a
// generated network's per-rank shards — what the paper's target users
// (network scientists running epidemic/cascade/centrality studies on
// synthetic social networks) do right after generation, without ever
// gathering the edge list.
#include <iostream>

#include "core/distributed_bfs.h"
#include "core/distributed_cc.h"
#include "core/distributed_degree.h"
#include "core/distributed_triangles.h"
#include "core/generate.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ext_distributed_kernels") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 300000);
  cfg.x = cli.get_u64("x", 4);
  cfg.seed = cli.get_u64("seed", 19);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 8));

  std::cout << "=== Extension: distributed kernels over generated shards ===\n"
            << "n=" << fmt_count(cfg.n) << " x=" << cfg.x << " P=" << ranks
            << " (edges never gathered)\n\n";

  core::ParallelOptions opt;
  opt.ranks = ranks;
  opt.gather_edges = false;
  opt.keep_shards = true;
  Timer gen_timer;
  const auto gen = core::generate(cfg, opt);
  std::cout << "generation: " << fmt_count(gen.total_edges) << " edges in "
            << fmt_f(gen_timer.seconds(), 2) << " s\n\n";

  Table t({"kernel", "result", "detail", "seconds"});
  {
    Timer timer;
    const auto hist = core::distributed_degree_distribution(
        gen.shards, cfg.n, opt.scheme);
    Count hub = 0;
    for (const auto& [degree, count] : hist) hub = std::max(hub, degree);
    t.add_row({"degree distribution",
               std::to_string(hist.size()) + " degree classes",
               "max degree " + fmt_count(hub), fmt_f(timer.seconds(), 2)});
  }
  {
    Timer timer;
    const auto cc = core::distributed_connected_components(gen.shards, cfg.n,
                                                           opt.scheme);
    t.add_row({"connected components", fmt_count(cc.components) + " component",
               fmt_count(cc.rounds) + " label rounds",
               fmt_f(timer.seconds(), 2)});
  }
  {
    Timer timer;
    const auto bfs = core::distributed_bfs(gen.shards, cfg.n, opt.scheme, 0);
    t.add_row({"BFS from node 0",
               fmt_count(bfs.visited) + " visited, depth " +
                   fmt_count(bfs.levels),
               "peak frontier " + fmt_count(bfs.frontier_peak),
               fmt_f(timer.seconds(), 2)});
  }
  {
    Timer timer;
    const auto tri =
        core::distributed_triangle_count(gen.shards, cfg.n, opt.scheme);
    t.add_row({"triangle count", fmt_count(tri.triangles) + " triangles",
               fmt_count(tri.wedge_queries) + " wedge queries",
               fmt_f(timer.seconds(), 2)});
  }
  t.print(std::cout);

  std::cout << "\nall four kernels run BSP supersteps over the same shards\n"
            << "the generator produced — the \"generate on the fly and\n"
            << "analyze without disk I/O\" workflow of Section 3.2.\n";
  return 0;
}
