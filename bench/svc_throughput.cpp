// Generation-as-a-service load driver (ISSUE 5 acceptance bench).
//
// Replays a seeded mixed workload against svc::Server: hot repeated specs
// (result-cache serves), cold unique specs (full generation), and mid-flight
// cancels — with backpressure handled the way a real client would (wait for
// the oldest outstanding job, then resubmit). Every completed gather job's
// normalized edge hash is verified against a direct core::generate() golden
// hash for the same spec, so the run proves end-to-end determinism, not
// just liveness. Reports jobs/sec and tail latency to BENCH_svc.json.
//
//   ./svc_throughput                          # default: 96 jobs, 8 workers
//   ./svc_throughput --jobs=64 --scale=1000   # CI TSan stress size
//   ./svc_throughput --fault-plan=seed=9,drop=0.02 --reliable --rto=5:80
//       --checkpoint-dir=/tmp/ckpt --attempts=3    # degraded-transport drill
//
// The workload sequence is a pure function of --seed (SplitMix64 draws);
// wall-clock is measured for the report but never consulted for a decision.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/engine/engine_cli.h"
#include "core/generate.h"
#include "core/robustness_cli.h"
#include "graph/edge_list.h"
#include "obs/config.h"
#include "obs/session.h"
#include "rng/splitmix.h"
#include "svc/server.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

using namespace pagen;

/// FNV-1a of the normalized edge list — the golden-identity fingerprint
/// (same construction as tests/genrt_golden_test.cpp).
std::uint64_t hash_edges(graph::EdgeList edges) {
  graph::normalize(edges);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const graph::Edge& e : edges) {
    for (const std::uint64_t w : {e.u, e.v}) {
      for (int i = 0; i < 8; ++i) {
        h ^= (w >> (8 * i)) & 0xffU;
        h *= 0x100000001b3ULL;
      }
    }
  }
  return h;
}

/// Direct-generate golden hash for a spec, computed (and memoized) with the
/// exact ParallelOptions a Server worker would derive.
class GoldenBook {
 public:
  std::uint64_t of(const svc::JobSpec& spec) {
    const std::uint64_t key = svc::spec_hash(spec);
    const auto it = book_.find(key);
    if (it != book_.end()) return it->second;
    core::ParallelOptions opt;
    opt.engine = spec.engine;
    opt.ranks = spec.ranks;
    opt.scheme = spec.scheme;
    opt.buffer_capacity = spec.buffer_capacity;
    opt.node_batch = spec.node_batch;
    const std::uint64_t h = hash_edges(core::generate(spec.config, opt).edges);
    book_.emplace(key, h);
    return h;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> book_;
};

/// The reproducible-spec family (docs/serving.md §5): x = 1 on any rank
/// count, x > 1 single-rank — the specs whose regeneration is bitwise
/// repeatable, so served output can be checked against a golden hash.
svc::JobSpec make_spec(NodeId scale, std::uint64_t variant,
                       std::uint64_t seed) {
  svc::JobSpec spec;
  spec.sink = svc::Sink::kGather;
  spec.config.seed = seed;
  switch (variant % 4) {
    case 0:
      spec.config.n = scale;
      spec.config.x = 1;
      spec.ranks = 4;
      spec.scheme = partition::Scheme::kRrp;
      break;
    case 1:
      spec.config.n = scale + scale / 2;
      spec.config.x = 1;
      spec.ranks = 2;
      spec.scheme = partition::Scheme::kUcp;
      break;
    case 2:
      spec.config.n = scale / 2;
      spec.config.x = 4;
      spec.ranks = 1;  // x > 1 is only repeatable single-rank
      break;
    default:
      spec.config.n = scale;
      spec.config.x = 1;
      spec.ranks = 3;
      spec.scheme = partition::Scheme::kLcp;
      break;
  }
  return spec;
}

std::uint64_t percentile(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> keys = {"jobs",         "workers",   "queue",
                                   "cache",        "scale",     "seed",
                                   "cancel-every", "hot-specs", "attempts",
                                   "out"};
  for (const std::string& k : core::engine_cli_keys()) keys.push_back(k);
  for (const std::string& k : obs::cli_keys()) keys.push_back(k);
  for (const std::string& k : core::robustness_cli_keys()) keys.push_back(k);
  const Cli cli(argc, argv, std::move(keys));
  if (cli.help()) {
    std::cout << cli.usage("svc_throughput") << "\n";
    return 0;
  }
  const auto jobs = cli.get_u64("jobs", 96);
  const int workers = static_cast<int>(cli.get_u64("workers", 8));
  const auto queue_cap = cli.get_u64("queue", 24);
  const auto cache_entries = cli.get_u64("cache", 16);
  const auto scale = static_cast<NodeId>(cli.get_u64("scale", 4000));
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const auto cancel_every = cli.get_u64("cancel-every", 9);
  const auto hot_specs = cli.get_u64("hot-specs", 4);
  const auto attempts = static_cast<std::uint32_t>(cli.get_u64("attempts", 1));
  const std::string out_path = cli.get_str("out", "BENCH_svc.json");

  // Robustness flags (docs/robustness.md): collected into a ParallelOptions
  // scratch, then split by scope — the fault plan's transport keys plus
  // --reliable/--rto ride on every JobSpec, the svc-scope keys drive the
  // server's chaos injection, and --checkpoint-dir roots per-job retry
  // checkpoints.
  core::ParallelOptions robust;
  core::apply_robustness_cli(cli, robust);

  svc::ServerOptions server_options;
  server_options.workers = workers;
  server_options.queue_capacity = queue_cap;
  server_options.cache_entries = cache_entries;
  server_options.checkpoint_root = robust.checkpoint_dir;
  server_options.chaos = robust.fault_plan;
  svc::Server server(server_options);

  const std::string engine = cli.get_str("engine", "mps");
  const auto arm_spec = [&](svc::JobSpec spec) {
    spec.engine = engine;
    spec.max_attempts = attempts;
    spec.fault_plan = robust.fault_plan;
    spec.fault_plan.jobfail = 0.0;  // svc-scope keys stay server-side
    spec.fault_plan.storecorrupt = 0.0;
    spec.fault_plan.ckptcorrupt = 0.0;
    spec.reliable = robust.reliable;
    spec.rto_base_ms = robust.rto_base_ms;
    spec.rto_max_ms = robust.rto_max_ms;
    return spec;
  };
  GoldenBook golden;
  rng::SplitMix64 draw(seed);

  struct InFlight {
    svc::JobId id;
    svc::JobSpec spec;
    std::int64_t submit_ns;
    bool cancelled;
  };
  std::deque<InFlight> outstanding;
  std::vector<std::uint64_t> latencies_ns;
  Count verified = 0;
  Count mismatched = 0;
  Count cancels_sent = 0;
  Count full_retries = 0;

  const auto settle = [&](const InFlight& job) {
    const svc::JobStatus status = server.wait(job.id);
    if (status.state != svc::JobState::kCompleted) return;
    latencies_ns.push_back(
        static_cast<std::uint64_t>(now_ns() - job.submit_ns));
    if (status.output != nullptr && !status.output->edges.empty()) {
      if (hash_edges(status.output->edges) == golden.of(job.spec)) {
        ++verified;
      } else {
        ++mismatched;
        std::cerr << "HASH MISMATCH for job " << job.id << "\n";
      }
    }
  };

  Timer wall;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    // ~2/3 hot repeats over a small spec pool, ~1/3 cold unique specs.
    const std::uint64_t r = draw.next();
    const bool hot = r % 3 != 0;
    const svc::JobSpec spec =
        arm_spec(hot ? make_spec(scale, r, /*seed=*/1 + r % hot_specs)
                     : make_spec(scale, r, /*seed=*/1000 + j));

    svc::Server::Submitted sub = server.submit(spec);
    while (sub.reject == svc::Reject::kQueueFull) {
      // Backpressure: the client drains its oldest outstanding job and
      // retries — admission control sheds load without buffering it.
      ++full_retries;
      if (outstanding.empty()) break;
      settle(outstanding.front());
      outstanding.pop_front();
      sub = server.submit(spec);
    }
    if (sub.reject != svc::Reject::kNone) continue;

    InFlight job{sub.id, spec, now_ns(), false};
    if (!sub.from_cache && cancel_every != 0 && j % cancel_every == 2) {
      // Mid-flight (or still-queued) cancel of a job just admitted.
      job.cancelled = server.cancel(sub.id);
      cancels_sent += job.cancelled ? 1 : 0;
    }
    outstanding.push_back(job);
  }
  for (const InFlight& job : outstanding) settle(job);
  server.shutdown(true);
  const double wall_secs = wall.seconds();

  // Live service telemetry exports: the server's own svc.* registry (latency
  // stage histograms, admission counters) as deterministic JSON and/or
  // Prometheus text, plus an instrumented replay of one representative spec
  // when a causal trace was requested.
  const obs::Config obs_cfg = obs::config_from_cli(cli);
  if (!obs_cfg.metrics_out.empty()) {
    std::ofstream ms(obs_cfg.metrics_out, std::ios::trunc);
    server.write_metrics(ms);
  }
  if (!obs_cfg.prom_out.empty()) {
    std::ofstream ps(obs_cfg.prom_out, std::ios::trunc);
    server.write_prometheus(ps);
  }
  if (!obs_cfg.trace_out.empty()) {
    // The replay session owns only the trace artifact — metrics/prom above
    // come from the server's own registry, and a Session pre-truncates
    // every output path it is configured with.
    obs::Config replay_cfg = obs_cfg;
    replay_cfg.metrics_out.clear();
    replay_cfg.prom_out.clear();
    const svc::JobSpec spec = make_spec(scale, /*variant=*/0, /*seed=*/1);
    obs::Session session(spec.ranks, replay_cfg);
    core::ParallelOptions opt;
    opt.engine = spec.engine;
    opt.ranks = spec.ranks;
    opt.scheme = spec.scheme;
    opt.buffer_capacity = spec.buffer_capacity;
    opt.node_batch = spec.node_batch;
    opt.obs = &session;
    (void)core::generate(spec.config, opt);
    (void)session.export_files();
  }

  const svc::ServerStats stats = server.stats();
  const std::vector<std::string> incidents = server.incidents();
  const Count terminal = stats.completed + stats.cancelled + stats.expired +
                         stats.failed;
  const bool all_terminal = terminal == stats.accepted;
  const bool ok = mismatched == 0 && stats.failed == 0 && all_terminal &&
                  stats.cache_hits > 0 && verified > 0 &&
                  stats.queue_depth == 0 && stats.running == 0;

  const std::uint64_t p50 = percentile(latencies_ns, 0.50);
  const std::uint64_t p99 = percentile(latencies_ns, 0.99);
  const double jobs_per_sec =
      wall_secs > 0.0 ? static_cast<double>(stats.completed) / wall_secs : 0.0;

  std::ofstream os(out_path, std::ios::trunc);
  os << "{\n"
     << "  \"schema\": \"pagen.bench.svc.v1\",\n"
     << "  \"workload\": {\"jobs\": " << jobs << ", \"workers\": " << workers
     << ", \"queue_capacity\": " << queue_cap
     << ", \"cache_entries\": " << cache_entries
     << ", \"scale\": " << scale << ", \"seed\": " << seed
     << ", \"cancel_every\": " << cancel_every
     << ", \"hot_specs\": " << hot_specs << "},\n"
     << "  \"results\": {\n"
     << "    \"wall_seconds\": " << wall_secs << ",\n"
     << "    \"jobs_per_sec\": " << jobs_per_sec << ",\n"
     << "    \"latency_p50_ns\": " << p50 << ",\n"
     << "    \"latency_p99_ns\": " << p99 << ",\n"
     << "    \"submitted\": " << stats.submits << ",\n"
     << "    \"accepted\": " << stats.accepted << ",\n"
     << "    \"completed\": " << stats.completed << ",\n"
     << "    \"cancelled\": " << stats.cancelled << ",\n"
     << "    \"expired\": " << stats.expired << ",\n"
     << "    \"failed\": " << stats.failed << ",\n"
     << "    \"queue_full_retries\": " << full_retries << ",\n"
     << "    \"cancels_sent\": " << cancels_sent << ",\n"
     << "    \"cache_hits\": " << stats.cache_hits << ",\n"
     << "    \"cache_store_hits\": " << stats.cache_store_hits << ",\n"
     << "    \"cache_misses\": " << stats.cache_misses << ",\n"
     << "    \"hashes_verified\": " << verified << ",\n"
     << "    \"hashes_mismatched\": " << mismatched << ",\n"
     << "    \"incidents\": " << incidents.size() << "\n"
     << "  },\n"
     << "  \"acceptance\": \"" << (ok ? "PASS" : "FAIL")
     << ": zero wedged workers, cache hits > 0, every completed gather job "
        "hash-equal to direct generate\"\n"
     << "}\n";

  std::cout << "svc_throughput: " << stats.completed << " completed / "
            << stats.cancelled << " cancelled / " << stats.expired
            << " expired / " << stats.failed << " failed in "
            << wall_secs << " s (" << jobs_per_sec << " jobs/s); "
            << "cache hits " << stats.cache_hits << ", verified "
            << verified << ", mismatched " << mismatched << ", incidents "
            << incidents.size() << " -> "
            << (ok ? "PASS" : "FAIL") << " (" << out_path << ")\n";
  return ok ? 0 : 1;
}
