// Deterministic svc chaos harness (ISSUE 8 acceptance bench).
//
// Replays a seeded mixed workload against svc::Server while the service's
// own chaos plan injects job-attempt failures, result-store corruption, and
// checkpoint corruption, and every fourth cold spec additionally carries a
// transport-scope plan (rank crash + drop/dup) absorbed in-run by the
// respawn/reliable machinery. Around the main workload, two scripted
// drills exercise the overload ladder (shed + reject-with-hint against a
// paused queue) and the per-spec circuit breaker (a doomed spec fast-failed
// after k consecutive failures).
//
// The acceptance bar is the robustness determinism contract
// (docs/robustness.md §6): every non-shed, non-doomed job completes, every
// completed gather job's normalized edge hash equals the fault-free golden
// for its spec, at least one job provably resumed from checkpoints, and the
// breaker/shed paths both engaged. Reports to BENCH_svc_chaos.json.
//
//   ./svc_chaos                       # default: 48 jobs, 4 workers
//   ./svc_chaos --jobs=24 --scale=600 # CI TSan stress size
//
// The workload sequence, every chaos decision, and every job id are pure
// functions of --seed and the submission order (single-threaded submits),
// so a run replays exactly from its flags; wall-clock is measured for the
// report but never consulted for a decision.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/generate.h"
#include "core/robustness_cli.h"
#include "graph/edge_list.h"
#include "rng/splitmix.h"
#include "svc/server.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

using namespace pagen;

/// FNV-1a of the normalized edge list (same construction as
/// tests/genrt_golden_test.cpp and svc_throughput).
std::uint64_t hash_edges(graph::EdgeList edges) {
  graph::normalize(edges);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const graph::Edge& e : edges) {
    for (const std::uint64_t w : {e.u, e.v}) {
      for (int i = 0; i < 8; ++i) {
        h ^= (w >> (8 * i)) & 0xffU;
        h *= 0x100000001b3ULL;
      }
    }
  }
  return h;
}

/// Fault-free golden hashes, memoized by spec identity (the robustness
/// block is not part of spec_hash, so an armed spec shares its clean
/// golden).
class GoldenBook {
 public:
  std::uint64_t of(const svc::JobSpec& spec) {
    const std::uint64_t key = svc::spec_hash(spec);
    const auto it = book_.find(key);
    if (it != book_.end()) return it->second;
    core::ParallelOptions opt;
    opt.ranks = spec.ranks;
    opt.scheme = spec.scheme;
    opt.buffer_capacity = spec.buffer_capacity;
    opt.node_batch = spec.node_batch;
    const std::uint64_t h = hash_edges(core::generate(spec.config, opt).edges);
    book_.emplace(key, h);
    return h;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> book_;
};

/// The reproducible-spec family (docs/serving.md §5).
svc::JobSpec make_spec(NodeId scale, std::uint64_t variant,
                       std::uint64_t seed) {
  svc::JobSpec spec;
  spec.sink = svc::Sink::kGather;
  spec.config.seed = seed;
  switch (variant % 4) {
    case 0:
      spec.config.n = scale;
      spec.config.x = 1;
      spec.ranks = 4;
      spec.scheme = partition::Scheme::kRrp;
      break;
    case 1:
      spec.config.n = scale + scale / 2;
      spec.config.x = 1;
      spec.ranks = 2;
      spec.scheme = partition::Scheme::kUcp;
      break;
    case 2:
      spec.config.n = scale / 2;
      spec.config.x = 4;
      spec.ranks = 1;  // x > 1 is only repeatable single-rank
      break;
    default:
      spec.config.n = scale;
      spec.config.x = 1;
      spec.ranks = 3;
      spec.scheme = partition::Scheme::kLcp;
      break;
  }
  return spec;
}

std::uint64_t percentile(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> keys = {"jobs",   "workers", "queue",
                                   "scale",  "seed",    "attempts",
                                   "crash-every", "stores", "out",
                                   "incidents-out"};
  for (const std::string& k : core::robustness_cli_keys()) keys.push_back(k);
  const Cli cli(argc, argv, std::move(keys));
  if (cli.help()) {
    std::cout << cli.usage("svc_chaos") << "\n";
    return 0;
  }
  const auto jobs = cli.get_u64("jobs", 48);
  const int workers = static_cast<int>(cli.get_u64("workers", 4));
  const auto queue_cap = cli.get_u64("queue", 8);
  const auto scale = static_cast<NodeId>(cli.get_u64("scale", 1200));
  const std::uint64_t seed = cli.get_u64("seed", 3);
  const auto attempts = static_cast<std::uint32_t>(cli.get_u64("attempts", 3));
  const auto crash_every = cli.get_u64("crash-every", 4);
  const auto stores = cli.get_u64("stores", 4);
  const std::string out_path = cli.get_str("out", "BENCH_svc_chaos.json");
  // Optional post-mortem dump: the server's bounded incident ring (flight
  // records of retries, quarantines, sheds) — CI uploads it on failure.
  const std::string incidents_out = cli.get_str("incidents-out", "");

  // Robustness flags: --fault-plan is the service chaos plan (default
  // covers all three svc-scope faults, with the injection window one
  // attempt short of the default budget so every chaos-hit job still
  // completes); --checkpoint-dir roots the per-job retry checkpoints
  // (default: a scratch dir wiped at start).
  core::ParallelOptions robust;
  robust.fault_plan = mps::FaultPlan::parse(
      "seed=9,jobfail=0.6@2,storecorrupt=0.5,ckptcorrupt=0.5");
  core::apply_robustness_cli(cli, robust);
  std::string ckpt_root = robust.checkpoint_dir;
  if (ckpt_root.empty()) {
    ckpt_root = (std::filesystem::temp_directory_path() / "pagen_svc_chaos")
                    .string();
  }
  std::filesystem::remove_all(ckpt_root);
  const std::string store_root = ckpt_root + "/stores";

  svc::ServerOptions server_options;
  server_options.workers = workers;
  server_options.queue_capacity = queue_cap;
  server_options.cache_entries = 0;  // every repeat probes disk integrity
  server_options.start_paused = true;  // for the scripted overload drill
  server_options.checkpoint_root = ckpt_root;
  server_options.checkpoint_every = 64;
  server_options.breaker_threshold = 2;
  server_options.breaker_cooldown = 1000;  // stays open for this run
  server_options.chaos = robust.fault_plan;
  svc::Server server(server_options);
  GoldenBook golden;
  rng::SplitMix64 draw(seed);

  struct InFlight {
    svc::JobId id;
    svc::JobSpec spec;
    std::int64_t submit_ns;
  };
  std::deque<InFlight> outstanding;
  std::vector<std::uint64_t> latencies_ns;
  Count verified = 0;
  Count mismatched = 0;
  Count completed_jobs = 0;
  Count unexpected_terminal = 0;
  Count full_retries = 0;

  const auto settle = [&](const InFlight& job) {
    const svc::JobStatus status = server.wait(job.id);
    if (status.state != svc::JobState::kCompleted) {
      ++unexpected_terminal;
      std::cerr << "job " << job.id << " ended " << to_string(status.state)
                << ": " << status.error << "\n";
      return;
    }
    ++completed_jobs;
    latencies_ns.push_back(
        static_cast<std::uint64_t>(now_ns() - job.submit_ns));
    if (status.output != nullptr && !status.output->edges.empty()) {
      if (hash_edges(status.output->edges) == golden.of(job.spec)) {
        ++verified;
      } else {
        ++mismatched;
        std::cerr << "HASH MISMATCH for job " << job.id << "\n";
      }
    }
  };
  const auto submit_tracked = [&](const svc::JobSpec& spec) {
    svc::Server::Submitted sub = server.submit(spec);
    while (sub.reject == svc::Reject::kQueueFull) {
      ++full_retries;
      if (outstanding.empty()) break;
      settle(outstanding.front());
      outstanding.pop_front();
      sub = server.submit(spec);
    }
    if (sub.reject == svc::Reject::kNone) {
      outstanding.push_back({sub.id, spec, now_ns()});
    }
    return sub;
  };

  Timer wall;

  // --- Drill 1: the overload ladder, against the still-paused queue ---
  // Fill the queue with priority-0 work, then let higher-priority arrivals
  // shed the youngest of them; one more equal-priority submit earns a
  // reject with a retry-after hint. Scripted while paused so the shed set
  // is exact, not racing dispatch.
  std::vector<svc::JobId> shed_expected;
  Count overload_rejects = 0;
  {
    std::vector<svc::JobId> fillers;
    for (std::uint64_t q = 0; q < queue_cap; ++q) {
      svc::JobSpec spec = make_spec(scale / 4, q, 50 + q);
      spec.max_attempts = attempts;
      const auto sub = server.submit(spec);
      if (sub.reject != svc::Reject::kNone) break;
      fillers.push_back(sub.id);
      outstanding.push_back({sub.id, spec, now_ns()});
    }
    for (std::uint64_t h = 0; h < 2 && !fillers.empty(); ++h) {
      svc::JobSpec vip = make_spec(scale / 4, h, 70 + h);
      vip.max_attempts = attempts;
      vip.priority = 1;
      const auto sub = server.submit(vip);
      if (sub.reject == svc::Reject::kNone) {
        shed_expected.push_back(fillers.back());  // youngest lowest-priority
        fillers.pop_back();
        outstanding.push_back({sub.id, vip, now_ns()});
      }
    }
    svc::JobSpec extra = make_spec(scale / 4, 2, 90);
    extra.max_attempts = attempts;
    const auto rejected = server.submit(extra);
    if (rejected.reject == svc::Reject::kQueueFull &&
        rejected.retry_after > 0) {
      ++overload_rejects;
    }
  }
  // The shed victims are terminal before dispatch ever resumes; drop them
  // from the settle queue.
  for (const svc::JobId victim : shed_expected) {
    outstanding.erase(
        std::find_if(outstanding.begin(), outstanding.end(),
                     [&](const InFlight& f) { return f.id == victim; }));
    if (server.poll(victim).state != svc::JobState::kShed) {
      ++unexpected_terminal;
    }
  }
  server.resume();

  // --- Main workload: seeded mix under the chaos plan ---
  // Every crash_every-th job additionally rides a degraded transport
  // (scripted rank crash + drop/dup) absorbed in-run by respawn + reliable
  // delivery — faults below the job layer that must not consume attempts.
  for (std::uint64_t j = 0; j < jobs; ++j) {
    const std::uint64_t r = draw.next();
    svc::JobSpec spec = make_spec(scale, r, 1 + r % 6);
    spec.max_attempts = attempts;
    if (crash_every != 0 && j % crash_every == 1 && spec.ranks > 1) {
      spec.fault_plan = mps::FaultPlan::parse(
          "seed=" + std::to_string(11 + j) + ",crash=1@3,drop=0.02,dup=0.01");
      spec.max_respawns = 3;
    }
    (void)submit_tracked(spec);
  }

  // --- Store integrity segment: write, rot, quarantine, regenerate ---
  // Sharded-store producers run under storecorrupt chaos; each store is
  // then consumed twice via the probe path, which must quarantine a rotted
  // store and regenerate rather than serve poison.
  for (std::uint64_t s = 0; s < stores; ++s) {
    svc::JobSpec produce = make_spec(scale / 2, s, 200 + s);
    produce.max_attempts = attempts;
    produce.sink = svc::Sink::kShardedStore;
    produce.store_dir = store_root + "/s" + std::to_string(s);
    (void)submit_tracked(produce);
  }
  while (!outstanding.empty()) {
    settle(outstanding.front());
    outstanding.pop_front();
  }
  for (std::uint64_t s = 0; s < stores; ++s) {
    for (int round = 0; round < 2; ++round) {
      svc::JobSpec consume = make_spec(scale / 2, s, 200 + s);
      consume.max_attempts = attempts;
      consume.store_dir = store_root + "/s" + std::to_string(s);
      (void)submit_tracked(consume);
      while (!outstanding.empty()) {
        settle(outstanding.front());
        outstanding.pop_front();
      }
    }
  }

  // --- Drill 2: the circuit breaker, on a doomed spec ---
  // A rank-crash with no respawn budget and no retry budget fails
  // terminally every time; after breaker_threshold consecutive failures
  // the spec is fast-failed at admission.
  Count doomed_failed = 0;
  Count breaker_rejects = 0;
  {
    svc::JobSpec doomed = make_spec(scale / 4, 0, 999);
    doomed.fault_plan = mps::FaultPlan::parse("crash=0@2");
    doomed.max_respawns = 0;
    doomed.max_attempts = 1;
    for (int k = 0; k < 3; ++k) {
      const auto sub = server.submit(doomed);
      if (sub.reject == svc::Reject::kCircuitOpen) {
        ++breaker_rejects;
        continue;
      }
      if (sub.reject != svc::Reject::kNone) continue;
      if (server.wait(sub.id).state == svc::JobState::kFailed) {
        ++doomed_failed;
      }
    }
  }

  server.shutdown(true);
  const double wall_secs = wall.seconds();

  const svc::ServerStats stats = server.stats();
  const std::vector<std::string> incidents = server.incidents();
  if (!incidents_out.empty()) {
    std::ofstream ilog(incidents_out, std::ios::trunc);
    for (const std::string& line : incidents) ilog << line << "\n";
  }
  const std::uint64_t p50 = percentile(latencies_ns, 0.50);
  const std::uint64_t p99 = percentile(latencies_ns, 0.99);

  // Acceptance: every non-shed, non-doomed job completed; every completed
  // gather hash matched its fault-free golden; at least one retry provably
  // resumed from checkpoints; the shed, breaker, and quarantine paths all
  // engaged.
  const bool ok = unexpected_terminal == 0 && mismatched == 0 &&
                  verified > 0 && stats.retries > 0 && stats.resumed > 0 &&
                  stats.shed == shed_expected.size() &&
                  !shed_expected.empty() && overload_rejects > 0 &&
                  breaker_rejects > 0 && doomed_failed == 2 &&
                  stats.failed == doomed_failed &&
                  stats.quarantined_stores > 0 && stats.queue_depth == 0 &&
                  stats.running == 0;

  std::ofstream os(out_path, std::ios::trunc);
  os << "{\n"
     << "  \"schema\": \"pagen.bench.svc_chaos.v1\",\n"
     << "  \"workload\": {\"jobs\": " << jobs << ", \"workers\": " << workers
     << ", \"queue_capacity\": " << queue_cap << ", \"scale\": " << scale
     << ", \"seed\": " << seed << ", \"attempts\": " << attempts
     << ", \"crash_every\": " << crash_every << ", \"stores\": " << stores
     << ",\n    \"chaos_plan\": \"" << server_options.chaos.to_string()
     << "\"},\n"
     << "  \"results\": {\n"
     << "    \"wall_seconds\": " << wall_secs << ",\n"
     << "    \"latency_p50_ns\": " << p50 << ",\n"
     << "    \"latency_p99_ns\": " << p99 << ",\n"
     << "    \"submitted\": " << stats.submits << ",\n"
     << "    \"accepted\": " << stats.accepted << ",\n"
     << "    \"jobs_completed\": " << stats.completed << ",\n"
     << "    \"retries\": " << stats.retries << ",\n"
     << "    \"resumptions\": " << stats.resumed << ",\n"
     << "    \"shed\": " << stats.shed << ",\n"
     << "    \"overload_rejects\": " << overload_rejects << ",\n"
     << "    \"circuit_open_rejects\": " << stats.circuit_open_rejects
     << ",\n"
     << "    \"doomed_failed\": " << doomed_failed << ",\n"
     << "    \"stores_quarantined\": " << stats.quarantined_stores << ",\n"
     << "    \"checkpoints_quarantined\": " << stats.quarantined_checkpoints
     << ",\n"
     << "    \"store_serves\": " << stats.cache_store_hits << ",\n"
     << "    \"queue_full_retries\": " << full_retries << ",\n"
     << "    \"hashes_verified\": " << verified << ",\n"
     << "    \"hashes_mismatched\": " << mismatched << ",\n"
     << "    \"unexpected_terminal\": " << unexpected_terminal << ",\n"
     << "    \"incidents\": " << incidents.size() << "\n"
     << "  },\n"
     << "  \"acceptance\": \"" << (ok ? "PASS" : "FAIL")
     << ": all non-shed jobs completed with golden hashes under chaos, >= 1 "
        "checkpoint resumption, shed + breaker + quarantine engaged\"\n"
     << "}\n";

  std::cout << "svc_chaos: " << stats.completed << " completed, "
            << stats.retries << " retries, " << stats.resumed
            << " resumed, " << stats.shed << " shed, "
            << stats.quarantined_stores << " stores + "
            << stats.quarantined_checkpoints
            << " checkpoints quarantined, breaker rejects "
            << stats.circuit_open_rejects << ", verified " << verified
            << ", mismatched " << mismatched << " in " << wall_secs
            << " s -> " << (ok ? "PASS" : "FAIL") << " (" << out_path
            << ")\n";
  std::filesystem::remove_all(ckpt_root);
  return ok ? 0 : 1;
}
