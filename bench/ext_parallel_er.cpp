// Extension bench: the Erdős–Rényi contrast (paper Introduction / [24]).
//
// ER generation parallelizes with zero inter-rank messages (edges are
// independent), while PA needs the request/resolve protocol. This bench
// quantifies that contrast at matched output size, and shows ER's
// embarrassingly parallel load balance across rank counts.
#include <iostream>

#include "core/generate.h"
#include "core/parallel_er.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ext_parallel_er") << "\n";
    return 0;
  }
  const NodeId n = cli.get_u64("n", 500000);
  const NodeId x = cli.get_u64("x", 4);
  const std::uint64_t seed = cli.get_u64("seed", 24);

  std::cout << "=== Extension: parallel ER vs parallel PA at matched size ===\n"
            << "n=" << fmt_count(n) << ", ~" << fmt_count(n * x)
            << " edges each\n\n";

  const double er_p = 2.0 * static_cast<double>(n) * static_cast<double>(x) /
                      (static_cast<double>(n) * static_cast<double>(n - 1));

  Table t({"P", "ER_edges", "ER_s", "ER_msgs", "PA_edges", "PA_s", "PA_msgs"});
  for (int p : {1, 4, 16, 64}) {
    Timer er_timer;
    const auto er = core::generate_er({.n = n, .p = er_p, .seed = seed}, p,
                                      /*gather=*/false);
    const double er_s = er_timer.seconds();

    PaConfig cfg{.n = n, .x = x, .p = 0.5, .seed = seed};
    core::ParallelOptions opt;
    opt.ranks = p;
    opt.gather_edges = false;
    Timer pa_timer;
    const auto pa = core::generate(cfg, opt);
    const double pa_s = pa_timer.seconds();
    Count pa_msgs = 0;
    for (const auto& l : pa.loads) pa_msgs += l.total_messages();

    t.add_row({std::to_string(p), fmt_count(er.total_edges), fmt_f(er_s, 2),
               "0", fmt_count(pa.total_edges), fmt_f(pa_s, 2),
               fmt_count(pa_msgs)});
  }
  t.print(std::cout);
  std::cout << "\nshape: ER needs zero messages at any P (independent edges);\n"
            << "PA pays ~" << 2 * 2 << " messages per cross-rank copy but still\n"
            << "generates at the same order of throughput — the paper's point\n"
            << "that the dependency structure is manageable.\n";
  return 0;
}
