#include "baseline/watts_strogatz.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/metrics.h"
#include "util/error.h"

namespace pagen::baseline {
namespace {

TEST(WattsStrogatz, LatticeAtBetaZero) {
  const auto edges = watts_strogatz({.n = 20, .k = 4, .beta = 0.0, .seed = 1});
  EXPECT_EQ(edges.size(), 20u * 4 / 2);
  // Pure ring lattice: every node has degree exactly k.
  const auto deg = graph::degree_sequence(edges, 20);
  for (Count d : deg) EXPECT_EQ(d, 4u);
}

TEST(WattsStrogatz, EdgeCountInvariantUnderRewiring) {
  for (double beta : {0.0, 0.1, 0.5, 1.0}) {
    const auto edges =
        watts_strogatz({.n = 500, .k = 6, .beta = beta, .seed = 2});
    EXPECT_EQ(edges.size(), 500u * 6 / 2) << "beta=" << beta;
  }
}

TEST(WattsStrogatz, AlwaysSimpleGraph) {
  for (double beta : {0.1, 0.5, 1.0}) {
    const auto edges =
        watts_strogatz({.n = 1000, .k = 8, .beta = beta, .seed = 3});
    EXPECT_EQ(graph::count_self_loops(edges), 0u) << "beta=" << beta;
    EXPECT_EQ(graph::count_duplicates(edges), 0u) << "beta=" << beta;
  }
}

TEST(WattsStrogatz, DeterministicInSeed) {
  const WsConfig cfg{.n = 300, .k = 4, .beta = 0.3, .seed = 9};
  EXPECT_EQ(watts_strogatz(cfg), watts_strogatz(cfg));
  WsConfig other = cfg;
  other.seed = 10;
  EXPECT_NE(watts_strogatz(cfg), watts_strogatz(other));
}

TEST(WattsStrogatz, SmallRewiringShrinksDistances) {
  // The Watts–Strogatz phenomenon: a little rewiring collapses the mean
  // path length while clustering stays high.
  const NodeId n = 2000;
  const auto lattice = watts_strogatz({.n = n, .k = 6, .beta = 0.0, .seed = 4});
  const auto small_world =
      watts_strogatz({.n = n, .k = 6, .beta = 0.05, .seed = 4});
  const graph::CsrGraph gl(lattice, n);
  const graph::CsrGraph gs(small_world, n);
  const double dl = graph::sampled_mean_distance(gl, 3, 1);
  const double ds = graph::sampled_mean_distance(gs, 3, 1);
  EXPECT_LT(ds, dl / 3.0) << "rewiring must collapse path lengths";
  EXPECT_GT(graph::global_clustering(gs),
            0.5 * graph::global_clustering(gl))
      << "clustering must survive small beta";
}

TEST(WattsStrogatz, FullRewiringKillsClustering) {
  const NodeId n = 2000;
  const auto lattice = watts_strogatz({.n = n, .k = 6, .beta = 0.0, .seed = 5});
  const auto random_like =
      watts_strogatz({.n = n, .k = 6, .beta = 1.0, .seed = 5});
  const graph::CsrGraph gl(lattice, n);
  const graph::CsrGraph gr(random_like, n);
  EXPECT_LT(graph::global_clustering(gr),
            0.2 * graph::global_clustering(gl));
}

TEST(WattsStrogatz, NoHeavyTailUnlikePa) {
  // Related-models contrast from the paper's intro: WS keeps a homogeneous
  // degree distribution even at beta = 1.
  const NodeId n = 5000;
  const auto edges = watts_strogatz({.n = n, .k = 6, .beta = 1.0, .seed = 6});
  const auto deg = graph::degree_sequence(edges, n);
  const Count hub = *std::max_element(deg.begin(), deg.end());
  EXPECT_LT(hub, 30u) << "no scale-free hubs in a small-world graph";
}

TEST(WattsStrogatz, ValidatesConfig) {
  EXPECT_THROW(watts_strogatz({.n = 10, .k = 3, .beta = 0.1, .seed = 1}),
               CheckError);  // odd k
  EXPECT_THROW(watts_strogatz({.n = 4, .k = 4, .beta = 0.1, .seed = 1}),
               CheckError);  // k >= n
}

}  // namespace
}  // namespace pagen::baseline
