#include "graph/sharded_io.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen::graph {
namespace {

class ShardedIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pagen_shards_" + std::to_string(counter_++)))
               .string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::vector<EdgeList> sample_shards() {
    return {{{1, 0}, {2, 0}}, {{3, 1}}, {}, {{4, 2}, {5, 0}, {5, 1}}};
  }

  std::string dir_;
  static int counter_;
};
int ShardedIoTest::counter_ = 0;

TEST_F(ShardedIoTest, SaveLoadRoundTrip) {
  const auto shards = sample_shards();
  save_sharded(dir_, 6, shards);

  const ShardManifest m = load_manifest(dir_);
  EXPECT_EQ(m.num_nodes, 6u);
  EXPECT_EQ(m.num_shards, 4);
  EXPECT_EQ(m.total_edges(), 6u);

  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(load_shard(dir_, r), shards[static_cast<std::size_t>(r)]);
  }
}

TEST_F(ShardedIoTest, LoadAllConcatenatesInRankOrder) {
  const auto shards = sample_shards();
  save_sharded(dir_, 6, shards);
  const EdgeList all = load_all_shards(dir_);
  EdgeList expected;
  for (const auto& s : shards) expected.insert(expected.end(), s.begin(), s.end());
  EXPECT_EQ(all, expected);
}

TEST_F(ShardedIoTest, EmptyShardIsLegal) {
  save_sharded(dir_, 6, sample_shards());
  EXPECT_TRUE(load_shard(dir_, 2).empty());
}

TEST_F(ShardedIoTest, MissingManifestRejected) {
  std::filesystem::create_directories(dir_);
  EXPECT_THROW(load_manifest(dir_), CheckError);
}

TEST_F(ShardedIoTest, MissingShardDetectedAtManifestWrite) {
  const auto shards = sample_shards();
  // Write only 3 of 4 shards, then try to commit the manifest.
  for (int r = 0; r < 3; ++r) {
    write_shard(dir_, r, shards[static_cast<std::size_t>(r)]);
  }
  EXPECT_THROW(write_manifest(dir_, 6, shards), CheckError);
}

TEST_F(ShardedIoTest, CountMismatchDetectedAtLoad) {
  const auto shards = sample_shards();
  save_sharded(dir_, 6, shards);
  // Overwrite shard 1 with a different edge count behind the manifest's back.
  write_shard(dir_, 1, EdgeList{{3, 1}, {3, 2}});
  EXPECT_THROW(load_all_shards(dir_), CheckError);
}

TEST_F(ShardedIoTest, CorruptShardDetectedByChecksum) {
  const auto shards = sample_shards();
  save_sharded(dir_, 6, shards);
  // Flip a byte in shard 3's payload.
  const std::string path = shard_path(dir_, 3);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  char c;
  f.seekg(20);
  f.get(c);
  f.seekp(20);
  f.put(static_cast<char>(c ^ 1));
  f.close();
  EXPECT_THROW(load_shard(dir_, 3), CheckError);
}

TEST_F(ShardedIoTest, ManifestVersionChecked) {
  save_sharded(dir_, 6, sample_shards());
  std::ofstream m(dir_ + "/manifest.pagen");
  m << "pagen-shards 99\n";
  m.close();
  EXPECT_THROW(load_manifest(dir_), CheckError);
}

}  // namespace
}  // namespace pagen::graph
