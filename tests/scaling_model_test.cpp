#include "core/scaling_model.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen::core {
namespace {

RankLoad load_of(Count nodes, Count msgs_out, Count msgs_in) {
  RankLoad l;
  l.nodes = nodes;
  l.requests_sent = msgs_out;
  l.requests_received = msgs_in;
  return l;
}

TEST(Calibrate, DividesTimeByNodes) {
  const CostModel m = calibrate_cost_model(2.0, 1000000, 1.0);
  EXPECT_DOUBLE_EQ(m.sec_per_node, 2e-6);
  EXPECT_DOUBLE_EQ(m.sec_per_message, 2e-6);
}

TEST(Calibrate, MessageRatioApplied) {
  const CostModel m = calibrate_cost_model(1.0, 1000000, 3.0);
  EXPECT_DOUBLE_EQ(m.sec_per_message, 3.0 * m.sec_per_node);
}

TEST(Calibrate, RejectsDegenerateInput) {
  EXPECT_THROW((void)calibrate_cost_model(0.0, 100), CheckError);
  EXPECT_THROW((void)calibrate_cost_model(1.0, 0), CheckError);
}

TEST(ModeledTime, SingleRankHasNoCollectiveTerm) {
  CostModel m;
  m.sec_per_node = 1e-6;
  m.sec_per_message = 1e-6;
  m.sec_per_collective_hop = 1.0;  // would dominate if charged
  const std::vector<RankLoad> loads{load_of(1000, 0, 0)};
  EXPECT_NEAR(modeled_parallel_seconds(m, loads), 1e-3, 1e-12);
}

TEST(ModeledTime, DominatedBySlowestRank) {
  CostModel m;
  m.sec_per_node = 1e-6;
  m.sec_per_message = 0.0;
  m.sec_per_collective_hop = 0.0;
  const std::vector<RankLoad> loads{load_of(100, 0, 0), load_of(5000, 0, 0),
                                    load_of(100, 0, 0)};
  EXPECT_NEAR(modeled_parallel_seconds(m, loads), 5e-3, 1e-12);
}

TEST(ModeledTime, MessagesChargeBothDirections) {
  CostModel m;
  m.sec_per_node = 0.0;
  m.sec_per_message = 1e-3;
  m.sec_per_collective_hop = 0.0;
  const std::vector<RankLoad> loads{load_of(0, 4, 6)};
  EXPECT_NEAR(modeled_parallel_seconds(m, loads), 1e-2, 1e-12);
}

TEST(ModeledTime, CollectiveTermLogarithmic) {
  CostModel m;
  m.sec_per_node = 0.0;
  m.sec_per_message = 0.0;
  m.sec_per_collective_hop = 1.0;
  const std::vector<RankLoad> l8(8);
  const std::vector<RankLoad> l9(9);
  EXPECT_DOUBLE_EQ(modeled_parallel_seconds(m, l8), 3.0);
  EXPECT_DOUBLE_EQ(modeled_parallel_seconds(m, l9), 4.0);
}

TEST(ModeledTime, PerfectBalanceScalesLinearly) {
  CostModel m;
  m.sec_per_node = 1e-6;
  m.sec_per_message = 0.0;
  m.sec_per_collective_hop = 0.0;
  const std::vector<RankLoad> one{load_of(64000, 0, 0)};
  std::vector<RankLoad> sixteen(16, load_of(4000, 0, 0));
  const double t1 = modeled_parallel_seconds(m, one);
  const double t16 = modeled_parallel_seconds(m, sixteen);
  EXPECT_NEAR(t1 / t16, 16.0, 1e-9);
}

TEST(ModeledTime, SequentialReferenceSumsNodes) {
  CostModel m;
  m.sec_per_node = 1e-6;
  const std::vector<RankLoad> loads{load_of(1000, 50, 50),
                                    load_of(3000, 10, 10)};
  EXPECT_NEAR(modeled_sequential_seconds(m, loads), 4e-3, 1e-12);
}

TEST(ModeledTime, ImbalanceHurtsSpeedup) {
  // UCP-style skew: same total work, worse max => smaller modeled speedup.
  CostModel m;
  m.sec_per_node = 1e-6;
  m.sec_per_message = 1e-6;
  std::vector<RankLoad> balanced(8, load_of(1000, 100, 100));
  std::vector<RankLoad> skewed(8, load_of(1000, 100, 10));
  skewed[0] = load_of(1000, 100, 820);  // rank 0 swamped by requests
  EXPECT_LT(modeled_parallel_seconds(m, balanced),
            modeled_parallel_seconds(m, skewed));
}

}  // namespace
}  // namespace pagen::core
