#include "util/cli.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace pagen {
namespace {

Cli make(std::vector<const char*> args, std::vector<std::string> allowed) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data(), std::move(allowed));
}

TEST(Cli, ParsesKeyValues) {
  const Cli cli = make({"--n=1000", "--p=0.25", "--scheme=RRP"},
                       {"n", "p", "scheme"});
  EXPECT_EQ(cli.get_u64("n", 0), 1000u);
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0.0), 0.25);
  EXPECT_EQ(cli.get_str("scheme", ""), "RRP");
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make({}, {"n"});
  EXPECT_EQ(cli.get_u64("n", 42), 42u);
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, BareFlagIsTrue) {
  const Cli cli = make({"--verbose"}, {"verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, ExplicitBooleans) {
  const Cli cli = make({"--a=false", "--b=1", "--c=yes"}, {"a", "b", "c"});
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
}

TEST(Cli, RejectsUnknownKey) {
  EXPECT_THROW(make({"--oops=1"}, {"n"}), std::invalid_argument);
}

TEST(Cli, RejectsPositional) {
  EXPECT_THROW(make({"positional"}, {"n"}), std::invalid_argument);
}

TEST(Cli, HelpRecognized) {
  const Cli cli = make({"--help"}, {"n"});
  EXPECT_TRUE(cli.help());
}

TEST(Cli, UsageListsKeys) {
  const Cli cli = make({}, {"n", "x"});
  const std::string u = cli.usage("prog");
  EXPECT_NE(u.find("--n=VALUE"), std::string::npos);
  EXPECT_NE(u.find("--x=VALUE"), std::string::npos);
}

}  // namespace
}  // namespace pagen
