// Randomized property sweep: generate under randomly drawn configurations
// and assert every structural invariant. Catches interaction bugs the
// hand-picked parameter grids miss (odd rank counts vs tiny n, extreme p,
// buffer-capacity edge cases, scheme boundaries).
#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "graph/edge_list.h"
#include "rng/xoshiro.h"

namespace pagen::core {
namespace {

struct FuzzCase {
  PaConfig config;
  ParallelOptions options;
};

FuzzCase draw_case(rng::Xoshiro256pp& rng) {
  FuzzCase c;
  c.config.x = 1 + rng.below(8);
  c.config.n = c.config.x + 2 + rng.below(3000);
  c.config.p = 0.05 + 0.9 * rng.unit();
  c.config.seed = rng();
  c.options.ranks =
      1 + static_cast<int>(rng.below(std::min<Count>(c.config.n, 24)));
  c.options.scheme = static_cast<partition::Scheme>(rng.below(3));
  c.options.buffer_capacity = 1 + rng.below(300);
  c.options.node_batch = 1 + rng.below(2000);
  return c;
}

TEST(PropertyFuzz, RandomConfigsKeepAllInvariants) {
  rng::Xoshiro256pp rng(20130501);
  for (int trial = 0; trial < 40; ++trial) {
    const FuzzCase c = draw_case(rng);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": n=" << c.config.n
                 << " x=" << c.config.x << " p=" << c.config.p
                 << " ranks=" << c.options.ranks << " scheme="
                 << partition::to_string(c.options.scheme)
                 << " buffer=" << c.options.buffer_capacity
                 << " batch=" << c.options.node_batch
                 << " seed=" << c.config.seed);

    const auto result = generate(c.config, c.options);
    ASSERT_EQ(result.edges.size(), expected_edge_count(c.config));
    ASSERT_EQ(graph::count_self_loops(result.edges), 0u);
    ASSERT_EQ(graph::count_duplicates(result.edges), 0u);
    ASSERT_EQ(graph::connected_components(result.edges, c.config.n), 1u);
    for (const auto& e : result.edges) {
      ASSERT_LT(e.v, e.u);
      ASSERT_LT(e.u, c.config.n);
    }
  }
}

TEST(PropertyFuzz, X1AlwaysBitwiseExact) {
  rng::Xoshiro256pp rng(19991021);
  for (int trial = 0; trial < 30; ++trial) {
    FuzzCase c = draw_case(rng);
    c.config.x = 1;
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": n=" << c.config.n
                 << " p=" << c.config.p << " ranks=" << c.options.ranks
                 << " scheme=" << partition::to_string(c.options.scheme)
                 << " seed=" << c.config.seed);
    const auto result = generate(c.config, c.options);
    ASSERT_EQ(result.targets, baseline::copy_model_targets(c.config));
  }
}

TEST(PropertyFuzz, MessageConservationUnderRandomConfigs) {
  rng::Xoshiro256pp rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    FuzzCase c = draw_case(rng);
    c.options.gather_edges = false;
    const auto result = generate(c.config, c.options);
    Count req_out = 0, req_in = 0, res_out = 0, res_in = 0, edges = 0;
    for (const auto& l : result.loads) {
      req_out += l.requests_sent;
      req_in += l.requests_received;
      res_out += l.resolved_sent;
      res_in += l.resolved_received;
      edges += l.edges;
    }
    ASSERT_EQ(req_out, req_in) << "trial " << trial;
    ASSERT_EQ(res_out, res_in) << "trial " << trial;
    ASSERT_EQ(edges, expected_edge_count(c.config)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pagen::core
