// Service-level fault tolerance (docs/robustness.md §6): job retries with
// checkpoint resumption, store/checkpoint integrity quarantine, the
// overload ladder (shed, reject-with-hint, circuit breaker), and the
// cancel-vs-claim race. The load-bearing contract throughout: a job that
// completes after any amount of injected failure produces output
// bitwise-identical to a fault-free direct core::generate() call.
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "svc/server.h"

namespace pagen::svc {
namespace {

graph::EdgeList normalized(graph::EdgeList edges) {
  graph::normalize(edges);
  return edges;
}

core::ParallelOptions direct_options(const JobSpec& spec) {
  core::ParallelOptions opt;
  opt.ranks = spec.ranks;
  opt.scheme = spec.scheme;
  opt.buffer_capacity = spec.buffer_capacity;
  opt.node_batch = spec.node_batch;
  return opt;
}

JobSpec gather_spec(NodeId n, std::uint64_t seed, int ranks) {
  JobSpec spec;
  spec.config.n = n;
  spec.config.x = 1;  // the reproducible family at any rank count
  spec.config.seed = seed;
  spec.ranks = ranks;
  spec.sink = Sink::kGather;
  return spec;
}

JobId must_submit(Server& server, const JobSpec& spec) {
  const Server::Submitted sub = server.submit(spec);
  EXPECT_EQ(sub.reject, Reject::kNone) << to_string(sub.reject);
  return sub.id;
}

/// Fresh per-test scratch directory under the system temp dir.
std::string scratch_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("pagen_svc_fault_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A spec whose every attempt fails terminally: rank 0 is scripted to crash
/// at its 2nd send with no respawn budget, so the crash surfaces as an
/// attempt-level failure instead of being absorbed in-run. (The step must
/// be tiny: request batching means a rank makes only a handful of logical
/// sends per run.)
JobSpec always_failing_spec(std::uint64_t seed) {
  JobSpec spec = gather_spec(256, seed, 2);
  spec.fault_plan = mps::FaultPlan::parse("crash=0@2");
  spec.max_respawns = 0;
  return spec;
}

TEST(SvcFault, RetryResumesFromCheckpointAndMatchesGolden) {
  const std::string root = scratch_dir("resume");
  ServerOptions options;
  options.workers = 1;
  options.checkpoint_root = root;
  options.checkpoint_every = 4;
  // Every job's first attempt dies on a sink failure midway through the
  // run — late enough that checkpoints exist to resume from.
  options.chaos = mps::FaultPlan::parse("seed=1,jobfail=1.0@1");
  Server server(options);

  const JobSpec spec = [&] {
    JobSpec s = gather_spec(600, 7, 4);
    s.max_attempts = 3;
    return s;
  }();
  const JobStatus status = server.wait(must_submit(server, spec));
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_EQ(status.attempts, 2u) << "attempt 1 injected to fail";
  EXPECT_TRUE(status.resumed)
      << "the retry must provably restore checkpointed progress";

  // The acceptance bar: a resumed job's output is bitwise-identical to a
  // fault-free direct run of the same spec.
  const auto direct = core::generate(spec.config, direct_options(spec));
  EXPECT_EQ(normalized(status.output->edges), normalized(direct.edges));
  EXPECT_EQ(status.output->targets, direct.targets);
  EXPECT_EQ(status.output->total_edges, direct.total_edges);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.resumed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u) << "a recovered job is not a failed job";

  // The attempt ledger survives in the incident log even though the job
  // ultimately succeeded.
  bool saw_retry = false;
  for (const std::string& line : server.incidents()) {
    saw_retry = saw_retry || line.find("retrying after") != std::string::npos;
  }
  EXPECT_TRUE(saw_retry);

  server.shutdown(true);
  std::filesystem::remove_all(root);
}

TEST(SvcFault, RetryWithoutCheckpointRootRegeneratesFromScratch) {
  ServerOptions options;
  options.workers = 1;
  options.chaos = mps::FaultPlan::parse("seed=2,jobfail=1.0@1");
  Server server(options);  // no checkpoint_root: retries cold-start

  JobSpec spec = gather_spec(400, 11, 2);
  spec.max_attempts = 2;
  const JobStatus status = server.wait(must_submit(server, spec));
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_EQ(status.attempts, 2u);
  EXPECT_FALSE(status.resumed) << "nothing checkpointed, nothing restored";

  const auto direct = core::generate(spec.config, direct_options(spec));
  EXPECT_EQ(normalized(status.output->edges), normalized(direct.edges));
}

TEST(SvcFault, ExhaustedAttemptsFailTerminally) {
  ServerOptions options;
  options.workers = 1;
  options.chaos = mps::FaultPlan::parse("seed=3,jobfail=1.0@2");
  Server server(options);

  // Two attempts allowed, the injection covers both: terminal failure.
  JobSpec spec = gather_spec(300, 13, 2);
  spec.max_attempts = 2;
  const JobStatus status = server.wait(must_submit(server, spec));
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_EQ(status.attempts, 2u) << "budget consumed, then terminal";
  EXPECT_NE(status.error.find("injected jobfail"), std::string::npos)
      << status.error;
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failed, 1u);

  // The server survives, and one more attempt of budget outlasts the same
  // injection window.
  JobSpec good = gather_spec(200, 14, 2);
  good.max_attempts = 3;
  const JobStatus ok = server.wait(must_submit(server, good));
  ASSERT_EQ(ok.state, JobState::kCompleted) << ok.error;
  EXPECT_EQ(ok.attempts, 3u);
}

TEST(SvcFault, RankCrashBeyondRespawnBudgetIsAnAttemptFailure) {
  Server server({.workers = 1});
  JobSpec spec = always_failing_spec(17);
  spec.max_attempts = 2;
  const JobStatus status = server.wait(must_submit(server, spec));
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_EQ(status.attempts, 2u);
  EXPECT_NE(status.error.find("injected crash"), std::string::npos)
      << status.error;

  // The crash was contained to the job: the worker pool serves the next
  // spec, and the same workload *with* a respawn budget completes in-run.
  JobSpec recovered = always_failing_spec(17);
  recovered.max_respawns = 3;
  recovered.config.seed = 18;  // distinct spec: skip the cache
  const JobStatus ok = server.wait(must_submit(server, recovered));
  ASSERT_EQ(ok.state, JobState::kCompleted) << ok.error;
  EXPECT_EQ(ok.attempts, 1u) << "respawn absorbs the crash inside the run";
}

TEST(SvcFault, CorruptStoreIsQuarantinedAndRegenerated) {
  const std::string dir = scratch_dir("store");
  JobSpec spec = gather_spec(240, 5, 3);
  spec.sink = Sink::kShardedStore;
  spec.store_dir = dir;

  {
    // Producer with store-corruption chaos: the job completes, then its
    // freshly sealed store is rotted behind its back.
    ServerOptions options;
    options.workers = 1;
    options.cache_entries = 0;  // force every repeat to the store probe
    options.chaos = mps::FaultPlan::parse("seed=4,storecorrupt=1.0");
    Server server(options);
    const JobStatus status = server.wait(must_submit(server, spec));
    ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  }

  // A clean consumer probes the rotted store: quarantined, regenerated
  // fresh, and the regenerated output still matches the fault-free golden.
  JobSpec consume = spec;
  consume.sink = Sink::kGather;
  ServerOptions options;
  options.workers = 1;
  options.cache_entries = 0;
  Server server(options);
  const Server::Submitted sub = server.submit(consume);
  ASSERT_EQ(sub.reject, Reject::kNone);
  EXPECT_FALSE(sub.from_cache) << "poison must never be served";
  const JobStatus status = server.wait(sub.id);
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_EQ(server.stats().quarantined_stores, 1u);

  const auto direct = core::generate(consume.config, direct_options(consume));
  EXPECT_EQ(normalized(status.output->edges), normalized(direct.edges));

  bool saw_quarantine = false;
  for (const std::string& line : server.incidents()) {
    saw_quarantine =
        saw_quarantine || line.find("quarantined") != std::string::npos;
  }
  EXPECT_TRUE(saw_quarantine);

  // The gather regeneration did not re-seal the store (only kShardedStore
  // jobs write it); a store-sink submit rebuilds and re-seals it, after
  // which the probe serves from disk again.
  const JobStatus resealed = server.wait(must_submit(server, spec));
  ASSERT_EQ(resealed.state, JobState::kCompleted) << resealed.error;
  EXPECT_TRUE(server.submit(spec).from_cache);
  server.shutdown(true);
  std::filesystem::remove_all(dir);
}

TEST(SvcFault, CorruptCheckpointIsQuarantinedAndTheRestResume) {
  const std::string root = scratch_dir("ckptrot");
  ServerOptions options;
  options.workers = 1;
  options.checkpoint_root = root;
  options.checkpoint_every = 4;
  // Attempt 1 fails, then one rank's checkpoint is bit-flipped before the
  // retry: the pre-resume integrity pass must quarantine exactly that file
  // (that rank cold-starts) while the other ranks still resume. Four ranks
  // so that survivors with checkpoints remain after the flip.
  options.chaos = mps::FaultPlan::parse("seed=5,jobfail=1.0@1,ckptcorrupt=1.0");
  Server server(options);

  JobSpec spec = gather_spec(600, 23, 4);
  spec.max_attempts = 3;
  const JobStatus status = server.wait(must_submit(server, spec));
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_EQ(status.attempts, 2u);
  EXPECT_TRUE(status.resumed) << "the unrotted rank still restored progress";
  EXPECT_GE(server.stats().quarantined_checkpoints, 1u);

  const auto direct = core::generate(spec.config, direct_options(spec));
  EXPECT_EQ(normalized(status.output->edges), normalized(direct.edges));
  EXPECT_EQ(status.output->targets, direct.targets);
  server.shutdown(true);
  std::filesystem::remove_all(root);
}

TEST(SvcFault, OverloadLadderShedsStrictlyLowerPriorityFirst) {
  Server server({.workers = 1, .queue_capacity = 2, .start_paused = true});
  const JobId low = must_submit(server, [&] {
    JobSpec s = gather_spec(128, 30, 2);
    s.priority = 0;
    return s;
  }());
  const JobId mid = must_submit(server, [&] {
    JobSpec s = gather_spec(128, 31, 2);
    s.priority = 1;
    return s;
  }());

  // A higher-priority arrival at capacity sheds the least important job.
  JobSpec high = gather_spec(128, 32, 2);
  high.priority = 2;
  const JobId kept = must_submit(server, high);
  EXPECT_EQ(server.poll(low).state, JobState::kShed);
  EXPECT_EQ(server.poll(mid).state, JobState::kQueued);

  // An equal-priority arrival does not shed equals: reject with a
  // retry-after hint instead.
  JobSpec equal = gather_spec(128, 33, 2);
  equal.priority = 1;
  const Server::Submitted rejected = server.submit(equal);
  EXPECT_EQ(rejected.reject, Reject::kQueueFull);
  EXPECT_GT(rejected.retry_after, 0u) << "overload rejects carry a hint";

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  bool saw_shed = false;
  for (const std::string& line : server.incidents()) {
    saw_shed = saw_shed ||
               line.find("shed for higher-priority arrival") !=
                   std::string::npos;
  }
  EXPECT_TRUE(saw_shed);

  // The survivors drain normally; wait() on the shed job returns kShed.
  server.resume();
  EXPECT_EQ(server.wait(low).state, JobState::kShed);
  EXPECT_EQ(server.wait(mid).state, JobState::kCompleted);
  EXPECT_EQ(server.wait(kept).state, JobState::kCompleted);
}

TEST(SvcFault, CircuitBreakerOpensAfterConsecutiveFailuresThenHalfOpens) {
  ServerOptions options;
  options.workers = 1;
  options.breaker_threshold = 2;
  options.breaker_cooldown = 2;
  Server server(options);

  const JobSpec bad = [] {
    JobSpec s = always_failing_spec(40);
    s.max_attempts = 1;
    return s;
  }();
  EXPECT_EQ(server.wait(must_submit(server, bad)).state, JobState::kFailed);
  EXPECT_EQ(server.wait(must_submit(server, bad)).state, JobState::kFailed);

  // Two consecutive failures tripped the breaker: fast-fail, no worker burn.
  const Server::Submitted blocked = server.submit(bad);
  EXPECT_EQ(blocked.reject, Reject::kCircuitOpen);
  EXPECT_EQ(blocked.retry_after, options.breaker_cooldown);
  EXPECT_EQ(server.stats().circuit_open_rejects, 1u);

  // Other specs are unaffected; their accepts advance the admission tick
  // through the cooldown window.
  EXPECT_EQ(server.wait(must_submit(server, gather_spec(128, 41, 2))).state,
            JobState::kCompleted);
  EXPECT_EQ(server.wait(must_submit(server, gather_spec(128, 42, 2))).state,
            JobState::kCompleted);

  // Past the cooldown the breaker half-opens: one probationary attempt runs
  // (and, still failing, re-opens the circuit immediately).
  EXPECT_EQ(server.wait(must_submit(server, bad)).state, JobState::kFailed);
  EXPECT_EQ(server.submit(bad).reject, Reject::kCircuitOpen)
      << "one failed probe re-opens a half-open breaker";
}

TEST(SvcFault, CancelStormRacingWorkerClaimsStaysConsistent) {
  // The queue.remove(id)-vs-worker-pop race, run as a storm: cancels land
  // while workers claim, dispatch, and finish the same ids. Every job must
  // end terminal in {cancelled, completed} with the tallies adding up
  // (TSan-clean under the sanitizer CI preset).
  Server server({.workers = 4, .queue_capacity = 64});
  constexpr int kJobs = 24;
  std::vector<JobId> ids;
  ids.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    ids.push_back(must_submit(server, gather_spec(96, 100 + j, 2)));
  }
  std::thread canceller([&] {
    for (std::size_t j = 0; j < ids.size(); j += 2) {
      (void)server.cancel(ids[j]);  // false when it already finished: fine
    }
  });
  canceller.join();

  Count cancelled = 0;
  Count completed = 0;
  for (const JobId id : ids) {
    const JobStatus status = server.wait(id);
    ASSERT_TRUE(terminal(status.state)) << to_string(status.state);
    if (status.state == JobState::kCancelled) ++cancelled;
    if (status.state == JobState::kCompleted) ++completed;
    if (status.state == JobState::kCompleted) {
      ASSERT_NE(status.output, nullptr);
    }
  }
  EXPECT_EQ(cancelled + completed, static_cast<Count>(kJobs));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.completed, completed);
}

}  // namespace
}  // namespace pagen::svc
