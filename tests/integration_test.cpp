// End-to-end pipelines across modules: generate -> persist -> reload ->
// analyze, mirroring what the examples do.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "analysis/degree_dist.h"
#include "analysis/load_balance.h"
#include "analysis/powerlaw_fit.h"
#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "core/scaling_model.h"
#include "graph/csr.h"
#include "graph/io.h"

namespace pagen {
namespace {

TEST(Integration, GeneratePersistReloadAnalyze) {
  const PaConfig cfg{.n = 30000, .x = 4, .p = 0.5, .seed = 99};
  core::ParallelOptions opt;
  opt.ranks = 8;
  opt.scheme = partition::Scheme::kRrp;
  const auto result = core::generate(cfg, opt);
  ASSERT_EQ(result.edges.size(), expected_edge_count(cfg));

  const std::string path =
      (std::filesystem::temp_directory_path() / "pagen_integration.bin")
          .string();
  graph::save_binary(path, result.edges);
  const auto reloaded = graph::load_binary(path);
  std::remove(path.c_str());
  ASSERT_EQ(reloaded, result.edges);

  const auto deg = graph::degree_sequence(reloaded, cfg.n);
  const auto fit = analysis::fit_gamma_mle(deg, cfg.x);
  EXPECT_GT(fit.gamma, 2.0);
  EXPECT_LT(fit.gamma, 4.0);

  const graph::CsrGraph g(reloaded, cfg.n);
  const NodeId hub = g.max_degree_node();
  EXPECT_LT(hub, NodeId{200}) << "hubs concentrate among the oldest nodes";
  EXPECT_GT(g.degree(hub), Count{100});
}

TEST(Integration, LoadCountersFeedScalingModel) {
  const PaConfig cfg{.n = 40000, .x = 2, .p = 0.5, .seed = 5};
  core::ParallelOptions opt;
  opt.ranks = 16;
  opt.scheme = partition::Scheme::kUcp;
  opt.gather_edges = false;
  const auto ucp = core::generate(cfg, opt);
  opt.scheme = partition::Scheme::kRrp;
  const auto rrp = core::generate(cfg, opt);

  // UCP's total-load imbalance must exceed RRP's (Fig. 7(d)).
  const auto imb_ucp =
      analysis::summarize_metric(ucp.loads, analysis::LoadMetric::kTotalLoad)
          .imbalance;
  const auto imb_rrp =
      analysis::summarize_metric(rrp.loads, analysis::LoadMetric::kTotalLoad)
          .imbalance;
  EXPECT_GT(imb_ucp, imb_rrp);

  // And the scaling model must therefore favor RRP.
  const core::CostModel model = core::calibrate_cost_model(1.0, cfg.n, 1.0);
  EXPECT_GT(core::modeled_parallel_seconds(model, ucp.loads),
            core::modeled_parallel_seconds(model, rrp.loads));
}

TEST(Integration, DegreeDistributionPipelineMatchesAcrossPaths) {
  // The analysis must see the same distribution whether edges come from the
  // parallel or the sequential generator (x = 1 is bitwise identical).
  const PaConfig cfg{.n = 50000, .x = 1, .p = 0.5, .seed = 31};
  core::ParallelOptions opt;
  opt.ranks = 8;
  const auto par = core::generate(cfg, opt);
  const auto seq = baseline::copy_model_x1(cfg);
  const auto deg_par = graph::degree_sequence(par.edges, cfg.n);
  const auto deg_seq = graph::degree_sequence(seq, cfg.n);
  EXPECT_EQ(deg_par, deg_seq);

  const auto pdf = analysis::log_binned_pdf(deg_par);
  EXPECT_GE(pdf.size(), 5u) << "tail spans multiple log bins";
}

TEST(Integration, TextAndBinaryFormatsAgree) {
  const PaConfig cfg{.n = 2000, .x = 3, .p = 0.5, .seed = 55};
  core::ParallelOptions opt;
  opt.ranks = 3;
  const auto result = core::generate(cfg, opt);

  std::stringstream text, binary;
  graph::write_text(text, result.edges);
  graph::write_binary(binary, result.edges);
  EXPECT_EQ(graph::read_text(text), graph::read_binary(binary));
}

}  // namespace
}  // namespace pagen
