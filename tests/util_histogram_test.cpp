#include "util/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen {
namespace {

TEST(IntHistogram, CountsAndTotals) {
  IntHistogram h(10);
  h.add(3);
  h.add(3);
  h.add(7, 5);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 5u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(IntHistogram, ClampsOverflowIntoLastBin) {
  IntHistogram h(4);
  h.add(4);
  h.add(100);
  EXPECT_EQ(h.count(4), 2u);
}

TEST(IntHistogram, BinsSkipEmpty) {
  IntHistogram h(100);
  h.add(2);
  h.add(50);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].center, 2.0);
  EXPECT_DOUBLE_EQ(bins[1].center, 50.0);
}

TEST(LogHistogram, BinBoundariesGrowGeometrically) {
  LogHistogram h(2.0);
  h.add(1.0);   // bin [1,2)
  h.add(1.5);   // bin [1,2)
  h.add(2.0);   // bin [2,4)
  h.add(3.9);   // bin [2,4)
  h.add(4.0);   // bin [4,8)
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_NEAR(bins[0].center, std::sqrt(2.0), 1e-12);
}

TEST(LogHistogram, HandlesValuesBelowOne) {
  LogHistogram h(2.0);
  h.add(0.3);
  h.add(8.0);
  EXPECT_EQ(h.total(), 2u);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_LT(bins[0].center, 1.0);
}

TEST(LogHistogram, GrowsDownwardAfterTheFact) {
  LogHistogram h(2.0);
  h.add(64.0);
  h.add(0.5);  // forces a prepend of bins
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 1u);
}

TEST(LogHistogram, RejectsNonPositive) {
  LogHistogram h;
  EXPECT_THROW(h.add(0.0), CheckError);
  EXPECT_THROW(h.add(-1.0), CheckError);
}

TEST(LogHistogram, TotalMatchesWeights) {
  LogHistogram h(1.5);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.total(), 100u);
  std::uint64_t sum = 0;
  for (const auto& b : h.bins()) sum += b.count;
  EXPECT_EQ(sum, 100u);
}

}  // namespace
}  // namespace pagen
