// Minimal strict JSON well-formedness checker for tests.
//
// Validates structure only (objects, arrays, strings, numbers, literals) —
// enough to assert the exported trace/metrics artifacts will load in any
// real parser (Perfetto, python json, CMake string(JSON)). Returns an error
// description instead of throwing so tests can EXPECT on it.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace pagen::testing {

class JsonLint {
 public:
  /// Returns "" when `text` is one valid JSON value (with optional trailing
  /// whitespace), else a short error with the offending offset.
  static std::string check(const std::string& text) {
    JsonLint lint(text);
    if (!lint.value()) return lint.error_;
    lint.ws();
    if (lint.pos_ != text.size()) return lint.fail("trailing garbage");
    return "";
  }

 private:
  explicit JsonLint(const std::string& t) : text_(t) {}

  std::string fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return error_;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (eof() || peek() != *c) {
        fail(std::string("bad literal, expected ") + word);
        return false;
      }
    }
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      fail("bad number");
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        fail("bad fraction");
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        fail("bad exponent");
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    return true;
  }

  bool string() {
    ++pos_;  // opening quote
    while (true) {
      if (eof()) {
        fail("unterminated string");
        return false;
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control char in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) {
          fail("dangling escape");
          return false;
        }
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              fail("bad \\u escape");
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          fail("bad escape");
          return false;
        }
      }
      ++pos_;
    }
  }

  bool object() {
    ++pos_;  // '{'
    ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      ws();
      if (eof() || peek() != '"') {
        fail("expected object key");
        return false;
      }
      if (!string()) return false;
      ws();
      if (eof() || peek() != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      if (!value()) return false;
      ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool value() {
    ws();
    if (eof()) {
      fail("unexpected end of input");
      return false;
    }
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace pagen::testing
