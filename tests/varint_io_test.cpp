#include "graph/varint_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "graph/io.h"
#include "util/error.h"

namespace pagen::graph {
namespace {

TEST(Varint, EncodeDecodeBoundaries) {
  std::vector<std::uint8_t> buf;
  const std::vector<std::uint64_t> values{
      0, 1, 127, 128, 129, 16383, 16384, 1ull << 32, ~0ull};
  for (auto v : values) put_varint(buf, v);
  std::size_t pos = 0;
  for (auto v : values) EXPECT_EQ(get_varint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, SingleByteForSmallValues) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // 1 + 2
}

TEST(Varint, TruncationDetected) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1u << 20);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(buf, pos), CheckError);
}

TEST(VarintEdges, RoundTripNormalizes) {
  const EdgeList edges{{5, 2}, {1, 0}, {9, 5}, {2, 5}};
  std::stringstream ss;
  write_varint_edges(ss, edges);
  const EdgeList back = read_varint_edges(ss);
  EdgeList expected = edges;
  normalize(expected);
  EXPECT_EQ(back, expected);
}

TEST(VarintEdges, EmptyList) {
  std::stringstream ss;
  write_varint_edges(ss, {});
  EXPECT_TRUE(read_varint_edges(ss).empty());
}

TEST(VarintEdges, DuplicatesSurviveRoundTrip) {
  const EdgeList edges{{1, 0}, {1, 0}, {1, 0}};
  std::stringstream ss;
  write_varint_edges(ss, edges);
  EXPECT_EQ(read_varint_edges(ss).size(), 3u);
}

TEST(VarintEdges, BadMagicRejected) {
  std::stringstream ss("WRONGMAGIC........");
  EXPECT_THROW(read_varint_edges(ss), CheckError);
}

TEST(VarintEdges, CompressionBeatsRawBinaryOnPaGraphs) {
  const PaConfig cfg{.n = 50000, .x = 4, .p = 0.5, .seed = 3};
  const auto result = baseline::copy_model_general(cfg);

  std::stringstream raw, compressed;
  write_binary(raw, result.edges);
  write_varint_edges(compressed, result.edges);
  const auto raw_size = raw.str().size();
  const auto varint_size = compressed.str().size();
  EXPECT_LT(varint_size * 3, raw_size)
      << "expected >= 3x compression, got " << raw_size << " -> "
      << varint_size;

  // And the payload is intact.
  auto expected = result.edges;
  normalize(expected);
  EXPECT_EQ(read_varint_edges(compressed), expected);
}

TEST(VarintEdges, FileRoundTrip) {
  const EdgeList edges{{3, 1}, {4, 1}, {4, 2}};
  const std::string path = "/tmp/pagen_varint_test.bin";
  save_varint(path, edges);
  EdgeList expected = edges;
  normalize(expected);  // the format stores canonical (min, max) order
  EXPECT_EQ(load_varint(path), expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pagen::graph
