// Cross-engine equivalence (ISSUE 9): every registered engine, driven
// through the core::generate() facade, must sample the same degree
// distribution as the sequential copy-model oracle — KS distance below the
// two-sample critical value at P in {1, 2, 4, 7}, with capability-gated
// skips for single-rank engines. The communication-free engine is pinned
// harder: bitwise-identical output to the oracle for every P and scheme,
// with identically zero request/resolved message volume, and a power-law
// degree exponent in the preferential-attachment range.
//
// When PAGEN_ENGINE_REPORT names a file, the KS sweep also writes the
// per-engine KS / message-volume report that the engine-equivalence CI job
// uploads as an artifact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ks_distance.h"
#include "analysis/powerlaw_fit.h"
#include "baseline/copy_model_seq.h"
#include "core/engine/engine.h"
#include "core/generate.h"
#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::core {
namespace {

constexpr int kRankSweep[] = {1, 2, 4, 7};

graph::EdgeList normalized(graph::EdgeList edges) {
  graph::normalize(edges);
  return edges;
}

PaConfig oracle_config() {
  PaConfig cfg;
  cfg.n = 20000;
  cfg.x = 4;
  cfg.p = 0.5;  // the copy model at p = 1/2 is exact preferential attachment
  cfg.seed = 7;
  return cfg;
}

TEST(EngineRegistry, ListsTheBuiltinEngines) {
  auto& reg = EngineRegistry::instance();
  for (const char* name : {"mps", "commfree", "seq-copy", "seq-bb"}) {
    const Engine* engine = reg.find(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->name(), name);
    EXPECT_FALSE(engine->description().empty());
  }
  EXPECT_EQ(reg.find("no-such-engine"), nullptr);
  EXPECT_GE(reg.engines().size(), 4U);
}

TEST(EngineRegistry, RequireNamesTheAlternativesOnUnknown) {
  try {
    (void)EngineRegistry::instance().require("warp-drive");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown engine 'warp-drive'"), std::string::npos);
    EXPECT_NE(what.find("mps"), std::string::npos);
    EXPECT_NE(what.find("commfree"), std::string::npos);
  }
}

TEST(EngineEquivalence, KsDistanceVsSequentialOracleForEveryEngine) {
  const PaConfig cfg = oracle_config();
  const baseline::GeneralResult oracle = baseline::copy_model_general(cfg);
  const std::vector<Count> oracle_deg =
      graph::degree_sequence(oracle.edges, cfg.n);

  std::ostringstream report;
  report << "{\n  \"config\": {\"n\": " << cfg.n << ", \"x\": " << cfg.x
         << ", \"p\": " << cfg.p << ", \"seed\": " << cfg.seed
         << "},\n  \"engines\": [\n";
  bool first_row = true;

  for (const Engine* engine : EngineRegistry::instance().engines()) {
    const EngineCaps caps = engine->capabilities();
    for (const int ranks : kRankSweep) {
      if (ranks > 1 && !caps.multi_rank) continue;  // capability-gated skip

      ParallelOptions opt;
      opt.engine = std::string(engine->name());
      opt.ranks = ranks;
      const ParallelResult result = generate(cfg, opt);
      const std::vector<Count> deg =
          graph::degree_sequence(result.edges, cfg.n);

      const double ks = analysis::ks_distance(deg, oracle_deg);
      const double critical =
          analysis::ks_critical_value(deg.size(), oracle_deg.size());
      EXPECT_LE(ks, critical)
          << "engine=" << engine->name() << " P=" << ranks;

      const RankLoad total = merge_across_ranks(result.loads);
      EXPECT_EQ(total.edges, result.total_edges);
      if (!first_row) report << ",\n";
      first_row = false;
      report << "    {\"engine\": \"" << engine->name()
             << "\", \"ranks\": " << ranks << ", \"ks\": " << ks
             << ", \"ks_critical\": " << critical
             << ", \"requests_sent\": " << total.requests_sent
             << ", \"resolved_sent\": " << total.resolved_sent
             << ", \"total_messages\": " << total.total_messages()
             << ", \"edges\": " << total.edges << "}";
    }
  }
  report << "\n  ]\n}\n";

  if (const char* path = std::getenv("PAGEN_ENGINE_REPORT")) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << report.str();
  }
}

// The commfree engine resolves in the canonical sequential order, so it
// reproduces the oracle bitwise for EVERY rank count and scheme — including
// x > 1 multi-rank, where the mps engine is only distribution-equivalent
// (docs/serving.md §5).
TEST(EngineEquivalence, CommFreeBitwiseMatchesOracleX1) {
  PaConfig cfg;
  cfg.n = 6000;
  cfg.x = 1;
  cfg.p = 0.5;
  cfg.seed = 3;
  const std::vector<NodeId> oracle = baseline::copy_model_targets(cfg);

  for (const int ranks : kRankSweep) {
    for (const auto scheme :
         {partition::Scheme::kRrp, partition::Scheme::kUcp}) {
      ParallelOptions opt;
      opt.engine = "commfree";
      opt.ranks = ranks;
      opt.scheme = scheme;
      const ParallelResult result = generate(cfg, opt);
      EXPECT_EQ(result.targets, oracle)
          << "P=" << ranks << " scheme=" << partition::to_string(scheme);
      EXPECT_EQ(result.total_edges, cfg.n - 1);
    }
  }
}

TEST(EngineEquivalence, CommFreeBitwiseMatchesOracleXk) {
  PaConfig cfg;
  cfg.n = 3000;
  cfg.x = 5;
  cfg.p = 0.4;
  cfg.seed = 11;
  const graph::EdgeList oracle =
      normalized(baseline::copy_model_general(cfg).edges);

  for (const int ranks : kRankSweep) {
    ParallelOptions opt;
    opt.engine = "commfree";
    opt.ranks = ranks;
    const ParallelResult result = generate(cfg, opt);
    EXPECT_EQ(normalized(result.edges), oracle) << "P=" << ranks;
  }
}

TEST(EngineEquivalence, CommFreeRunsWithZeroMessageVolume) {
  const PaConfig cfg = oracle_config();

  ParallelOptions opt;
  opt.engine = "commfree";
  opt.ranks = 7;
  const ParallelResult result = generate(cfg, opt);
  ASSERT_EQ(result.loads.size(), 7U);
  for (const RankLoad& load : result.loads) {
    EXPECT_EQ(load.requests_sent, 0U);
    EXPECT_EQ(load.requests_received, 0U);
    EXPECT_EQ(load.resolved_sent, 0U);
    EXPECT_EQ(load.resolved_received, 0U);
    EXPECT_EQ(load.queued, 0U);
    EXPECT_EQ(load.max_queue_depth, 0U);
  }
  EXPECT_EQ(merge_across_ranks(result.loads).total_messages(), 0U);

  // Same spec through mps for contrast: the protocol *does* move messages.
  ParallelOptions mps_opt;
  mps_opt.ranks = 7;
  const ParallelResult via_mps = generate(cfg, mps_opt);
  EXPECT_GT(merge_across_ranks(via_mps.loads).total_messages(), 0U);
}

TEST(EngineEquivalence, CommFreeDegreeDistributionIsPowerLaw) {
  PaConfig cfg;
  cfg.n = 50000;
  cfg.x = 4;
  cfg.p = 0.5;
  cfg.seed = 13;

  ParallelOptions opt;
  opt.engine = "commfree";
  opt.ranks = 4;
  const ParallelResult result = generate(cfg, opt);
  const std::vector<Count> deg = graph::degree_sequence(result.edges, cfg.n);
  const analysis::PowerLawFit fit = analysis::fit_gamma_mle(deg, 4);
  // Preferential attachment's gamma = 3 (paper Fig. 3); MLE on a finite
  // sample lands near it.
  EXPECT_GT(fit.gamma, 2.5);
  EXPECT_LT(fit.gamma, 3.5);
}

TEST(EngineCapabilities, DeclaredMatrixMatchesTheBackends) {
  auto& reg = EngineRegistry::instance();
  const EngineCaps mps = reg.require("mps").capabilities();
  EXPECT_TRUE(mps.checkpointing);
  EXPECT_TRUE(mps.fault_tolerance);
  EXPECT_TRUE(mps.multi_rank);
  EXPECT_EQ(mps.determinism, Determinism::kBitwiseX1);

  const EngineCaps commfree = reg.require("commfree").capabilities();
  EXPECT_FALSE(commfree.checkpointing);
  EXPECT_FALSE(commfree.fault_tolerance);
  EXPECT_FALSE(commfree.delivery_hook);
  EXPECT_TRUE(commfree.multi_rank);
  EXPECT_EQ(commfree.determinism, Determinism::kBitwise);

  for (const char* seq : {"seq-copy", "seq-bb"}) {
    EXPECT_FALSE(reg.require(seq).capabilities().multi_rank) << seq;
  }
}

TEST(EngineCapabilities, GenerateRejectsUnsupportedOptionsLoudly) {
  PaConfig cfg;
  cfg.n = 100;
  cfg.x = 1;
  cfg.seed = 1;

  {
    // No checkpoint support: a checkpoint_dir must be rejected with a clear
    // error, never silently ignored.
    ParallelOptions opt;
    opt.engine = "commfree";
    opt.ranks = 2;
    opt.checkpoint_dir = "/tmp/does-not-matter";
    try {
      (void)generate(cfg, opt);
      FAIL() << "expected CheckError";
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("commfree"), std::string::npos);
      EXPECT_NE(what.find("checkpoint"), std::string::npos);
    }
  }
  {
    ParallelOptions opt;
    opt.engine = "commfree";
    opt.resume = true;
    EXPECT_THROW((void)generate(cfg, opt), CheckError);
  }
  {
    ParallelOptions opt;
    opt.engine = "commfree";
    opt.reliable = true;
    EXPECT_THROW((void)generate(cfg, opt), CheckError);
  }
  {
    ParallelOptions opt;
    opt.engine = "seq-copy";
    opt.ranks = 2;
    try {
      (void)generate(cfg, opt);
      FAIL() << "expected CheckError";
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find("single-rank"), std::string::npos);
    }
  }
  {
    ParallelOptions opt;
    opt.engine = "no-such-engine";
    EXPECT_THROW((void)generate(cfg, opt), CheckError);
  }
}

TEST(EngineCapabilities, SupportedOptionShapesStillRun) {
  PaConfig cfg;
  cfg.n = 400;
  cfg.x = 1;
  cfg.seed = 9;

  // Single-rank sequential engines produce the x = 1 gather shape.
  for (const char* name : {"seq-copy", "seq-bb"}) {
    ParallelOptions opt;
    opt.engine = name;
    opt.ranks = 1;
    const ParallelResult result = generate(cfg, opt);
    EXPECT_EQ(result.total_edges, cfg.n - 1) << name;
    ASSERT_EQ(result.targets.size(), cfg.n) << name;
    EXPECT_EQ(result.targets[1], 0U) << name;
    ASSERT_EQ(result.loads.size(), 1U) << name;
    EXPECT_EQ(result.loads[0].total_messages(), 0U) << name;
  }

  // commfree honors the streaming sinks and shard surface.
  std::atomic<Count> streamed{0};
  ParallelOptions opt;
  opt.engine = "commfree";
  opt.ranks = 3;
  opt.keep_shards = true;
  opt.edge_batch_capacity = 64;
  opt.edge_batch_sink = [&](Rank, std::span<const graph::Edge> batch) {
    streamed += batch.size();
  };
  const ParallelResult result = generate(cfg, opt);
  EXPECT_EQ(streamed.load(), result.total_edges);
  ASSERT_EQ(result.shards.size(), 3U);
  Count sharded = 0;
  for (const auto& shard : result.shards) sharded += shard.size();
  EXPECT_EQ(sharded, result.total_edges);
}

}  // namespace
}  // namespace pagen::core
