#include "mps/bsp.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mps/engine.h"

namespace pagen::mps {
namespace {

constexpr int kTag = 42;

TEST(Bsp, AllToAllDelivery) {
  run_ranks(6, [](Comm& comm) {
    SendBuffer<std::uint64_t> buf(comm, kTag, 4);
    // Everyone sends rank*100 + dst to every other rank.
    for (Rank d = 0; d < comm.size(); ++d) {
      if (d != comm.rank()) {
        buf.add(d, static_cast<std::uint64_t>(comm.rank()) * 100 + d);
      }
    }
    std::vector<std::uint64_t> got;
    const Count n = bsp_exchange<std::uint64_t>(
        comm, buf, kTag, [&](const std::uint64_t& v) { got.push_back(v); });
    EXPECT_EQ(n, 5u);
    for (std::uint64_t v : got) {
      EXPECT_EQ(v % 100, static_cast<std::uint64_t>(comm.rank()))
          << "item addressed to someone else";
    }
  });
}

TEST(Bsp, ChainedSuperstepsDoNotLeakAcrossSteps) {
  // Regression for the superstep race: skewed per-rank workloads make fast
  // ranks start step k+1 while slow ranks drain step k. The trailing
  // barrier must keep each step's traffic isolated (the tag check inside
  // bsp_exchange throws on any leak).
  constexpr int kRounds = 50;
  run_ranks(8, [](Comm& comm) {
    for (int round = 0; round < kRounds; ++round) {
      SendBuffer<std::uint64_t> buf(comm, kTag + round, 2);
      // Rank-dependent stall to skew arrival at the superstep.
      if (comm.rank() % 3 == 0 && round % 7 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      for (Rank d = 0; d < comm.size(); ++d) {
        buf.add(d, static_cast<std::uint64_t>(round));
      }
      Count sum = 0;
      const Count n = bsp_exchange<std::uint64_t>(
          comm, buf, kTag + round, [&](const std::uint64_t& v) { sum += v; });
      ASSERT_EQ(n, 8u);
      ASSERT_EQ(sum, 8u * static_cast<Count>(round));
    }
  });
}

TEST(Bsp, EmptyBuffersStillSynchronize) {
  run_ranks(4, [](Comm& comm) {
    SendBuffer<std::uint64_t> buf(comm, kTag, 8);
    const Count n = bsp_exchange<std::uint64_t>(comm, buf, kTag,
                                                [](const std::uint64_t&) {});
    EXPECT_EQ(n, 0u);
  });
}

TEST(Bsp, CapacityOverflowSendsEarlyButStaysInStep) {
  run_ranks(3, [](Comm& comm) {
    SendBuffer<std::uint64_t> buf(comm, kTag, 1);  // every add flushes
    for (int i = 0; i < 20; ++i) buf.add((comm.rank() + 1) % 3, i);
    Count n = bsp_exchange<std::uint64_t>(comm, buf, kTag,
                                          [](const std::uint64_t&) {});
    EXPECT_EQ(n, 20u);
  });
}


TEST(Bsp, QueryReplyRoundTripsOwnership) {
  // Every rank asks every rank (including itself) for 10x the target's
  // rank id; replies must route back and sum correctly.
  constexpr int kQ = 50;
  constexpr int kR = 51;
  run_ranks(5, [](Comm& comm) {
    struct Query {
      Rank asker;
      std::uint64_t payload;
    };
    struct Reply {
      std::uint64_t value;
    };
    SendBuffer<Query> queries(comm, kQ, 3);
    for (Rank d = 0; d < comm.size(); ++d) {
      queries.add(d, {comm.rank(), 7});
    }
    std::uint64_t sum = 0;
    const Count replies = bsp_query_reply<Query, Reply>(
        comm, queries, kQ, kR, 3,
        [&](const Query& q) {
          return std::pair{q.asker,
                           Reply{q.payload * 10 +
                                 static_cast<std::uint64_t>(comm.rank())}};
        },
        [&](const Reply& r) { sum += r.value; });
    EXPECT_EQ(replies, 5u);
    EXPECT_EQ(sum, 5u * 70 + 0 + 1 + 2 + 3 + 4);
  });
}

}  // namespace
}  // namespace pagen::mps
