#include "analysis/ks_distance.h"

#include <vector>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::analysis {
namespace {

TEST(KsDistance, IdenticalSamplesAreZero) {
  const std::vector<Count> a{1, 2, 2, 3, 5, 8};
  EXPECT_DOUBLE_EQ(ks_distance(a, a), 0.0);
}

TEST(KsDistance, DisjointSupportsAreOne) {
  const std::vector<Count> a{1, 1, 2};
  const std::vector<Count> b{10, 11, 12};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(KsDistance, HandComputedCase) {
  // a: CDF steps at 1 (.5) and 3 (1.0); b: steps at 2 (.5) and 3 (1.0).
  // sup gap is at d=1: |0.5 - 0| = 0.5.
  const std::vector<Count> a{1, 3};
  const std::vector<Count> b{2, 3};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.5);
}

TEST(KsDistance, SymmetricInArguments) {
  const std::vector<Count> a{1, 4, 4, 9};
  const std::vector<Count> b{2, 4, 8};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), ks_distance(b, a));
}

TEST(KsDistance, DifferentSampleSizes) {
  const std::vector<Count> a{5, 5, 5, 5};
  const std::vector<Count> b{5, 5};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
}

TEST(KsDistance, RejectsEmpty) {
  const std::vector<Count> a{1};
  EXPECT_THROW((void)ks_distance(a, {}), CheckError);
}

TEST(KsDistance, SameDistributionPassesCriticalValue) {
  // Two independent PA runs (different seeds, same parameters): KS distance
  // below the 1% critical value.
  const PaConfig a{.n = 20000, .x = 4, .p = 0.5, .seed = 1};
  const PaConfig b{.n = 20000, .x = 4, .p = 0.5, .seed = 2};
  const auto deg_a =
      graph::degree_sequence(baseline::copy_model_general(a).edges, a.n);
  const auto deg_b =
      graph::degree_sequence(baseline::copy_model_general(b).edges, b.n);
  EXPECT_LT(ks_distance(deg_a, deg_b),
            ks_critical_value(deg_a.size(), deg_b.size(), 0.01));
}

TEST(KsDistance, DifferentParametersFailCriticalValue) {
  // x = 4 vs x = 6 are different distributions — KS must exceed critical.
  const PaConfig a{.n = 20000, .x = 4, .p = 0.5, .seed = 1};
  const PaConfig b{.n = 20000, .x = 6, .p = 0.5, .seed = 1};
  const auto deg_a =
      graph::degree_sequence(baseline::copy_model_general(a).edges, a.n);
  const auto deg_b =
      graph::degree_sequence(baseline::copy_model_general(b).edges, b.n);
  EXPECT_GT(ks_distance(deg_a, deg_b),
            ks_critical_value(deg_a.size(), deg_b.size(), 0.01));
}

TEST(KsCritical, ShrinksWithSampleSize) {
  EXPECT_GT(ks_critical_value(100, 100), ks_critical_value(10000, 10000));
}

TEST(KsCritical, TighterAlphaIsLarger) {
  EXPECT_GT(ks_critical_value(1000, 1000, 0.001),
            ks_critical_value(1000, 1000, 0.05));
}

}  // namespace
}  // namespace pagen::analysis
