// Golden-output pinning for the generator runtime refactor (src/core/genrt/).
//
// The hashes below were recorded from the PRE-refactor generators (the
// hand-rolled drivers in parallel_pa.cpp / parallel_pa_general.cpp at commit
// fdba5f5) and assert that the shared genrt driver produces bitwise-identical
// output for every pinned configuration: x = 1 across P in {1, 2, 4, 7},
// seeds, and UCP/LCP/RRP, fault-free and under a fault plan with crash
// recovery (the PR 3 path), plus the deterministic x > 1 cases.
//
// What can and cannot be pinned bitwise:
//  * x = 1: the final target array F is a pure function of (seed, n, p) —
//    independent of rank count, scheme, message timing, and faults — so both
//    the targets and the sorted edge list pin bitwise for every P.
//  * x > 1, P = 1: a single rank resolves everything locally in label order,
//    so the run is deterministic and the sorted edge list pins bitwise.
//  * x > 1, P > 1: duplicate-edge retries depend on the order in which
//    <resolved> messages arrive (parallel_pa_general.h), so the emitted edge
//    SET is scheduling-dependent by design — exactly as in the paper. Those
//    configurations are pinned on their deterministic invariants instead:
//    exact edge count, simplicity, and connectivity.
//
// Regenerating (only legitimate after an intentional output change):
//   PAGEN_GOLDEN_DUMP=1 ./genrt_golden_test
// prints the replacement table rows.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "core/parallel_pa.h"
#include "core/parallel_pa_general.h"
#include "graph/edge_list.h"
#include "mps/fault.h"
#include "partition/partition.h"
#include "util/types.h"

namespace pagen {
namespace {

/// FNV-1a over a little-endian byte view of 64-bit words. Stable across
/// platforms with the same NodeId width (the repo pins 64-bit NodeId).
class Fnv1a {
 public:
  void word(std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (w >> (8 * i)) & 0xffU;
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t hash_targets(const std::vector<NodeId>& targets) {
  Fnv1a h;
  for (const NodeId t : targets) h.word(t);
  return h.digest();
}

/// Hash of the normalized ((min,max), sorted) edge list — canonical for any
/// configuration whose edge *set* is deterministic.
std::uint64_t hash_edges(graph::EdgeList edges) {
  graph::normalize(edges);
  Fnv1a h;
  for (const graph::Edge& e : edges) {
    h.word(e.u);
    h.word(e.v);
  }
  return h.digest();
}

struct GoldenCase {
  NodeId n;
  std::uint64_t x;
  double p;
  std::uint64_t seed;
  int ranks;
  partition::Scheme scheme;
  const char* fault;     ///< FaultPlan spec; "" = fault-free
  bool checkpoint;       ///< give the run a checkpoint dir (crash recovery)
  std::uint64_t targets_hash;  ///< 0 for x > 1 (no targets row)
  std::uint64_t edges_hash;
};

constexpr partition::Scheme kUcp = partition::Scheme::kUcp;
constexpr partition::Scheme kLcp = partition::Scheme::kLcp;
constexpr partition::Scheme kRrp = partition::Scheme::kRrp;

// clang-format off
const GoldenCase kGolden[] = {
    // --- x = 1, fault-free: P x scheme x seed (targets are P/scheme
    // invariant; every row re-proves it against the same two hashes) ---
    {6000, 1, 0.5, 3,  1, kRrp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  2, kUcp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  2, kLcp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  2, kRrp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  4, kUcp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  4, kLcp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  4, kRrp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  7, kUcp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  7, kLcp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3,  7, kRrp, "", false, 0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.8, 41, 4, kRrp, "", false, 0xb239256336b718a8ULL, 0x80b7351c53018d4cULL},
    {6000, 1, 0.8, 41, 7, kLcp, "", false, 0xb239256336b718a8ULL, 0x80b7351c53018d4cULL},
    {6000, 1, 0.2, 41, 7, kUcp, "", false, 0x2fe01dd2cffc3550ULL, 0xaf18fcecffdaf0fcULL},
    // --- x = 1 under transport chaos (drop/dup/reorder/stall): repaired
    // below the algorithm, so the same hashes must come out ---
    {6000, 1, 0.5, 3, 7, kRrp,
     "seed=11,drop=0.06,dup=0.05,reorder=0.08,stall=2@100:20", false,
     0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    // --- x = 1 crash + checkpoint recovery (PR 3 path): a scripted
    // mid-generation crash, respawn, restore, and re-offer must also be
    // invisible in the output ---
    {6000, 1, 0.5, 3, 7, kRrp, "seed=11,drop=0.03,crash=3@200", true,
     0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    {6000, 1, 0.5, 3, 4, kLcp, "seed=4,crash=0@150", true,
     0x6d309c247e909654ULL, 0xb8298caaf5abfd30ULL},
    // --- x > 1, P = 1 (deterministic local resolution order) ---
    {3000, 2, 0.5, 17, 1, kRrp, "", false, 0, 0x9538bfc32748c9c7ULL},
    {3000, 4, 0.5, 17, 1, kRrp, "", false, 0, 0x07e805c7ce6b4f48ULL},
    {3000, 4, 0.3, 5,  1, kRrp, "", false, 0, 0x7185c2e0a591222aULL},
};
// clang-format on

std::string fresh_dir(std::size_t case_idx) {
  const std::string dir =
      ::testing::TempDir() + "pagen_golden_" + std::to_string(case_idx);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::ParallelResult run_case(const GoldenCase& c, std::size_t idx,
                              bool via_facade = false) {
  const PaConfig cfg{.n = c.n, .x = c.x, .p = c.p, .seed = c.seed};
  core::ParallelOptions opt;
  opt.ranks = c.ranks;
  opt.scheme = c.scheme;
  if (c.fault[0] != '\0') {
    opt.fault_plan = mps::FaultPlan::parse(c.fault);
    // Small buffers => enough envelopes for the fault script to chew on and
    // for scripted crash steps to land mid-generation.
    opt.buffer_capacity = 4;
    opt.node_batch = 128;
    opt.checkpoint_every = 256;
  }
  if (c.checkpoint) opt.checkpoint_dir = fresh_dir(idx);
  if (via_facade) return core::generate(cfg, opt);  // engine defaults to mps
  return c.x == 1 ? core::generate_pa_x1(cfg, opt)
                  : core::generate_pa_general(cfg, opt);
}

TEST(GenrtGolden, OutputsMatchPreRefactorHashes) {
  const bool dump = std::getenv("PAGEN_GOLDEN_DUMP") != nullptr;
  for (std::size_t i = 0; i < std::size(kGolden); ++i) {
    const GoldenCase& c = kGolden[i];
    const auto result = run_case(c, i);
    const std::uint64_t th = c.x == 1 ? hash_targets(result.targets) : 0;
    const std::uint64_t eh = hash_edges(result.edges);
    if (dump) {
      std::cout << "case " << i << ": targets=0x" << std::hex << th
                << "ULL edges=0x" << eh << "ULL" << std::dec << '\n';
      continue;
    }
    EXPECT_EQ(th, c.targets_hash) << "targets hash drifted, case " << i;
    EXPECT_EQ(eh, c.edges_hash) << "edge hash drifted, case " << i;
    if (c.checkpoint) {
      EXPECT_GE(result.respawns, 1u) << "case " << i
                                     << ": the scripted crash did not fire";
    }
  }
}

// The same table routed through the core::generate() facade with the default
// "mps" engine (ISSUE 9): introducing the engine layer must be bitwise
// invisible — every golden hash comes out unchanged through the dispatcher.
TEST(GenrtGolden, FacadeRoutedMpsEngineMatchesTheSameHashes) {
  for (std::size_t i = 0; i < std::size(kGolden); ++i) {
    const GoldenCase& c = kGolden[i];
    // Distinct checkpoint-dir namespace so the direct-route test's dirs are
    // never reused mid-suite.
    const auto result = run_case(c, i + 200, /*via_facade=*/true);
    const std::uint64_t th = c.x == 1 ? hash_targets(result.targets) : 0;
    EXPECT_EQ(th, c.targets_hash) << "facade targets hash drifted, case " << i;
    EXPECT_EQ(hash_edges(result.edges), c.edges_hash)
        << "facade edge hash drifted, case " << i;
  }
}

// x > 1 with P > 1 is scheduling-dependent (see the header comment), so the
// multi-rank general algorithm pins its deterministic invariants: exact edge
// count, no self-loops, no parallel edges, one component — for every P and
// scheme the x = 1 matrix covers, and under the PR 3 crash-recovery path.
TEST(GenrtGolden, GeneralAlgorithmInvariantsAcrossRanksAndSchemes) {
  const PaConfig cfg{.n = 2000, .x = 4, .p = 0.5, .seed = 17};
  std::size_t idx = 100;  // checkpoint-dir namespace distinct from the table
  for (const int ranks : {2, 4, 7}) {
    for (const auto scheme : {kUcp, kLcp, kRrp}) {
      for (const bool crash : {false, true}) {
        core::ParallelOptions opt;
        opt.ranks = ranks;
        opt.scheme = scheme;
        if (crash) {
          opt.fault_plan = mps::FaultPlan::parse("seed=8,crash=1@200");
          opt.buffer_capacity = 4;
          opt.node_batch = 128;
          opt.checkpoint_every = 256;
          opt.checkpoint_dir = fresh_dir(idx++);
        }
        const auto result = core::generate_pa_general(cfg, opt);
        ASSERT_EQ(result.total_edges, expected_edge_count(cfg));
        EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
        EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
        EXPECT_EQ(graph::connected_components(result.edges, cfg.n), 1u);
        if (crash) {
          EXPECT_GE(result.respawns, 1u);
        }
      }
    }
  }
}

}  // namespace
}  // namespace pagen
