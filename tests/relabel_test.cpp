#include "graph/relabel.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "graph/edge_list.h"
#include "util/error.h"
#include "util/stats.h"

namespace pagen::graph {
namespace {

TEST(Permutation, IsAPermutation) {
  const auto perm = random_permutation(1000, 7);
  std::set<NodeId> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(Permutation, SeededAndDistinct) {
  EXPECT_EQ(random_permutation(100, 1), random_permutation(100, 1));
  EXPECT_NE(random_permutation(100, 1), random_permutation(100, 2));
}

TEST(Permutation, ActuallyShuffles) {
  const auto perm = random_permutation(1000, 3);
  Count fixed = 0;
  for (NodeId i = 0; i < 1000; ++i) fixed += (perm[i] == i);
  EXPECT_LT(fixed, 10u) << "expected ~1 fixed point";
}

TEST(Permutation, InverseComposesToIdentity) {
  const auto perm = random_permutation(500, 9);
  const auto inv = invert_permutation(perm);
  for (NodeId i = 0; i < 500; ++i) {
    EXPECT_EQ(inv[perm[i]], i);
  }
}

TEST(Permutation, InvertRejectsNonPermutation) {
  const std::vector<NodeId> bad{0, 0, 2};
  EXPECT_THROW(invert_permutation(bad), CheckError);
}

TEST(Relabel, PreservesStructure) {
  const PaConfig cfg{.n = 5000, .x = 3, .p = 0.5, .seed = 4};
  const auto original = baseline::copy_model_general(cfg).edges;
  const auto perm = random_permutation(cfg.n, 11);
  const auto shuffled = relabel(original, perm);

  ASSERT_EQ(shuffled.size(), original.size());
  EXPECT_EQ(count_self_loops(shuffled), 0u);
  EXPECT_EQ(count_duplicates(shuffled), 0u);
  EXPECT_EQ(connected_components(shuffled, cfg.n), 1u);

  // Degree multiset is invariant under relabeling.
  auto deg_a = degree_sequence(original, cfg.n);
  auto deg_b = degree_sequence(shuffled, cfg.n);
  std::sort(deg_a.begin(), deg_a.end());
  std::sort(deg_b.begin(), deg_b.end());
  EXPECT_EQ(deg_a, deg_b);
}

TEST(Relabel, DestroysLabelDegreeCorrelation) {
  // In raw PA output, label strongly anti-correlates with degree (old nodes
  // are hubs). After shuffling, the correlation collapses.
  const PaConfig cfg{.n = 20000, .x = 4, .p = 0.5, .seed = 8};
  const auto original = baseline::copy_model_general(cfg).edges;
  const auto perm = random_permutation(cfg.n, 13);
  const auto shuffled = relabel(original, perm);

  auto label_degree_corr = [&](const EdgeList& edges) {
    const auto deg = degree_sequence(edges, cfg.n);
    std::vector<double> labels, degrees;
    for (NodeId v = 0; v < cfg.n; ++v) {
      labels.push_back(static_cast<double>(v));
      degrees.push_back(static_cast<double>(deg[v]));
    }
    const LinearFit fit = linear_fit(labels, degrees);
    return fit.r_squared;
  };
  EXPECT_LT(label_degree_corr(shuffled), label_degree_corr(original) / 4);
}

TEST(Relabel, RoundTripThroughInverse) {
  const EdgeList edges{{4, 0}, {3, 1}};
  const auto perm = random_permutation(5, 21);
  const auto there = relabel(edges, perm);
  const auto back = relabel(there, invert_permutation(perm));
  EXPECT_EQ(back, edges);
}

TEST(Relabel, RejectsOutOfDomainEndpoint) {
  const EdgeList edges{{10, 0}};
  const auto perm = random_permutation(5, 1);
  EXPECT_THROW(relabel(edges, perm), CheckError);
}

}  // namespace
}  // namespace pagen::graph
