// Unit tests of the compressed edge-store block format (docs/storage.md §1-2):
// zigzag/varint block codec, header/trailer (de)serialization with checksum
// domain separation, the streaming writer/reader round trip, and the v3
// manifest.
#include "store/format.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "rng/xoshiro.h"
#include "store/edge_writer.h"
#include "store/shard_reader.h"
#include "util/error.h"

namespace pagen::store {
namespace {

TEST(StoreFormat, ZigzagRoundTrip) {
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{1},
                               std::int64_t{-1}, std::int64_t{123456789},
                               std::int64_t{-123456789},
                               std::int64_t{1} << 62, -(std::int64_t{1} << 62)}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (the property varint relies on).
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

graph::EdgeList pa_shaped_edges(std::size_t count) {
  // Near-sorted in u with small deltas, like real PA emission order.
  graph::EdgeList edges;
  rng::Xoshiro256pp rng(11);
  NodeId u = 1000;
  for (std::size_t i = 0; i < count; ++i) {
    u += rng() % 2;
    edges.push_back({u, static_cast<NodeId>(rng() % u)});
  }
  return edges;
}

TEST(StoreFormat, BlockRoundTripPaOrder) {
  const graph::EdgeList edges = pa_shaped_edges(5000);
  std::vector<std::uint8_t> payload;
  const BlockHeader header = encode_block(edges, payload);
  EXPECT_EQ(header.edge_count, edges.size());
  EXPECT_EQ(header.first_u, edges.front().u);
  EXPECT_EQ(header.first_v, edges.front().v);
  EXPECT_EQ(header.payload_bytes, payload.size());

  graph::EdgeList decoded;
  decode_block(header, payload, decoded);
  EXPECT_EQ(decoded, edges);
  // The headline claim: PA-shaped streams compress well under 8 bytes/edge.
  EXPECT_LT(static_cast<double>(payload.size()) /
                static_cast<double>(edges.size()),
            8.0);
}

TEST(StoreFormat, BlockRoundTripIsOrderRobust) {
  // The delta scheme must round-trip any emission order, including
  // descending u (negative deltas) and a single-edge block.
  graph::EdgeList reversed = pa_shaped_edges(512);
  std::reverse(reversed.begin(), reversed.end());
  for (const graph::EdgeList& edges :
       {reversed, graph::EdgeList{{7, 3}},
        graph::EdgeList{{5, 1}, {5, 1}, {5, 4}, {2, 0}}}) {
    std::vector<std::uint8_t> payload;
    const BlockHeader header = encode_block(edges, payload);
    graph::EdgeList decoded;
    decode_block(header, payload, decoded);
    EXPECT_EQ(decoded, edges);
  }
}

TEST(StoreFormat, HeaderRoundTripAndChecksum) {
  const graph::EdgeList edges = pa_shaped_edges(64);
  std::vector<std::uint8_t> payload;
  BlockHeader header = encode_block(edges, payload);

  std::vector<std::uint8_t> bytes;
  put_block_header(bytes, header);
  ASSERT_EQ(bytes.size(), kBlockHeaderBytes);
  const BlockHeader parsed = get_block_header(bytes, kMaxBlockEdges);
  EXPECT_EQ(parsed.first_u, header.first_u);
  EXPECT_EQ(parsed.first_v, header.first_v);
  EXPECT_EQ(parsed.edge_count, header.edge_count);
  EXPECT_EQ(parsed.payload_bytes, header.payload_bytes);
  EXPECT_EQ(parsed.payload_checksum, header.payload_checksum);

  // Any single flipped bit in the 40 bytes must fail the checksum.
  for (const std::size_t pos : {std::size_t{0}, std::size_t{17},
                                kBlockHeaderBytes - 1}) {
    std::vector<std::uint8_t> bad = bytes;
    bad[pos] ^= 0x20;
    EXPECT_THROW((void)get_block_header(bad, kMaxBlockEdges), CheckError);
  }
}

TEST(StoreFormat, HeaderBoundsRejectForgedCounts) {
  std::vector<std::uint8_t> bytes;
  BlockHeader zero;
  zero.edge_count = 0;
  put_block_header(bytes, zero);
  EXPECT_THROW((void)get_block_header(bytes, kMaxBlockEdges), CheckError)
      << "edge_count 0 must not parse";

  bytes.clear();
  BlockHeader big;
  big.edge_count = 1000;
  big.payload_bytes = 4;
  put_block_header(bytes, big);
  // Valid checksum, but the count exceeds the caller's (manifest) bound.
  EXPECT_THROW((void)get_block_header(bytes, 512), CheckError);

  bytes.clear();
  BlockHeader fat;
  fat.edge_count = 2;
  fat.payload_bytes = 2 * kMaxBytesPerEdge + 1;
  put_block_header(bytes, fat);
  EXPECT_THROW((void)get_block_header(bytes, kMaxBlockEdges), CheckError)
      << "payload_bytes beyond the worst-case varint bound must not parse";
}

TEST(StoreFormat, PayloadChecksumCatchesFlips) {
  const graph::EdgeList edges = pa_shaped_edges(256);
  std::vector<std::uint8_t> payload;
  const BlockHeader header = encode_block(edges, payload);
  std::vector<std::uint8_t> bad = payload;
  bad[bad.size() / 2] ^= 0x01;
  graph::EdgeList out;
  EXPECT_THROW(decode_block(header, bad, out), CheckError);
  // Truncated and padded payloads are rejected before decoding.
  EXPECT_THROW(
      decode_block(header, std::span(payload).subspan(0, payload.size() - 1),
                   out),
      CheckError);
}

TEST(StoreFormat, TrailerRoundTripAndDomainSeparation) {
  ShardTrailer trailer;
  trailer.num_blocks = 3;
  trailer.num_edges = 123456;
  trailer.header_chain = fnv1a_u64(0xdeadbeef, kFnvOffset);
  std::vector<std::uint8_t> bytes;
  put_trailer(bytes, trailer);
  ASSERT_EQ(bytes.size(), kTrailerBytes);
  EXPECT_TRUE(is_trailer(bytes));

  const ShardTrailer parsed = get_trailer(bytes);
  EXPECT_EQ(parsed.num_blocks, trailer.num_blocks);
  EXPECT_EQ(parsed.num_edges, trailer.num_edges);
  EXPECT_EQ(parsed.header_chain, trailer.header_chain);

  // Domain separation: 40 valid trailer bytes must never parse as a block
  // header, and a header must never look like a trailer.
  EXPECT_THROW((void)get_block_header(bytes, kMaxBlockEdges), CheckError);
  std::vector<std::uint8_t> head_bytes;
  BlockHeader header;
  header.edge_count = 1;
  header.payload_bytes = 2;
  put_block_header(head_bytes, header);
  EXPECT_FALSE(is_trailer(head_bytes));

  std::vector<std::uint8_t> bad = bytes;
  bad[kTrailerBytes - 1] ^= 0x80;
  EXPECT_THROW((void)get_trailer(bad), CheckError);
}

class StoreWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pagen_store_fmt_" + std::to_string(counter_++)))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  static int counter_;
};
int StoreWriterTest::counter_ = 0;

TEST_F(StoreWriterTest, WriterReaderRoundTripAcrossBlocks) {
  const graph::EdgeList edges = pa_shaped_edges(10000);
  const std::string path = dir_ + "/shard.pcs";
  CompressedEdgeWriter writer(path, /*block_edges=*/1024);
  // Mixed single/batch appends, leaving a partial final block.
  writer.append(edges[0]);
  writer.append(std::span(edges).subspan(1));
  EXPECT_EQ(writer.edges_written(), edges.size());
  const ShardSummary summary = writer.finish();
  EXPECT_EQ(summary.edges, edges.size());
  EXPECT_EQ(summary.blocks, (edges.size() + 1023) / 1024);
  EXPECT_EQ(summary.bytes, std::filesystem::file_size(path));
  EXPECT_LT(static_cast<double>(summary.bytes) /
                static_cast<double>(edges.size()),
            8.0);

  // The incrementally computed checksum equals a from-scratch file pass.
  std::uint64_t fnv = 0;
  ASSERT_TRUE(streaming_file_fnv1a(path, fnv));
  EXPECT_EQ(fnv, summary.file_checksum);

  EdgeShardReader reader(path, /*max_block_edges=*/1024);
  EXPECT_EQ(reader.read_all(), edges);
}

TEST_F(StoreWriterTest, EmptyShardRoundTrips) {
  const std::string path = dir_ + "/empty.pcs";
  CompressedEdgeWriter writer(path);
  const ShardSummary summary = writer.finish();
  EXPECT_EQ(summary.edges, 0u);
  EXPECT_EQ(summary.blocks, 0u);
  EdgeShardReader reader(path);
  EXPECT_TRUE(reader.read_all().empty());
}

TEST_F(StoreWriterTest, AppendAfterFinishThrows) {
  CompressedEdgeWriter writer(dir_ + "/s.pcs");
  writer.append({1, 0});
  (void)writer.finish();
  EXPECT_THROW(writer.append({2, 0}), CheckError);
}

TEST_F(StoreWriterTest, StoreWriterManifestRoundTrip) {
  StoreWriter writer(dir_ + "/store", 3, /*block_edges=*/256);
  const graph::EdgeList edges = pa_shaped_edges(900);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    writer.append(static_cast<Rank>(i % 3), std::span(&edges[i], 1));
  }
  const StoreManifest manifest = writer.finish(/*num_nodes=*/2000);

  EXPECT_TRUE(is_compressed_store(dir_ + "/store"));
  const StoreManifest loaded = load_manifest(dir_ + "/store");
  EXPECT_EQ(loaded.num_nodes, 2000u);
  EXPECT_EQ(loaded.num_shards, 3);
  EXPECT_EQ(loaded.block_edges, 256u);
  EXPECT_EQ(loaded.total_edges(), edges.size());
  EXPECT_EQ(loaded.total_bytes(), manifest.total_bytes());
  ASSERT_EQ(loaded.shards.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(loaded.shards[static_cast<std::size_t>(r)].file_checksum,
              manifest.shards[static_cast<std::size_t>(r)].file_checksum);
    EdgeShardReader reader(shard_path(dir_ + "/store", r), 256);
    EXPECT_EQ(reader.read_all().size(),
              loaded.shards[static_cast<std::size_t>(r)].edges);
  }
}

TEST_F(StoreWriterTest, ManifestMissingOrForeignDirRejected) {
  EXPECT_FALSE(is_compressed_store(dir_));
  EXPECT_THROW((void)load_manifest(dir_), CheckError);
}

}  // namespace
}  // namespace pagen::store
