#include "graph/edge_list.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen::graph {
namespace {

TEST(EdgeList, NumNodesEmpty) { EXPECT_EQ(num_nodes({}), 0u); }

TEST(EdgeList, NumNodesMaxEndpointPlusOne) {
  const EdgeList e{{0, 5}, {3, 2}};
  EXPECT_EQ(num_nodes(e), 6u);
}

TEST(EdgeList, NormalizeOrdersEndpointsAndSorts) {
  EdgeList e{{5, 1}, {0, 2}, {2, 0}};
  normalize(e);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0], (Edge{0, 2}));
  EXPECT_EQ(e[1], (Edge{0, 2}));
  EXPECT_EQ(e[2], (Edge{1, 5}));
}

TEST(EdgeList, SelfLoopCount) {
  const EdgeList e{{1, 1}, {2, 3}, {4, 4}};
  EXPECT_EQ(count_self_loops(e), 2u);
}

TEST(EdgeList, DuplicateCountUndirected) {
  // (1,2) and (2,1) are the same undirected edge.
  const EdgeList e{{1, 2}, {2, 1}, {3, 4}, {3, 4}, {3, 4}};
  EXPECT_EQ(count_duplicates(e), 3u);
}

TEST(EdgeList, DuplicateCountLeavesInputUntouched) {
  const EdgeList e{{5, 1}, {1, 5}};
  EXPECT_EQ(count_duplicates(e), 1u);
  EXPECT_EQ(e[0], (Edge{5, 1})) << "input must not be reordered";
}

TEST(EdgeList, DegreeSequence) {
  const EdgeList e{{0, 1}, {0, 2}, {1, 2}};
  const auto deg = degree_sequence(e, 4);
  EXPECT_EQ(deg, (std::vector<Count>{2, 2, 2, 0}));
}

TEST(EdgeList, DegreeSequenceRejectsOutOfRange) {
  const EdgeList e{{0, 9}};
  EXPECT_THROW(degree_sequence(e, 5), CheckError);
}

TEST(Components, IsolatedNodesEachCount) {
  EXPECT_EQ(connected_components({}, 5), 5u);
}

TEST(Components, SingleChainIsOne) {
  const EdgeList e{{0, 1}, {1, 2}, {2, 3}};
  EXPECT_EQ(connected_components(e, 4), 1u);
}

TEST(Components, TwoIslands) {
  const EdgeList e{{0, 1}, {2, 3}};
  EXPECT_EQ(connected_components(e, 4), 2u);
}

TEST(Components, RedundantEdgesDoNotChangeCount) {
  const EdgeList e{{0, 1}, {1, 0}, {0, 1}};
  EXPECT_EQ(connected_components(e, 3), 2u);  // node 2 isolated
}

}  // namespace
}  // namespace pagen::graph
