// Pins the generate() front door's x == 1 dispatch (ISSUE 5 satellite): the
// facade now routes x == 1 configs straight to generate_pa_x1 instead of
// always entering the general path, and both routes must produce identical
// output so the shortcut is unobservable to callers.
#include <gtest/gtest.h>

#include "core/generate.h"
#include "core/parallel_pa_general.h"
#include "graph/edge_list.h"

namespace pagen::core {
namespace {

/// Edge sets are deterministic; per-rank emission order is not. Compare
/// the normalized ((min,max), sorted) lists, as the golden suite does.
graph::EdgeList normalized(graph::EdgeList edges) {
  graph::normalize(edges);
  return edges;
}

TEST(GenerateDispatch, BothRoutesIdenticalForX1) {
  for (const int ranks : {1, 3, 4}) {
    for (const std::uint64_t seed : {1ULL, 42ULL}) {
      PaConfig cfg;
      cfg.n = 500;
      cfg.x = 1;
      cfg.seed = seed;
      ParallelOptions opt;
      opt.ranks = ranks;

      const ParallelResult front = generate(cfg, opt);
      const ParallelResult direct = generate_pa_x1(cfg, opt);
      const ParallelResult general = generate_pa_general(cfg, opt);

      EXPECT_EQ(normalized(front.edges), normalized(direct.edges))
          << "P=" << ranks << " s=" << seed;
      EXPECT_EQ(front.targets, direct.targets);
      EXPECT_EQ(normalized(front.edges), normalized(general.edges))
          << "the general front door's x == 1 delegation must agree";
      EXPECT_EQ(front.targets, general.targets);
      EXPECT_EQ(front.total_edges, cfg.n - 1);
    }
  }
}

TEST(GenerateDispatch, GeneralPathStillOwnsXAboveOne) {
  PaConfig cfg;
  cfg.n = 200;
  cfg.x = 3;
  cfg.seed = 5;
  ParallelOptions opt;
  opt.ranks = 2;
  const ParallelResult front = generate(cfg, opt);
  const ParallelResult general = generate_pa_general(cfg, opt);
  EXPECT_EQ(normalized(front.edges), normalized(general.edges));
  EXPECT_EQ(front.total_edges, expected_edge_count(cfg));
}

}  // namespace
}  // namespace pagen::core
