#include "baseline/chung_lu.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "analysis/powerlaw_fit.h"
#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::baseline {
namespace {

TEST(ChungLu, SimpleGraphAlways) {
  ClConfig cfg;
  cfg.weights = power_law_weights(5000, 2.5, 6.0);
  cfg.seed = 3;
  const auto edges = chung_lu(cfg);
  EXPECT_EQ(graph::count_self_loops(edges), 0u);
  EXPECT_EQ(graph::count_duplicates(edges), 0u);
}

TEST(ChungLu, ExpectedDegreesRealized) {
  // Per-node realized degree must track the prescribed weight; check the
  // heaviest nodes (their expectation is large enough to concentrate).
  ClConfig cfg;
  cfg.weights.assign(4000, 5.0);
  cfg.weights[0] = 200.0;
  cfg.weights[1] = 100.0;
  cfg.seed = 7;
  const auto edges = chung_lu(cfg);
  const auto deg = graph::degree_sequence(edges, 4000);
  EXPECT_NEAR(static_cast<double>(deg[0]), 200.0, 5 * std::sqrt(200.0));
  EXPECT_NEAR(static_cast<double>(deg[1]), 100.0, 5 * std::sqrt(100.0));
}

TEST(ChungLu, TotalEdgesNearHalfWeightSum) {
  ClConfig cfg;
  cfg.weights.assign(10000, 8.0);
  cfg.seed = 5;
  const auto edges = chung_lu(cfg);
  const double expected = 10000.0 * 8.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(edges.size()), expected,
              5 * std::sqrt(expected));
}

TEST(ChungLu, UnsortedWeightsReportOriginalLabels) {
  // Node 3999 gets the big weight; the generator relabels internally but
  // must report edges under the caller's labels.
  ClConfig cfg;
  cfg.weights.assign(4000, 4.0);
  cfg.weights[3999] = 300.0;
  cfg.seed = 9;
  const auto edges = chung_lu(cfg);
  const auto deg = graph::degree_sequence(edges, 4000);
  EXPECT_NEAR(static_cast<double>(deg[3999]), 300.0, 5 * std::sqrt(300.0));
}

TEST(ChungLu, DeterministicInSeed) {
  ClConfig cfg;
  cfg.weights = power_law_weights(1000, 2.5, 5.0);
  cfg.seed = 11;
  EXPECT_EQ(chung_lu(cfg), chung_lu(cfg));
  ClConfig other = cfg;
  other.seed = 12;
  EXPECT_NE(chung_lu(cfg), chung_lu(other));
}

TEST(ChungLu, PowerLawWeightsRecoverGamma) {
  ClConfig cfg;
  cfg.weights = power_law_weights(200000, 2.5, 8.0);
  cfg.seed = 13;
  const auto edges = chung_lu(cfg);
  const auto deg = graph::degree_sequence(edges, 200000);
  const auto fit = analysis::fit_gamma_mle(deg, 8);
  EXPECT_NEAR(fit.gamma, 2.5, 0.3);
}

TEST(ChungLu, ZeroWeightsProduceIsolatedNodes) {
  ClConfig cfg;
  cfg.weights = {10.0, 10.0, 0.0, 0.0};
  cfg.seed = 1;
  const auto edges = chung_lu(cfg);
  const auto deg = graph::degree_sequence(edges, 4);
  EXPECT_EQ(deg[2], 0u);
  EXPECT_EQ(deg[3], 0u);
}

TEST(PowerLawWeights, MeanMatchesRequest) {
  const auto w = power_law_weights(10000, 2.7, 6.0);
  const double mean =
      std::accumulate(w.begin(), w.end(), 0.0) / static_cast<double>(w.size());
  EXPECT_NEAR(mean, 6.0, 1e-9);
}

TEST(PowerLawWeights, DecreasingInIndex) {
  const auto w = power_law_weights(100, 2.5, 4.0);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i], w[i - 1]);
}

TEST(ChungLu, RejectsDegenerateInput) {
  EXPECT_THROW(chung_lu({.weights = {1.0}, .seed = 1}), CheckError);
  EXPECT_THROW(chung_lu({.weights = {0.0, 0.0}, .seed = 1}), CheckError);
  EXPECT_THROW(chung_lu({.weights = {-1.0, 2.0}, .seed = 1}), CheckError);
}

}  // namespace
}  // namespace pagen::baseline
