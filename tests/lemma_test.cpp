// Empirical validation of Lemma 3.4: the expected number of request
// messages received for node k is (1-p) (H_{n-1} - H_k), and of the
// aggregate message identities that follow from it.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/pa_config.h"
#include "baseline/pa_draws.h"
#include "core/parallel_pa.h"
#include "util/harmonic.h"

namespace pagen {
namespace {

// Count, per node k, how many nodes t > k picked k with the copy branch —
// that is the number of <request>s addressed to k if t and k were always on
// different ranks. Evaluated straight from the draw schema.
std::vector<Count> copy_requests_per_node(const PaConfig& cfg) {
  const DrawSchema draws(cfg);
  std::vector<Count> req(cfg.n, 0);
  for (NodeId t = 2; t < cfg.n; ++t) {
    const NodeId k = draws.pick_k(t, 0, 0);
    if (!draws.pick_direct(t, 0, 0)) ++req[k];
  }
  return req;
}

TEST(Lemma34, ExpectedRequestsMatchHarmonicFormula) {
  // Average the per-node request count over many seeds and compare with
  // (1-p)(H_{n-1} - H_k) at several probe nodes.
  const NodeId n = 2000;
  const double p = 0.5;
  const int runs = 400;
  std::vector<double> mean(n, 0.0);
  for (int r = 0; r < runs; ++r) {
    const PaConfig cfg{.n = n, .x = 1, .p = p,
                       .seed = static_cast<std::uint64_t>(r + 1)};
    const auto req = copy_requests_per_node(cfg);
    for (NodeId k = 0; k < n; ++k) mean[k] += static_cast<double>(req[k]);
  }
  const Harmonic h(4096);
  for (NodeId k : {NodeId{1}, NodeId{10}, NodeId{100}, NodeId{1000}}) {
    const double est = mean[k] / runs;
    const double expected = (1.0 - p) * (h(n - 1) - h(k));
    const double sigma = std::sqrt(expected / runs) + 0.02;
    EXPECT_NEAR(est, expected, 5 * sigma) << "node k=" << k;
  }
}

TEST(Lemma34, LowerLabelsReceiveMore) {
  // E[M_j] > E[M_k] for j < k — the monotonicity driving UCP's imbalance.
  const NodeId n = 5000;
  const int runs = 200;
  std::vector<double> mean(n, 0.0);
  for (int r = 0; r < runs; ++r) {
    const PaConfig cfg{.n = n, .x = 1, .p = 0.5,
                       .seed = static_cast<std::uint64_t>(900 + r)};
    const auto req = copy_requests_per_node(cfg);
    for (NodeId k = 0; k < n; ++k) mean[k] += static_cast<double>(req[k]);
  }
  // Compare decade buckets rather than single nodes to kill noise.
  auto bucket = [&](NodeId lo, NodeId hi) {
    double acc = 0;
    for (NodeId k = lo; k < hi; ++k) acc += mean[k];
    return acc / static_cast<double>(hi - lo);
  };
  EXPECT_GT(bucket(1, 10), bucket(10, 100));
  EXPECT_GT(bucket(10, 100), bucket(100, 1000));
  EXPECT_GT(bucket(100, 1000), bucket(1000, 5000));
}

TEST(Lemma34, TotalCopySelectionsMatchOneMinusP) {
  // Summing the lemma over all k: total requests ≈ (1-p)(n-2) — each node
  // t >= 2 requests with probability exactly 1-p.
  const NodeId n = 20000;
  for (double p : {0.25, 0.5, 0.75}) {
    const PaConfig cfg{.n = n, .x = 1, .p = p, .seed = 77};
    const auto req = copy_requests_per_node(cfg);
    Count total = 0;
    for (Count c : req) total += c;
    const double expected = (1.0 - p) * static_cast<double>(n - 2);
    EXPECT_NEAR(static_cast<double>(total), expected,
                5 * std::sqrt(expected))
        << "p=" << p;
  }
}

TEST(Lemma34, ParallelRunMessageCountsAgree) {
  // The distributed run's aggregate request count equals the schema's copy
  // selections that cross rank boundaries — i.e. the run sends exactly the
  // messages the lemma accounts for, never more.
  const PaConfig cfg{.n = 30000, .x = 1, .p = 0.5, .seed = 13};
  core::ParallelOptions opt;
  opt.ranks = 8;
  opt.scheme = partition::Scheme::kRrp;
  opt.gather_edges = false;
  const auto result = core::generate_pa_x1(cfg, opt);

  Count total_requests = 0;
  Count total_resolved = 0;
  Count total_received = 0;
  for (const auto& l : result.loads) {
    total_requests += l.requests_sent;
    total_received += l.requests_received;
    total_resolved += l.resolved_received;
  }
  EXPECT_EQ(total_requests, total_received) << "no request may be lost";
  EXPECT_EQ(total_requests, total_resolved)
      << "every request gets exactly one response (x = 1: no retries)";

  // Cross-rank copy selections computed independently from the schema.
  const auto part = partition::make_partition(opt.scheme, cfg.n, opt.ranks);
  const DrawSchema draws(cfg);
  Count expected_requests = 0;
  for (NodeId t = 2; t < cfg.n; ++t) {
    const NodeId k = draws.pick_k(t, 0, 0);
    if (!draws.pick_direct(t, 0, 0) && part->owner(k) != part->owner(t)) {
      ++expected_requests;
    }
  }
  EXPECT_EQ(total_requests, expected_requests);
}

}  // namespace
}  // namespace pagen
