// Unit coverage of the svc building blocks below the Server facade: JobSpec
// hashing/validation, the bounded priority JobQueue, the LRU ResultCache,
// and the sharded-store provenance marker (docs/serving.md §2–3).
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "graph/sharded_io.h"
#include "obs/metrics.h"
#include "svc/cache.h"
#include "svc/job.h"
#include "svc/queue.h"
#include "util/error.h"

namespace pagen::svc {
namespace {

JobSpec small_spec() {
  JobSpec spec;
  spec.config.n = 64;
  spec.config.x = 1;
  spec.config.seed = 7;
  spec.ranks = 2;
  return spec;
}

// --- JobSpec: hash + validation ---

TEST(SpecHash, CoversEveryOutputShapingField) {
  const JobSpec base = small_spec();
  const std::uint64_t h = spec_hash(base);
  EXPECT_EQ(h, spec_hash(base)) << "hash must be pure";

  JobSpec s = base;
  s.config.n = 65;
  EXPECT_NE(spec_hash(s), h);
  s = base;
  s.config.x = 2;
  EXPECT_NE(spec_hash(s), h);
  s = base;
  s.config.p = 0.25;
  EXPECT_NE(spec_hash(s), h);
  s = base;
  s.config.seed = 8;
  EXPECT_NE(spec_hash(s), h);
  s = base;
  s.ranks = 3;
  EXPECT_NE(spec_hash(s), h);
  s = base;
  s.scheme = partition::Scheme::kUcp;
  EXPECT_NE(spec_hash(s), h);
  s = base;
  s.buffer_capacity = 17;
  EXPECT_NE(spec_hash(s), h);
  s = base;
  s.node_batch = 5;
  EXPECT_NE(spec_hash(s), h);
}

// The engine participates in the hash (docs/serving.md §1): engines are only
// distribution-equivalent, so a commfree output must never satisfy a cache
// or store probe for an mps spec — and even a single flipped byte in the
// engine name rotates the identity.
TEST(SpecHash, EngineParticipatesInTheHash) {
  const JobSpec base = small_spec();
  const std::uint64_t h = spec_hash(base);
  EXPECT_EQ(base.engine, "mps") << "default engine";

  JobSpec s = base;
  s.engine = "commfree";
  EXPECT_NE(spec_hash(s), h);
  s.engine = "seq-copy";
  EXPECT_NE(spec_hash(s), h);

  // Byte-flip: same length, one byte differs. spec_hash deliberately does
  // not validate names, so unregistered probes are fine here.
  s = base;
  s.engine = "mpt";
  EXPECT_NE(spec_hash(s), h);
}

TEST(SpecValidate, EngineMustBeRegisteredAndCompatible) {
  JobSpec s = small_spec();
  s.engine = "commfree";
  EXPECT_EQ(validate(s), "");

  s = small_spec();
  s.engine = "no-such-engine";
  EXPECT_NE(validate(s), "") << "unknown engine";

  s = small_spec();
  s.engine = "seq-copy";
  s.ranks = 2;
  EXPECT_NE(validate(s), "") << "single-rank engine with ranks > 1";
  s.ranks = 1;
  EXPECT_EQ(validate(s), "");

  s = small_spec();
  s.engine = "commfree";
  s.ranks = 2;
  s.reliable = true;
  EXPECT_NE(validate(s), "") << "commfree has no reliable transport";
}

TEST(SpecHash, IgnoresSchedulingAndDelivery) {
  const JobSpec base = small_spec();
  JobSpec s = base;
  s.priority = 9;
  s.deadline = 100;
  s.sink = Sink::kCount;
  s.store_dir = "/tmp/elsewhere";
  EXPECT_EQ(spec_hash(s), spec_hash(base))
      << "how a job is scheduled or delivered must not change its identity";
}

TEST(SpecValidate, AcceptsAndRejects) {
  EXPECT_EQ(validate(small_spec()), "");

  JobSpec s = small_spec();
  s.config.x = 0;
  EXPECT_NE(validate(s), "");
  s = small_spec();
  s.config.n = 1;
  EXPECT_NE(validate(s), "");
  s = small_spec();
  s.config.x = 4;
  s.config.n = 4;
  EXPECT_NE(validate(s), "");
  s = small_spec();
  s.config.p = 1.5;
  EXPECT_NE(validate(s), "");
  s = small_spec();
  s.config.x = 4;
  s.config.p = 1.0;
  EXPECT_NE(validate(s), "") << "p == 1 diverges for x > 1";
  s = small_spec();
  s.ranks = 0;
  EXPECT_NE(validate(s), "");
  s = small_spec();
  s.ranks = 128;
  EXPECT_NE(validate(s), "") << "more ranks than nodes";
  s = small_spec();
  s.buffer_capacity = 0;
  EXPECT_NE(validate(s), "");
  s = small_spec();
  s.node_batch = 0;
  EXPECT_NE(validate(s), "");
  s = small_spec();
  s.sink = Sink::kShardedStore;
  EXPECT_NE(validate(s), "") << "sharded sink without a directory";
}

TEST(JobEnums, StringsAndTerminality) {
  EXPECT_STREQ(to_string(JobState::kQueued), "queued");
  EXPECT_STREQ(to_string(JobState::kCompleted), "completed");
  EXPECT_STREQ(to_string(Reject::kQueueFull), "queue-full");
  EXPECT_FALSE(terminal(JobState::kQueued));
  EXPECT_FALSE(terminal(JobState::kRunning));
  EXPECT_TRUE(terminal(JobState::kCompleted));
  EXPECT_TRUE(terminal(JobState::kCancelled));
  EXPECT_TRUE(terminal(JobState::kExpired));
  EXPECT_TRUE(terminal(JobState::kFailed));
}

// --- JobQueue ---

TEST(JobQueue, PriorityThenFifo) {
  JobQueue q(8);
  // seq doubles as the admission order.
  EXPECT_TRUE(q.push(1, /*priority=*/0, /*seq=*/1));
  EXPECT_TRUE(q.push(2, /*priority=*/5, /*seq=*/2));
  EXPECT_TRUE(q.push(3, /*priority=*/5, /*seq=*/3));
  EXPECT_TRUE(q.push(4, /*priority=*/1, /*seq=*/4));
  EXPECT_EQ(q.peek(), 2u) << "highest priority first";
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.pop(), 3u) << "FIFO within a priority";
  EXPECT_EQ(q.pop(), 4u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), kNoJob);
  EXPECT_EQ(q.peek(), kNoJob);
}

TEST(JobQueue, BoundIsTheBackpressureValve) {
  JobQueue q(2);
  EXPECT_TRUE(q.push(1, 0, 1));
  EXPECT_TRUE(q.push(2, 0, 2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(3, 9, 3)) << "priority does not override the bound";
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_TRUE(q.push(3, 9, 3)) << "space freed by pop readmits";
}

TEST(JobQueue, RemoveIsACancelOfAQueuedJob) {
  JobQueue q(4);
  q.push(1, 0, 1);
  q.push(2, 0, 2);
  q.push(3, 0, 3);
  EXPECT_TRUE(q.remove(2));
  EXPECT_FALSE(q.remove(2)) << "already gone";
  EXPECT_FALSE(q.remove(99)) << "never queued";
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
  EXPECT_TRUE(q.empty());
}

// --- ResultCache ---

std::shared_ptr<const JobOutput> output_of(Count edges) {
  auto out = std::make_shared<JobOutput>();
  out->total_edges = edges;
  return out;
}

TEST(ResultCache, LruEvictionOrderFollowsAccessHistory) {
  ResultCache cache(2);
  cache.insert(1, output_of(10));
  cache.insert(2, output_of(20));
  ASSERT_NE(cache.lookup(1), nullptr);  // 1 is now the most recent
  cache.insert(3, output_of(30));      // evicts 2, the least recent
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, RefreshKeepsOneEntryAndNewestValue) {
  ResultCache cache(2);
  cache.insert(1, output_of(10));
  cache.insert(1, output_of(11));
  EXPECT_EQ(cache.size(), 1u);
  const auto out = cache.lookup(1);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->total_edges, 11u) << "newer output wins";
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.insert(1, output_of(10));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, MirrorsTalliesIntoObsCounters) {
  obs::MetricsRegistry reg;
  ResultCache cache(1);
  cache.bind_metrics(&reg.counter("svc.cache_hits"),
                     &reg.counter("svc.cache_misses"),
                     &reg.counter("svc.cache_evictions"));
  cache.insert(1, output_of(10));
  (void)cache.lookup(1);
  (void)cache.lookup(2);
  cache.insert(2, output_of(20));  // evicts 1
  EXPECT_EQ(reg.counter("svc.cache_hits").value(), 1u);
  EXPECT_EQ(reg.counter("svc.cache_misses").value(), 1u);
  EXPECT_EQ(reg.counter("svc.cache_evictions").value(), 1u);
}

// --- Sharded-store provenance marker ---

class StoreMarkerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pagen_svc_store_" + std::to_string(counter_++)))
               .string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  static int counter_;
};
int StoreMarkerTest::counter_ = 0;

TEST_F(StoreMarkerTest, CompleteStoreWithMatchingMarkerServes) {
  JobSpec spec = small_spec();
  spec.store_dir = dir_;

  core::ParallelOptions opt;
  opt.ranks = spec.ranks;
  opt.scheme = spec.scheme;
  opt.gather_edges = false;
  opt.keep_shards = true;
  const auto result = core::generate(spec.config, opt);
  graph::save_sharded(dir_, spec.config.n, result.shards);
  write_store_marker(dir_, spec_hash(spec));

  EXPECT_TRUE(store_matches(dir_, spec));

  JobSpec other = spec;
  other.config.seed = 99;
  EXPECT_FALSE(store_matches(dir_, other))
      << "the manifest alone cannot tell two seeds apart — the marker must";
}

TEST_F(StoreMarkerTest, MissingPiecesAreAMissNotAnError) {
  JobSpec spec = small_spec();
  spec.store_dir = dir_;
  EXPECT_FALSE(store_matches(dir_, spec)) << "directory does not even exist";

  // Sealing a storeless directory is impossible since v2: the marker
  // checksums the manifest and shards at write time.
  std::filesystem::create_directories(dir_);
  EXPECT_THROW(write_store_marker(dir_, spec_hash(spec)), CheckError);
  EXPECT_FALSE(store_matches(dir_, spec));

  // Corrupt marker next to a real store: a miss.
  core::ParallelOptions opt;
  opt.ranks = spec.ranks;
  opt.gather_edges = false;
  opt.keep_shards = true;
  const auto result = core::generate(spec.config, opt);
  graph::save_sharded(dir_, spec.config.n, result.shards);
  {
    std::ofstream os(store_marker_path(dir_), std::ios::trunc);
    os << "not-a-marker\n";
  }
  EXPECT_FALSE(store_matches(dir_, spec));
}

/// Builds a complete, sealed store for `spec` in `dir`.
void build_store(const std::string& dir, const JobSpec& spec) {
  core::ParallelOptions opt;
  opt.ranks = spec.ranks;
  opt.scheme = spec.scheme;
  opt.gather_edges = false;
  opt.keep_shards = true;
  const auto result = core::generate(spec.config, opt);
  graph::save_sharded(dir, spec.config.n, result.shards);
  write_store_marker(dir, spec_hash(spec));
}

/// Flip one byte in the middle of `path`.
void flip_byte(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(0, std::ios::end);
  const auto size = f.tellg();
  ASSERT_GT(size, 0);
  f.seekg(static_cast<std::streamoff>(size) / 2);
  char b = 0;
  f.read(&b, 1);
  f.seekp(static_cast<std::streamoff>(size) / 2);
  b = static_cast<char>(b ^ 0x01);
  f.write(&b, 1);
}

TEST_F(StoreMarkerTest, ByteFlippedMarkerNeverMatches) {
  JobSpec spec = small_spec();
  spec.store_dir = dir_;
  build_store(dir_, spec);
  ASSERT_TRUE(store_matches(dir_, spec));

  flip_byte(store_marker_path(dir_));
  EXPECT_FALSE(store_matches(dir_, spec))
      << "a rotten marker must never serve (any parse is a miss or corrupt)";
}

TEST_F(StoreMarkerTest, ByteFlippedShardIsCorruptAndQuarantinable) {
  JobSpec spec = small_spec();
  spec.store_dir = dir_;
  build_store(dir_, spec);
  ASSERT_TRUE(probe_store(dir_, spec).match);

  flip_byte(graph::shard_path(dir_, 0));
  const StoreProbe probe = probe_store(dir_, spec);
  EXPECT_FALSE(probe.match);
  EXPECT_TRUE(probe.corrupt) << "the marker claims this spec, so a content "
                                "mismatch is corruption, not a miss";
  EXPECT_NE(probe.detail.find("shard 0"), std::string::npos) << probe.detail;

  EXPECT_TRUE(quarantine_store(dir_));
  EXPECT_FALSE(probe_store(dir_, spec).corrupt) << "quarantined = plain miss";
  EXPECT_FALSE(store_matches(dir_, spec));
  EXPECT_TRUE(std::filesystem::exists(store_marker_path(dir_) +
                                      ".quarantined"))
      << "the poisoned marker is kept aside for post-mortem";

  // Regeneration over the same directory re-seals it.
  build_store(dir_, spec);
  EXPECT_TRUE(store_matches(dir_, spec));
}

TEST_F(StoreMarkerTest, ByteFlippedManifestIsCorrupt) {
  JobSpec spec = small_spec();
  spec.store_dir = dir_;
  build_store(dir_, spec);

  flip_byte(dir_ + "/manifest.pagen");
  const StoreProbe probe = probe_store(dir_, spec);
  EXPECT_FALSE(probe.match);
  EXPECT_TRUE(probe.corrupt);
}

// --- JobQueue: retry backoff eligibility and the shedding ladder ---

TEST(JobQueue, NotBeforeHidesEntriesUntilTheVirtualTick) {
  JobQueue q(4);
  EXPECT_TRUE(q.push(1, /*priority=*/5, /*seq=*/1, /*not_before=*/10));
  EXPECT_TRUE(q.push(2, /*priority=*/0, /*seq=*/2));
  EXPECT_EQ(q.peek(3), 2u) << "job 1 outranks 2 but is still in backoff";
  EXPECT_EQ(q.pop(3), 2u);
  EXPECT_EQ(q.pop(9), kNoJob) << "one tick early";
  EXPECT_EQ(q.earliest_ready(), 10u);
  EXPECT_EQ(q.pop(10), 1u) << "eligible exactly at not_before";
  EXPECT_EQ(q.earliest_ready(), JobQueue::kAnyTick) << "empty queue";
}

TEST(JobQueue, DefaultPopIgnoresBackoff) {
  JobQueue q(4);
  EXPECT_TRUE(q.push(1, 0, 1, /*not_before=*/100));
  EXPECT_EQ(q.pop(), 1u) << "the shutdown drain pops regardless of backoff";
}

TEST(JobQueue, ForcePushBypassesTheBound) {
  JobQueue q(1);
  EXPECT_TRUE(q.push(1, 0, 1));
  EXPECT_FALSE(q.push(2, 0, 2));
  EXPECT_TRUE(q.push(2, 0, 2, 0, /*force=*/true))
      << "a retry requeue must never lose an admitted job";
  EXPECT_EQ(q.size(), 2u);
}

TEST(JobQueue, ShedBelowEvictsYoungestOfLowestPriority) {
  JobQueue q(4);
  q.push(1, /*priority=*/0, /*seq=*/1);
  q.push(2, /*priority=*/0, /*seq=*/2);
  q.push(3, /*priority=*/3, /*seq=*/3);
  EXPECT_EQ(q.shed_below(5), 2u)
      << "lowest priority first, youngest within it (least invested)";
  EXPECT_EQ(q.shed_below(5), 1u);
  EXPECT_EQ(q.shed_below(3), kNoJob)
      << "equal priority never sheds — strictly-below only";
  EXPECT_EQ(q.shed_below(4), 3u);
  EXPECT_EQ(q.shed_below(9), kNoJob) << "empty";
}

}  // namespace
}  // namespace pagen::svc
