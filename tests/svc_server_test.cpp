// Server facade tests, centered on the svc determinism contract
// (docs/serving.md §5): a job executed through the Server produces
// bitwise-identical output to a direct core::generate() call with the same
// spec — including when the job is served from the ResultCache, from an
// existing sharded store, and after a cancel/resubmit.
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "json_lint.h"
#include "svc/server.h"

namespace pagen::svc {
namespace {

/// Canonical form for cross-run comparison: the edge *set* of a spec is
/// deterministic, but per-rank emission order depends on message arrival
/// order, so identity checks compare normalized ((min,max), sorted) lists —
/// the same canonicalization the genrt golden suite hashes.
graph::EdgeList normalized(graph::EdgeList edges) {
  graph::normalize(edges);
  return edges;
}

/// The ParallelOptions a Server worker derives from `spec` — the direct
/// half of every identity check below.
core::ParallelOptions direct_options(const JobSpec& spec) {
  core::ParallelOptions opt;
  opt.ranks = spec.ranks;
  opt.scheme = spec.scheme;
  opt.buffer_capacity = spec.buffer_capacity;
  opt.node_batch = spec.node_batch;
  return opt;
}

JobSpec gather_spec(NodeId n, NodeId x, std::uint64_t seed, int ranks) {
  JobSpec spec;
  spec.config.n = n;
  spec.config.x = x;
  spec.config.seed = seed;
  spec.ranks = ranks;
  spec.sink = Sink::kGather;
  return spec;
}

/// Submit-or-die helper for specs the test knows are admissible.
JobId must_submit(Server& server, const JobSpec& spec) {
  const Server::Submitted sub = server.submit(spec);
  EXPECT_EQ(sub.reject, Reject::kNone) << to_string(sub.reject);
  return sub.id;
}

TEST(SvcServer, GoldenIdentityAgainstDirectGenerate) {
  Server server({.workers = 2});
  // The reproducible-spec family (docs/serving.md §5): x = 1 on any rank
  // count, x > 1 single-rank. (x > 1 multi-rank edge sets are
  // schedule-dependent — duplicate-retry order varies run to run — so only
  // cache/store serves, not regeneration, are repeatable for those.)
  for (const JobSpec& spec :
       {gather_spec(300, 1, 7, 4), gather_spec(200, 4, 11, 1)}) {
    const JobStatus status = server.wait(must_submit(server, spec));
    ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
    EXPECT_FALSE(status.from_cache);
    ASSERT_NE(status.output, nullptr);

    const auto direct = core::generate(spec.config, direct_options(spec));
    EXPECT_EQ(normalized(status.output->edges), normalized(direct.edges))
        << "served edge set must be identical to a direct call's";
    EXPECT_EQ(status.output->targets, direct.targets);
    EXPECT_EQ(status.output->total_edges, direct.total_edges);
  }
}

TEST(SvcServer, CacheServedRepeatIsIdentical) {
  Server server({.workers = 2});
  const JobSpec spec = gather_spec(256, 1, 21, 4);
  const JobStatus first = server.wait(must_submit(server, spec));
  ASSERT_EQ(first.state, JobState::kCompleted);

  const Server::Submitted repeat = server.submit(spec);
  EXPECT_TRUE(repeat.from_cache) << "repeat of a completed spec must not run";
  const JobStatus second = server.poll(repeat.id);
  ASSERT_EQ(second.state, JobState::kCompleted);
  EXPECT_TRUE(second.from_cache);
  ASSERT_NE(second.output, nullptr);

  const auto direct = core::generate(spec.config, direct_options(spec));
  EXPECT_EQ(normalized(second.output->edges), normalized(direct.edges));
  EXPECT_EQ(second.output->targets, direct.targets);
  EXPECT_GT(server.stats().cache_hits, 0u);
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST(SvcServer, StoreServedAcrossServerLifetimes) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pagen_svc_server_store")
          .string();
  std::filesystem::remove_all(dir);

  JobSpec produce = gather_spec(240, 1, 5, 3);  // x = 1: reproducible at P=3
  produce.sink = Sink::kShardedStore;
  produce.store_dir = dir;
  {
    Server server({.workers = 1});
    const JobStatus status = server.wait(must_submit(server, produce));
    ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
    EXPECT_EQ(status.output->store_dir, dir);
  }

  // A fresh Server (fresh cache, "restarted process") serves the same spec
  // from the store on disk, bit for bit.
  JobSpec consume = produce;
  consume.sink = Sink::kGather;
  {
    Server server({.workers = 1});
    const Server::Submitted sub = server.submit(consume);
    ASSERT_EQ(sub.reject, Reject::kNone);
    EXPECT_TRUE(sub.from_cache) << "store probe must serve without running";
    const JobStatus status = server.poll(sub.id);
    ASSERT_EQ(status.state, JobState::kCompleted);
    ASSERT_NE(status.output, nullptr);

    const auto direct = core::generate(consume.config, direct_options(consume));
    EXPECT_EQ(normalized(status.output->edges), normalized(direct.edges))
        << "rank-order shard concatenation == gather order";
    EXPECT_EQ(server.stats().cache_store_hits, 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST(SvcServer, CancelQueuedThenResubmitMatchesGolden) {
  Server server({.workers = 1, .start_paused = true});
  const JobSpec spec = gather_spec(300, 1, 33, 4);
  const JobId id = must_submit(server, spec);
  EXPECT_EQ(server.poll(id).state, JobState::kQueued);
  EXPECT_TRUE(server.cancel(id));
  EXPECT_EQ(server.poll(id).state, JobState::kCancelled)
      << "a queued cancel is immediate";
  EXPECT_FALSE(server.cancel(id)) << "already terminal";
  server.resume();

  // The cancelled run left nothing behind: the resubmit generates fresh and
  // still matches the direct call.
  const Server::Submitted again = server.submit(spec);
  ASSERT_EQ(again.reject, Reject::kNone);
  EXPECT_FALSE(again.from_cache) << "a cancelled job must not be cached";
  const JobStatus status = server.wait(again.id);
  ASSERT_EQ(status.state, JobState::kCompleted);
  const auto direct = core::generate(spec.config, direct_options(spec));
  EXPECT_EQ(normalized(status.output->edges), normalized(direct.edges));
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(SvcServer, CancelRunningDrainsAndWorkerSurvives) {
  Server server({.workers = 1});
  // Large enough that the cancel lands mid-flight under any build type.
  const JobSpec big = gather_spec(400000, 1, 3, 4);
  const JobId id = must_submit(server, big);
  while (server.poll(id).state == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(server.cancel(id));
  const JobStatus status = server.wait(id);
  // Cooperative cancellation: almost always kCancelled, but a cancel that
  // arrives after the last hook poll legitimately completes.
  ASSERT_TRUE(status.state == JobState::kCancelled ||
              status.state == JobState::kCompleted)
      << to_string(status.state);

  // The worker survived the unwound world and serves the next job.
  const JobSpec small = gather_spec(200, 1, 4, 2);
  const JobStatus next = server.wait(must_submit(server, small));
  ASSERT_EQ(next.state, JobState::kCompleted) << next.error;
  const auto direct = core::generate(small.config, direct_options(small));
  EXPECT_EQ(normalized(next.output->edges), normalized(direct.edges));

  // And a resubmit of the cancelled spec reaches the same golden output.
  if (status.state == JobState::kCancelled) {
    const JobStatus redo = server.wait(must_submit(server, big));
    ASSERT_EQ(redo.state, JobState::kCompleted) << redo.error;
    const auto golden = core::generate(big.config, direct_options(big));
    EXPECT_EQ(normalized(redo.output->edges), normalized(golden.edges));
  }
}

TEST(SvcServer, VirtualDeadlines) {
  Server server({.workers = 1, .start_paused = true});
  JobSpec early = gather_spec(128, 1, 1, 2);
  early.deadline = 1;  // accepted at tick 1, expired once tick passes 1
  const JobId id = must_submit(server, early);
  (void)must_submit(server, gather_spec(128, 1, 2, 2));  // tick 2
  (void)must_submit(server, gather_spec(128, 1, 3, 2));  // tick 3
  EXPECT_EQ(server.tick(), 3u);

  // Submit-time reject: the deadline is already unreachable.
  JobSpec late = gather_spec(128, 1, 4, 2);
  late.deadline = 2;
  EXPECT_EQ(server.submit(late).reject, Reject::kDeadlineExpired);

  server.resume();
  EXPECT_EQ(server.wait(id).state, JobState::kExpired)
      << "dispatched at tick 3 > deadline 1";
  EXPECT_EQ(server.stats().expired, 1u);
}

TEST(SvcServer, QueueFullRejectsWithReason) {
  Server server(
      {.workers = 1, .queue_capacity = 2, .start_paused = true});
  (void)must_submit(server, gather_spec(128, 1, 10, 2));
  (void)must_submit(server, gather_spec(128, 1, 11, 2));
  const Server::Submitted overflow =
      server.submit(gather_spec(128, 1, 12, 2));
  EXPECT_EQ(overflow.reject, Reject::kQueueFull);
  EXPECT_EQ(overflow.id, kNoJob);
  EXPECT_EQ(server.stats().rejected, 1u);
  server.resume();
  server.shutdown(true);
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST(SvcServer, InvalidSpecRejectedAtAdmission) {
  Server server({.workers = 1});
  JobSpec bad = gather_spec(128, 1, 1, 2);
  bad.config.x = 0;
  EXPECT_EQ(server.submit(bad).reject, Reject::kInvalidSpec);
}

TEST(SvcServer, CountSinkAndCacheShapeRules) {
  Server server({.workers = 1});
  JobSpec count = gather_spec(180, 4, 9, 2);
  count.sink = Sink::kCount;
  const JobStatus counted = server.wait(must_submit(server, count));
  ASSERT_EQ(counted.state, JobState::kCompleted) << counted.error;
  EXPECT_TRUE(counted.output->edges.empty());
  EXPECT_EQ(counted.output->total_edges, expected_edge_count(count.config));

  // A count-shaped cache entry cannot serve a gather request ...
  JobSpec gather = count;
  gather.sink = Sink::kGather;
  const Server::Submitted fresh = server.submit(gather);
  ASSERT_EQ(fresh.reject, Reject::kNone);
  EXPECT_FALSE(fresh.from_cache);
  const JobStatus gathered = server.wait(fresh.id);
  ASSERT_EQ(gathered.state, JobState::kCompleted);
  EXPECT_FALSE(gathered.output->edges.empty());

  // ... but the gather output (now refreshed into the cache) serves both.
  EXPECT_TRUE(server.submit(count).from_cache);
  EXPECT_TRUE(server.submit(gather).from_cache);
}

TEST(SvcServer, DrainShutdownFinishesEverything) {
  Server server({.workers = 2, .start_paused = true});
  std::vector<JobId> ids;
  ids.reserve(4);
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    ids.push_back(must_submit(server, gather_spec(200, 1, seed, 2)));
  }
  server.shutdown(true);  // opens the pause gate, then drains
  for (const JobId id : ids) {
    EXPECT_EQ(server.poll(id).state, JobState::kCompleted);
  }
  EXPECT_EQ(server.submit(gather_spec(128, 1, 1, 2)).reject,
            Reject::kShuttingDown);
  server.shutdown(true);  // idempotent
}

TEST(SvcServer, DestructorCancelsOutstandingWork) {
  JobId queued = kNoJob;
  {
    Server server({.workers = 1, .start_paused = true});
    (void)must_submit(server, gather_spec(300000, 1, 8, 4));
    queued = must_submit(server, gather_spec(300000, 1, 9, 4));
    // No resume, no shutdown: the destructor must cancel and join without
    // wedging on the queued work.
  }
  EXPECT_NE(queued, kNoJob);
}

TEST(SvcServer, MetricsExportIsValidJson) {
  Server server({.workers = 1});
  (void)server.wait(must_submit(server, gather_spec(128, 1, 2, 2)));
  (void)server.submit(gather_spec(128, 1, 2, 2));  // one cache hit
  std::ostringstream os;
  server.write_metrics(os);
  const std::string json = os.str();
  EXPECT_EQ(pagen::testing::JsonLint::check(json), "") << json;
  EXPECT_NE(json.find("svc.completed"), std::string::npos);
  EXPECT_NE(json.find("svc.cache_hits"), std::string::npos);
  EXPECT_NE(json.find("svc.job_latency_ns"), std::string::npos);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submits, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(SvcServer, FlightRecorderIncidentsCaptureCancelAndReject) {
  Server server({.workers = 1, .queue_capacity = 1, .start_paused = true});
  const JobId id = must_submit(server, gather_spec(300, 1, 41, 2));
  // Admission reject while the queue is full: a one-line incident.
  EXPECT_EQ(server.submit(gather_spec(300, 1, 42, 2)).reject,
            Reject::kQueueFull);
  // Queued cancel: the job's flight ring is dumped into the incident log.
  EXPECT_TRUE(server.cancel(id));

  const std::vector<std::string> incidents = server.incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_NE(incidents[0].find("submit rejected: queue_full"),
            std::string::npos)
      << incidents[0];
  EXPECT_NE(incidents[1].find("cancelled while queued"), std::string::npos)
      << incidents[1];
  // The dump names the transitions the job actually went through.
  EXPECT_NE(incidents[1].find("queued+"), std::string::npos) << incidents[1];
  EXPECT_NE(incidents[1].find("cancel_requested+"), std::string::npos);
  EXPECT_NE(incidents[1].find("cancelled+"), std::string::npos);
  server.resume();
  server.shutdown(true);
}

TEST(SvcServer, HealthyJobsLeaveNoIncidentsButFillLatencyStages) {
  Server server({.workers = 1});
  (void)server.wait(must_submit(server, gather_spec(256, 1, 43, 2)));
  EXPECT_TRUE(server.incidents().empty());

  // The staged latency histograms saw the job: queue wait and run time.
  std::ostringstream os;
  server.write_metrics(os);
  const std::string json = os.str();
  EXPECT_EQ(pagen::testing::JsonLint::check(json), "") << json;
  EXPECT_NE(json.find("svc.queue_wait_ns"), std::string::npos);
  EXPECT_NE(json.find("svc.run_ns"), std::string::npos);
}

TEST(SvcServer, PrometheusEndpointExportsServiceInstruments) {
  Server server({.workers = 1});
  (void)server.wait(must_submit(server, gather_spec(128, 1, 44, 2)));
  std::ostringstream os;
  server.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE pagen_svc_submits counter"), std::string::npos);
  EXPECT_NE(text.find("pagen_svc_completed 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pagen_svc_job_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("pagen_svc_job_latency_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pagen_svc_job_latency_ns_p95"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pagen_svc_queue_depth gauge"),
            std::string::npos);
}

TEST(FlightRecorder, RingKeepsNewestAndRendersOffsets) {
  FlightRecorder fr;
  for (int i = 0; i < 40; ++i) fr.note("tick", i);
  EXPECT_EQ(fr.entries().size(), FlightRecorder::kCapacity);
  EXPECT_EQ(fr.dropped(), 40u - FlightRecorder::kCapacity);
  // Newest survive: the last entry carries value 39.
  EXPECT_EQ(fr.entries().back().value, 39);
  const std::string dump = fr.dump();
  EXPECT_NE(dump.find("dropped"), std::string::npos);
  EXPECT_NE(dump.find("tick+"), std::string::npos);
}

}  // namespace
}  // namespace pagen::svc
