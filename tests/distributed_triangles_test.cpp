#include "core/distributed_triangles.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "graph/csr.h"
#include "graph/edge_list.h"

namespace pagen::core {
namespace {

using partition::Scheme;

// Exact reference: sum over edges of |N(u) ∩ N(v)| = 3 * triangles.
Count reference_triangles(const graph::EdgeList& edges, NodeId n) {
  const graph::CsrGraph g(edges, n);
  Count closed = 0;
  for (const auto& e : edges) {
    const auto nu = g.neighbors(e.u);
    const auto nv = g.neighbors(e.v);
    std::size_t i = 0, j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] == nv[j]) {
        ++closed;
        ++i;
        ++j;
      } else if (nu[i] < nv[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  return closed / 3;
}

std::vector<graph::EdgeList> shard_edges(const graph::EdgeList& edges,
                                         NodeId n, Scheme scheme, int ranks) {
  const auto part = partition::make_partition(scheme, n, ranks);
  std::vector<graph::EdgeList> shards(static_cast<std::size_t>(ranks));
  for (const auto& e : edges) {
    shards[static_cast<std::size_t>(part->owner(e.u))].push_back(e);
  }
  return shards;
}

TEST(DistributedTriangles, SingleTriangle) {
  const graph::EdgeList edges{{1, 0}, {2, 1}, {2, 0}};
  const auto shards = shard_edges(edges, 3, Scheme::kRrp, 3);
  const auto result = distributed_triangle_count(shards, 3, Scheme::kRrp);
  EXPECT_EQ(result.triangles, 1u);
}

TEST(DistributedTriangles, TriangleFreeGraphIsZero) {
  // A star has wedges but no triangles.
  graph::EdgeList star;
  for (NodeId leaf = 1; leaf <= 9; ++leaf) star.push_back({0, leaf});
  const auto shards = shard_edges(star, 10, Scheme::kUcp, 4);
  const auto result = distributed_triangle_count(shards, 10, Scheme::kUcp);
  EXPECT_EQ(result.triangles, 0u);
}

TEST(DistributedTriangles, CompleteGraphBinomial) {
  const NodeId n = 12;
  graph::EdgeList complete;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) complete.push_back({j, i});
  }
  const auto shards = shard_edges(complete, n, Scheme::kRrp, 5);
  const auto result = distributed_triangle_count(shards, n, Scheme::kRrp);
  EXPECT_EQ(result.triangles, 12u * 11 * 10 / 6);
}

TEST(DistributedTriangles, MatchesReferenceOnPaNetworks) {
  for (NodeId x : {NodeId{2}, NodeId{4}}) {
    const PaConfig cfg{.n = 4000, .x = x, .p = 0.5, .seed = 7};
    ParallelOptions opt;
    opt.ranks = 6;
    opt.keep_shards = true;
    const auto gen = generate(cfg, opt);
    const auto result =
        distributed_triangle_count(gen.shards, cfg.n, opt.scheme);
    EXPECT_EQ(result.triangles, reference_triangles(gen.edges, cfg.n))
        << "x=" << x;
    EXPECT_GT(result.triangles, 0u) << "PA networks close triangles";
  }
}

TEST(DistributedTriangles, SchemeInvariant) {
  const PaConfig cfg{.n = 3000, .x = 3, .p = 0.5, .seed = 11};
  ParallelOptions opt;
  opt.ranks = 4;
  opt.keep_shards = true;
  const auto gen = generate(cfg, opt);
  const Count expected = reference_triangles(gen.edges, cfg.n);
  for (Scheme scheme : {Scheme::kUcp, Scheme::kLcp, Scheme::kRrp}) {
    const auto shards = shard_edges(gen.edges, cfg.n, scheme, 7);
    const auto result = distributed_triangle_count(shards, cfg.n, scheme);
    EXPECT_EQ(result.triangles, expected) << partition::to_string(scheme);
  }
}

TEST(DistributedTriangles, WedgeQueriesBoundedByOrientation) {
  // Degree orientation keeps per-node out-degrees small even at hubs:
  // the wedge-query volume must stay well below sum(deg^2).
  const PaConfig cfg{.n = 20000, .x = 4, .p = 0.5, .seed = 3};
  ParallelOptions opt;
  opt.ranks = 8;
  opt.keep_shards = true;
  const auto gen = generate(cfg, opt);
  const auto result =
      distributed_triangle_count(gen.shards, cfg.n, opt.scheme);
  const auto deg = graph::degree_sequence(gen.edges, cfg.n);
  Count sum_deg_sq = 0;
  for (Count d : deg) sum_deg_sq += d * d;
  EXPECT_LT(result.wedge_queries, sum_deg_sq / 10);
}

TEST(DistributedTriangles, EmptyGraph) {
  std::vector<graph::EdgeList> shards(3);
  const auto result = distributed_triangle_count(shards, 10, Scheme::kRrp);
  EXPECT_EQ(result.triangles, 0u);
  EXPECT_EQ(result.wedge_queries, 0u);
}

}  // namespace
}  // namespace pagen::core
