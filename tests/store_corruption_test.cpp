// Corrupt-shard detection (docs/storage.md §2): every way a compressed
// shard can rot on disk — truncation, a flipped header byte, a flipped
// payload byte, a forged overlong edge count — must raise CheckError
// before a single damaged edge escapes, and the damaged artifact must be
// quarantinable through the svc `*.quarantined` rename path so the serving
// layer regenerates instead of serving poison.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/edge_writer.h"
#include "store/format.h"
#include "store/shard_reader.h"
#include "svc/cache.h"
#include "util/error.h"

namespace pagen::store {
namespace {

class StoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pagen_store_corrupt_" + std::to_string(counter_++)))
               .string();
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/shard.pcs";
    CompressedEdgeWriter writer(path_, kBlockEdges);
    for (NodeId u = 1; u <= 3000; ++u) {
      writer.append({u, u / 2});
    }
    summary_ = writer.finish();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// XOR one byte of the shard file in place.
  void flip_byte(std::uintmax_t offset, std::uint8_t mask = 0x01) const {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(c ^ mask));
  }

  /// Payload size of block 0, read back from its (intact) header.
  std::uintmax_t first_block_payload_bytes() const {
    std::ifstream f(path_, std::ios::binary);
    f.seekg(sizeof(kShardMagic));
    std::vector<std::uint8_t> head(kBlockHeaderBytes);
    f.read(reinterpret_cast<char*>(head.data()),
           static_cast<std::streamsize>(head.size()));
    return get_block_header(head, kBlockEdges).payload_bytes;
  }

  /// The reader must reject the shard and the file must be quarantinable
  /// via the svc rename path (PR 8 contract: artifact -> artifact.quarantined).
  void expect_rejected_and_quarantined() const {
    EdgeShardReader reader(path_, kBlockEdges);
    EXPECT_THROW((void)reader.read_all(), CheckError);
    EXPECT_TRUE(svc::quarantine_file(path_));
    EXPECT_FALSE(std::filesystem::exists(path_));
    EXPECT_TRUE(std::filesystem::exists(path_ + ".quarantined"));
  }

  static constexpr std::uint32_t kBlockEdges = 1024;
  std::string dir_;
  std::string path_;
  ShardSummary summary_{};
  static int counter_;
};
int StoreCorruptionTest::counter_ = 0;

TEST_F(StoreCorruptionTest, IntactShardReads) {
  EdgeShardReader reader(path_, kBlockEdges);
  EXPECT_EQ(reader.read_all().size(), 3000u);
}

TEST_F(StoreCorruptionTest, TruncatedBlockRejected) {
  // Cut the file mid-payload of the last block (drop the trailer and the
  // final payload bytes).
  std::filesystem::resize_file(path_,
                               std::filesystem::file_size(path_) -
                                   kTrailerBytes - 7);
  expect_rejected_and_quarantined();
}

TEST_F(StoreCorruptionTest, MissingTrailerRejected) {
  // A cleanly block-aligned file without its trailer is still truncated:
  // an unsealed (crashed) writer must never pass as a complete shard.
  std::filesystem::resize_file(
      path_, std::filesystem::file_size(path_) - kTrailerBytes);
  expect_rejected_and_quarantined();
}

TEST_F(StoreCorruptionTest, FlippedHeaderByteRejected) {
  flip_byte(sizeof(kShardMagic) + 4);  // inside block 0's header
  expect_rejected_and_quarantined();
}

TEST_F(StoreCorruptionTest, FlippedPayloadByteRejected) {
  flip_byte(sizeof(kShardMagic) + kBlockHeaderBytes + 3);
  expect_rejected_and_quarantined();
}

TEST_F(StoreCorruptionTest, FlippedMagicRejected) {
  flip_byte(0);
  EXPECT_THROW(EdgeShardReader(path_, kBlockEdges), CheckError);
}

TEST_F(StoreCorruptionTest, ForgedOverlongEdgeCountRejected) {
  // Re-sign block 0's header with an edge count far beyond the manifest's
  // block size (checksum valid, so only the bounds check can catch it).
  BlockHeader forged;
  forged.first_u = 1;
  forged.first_v = 0;
  forged.edge_count = kBlockEdges * 64;
  forged.payload_bytes = 8;
  std::vector<std::uint8_t> bytes;
  put_block_header(bytes, forged);
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(sizeof(kShardMagic));
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  f.close();
  expect_rejected_and_quarantined();
}

TEST_F(StoreCorruptionTest, ForgedCountBeyondAbsoluteCapRejected) {
  // Even a reader with no manifest bound enforces kMaxBlockEdges, so a
  // forged header can never drive a giant allocation.
  BlockHeader forged;
  forged.edge_count = kMaxBlockEdges + 1;
  forged.payload_bytes = 8;
  std::vector<std::uint8_t> bytes;
  put_block_header(bytes, forged);
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(sizeof(kShardMagic));
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  f.close();
  EdgeShardReader reader(path_);  // default: absolute cap only
  EXPECT_THROW((void)reader.read_all(), CheckError);
}

TEST_F(StoreCorruptionTest, TrailerCountMismatchRejected) {
  // Rewrite the trailer claiming one edge fewer (valid trailer checksum):
  // the reader's totals cross-check must still reject the shard.
  ShardTrailer lying;
  lying.num_blocks = summary_.blocks;
  lying.num_edges = summary_.edges - 1;
  lying.header_chain = kFnvOffset;
  std::vector<std::uint8_t> bytes;
  put_trailer(bytes, lying);
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(path_) -
                                      kTrailerBytes));
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  f.close();
  expect_rejected_and_quarantined();
}

TEST_F(StoreCorruptionTest, VisitStopsBeforeDeliveringDamagedEdges) {
  // Flip a byte in the *second* block: every edge delivered before the
  // throw must come from fully verified blocks.
  const std::uintmax_t second_header =
      sizeof(kShardMagic) + kBlockHeaderBytes + first_block_payload_bytes();
  flip_byte(second_header + kBlockHeaderBytes + 1);
  EdgeShardReader reader(path_, kBlockEdges);
  Count delivered = 0;
  EXPECT_THROW(reader.visit([&delivered](std::span<const graph::Edge> batch) {
    delivered += batch.size();
  }),
               CheckError);
  EXPECT_EQ(delivered, kBlockEdges) << "only block 0 may be delivered";
}

}  // namespace
}  // namespace pagen::store
