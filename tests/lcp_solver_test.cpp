#include "partition/lcp_solver.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/harmonic.h"

namespace pagen::partition {
namespace {

TEST(BlockLoad, ZeroWidthIsZero) {
  EXPECT_DOUBLE_EQ(block_load(1000, 10.0, 10.0, 2.0), 0.0);
}

TEST(BlockLoad, AdditiveOverSplit) {
  // L(lo, hi) must equal L(lo, mid) + L(mid, hi): the load is a sum over
  // nodes, and Eq. 10's solvability depends on it.
  const NodeId n = 100000;
  const double lo = 1000, mid = 30000, hi = 90000;
  EXPECT_NEAR(block_load(n, lo, hi, 2.0),
              block_load(n, lo, mid, 2.0) + block_load(n, mid, hi, 2.0), 1e-6);
}

TEST(BlockLoad, MatchesDirectHarmonicSum) {
  // With b = 1 + c the block load equals the per-node sum of the constant
  // work c plus the expected incoming messages of Lemma 3.4 (+1 absorbed by
  // the harmonic-sum identity):
  //   L(lo, hi) = sum_{k=lo}^{hi-1} [ (b - 1) + 1 + (H_{n-1} - H_k) ]
  const NodeId n = 5000;
  const Count lo = 100, hi = 200;
  const double b = 2.0;
  const Harmonic h(8192);
  double direct = 0.0;
  for (Count k = lo; k < hi; ++k) direct += b + (h(n - 1) - h(k));
  // The identity sum H_k = hi*H_hi - lo*H_lo - (hi - lo) shifts one unit of
  // constant per node into the harmonic term.
  direct -= static_cast<double>(hi - lo);
  EXPECT_NEAR(block_load(n, static_cast<double>(lo), static_cast<double>(hi), b),
              direct, 1e-6);
}

TEST(BlockLoad, EarlyNodesCarryMoreLoad) {
  // Same-width blocks: the low-label block receives more requests.
  const NodeId n = 100000;
  EXPECT_GT(block_load(n, 0.0, 1000.0, 2.0),
            block_load(n, 90000.0, 91000.0, 2.0));
}

TEST(SolveEq10, BoundariesAreMonotoneAndCoverRange) {
  const NodeId n = 1000000;
  const int parts = 16;
  const auto bounds = solve_eq10(n, parts);
  ASSERT_EQ(bounds.size(), static_cast<std::size_t>(parts) + 1);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.0);
  EXPECT_DOUBLE_EQ(bounds.back(), static_cast<double>(n));
  for (int i = 0; i < parts; ++i) {
    EXPECT_LT(bounds[static_cast<std::size_t>(i)],
              bounds[static_cast<std::size_t>(i) + 1]);
  }
}

TEST(SolveEq10, BlocksCarryEqualLoad) {
  const NodeId n = 1000000;
  const int parts = 8;
  const auto bounds = solve_eq10(n, parts);
  const double target =
      block_load(n, 0.0, static_cast<double>(n), 2.0) / parts;
  for (int i = 0; i < parts; ++i) {
    const double load = block_load(n, bounds[static_cast<std::size_t>(i)],
                                   bounds[static_cast<std::size_t>(i) + 1], 2.0);
    EXPECT_NEAR(load / target, 1.0, 0.01) << "block " << i;
  }
}

TEST(SolveEq10, BlockSizesGrowWithRank) {
  const auto bounds = solve_eq10(1000000, 8);
  const double first = bounds[1] - bounds[0];
  const double last = bounds[8] - bounds[7];
  EXPECT_GT(last, first)
      << "low blocks receive more messages, so they must hold fewer nodes";
}

TEST(SolveEq10, SinglePartTrivial) {
  const auto bounds = solve_eq10(1000, 1);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.0);
  EXPECT_DOUBLE_EQ(bounds[1], 1000.0);
}

TEST(FitLcpParams, SumMatchesN) {
  // sum_i (a + i d) over i in [0, P) must equal n (Appendix A.2, Eq. 12).
  const NodeId n = 1000000;
  const int parts = 32;
  const LcpParams params = fit_lcp_params(n, parts);
  const double sum = parts * params.a +
                     params.d * parts * (parts - 1) / 2.0;
  EXPECT_NEAR(sum, static_cast<double>(n), 1.0);
}

TEST(FitLcpParams, PositiveSlope) {
  const LcpParams params = fit_lcp_params(1000000, 16);
  EXPECT_GT(params.d, 0.0);
}

TEST(FitLcpParams, LinearApproximationTracksExactSolution) {
  // Fig. 3's observation: the exact Eq. 10 solution is nearly linear. The
  // exact block-size curve is mildly convex, so the fit is tightest in the
  // middle and a few percent off at the extreme ranks.
  const NodeId n = 1000000;
  const int parts = 16;
  const auto bounds = solve_eq10(n, parts);
  const LcpParams params = fit_lcp_params(n, parts);
  for (int i = 0; i < parts; ++i) {
    const double exact = bounds[static_cast<std::size_t>(i) + 1] -
                         bounds[static_cast<std::size_t>(i)];
    const double approx = params.a + params.d * i;
    const double tol = (i >= 3 && i <= parts - 4) ? 0.10 : 0.16;
    EXPECT_NEAR(approx / exact, 1.0, tol) << "block " << i;
  }
}

}  // namespace
}  // namespace pagen::partition
