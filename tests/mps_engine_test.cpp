#include "mps/engine.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen::mps {
namespace {

using namespace std::chrono_literals;

TEST(Engine, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::mutex mu;
  std::set<Rank> seen;
  const RunResult r = run_ranks(7, [&](Comm& comm) {
    ++count;
    std::lock_guard lock(mu);
    seen.insert(comm.rank());
  });
  EXPECT_EQ(count.load(), 7);
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(r.rank_stats.size(), 7u);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(Engine, SizeVisibleToRanks) {
  run_ranks(3, [](Comm& comm) { EXPECT_EQ(comm.size(), 3); });
}

TEST(Engine, PointToPointDelivery) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_item<std::uint64_t>(1, 5, 99);
    } else {
      std::vector<Envelope> in;
      while (!comm.poll_wait(in, 100ms)) {
      }
      ASSERT_EQ(in.size(), 1u);
      EXPECT_EQ(in[0].src, 0);
      EXPECT_EQ(in[0].tag, 5);
      EXPECT_EQ(unpack<std::uint64_t>(in[0].payload)[0], 99u);
    }
  });
}

TEST(Engine, SelfSendDelivered) {
  run_ranks(1, [](Comm& comm) {
    comm.send_item<std::uint64_t>(0, 1, 7);
    std::vector<Envelope> in;
    EXPECT_TRUE(comm.poll(in));
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(unpack<std::uint64_t>(in[0].payload)[0], 7u);
  });
}

TEST(Engine, RingPassAroundAllRanks) {
  constexpr int kRanks = 6;
  run_ranks(kRanks, [](Comm& comm) {
    // Token starts at 0, visits every rank, accumulating rank ids.
    if (comm.rank() == 0) comm.send_item<std::uint64_t>(1 % kRanks, 1, 0);
    std::vector<Envelope> in;
    while (!comm.poll_wait(in, 100ms)) {
    }
    const auto token = unpack<std::uint64_t>(in[0].payload)[0] +
                       static_cast<std::uint64_t>(comm.rank());
    if (comm.rank() != 0) {
      comm.send_item<std::uint64_t>((comm.rank() + 1) % kRanks, 1, token);
    } else {
      EXPECT_EQ(token, 0u + 1 + 2 + 3 + 4 + 5);
    }
  });
}

TEST(Engine, StatsCountEnvelopesAndBytes) {
  const RunResult r = run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_item<std::uint64_t>(1, 1, 42);
    } else {
      std::vector<Envelope> in;
      while (!comm.poll_wait(in, 100ms)) {
      }
    }
    comm.barrier();
  });
  EXPECT_EQ(r.rank_stats[0].envelopes_sent, 1u);
  EXPECT_EQ(r.rank_stats[0].bytes_sent, sizeof(std::uint64_t));
  EXPECT_EQ(r.rank_stats[1].envelopes_received, 1u);
  EXPECT_EQ(r.rank_stats[1].bytes_received, sizeof(std::uint64_t));
}

TEST(Engine, StatsAreSymmetricAcrossTheWorld) {
  // Every envelope sent is eventually received: after a quiesced run the
  // world-wide send and receive tallies must agree, overall, per tag, and
  // per destination.
  constexpr int kRanks = 5;
  const RunResult r = run_ranks(kRanks, [](Comm& comm) {
    // Each rank sends one tag-1 item to every peer and tag-2 to its
    // successor, then drains until it has everything addressed to it.
    for (Rank dst = 0; dst < kRanks; ++dst) {
      if (dst != comm.rank()) {
        comm.send_item<std::uint64_t>(dst, 1,
                                      static_cast<std::uint64_t>(dst));
      }
    }
    comm.send_item<std::uint64_t>((comm.rank() + 1) % kRanks, 2, 7);
    // Every rank is addressed by exactly kRanks envelopes: kRanks-1 tag-1
    // plus 1 tag-2. poll_wait appends, so `in` accumulates them all.
    std::vector<Envelope> in;
    while (in.size() < static_cast<std::size_t>(kRanks)) {
      (void)comm.poll_wait(in, 100ms);
    }
    comm.barrier();
  });

  CommStats world;
  for (const CommStats& s : r.rank_stats) world += s;
  EXPECT_EQ(world.envelopes_sent, world.envelopes_received);
  EXPECT_EQ(world.bytes_sent, world.bytes_received);
  EXPECT_EQ(world.envelopes_sent, static_cast<Count>(kRanks * kRanks));
  // Per-tag tallies agree too (tag 1: all-to-all, tag 2: the ring).
  EXPECT_EQ(world.sent_by_tag.at(1), world.received_by_tag.at(1));
  EXPECT_EQ(world.sent_by_tag.at(1),
            static_cast<Count>(kRanks * (kRanks - 1)));
  EXPECT_EQ(world.sent_by_tag.at(2), world.received_by_tag.at(2));
  EXPECT_EQ(world.sent_by_tag.at(2), static_cast<Count>(kRanks));
  // Per-destination counts: everything addressed to rank r was counted by
  // someone's envelopes_to[r], and the sum matches what r received.
  ASSERT_EQ(world.envelopes_to.size(), static_cast<std::size_t>(kRanks));
  for (int dst = 0; dst < kRanks; ++dst) {
    EXPECT_EQ(world.envelopes_to[static_cast<std::size_t>(dst)],
              r.rank_stats[static_cast<std::size_t>(dst)].envelopes_received)
        << "dst " << dst;
  }
  // A fault-free best-effort run must leave every robustness counter at
  // zero — retransmits/acks/dedup are transport artifacts and folding any
  // of them into the volumes above would skew the paper's load figures.
  EXPECT_EQ(world.retransmits, 0u);
  EXPECT_EQ(world.acks_sent, 0u);
  EXPECT_EQ(world.acks_received, 0u);
  EXPECT_EQ(world.duplicates_dropped, 0u);
  EXPECT_EQ(world.injected_drops, 0u);
  EXPECT_EQ(world.injected_dups, 0u);
}

TEST(Engine, RankExceptionPropagatesAsRootCause) {
  EXPECT_THROW(
      run_ranks(4,
                [](Comm& comm) {
                  if (comm.rank() == 2) throw std::runtime_error("rank 2 died");
                  comm.barrier();  // would deadlock without poisoning
                }),
      std::runtime_error);
}

TEST(Engine, SendToInvalidRankIsChecked) {
  EXPECT_THROW(run_ranks(1,
                         [](Comm& comm) {
                           comm.send_item<std::uint64_t>(5, 1, 1);
                         }),
               CheckError);
}

TEST(Engine, ManyRanksOversubscribed) {
  // The experiments run up to 160 logical ranks on one core; make sure the
  // runtime handles heavy oversubscription.
  const RunResult r = run_ranks(64, [](Comm& comm) {
    const auto sum = comm.allreduce_sum(1);
    EXPECT_EQ(sum, 64u);
  });
  EXPECT_EQ(r.rank_stats.size(), 64u);
}


TEST(Engine, RankFailureWakesDataPlaneWaiters) {
  // Regression: a rank death must unwind peers blocked on mailbox waits
  // (not just collectives), or the world deadlocks — found via the p = 1,
  // x > 1 unsatisfiable-configuration hang.
  bool observed_abort = false;
  try {
    run_ranks(3, [&](Comm& comm) {
      if (comm.rank() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        throw std::runtime_error("rank 0 died");
      }
      // Peers wait for data that will never come.
      std::vector<Envelope> in;
      for (;;) {
        comm.poll_wait(in, std::chrono::milliseconds(50));
      }
    });
  } catch (const std::runtime_error&) {
    observed_abort = true;  // root cause preferred over WorldAborted
  }
  EXPECT_TRUE(observed_abort);
}

}  // namespace
}  // namespace pagen::mps
