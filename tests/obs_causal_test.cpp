// Causal dependency-chain tracing (obs/causal.h) against the Theorem 3.3
// oracle: on deterministic x = 1 runs, the chain lengths the instrumented
// driver records — and the reconstruction from merged per-rank traces —
// must exactly match baseline::ChainTrace's |D_t| recursion, for every
// rank count. Plus the zero-cost contract of the disabled path.
#include "obs/causal.h"

#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "baseline/chain_tracer.h"
#include "core/generate.h"
#include "json_lint.h"
#include "obs/session.h"

namespace pagen::obs {
namespace {

using pagen::testing::JsonLint;

/// The oracle: |D_t| for t in [2, n) from the draw-replaying chain tracer,
/// folded into the same power-of-two histogram the driver uses.
Histogram oracle_histogram(const PaConfig& pa) {
  const baseline::ChainTrace trace(pa);
  const auto dep = trace.dependency_lengths();
  Histogram h;
  for (NodeId t = 2; t < pa.n; ++t) h.observe(dep[t]);
  return h;
}

/// Merge "pa.chain_length" across every rank registry of a finished run.
Histogram merged_chain_lengths(const Session& session) {
  Histogram merged;
  for (int r = 0; r < session.nranks(); ++r) {
    const auto& hists = session.rank(r).metrics().histograms();
    const auto it = hists.find("pa.chain_length");
    if (it != hists.end()) merged += it->second;
  }
  return merged;
}

TEST(CausalChains, ExactlyMatchTheorem33OracleAcrossRankCounts) {
  PaConfig pa;
  pa.n = 20000;
  pa.x = 1;
  pa.p = 0.5;
  pa.seed = 33;
  const Histogram oracle = oracle_histogram(pa);

  for (int ranks : {1, 2, 4, 7}) {
    Config cfg;
    cfg.enabled = true;
    cfg.causal = true;
    cfg.ring_capacity = 1 << 17;
    Session session(ranks, cfg);
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.gather_edges = false;
    opt.obs = &session;
    (void)core::generate(pa, opt);

    const Histogram got = merged_chain_lengths(session);
    EXPECT_EQ(got.count(), oracle.count()) << "ranks " << ranks;
    EXPECT_EQ(got.sum(), oracle.sum()) << "ranks " << ranks;
    EXPECT_EQ(got.min(), oracle.min()) << "ranks " << ranks;
    EXPECT_EQ(got.max(), oracle.max()) << "ranks " << ranks;
    const auto gb = got.buckets();
    const auto ob = oracle.buckets();
    ASSERT_EQ(gb.size(), ob.size()) << "ranks " << ranks;
    for (std::size_t i = 0; i < gb.size(); ++i) {
      EXPECT_EQ(gb[i].upper, ob[i].upper) << "ranks " << ranks;
      EXPECT_EQ(gb[i].count, ob[i].count) << "ranks " << ranks;
    }

    const ChainReport report = reconstruct_chains(session);
    EXPECT_EQ(report.chain_records, static_cast<Count>(pa.n - 2))
        << "ranks " << ranks;
    EXPECT_EQ(report.max_chain_length, oracle.max()) << "ranks " << ranks;
    EXPECT_EQ(report.chain_length.count(), oracle.count());
    EXPECT_EQ(report.chain_length.sum(), oracle.sum());
    EXPECT_EQ(report.orphan_starts, 0u) << "ranks " << ranks;
    EXPECT_EQ(report.orphan_ends, 0u) << "ranks " << ranks;
    if (ranks > 1) {
      // Some chains must have crossed ranks, and every crossing resolved.
      EXPECT_GT(report.flows, 0u) << "ranks " << ranks;
      EXPECT_GT(report.flow_ns.count(), 0u);
    } else {
      EXPECT_EQ(report.flows, 0u);  // one rank: nothing ever leaves it
    }

    std::ostringstream os;
    write_chain_report(os, report);
    const std::string json = os.str();
    EXPECT_EQ(JsonLint::check(json), "");
    EXPECT_NE(json.find("\"schema\": \"pagen.chains.v1\""), std::string::npos);
  }
}

TEST(CausalChains, GeneralModelFlowsAllResolveAndReportIsValid) {
  PaConfig pa;
  pa.n = 8000;
  pa.x = 3;
  pa.p = 0.4;
  pa.seed = 9;
  Config cfg;
  cfg.enabled = true;
  cfg.causal = true;
  cfg.ring_capacity = 1 << 17;
  Session session(4, cfg);
  core::ParallelOptions opt;
  opt.ranks = 4;
  opt.gather_edges = false;
  opt.obs = &session;
  (void)core::generate(pa, opt);

  const ChainReport report = reconstruct_chains(session);
  EXPECT_GT(report.chain_records, 0u);
  EXPECT_GT(report.flows, 0u);
  // Duplicate-avoidance retries reuse a slot's flow id across rounds; the
  // time-ordered replay must still pair every start with its end.
  EXPECT_EQ(report.orphan_starts, 0u);
  EXPECT_EQ(report.orphan_ends, 0u);
  EXPECT_FALSE(report.critical.phase.empty());

  std::ostringstream os;
  write_chain_report(os, report);
  EXPECT_EQ(JsonLint::check(os.str()), "");
}

/// Run one generation and return (mps.bytes_sent, mps.causal_stamps) from
/// the merged registries (the stamps counter is absent => 0).
std::pair<Count, Count> traffic_of(const PaConfig& pa, bool causal) {
  Config cfg;
  cfg.enabled = true;
  cfg.causal = causal;
  Session session(4, cfg);
  core::ParallelOptions opt;
  opt.ranks = 4;
  opt.gather_edges = false;
  opt.obs = &session;
  (void)core::generate(pa, opt);

  MetricsRegistry totals;
  for (int r = 0; r < session.nranks(); ++r) {
    totals.merge(session.rank(r).metrics());
  }
  const auto& counters = totals.counters();
  const Count bytes = counters.at("mps.bytes_sent").value();
  const auto it = counters.find("mps.causal_stamps");
  const Count stamps = it == counters.end() ? 0 : it->second.value();
  return {bytes, stamps};
}

TEST(CausalChains, DisabledPathAddsNoStampsAndNoWireBytes) {
  PaConfig pa;
  pa.n = 10000;
  pa.x = 1;
  pa.p = 0.5;
  pa.seed = 7;
  const auto [bytes_off, stamps_off] = traffic_of(pa, false);
  const auto [bytes_on, stamps_on] = traffic_of(pa, true);
  EXPECT_EQ(stamps_off, 0u);  // no tracing, no stamps — not one
  EXPECT_GT(stamps_on, 0u);   // remote requests were stamped
  // Stamps ride beside the payload, never in it: payload traffic identical.
  EXPECT_EQ(bytes_off, bytes_on);
}

}  // namespace
}  // namespace pagen::obs
