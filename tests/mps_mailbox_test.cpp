#include "mps/mailbox.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pagen::mps {
namespace {

using namespace std::chrono_literals;

Envelope make_env(Rank src, int tag, std::uint64_t value) {
  Envelope e;
  e.src = src;
  e.tag = tag;
  pack_one(e.payload, value);
  return e;
}

TEST(Mailbox, EmptyDrainReturnsFalse) {
  Mailbox box;
  std::vector<Envelope> out;
  EXPECT_FALSE(box.try_drain(out));
  EXPECT_TRUE(out.empty());
}

TEST(Mailbox, FifoWithinProducer) {
  Mailbox box;
  for (std::uint64_t i = 0; i < 100; ++i) box.push(make_env(0, 1, i));
  std::vector<Envelope> out;
  EXPECT_TRUE(box.try_drain(out));
  ASSERT_EQ(out.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(unpack<std::uint64_t>(out[i].payload)[0], i);
  }
}

TEST(Mailbox, DrainAppendsToExisting) {
  Mailbox box;
  box.push(make_env(0, 1, 7));
  std::vector<Envelope> out;
  out.push_back(make_env(9, 9, 9));
  box.try_drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].src, 9);
}

TEST(Mailbox, WaitDrainTimesOutWhenEmpty) {
  Mailbox box;
  std::vector<Envelope> out;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.wait_drain(out, 50ms));
  EXPECT_GE(std::chrono::steady_clock::now() - start, 40ms);
}

TEST(Mailbox, WaitDrainWakesOnPush) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    box.push(make_env(1, 2, 42));
  });
  std::vector<Envelope> out;
  EXPECT_TRUE(box.wait_drain(out, 5000ms));
  producer.join();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(unpack<std::uint64_t>(out[0].payload)[0], 42u);
}

TEST(Mailbox, MultiProducerStressLosesNothing) {
  Mailbox box;
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        box.push(make_env(p, 1, i));
      }
    });
  }
  std::vector<Envelope> got;
  std::vector<Envelope> batch;
  while (got.size() < kProducers * kPerProducer) {
    batch.clear();
    if (box.wait_drain(batch, 1000ms)) {
      got.insert(got.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(got.size(), kProducers * kPerProducer);

  // Per-producer FIFO must hold even under contention.
  std::vector<std::uint64_t> next(kProducers, 0);
  for (const Envelope& e : got) {
    const auto v = unpack<std::uint64_t>(e.payload)[0];
    EXPECT_EQ(v, next[e.src]) << "producer " << e.src << " out of order";
    ++next[e.src];
  }
}

TEST(Mailbox, SizeReflectsQueue) {
  Mailbox box;
  EXPECT_EQ(box.size(), 0u);
  box.push(make_env(0, 1, 1));
  box.push(make_env(0, 1, 2));
  EXPECT_EQ(box.size(), 2u);
  std::vector<Envelope> out;
  box.try_drain(out);
  EXPECT_EQ(box.size(), 0u);
}

}  // namespace
}  // namespace pagen::mps
