// Cross-implementation distribution equivalence: at p = 1/2 the copy model
// *is* the Barabási–Albert process (Section 3.1's derivation), so the copy
// model, the repetition-list BA generator, and the distributed algorithm
// must all sample the same degree distribution. Verified with two-sample
// KS tests at the 1% level.
#include <gtest/gtest.h>

#include "analysis/ks_distance.h"
#include "analysis/powerlaw_fit.h"
#include "baseline/ba_batagelj_brandes.h"
#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "graph/edge_list.h"

namespace pagen {
namespace {

std::vector<Count> degrees_of(const graph::EdgeList& edges, NodeId n) {
  return graph::degree_sequence(edges, n);
}

TEST(ModelEquivalence, CopyModelMatchesBaTrees) {
  const PaConfig cfg{.n = 50000, .x = 1, .p = 0.5, .seed = 3};
  const auto copy_deg = degrees_of(baseline::copy_model_x1(cfg), cfg.n);
  const auto ba_deg = degrees_of(baseline::ba_batagelj_brandes(cfg), cfg.n);
  EXPECT_LT(analysis::ks_distance(copy_deg, ba_deg),
            analysis::ks_critical_value(copy_deg.size(), ba_deg.size(), 0.01));
}

TEST(ModelEquivalence, CopyModelMatchesBaGeneral) {
  const PaConfig cfg{.n = 40000, .x = 4, .p = 0.5, .seed = 5};
  const auto copy_deg =
      degrees_of(baseline::copy_model_general(cfg).edges, cfg.n);
  const auto ba_deg = degrees_of(baseline::ba_batagelj_brandes(cfg), cfg.n);
  EXPECT_LT(analysis::ks_distance(copy_deg, ba_deg),
            analysis::ks_critical_value(copy_deg.size(), ba_deg.size(), 0.01));
}

TEST(ModelEquivalence, ParallelMatchesBa) {
  const PaConfig cfg{.n = 40000, .x = 4, .p = 0.5, .seed = 7};
  core::ParallelOptions opt;
  opt.ranks = 8;
  const auto par_deg = degrees_of(core::generate(cfg, opt).edges, cfg.n);
  const auto ba_deg = degrees_of(baseline::ba_batagelj_brandes(cfg), cfg.n);
  EXPECT_LT(analysis::ks_distance(par_deg, ba_deg),
            analysis::ks_critical_value(par_deg.size(), ba_deg.size(), 0.01));
}

TEST(ModelEquivalence, OffHalfPIsNotBa) {
  // Sanity for the KS machinery: p != 1/2 is a *different* distribution
  // (heavier/lighter tail), and the test must detect it.
  const PaConfig ba_cfg{.n = 40000, .x = 4, .p = 0.5, .seed = 9};
  PaConfig off = ba_cfg;
  off.p = 0.15;
  const auto ba_deg = degrees_of(baseline::ba_batagelj_brandes(ba_cfg), ba_cfg.n);
  const auto off_deg =
      degrees_of(baseline::copy_model_general(off).edges, off.n);
  EXPECT_GT(analysis::ks_distance(off_deg, ba_deg),
            analysis::ks_critical_value(off_deg.size(), ba_deg.size(), 0.01));
}

TEST(ModelEquivalence, FittedExponentsAgree) {
  const PaConfig cfg{.n = 100000, .x = 4, .p = 0.5, .seed = 11};
  const auto copy_fit = analysis::fit_gamma_mle(
      degrees_of(baseline::copy_model_general(cfg).edges, cfg.n), cfg.x);
  const auto ba_fit = analysis::fit_gamma_mle(
      degrees_of(baseline::ba_batagelj_brandes(cfg), cfg.n), cfg.x);
  EXPECT_NEAR(copy_fit.gamma, ba_fit.gamma, 0.1);
}

}  // namespace
}  // namespace pagen
