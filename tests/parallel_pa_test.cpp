// Exactness suite for Algorithm 3.1 (x = 1): the distributed generator must
// reproduce the sequential copy model bitwise for every partitioning scheme,
// rank count, p, and buffering configuration.
#include <tuple>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "core/parallel_pa.h"
#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::core {
namespace {

using partition::Scheme;

PaConfig base_config() { return {.n = 20000, .x = 1, .p = 0.5, .seed = 42}; }

using Param = std::tuple<Scheme, int>;

std::string param_name(const ::testing::TestParamInfo<Param>& param_info) {
  return partition::to_string(std::get<0>(param_info.param)) + "_P" +
         std::to_string(std::get<1>(param_info.param));
}

class ParallelPaExactness : public ::testing::TestWithParam<Param> {};

TEST_P(ParallelPaExactness, BitwiseMatchesSequentialCopyModel) {
  const PaConfig cfg = base_config();
  ParallelOptions opt;
  opt.scheme = std::get<0>(GetParam());
  opt.ranks = std::get<1>(GetParam());
  const auto result = generate_pa_x1(cfg, opt);
  EXPECT_EQ(result.targets, baseline::copy_model_targets(cfg));
  EXPECT_EQ(result.total_edges, cfg.n - 1);
}

TEST_P(ParallelPaExactness, LoadCountersAreConsistent) {
  const PaConfig cfg = base_config();
  ParallelOptions opt;
  opt.scheme = std::get<0>(GetParam());
  opt.ranks = std::get<1>(GetParam());
  opt.gather_edges = false;
  const auto result = generate_pa_x1(cfg, opt);

  Count nodes = 0, req_out = 0, req_in = 0, res_out = 0, res_in = 0;
  for (const auto& l : result.loads) {
    nodes += l.nodes;
    req_out += l.requests_sent;
    req_in += l.requests_received;
    res_out += l.resolved_sent;
    res_in += l.resolved_received;
  }
  EXPECT_EQ(nodes, cfg.n);
  EXPECT_EQ(req_out, req_in) << "requests conserve";
  EXPECT_EQ(res_out, res_in) << "responses conserve";
  EXPECT_EQ(req_out, res_out) << "one response per request (x = 1)";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelPaExactness,
    ::testing::Combine(::testing::Values(Scheme::kUcp, Scheme::kLcp,
                                         Scheme::kRrp),
                       ::testing::Values(1, 2, 5, 16, 37)),
    param_name);

TEST(ParallelPa, IndependentOfBufferCapacity) {
  const PaConfig cfg = base_config();
  const auto reference = baseline::copy_model_targets(cfg);
  for (std::size_t capacity : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    ParallelOptions opt;
    opt.ranks = 6;
    opt.scheme = Scheme::kRrp;
    opt.buffer_capacity = capacity;
    EXPECT_EQ(generate_pa_x1(cfg, opt).targets, reference)
        << "capacity=" << capacity;
  }
}

TEST(ParallelPa, IndependentOfNodeBatch) {
  const PaConfig cfg = base_config();
  const auto reference = baseline::copy_model_targets(cfg);
  for (std::size_t batch : {std::size_t{1}, std::size_t{64}, std::size_t{100000}}) {
    ParallelOptions opt;
    opt.ranks = 4;
    opt.scheme = Scheme::kUcp;
    opt.node_batch = batch;
    EXPECT_EQ(generate_pa_x1(cfg, opt).targets, reference)
        << "batch=" << batch;
  }
}

TEST(ParallelPa, ConsecutiveSchemesWorkWithoutForcedFlush) {
  // The paper: CP schemes cannot deadlock even without the special resolved
  // flush rule, because rank i only ever waits on lower ranks.
  const PaConfig cfg = base_config();
  for (Scheme scheme : {Scheme::kUcp, Scheme::kLcp}) {
    ParallelOptions opt;
    opt.ranks = 8;
    opt.scheme = scheme;
    opt.flush_resolved_after_batch = false;
    EXPECT_EQ(generate_pa_x1(cfg, opt).targets,
              baseline::copy_model_targets(cfg))
        << partition::to_string(scheme);
  }
}

TEST(ParallelPa, SweepOverP) {
  // Exactness across the copy probability (the gamma knob of the model).
  for (double p : {0.1, 0.5, 0.9}) {
    PaConfig cfg = base_config();
    cfg.p = p;
    cfg.n = 5000;
    ParallelOptions opt;
    opt.ranks = 7;
    opt.scheme = Scheme::kRrp;
    EXPECT_EQ(generate_pa_x1(cfg, opt).targets,
              baseline::copy_model_targets(cfg))
        << "p=" << p;
  }
}

TEST(ParallelPa, EdgesMatchTargets) {
  const PaConfig cfg{.n = 3000, .x = 1, .p = 0.5, .seed = 6};
  ParallelOptions opt;
  opt.ranks = 5;
  const auto result = generate_pa_x1(cfg, opt);
  ASSERT_EQ(result.edges.size(), cfg.n - 1);
  for (const auto& e : result.edges) {
    EXPECT_EQ(result.targets[e.u], e.v) << "edge (t, F_t) mismatch";
  }
}

TEST(ParallelPa, GatherCanBeDisabled) {
  const PaConfig cfg{.n = 4000, .x = 1, .p = 0.5, .seed = 2};
  ParallelOptions opt;
  opt.ranks = 4;
  opt.gather_edges = false;
  const auto result = generate_pa_x1(cfg, opt);
  EXPECT_TRUE(result.edges.empty());
  EXPECT_TRUE(result.targets.empty());
  EXPECT_EQ(result.total_edges, cfg.n - 1);
}

TEST(ParallelPa, TinyWorldSizes) {
  // n barely above the rank count stresses boundary partitions.
  const PaConfig cfg{.n = 17, .x = 1, .p = 0.5, .seed = 3};
  for (int ranks : {1, 2, 16, 17}) {
    ParallelOptions opt;
    opt.ranks = ranks;
    opt.scheme = Scheme::kRrp;
    EXPECT_EQ(generate_pa_x1(cfg, opt).targets,
              baseline::copy_model_targets(cfg))
        << "ranks=" << ranks;
  }
}

TEST(ParallelPa, RejectsBadConfigs) {
  ParallelOptions opt;
  opt.ranks = 4;
  EXPECT_THROW(generate_pa_x1({.n = 100, .x = 2, .p = 0.5, .seed = 1}, opt),
               CheckError);
  EXPECT_THROW(generate_pa_x1({.n = 2, .x = 1, .p = 0.5, .seed = 1}, opt),
               CheckError);
}

TEST(ParallelPa, ManyRanksOversubscribed) {
  // Mirrors the paper's P = 160 experiments on one machine.
  const PaConfig cfg{.n = 50000, .x = 1, .p = 0.5, .seed = 12};
  ParallelOptions opt;
  opt.ranks = 96;
  opt.scheme = Scheme::kRrp;
  opt.gather_edges = false;
  const auto result = generate_pa_x1(cfg, opt);
  EXPECT_EQ(result.total_edges, cfg.n - 1);
  EXPECT_EQ(result.loads.size(), 96u);
}

}  // namespace
}  // namespace pagen::core
