// Streaming generation (ParallelOptions::edge_sink): "generate on the fly
// and analyze without performing disk I/O" (Section 3.2).
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "graph/edge_list.h"

namespace pagen::core {
namespace {

TEST(Streaming, SinkSeesEveryEdgeExactlyOnce) {
  const PaConfig cfg{.n = 20000, .x = 4, .p = 0.5, .seed = 21};
  ParallelOptions opt;
  opt.ranks = 8;
  opt.gather_edges = false;
  std::atomic<Count> streamed{0};
  opt.edge_sink = [&](Rank, const graph::Edge&) {
    streamed.fetch_add(1, std::memory_order_relaxed);
  };
  const auto result = generate(cfg, opt);
  EXPECT_EQ(streamed.load(), expected_edge_count(cfg));
  EXPECT_EQ(result.total_edges, expected_edge_count(cfg));
  EXPECT_TRUE(result.edges.empty()) << "nothing stored in streaming mode";
}

TEST(Streaming, PerRankBucketsNeedNoLocking) {
  // The documented pattern: rank-indexed accumulators.
  const PaConfig cfg{.n = 30000, .x = 1, .p = 0.5, .seed = 4};
  ParallelOptions opt;
  opt.ranks = 6;
  opt.gather_edges = false;
  std::vector<std::vector<Count>> deg_per_rank(
      6, std::vector<Count>(cfg.n, 0));
  opt.edge_sink = [&](Rank r, const graph::Edge& e) {
    auto& deg = deg_per_rank[static_cast<std::size_t>(r)];
    ++deg[e.u];
    ++deg[e.v];
  };
  (void)generate(cfg, opt);

  // Folding the rank buckets reproduces the exact degree sequence.
  std::vector<Count> deg(cfg.n, 0);
  for (const auto& bucket : deg_per_rank) {
    for (NodeId v = 0; v < cfg.n; ++v) deg[v] += bucket[v];
  }
  const auto reference =
      graph::degree_sequence(baseline::copy_model_x1(cfg), cfg.n);
  EXPECT_EQ(deg, reference);
}

TEST(Streaming, SinkComposesWithGathering) {
  const PaConfig cfg{.n = 5000, .x = 3, .p = 0.5, .seed = 6};
  ParallelOptions opt;
  opt.ranks = 4;
  std::atomic<Count> streamed{0};
  opt.edge_sink = [&](Rank, const graph::Edge&) { ++streamed; };
  const auto result = generate(cfg, opt);
  EXPECT_EQ(streamed.load(), result.edges.size());
}

TEST(Streaming, SinkRankMatchesEdgeOwner) {
  const PaConfig cfg{.n = 8000, .x = 2, .p = 0.5, .seed = 8};
  ParallelOptions opt;
  opt.ranks = 5;
  opt.scheme = partition::Scheme::kRrp;
  opt.gather_edges = false;
  const auto part = partition::make_partition(opt.scheme, cfg.n, opt.ranks);
  std::atomic<int> violations{0};
  opt.edge_sink = [&](Rank r, const graph::Edge& e) {
    // Every emitted edge's newer endpoint belongs to the emitting rank.
    if (part->owner(e.u) != r) ++violations;
  };
  (void)generate(cfg, opt);
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace pagen::core
