#include "partition/partition.h"

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen::partition {
namespace {

// ---------------------------------------------------------------------------
// Property sweep: every scheme must induce a true partition of {0..n-1} with
// consistent owner/node_at/local_index/part_size for a grid of (n, P).
// ---------------------------------------------------------------------------

using Param = std::tuple<Scheme, NodeId, int>;

std::string param_name(const ::testing::TestParamInfo<Param>& param_info) {
  return to_string(std::get<0>(param_info.param)) + "_n" +
         std::to_string(std::get<1>(param_info.param)) + "_p" +
         std::to_string(std::get<2>(param_info.param));
}

class PartitionProperties : public ::testing::TestWithParam<Param> {};

TEST_P(PartitionProperties, SizesSumToN) {
  const auto [scheme, n, parts] = GetParam();
  const auto part = make_partition(scheme, n, parts);
  Count total = 0;
  for (Rank i = 0; i < parts; ++i) total += part->part_size(i);
  EXPECT_EQ(total, n);
}

TEST_P(PartitionProperties, EveryNodeOwnedExactlyOnce) {
  const auto [scheme, n, parts] = GetParam();
  const auto part = make_partition(scheme, n, parts);
  std::vector<Count> per_part(static_cast<std::size_t>(parts), 0);
  for (NodeId u = 0; u < n; ++u) {
    const Rank o = part->owner(u);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, parts);
    ++per_part[static_cast<std::size_t>(o)];
  }
  for (Rank i = 0; i < parts; ++i) {
    EXPECT_EQ(per_part[static_cast<std::size_t>(i)], part->part_size(i))
        << "part " << i;
  }
}

TEST_P(PartitionProperties, NodeAtEnumeratesOwnedNodesAscending) {
  const auto [scheme, n, parts] = GetParam();
  const auto part = make_partition(scheme, n, parts);
  std::set<NodeId> seen;
  for (Rank i = 0; i < parts; ++i) {
    NodeId prev = 0;
    for (Count idx = 0; idx < part->part_size(i); ++idx) {
      const NodeId u = part->node_at(i, idx);
      ASSERT_LT(u, n);
      EXPECT_EQ(part->owner(u), i);
      if (idx > 0) {
        EXPECT_GT(u, prev) << "ascending order within a part";
      }
      prev = u;
      EXPECT_TRUE(seen.insert(u).second) << "node " << u << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST_P(PartitionProperties, LocalIndexInvertsNodeAt) {
  const auto [scheme, n, parts] = GetParam();
  const auto part = make_partition(scheme, n, parts);
  for (Rank i = 0; i < parts; ++i) {
    for (Count idx = 0; idx < part->part_size(i); ++idx) {
      const NodeId u = part->node_at(i, idx);
      EXPECT_EQ(part->local_index(u), idx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperties,
    ::testing::Combine(::testing::Values(Scheme::kUcp, Scheme::kLcp,
                                         Scheme::kRrp),
                       ::testing::Values<NodeId>(16, 100, 1001, 65536),
                       ::testing::Values(1, 2, 7, 16)),
    param_name);

// ---------------------------------------------------------------------------
// Scheme-specific behaviour.
// ---------------------------------------------------------------------------

TEST(Ucp, BlocksAreConsecutiveAndUniform) {
  const auto part = make_partition(Scheme::kUcp, 100, 4);
  for (Rank i = 0; i < 4; ++i) EXPECT_EQ(part->part_size(i), 25u);
  EXPECT_EQ(part->owner(0), 0);
  EXPECT_EQ(part->owner(24), 0);
  EXPECT_EQ(part->owner(25), 1);
  EXPECT_EQ(part->owner(99), 3);
}

TEST(Rrp, OwnerIsModulo) {
  const auto part = make_partition(Scheme::kRrp, 100, 7);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_EQ(part->owner(u), static_cast<Rank>(u % 7));
  }
}

TEST(Rrp, PartSizesDifferByAtMostOne) {
  const auto part = make_partition(Scheme::kRrp, 100, 7);
  Count lo = ~Count{0}, hi = 0;
  for (Rank i = 0; i < 7; ++i) {
    lo = std::min(lo, part->part_size(i));
    hi = std::max(hi, part->part_size(i));
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Lcp, BlocksAreConsecutive) {
  const auto part = make_partition(Scheme::kLcp, 100000, 8);
  NodeId expected_start = 0;
  for (Rank i = 0; i < 8; ++i) {
    EXPECT_EQ(part->node_at(i, 0), expected_start);
    expected_start += part->part_size(i);
  }
}

TEST(Lcp, BlockSizesIncreaseWithRank) {
  // Lower-ranked processors receive more request messages (Lemma 3.4), so
  // LCP gives them fewer nodes: sizes must be non-decreasing in rank.
  const auto part = make_partition(Scheme::kLcp, 1000000, 16);
  for (Rank i = 0; i + 1 < 16; ++i) {
    EXPECT_LE(part->part_size(i), part->part_size(i + 1) + 1)
        << "rank " << i;  // +1 tolerance for integer rounding
  }
  EXPECT_LT(part->part_size(0), part->part_size(15))
      << "first block must be clearly smaller than last";
}

TEST(Factory, SchemeRoundTrip) {
  for (Scheme s : {Scheme::kUcp, Scheme::kLcp, Scheme::kRrp}) {
    EXPECT_EQ(scheme_from_string(to_string(s)), s);
  }
  EXPECT_THROW((void)scheme_from_string("bogus"), CheckError);
}

TEST(Factory, RejectsMoreRanksThanNodes) {
  EXPECT_THROW(make_partition(Scheme::kUcp, 3, 5), CheckError);
}

TEST(Partition, SinglePartOwnsEverything) {
  for (Scheme s : {Scheme::kUcp, Scheme::kLcp, Scheme::kRrp}) {
    const auto part = make_partition(s, 50, 1);
    EXPECT_EQ(part->part_size(0), 50u);
    for (NodeId u = 0; u < 50; ++u) EXPECT_EQ(part->owner(u), 0);
  }
}

}  // namespace
}  // namespace pagen::partition
