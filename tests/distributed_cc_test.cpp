#include "core/distributed_cc.h"

#include <gtest/gtest.h>

#include "core/generate.h"
#include "graph/edge_list.h"

namespace pagen::core {
namespace {

using partition::Scheme;

TEST(DistributedCc, PaNetworkIsOneComponent) {
  const PaConfig cfg{.n = 20000, .x = 4, .p = 0.5, .seed = 3};
  ParallelOptions opt;
  opt.ranks = 8;
  opt.keep_shards = true;
  opt.gather_edges = false;
  const auto result = generate(cfg, opt);
  const auto cc =
      distributed_connected_components(result.shards, cfg.n, opt.scheme);
  EXPECT_EQ(cc.components, 1u);
  EXPECT_GE(cc.rounds, 1u);
}

TEST(DistributedCc, MatchesSequentialUnionFind) {
  // Hand-built shards with several components and isolated nodes.
  const NodeId n = 20;
  std::vector<graph::EdgeList> shards(4);
  // Component {0,1,2,3}, component {10,11,12}, edge {18,19}; 4..9, 13..17
  // isolated. Place each edge in its newer endpoint's RRP shard.
  const graph::EdgeList edges{{1, 0}, {2, 1}, {3, 0}, {11, 10},
                              {12, 11}, {19, 18}};
  const auto part = partition::make_partition(Scheme::kRrp, n, 4);
  for (const auto& e : edges) {
    shards[static_cast<std::size_t>(part->owner(e.u))].push_back(e);
  }
  const auto cc = distributed_connected_components(shards, n, Scheme::kRrp);
  EXPECT_EQ(cc.components, graph::connected_components(edges, n));
  EXPECT_EQ(cc.components, 2u + 1u + 11u);  // two multis + pair + isolated
}

TEST(DistributedCc, LongPathNeedsManyRounds) {
  // A path 0-1-2-...-99 split round-robin across ranks: min label must
  // travel the full length, so rounds grow with the path.
  const NodeId n = 100;
  const int ranks = 4;
  const auto part = partition::make_partition(Scheme::kRrp, n, ranks);
  std::vector<graph::EdgeList> shards(ranks);
  graph::EdgeList edges;
  for (NodeId v = 1; v < n; ++v) {
    edges.push_back({v, v - 1});
    shards[static_cast<std::size_t>(part->owner(v))].push_back({v, v - 1});
  }
  const auto cc = distributed_connected_components(shards, n, Scheme::kRrp);
  EXPECT_EQ(cc.components, 1u);
  EXPECT_GT(cc.rounds, 3u);
}

TEST(DistributedCc, SchemeSweepAgreesWithCentralized) {
  const PaConfig cfg{.n = 5000, .x = 2, .p = 0.5, .seed = 9};
  for (Scheme scheme : {Scheme::kUcp, Scheme::kLcp, Scheme::kRrp}) {
    ParallelOptions opt;
    opt.ranks = 6;
    opt.scheme = scheme;
    opt.keep_shards = true;
    const auto result = generate(cfg, opt);
    const auto cc =
        distributed_connected_components(result.shards, cfg.n, scheme);
    EXPECT_EQ(cc.components,
              graph::connected_components(result.edges, cfg.n))
        << partition::to_string(scheme);
  }
}

TEST(DistributedCc, EmptyShardsAllIsolated) {
  std::vector<graph::EdgeList> shards(3);
  const auto cc = distributed_connected_components(shards, 30, Scheme::kRrp);
  EXPECT_EQ(cc.components, 30u);
}

TEST(DistributedCc, SingleRank) {
  const graph::EdgeList edges{{1, 0}, {3, 2}};
  std::vector<graph::EdgeList> shards{edges};
  const auto cc = distributed_connected_components(shards, 5, Scheme::kUcp);
  EXPECT_EQ(cc.components, 3u);
}

}  // namespace
}  // namespace pagen::core
