#include "core/distributed_bfs.h"

#include <gtest/gtest.h>

#include "core/generate.h"
#include "graph/csr.h"
#include "graph/edge_list.h"

namespace pagen::core {
namespace {

using partition::Scheme;

// Distribute an arbitrary edge list into owner(u)-keyed shards.
std::vector<graph::EdgeList> shard_edges(const graph::EdgeList& edges,
                                         NodeId n, Scheme scheme, int ranks) {
  const auto part = partition::make_partition(scheme, n, ranks);
  std::vector<graph::EdgeList> shards(static_cast<std::size_t>(ranks));
  for (const auto& e : edges) {
    shards[static_cast<std::size_t>(part->owner(e.u))].push_back(e);
  }
  return shards;
}

TEST(DistributedBfs, MatchesSequentialOnPath) {
  const NodeId n = 50;
  graph::EdgeList edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({v, v - 1});
  const auto shards = shard_edges(edges, n, Scheme::kRrp, 4);
  const auto result = distributed_bfs(shards, n, Scheme::kRrp, 0);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(result.distances[v], v) << "node " << v;
  }
  EXPECT_EQ(result.levels, n - 1);
  EXPECT_EQ(result.visited, n);
  EXPECT_EQ(result.frontier_peak, 1u);
}

TEST(DistributedBfs, MatchesCsrBfsOnPaNetwork) {
  const PaConfig cfg{.n = 10000, .x = 3, .p = 0.5, .seed = 5};
  ParallelOptions opt;
  opt.ranks = 8;
  opt.keep_shards = true;
  const auto gen = generate(cfg, opt);
  const graph::CsrGraph g(gen.edges, cfg.n);
  const auto reference = g.bfs_distances(0);
  const auto result = distributed_bfs(gen.shards, cfg.n, opt.scheme, 0);
  EXPECT_EQ(result.distances, reference);
  EXPECT_EQ(result.visited, cfg.n);
}

TEST(DistributedBfs, UnreachableNodesStayNil) {
  // Two islands; BFS from island A must not touch island B.
  const NodeId n = 10;
  const graph::EdgeList edges{{1, 0}, {2, 1}, {8, 7}, {9, 8}};
  const auto shards = shard_edges(edges, n, Scheme::kUcp, 3);
  const auto result = distributed_bfs(shards, n, Scheme::kUcp, 0);
  EXPECT_EQ(result.distances[2], 2u);
  EXPECT_EQ(result.distances[7], kNil);
  EXPECT_EQ(result.distances[9], kNil);
  EXPECT_EQ(result.visited, 3u);
}

TEST(DistributedBfs, SourceOnlyGraph) {
  std::vector<graph::EdgeList> shards(2);
  const auto result = distributed_bfs(shards, 5, Scheme::kRrp, 3);
  EXPECT_EQ(result.distances[3], 0u);
  EXPECT_EQ(result.visited, 1u);
  EXPECT_EQ(result.levels, 0u);
}

TEST(DistributedBfs, SchemeAndRankSweepAgree) {
  // x = 1 keeps the generated graph bitwise identical across P/scheme, so
  // BFS results must be identical too.
  const PaConfig cfg{.n = 3000, .x = 1, .p = 0.5, .seed = 9};
  ParallelOptions base;
  base.ranks = 1;
  base.keep_shards = true;
  const auto gen1 = generate(cfg, base);
  const auto reference = distributed_bfs(gen1.shards, cfg.n,
                                         partition::Scheme::kRrp, 7);
  for (Scheme scheme : {Scheme::kUcp, Scheme::kLcp, Scheme::kRrp}) {
    ParallelOptions opt;
    opt.ranks = 6;
    opt.scheme = scheme;
    opt.keep_shards = true;
    const auto gen = generate(cfg, opt);
    const auto result = distributed_bfs(gen.shards, cfg.n, scheme, 7);
    EXPECT_EQ(result.distances, reference.distances)
        << partition::to_string(scheme);
  }
}

TEST(DistributedBfs, SmallWorldDepthOnPaGraph) {
  // PA networks have O(log n)-ish BFS depth — the property the examples
  // showcase, now verified through the distributed kernel.
  const PaConfig cfg{.n = 50000, .x = 4, .p = 0.5, .seed = 13};
  ParallelOptions opt;
  opt.ranks = 8;
  opt.keep_shards = true;
  opt.gather_edges = false;
  const auto gen = generate(cfg, opt);
  const auto result = distributed_bfs(gen.shards, cfg.n, opt.scheme, 0);
  EXPECT_EQ(result.visited, cfg.n);
  EXPECT_LE(result.levels, 10u);
  EXPECT_GT(result.frontier_peak, cfg.n / 4)
      << "most of a small-world graph sits in a couple of levels";
}

}  // namespace
}  // namespace pagen::core
