// ShardedGraphView tests (docs/storage.md §3-4): a generation run taps its
// edge stream into the compressed store, and the re-opened view must feed
// every distributed kernel the exact same graph the run produced in memory
// — plus the constructor's budget check and the merged single-stream source.
#include "store/graph_view.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distributed_bfs.h"
#include "core/distributed_cc.h"
#include "core/distributed_degree.h"
#include "core/distributed_triangles.h"
#include "core/generate.h"
#include "util/error.h"

namespace pagen::store {
namespace {

graph::EdgeList normalized(graph::EdgeList edges) {
  graph::normalize(edges);
  return edges;
}

class StoreViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pagen_store_view_" + std::to_string(counter_++)))
               .string();

    cfg_.n = 600;
    cfg_.x = 4;
    cfg_.seed = 17;
    opt_.ranks = 3;
    opt_.scheme = partition::Scheme::kRrp;
    opt_.gather_edges = true;
    opt_.keep_shards = true;
    opt_.store_dir = dir_;
    opt_.store_block_edges = 128;  // many blocks at this scale
    result_ = core::generate(cfg_, opt_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  PaConfig cfg_;
  core::ParallelOptions opt_;
  core::ParallelResult result_;
  static int counter_;
};
int StoreViewTest::counter_ = 0;

TEST_F(StoreViewTest, ManifestMatchesGenerationRun) {
  const ShardedGraphView view(dir_);
  EXPECT_EQ(view.manifest().num_nodes, cfg_.n);
  EXPECT_EQ(view.manifest().num_shards, opt_.ranks);
  EXPECT_EQ(view.manifest().block_edges, opt_.store_block_edges);
  EXPECT_EQ(view.manifest().total_edges(), result_.total_edges);
  EXPECT_EQ(view.manifest().total_bytes(), result_.store_bytes);
}

TEST_F(StoreViewTest, ShardsRoundTripTheGeneratedEdges) {
  const ShardedGraphView view(dir_);
  graph::EdgeList reloaded;
  for (int r = 0; r < opt_.ranks; ++r) {
    const graph::EdgeList shard = view.load_shard(r);
    EXPECT_EQ(normalized(shard),
              normalized(result_.shards[static_cast<std::size_t>(r)]))
        << "shard " << r << " must hold exactly rank " << r << "'s edges";
    reloaded.insert(reloaded.end(), shard.begin(), shard.end());
  }
  EXPECT_EQ(normalized(reloaded), normalized(result_.edges));
}

TEST_F(StoreViewTest, KernelsMatchInMemoryShardsExactly) {
  // The four distributed kernels consume the store through its EdgeSource
  // and must produce results identical to the in-memory shard overloads.
  const ShardedGraphView view(dir_);
  const graph::EdgeSource source = view.edge_source();

  EXPECT_EQ(core::distributed_degree_distribution(source,
                                                  partition::Scheme::kRrp),
            core::distributed_degree_distribution(result_.shards, cfg_.n,
                                                  partition::Scheme::kRrp));

  const auto bfs_store =
      core::distributed_bfs(source, partition::Scheme::kRrp, /*source=*/0);
  const auto bfs_mem = core::distributed_bfs(result_.shards, cfg_.n,
                                             partition::Scheme::kRrp, 0);
  EXPECT_EQ(bfs_store.distances, bfs_mem.distances);
  EXPECT_EQ(bfs_store.levels, bfs_mem.levels);
  EXPECT_EQ(bfs_store.visited, bfs_mem.visited);

  const auto cc_store = core::distributed_connected_components(
      source, partition::Scheme::kRrp);
  const auto cc_mem = core::distributed_connected_components(
      result_.shards, cfg_.n, partition::Scheme::kRrp);
  EXPECT_EQ(cc_store.components, cc_mem.components);

  const auto tri_store =
      core::distributed_triangle_count(source, partition::Scheme::kRrp);
  const auto tri_mem = core::distributed_triangle_count(
      result_.shards, cfg_.n, partition::Scheme::kRrp);
  EXPECT_EQ(tri_store.triangles, tri_mem.triangles);
}

TEST_F(StoreViewTest, InMemoryEdgeSourceOverloadMatchesVectorOverload) {
  // The vector overloads now delegate through make_edge_source; the
  // wrapper itself must be transparent.
  const graph::EdgeSource source = graph::make_edge_source(cfg_.n,
                                                           result_.shards);
  EXPECT_EQ(core::distributed_degree_distribution(source,
                                                  partition::Scheme::kRrp),
            core::distributed_degree_distribution(result_.shards, cfg_.n,
                                                  partition::Scheme::kRrp));
}

TEST_F(StoreViewTest, MergedSourceRunsSingleRank) {
  const ShardedGraphView view(dir_);
  const graph::EdgeSource merged = view.merged_edge_source();
  EXPECT_EQ(merged.num_shards, 1);
  EXPECT_EQ(core::distributed_degree_distribution(merged,
                                                  partition::Scheme::kRrp),
            core::distributed_degree_distribution(result_.shards, cfg_.n,
                                                  partition::Scheme::kRrp));
}

TEST_F(StoreViewTest, BudgetGuaranteeCheckedAtOpen) {
  // Ample budget opens; a budget that cannot hold one block stream per
  // shard must refuse at construction, not drift over it at runtime.
  const ShardedGraphView ample(dir_, std::uint64_t{64} << 20);
  EXPECT_GT(ample.per_shard_stream_bytes(), 0u);
  EXPECT_LE(static_cast<std::uint64_t>(ample.manifest().num_shards) *
                ample.per_shard_stream_bytes(),
            std::uint64_t{64} << 20);
  EXPECT_THROW(ShardedGraphView(dir_, 1024), CheckError);
  const ShardedGraphView unbudgeted(dir_, 0);  // 0 = no budget
  EXPECT_EQ(unbudgeted.manifest().total_edges(), result_.total_edges);
}

TEST_F(StoreViewTest, SourceOutlivesView) {
  graph::EdgeSource source;
  {
    const ShardedGraphView view(dir_);
    source = view.edge_source();
  }
  Count streamed = 0;
  for (int r = 0; r < opt_.ranks; ++r) {
    source.visit_shard(r, [&streamed](std::span<const graph::Edge> batch) {
      streamed += batch.size();
    });
  }
  EXPECT_EQ(streamed, result_.total_edges);
}

TEST_F(StoreViewTest, MissingManifestRejected) {
  EXPECT_THROW(ShardedGraphView("/nonexistent/pagen/store"), CheckError);
}

}  // namespace
}  // namespace pagen::store
