#include "core/approx_pa.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/ks_distance.h"
#include "analysis/powerlaw_fit.h"
#include "baseline/copy_model_seq.h"
#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::core {
namespace {

TEST(ApproxPa, ExactEdgeCount) {
  for (NodeId x : {NodeId{1}, NodeId{4}}) {
    const PaConfig cfg{.n = 4000, .x = x, .p = 0.5, .seed = 3};
    ApproxPaOptions opt;
    opt.ranks = 6;
    const auto result = generate_approx_pa(cfg, opt);
    EXPECT_EQ(result.edges.size(), expected_edge_count(cfg)) << "x=" << x;
  }
}

TEST(ApproxPa, NoSelfLoopsAndNewEndpointOlder) {
  const PaConfig cfg{.n = 3000, .x = 4, .p = 0.5, .seed = 7};
  ApproxPaOptions opt;
  opt.ranks = 8;
  const auto result = generate_approx_pa(cfg, opt);
  for (const auto& e : result.edges) {
    EXPECT_LT(e.v, e.u);
  }
}

TEST(ApproxPa, PerNodeEndpointsDistinct) {
  const PaConfig cfg{.n = 2000, .x = 5, .p = 0.5, .seed = 9};
  ApproxPaOptions opt;
  opt.ranks = 4;
  auto edges = generate_approx_pa(cfg, opt).edges;
  EXPECT_EQ(graph::count_duplicates(edges), 0u);
}

TEST(ApproxPa, SyncRoundsFollowInterval) {
  const PaConfig cfg{.n = 10000, .x = 2, .p = 0.5, .seed = 1};
  ApproxPaOptions opt;
  opt.ranks = 4;
  opt.sync_interval = 500;  // 2500 nodes/rank -> 5 rounds
  const auto result = generate_approx_pa(cfg, opt);
  EXPECT_EQ(result.sync_rounds, 5u);
  EXPECT_GT(result.exchanged_samples, 0u);
}

TEST(ApproxPa, ProducesHeavyTail) {
  // Even the approximation must produce a scale-free network — the prior
  // work is approximate, not wrong.
  const PaConfig cfg{.n = 50000, .x = 4, .p = 0.5, .seed = 5};
  ApproxPaOptions opt;
  opt.ranks = 8;
  opt.sync_interval = 256;
  const auto result = generate_approx_pa(cfg, opt);
  const auto deg = graph::degree_sequence(result.edges, cfg.n);
  const auto fit = analysis::fit_gamma_mle(deg, cfg.x);
  EXPECT_GT(fit.gamma, 2.0);
  EXPECT_LT(fit.gamma, 4.5);
}

TEST(ApproxPa, HubStructureInflatedAtEveryParameterSetting) {
  // The measurable core of the paper's critique (i): the approximation is
  // not the PA distribution. Without global degree bookkeeping every rank
  // independently over-weights the early nodes, so the realized hub degree
  // overshoots the exact algorithm's by a large factor — at *every*
  // control-parameter setting.
  const PaConfig cfg{.n = 30000, .x = 4, .p = 0.5, .seed = 11};
  const auto exact_deg = graph::degree_sequence(
      baseline::copy_model_general(cfg).edges, cfg.n);
  const Count exact_hub =
      *std::max_element(exact_deg.begin(), exact_deg.end());

  for (Count interval : {Count{64}, Count{4096}}) {
    ApproxPaOptions opt;
    opt.ranks = 8;
    opt.sync_interval = interval;
    opt.sample_size = 512;
    const auto approx = generate_approx_pa(cfg, opt);
    const auto deg = graph::degree_sequence(approx.edges, cfg.n);
    const Count hub = *std::max_element(deg.begin(), deg.end());
    EXPECT_GT(static_cast<double>(hub), 1.5 * static_cast<double>(exact_hub))
        << "interval=" << interval;
  }
}

TEST(ApproxPa, AccuracyDependsOnControlParameters) {
  // Critique (ii): the approximation's error is not a constant — it moves
  // with the control parameters, which is why the prior work needs manual
  // tuning runs. We assert the KS error spread across settings is real.
  const PaConfig cfg{.n = 30000, .x = 4, .p = 0.5, .seed = 11};
  const auto exact_deg = graph::degree_sequence(
      baseline::copy_model_general(cfg).edges, cfg.n);

  double ks_min = 1.0, ks_max = 0.0;
  for (Count interval : {Count{64}, Count{512}, Count{100000}}) {
    ApproxPaOptions opt;
    opt.ranks = 8;
    opt.sync_interval = interval;
    opt.sample_size = 512;
    const auto approx = generate_approx_pa(cfg, opt);
    const auto deg = graph::degree_sequence(approx.edges, cfg.n);
    const double ks = analysis::ks_distance(deg, exact_deg);
    ks_min = std::min(ks_min, ks);
    ks_max = std::max(ks_max, ks);
  }
  EXPECT_GT(ks_max, 2.0 * ks_min)
      << "error must vary materially across parameter settings";
  EXPECT_LT(ks_min, 0.08) << "a good setting exists (it must be searched for)";
}

TEST(ApproxPa, SingleRankIsLocalPreferentialAttachment) {
  // With one rank the proxy list sees every edge: the result is a valid
  // (repetition-list) PA network even without any sync traffic.
  const PaConfig cfg{.n = 20000, .x = 3, .p = 0.5, .seed = 13};
  ApproxPaOptions opt;
  opt.ranks = 1;
  const auto result = generate_approx_pa(cfg, opt);
  EXPECT_EQ(result.edges.size(), expected_edge_count(cfg));
  EXPECT_EQ(result.exchanged_samples, 0u);
  const auto deg = graph::degree_sequence(result.edges, cfg.n);
  const auto fit = analysis::fit_gamma_mle(deg, cfg.x);
  EXPECT_NEAR(fit.gamma, 2.8, 0.6);
}

TEST(ApproxPa, ValidatesOptions) {
  const PaConfig cfg{.n = 100, .x = 2, .p = 0.5, .seed = 1};
  ApproxPaOptions opt;
  opt.sync_interval = 0;
  EXPECT_THROW(generate_approx_pa(cfg, opt), CheckError);
}

}  // namespace
}  // namespace pagen::core
