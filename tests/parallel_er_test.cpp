#include "core/parallel_er.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/edge_list.h"

namespace pagen::core {
namespace {

TEST(PairFromIndex, EnumeratesLexicographically) {
  // idx: 0->(1,0) 1->(2,0) 2->(2,1) 3->(3,0) ...
  EXPECT_EQ(pair_from_index(0), (graph::Edge{1, 0}));
  EXPECT_EQ(pair_from_index(1), (graph::Edge{2, 0}));
  EXPECT_EQ(pair_from_index(2), (graph::Edge{2, 1}));
  EXPECT_EQ(pair_from_index(3), (graph::Edge{3, 0}));
  EXPECT_EQ(pair_from_index(5), (graph::Edge{3, 2}));
}

TEST(PairFromIndex, InverseOfLinearization) {
  for (Count idx = 0; idx < 50000; ++idx) {
    const auto e = pair_from_index(idx);
    EXPECT_EQ(e.u * (e.u - 1) / 2 + e.v, idx);
    EXPECT_LT(e.v, e.u);
  }
}

TEST(PairFromIndex, LargeIndicesExact) {
  // Indices near 2^53 stress the floating-point inverse + correction.
  for (Count idx : {Count{1} << 40, (Count{1} << 52) + 12345,
                    (Count{1} << 53) - 7}) {
    const auto e = pair_from_index(idx);
    EXPECT_EQ(e.u * (e.u - 1) / 2 + e.v, idx);
  }
}

TEST(ParallelEr, CompleteGraphExact) {
  const auto result = generate_er({.n = 40, .p = 1.0, .seed = 1}, 7);
  EXPECT_EQ(result.total_edges, 40u * 39 / 2);
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
}

TEST(ParallelEr, EmptyAtZeroP) {
  const auto result = generate_er({.n = 100, .p = 0.0, .seed = 1}, 4);
  EXPECT_EQ(result.total_edges, 0u);
}

TEST(ParallelEr, NoDuplicatesAcrossChunkBoundaries) {
  const auto result = generate_er({.n = 2000, .p = 0.01, .seed = 5}, 16);
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
  for (const auto& e : result.edges) {
    EXPECT_LT(e.v, e.u);
    EXPECT_LT(e.u, 2000u);
  }
}

TEST(ParallelEr, EdgeCountNearExpectation) {
  const NodeId n = 3000;
  const double p = 0.01;
  for (int ranks : {1, 4, 32}) {
    const auto result = generate_er({.n = n, .p = p, .seed = 7}, ranks);
    const double expected = p * n * (n - 1) / 2.0;
    const double sigma = std::sqrt(expected * (1 - p));
    EXPECT_NEAR(static_cast<double>(result.total_edges), expected, 5 * sigma)
        << "ranks=" << ranks;
  }
}

TEST(ParallelEr, DeterministicInSeedAndRanks) {
  const baseline::ErConfig cfg{.n = 1000, .p = 0.02, .seed = 11};
  const auto a = generate_er(cfg, 8);
  const auto b = generate_er(cfg, 8);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(ParallelEr, ShardsPartitionTheIndexSpace) {
  const auto result = generate_er({.n = 500, .p = 0.05, .seed = 3}, 6);
  // Each shard's edges must fall inside its contiguous linear-index chunk,
  // so shard maxima are ordered.
  const Count total_pairs = 500u * 499 / 2;
  for (std::size_t r = 0; r < result.shards.size(); ++r) {
    const Count begin = total_pairs * r / result.shards.size();
    const Count end = total_pairs * (r + 1) / result.shards.size();
    for (const auto& e : result.shards[r]) {
      const Count idx = e.u * (e.u - 1) / 2 + e.v;
      EXPECT_GE(idx, begin) << "rank " << r;
      EXPECT_LT(idx, end) << "rank " << r;
    }
  }
}

TEST(ParallelEr, GatherCanBeDisabled) {
  const auto result = generate_er({.n = 500, .p = 0.05, .seed = 3}, 4, false);
  EXPECT_TRUE(result.edges.empty());
  EXPECT_GT(result.total_edges, 0u);
  EXPECT_EQ(result.shards.size(), 4u);
}

TEST(ParallelEr, DegreeDistributionIsHomogeneous) {
  const NodeId n = 4000;
  const double p = 0.005;
  const auto result = generate_er({.n = n, .p = p, .seed = 9}, 8);
  const auto deg = graph::degree_sequence(result.edges, n);
  double mean = 0;
  Count hub = 0;
  for (Count d : deg) {
    mean += static_cast<double>(d);
    hub = std::max(hub, d);
  }
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, p * (n - 1), 0.6);
  EXPECT_LT(static_cast<double>(hub), mean + 8 * std::sqrt(mean));
}

}  // namespace
}  // namespace pagen::core
