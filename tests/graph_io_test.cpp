#include "graph/io.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen::graph {
namespace {

EdgeList sample_edges() {
  return {{0, 1}, {5, 2}, {1000000007, 3}};
}

TEST(TextIo, RoundTrip) {
  std::stringstream ss;
  write_text(ss, sample_edges());
  const EdgeList back = read_text(ss);
  EXPECT_EQ(back, sample_edges());
}

TEST(TextIo, SkipsCommentsAndBlanks) {
  std::stringstream ss("# header\n\n1 2\n# mid\n3 4\n");
  const EdgeList back = read_text(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], (Edge{1, 2}));
  EXPECT_EQ(back[1], (Edge{3, 4}));
}

TEST(TextIo, MalformedRowThrows) {
  std::stringstream ss("1 only-one-number\n");
  EXPECT_THROW(read_text(ss), CheckError);
}

TEST(BinaryIo, RoundTrip) {
  std::stringstream ss;
  write_binary(ss, sample_edges());
  const EdgeList back = read_binary(ss);
  EXPECT_EQ(back, sample_edges());
}

TEST(BinaryIo, EmptyListRoundTrips) {
  std::stringstream ss;
  write_binary(ss, {});
  EXPECT_TRUE(read_binary(ss).empty());
}

TEST(BinaryIo, BadMagicRejected) {
  std::stringstream ss("NOTMAGIC garbage");
  EXPECT_THROW(read_binary(ss), CheckError);
}

TEST(BinaryIo, TruncationRejected) {
  std::stringstream ss;
  write_binary(ss, sample_edges());
  std::string data = ss.str();
  data.resize(data.size() - 10);
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary(truncated), CheckError);
}

TEST(BinaryIo, CorruptionDetectedByChecksum) {
  std::stringstream ss;
  write_binary(ss, sample_edges());
  std::string data = ss.str();
  data[20] = static_cast<char>(data[20] ^ 0x01);  // flip one payload bit
  std::stringstream corrupted(data);
  EXPECT_THROW(read_binary(corrupted), CheckError);
}

TEST(FileIo, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pagen_io_test.bin").string();
  save_binary(path, sample_edges());
  const EdgeList back = load_binary(path);
  EXPECT_EQ(back, sample_edges());
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(load_binary("/nonexistent/path/edges.bin"), CheckError);
}

}  // namespace
}  // namespace pagen::graph
