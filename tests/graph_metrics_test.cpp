#include "graph/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "baseline/er_gen.h"

namespace pagen::graph {
namespace {

TEST(Clustering, TriangleIsOne) {
  const CsrGraph g(EdgeList{{0, 1}, {1, 2}, {2, 0}}, 3);
  EXPECT_DOUBLE_EQ(global_clustering(g), 1.0);
}

TEST(Clustering, StarIsZero) {
  EdgeList star;
  for (NodeId leaf = 1; leaf <= 6; ++leaf) star.push_back({0, leaf});
  const CsrGraph g(star, 7);
  EXPECT_DOUBLE_EQ(global_clustering(g), 0.0);
}

TEST(Clustering, TriangleWithPendant) {
  // Triangle 0-1-2 plus pendant 3 on node 2.
  // closed wedge closures: nodes 0,1 contribute 1 each, node 2 contributes 1
  // (of its 3 wedges). total closed = 3, wedges = 1 + 1 + 3 = 5.
  const CsrGraph g(EdgeList{{0, 1}, {1, 2}, {2, 0}, {2, 3}}, 4);
  EXPECT_DOUBLE_EQ(global_clustering(g), 3.0 / 5.0);
}

TEST(Clustering, SampledMatchesExactOnCompleteGraph) {
  EdgeList complete;
  const NodeId n = 12;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) complete.push_back({i, j});
  }
  const CsrGraph g(complete, n);
  EXPECT_DOUBLE_EQ(global_clustering(g), 1.0);
  EXPECT_DOUBLE_EQ(sampled_local_clustering(g, 50, 1), 1.0);
}

TEST(Clustering, PaBeatsErClustering) {
  // PA networks have higher transitivity than density-matched ER graphs.
  const PaConfig cfg{.n = 3000, .x = 4, .p = 0.5, .seed = 3};
  const auto pa = baseline::copy_model_general(cfg);
  const CsrGraph gpa(pa.edges, cfg.n);
  const double er_p = 2.0 * static_cast<double>(pa.edges.size()) /
                      (3000.0 * 2999.0);
  const auto er = baseline::erdos_renyi({.n = 3000, .p = er_p, .seed = 3});
  const CsrGraph ger(er, 3000);
  EXPECT_GT(global_clustering(gpa), global_clustering(ger));
}

TEST(Assortativity, PerfectlyAssortativePairs) {
  // Two disjoint edges between degree-1 nodes: all endpoint degrees equal;
  // zero variance => defined as 0 by our implementation.
  const CsrGraph g(EdgeList{{0, 1}, {2, 3}}, 4);
  EXPECT_DOUBLE_EQ(degree_assortativity(g), 0.0);
}

TEST(Assortativity, StarIsPerfectlyDisassortative) {
  EdgeList star;
  for (NodeId leaf = 1; leaf <= 8; ++leaf) star.push_back({0, leaf});
  const CsrGraph g(star, 9);
  EXPECT_NEAR(degree_assortativity(g), -1.0, 1e-12);
}

TEST(Assortativity, PaIsDisassortative) {
  // Growth PA networks show negative degree correlation (hubs link to
  // low-degree late arrivals).
  const PaConfig cfg{.n = 20000, .x = 3, .p = 0.5, .seed = 8};
  const auto pa = baseline::copy_model_general(cfg);
  const CsrGraph g(pa.edges, cfg.n);
  EXPECT_LT(degree_assortativity(g), -0.01);
}

TEST(Diameter, PathGraph) {
  const CsrGraph g(EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 5);
  EXPECT_EQ(double_sweep_diameter(g, 2), 4u);
}

TEST(Diameter, StartingNodeDoesNotMatterMuch) {
  const CsrGraph g(EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 5);
  for (NodeId s = 0; s < 5; ++s) {
    EXPECT_EQ(double_sweep_diameter(g, s), 4u) << "start " << s;
  }
}

TEST(Diameter, PaNetworksAreSmallWorld) {
  const PaConfig cfg{.n = 50000, .x = 4, .p = 0.5, .seed = 2};
  const auto pa = baseline::copy_model_general(cfg);
  const CsrGraph g(pa.edges, cfg.n);
  const Count diam = double_sweep_diameter(g, 0);
  EXPECT_LE(diam, 12u) << "PA diameter grows ~log n / log log n";
  EXPECT_GE(diam, 3u);
}

TEST(MeanDistance, PathGraphFromSingleSource) {
  const CsrGraph g(EdgeList{{0, 1}, {1, 2}}, 3);
  // All sources give mean over 2 reachable targets: from the middle node,
  // (1+1)/2 = 1; from ends, (1+2)/2 = 1.5. Average over sampled sources in
  // [1, 1.5].
  const double d = sampled_mean_distance(g, 30, 7);
  EXPECT_GE(d, 1.0);
  EXPECT_LE(d, 1.5);
}

TEST(MeanDistance, ShorterInDenserGraph) {
  const PaConfig sparse{.n = 5000, .x = 2, .p = 0.5, .seed = 4};
  const PaConfig dense{.n = 5000, .x = 10, .p = 0.5, .seed = 4};
  const CsrGraph gs(baseline::copy_model_general(sparse).edges, 5000);
  const CsrGraph gd(baseline::copy_model_general(dense).edges, 5000);
  EXPECT_GT(sampled_mean_distance(gs, 5, 1), sampled_mean_distance(gd, 5, 1));
}

}  // namespace
}  // namespace pagen::graph
