#include "obs/trace.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "json_lint.h"
#include "obs/session.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::obs {
namespace {

using pagen::testing::JsonLint;

TEST(Tracer, SpanNestingRecordsInnerBeforeOuterWithContainment) {
  Tracer t(0, 64);
  t.begin("outer");
  t.begin("inner");
  t.end();
  t.end();

  const auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded when they close, so the inner span lands first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
  EXPECT_EQ(events[1].kind, EventKind::kSpan);
  // Temporal containment: inner ⊆ outer.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(Tracer, RaiiSpanClosesOnScopeExitAndNullTracerIsNoop) {
  Tracer t(0, 64);
  {
    const auto outer = t.span("outer");
    const auto noop = span(static_cast<Tracer*>(nullptr), "ignored");
    EXPECT_EQ(t.events().size(), 0u);  // still open
  }
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_STREQ(t.events()[0].name, "outer");
}

TEST(Tracer, EndWithoutBeginIsChecked) {
  Tracer t(0, 8);
  EXPECT_THROW(t.end(), CheckError);
}

TEST(Tracer, RingBufferKeepsNewestAndCountsDropped) {
  Tracer t(0, 4);
  for (int i = 0; i < 10; ++i) {
    t.counter("tick", i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order, holding the newest four events (values 6..9).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].value, 6 + i);
  }
}

TEST(Tracer, WraparoundPreservesChronologicalOrder) {
  Tracer t(0, 3);
  for (int i = 0; i < 7; ++i) t.instant("e");
  const auto events = t.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[1].start_ns, events[2].start_ns);
}

TEST(Tracer, SampleTickGatesOneInN) {
  Tracer t(0, 8, 3);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (t.sample_tick()) ++fired;
  }
  EXPECT_EQ(fired, 3);  // calls 0, 3, 6

  Tracer always(0, 8, 1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(always.sample_tick());
}

TEST(Tracer, SpanAtRecordsRetroactively) {
  Tracer t(0, 8);
  t.span_at("wait", 1000, 250);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 1000);
  EXPECT_EQ(events[0].dur_ns, 250);
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
}

TEST(Tracer, TimestampsShareTheTimerEpoch) {
  const std::int64_t before = now_ns();
  Tracer t(0, 8);
  t.instant("mark");
  const std::int64_t after = now_ns();
  const auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].start_ns, before);
  EXPECT_LE(events[0].start_ns, after);
}

TEST(ChromeTrace, ExportIsValidJsonWithOneTrackPerRank) {
  Tracer r0(0, 16);
  Tracer r1(1, 16);
  r0.begin("generate");
  r0.end();
  r0.instant("send");
  r1.counter("mailbox_depth", 5);

  std::ostringstream os;
  write_chrome_trace(os, {&r0, &r1});
  const std::string json = os.str();

  EXPECT_EQ(JsonLint::check(json), "");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("\"name\":\"generate\""), std::string::npos);
}

TEST(ChromeTrace, EmptyAndWrappedTracersStillExportValidJson) {
  Tracer empty(0, 4);
  Tracer wrapped(1, 2);
  for (int i = 0; i < 100; ++i) wrapped.instant("hot");

  std::ostringstream os;
  write_chrome_trace(os, {&empty, &wrapped});
  EXPECT_EQ(JsonLint::check(os.str()), "");
}

TEST(ObsIntegration, GeneratorEmitsPhaseSpansOnEveryRankTrack) {
  constexpr int kRanks = 4;
  obs::Config cfg;
  cfg.enabled = true;
  Session session(kRanks, cfg);

  PaConfig pa;
  pa.n = 20000;
  pa.x = 2;
  pa.seed = 11;
  core::ParallelOptions opt;
  opt.ranks = kRanks;
  opt.gather_edges = false;
  opt.obs = &session;
  (void)core::generate(pa, opt);

  for (int r = 0; r < kRanks; ++r) {
    bool saw_generate = false, saw_drain = false, saw_termination = false,
         saw_rank = false;
    for (const TraceEvent& e : session.rank(r).trace().events()) {
      const std::string name = e.name;
      saw_generate |= name == "generate";
      saw_drain |= name == "drain";
      saw_termination |= name == "termination";
      saw_rank |= name == "rank";
    }
    EXPECT_TRUE(saw_generate) << "rank " << r;
    EXPECT_TRUE(saw_drain) << "rank " << r;
    EXPECT_TRUE(saw_termination) << "rank " << r;
    EXPECT_TRUE(saw_rank) << "rank " << r;
  }

  // Driver track carries partition construction and the world span.
  bool saw_partition = false, saw_world = false;
  for (const TraceEvent& e : session.driver().trace().events()) {
    const std::string name = e.name;
    saw_partition |= name == "partition_build";
    saw_world |= name == "run_ranks";
  }
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_world);

  std::ostringstream os;
  session.write_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(JsonLint::check(json), "");
  EXPECT_NE(json.find("\"name\":\"driver\""), std::string::npos);
}

TEST(ObsIntegration, DisabledOptionsLeaveGeneratorUnobserved) {
  PaConfig pa;
  pa.n = 5000;
  pa.x = 1;
  pa.seed = 3;
  core::ParallelOptions opt;
  opt.ranks = 3;
  opt.gather_edges = true;
  // opt.obs left null: must run exactly as before (smoke for the fast path).
  const auto result = core::generate(pa, opt);
  EXPECT_EQ(result.total_edges, pa.n - 1);
}

}  // namespace
}  // namespace pagen::obs
