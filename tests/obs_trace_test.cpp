#include "obs/trace.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "json_lint.h"
#include "obs/session.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::obs {
namespace {

using pagen::testing::JsonLint;

TEST(Tracer, SpanNestingRecordsInnerBeforeOuterWithContainment) {
  Tracer t(0, 64);
  t.begin("outer");
  t.begin("inner");
  t.end();
  t.end();

  const auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded when they close, so the inner span lands first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
  EXPECT_EQ(events[1].kind, EventKind::kSpan);
  // Temporal containment: inner ⊆ outer.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(Tracer, RaiiSpanClosesOnScopeExitAndNullTracerIsNoop) {
  Tracer t(0, 64);
  {
    const auto outer = t.span("outer");
    const auto noop = span(static_cast<Tracer*>(nullptr), "ignored");
    EXPECT_EQ(t.events().size(), 0u);  // still open
  }
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_STREQ(t.events()[0].name, "outer");
}

TEST(Tracer, EndWithoutBeginIsChecked) {
  Tracer t(0, 8);
  EXPECT_THROW(t.end(), CheckError);
}

TEST(Tracer, RingBufferKeepsNewestAndCountsDropped) {
  Tracer t(0, 4);
  for (int i = 0; i < 10; ++i) {
    t.counter("tick", i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order, holding the newest four events (values 6..9).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].value, 6 + i);
  }
}

TEST(Tracer, WraparoundPreservesChronologicalOrder) {
  Tracer t(0, 3);
  for (int i = 0; i < 7; ++i) t.instant("e");
  const auto events = t.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[1].start_ns, events[2].start_ns);
}

TEST(Tracer, SampleTickGatesOneInN) {
  Tracer t(0, 8, 3);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (t.sample_tick()) ++fired;
  }
  EXPECT_EQ(fired, 3);  // calls 0, 3, 6

  Tracer always(0, 8, 1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(always.sample_tick());
}

TEST(Tracer, MixedKindWraparoundKeepsDroppedAccountingExact) {
  // Fill a small ring with every event kind several times over; the
  // retained + dropped split must stay exact across the wrap, and the
  // retained window must be the newest `capacity` events in order.
  Tracer t(0, 8);
  Count recorded = 0;
  for (int round = 0; round < 5; ++round) {
    t.instant("i");
    t.counter("c", round);
    t.flow_start("chain", static_cast<std::uint64_t>(round));
    t.flow_end("chain", static_cast<std::uint64_t>(round));
    t.chain("chain_len", static_cast<std::uint64_t>(round), round + 1);
    recorded += 5;
  }
  EXPECT_EQ(t.total_recorded(), recorded);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), recorded - 8);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
  // The newest event of each round-trip pattern survives: the last chain
  // event carries round 4.
  EXPECT_EQ(events.back().kind, EventKind::kChain);
  EXPECT_EQ(events.back().id, 4u);
  EXPECT_EQ(events.back().value, 5);
}

TEST(Tracer, FlowAndChainEventsBypassSampling) {
  // sample = 64 gates per-message instants hard, but flows and chains are
  // causal record, not telemetry: a sampled-out request must never orphan
  // its flow arrow, so they always record.
  Tracer t(0, 256, 64);
  int instants = 0;
  for (int i = 0; i < 32; ++i) {
    if (t.sample_tick()) {
      t.instant("send");
      ++instants;
    }
    t.flow_start("chain", static_cast<std::uint64_t>(i));
    t.flow_end("chain", static_cast<std::uint64_t>(i));
    t.chain("chain_len", static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_EQ(instants, 1);  // only tick 0 passed the 1-in-64 gate
  int starts = 0, ends = 0, chains = 0;
  for (const TraceEvent& e : t.events()) {
    starts += e.kind == EventKind::kFlowStart ? 1 : 0;
    ends += e.kind == EventKind::kFlowEnd ? 1 : 0;
    chains += e.kind == EventKind::kChain ? 1 : 0;
  }
  EXPECT_EQ(starts, 32);
  EXPECT_EQ(ends, 32);
  EXPECT_EQ(chains, 32);
}

TEST(Tracer, SpanAtRecordsRetroactively) {
  Tracer t(0, 8);
  t.span_at("wait", 1000, 250);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 1000);
  EXPECT_EQ(events[0].dur_ns, 250);
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
}

TEST(Tracer, TimestampsShareTheTimerEpoch) {
  const std::int64_t before = now_ns();
  Tracer t(0, 8);
  t.instant("mark");
  const std::int64_t after = now_ns();
  const auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].start_ns, before);
  EXPECT_LE(events[0].start_ns, after);
}

TEST(ChromeTrace, ExportIsValidJsonWithOneTrackPerRank) {
  Tracer r0(0, 16);
  Tracer r1(1, 16);
  r0.begin("generate");
  r0.end();
  r0.instant("send");
  r1.counter("mailbox_depth", 5);

  std::ostringstream os;
  write_chrome_trace(os, {&r0, &r1});
  const std::string json = os.str();

  EXPECT_EQ(JsonLint::check(json), "");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("\"name\":\"generate\""), std::string::npos);
}

/// Count occurrences of `needle` in `hay`.
int occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ChromeTrace, FlowEventsExportPairedIdAndBindId) {
  Tracer requester(0, 32);
  Tracer owner(1, 32);
  requester.flow_start("chain", 42);
  owner.flow_step("chain", 42);
  requester.flow_end("chain", 42);
  requester.chain("chain_len", 42, 3);

  std::ostringstream os;
  write_chrome_trace(os, {&requester, &owner});
  const std::string json = os.str();
  EXPECT_EQ(JsonLint::check(json), "");
  // Perfetto binds arrows through matching id/bind_id; every flow phase
  // must carry both, and starts must pair with ends.
  EXPECT_EQ(occurrences(json, "\"ph\":\"s\""), 1);
  EXPECT_EQ(occurrences(json, "\"ph\":\"t\""), 1);
  EXPECT_EQ(occurrences(json, "\"ph\":\"f\""), 1);
  EXPECT_EQ(occurrences(json, "\"id\":42"), 3);
  EXPECT_EQ(occurrences(json, "\"bind_id\":42"), 3);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);  // f binds enclosing
  // The chain record exports as an instant with slot + length args.
  EXPECT_NE(json.find("\"slot\":42"), std::string::npos);
  EXPECT_NE(json.find("\"len\":3"), std::string::npos);
}

TEST(ChromeTrace, PerTrackTimestampsAreMonotonicDespiteSpanReordering) {
  // Spans land in the ring when they *close*, so raw ring order is not
  // time order: an outer span surrounding instants is recorded after them
  // but starts before. The export must still emit non-decreasing ts per
  // track (the CI schema validator asserts exactly this).
  Tracer t(0, 32);
  t.begin("outer");
  t.instant("inside1");
  t.instant("inside2");
  t.end();
  t.instant("after");

  std::ostringstream os;
  write_chrome_trace(os, {&t});
  const std::string json = os.str();
  EXPECT_EQ(JsonLint::check(json), "");
  std::int64_t prev = -1;
  for (std::size_t at = json.find("\"ts\":"); at != std::string::npos;
       at = json.find("\"ts\":", at + 5)) {
    const std::int64_t ts = std::stoll(json.substr(at + 5));
    EXPECT_GE(ts, prev) << "export must be time-ordered per track";
    prev = ts;
  }
}

TEST(ChromeTrace, EmptyAndWrappedTracersStillExportValidJson) {
  Tracer empty(0, 4);
  Tracer wrapped(1, 2);
  for (int i = 0; i < 100; ++i) wrapped.instant("hot");

  std::ostringstream os;
  write_chrome_trace(os, {&empty, &wrapped});
  EXPECT_EQ(JsonLint::check(os.str()), "");
}

TEST(ObsIntegration, GeneratorEmitsPhaseSpansOnEveryRankTrack) {
  constexpr int kRanks = 4;
  obs::Config cfg;
  cfg.enabled = true;
  Session session(kRanks, cfg);

  PaConfig pa;
  pa.n = 20000;
  pa.x = 2;
  pa.seed = 11;
  core::ParallelOptions opt;
  opt.ranks = kRanks;
  opt.gather_edges = false;
  opt.obs = &session;
  (void)core::generate(pa, opt);

  for (int r = 0; r < kRanks; ++r) {
    bool saw_generate = false, saw_drain = false, saw_termination = false,
         saw_rank = false;
    for (const TraceEvent& e : session.rank(r).trace().events()) {
      const std::string name = e.name;
      saw_generate |= name == "generate";
      saw_drain |= name == "drain";
      saw_termination |= name == "termination";
      saw_rank |= name == "rank";
    }
    EXPECT_TRUE(saw_generate) << "rank " << r;
    EXPECT_TRUE(saw_drain) << "rank " << r;
    EXPECT_TRUE(saw_termination) << "rank " << r;
    EXPECT_TRUE(saw_rank) << "rank " << r;
  }

  // Driver track carries partition construction and the world span.
  bool saw_partition = false, saw_world = false;
  for (const TraceEvent& e : session.driver().trace().events()) {
    const std::string name = e.name;
    saw_partition |= name == "partition_build";
    saw_world |= name == "run_ranks";
  }
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_world);

  std::ostringstream os;
  session.write_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(JsonLint::check(json), "");
  EXPECT_NE(json.find("\"name\":\"driver\""), std::string::npos);
}

TEST(ObsIntegration, DisabledOptionsLeaveGeneratorUnobserved) {
  PaConfig pa;
  pa.n = 5000;
  pa.x = 1;
  pa.seed = 3;
  core::ParallelOptions opt;
  opt.ranks = 3;
  opt.gather_edges = true;
  // opt.obs left null: must run exactly as before (smoke for the fast path).
  const auto result = core::generate(pa, opt);
  EXPECT_EQ(result.total_edges, pa.n - 1);
}

}  // namespace
}  // namespace pagen::obs
