#include "partition/block_cyclic.h"

#include <memory>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "util/error.h"

namespace pagen::partition {
namespace {

using Param = std::tuple<NodeId, int, NodeId>;  // n, parts, block

std::string param_name(const ::testing::TestParamInfo<Param>& param_info) {
  return "n" + std::to_string(std::get<0>(param_info.param)) + "_p" +
         std::to_string(std::get<1>(param_info.param)) + "_b" +
         std::to_string(std::get<2>(param_info.param));
}

class BlockCyclicProperties : public ::testing::TestWithParam<Param> {};

TEST_P(BlockCyclicProperties, IsATruePartition) {
  const auto [n, parts, block] = GetParam();
  const auto part = make_block_cyclic(n, parts, block);
  Count total = 0;
  std::set<NodeId> seen;
  for (Rank i = 0; i < parts; ++i) {
    total += part->part_size(i);
    NodeId prev = 0;
    for (Count idx = 0; idx < part->part_size(i); ++idx) {
      const NodeId u = part->node_at(i, idx);
      ASSERT_LT(u, n);
      EXPECT_EQ(part->owner(u), i);
      EXPECT_EQ(part->local_index(u), idx);
      if (idx > 0) {
        EXPECT_GT(u, prev);
      }
      prev = u;
      EXPECT_TRUE(seen.insert(u).second);
    }
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(seen.size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockCyclicProperties,
    ::testing::Combine(::testing::Values<NodeId>(16, 100, 1000, 4097),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values<NodeId>(1, 7, 64, 5000)),
    param_name);

TEST(BlockCyclic, BlockOneIsRrp) {
  const auto bcp = make_block_cyclic(1000, 7, 1);
  const auto rrp = make_partition(Scheme::kRrp, 1000, 7);
  for (NodeId u = 0; u < 1000; ++u) {
    EXPECT_EQ(bcp->owner(u), rrp->owner(u));
    EXPECT_EQ(bcp->local_index(u), rrp->local_index(u));
  }
}

TEST(BlockCyclic, HugeBlockIsUcp) {
  // block >= ceil(n/P) with n a multiple: each rank gets one block.
  const auto bcp = make_block_cyclic(1000, 4, 250);
  const auto ucp = make_partition(Scheme::kUcp, 1000, 4);
  for (NodeId u = 0; u < 1000; ++u) {
    EXPECT_EQ(bcp->owner(u), ucp->owner(u));
  }
}

TEST(BlockCyclic, NameCarriesBlockSize) {
  EXPECT_EQ(make_block_cyclic(100, 4, 16)->name(), "BCP(16)");
}

TEST(BlockCyclic, GeneratorAcceptsCustomPartition) {
  // The x = 1 exactness guarantee extends to any partition: same seed,
  // same tree, regardless of block size.
  const PaConfig cfg{.n = 20000, .x = 1, .p = 0.5, .seed = 42};
  const auto reference = baseline::copy_model_targets(cfg);
  for (NodeId block : {NodeId{1}, NodeId{32}, NodeId{1000}}) {
    core::ParallelOptions opt;
    opt.ranks = 6;
    opt.custom_partition = make_block_cyclic(cfg.n, opt.ranks, block);
    const auto result = core::generate(cfg, opt);
    EXPECT_EQ(result.targets, reference) << "block=" << block;
  }
}

TEST(BlockCyclic, GeneratorRejectsMismatchedPartition) {
  const PaConfig cfg{.n = 1000, .x = 1, .p = 0.5, .seed = 1};
  core::ParallelOptions opt;
  opt.ranks = 4;
  opt.custom_partition = make_block_cyclic(999, 4, 16);  // wrong n
  EXPECT_THROW(core::generate(cfg, opt), CheckError);
}

}  // namespace
}  // namespace pagen::partition
