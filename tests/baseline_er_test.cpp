#include "baseline/er_gen.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "graph/edge_list.h"

namespace pagen::baseline {
namespace {

TEST(ErdosRenyi, ZeroProbabilityIsEmpty) {
  EXPECT_TRUE(erdos_renyi({.n = 100, .p = 0.0, .seed = 1}).empty());
}

TEST(ErdosRenyi, FullProbabilityIsCompleteGraph) {
  const auto edges = erdos_renyi({.n = 20, .p = 1.0, .seed = 1});
  EXPECT_EQ(edges.size(), 20u * 19 / 2);
  EXPECT_EQ(graph::count_duplicates(edges), 0u);
  EXPECT_EQ(graph::count_self_loops(edges), 0u);
}

TEST(ErdosRenyi, EdgesAreValidPairs) {
  const auto edges = erdos_renyi({.n = 500, .p = 0.02, .seed = 3});
  for (const auto& e : edges) {
    EXPECT_LT(e.v, e.u) << "skip enumeration yields w < v";
    EXPECT_LT(e.u, 500u);
  }
  EXPECT_EQ(graph::count_duplicates(edges), 0u);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const NodeId n = 2000;
  const double p = 0.01;
  const auto edges = erdos_renyi({.n = n, .p = p, .seed = 5});
  const double expected = p * n * (n - 1) / 2.0;
  const double sigma = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(edges.size()), expected, 5 * sigma);
}

TEST(ErdosRenyi, DeterministicInSeed) {
  const ErConfig cfg{.n = 300, .p = 0.05, .seed = 9};
  EXPECT_EQ(erdos_renyi(cfg), erdos_renyi(cfg));
  ErConfig other = cfg;
  other.seed = 10;
  EXPECT_NE(erdos_renyi(cfg), erdos_renyi(other));
}

TEST(ErdosRenyi, DegreesConcentrateAroundNp) {
  const NodeId n = 3000;
  const double p = 0.01;
  const auto deg =
      graph::degree_sequence(erdos_renyi({.n = n, .p = p, .seed = 2}), n);
  double mean = 0;
  for (auto d : deg) mean += static_cast<double>(d);
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, p * (n - 1), 1.0);
  // ER has no heavy tail: the hub is only a few sigma above the mean.
  const auto hub = *std::max_element(deg.begin(), deg.end());
  EXPECT_LT(static_cast<double>(hub), mean + 8 * std::sqrt(mean));
}

TEST(ErdosRenyi, TinyGraphs) {
  EXPECT_TRUE(erdos_renyi({.n = 1, .p = 0.5, .seed = 1}).empty());
  const auto two = erdos_renyi({.n = 2, .p = 1.0, .seed = 1});
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(two[0], (graph::Edge{1, 0}));
}

}  // namespace
}  // namespace pagen::baseline
