#include "analysis/powerlaw_fit.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "graph/edge_list.h"
#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::analysis {
namespace {

// Sample from a discrete power law Pr{d} ∝ d^-gamma, d >= d_min, with the
// half-integer shift of Clauset–Shalizi–Newman (App. D): rounding the
// shifted continuous variate removes most of the discretization bias.
std::vector<Count> synthetic_power_law(double gamma, Count d_min,
                                       std::size_t samples,
                                       std::uint64_t seed) {
  rng::Xoshiro256pp rng(seed);
  std::vector<Count> out;
  out.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double u = rng.unit();
    const double v = (static_cast<double>(d_min) - 0.5) *
                         std::pow(1.0 - u, -1.0 / (gamma - 1.0)) +
                     0.5;
    out.push_back(static_cast<Count>(v));
  }
  return out;
}

TEST(HurwitzZeta, MatchesRiemannZetaAtAOne) {
  EXPECT_NEAR(hurwitz_zeta(2.0, 1), 1.6449340668482264, 1e-9);  // pi^2/6
  EXPECT_NEAR(hurwitz_zeta(3.0, 1), 1.2020569031595943, 1e-9);  // Apery
}

TEST(HurwitzZeta, TailDropsHeadTerms) {
  // zeta(s, a+1) = zeta(s, a) - a^-s.
  const double s = 2.5;
  EXPECT_NEAR(hurwitz_zeta(s, 4), hurwitz_zeta(s, 3) - std::pow(3.0, -s),
              1e-10);
}

TEST(HurwitzZeta, RejectsSBelowOne) {
  EXPECT_THROW((void)hurwitz_zeta(0.9, 1), CheckError);
}

TEST(MleFit, RecoversSyntheticExponent) {
  for (double gamma : {2.0, 2.5, 3.0}) {
    const auto degrees = synthetic_power_law(gamma, 4, 200000, 11);
    const auto fit = fit_gamma_mle(degrees, 4);
    EXPECT_NEAR(fit.gamma, gamma, 0.1) << "gamma=" << gamma;
    EXPECT_EQ(fit.d_min, 4u);
    EXPECT_EQ(fit.samples, 200000u);
  }
}

TEST(MleFit, IgnoresBelowDmin) {
  auto degrees = synthetic_power_law(2.5, 8, 100000, 3);
  // Contaminate with sub-d_min mass that must not move the estimate.
  degrees.insert(degrees.end(), 50000, Count{1});
  const auto fit = fit_gamma_mle(degrees, 8);
  EXPECT_NEAR(fit.gamma, 2.5, 0.12);
  EXPECT_EQ(fit.samples, 100000u);
}

TEST(MleFit, TooFewSamplesRejected) {
  const std::vector<Count> degrees{5, 6, 7};
  EXPECT_THROW((void)fit_gamma_mle(degrees, 5), CheckError);
}

TEST(RegressionFit, RecoversSyntheticExponent) {
  const auto degrees = synthetic_power_law(2.5, 4, 300000, 7);
  const auto fit = fit_gamma_regression(degrees, 4);
  EXPECT_NEAR(fit.gamma, 2.5, 0.3);
  EXPECT_GT(fit.r_squared, 0.95) << "synthetic data must fit a line well";
}

TEST(PaperClaim, CopyModelX1GammaNearThree) {
  // The x = 1 BA tree has gamma = 3 asymptotically; at n = 2e5 the MLE sits
  // in the high-2s.
  const PaConfig cfg{.n = 200000, .x = 1, .p = 0.5, .seed = 4};
  const auto edges = baseline::copy_model_x1(cfg);
  const auto deg = graph::degree_sequence(edges, cfg.n);
  const auto fit = fit_gamma_mle(deg, 2);
  EXPECT_GT(fit.gamma, 2.4);
  EXPECT_LT(fit.gamma, 3.6);
}

TEST(PaperClaim, SmallPHasHeavierTail) {
  // Kumar et al.: the copy-model exponent depends on p; smaller p (more
  // copying) yields a heavier tail (smaller gamma).
  auto gamma_at = [](double p) {
    const PaConfig cfg{.n = 100000, .x = 1, .p = p, .seed = 9};
    const auto deg =
        graph::degree_sequence(baseline::copy_model_x1(cfg), cfg.n);
    return fit_gamma_mle(deg, 2).gamma;
  };
  EXPECT_LT(gamma_at(0.3), gamma_at(0.7));
}


TEST(AutoFit, RecoversDminAndGamma) {
  // Pure tail from d_min = 8 plus heavy sub-power-law contamination below:
  // the automatic selector must land at (or just above) the true cutoff.
  auto degrees = synthetic_power_law(2.5, 8, 150000, 21);
  for (Count d = 1; d <= 7; ++d) {
    degrees.insert(degrees.end(), 30000, d);
  }
  const auto result = fit_gamma_auto(degrees);
  EXPECT_GE(result.fit.d_min, 6u);
  EXPECT_LE(result.fit.d_min, 12u);
  EXPECT_NEAR(result.fit.gamma, 2.5, 0.15);
  EXPECT_LT(result.ks, 0.02);
}

TEST(AutoFit, CleanTailKeepsLowDminAndGamma) {
  // The half-shift sampler is only approximately the discrete model at the
  // lowest degrees, so the KS-optimal cutoff can drift a few values up —
  // but the exponent estimate must stay on target.
  const auto degrees = synthetic_power_law(2.2, 3, 100000, 9);
  const auto result = fit_gamma_auto(degrees);
  EXPECT_LE(result.fit.d_min, 12u);
  EXPECT_NEAR(result.fit.gamma, 2.2, 0.15);
  EXPECT_LT(result.ks, 0.02);
}

TEST(AutoFit, BeatsFixedLowDminOnCopyModelTree) {
  // The x = 1 copy-model head is not a pure power law; the auto fit should
  // choose a higher cutoff and land nearer the theory value gamma = 3 than
  // a naive d_min = 2 fit does.
  const PaConfig cfg{.n = 300000, .x = 1, .p = 0.5, .seed = 14};
  const auto deg =
      graph::degree_sequence(baseline::copy_model_x1(cfg), cfg.n);
  const auto naive = fit_gamma_mle(deg, 2);
  const auto full = fit_gamma_auto(deg);
  EXPECT_GT(full.fit.d_min, 2u);
  EXPECT_LT(std::abs(full.fit.gamma - 3.0), std::abs(naive.gamma - 3.0));
}

TEST(AutoFit, RejectsDegenerateInput) {
  const std::vector<Count> constant(200, Count{5});
  EXPECT_THROW((void)fit_gamma_auto(constant), CheckError);
}

}  // namespace
}  // namespace pagen::analysis
