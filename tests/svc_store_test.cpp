// Service-level compressed-store tests (docs/serving.md §3, storage.md §3):
// a Sink::kCompressedStore job streams its edges into the block store and
// seals it with a v3 marker; a fresh server serves repeats straight from
// the store; a corrupted store is quarantined and regenerated, never
// served; and crash-injection plans are rejected at submit because
// re-emission would duplicate blocks.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "store/edge_writer.h"
#include "store/graph_view.h"
#include "svc/cache.h"
#include "svc/server.h"

namespace pagen::svc {
namespace {

graph::EdgeList normalized(graph::EdgeList edges) {
  graph::normalize(edges);
  return edges;
}

class SvcStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pagen_svc_store_" + std::to_string(counter_++)))
               .string();
    std::filesystem::remove_all(dir_);

    spec_.config.n = 320;
    spec_.config.x = 1;  // reproducible at any rank count
    spec_.config.seed = 41;
    spec_.ranks = 3;
    spec_.sink = Sink::kCompressedStore;
    spec_.store_dir = dir_;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  JobId must_submit(Server& server, const JobSpec& spec) {
    const Server::Submitted sub = server.submit(spec);
    EXPECT_EQ(sub.reject, Reject::kNone) << to_string(sub.reject);
    return sub.id;
  }

  std::string dir_;
  JobSpec spec_;
  static int counter_;
};
int SvcStoreTest::counter_ = 0;

TEST_F(SvcStoreTest, CompressedStoreJobSealsAReloadableStore) {
  Server server({.workers = 1});
  const JobStatus status = server.wait(must_submit(server, spec_));
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_EQ(status.output->store_dir, dir_);
  EXPECT_TRUE(status.output->edges.empty())
      << "a store job never materializes its edges in the output";

  // The directory is a valid compressed store with a v3 marker, and the
  // reloaded edges match a direct generation of the same spec.
  ASSERT_TRUE(store::is_compressed_store(dir_));
  EXPECT_TRUE(std::filesystem::exists(store_marker_path(dir_)));
  const store::ShardedGraphView view(dir_, std::uint64_t{32} << 20);
  EXPECT_EQ(view.manifest().total_edges(), status.output->total_edges);

  core::ParallelOptions direct_opt;
  direct_opt.ranks = spec_.ranks;
  const auto direct = core::generate(spec_.config, direct_opt);
  graph::EdgeList reloaded;
  for (int r = 0; r < spec_.ranks; ++r) {
    const graph::EdgeList shard = view.load_shard(r);
    reloaded.insert(reloaded.end(), shard.begin(), shard.end());
  }
  EXPECT_EQ(normalized(reloaded), normalized(direct.edges));
}

TEST_F(SvcStoreTest, FreshServerServesGatherFromCompressedStore) {
  {
    Server server({.workers = 1});
    ASSERT_EQ(server.wait(must_submit(server, spec_)).state,
              JobState::kCompleted);
  }
  // "Restarted process": a fresh server with an empty cache must probe the
  // on-disk store and serve the repeat without running the generators.
  JobSpec consume = spec_;
  consume.sink = Sink::kGather;
  Server server({.workers = 1});
  const Server::Submitted sub = server.submit(consume);
  ASSERT_EQ(sub.reject, Reject::kNone);
  EXPECT_TRUE(sub.from_cache) << "compressed-store probe must serve";
  const JobStatus status = server.poll(sub.id);
  ASSERT_EQ(status.state, JobState::kCompleted);
  ASSERT_NE(status.output, nullptr);

  core::ParallelOptions direct_opt;
  direct_opt.ranks = consume.ranks;
  const auto direct = core::generate(consume.config, direct_opt);
  EXPECT_EQ(normalized(status.output->edges), normalized(direct.edges))
      << "store-served edges must match a direct run bit for bit";
  EXPECT_EQ(server.stats().cache_store_hits, 1u);
}

TEST_F(SvcStoreTest, CorruptStoreQuarantinedAndRegenerated) {
  {
    Server server({.workers = 1});
    ASSERT_EQ(server.wait(must_submit(server, spec_)).state,
              JobState::kCompleted);
  }
  // Flip one payload byte in shard 1 behind the marker's back.
  {
    const std::string path = store::shard_path(dir_, 1);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(60);
    char c = 0;
    f.get(c);
    f.seekp(60);
    f.put(static_cast<char>(c ^ 1));
  }

  Server server({.workers = 1});
  const Server::Submitted sub = server.submit(spec_);
  ASSERT_EQ(sub.reject, Reject::kNone);
  EXPECT_FALSE(sub.from_cache) << "a corrupt store must never be served";
  const JobStatus status = server.wait(sub.id);
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;

  // PR 8 quarantine contract: the poisoned marker moved to *.quarantined,
  // the job regenerated, and the resealed store is valid again.
  EXPECT_TRUE(
      std::filesystem::exists(store_marker_path(dir_) + ".quarantined"));
  EXPECT_GE(server.stats().quarantined_stores, 1u);
  const store::ShardedGraphView view(dir_);
  EXPECT_EQ(view.manifest().total_edges(), status.output->total_edges);
}

TEST_F(SvcStoreTest, CompressedStoreRequiresStoreDir) {
  JobSpec bad = spec_;
  bad.store_dir.clear();
  EXPECT_FALSE(validate(bad).empty());
  Server server({.workers = 1});
  EXPECT_EQ(server.submit(bad).reject, Reject::kInvalidSpec);
}

TEST_F(SvcStoreTest, CrashPlansRejectedForCompressedStore) {
  // A respawned rank re-emits its restored edges; for an append-only block
  // store that means duplicated blocks, so the combination is inadmissible.
  JobSpec bad = spec_;
  bad.fault_plan = mps::FaultPlan::parse("seed=7,crash=1@50");
  EXPECT_FALSE(validate(bad).empty());
  Server server({.workers = 1});
  EXPECT_EQ(server.submit(bad).reject, Reject::kInvalidSpec);
}

TEST_F(SvcStoreTest, RetryRegeneratesFromScratch) {
  // max_attempts > 1 must be admissible — retries for a compressed-store
  // job cold-start instead of resuming from a checkpoint.
  spec_.max_attempts = 2;
  Server server({.workers = 1});
  const JobStatus status = server.wait(must_submit(server, spec_));
  ASSERT_EQ(status.state, JobState::kCompleted) << status.error;
  EXPECT_TRUE(store::is_compressed_store(dir_));
}

}  // namespace
}  // namespace pagen::svc
