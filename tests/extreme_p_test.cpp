// Boundary values of the copy probability, sequential and distributed.
//
// p = 1: never copy — a uniform random recursive tree, zero request
//        messages (every F_t resolves immediately).
// p = 0: always copy — every F collapses through the chain to node 1's
//        bootstrap value 0, so the network is a star at node 0, and every
//        non-root node forms a dependency chain: the hardest workload for
//        the waiting machinery (longest chains, deepest queues).
#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/chain_tracer.h"
#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::core {
namespace {

TEST(ExtremeP, PZeroIsAStarSequential) {
  const PaConfig cfg{.n = 5000, .x = 1, .p = 0.0, .seed = 3};
  const auto f = baseline::copy_model_targets(cfg);
  for (NodeId t = 1; t < cfg.n; ++t) {
    EXPECT_EQ(f[t], 0u) << "all copies must collapse to the bootstrap";
  }
}

TEST(ExtremeP, PZeroParallelSurvivesMaximalDependencyPressure) {
  // Every non-direct node waits; chains stretch across ranks. The protocol
  // must still terminate and reproduce the star bitwise.
  const PaConfig cfg{.n = 30000, .x = 1, .p = 0.0, .seed = 7};
  for (int ranks : {4, 32}) {
    ParallelOptions opt;
    opt.ranks = ranks;
    opt.scheme = partition::Scheme::kRrp;
    const auto result = generate(cfg, opt);
    EXPECT_EQ(result.targets, baseline::copy_model_targets(cfg))
        << "ranks=" << ranks;
    Count max_queue = 0;
    for (const auto& l : result.loads) {
      max_queue = std::max(max_queue, l.max_queue_depth);
    }
    EXPECT_GT(max_queue, 1u) << "p=0 must exercise deep wait queues";
  }
}

TEST(ExtremeP, PZeroChainsAreSelectionChains) {
  // With p = 0 no node is independent, so D_t = S_t exactly.
  const PaConfig cfg{.n = 20000, .x = 1, .p = 0.0, .seed = 5};
  const baseline::ChainTrace trace(cfg);
  EXPECT_EQ(trace.dependency_lengths(), trace.selection_lengths());
}

TEST(ExtremeP, POneSendsNoRequests) {
  const PaConfig cfg{.n = 20000, .x = 1, .p = 1.0, .seed = 9};
  ParallelOptions opt;
  opt.ranks = 8;
  opt.gather_edges = false;
  const auto result = generate(cfg, opt);
  Count requests = 0;
  for (const auto& l : result.loads) requests += l.requests_sent;
  EXPECT_EQ(requests, 0u) << "p=1 resolves every node directly";
  EXPECT_EQ(result.total_edges, cfg.n - 1);
}

TEST(ExtremeP, POneIsUniformAttachment) {
  // Uniform random recursive trees have hub degree Θ(log n) — far below
  // the Θ(sqrt n) of PA at the same size.
  const PaConfig pa{.n = 50000, .x = 1, .p = 0.5, .seed = 11};
  PaConfig urt = pa;
  urt.p = 1.0;
  auto hub = [](const PaConfig& c) {
    const auto deg =
        graph::degree_sequence(baseline::copy_model_x1(c), c.n);
    return *std::max_element(deg.begin(), deg.end());
  };
  EXPECT_GT(hub(pa), 4 * hub(urt));
}

TEST(ExtremeP, GeneralAlgorithmAtPZero) {
  // p = 0 with x > 1: every value copy-collapses into the clique, so each
  // node connects to all x clique nodes — maximal duplicate-retry pressure.
  const PaConfig cfg{.n = 3000, .x = 4, .p = 0.0, .seed = 13};
  ParallelOptions opt;
  opt.ranks = 6;
  const auto result = generate(cfg, opt);
  EXPECT_EQ(result.edges.size(), expected_edge_count(cfg));
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
  for (const auto& e : result.edges) {
    if (e.u > cfg.x) {
      EXPECT_LT(e.v, cfg.x) << "all endpoints collapse to the clique";
    }
  }
}

TEST(ExtremeP, POneWithGeneralXIsRejected) {
  // p = 1 never copies, so node x+1 cannot find x distinct endpoints: the
  // generators refuse rather than retry forever (found by this very test
  // hanging a 6-rank world before the abort machinery existed).
  ParallelOptions opt;
  opt.ranks = 2;
  EXPECT_THROW(generate({.n = 100, .x = 4, .p = 1.0, .seed = 1}, opt),
               CheckError);
  EXPECT_THROW(baseline::copy_model_general({.n = 100, .x = 4, .p = 1.0,
                                             .seed = 1}),
               CheckError);
}

TEST(ExtremeP, OutOfRangePRejected) {
  ParallelOptions opt;
  opt.ranks = 2;
  EXPECT_THROW(generate({.n = 100, .x = 1, .p = -0.1, .seed = 1}, opt),
               CheckError);
  EXPECT_THROW(generate({.n = 100, .x = 2, .p = 1.5, .seed = 1}, opt),
               CheckError);
}

}  // namespace
}  // namespace pagen::core
