#include "baseline/rmat.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::baseline {
namespace {

TEST(Rmat, EdgeCountAndRange) {
  const auto edges = rmat({.scale = 10, .edges = 5000, .seed = 1});
  EXPECT_EQ(edges.size(), 5000u);
  for (const auto& e : edges) {
    EXPECT_LT(e.u, 1024u);
    EXPECT_LT(e.v, 1024u);
  }
}

TEST(Rmat, DeterministicInSeed) {
  const RmatConfig cfg{.scale = 8, .edges = 1000, .seed = 5};
  EXPECT_EQ(rmat(cfg), rmat(cfg));
  RmatConfig other = cfg;
  other.seed = 6;
  EXPECT_NE(rmat(cfg), rmat(other));
}

TEST(Rmat, SimpleModeFilters) {
  RmatConfig cfg{.scale = 6, .edges = 4000, .seed = 2};
  cfg.simple = true;
  const auto edges = rmat(cfg);
  EXPECT_LT(edges.size(), 4000u) << "64-node graph at 4000 raw edges must "
                                    "collapse under dedup";
  EXPECT_EQ(graph::count_duplicates(edges), 0u);
  EXPECT_EQ(graph::count_self_loops(edges), 0u);
}

TEST(Rmat, SkewedParametersConcentrateOnLowIds) {
  // With a = 0.57 the mass concentrates in the top-left quadrant, i.e.
  // low-id nodes accumulate degree (the Graph500 skew).
  const auto edges = rmat({.scale = 12, .edges = 100000, .seed = 3});
  const auto deg = graph::degree_sequence(edges, 4096);
  Count low = 0, high = 0;
  for (NodeId v = 0; v < 2048; ++v) low += deg[v];
  for (NodeId v = 2048; v < 4096; ++v) high += deg[v];
  EXPECT_GT(low, 2 * high);
}

TEST(Rmat, UniformParametersAreUnskewed) {
  const auto edges = rmat({.scale = 12,
                           .edges = 100000,
                           .a = 0.25,
                           .b = 0.25,
                           .c = 0.25,
                           .d = 0.25,
                           .seed = 4});
  const auto deg = graph::degree_sequence(edges, 4096);
  Count low = 0, high = 0;
  for (NodeId v = 0; v < 2048; ++v) low += deg[v];
  for (NodeId v = 2048; v < 4096; ++v) high += deg[v];
  EXPECT_NEAR(static_cast<double>(low) / static_cast<double>(high), 1.0, 0.05);
}

TEST(Rmat, HeavyTailAtGraph500Parameters) {
  const auto edges = rmat({.scale = 14, .edges = 300000, .seed = 7});
  const auto deg = graph::degree_sequence(edges, 1u << 14);
  const Count hub = *std::max_element(deg.begin(), deg.end());
  const double mean = 2.0 * 300000 / static_cast<double>(1u << 14);
  EXPECT_GT(static_cast<double>(hub), 20.0 * mean)
      << "R-MAT hubs dwarf the mean degree";
}

TEST(Rmat, ValidatesParameters) {
  EXPECT_THROW(rmat({.scale = 0, .edges = 10, .seed = 1}), CheckError);
  EXPECT_THROW(
      rmat({.scale = 4, .edges = 10, .a = 0.5, .b = 0.5, .c = 0.5, .d = 0.5,
            .seed = 1}),
      CheckError);
}

}  // namespace
}  // namespace pagen::baseline
