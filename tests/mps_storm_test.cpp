// Runtime fuzz: random message storms across ranks with full accounting.
// Exercises the mailbox/comm layer under irregular traffic patterns —
// random destinations, random batch sizes, interleaved collectives — and
// verifies nothing is lost, duplicated, or corrupted.
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "mps/engine.h"
#include "mps/send_buffer.h"
#include "rng/splitmix.h"
#include "rng/xoshiro.h"

namespace pagen::mps {
namespace {

using namespace std::chrono_literals;

constexpr int kTagData = 1;

struct Item {
  std::uint64_t src;
  std::uint64_t sequence;
  std::uint64_t checksum;  // mix(src, sequence)

  static Item make(Rank src, std::uint64_t seq) {
    const auto s = static_cast<std::uint64_t>(src);
    return {s, seq, rng::splitmix64_mix(s * 1000003 + seq)};
  }

  [[nodiscard]] bool valid() const {
    return checksum == rng::splitmix64_mix(src * 1000003 + sequence);
  }
};

TEST(MessageStorm, RandomTrafficFullyAccounted) {
  constexpr int kRanks = 10;
  constexpr std::uint64_t kItemsPerRank = 5000;

  std::vector<Count> received_valid(kRanks, 0);
  run_ranks(kRanks, [&](Comm& comm) {
    rng::Xoshiro256pp rng(
        rng::splitmix64_mix(99 + static_cast<std::uint64_t>(comm.rank())));
    SendBuffer<Item> buf(comm, kTagData, 1 + rng.below(97));

    std::uint64_t sent = 0;
    std::vector<Envelope> inbox;
    auto drain = [&] {
      inbox.clear();
      comm.poll(inbox);
      for (const Envelope& env : inbox) {
        for_each_packed<Item>(env.payload, [&](const Item& item) {
          ASSERT_TRUE(item.valid()) << "corrupted item in transit";
          ++received_valid[static_cast<std::size_t>(comm.rank())];
        });
      }
    };

    while (sent < kItemsPerRank) {
      // Random burst to a random destination (possibly self).
      const auto burst = 1 + rng.below(50);
      const auto dst = static_cast<Rank>(rng.below(kRanks));
      for (std::uint64_t b = 0; b < burst && sent < kItemsPerRank; ++b) {
        buf.add(dst, Item::make(comm.rank(), sent++));
      }
      if (rng.below(4) == 0) drain();
    }
    buf.flush_all();
    // A barrier here guarantees all data is enqueued everywhere before the
    // final drain (synchronous transport).
    comm.barrier();
    drain();
    const Count total = comm.allreduce_sum(
        received_valid[static_cast<std::size_t>(comm.rank())]);
    EXPECT_EQ(total, kRanks * kItemsPerRank);
  });
}

TEST(MessageStorm, InterleavedCollectivesAndTraffic) {
  constexpr int kRanks = 6;
  run_ranks(kRanks, [&](Comm& comm) {
    rng::Xoshiro256pp rng(
        rng::splitmix64_mix(7 + static_cast<std::uint64_t>(comm.rank())));
    Count my_received = 0;
    std::vector<Envelope> inbox;
    for (int round = 0; round < 30; ++round) {
      // Everyone sends `round` items to a rotating destination...
      const auto dst = static_cast<Rank>((comm.rank() + round) % kRanks);
      for (int i = 0; i < round; ++i) {
        comm.send_item<Item>(dst, kTagData,
                             Item::make(comm.rank(), static_cast<std::uint64_t>(round)));
      }
      // ...then a collective interleaves with in-flight data traffic.
      comm.barrier();
      inbox.clear();
      comm.poll(inbox);
      for (const Envelope& env : inbox) {
        for_each_packed<Item>(env.payload, [&](const Item& item) {
          ASSERT_TRUE(item.valid());
          ++my_received;
        });
      }
      comm.barrier();
    }
    const Count total = comm.allreduce_sum(my_received);
    EXPECT_EQ(total, static_cast<Count>(kRanks) * (29 * 30 / 2));
  });
}

}  // namespace
}  // namespace pagen::mps
