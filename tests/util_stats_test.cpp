#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace pagen {
namespace {

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicMoments) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
}

TEST(Imbalance, PerfectlyBalancedIsOne) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(imbalance(xs), 1.0);
}

TEST(Imbalance, SkewDetected) {
  const std::vector<double> xs{1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(imbalance(xs), 2.0);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 0.5 * i);
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-12);
  EXPECT_NEAR(f.slope, -0.5, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasLowerR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 40; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 5.0 : -5.0));
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 2.0, 0.1);
  EXPECT_LT(f.r_squared, 1.0);
  EXPECT_GT(f.r_squared, 0.9);
}

TEST(ChiSquared, ExactMatchIsZero) {
  const std::vector<double> obs{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(chi_squared(obs, obs), 0.0);
}

TEST(ChiSquared, PoolsSmallExpectedBins) {
  // Two bins of expected 3 pool into one bin of expected 6.
  const std::vector<double> obs{4.0, 4.0};
  const std::vector<double> expd{3.0, 3.0};
  EXPECT_DOUBLE_EQ(chi_squared(obs, expd, 5.0), 4.0 / 6.0);
}

TEST(ChiSquared, DetectsDeviation) {
  const std::vector<double> obs{50.0, 50.0};
  const std::vector<double> expd{90.0, 10.0};
  EXPECT_GT(chi_squared(obs, expd), 100.0);
}

}  // namespace
}  // namespace pagen
