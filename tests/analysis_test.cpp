#include <vector>

#include <gtest/gtest.h>

#include "analysis/degree_dist.h"
#include "analysis/load_balance.h"

namespace pagen::analysis {
namespace {

TEST(DegreeDistribution, CountsEachDegreeOnce) {
  const std::vector<Count> degrees{1, 1, 2, 3, 3, 3};
  const auto dist = degree_distribution(degrees);
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_EQ(dist[0].degree, 1u);
  EXPECT_EQ(dist[0].count, 2u);
  EXPECT_EQ(dist[2].degree, 3u);
  EXPECT_EQ(dist[2].count, 3u);
}

TEST(DegreeDistribution, IncludesZeroDegree) {
  const std::vector<Count> degrees{0, 0, 5};
  const auto dist = degree_distribution(degrees);
  EXPECT_EQ(dist[0].degree, 0u);
  EXPECT_EQ(dist[0].count, 2u);
}

TEST(DegreeCcdf, MonotoneDecreasingFromOne) {
  const std::vector<Count> degrees{1, 2, 2, 4, 8};
  const auto ccdf = degree_ccdf(degrees);
  EXPECT_DOUBLE_EQ(ccdf.front().fraction, 1.0);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LT(ccdf[i].fraction, ccdf[i - 1].fraction);
  }
  // Fraction with degree >= 4 is 2/5.
  EXPECT_DOUBLE_EQ(ccdf[2].fraction, 0.4);
}

TEST(LogBinnedPdf, NormalizedDensity) {
  // Uniform degrees inside one bin: density = 1 / width.
  const std::vector<Count> degrees{10, 10, 10, 10};
  const auto pdf = log_binned_pdf(degrees, 2.0);
  ASSERT_EQ(pdf.size(), 1u);
  // Bin [8,16): width 8, all mass inside.
  EXPECT_NEAR(pdf[0].density, 1.0 / 8.0, 1e-12);
}

TEST(LogBinnedPdf, IgnoresZeroDegrees) {
  const std::vector<Count> degrees{0, 0, 4};
  const auto pdf = log_binned_pdf(degrees, 2.0);
  ASSERT_EQ(pdf.size(), 1u);
}

TEST(LoadBalance, ExtractSelectsMetric) {
  core::RankLoad a;
  a.nodes = 10;
  a.requests_sent = 3;
  a.requests_received = 2;
  a.resolved_sent = 2;
  a.resolved_received = 3;
  core::RankLoad b;
  b.nodes = 20;
  const std::vector<core::RankLoad> loads{a, b};

  EXPECT_EQ(extract(loads, LoadMetric::kNodes),
            (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(extract(loads, LoadMetric::kTotalMessages),
            (std::vector<double>{10.0, 0.0}));
  EXPECT_EQ(extract(loads, LoadMetric::kTotalLoad),
            (std::vector<double>{20.0, 20.0}));
}

TEST(LoadBalance, SummaryAndImbalance) {
  core::RankLoad a, b;
  a.nodes = 10;
  b.nodes = 30;
  const std::vector<core::RankLoad> loads{a, b};
  const LoadSummary s = summarize_metric(loads, LoadMetric::kNodes);
  EXPECT_DOUBLE_EQ(s.summary.mean, 20.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.5);
}

TEST(LoadBalance, MetricNames) {
  EXPECT_EQ(to_string(LoadMetric::kNodes), "nodes");
  EXPECT_EQ(to_string(LoadMetric::kTotalLoad), "total_load");
}

TEST(RankLoad, AccumulationOperator) {
  core::RankLoad a, b;
  a.nodes = 1;
  a.requests_sent = 2;
  b.nodes = 3;
  b.retries = 4;
  a += b;
  EXPECT_EQ(a.nodes, 4u);
  EXPECT_EQ(a.requests_sent, 2u);
  EXPECT_EQ(a.retries, 4u);
}

}  // namespace
}  // namespace pagen::analysis
