// Evolving-network properties: the counter-based draw schema makes network
// growth compositional — extending a generated network is bitwise the same
// as generating the larger network from scratch, sequentially and in
// parallel, which is how "evolving in nature" (Section 3.1) becomes a
// usable feature.
#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "core/generate.h"
#include "graph/csr.h"
#include "graph/metrics.h"
#include "util/error.h"

namespace pagen {
namespace {

TEST(Growth, ExtendEqualsDirectGeneration) {
  PaConfig small{.n = 2000, .x = 1, .p = 0.5, .seed = 31};
  PaConfig large = small;
  large.n = 9000;

  auto grown = baseline::copy_model_targets(small);
  baseline::extend_copy_model(grown, large);
  EXPECT_EQ(grown, baseline::copy_model_targets(large));
}

TEST(Growth, RepeatedExtensionsCompose) {
  PaConfig cfg{.n = 500, .x = 1, .p = 0.5, .seed = 7};
  auto grown = baseline::copy_model_targets(cfg);
  for (NodeId n : {NodeId{1200}, NodeId{1201}, NodeId{4000}}) {
    cfg.n = n;
    baseline::extend_copy_model(grown, cfg);
  }
  EXPECT_EQ(grown, baseline::copy_model_targets(cfg));
}

TEST(Growth, ParallelRunContinuesASequentialPrefix) {
  // Generate 3k nodes sequentially, then run the distributed generator at
  // 12k: the first 3k targets must be the sequential network unchanged —
  // the parallel algorithm "evolves" the same network.
  PaConfig small{.n = 3000, .x = 1, .p = 0.5, .seed = 13};
  PaConfig large = small;
  large.n = 12000;
  const auto prefix = baseline::copy_model_targets(small);

  core::ParallelOptions opt;
  opt.ranks = 8;
  const auto result = core::generate(large, opt);
  for (NodeId t = 0; t < small.n; ++t) {
    ASSERT_EQ(result.targets[t], prefix[t]) << "node " << t;
  }
}

TEST(Growth, OldNodesKeepGainingDegree) {
  // The rich-get-richer dynamic across growth steps: node 0's degree must
  // be non-decreasing and typically growing as the network evolves.
  PaConfig cfg{.n = 1000, .x = 1, .p = 0.5, .seed = 3};
  auto targets = baseline::copy_model_targets(cfg);
  auto degree_of_zero = [&](const std::vector<NodeId>& f) {
    Count d = 0;
    for (NodeId t = 1; t < f.size(); ++t) d += (f[t] == 0);
    return d;
  };
  const Count early = degree_of_zero(targets);
  cfg.n = 64000;
  baseline::extend_copy_model(targets, cfg);
  const Count late = degree_of_zero(targets);
  EXPECT_GT(late, 2 * early);
}

TEST(Growth, ExtendValidatesInput) {
  PaConfig cfg{.n = 100, .x = 1, .p = 0.5, .seed = 1};
  auto targets = baseline::copy_model_targets(cfg);
  cfg.n = 50;  // shrinking is not growth
  EXPECT_THROW(baseline::extend_copy_model(targets, cfg), CheckError);
  cfg.x = 2;
  cfg.n = 200;
  EXPECT_THROW(baseline::extend_copy_model(targets, cfg), CheckError);
}

TEST(Knn, StarGraph) {
  graph::EdgeList star;
  for (NodeId leaf = 1; leaf <= 8; ++leaf) star.push_back({0, leaf});
  const graph::CsrGraph g(star, 9);
  const auto knn = graph::average_neighbor_degree(g);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].degree, 1u);
  EXPECT_DOUBLE_EQ(knn[0].knn, 8.0);  // leaves see the hub
  EXPECT_EQ(knn[1].degree, 8u);
  EXPECT_DOUBLE_EQ(knn[1].knn, 1.0);  // the hub sees leaves
}

TEST(Knn, PaNetworksAreDisassortative) {
  // knn(d) decreases with d for growth PA networks: high-degree classes
  // see lower average neighbor degree than low-degree classes.
  const PaConfig cfg{.n = 30000, .x = 4, .p = 0.5, .seed = 5};
  const auto edges = baseline::copy_model_general(cfg).edges;
  const graph::CsrGraph g(edges, cfg.n);
  const auto knn = graph::average_neighbor_degree(g);
  ASSERT_GE(knn.size(), 10u);
  // Compare the lowest degree class against high-degree classes (mean of
  // the top quartile of classes, weighting ignored).
  double high = 0.0;
  Count high_classes = 0;
  for (std::size_t i = knn.size() * 3 / 4; i < knn.size(); ++i) {
    high += knn[i].knn;
    ++high_classes;
  }
  high /= static_cast<double>(high_classes);
  EXPECT_GT(knn.front().knn, 1.2 * high);
}

}  // namespace
}  // namespace pagen
