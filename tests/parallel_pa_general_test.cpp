// Invariant suite for Algorithm 3.2 (x >= 1): for x > 1 the duplicate-retry
// decisions are resolution-order dependent (as in the paper), so these tests
// assert the structural invariants and distributional properties rather than
// bitwise equality with the sequential run.
#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "core/parallel_pa_general.h"
#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::core {
namespace {

using partition::Scheme;

using Param = std::tuple<Scheme, int, NodeId>;

std::string param_name(const ::testing::TestParamInfo<Param>& param_info) {
  return partition::to_string(std::get<0>(param_info.param)) + "_P" +
         std::to_string(std::get<1>(param_info.param)) + "_x" +
         std::to_string(std::get<2>(param_info.param));
}

class ParallelPaGeneral : public ::testing::TestWithParam<Param> {};

TEST_P(ParallelPaGeneral, SimpleGraphWithExactEdgeCount) {
  const auto [scheme, ranks, x] = GetParam();
  const PaConfig cfg{.n = 6000, .x = x, .p = 0.5, .seed = 29};
  ParallelOptions opt;
  opt.scheme = scheme;
  opt.ranks = ranks;
  const auto result = generate_pa_general(cfg, opt);

  EXPECT_EQ(result.edges.size(), expected_edge_count(cfg));
  EXPECT_EQ(result.total_edges, expected_edge_count(cfg));
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  EXPECT_EQ(graph::connected_components(result.edges, cfg.n), 1u);
}

TEST_P(ParallelPaGeneral, NewEndpointsPrecedeTheirNode) {
  const auto [scheme, ranks, x] = GetParam();
  const PaConfig cfg{.n = 3000, .x = x, .p = 0.5, .seed = 31};
  ParallelOptions opt;
  opt.scheme = scheme;
  opt.ranks = ranks;
  const auto result = generate_pa_general(cfg, opt);
  for (const auto& e : result.edges) {
    EXPECT_LT(e.v, e.u) << "generators emit (new node, older endpoint)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelPaGeneral,
    ::testing::Combine(::testing::Values(Scheme::kUcp, Scheme::kLcp,
                                         Scheme::kRrp),
                       ::testing::Values(1, 4, 13),
                       ::testing::Values<NodeId>(2, 4, 8)),
    param_name);

TEST(ParallelPaGeneralDist, MinimumDegreeIsX) {
  const PaConfig cfg{.n = 5000, .x = 4, .p = 0.5, .seed = 7};
  ParallelOptions opt;
  opt.ranks = 8;
  const auto result = generate_pa_general(cfg, opt);
  const auto deg = graph::degree_sequence(result.edges, cfg.n);
  EXPECT_GE(*std::min_element(deg.begin(), deg.end()), cfg.x);
}

TEST(ParallelPaGeneralDist, SingleRankMatchesSequentialModel) {
  // With one rank every edge resolves in label order — identical semantics
  // to the sequential general model, so the outputs agree bitwise.
  const PaConfig cfg{.n = 4000, .x = 5, .p = 0.5, .seed = 11};
  ParallelOptions opt;
  opt.ranks = 1;
  const auto par = generate_pa_general(cfg, opt);
  const auto seq = baseline::copy_model_general(cfg);
  auto a = par.edges;
  auto b = seq.edges;
  graph::normalize(a);
  graph::normalize(b);
  EXPECT_EQ(a, b);
}

TEST(ParallelPaGeneralDist, HubDegreesTrackSequentialRun) {
  // Parallel and sequential runs sample the same distribution: the max
  // degree (hub) should agree within statistical noise across seeds.
  double hub_par = 0, hub_seq = 0;
  const int runs = 12;
  for (int r = 0; r < runs; ++r) {
    const PaConfig cfg{.n = 4000, .x = 3, .p = 0.5,
                       .seed = static_cast<std::uint64_t>(100 + r)};
    ParallelOptions opt;
    opt.ranks = 6;
    opt.scheme = Scheme::kRrp;
    const auto par = generate_pa_general(cfg, opt);
    const auto seq = baseline::copy_model_general(cfg);
    const auto dp = graph::degree_sequence(par.edges, cfg.n);
    const auto ds = graph::degree_sequence(seq.edges, cfg.n);
    hub_par += static_cast<double>(*std::max_element(dp.begin(), dp.end()));
    hub_seq += static_cast<double>(*std::max_element(ds.begin(), ds.end()));
  }
  EXPECT_NEAR(hub_par / hub_seq, 1.0, 0.2);
}

TEST(ParallelPaGeneralDist, RetriesAreCountedAndBounded) {
  const PaConfig cfg{.n = 20000, .x = 8, .p = 0.5, .seed = 3};
  ParallelOptions opt;
  opt.ranks = 8;
  const auto result = generate_pa_general(cfg, opt);
  Count retries = 0;
  for (const auto& l : result.loads) retries += l.retries;
  EXPECT_GT(retries, 0u) << "x = 8 at n = 20k must hit duplicates";
  EXPECT_LT(retries, result.total_edges / 5);
}

TEST(ParallelPaGeneralDist, DenseSmallNetworkStillSimple) {
  // n close to x forces heavy duplicate pressure near the clique.
  const PaConfig cfg{.n = 40, .x = 16, .p = 0.5, .seed = 5};
  ParallelOptions opt;
  opt.ranks = 5;
  const auto result = generate_pa_general(cfg, opt);
  EXPECT_EQ(result.edges.size(), expected_edge_count(cfg));
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
}

TEST(ParallelPaGeneralDist, DivergenceFromSequentialIsOnlyRetryDeep) {
  // All draws are counter-based, so the parallel run can only differ from
  // the sequential run where a duplicate retry fired in a different order
  // (rare). The symmetric difference of the two edge multisets must stay a
  // small fraction of the graph.
  const PaConfig cfg{.n = 8000, .x = 4, .p = 0.5, .seed = 17};
  ParallelOptions opt;
  opt.ranks = 6;
  opt.scheme = Scheme::kUcp;
  auto par = generate_pa_general(cfg, opt).edges;
  auto seq = baseline::copy_model_general(cfg).edges;
  graph::normalize(par);
  graph::normalize(seq);
  ASSERT_EQ(par.size(), seq.size());
  std::size_t differing = 0;
  std::size_t i = 0, j = 0;
  while (i < par.size() && j < seq.size()) {
    const auto& a = par[i];
    const auto& b = seq[j];
    if (a == b) {
      ++i;
      ++j;
    } else if (std::tie(a.u, a.v) < std::tie(b.u, b.v)) {
      ++differing;
      ++i;
    } else {
      ++differing;
      ++j;
    }
  }
  differing += (par.size() - i) + (seq.size() - j);
  EXPECT_LT(differing, par.size() / 20)
      << "more than 5% divergence cannot be explained by retry reordering";
}

TEST(ParallelPaGeneralDist, X1DelegationMatchesSpecializedPath) {
  const PaConfig cfg{.n = 3000, .x = 1, .p = 0.5, .seed = 23};
  ParallelOptions opt;
  opt.ranks = 6;
  const auto via_general = generate_pa_general(cfg, opt);
  const auto direct = generate_pa_x1(cfg, opt);
  EXPECT_EQ(via_general.targets, direct.targets);
}

TEST(ParallelPaGeneralDist, RejectsBadConfigs) {
  ParallelOptions opt;
  opt.ranks = 2;
  EXPECT_THROW(generate_pa_general({.n = 4, .x = 4, .p = 0.5, .seed = 1}, opt),
               CheckError);
}

}  // namespace
}  // namespace pagen::core
