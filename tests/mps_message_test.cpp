#include "mps/message.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen::mps {
namespace {

struct Pod {
  std::uint64_t a;
  std::uint32_t b;
  std::uint32_t c;

  friend bool operator==(const Pod&, const Pod&) = default;
};

TEST(Message, PackUnpackRoundTrip) {
  const std::vector<Pod> in{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  std::vector<std::byte> payload;
  pack(payload, std::span<const Pod>(in));
  EXPECT_EQ(payload.size(), in.size() * sizeof(Pod));
  const auto out = unpack<Pod>(payload);
  EXPECT_EQ(out, in);
}

TEST(Message, PackAppends) {
  std::vector<std::byte> payload;
  pack_one<std::uint64_t>(payload, 11);
  pack_one<std::uint64_t>(payload, 22);
  const auto out = unpack<std::uint64_t>(payload);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 11u);
  EXPECT_EQ(out[1], 22u);
}

TEST(Message, UnpackEmptyPayload) {
  EXPECT_TRUE(unpack<Pod>({}).empty());
}

TEST(Message, UnpackRejectsMisalignedSize) {
  std::vector<std::byte> payload(sizeof(Pod) + 1);
  EXPECT_THROW(unpack<Pod>(payload), CheckError);
}

TEST(Message, ForEachPackedVisitsInOrder) {
  const std::vector<std::uint64_t> in{5, 6, 7};
  std::vector<std::byte> payload;
  pack(payload, std::span<const std::uint64_t>(in));
  std::vector<std::uint64_t> seen;
  for_each_packed<std::uint64_t>(payload,
                                 [&](std::uint64_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, in);
}

}  // namespace
}  // namespace pagen::mps
