#include "baseline/copy_model_seq.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "graph/edge_list.h"
#include "util/error.h"
#include "util/stats.h"

namespace pagen::baseline {
namespace {

TEST(CopyModelX1, TargetsAlwaysPrecedeNode) {
  const PaConfig cfg{.n = 5000, .x = 1, .p = 0.5, .seed = 11};
  const auto f = copy_model_targets(cfg);
  EXPECT_EQ(f[0], kNil);
  EXPECT_EQ(f[1], 0u);
  for (NodeId t = 2; t < cfg.n; ++t) {
    EXPECT_LT(f[t], t) << "F_t must reference an older node";
  }
}

TEST(CopyModelX1, EdgeListIsTree) {
  const PaConfig cfg{.n = 2000, .x = 1, .p = 0.5, .seed = 5};
  const auto edges = copy_model_x1(cfg);
  EXPECT_EQ(edges.size(), cfg.n - 1);
  EXPECT_EQ(graph::count_self_loops(edges), 0u);
  EXPECT_EQ(graph::connected_components(edges, cfg.n), 1u);
}

TEST(CopyModelX1, DeterministicInSeed) {
  const PaConfig cfg{.n = 1000, .x = 1, .p = 0.5, .seed = 77};
  EXPECT_EQ(copy_model_targets(cfg), copy_model_targets(cfg));
  PaConfig other = cfg;
  other.seed = 78;
  EXPECT_NE(copy_model_targets(cfg), copy_model_targets(other));
}

TEST(CopyModelX1, MatchesBaDistributionAtHalfP) {
  // With p = 1/2 the copy model is exactly BA: Pr{F_t = i} = d_i / sum d.
  // The degree of the oldest node concentrates near the BA expectation
  // (~sqrt growth) rather than the uniform-attachment one (~log growth).
  const NodeId n = 400;
  const int runs = 300;
  double mean_deg0 = 0.0;
  for (int r = 0; r < runs; ++r) {
    const PaConfig cfg{.n = n, .x = 1, .p = 0.5,
                       .seed = static_cast<std::uint64_t>(1000 + r)};
    const auto deg = graph::degree_sequence(copy_model_x1(cfg), n);
    mean_deg0 += static_cast<double>(deg[0]);
  }
  mean_deg0 /= runs;
  EXPECT_GT(mean_deg0, 12.0) << "degree of the oldest node must show "
                                "preferential attachment, not uniform";
}

TEST(CopyModelX1, HighPIsMoreUniform) {
  // p = 1 degenerates to uniform random attachment; the hub degree drops.
  const NodeId n = 400;
  const int runs = 200;
  auto mean_deg0 = [&](double p) {
    double acc = 0.0;
    for (int r = 0; r < runs; ++r) {
      const PaConfig cfg{.n = n, .x = 1, .p = p,
                         .seed = static_cast<std::uint64_t>(5000 + r)};
      acc += static_cast<double>(
          graph::degree_sequence(copy_model_x1(cfg), n)[0]);
    }
    return acc / runs;
  };
  EXPECT_GT(mean_deg0(0.2), mean_deg0(1.0) * 1.5)
      << "small p must strengthen the rich-get-richer effect";
}

TEST(CopyModelGeneral, ExactEdgeCount) {
  for (NodeId x : {NodeId{2}, NodeId{4}, NodeId{8}}) {
    const PaConfig cfg{.n = 3000, .x = x, .p = 0.5, .seed = 9};
    const auto result = copy_model_general(cfg);
    EXPECT_EQ(result.edges.size(), expected_edge_count(cfg)) << "x=" << x;
  }
}

TEST(CopyModelGeneral, SimpleGraphInvariants) {
  const PaConfig cfg{.n = 4000, .x = 5, .p = 0.5, .seed = 13};
  const auto result = copy_model_general(cfg);
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  EXPECT_EQ(graph::connected_components(result.edges, cfg.n), 1u);
}

TEST(CopyModelGeneral, TargetsRespectOrdering) {
  const PaConfig cfg{.n = 1000, .x = 3, .p = 0.5, .seed = 21};
  const auto result = copy_model_general(cfg);
  for (NodeId t = cfg.x; t < cfg.n; ++t) {
    for (NodeId e = 0; e < cfg.x; ++e) {
      const NodeId v = result.targets[t * cfg.x + e];
      ASSERT_NE(v, kNil) << "every slot must resolve";
      EXPECT_LT(v, t);
    }
  }
}

TEST(CopyModelGeneral, RowsHaveDistinctEndpoints) {
  const PaConfig cfg{.n = 2000, .x = 6, .p = 0.5, .seed = 3};
  const auto result = copy_model_general(cfg);
  for (NodeId t = cfg.x; t < cfg.n; ++t) {
    for (NodeId e1 = 0; e1 < cfg.x; ++e1) {
      for (NodeId e2 = e1 + 1; e2 < cfg.x; ++e2) {
        EXPECT_NE(result.targets[t * cfg.x + e1],
                  result.targets[t * cfg.x + e2])
            << "node " << t << " has a duplicate endpoint";
      }
    }
  }
}

TEST(CopyModelGeneral, MinimumDegreeIsX) {
  const PaConfig cfg{.n = 3000, .x = 4, .p = 0.5, .seed = 17};
  const auto result = copy_model_general(cfg);
  const auto deg = graph::degree_sequence(result.edges, cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) {
    EXPECT_GE(deg[v], cfg.x)
        << "every node contributes x edges (node " << v << ")";
  }
}

TEST(CopyModelGeneral, DelegatesForX1) {
  const PaConfig cfg{.n = 500, .x = 1, .p = 0.5, .seed = 2};
  const auto result = copy_model_general(cfg);
  EXPECT_EQ(result.edges, copy_model_x1(cfg));
}

TEST(CopyModelGeneral, RetriesHappenButAreRare) {
  const PaConfig cfg{.n = 20000, .x = 8, .p = 0.5, .seed = 4};
  const auto result = copy_model_general(cfg);
  EXPECT_GT(result.retries, 0u);
  EXPECT_LT(result.retries, result.edges.size() / 10);
}

TEST(CopyModelGeneral, SmallestValidNetwork) {
  const PaConfig cfg{.n = 3, .x = 2, .p = 0.5, .seed = 1};
  const auto result = copy_model_general(cfg);
  // Clique (1,0) plus node 2 connecting to both clique nodes.
  EXPECT_EQ(result.edges.size(), 3u);
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
}

TEST(CopyModelGeneral, RejectsInvalidConfig) {
  EXPECT_THROW(copy_model_general({.n = 4, .x = 4, .p = 0.5, .seed = 1}),
               CheckError);
}

}  // namespace
}  // namespace pagen::baseline
