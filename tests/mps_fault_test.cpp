// Deterministic fault injection end to end: the FaultPlan grammar, the
// injector's pure decision function, exactly-once ordered delivery under
// transport chaos, and the generators' crash/checkpoint recovery — a fault
// run must produce the bitwise-identical x = 1 edge list of a fault-free
// run (docs/robustness.md).
#include "mps/fault.h"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/copy_model_seq.h"
#include "core/checkpoint.h"
#include "core/parallel_pa.h"
#include "core/parallel_pa_general.h"
#include "graph/edge_list.h"
#include "mps/engine.h"
#include "util/error.h"

namespace pagen {
namespace {

using namespace std::chrono_literals;

TEST(FaultPlan, ParseRoundTripsThroughToString) {
  const auto plan = mps::FaultPlan::parse(
      "seed=7,drop=0.02,dup=0.01,reorder=0.05,crash=3@1000,stall=1@50:20");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.02);
  EXPECT_DOUBLE_EQ(plan.dup, 0.01);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.05);
  EXPECT_EQ(plan.crash_rank, 3);
  EXPECT_EQ(plan.crash_step, 1000u);
  EXPECT_EQ(plan.stall_rank, 1);
  EXPECT_EQ(plan.stall_step, 50u);
  EXPECT_EQ(plan.stall_ms, 20u);
  EXPECT_TRUE(plan.active());
  EXPECT_TRUE(plan.has_crash());

  const auto again = mps::FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());

  EXPECT_FALSE(mps::FaultPlan{}.active());
  EXPECT_FALSE(mps::FaultPlan::parse("").active());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)mps::FaultPlan::parse("bogus=1"), CheckError);
  EXPECT_THROW((void)mps::FaultPlan::parse("drop"), CheckError);
  EXPECT_THROW((void)mps::FaultPlan::parse("drop=1.5"), CheckError);
  EXPECT_THROW((void)mps::FaultPlan::parse("drop=-0.1"), CheckError);
  EXPECT_THROW((void)mps::FaultPlan::parse("crash=3"), CheckError);
  EXPECT_THROW((void)mps::FaultPlan::parse("stall=1@5"), CheckError);
  EXPECT_THROW((void)mps::FaultPlan::parse("drop=0.6,dup=0.6"), CheckError);
}

TEST(FaultInjector, DecisionIsAPureFunctionOfItsInputs) {
  const auto plan = mps::FaultPlan::parse("seed=42,drop=0.2,dup=0.2,reorder=0.2");
  mps::FaultInjector a(plan, 8);
  mps::FaultInjector b(plan, 8);
  int non_deliver = 0;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    const auto action = a.decide(1, 2, 1, seq, 0, 0);
    EXPECT_EQ(action, b.decide(1, 2, 1, seq, 0, 0)) << "seq " << seq;
    // A retransmission (attempt 1) of the same envelope draws independently.
    (void)a.decide(1, 2, 1, seq, 1, 0);
    if (action != mps::FaultAction::kDeliver) ++non_deliver;
  }
  // ~60% of transmissions should be faulted; allow a generous band.
  EXPECT_GT(non_deliver, 200);
  EXPECT_LT(non_deliver, 400);

  // A different seed must give a different schedule.
  const auto other = mps::FaultPlan::parse("seed=43,drop=0.2,dup=0.2,reorder=0.2");
  mps::FaultInjector c(other, 8);
  int differing = 0;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    if (a.decide(1, 2, 1, seq, 0, 0) != c.decide(1, 2, 1, seq, 0, 0)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultTransport, ExactlyOnceInOrderUnderDropDupReorder) {
  constexpr int kRanks = 8;
  mps::WorldOptions o;
  o.fault_plan = mps::FaultPlan::parse("seed=5,drop=0.1,dup=0.1,reorder=0.15");
  o.reliable = true;
  o.rto_base_ms = 10;
  mps::run_ranks(kRanks, o, [](mps::Comm& comm) {
    constexpr std::uint64_t kPerPeer = 100;
    for (Rank dst = 0; dst < kRanks; ++dst) {
      if (dst == comm.rank()) continue;
      for (std::uint64_t i = 0; i < kPerPeer; ++i) {
        comm.send_item<std::uint64_t>(dst, 1, i);
      }
    }
    constexpr std::size_t kExpect = kPerPeer * (kRanks - 1);
    std::vector<mps::Envelope> in;
    while (in.size() < kExpect) {
      (void)comm.poll_wait(in, 100ms);
    }
    ASSERT_EQ(in.size(), kExpect);
    // Per source flow: sequence numbers and payloads are exactly 0..99 in
    // order — no loss, no duplicate, no overtaking survived the repair.
    std::map<Rank, std::uint64_t> next;
    for (const mps::Envelope& env : in) {
      EXPECT_EQ(env.seq, next[env.src]);
      EXPECT_EQ(mps::unpack<std::uint64_t>(env.payload)[0], next[env.src]);
      ++next[env.src];
    }
    for (const auto& [src, n] : next) EXPECT_EQ(n, kPerPeer) << "src " << src;
    comm.barrier();  // serviced: keeps retransmitting for slower peers
  });
}

// Regression (found via a hung quickstart run): a sender whose first-ever
// ingested data envelope from a peer already carries a respawned incarnation
// must still reset its send flows toward that peer. Here rank 1's first life
// receives and acks one tag-1 envelope, then crashes on its own first send —
// so rank 0 never ingests anything from the dead incarnation, the ack has
// already advanced rank 0's tag-1 flow past sequence 0, and no retained copy
// is left to retransmit. Without the first-contact reset, rank 0's next tag-1
// send goes out as sequence 1 and the respawned receiver holds it forever
// behind a gap only the dead incarnation ever filled.
TEST(FaultTransport, FirstContactWithARespawnedPeerResetsSendFlows) {
  mps::WorldOptions o;
  o.fault_plan = mps::FaultPlan::parse("seed=1,crash=1@1");
  o.reliable = true;
  o.rto_base_ms = 10;
  const mps::RunResult run = mps::run_ranks(2, o, [](mps::Comm& comm) {
    std::vector<mps::Envelope> in;
    const auto wait_one = [&]() {
      for (int i = 0; i < 100 && in.empty(); ++i) {
        (void)comm.poll_wait(in, 100ms);
      }
      return !in.empty();
    };
    // Failed expectations stay non-fatal so every path still reaches the
    // closing barrier — a rank bailing out early would wedge its peer there
    // and turn a clean failure into a timeout.
    if (comm.rank() == 0) {
      comm.send_item<std::uint64_t>(1, 1, 0xA);  // consumed + acked, then lost
      const bool hello = wait_one();
      EXPECT_TRUE(hello) << "no hello from the respawned rank";
      if (hello) {
        EXPECT_EQ(in.front().tag, 1);
        EXPECT_EQ(in.front().epoch, 1u);  // first contact is already epoch 1
      }
      in.clear();
      comm.send_item<std::uint64_t>(1, 1, 0xB);  // must restart at sequence 0
    } else if (comm.incarnation() == 0) {
      EXPECT_TRUE(wait_one());  // ingesting 0xA acks it
      comm.send_item<std::uint64_t>(0, 1, 0x1);  // scripted crash fires here
      ADD_FAILURE() << "the scripted crash did not fire";
    } else {
      comm.send_item<std::uint64_t>(0, 1, 0x1);  // hello under epoch 1
      const bool got = wait_one();
      EXPECT_TRUE(got) << "post-respawn envelope never surfaced";
      if (got) {
        EXPECT_EQ(in.front().tag, 1);
        EXPECT_EQ(in.front().seq, 0u);  // the reset flow restarts at 0
        EXPECT_EQ(mps::unpack<std::uint64_t>(in.front().payload)[0], 0xB);
      }
    }
    comm.barrier();  // serviced: retransmission stays live for the laggard
  });
  EXPECT_EQ(run.respawns, 1);
}

// ---------------------------------------------------------------------------
// Generator-level acceptance: fault plans must be invisible in the output.

core::ParallelOptions fault_test_options() {
  core::ParallelOptions opt;
  opt.ranks = 8;
  opt.scheme = partition::Scheme::kRrp;
  // Small buffers => many envelopes => the fault script gets real traffic
  // to chew on and scripted crash steps land mid-generation.
  opt.buffer_capacity = 4;
  opt.node_batch = 128;
  opt.checkpoint_every = 256;
  return opt;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pagen_fault_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(FaultGenerator, X1EdgeListUnaffectedByDropDupReorderStall) {
  const PaConfig cfg{.n = 12000, .x = 1, .p = 0.5, .seed = 3};
  const auto reference = baseline::copy_model_targets(cfg);

  core::ParallelOptions opt = fault_test_options();
  opt.fault_plan =
      mps::FaultPlan::parse("seed=11,drop=0.06,dup=0.05,reorder=0.08,stall=2@100:20");
  const auto faulty = core::generate_pa_x1(cfg, opt);

  // Acceptance (a): bitwise-identical targets — the faults were repaired
  // below the algorithm, which never saw them.
  EXPECT_EQ(faulty.targets, reference);
  EXPECT_EQ(faulty.total_edges, cfg.n - 1);
  EXPECT_EQ(faulty.respawns, 0u);

  // The transport did inject (and repair) real faults.
  mps::CommStats world;
  for (const auto& s : faulty.comm_stats) world += s;
  EXPECT_GT(world.injected_drops, 0u);
  EXPECT_GT(world.injected_dups, 0u);
  EXPECT_GT(world.retransmits, 0u);
  EXPECT_GT(world.duplicates_dropped, 0u);
}

TEST(FaultGenerator, X1FaultRunsAreDeterministicGivenTheSeed) {
  const PaConfig cfg{.n = 8000, .x = 1, .p = 0.5, .seed = 19};
  core::ParallelOptions opt = fault_test_options();
  opt.fault_plan = mps::FaultPlan::parse("seed=23,drop=0.05,dup=0.05,reorder=0.05");

  const auto first = core::generate_pa_x1(cfg, opt);
  const auto second = core::generate_pa_x1(cfg, opt);
  // Acceptance (c): with the same fault seed the output is identical (the
  // injection schedule is pure, so this holds bitwise for the edge set).
  EXPECT_EQ(first.targets, second.targets);
  EXPECT_EQ(first.targets, baseline::copy_model_targets(cfg));
}

TEST(FaultGenerator, X1CrashRecoversFromCheckpointBitwiseIdentical) {
  const PaConfig cfg{.n = 12000, .x = 1, .p = 0.5, .seed = 3};
  const auto reference = baseline::copy_model_targets(cfg);

  core::ParallelOptions opt = fault_test_options();
  opt.fault_plan = mps::FaultPlan::parse("seed=11,drop=0.03,crash=3@200");
  opt.checkpoint_dir = fresh_dir("x1_crash");
  const auto result = core::generate_pa_x1(cfg, opt);

  // Acceptance (b): the scripted mid-generation crash was absorbed by a
  // respawn + checkpoint restore, and the output is still bitwise right.
  EXPECT_GE(result.respawns, 1u);
  EXPECT_EQ(result.targets, reference);
  EXPECT_EQ(result.total_edges, cfg.n - 1);
  // The respawned rank really did write and read a checkpoint.
  EXPECT_TRUE(std::filesystem::exists(core::checkpoint_path(opt.checkpoint_dir, 3)));
}

TEST(FaultGenerator, X1CrashWithoutCheckpointDirReplaysFromScratch) {
  const PaConfig cfg{.n = 8000, .x = 1, .p = 0.5, .seed = 5};
  core::ParallelOptions opt = fault_test_options();
  opt.fault_plan = mps::FaultPlan::parse("seed=2,crash=5@160");
  const auto result = core::generate_pa_x1(cfg, opt);
  EXPECT_GE(result.respawns, 1u);
  EXPECT_EQ(result.targets, baseline::copy_model_targets(cfg));
}

TEST(FaultGenerator, X1CrashOfTheTerminationRootRecovers) {
  // Rank 0 is the done-counting root; its death exercises the per-source
  // done dedup and the stop re-broadcast of the recovery protocol.
  const PaConfig cfg{.n = 8000, .x = 1, .p = 0.5, .seed = 7};
  core::ParallelOptions opt = fault_test_options();
  opt.fault_plan = mps::FaultPlan::parse("seed=4,crash=0@150");
  opt.checkpoint_dir = fresh_dir("x1_crash_root");
  const auto result = core::generate_pa_x1(cfg, opt);
  EXPECT_GE(result.respawns, 1u);
  EXPECT_EQ(result.targets, baseline::copy_model_targets(cfg));
}

TEST(FaultGenerator, X1CrashPlusChaosRecovers) {
  const PaConfig cfg{.n = 8000, .x = 1, .p = 0.5, .seed = 13};
  core::ParallelOptions opt = fault_test_options();
  opt.fault_plan =
      mps::FaultPlan::parse("seed=13,drop=0.04,dup=0.04,reorder=0.06,crash=2@170");
  opt.checkpoint_dir = fresh_dir("x1_crash_chaos");
  const auto result = core::generate_pa_x1(cfg, opt);
  EXPECT_GE(result.respawns, 1u);
  EXPECT_EQ(result.targets, baseline::copy_model_targets(cfg));
}

TEST(FaultGenerator, XkStructureSurvivesDropDupReorder) {
  const PaConfig cfg{.n = 4000, .x = 4, .p = 0.5, .seed = 17};
  core::ParallelOptions opt = fault_test_options();
  opt.fault_plan = mps::FaultPlan::parse("seed=6,drop=0.05,dup=0.05,reorder=0.08");
  const auto result = core::generate_pa_general(cfg, opt);
  EXPECT_EQ(result.total_edges, expected_edge_count(cfg));
  EXPECT_EQ(result.edges.size(), expected_edge_count(cfg));
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  EXPECT_EQ(graph::connected_components(result.edges, cfg.n), 1u);
}

TEST(FaultGenerator, XkCrashRecoversFromCheckpoint) {
  const PaConfig cfg{.n = 4000, .x = 4, .p = 0.5, .seed = 17};
  core::ParallelOptions opt = fault_test_options();
  opt.fault_plan = mps::FaultPlan::parse("seed=8,crash=3@200");
  opt.checkpoint_dir = fresh_dir("xk_crash");
  const auto result = core::generate_pa_general(cfg, opt);
  EXPECT_GE(result.respawns, 1u);
  // x > 1 resolutions are arrival-order dependent (like a fault-free
  // parallel run), so assert the structural contract rather than bitwise
  // equality: exact edge count, simple, and connected.
  EXPECT_EQ(result.total_edges, expected_edge_count(cfg));
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  EXPECT_EQ(graph::connected_components(result.edges, cfg.n), 1u);
}

TEST(FaultGenerator, CheckpointRoundTripsThroughDisk) {
  const std::string dir = fresh_dir("ckpt_io");
  core::RankCheckpoint ck;
  ck.n = 100;
  ck.x = 2;
  ck.seed = 9;
  ck.rank = 1;
  ck.nranks = 4;
  ck.f = {kNil, 0, 5, kNil, 17};
  ck.attempts = {0, 1, 2, 0, 7};
  ck.locked_copy = {0, 1, 0, 0, 1};
  core::save_checkpoint(dir, ck);

  core::RankCheckpoint loaded;
  ASSERT_TRUE(core::load_checkpoint(dir, 1, loaded));
  EXPECT_EQ(loaded.n, ck.n);
  EXPECT_EQ(loaded.x, ck.x);
  EXPECT_EQ(loaded.seed, ck.seed);
  EXPECT_EQ(loaded.nranks, ck.nranks);
  EXPECT_EQ(loaded.f, ck.f);
  EXPECT_EQ(loaded.attempts, ck.attempts);
  EXPECT_EQ(loaded.locked_copy, ck.locked_copy);

  core::RankCheckpoint missing;
  EXPECT_FALSE(core::load_checkpoint(dir, 2, missing));  // no such rank file
  // A file whose recorded rank disagrees with the requested one is corrupt.
  std::filesystem::copy_file(core::checkpoint_path(dir, 1),
                             core::checkpoint_path(dir, 3));
  EXPECT_THROW((void)core::load_checkpoint(dir, 3, missing), CheckError);
}

}  // namespace
}  // namespace pagen
