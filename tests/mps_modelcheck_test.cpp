// Schedule-exploration model checker (mps/modelcheck.h + core/mc_runner.h).
//
// The load-bearing guarantees pinned here:
//  * replay determinism — a recorded schedule re-runs step for step: a
//    passing schedule to bitwise-identical edges, a failing schedule to
//    the identical failure;
//  * the deliberately re-introduced RRP flush-rule bug (the PR 2
//    regression: ParallelOptions::flush_resolved_after_batch = false) is
//    found by exhaustive exploration and its schedule replays to the same
//    deadlock;
//  * small-config exhaustive sweeps complete (tree exhausted) with zero
//    violations and exactly one distinct output for x = 1;
//  * the "pagen.mpsmc.v1" trace format round-trips.
#include "mps/modelcheck.h"

#include <string>

#include <gtest/gtest.h>

#include "core/mc_runner.h"
#include "partition/partition.h"

namespace pagen {
namespace {

namespace mc = mps::mc;
using core::mc::PropertyRunner;

PropertyRunner::Options small_config(int ranks, NodeId n) {
  PropertyRunner::Options o;
  o.pa.n = n;
  o.pa.x = 1;
  o.pa.p = 0.5;
  o.pa.seed = 7;
  o.ranks = ranks;
  o.scheme = partition::Scheme::kRrp;
  o.buffer_capacity = 4;
  o.node_batch = 8;
  return o;
}

TEST(ModelCheck, ExhaustiveSmallConfigCompletesClean) {
  for (const int ranks : {2, 3}) {
    PropertyRunner runner(small_config(ranks, 16));
    mc::ExploreOptions eo;
    eo.nranks = ranks;
    eo.max_schedules = 200'000;
    const mc::ExploreReport report =
        mc::explore_exhaustive(eo, runner.runner());
    EXPECT_FALSE(report.failed) << report.failure;
    EXPECT_TRUE(report.complete) << "ranks " << ranks;
    EXPECT_GT(report.schedules_explored, 0u);
    EXPECT_GT(report.schedules_pruned, 0u)
        << "sleep sets pruned nothing at ranks " << ranks;
    // Theorem 3.2 made machine-checked: every explored schedule produced
    // the one schedule-free reference output.
    EXPECT_EQ(runner.distinct_outputs().size(), 1u);
    EXPECT_EQ(*runner.distinct_outputs().begin(), runner.ref_edges_hash());
  }
}

TEST(ModelCheck, RandomSchedulesX1OutputIsScheduleIndependent) {
  PropertyRunner runner(small_config(3, 48));
  mc::ExploreOptions eo;
  eo.nranks = 3;
  const mc::ExploreReport report =
      mc::explore_random(eo, /*base_seed=*/11, /*schedules=*/64,
                         runner.runner());
  EXPECT_FALSE(report.failed) << report.failure;
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.schedules_explored, 64u);
  EXPECT_EQ(runner.distinct_outputs().size(), 1u);
}

TEST(ModelCheck, PassingScheduleReplaysToBitwiseIdenticalEdges) {
  const PropertyRunner::Options options = small_config(2, 32);

  // Record one passing random schedule.
  PropertyRunner record_runner(options);
  mc::RandomStrategy random(99);
  mc::Scheduler sched(options.ranks, &random);
  const mc::RunOutcome out = record_runner.runner()(sched);
  ASSERT_FALSE(out.failed) << out.failure;
  ASSERT_FALSE(sched.deadlocked());
  ASSERT_EQ(sched.undelivered(), 0u);
  ASSERT_EQ(record_runner.distinct_outputs().size(), 1u);
  const std::uint64_t recorded_hash = *record_runner.distinct_outputs().begin();

  mc::ScheduleTrace trace;
  trace.actions = sched.trace();
  ASSERT_FALSE(trace.actions.empty());

  // Replay it through a fresh runner: step-for-step match and the same
  // normalized edge hash (bitwise-identical output).
  PropertyRunner replay_runner(options);
  mc::ExploreOptions eo;
  eo.nranks = options.ranks;
  const mc::ReplayReport replay =
      mc::replay_schedule(eo, trace, replay_runner.runner());
  EXPECT_TRUE(replay.matched);
  EXPECT_FALSE(replay.outcome.failed) << replay.outcome.failure;
  ASSERT_EQ(replay_runner.distinct_outputs().size(), 1u);
  EXPECT_EQ(*replay_runner.distinct_outputs().begin(), recorded_hash);
}

TEST(ModelCheck, FlushRuleOffDeadlockIsFoundAndReplaysIdentically) {
  // The PR 2 regression, re-introduced on purpose: without the RRP flush
  // rule a resolved value can sit in a send buffer forever while its
  // requester blocks. Exploration must find a deadlocking schedule.
  PropertyRunner::Options options = small_config(2, 32);
  options.flush_resolved_after_batch = false;

  PropertyRunner runner(options);
  mc::ExploreOptions eo;
  eo.nranks = options.ranks;
  eo.max_schedules = 10'000;
  const mc::ExploreReport report = mc::explore_exhaustive(eo, runner.runner());
  ASSERT_TRUE(report.failed);
  EXPECT_NE(report.failure.find("deadlock"), std::string::npos)
      << report.failure;
  ASSERT_FALSE(report.failing.actions.empty());

  // The dumped schedule replays to the identical assertion failure.
  PropertyRunner replay_runner(options);
  const mc::ReplayReport replay =
      mc::replay_schedule(eo, report.failing, replay_runner.runner());
  EXPECT_TRUE(replay.matched);
  EXPECT_TRUE(replay.outcome.failed);
  EXPECT_TRUE(replay.deadlocked);
  EXPECT_EQ(replay.outcome.failure, report.failure);

  // And the fix (the flush rule, on by default) removes every deadlock
  // from the very same exploration.
  options.flush_resolved_after_batch = true;
  PropertyRunner fixed_runner(options);
  const mc::ExploreReport fixed = mc::explore_exhaustive(eo, fixed_runner.runner());
  EXPECT_FALSE(fixed.failed) << fixed.failure;
}

TEST(ModelCheck, GeneralModelInvariantsHoldAcrossSchedules) {
  PropertyRunner::Options options = small_config(2, 20);
  options.pa.x = 3;
  PropertyRunner runner(options);
  mc::ExploreOptions eo;
  eo.nranks = options.ranks;
  eo.max_schedules = 500;
  const mc::ExploreReport report = mc::explore_exhaustive(eo, runner.runner());
  EXPECT_FALSE(report.failed) << report.failure;
  EXPECT_GT(report.schedules_explored, 0u);
  // x > 1, P > 1 output is allowed to be schedule-dependent (ROADMAP item
  // 2); the runner *measures* it instead of asserting. Every output that
  // did occur passed the structural invariants above.
  EXPECT_GE(runner.distinct_outputs().size(), 1u);
}

TEST(ModelCheck, CausalChainDepthsMatchOracleOnEverySchedule) {
  PropertyRunner::Options options = small_config(2, 32);
  options.causal_check = true;
  PropertyRunner runner(options);
  mc::ExploreOptions eo;
  eo.nranks = options.ranks;
  const mc::ExploreReport report =
      mc::explore_random(eo, /*base_seed=*/3, /*schedules=*/16,
                         runner.runner());
  EXPECT_FALSE(report.failed) << report.failure;
  EXPECT_EQ(report.schedules_explored, 16u);
}

TEST(ModelCheck, TraceJsonRoundTrips) {
  mc::ScheduleTrace trace;
  trace.meta["n"] = "32";
  trace.meta["scheme"] = "RRP";
  trace.meta["note"] = "quotes \" backslash \\ newline \n tab \t";
  trace.failure = "deadlock: ranks: 0=blocked 1=blocked";
  trace.actions.push_back(
      mc::Action{mc::Action::Kind::kStep, 1, -1, 0});
  trace.actions.push_back(
      mc::Action{mc::Action::Kind::kDeliver, 0, 1, 3});

  const std::string json = mc::trace_to_json(trace);
  mc::ScheduleTrace parsed;
  std::string error;
  ASSERT_TRUE(mc::trace_from_json(json, parsed, error)) << error;
  EXPECT_EQ(parsed.meta, trace.meta);
  EXPECT_EQ(parsed.failure, trace.failure);
  ASSERT_EQ(parsed.actions.size(), trace.actions.size());
  EXPECT_EQ(parsed.actions, trace.actions);

  // Unknown keys tolerated; wrong format and torn documents rejected.
  mc::ScheduleTrace dummy;
  EXPECT_TRUE(mc::trace_from_json(
      R"({"format": "pagen.mpsmc.v1", "future": [1, [2]], "actions": []})",
      dummy, error));
  EXPECT_FALSE(mc::trace_from_json(R"({"format": "pagen.mpsmc.v2"})", dummy,
                                   error));
  EXPECT_FALSE(mc::trace_from_json(R"({"actions": []})", dummy, error));
  EXPECT_FALSE(mc::trace_from_json(json.substr(0, json.size() / 2), dummy,
                                   error));
}

TEST(ModelCheck, ReplayDivergenceIsDetected) {
  // A schedule recorded against one config replayed against another must
  // report a mismatch, not silently explore something else.
  const PropertyRunner::Options options = small_config(2, 32);
  PropertyRunner runner(options);
  mc::RandomStrategy random(5);
  mc::Scheduler sched(options.ranks, &random);
  ASSERT_FALSE(runner.runner()(sched).failed);

  mc::ScheduleTrace trace;
  trace.actions = sched.trace();
  ASSERT_GT(trace.actions.size(), 2u);
  // Corrupt the tail: deliver from a rank that never sends on tag 999.
  trace.actions.back() = mc::Action{mc::Action::Kind::kDeliver, 0, 1, 999};

  PropertyRunner replay_runner(options);
  mc::ExploreOptions eo;
  eo.nranks = options.ranks;
  const mc::ReplayReport replay =
      mc::replay_schedule(eo, trace, replay_runner.runner());
  EXPECT_FALSE(replay.matched);
}

}  // namespace
}  // namespace pagen
