#include "core/parallel_cl.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/powerlaw_fit.h"
#include "core/distributed_degree.h"
#include "graph/edge_list.h"
#include "util/error.h"

namespace pagen::core {
namespace {

baseline::ClConfig sample_config(NodeId n = 20000, double gamma = 2.5,
                                 std::uint64_t seed = 5) {
  baseline::ClConfig cfg;
  cfg.weights = baseline::power_law_weights(n, gamma, 6.0);
  cfg.seed = seed;
  return cfg;
}

TEST(ParallelCl, SimpleGraphInvariants) {
  const auto result = generate_cl(sample_config(), 8);
  EXPECT_EQ(graph::count_self_loops(result.edges), 0u);
  EXPECT_EQ(graph::count_duplicates(result.edges), 0u);
  for (const auto& e : result.edges) EXPECT_LT(e.u, e.v);
}

TEST(ParallelCl, RankCountIndependentBitwise) {
  // Per-row streams: the edge set is identical for any P.
  const auto cfg = sample_config(5000);
  auto reference = generate_cl(cfg, 1).edges;
  graph::normalize(reference);
  for (int ranks : {2, 7, 16}) {
    auto edges = generate_cl(cfg, ranks).edges;
    graph::normalize(edges);
    EXPECT_EQ(edges, reference) << "ranks=" << ranks;
  }
}

TEST(ParallelCl, EdgeCountNearHalfWeightSum) {
  baseline::ClConfig cfg;
  cfg.weights.assign(20000, 8.0);
  cfg.seed = 7;
  const auto result = generate_cl(cfg, 8);
  const double expected = 20000.0 * 8.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(result.total_edges), expected,
              5 * std::sqrt(expected));
}

TEST(ParallelCl, HeavyNodesGetTheirExpectedDegree) {
  baseline::ClConfig cfg;
  cfg.weights.assign(10000, 4.0);
  cfg.weights[0] = 300.0;
  cfg.weights[1] = 150.0;  // keep non-increasing order
  cfg.seed = 9;
  const auto result = generate_cl(cfg, 6);
  const auto deg = graph::degree_sequence(result.edges, 10000);
  EXPECT_NEAR(static_cast<double>(deg[0]), 300.0, 5 * std::sqrt(300.0));
  EXPECT_NEAR(static_cast<double>(deg[1]), 150.0, 5 * std::sqrt(150.0));
}

TEST(ParallelCl, PowerLawExponentRecovered) {
  const auto result = generate_cl(sample_config(150000, 2.5, 11), 8);
  const auto deg = graph::degree_sequence(result.edges, 150000);
  const auto fit = analysis::fit_gamma_mle(deg, 8);
  EXPECT_NEAR(fit.gamma, 2.5, 0.3);
}

TEST(ParallelCl, ShardsComposeWithDistributedAnalytics) {
  // CL shards are row-keyed (RRP over the smaller endpoint); the analytics
  // passes accept any edge placement, so the distributed histogram must
  // match the centralized one.
  const auto cfg = sample_config(8000);
  const auto result = generate_cl(cfg, 5, /*gather=*/true);
  const auto hist = distributed_degree_distribution(
      result.shards, 8000, partition::Scheme::kRrp);
  Count mass = 0;
  for (const auto& [degree, count] : hist) mass += degree * count;
  EXPECT_EQ(mass, 2 * result.total_edges);
}

TEST(ParallelCl, RejectsUnsortedWeights) {
  baseline::ClConfig cfg;
  cfg.weights = {1.0, 5.0, 2.0};
  EXPECT_THROW(generate_cl(cfg, 2), CheckError);
}

TEST(ParallelCl, GatherCanBeDisabled) {
  const auto result = generate_cl(sample_config(3000), 4, false);
  EXPECT_TRUE(result.edges.empty());
  EXPECT_GT(result.total_edges, 0u);
}

}  // namespace
}  // namespace pagen::core
