#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rng/counter_rng.h"
#include "rng/splitmix.h"
#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::rng {
namespace {

TEST(SplitMix, KnownReferenceSequence) {
  // Reference values for seed 1234567 from the public-domain C reference.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ull);
  EXPECT_EQ(sm.next(), 3203168211198807973ull);
}

TEST(SplitMix, MixIsDeterministicAndDispersive) {
  EXPECT_EQ(splitmix64_mix(42), splitmix64_mix(42));
  EXPECT_NE(splitmix64_mix(42), splitmix64_mix(43));
  // Single-bit input flips should flip roughly half the output bits.
  const std::uint64_t a = splitmix64_mix(0x1000);
  const std::uint64_t b = splitmix64_mix(0x1001);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(CounterRng, PureFunctionOfCoordinates) {
  const CounterRng rng(99);
  const Stream s{1, 2, 3, 4};
  EXPECT_EQ(rng.raw(s), rng.raw(s));
  EXPECT_EQ(rng.raw(s, 7), rng.raw(s, 7));
  EXPECT_NE(rng.raw(s, 0), rng.raw(s, 1));
}

TEST(CounterRng, DifferentSeedsDiffer) {
  const CounterRng a(1), b(2);
  const Stream s{1, 10, 0, 0};
  EXPECT_NE(a.raw(s), b.raw(s));
}

TEST(CounterRng, CoordinatesAreNotConfused) {
  // (a=1, b=2) must differ from (a=2, b=1): coordinates must not commute.
  const CounterRng rng(5);
  EXPECT_NE(rng.raw({0, 1, 2, 0}), rng.raw({0, 2, 1, 0}));
  EXPECT_NE(rng.raw({1, 0, 0, 0}), rng.raw({0, 1, 0, 0}));
}

TEST(CounterRng, BelowRespectsBound) {
  const CounterRng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (std::uint64_t i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound, {9, i, bound, 0}), bound);
    }
  }
}

TEST(CounterRng, BelowOneAlwaysZero) {
  const CounterRng rng(7);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.below(1, {2, i, 0, 0}), 0u);
  }
}

TEST(CounterRng, RangeInclusive) {
  const CounterRng rng(11);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.range(10, 12, {3, i, 0, 0});
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u) << "all three values should appear in 500 draws";
}

TEST(CounterRng, RangeRejectsInverted) {
  const CounterRng rng(1);
  EXPECT_THROW((void)rng.range(5, 4, {0, 0, 0, 0}), CheckError);
}

TEST(CounterRng, UniformityChiSquared) {
  // 16 buckets, 16000 draws: chi2 with 15 dof, 99.9% critical value ~37.7.
  const CounterRng rng(2024);
  std::vector<double> obs(16, 0.0);
  const int draws = 16000;
  for (int i = 0; i < draws; ++i) {
    obs[rng.below(16, {4, static_cast<std::uint64_t>(i), 0, 0})] += 1.0;
  }
  double chi2 = 0.0;
  const double expected = draws / 16.0;
  for (double o : obs) chi2 += (o - expected) * (o - expected) / expected;
  EXPECT_LT(chi2, 37.7);
}

TEST(CounterRng, UnitInHalfOpenInterval) {
  const CounterRng rng(3);
  double sum = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const double u = rng.unit({5, static_cast<std::uint64_t>(i), 0, 0});
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

TEST(CounterRng, CoinMatchesProbability) {
  const CounterRng rng(8);
  for (double p : {0.1, 0.5, 0.9}) {
    int heads = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      heads += rng.coin(p, {6, static_cast<std::uint64_t>(i),
                            static_cast<std::uint64_t>(p * 100), 0});
    }
    EXPECT_NEAR(static_cast<double>(heads) / trials, p, 0.015) << "p=" << p;
  }
}

TEST(Xoshiro, ReproducibleForSeed) {
  Xoshiro256pp a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, BelowUnbiasedSmoke) {
  Xoshiro256pp rng(17);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Xoshiro, UnitBounds) {
  Xoshiro256pp rng(21);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace pagen::rng
