// Tests for the debug-build invariant checker (mps/invariant.h): sequence
// stamping, non-overtaking enforcement, the lost-message termination audit,
// deadlock detection, and — the regression this subsystem exists for — the
// RRP flush-after-receive rule (docs/protocol.md §5). Every test skips when
// built without PAGEN_CHECK_INVARIANTS; the deadlock cases would otherwise
// hang ctest instead of failing it.
#include "mps/invariant.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "mps/comm.h"
#include "mps/engine.h"
#include "mps/message.h"

namespace pagen::mps {
namespace {

using namespace std::chrono_literals;

#ifdef PAGEN_CHECK_INVARIANTS
constexpr bool kCheckerEnabled = true;
#else
constexpr bool kCheckerEnabled = false;
#endif

#define PAGEN_REQUIRE_CHECKER()                                         \
  do {                                                                  \
    if (!kCheckerEnabled) {                                             \
      GTEST_SKIP() << "built without PAGEN_CHECK_INVARIANTS";           \
    }                                                                   \
  } while (false)

/// Sets PAGEN_STALL_THRESHOLD_MS for the test's lifetime so deadlock
/// detection fires in tens of milliseconds instead of the 500ms default.
/// The checker reads the variable once, at World construction, so setting
/// it before run_ranks/generate is race-free.
class ScopedStallThreshold {
 public:
  explicit ScopedStallThreshold(const char* ms) {
    const char* old = std::getenv("PAGEN_STALL_THRESHOLD_MS");
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    setenv("PAGEN_STALL_THRESHOLD_MS", ms, /*overwrite=*/1);
  }
  ~ScopedStallThreshold() {
    if (had_value_) {
      setenv("PAGEN_STALL_THRESHOLD_MS", saved_.c_str(), 1);
    } else {
      unsetenv("PAGEN_STALL_THRESHOLD_MS");
    }
  }
  ScopedStallThreshold(const ScopedStallThreshold&) = delete;
  ScopedStallThreshold& operator=(const ScopedStallThreshold&) = delete;

 private:
  std::string saved_;
  bool had_value_ = false;
};

// ---------------------------------------------------------------------------
// Sequence stamping and non-overtaking enforcement. These drive a World
// directly from the test thread (both endpoints on one thread trivially
// satisfies the checker's owner-thread discipline).
// ---------------------------------------------------------------------------

TEST(InvariantChecker, StampsIndependentSequencesPerFlow) {
  PAGEN_REQUIRE_CHECKER();
  World w(2);
  Comm c0(w, 0);
  Comm c1(w, 1);

  for (std::uint64_t i = 0; i < 3; ++i) {
    c0.send_item<std::uint64_t>(1, /*tag=*/7, i);
  }
  c0.send_item<std::uint64_t>(1, /*tag=*/8, 99);  // separate flow, seq 0
  c1.send_item<std::uint64_t>(0, /*tag=*/7, 42);  // separate src, seq 0

  std::vector<Envelope> inbox;
  ASSERT_TRUE(c1.poll(inbox));
  ASSERT_EQ(inbox.size(), 4u);
  EXPECT_EQ(inbox[0].seq, 0u);
  EXPECT_EQ(inbox[1].seq, 1u);
  EXPECT_EQ(inbox[2].seq, 2u);
  EXPECT_EQ(inbox[3].seq, 0u) << "tag 8 is its own flow";

  inbox.clear();
  ASSERT_TRUE(c0.poll(inbox));
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].seq, 0u) << "rank 1's first send on its own flow";

  // Everything sent was received: the termination audit must pass.
  EXPECT_NO_THROW(w.invariants().verify_termination());
}

TEST(InvariantChecker, DetectsOutOfOrderDelivery) {
  PAGEN_REQUIRE_CHECKER();
  World w(2);
  Comm c1(w, 1);

  // Forge an envelope that claims to be send #5 of a flow whose receiver
  // has seen nothing — as if four earlier envelopes were overtaken.
  w.mailbox(1).push(Envelope{/*src=*/0, /*tag=*/7, {}, /*seq=*/5, 0, 0, {}});
  std::vector<Envelope> inbox;
  try {
    (void)c1.poll(inbox);
    FAIL() << "poll accepted an out-of-order envelope";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("non-overtaking"), std::string::npos)
        << e.what();
  }
}

TEST(InvariantChecker, DetectsLostMessageAtTermination) {
  PAGEN_REQUIRE_CHECKER();
  try {
    run_ranks(2, [](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send_item<int>(1, /*tag=*/3, 17);
      }
      // Rank 1 returns without ever polling: the envelope is lost.
    });
    FAIL() << "termination audit missed a sent-but-never-received envelope";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lost messages"), std::string::npos) << what;
    EXPECT_NE(what.find("0 -> 1"), std::string::npos) << what;
  }
}

TEST(InvariantChecker, CleanWorldPassesTerminationAudit) {
  // Send + receive on every flow: run_ranks' post-join audit stays silent.
  // (Meaningful in debug builds; still a valid smoke test in Release.)
  EXPECT_NO_THROW(run_ranks(2, [](Comm& comm) {
    const auto peer = static_cast<Rank>(1 - comm.rank());
    comm.send_item<int>(peer, /*tag=*/1, comm.rank());
    std::vector<Envelope> inbox;
    while (!comm.poll_wait(inbox, 50ms)) {
    }
    ASSERT_EQ(inbox.size(), 1u);
  }));
}

// ---------------------------------------------------------------------------
// Deadlock detection.
// ---------------------------------------------------------------------------

TEST(InvariantChecker, ReportsAllRanksBlockedAsDeadlock) {
  PAGEN_REQUIRE_CHECKER();
  const ScopedStallThreshold fast("60");
  // Three ranks wait forever for traffic nobody sends: a pure receive
  // cycle. Without the checker this loops until the ctest timeout.
  try {
    run_ranks(3, [](Comm& comm) {
      std::vector<Envelope> inbox;
      for (;;) {
        (void)comm.poll_wait(inbox, 10ms);
      }
    });
    FAIL() << "deadlocked world terminated cleanly?";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("every rank is blocked"), std::string::npos) << what;
    // The dump names each rank's wait site.
    EXPECT_NE(what.find("poll_wait"), std::string::npos) << what;
  }
}

TEST(InvariantChecker, DoesNotFlagSlowButLiveTraffic) {
  PAGEN_REQUIRE_CHECKER();
  const ScopedStallThreshold fast("60");
  // A ping-pong whose every hop dwells longer than the stall threshold:
  // the receiver looks dead to a naive wall-clock probe, but at any instant
  // either an envelope is in flight or one rank is running (dwelling, not
  // blocked) — both screens the checker applies before declaring deadlock.
  EXPECT_NO_THROW(run_ranks(2, [](Comm& comm) {
    constexpr int kHops = 4;
    if (comm.rank() == 0) comm.send_item<int>(1, /*tag=*/1, 0);
    std::vector<Envelope> inbox;
    int seen = 0;
    while (seen < kHops) {
      inbox.clear();
      if (!comm.poll_wait(inbox, 10ms)) continue;
      for (const Envelope& env : inbox) {
        const int hop = unpack<int>(env.payload)[0];
        ++seen;
        if (hop + 1 < 2 * kHops) {
          std::this_thread::sleep_for(90ms);  // dwell past the threshold
          comm.send_item<int>(env.src, /*tag=*/1, hop + 1);
        }
      }
    }
  }));
}

// ---------------------------------------------------------------------------
// The regression this subsystem exists to catch: RRP without the
// flush-after-receive rule (docs/protocol.md §5). Every rank withholds its
// buffered responses until its own requests resolve — a circular wait the
// paper's rule exists to break. The checker must convert the hang into a
// diagnosable failure.
// ---------------------------------------------------------------------------

TEST(InvariantChecker, CatchesRrpDeadlockWhenFlushRuleDisabled) {
  PAGEN_REQUIRE_CHECKER();
  const ScopedStallThreshold fast("100");
  const PaConfig cfg{.n = 4000, .x = 1, .p = 0.5, .seed = 7};
  core::ParallelOptions opt;
  opt.ranks = 8;
  opt.scheme = partition::Scheme::kRrp;
  opt.flush_resolved_after_batch = false;  // the protocol bug under test
  // A huge buffer so capacity flushes can't accidentally break the cycle.
  opt.buffer_capacity = 1u << 20;
  try {
    (void)core::generate(cfg, opt);
    FAIL() << "RRP with the flush rule disabled should deadlock; did the "
              "resolution protocol change?";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("every rank is blocked"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace pagen::mps
