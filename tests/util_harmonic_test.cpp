#include "util/harmonic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pagen {
namespace {

TEST(Harmonic, SmallValuesExact) {
  const Harmonic h;
  EXPECT_DOUBLE_EQ(h(0), 0.0);
  EXPECT_DOUBLE_EQ(h(1), 1.0);
  EXPECT_DOUBLE_EQ(h(2), 1.5);
  EXPECT_DOUBLE_EQ(h(3), 1.5 + 1.0 / 3.0);
  EXPECT_NEAR(h(10), 2.9289682539682538, 1e-15);
}

TEST(Harmonic, MatchesDirectSumAtTableBoundary) {
  const Harmonic h(128);
  double direct = 0.0;
  for (int k = 1; k <= 500; ++k) {
    direct += 1.0 / k;
    EXPECT_NEAR(h(static_cast<std::uint64_t>(k)), direct, 1e-9)
        << "k=" << k << " crosses the table/asymptotic boundary";
  }
}

TEST(Harmonic, AsymptoticRegimeAccuracy) {
  const Harmonic h(16);
  // H_1e6 known to high precision.
  EXPECT_NEAR(h(1000000), 14.392726722865723, 1e-9);
}

TEST(Harmonic, MonotoneIncreasing) {
  const Harmonic h;
  double prev = h(1);
  for (std::uint64_t k : {2ull, 10ull, 100ull, 1000ull, 100000ull, 10000000ull}) {
    EXPECT_GT(h(k), prev);
    prev = h(k);
  }
}

TEST(Harmonic, PrefixSumIdentity) {
  // sum_{i<=k} H_i == (k+1) H_{k+1} - (k+1)  (Concrete Math Eq. 2.36).
  const Harmonic h;
  for (std::uint64_t k : {1ull, 5ull, 50ull, 500ull}) {
    double direct = 0.0;
    for (std::uint64_t i = 0; i <= k; ++i) direct += h(i);
    EXPECT_NEAR(h.prefix_sum(k), direct, 1e-9) << "k=" << k;
  }
}

TEST(Harmonic, GrowsLikeLogN) {
  const Harmonic h;
  // H_{10n} - H_n -> ln 10.
  EXPECT_NEAR(h(10000000) - h(1000000), std::log(10.0), 1e-6);
}

TEST(Harmonic, FreeFunctionMatchesClass) {
  const Harmonic h;
  EXPECT_DOUBLE_EQ(harmonic(12345), h(12345));
}

}  // namespace
}  // namespace pagen
