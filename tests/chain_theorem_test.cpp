// Empirical validation of Section 3.4: Lemma 3.1, Theorem 3.3 and the
// constant-p average bound E[L_t] <= 1/p.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/chain_tracer.h"
#include "util/error.h"
#include "util/stats.h"

namespace pagen::baseline {
namespace {

TEST(ChainTrace, SelectionChainEndsAtNodeOne) {
  const PaConfig cfg{.n = 10000, .x = 1, .p = 0.5, .seed = 8};
  const ChainTrace trace(cfg);
  for (NodeId t : {NodeId{2}, NodeId{777}, NodeId{9999}}) {
    const auto chain = trace.selection_chain(t);
    EXPECT_EQ(chain.front(), t);
    EXPECT_EQ(chain.back(), 1u);
    for (std::size_t i = 1; i < chain.size(); ++i) {
      EXPECT_LT(chain[i], chain[i - 1]) << "chains walk strictly backwards";
    }
  }
}

TEST(ChainTrace, DependencyIsPrefixOfSelection) {
  const PaConfig cfg{.n = 5000, .x = 1, .p = 0.5, .seed = 15};
  const ChainTrace trace(cfg);
  const auto dep = trace.dependency_lengths();
  const auto sel = trace.selection_lengths();
  for (NodeId t = 2; t < cfg.n; ++t) {
    EXPECT_LE(dep[t], sel[t]) << "|D_t| <= |S_t| by construction";
    EXPECT_GE(dep[t], 1u);
  }
}

TEST(ChainTrace, Lemma31MembershipProbabilityIsOneOverI) {
  // Pr{i in S_t} = 1/i for every 1 <= i < t (Lemma 3.1). Estimate over many
  // independent seeds for t = n-1 and a few probe nodes i.
  const NodeId n = 200;
  const int runs = 4000;
  const std::vector<NodeId> probes{2, 5, 10, 25};
  std::vector<int> hits(probes.size(), 0);
  for (int r = 0; r < runs; ++r) {
    const PaConfig cfg{.n = n, .x = 1, .p = 0.5,
                       .seed = static_cast<std::uint64_t>(r + 1)};
    const ChainTrace trace(cfg);
    const auto chain = trace.selection_chain(n - 1);
    for (std::size_t j = 0; j < probes.size(); ++j) {
      if (std::find(chain.begin(), chain.end(), probes[j]) != chain.end()) {
        ++hits[j];
      }
    }
  }
  for (std::size_t j = 0; j < probes.size(); ++j) {
    const double est = static_cast<double>(hits[j]) / runs;
    const double expected = 1.0 / static_cast<double>(probes[j]);
    // Binomial std error.
    const double sigma = std::sqrt(expected * (1 - expected) / runs);
    EXPECT_NEAR(est, expected, 5 * sigma) << "probe node i=" << probes[j];
  }
}

TEST(ChainTrace, Theorem33ExpectedLengthBelowLogN) {
  // E[L_t] <= log n. Average over all nodes of one large trace (the bound
  // holds per node; the average is far below it).
  const NodeId n = 100000;
  const PaConfig cfg{.n = n, .x = 1, .p = 0.5, .seed = 5};
  const ChainTrace trace(cfg);
  const auto dep = trace.dependency_lengths();
  double mean = 0.0;
  for (NodeId t = 2; t < n; ++t) mean += static_cast<double>(dep[t]);
  mean /= static_cast<double>(n - 2);
  EXPECT_LT(mean, std::log(static_cast<double>(n)));
}

TEST(ChainTrace, ConstantPAverageBoundedByOneOverP) {
  // For constant p the average dependency-chain length is at most ~1/p
  // (chain continues with probability 1-p at each hop => geometric with
  // mean 1/p). Check for several p.
  const NodeId n = 50000;
  for (double p : {0.3, 0.5, 0.7}) {
    const PaConfig cfg{.n = n, .x = 1, .p = p, .seed = 23};
    const ChainTrace trace(cfg);
    const auto dep = trace.dependency_lengths();
    double mean = 0.0;
    for (NodeId t = 2; t < n; ++t) mean += static_cast<double>(dep[t]);
    mean /= static_cast<double>(n - 2);
    EXPECT_LT(mean, 1.0 / p + 0.1) << "p=" << p;
    EXPECT_GT(mean, 0.5 / p) << "p=" << p << " (sanity: not degenerate)";
  }
}

TEST(ChainTrace, Theorem33MaxLengthIsLogarithmic) {
  // L_max = O(log n) w.h.p.: the theorem proves Pr{L >= 5 log n} <= 1/n^3.
  // Check max length stays below 5 ln n across sizes and seeds.
  for (NodeId n : {NodeId{1000}, NodeId{10000}, NodeId{100000}}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const PaConfig cfg{.n = n, .x = 1, .p = 0.5, .seed = seed};
      const ChainTrace trace(cfg);
      const auto dep = trace.dependency_lengths();
      const Count max_len = *std::max_element(dep.begin(), dep.end());
      EXPECT_LT(static_cast<double>(max_len),
                5.0 * std::log(static_cast<double>(n)))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ChainTrace, MaxChainGrowsSublinearly) {
  // Doubling n many times should grow the max chain roughly additively
  // (logarithmically), not multiplicatively.
  auto max_chain = [](NodeId n) {
    const PaConfig cfg{.n = n, .x = 1, .p = 0.5, .seed = 99};
    const auto dep = ChainTrace(cfg).dependency_lengths();
    return static_cast<double>(*std::max_element(dep.begin(), dep.end()));
  };
  const double at_10k = max_chain(10000);
  const double at_160k = max_chain(160000);
  EXPECT_LT(at_160k, 2.5 * at_10k)
      << "16x more nodes must not multiply the max chain";
}

TEST(ChainTrace, RequiresX1) {
  EXPECT_THROW(ChainTrace({.n = 100, .x = 2, .p = 0.5, .seed = 1}),
               CheckError);
}

}  // namespace
}  // namespace pagen::baseline
