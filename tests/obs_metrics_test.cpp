#include "obs/metrics.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "json_lint.h"
#include "mps/stats.h"
#include "obs/prom.h"
#include "obs/session.h"

namespace pagen::obs {
namespace {

using pagen::testing::JsonLint;

TEST(Counter, AddsAndMerges) {
  Counter a;
  EXPECT_EQ(a.value(), 0u);
  a.add();
  a.add(41);
  EXPECT_EQ(a.value(), 42u);
  Counter b;
  b.add(8);
  a += b;
  EXPECT_EQ(a.value(), 50u);
}

TEST(Gauge, TracksLastMinMaxSamples) {
  Gauge g;
  EXPECT_EQ(g.samples(), 0u);
  g.set(5);
  g.set(-2);
  g.set(9);
  EXPECT_EQ(g.samples(), 3u);
  EXPECT_EQ(g.last(), 9);
  EXPECT_EQ(g.min(), -2);
  EXPECT_EQ(g.max(), 9);
}

TEST(Gauge, MergeCombinesExtremaAndIgnoresEmpty) {
  Gauge a;
  a.set(4);
  Gauge empty;
  a += empty;
  EXPECT_EQ(a.samples(), 1u);
  EXPECT_EQ(a.min(), 4);

  Gauge b;
  b.set(-7);
  b.set(20);
  a += b;
  EXPECT_EQ(a.samples(), 3u);
  EXPECT_EQ(a.min(), -7);
  EXPECT_EQ(a.max(), 20);
  EXPECT_EQ(a.last(), 20);

  Gauge target;
  target += b;  // merge into empty adopts the source wholesale
  EXPECT_EQ(target.samples(), 2u);
  EXPECT_EQ(target.min(), -7);
}

TEST(Histogram, PowerOfTwoBucketsAndExactStats) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 206.0);

  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].upper, 0u);  // value 0
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].upper, 1u);  // value 1
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_EQ(buckets[2].upper, 3u);  // values 2, 3
  EXPECT_EQ(buckets[2].count, 2u);
  EXPECT_EQ(buckets[3].upper, 2047u);  // value 1024
  EXPECT_EQ(buckets[3].count, 1u);
}

TEST(Histogram, HandlesHugeValuesAndMerges) {
  Histogram a;
  a.observe(~std::uint64_t{0});  // top bucket must not overflow its bound
  const auto top = a.buckets();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].upper, ~std::uint64_t{0});

  Histogram b;
  b.observe(2);
  b.observe(100);
  a += b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 2u);
  EXPECT_EQ(a.max(), ~std::uint64_t{0});

  Histogram empty;
  empty += b;
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 2u);
  EXPECT_EQ(empty.max(), 100u);
}

TEST(Histogram, PercentilesAreDeterministicAndClamped) {
  // Heavily skewed: one 10 and a thousand 1000s. The median and tails all
  // land in the 1000s bucket [512, 1023]; interpolation stays inside it
  // and the result clamps to the exact observed [min, max].
  Histogram h;
  h.observe(10);
  for (int i = 0; i < 1000; ++i) h.observe(1000);
  EXPECT_GE(h.p50(), 512u);
  EXPECT_LE(h.p50(), 1000u);  // clamped to max
  EXPECT_GE(h.p95(), 512u);
  EXPECT_LE(h.p95(), 1000u);
  EXPECT_GE(h.p99(), h.p50());
  // Determinism: same bucket state, same answer.
  EXPECT_EQ(h.p95(), h.percentile(0.95));

  // Single value: every percentile is that value exactly.
  Histogram one;
  one.observe(77);
  EXPECT_EQ(one.p50(), 77u);
  EXPECT_EQ(one.p95(), 77u);
  EXPECT_EQ(one.p99(), 77u);

  // Empty histogram: defined zero, not UB.
  Histogram empty;
  EXPECT_EQ(empty.p50(), 0u);
  EXPECT_EQ(empty.p99(), 0u);

  // Uniform small values where buckets are exact (widths 0 and 1).
  Histogram exact;
  exact.observe(0);
  exact.observe(1);
  exact.observe(1);
  exact.observe(1);
  EXPECT_EQ(exact.p50(), 1u);
}

TEST(Histogram, PercentilesAreMonotoneInQ) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) {
    for (int i = 0; i < 16; ++i) h.observe(v);
  }
  std::uint64_t prev = 0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const std::uint64_t at = h.percentile(q);
    EXPECT_GE(at, prev) << "q " << q;
    prev = at;
  }
  EXPECT_LE(prev, h.max());
}

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  c.add(3);
  reg.counter("a.count").add(2);  // same instrument
  EXPECT_EQ(reg.counter("a.count").value(), 5u);
  reg.gauge("a.depth").set(7);
  reg.histogram("a.lat").observe(9);
  EXPECT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.gauges().size(), 1u);
  EXPECT_EQ(reg.histograms().size(), 1u);
}

TEST(MetricsRegistry, MultiRankMergeFollowsPerTypeSemantics) {
  MetricsRegistry r0, r1;
  r0.counter("msgs").add(10);
  r1.counter("msgs").add(32);
  r0.gauge("depth").set(3);
  r1.gauge("depth").set(8);
  r0.histogram("lat").observe(2);
  r1.histogram("lat").observe(1000);
  r1.counter("only_r1").add(1);

  MetricsRegistry total;
  total.merge(r0);
  total.merge(r1);
  EXPECT_EQ(total.counter("msgs").value(), 42u);     // counters sum
  EXPECT_EQ(total.counter("only_r1").value(), 1u);   // missing = 0
  EXPECT_EQ(total.gauge("depth").max(), 8);          // gauges take extrema
  EXPECT_EQ(total.gauge("depth").min(), 3);
  EXPECT_EQ(total.gauge("depth").samples(), 2u);
  EXPECT_EQ(total.histogram("lat").count(), 2u);     // histograms sum
  EXPECT_EQ(total.histogram("lat").max(), 1000u);
}

TEST(MetricsExport, ValidJsonWithDeterministicOrdering) {
  // Insert in different orders on the two ranks; export must sort by name
  // and be byte-identical across repeated exports.
  MetricsRegistry r0, r1;
  r0.counter("zeta").add(1);
  r0.counter("alpha").add(2);
  r1.counter("alpha").add(5);
  r1.counter("zeta").add(7);
  r0.gauge("mid").set(3);
  r1.histogram("lat").observe(4);

  std::ostringstream a, b;
  write_metrics_json(a, {&r0, &r1});
  write_metrics_json(b, {&r0, &r1});
  const std::string json = a.str();
  EXPECT_EQ(json, b.str());
  EXPECT_EQ(JsonLint::check(json), "");
  EXPECT_NE(json.find("\"schema\": \"pagen.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  // Totals merged: alpha = 2 + 5.
  EXPECT_NE(json.find("\"alpha\": 7"), std::string::npos);
}

TEST(MetricsExport, EmptyRegistriesStillProduceValidJson) {
  MetricsRegistry empty;
  std::ostringstream os;
  write_metrics_json(os, {&empty});
  EXPECT_EQ(JsonLint::check(os.str()), "");
}

TEST(MetricsExport, HistogramJsonCarriesPercentilesInSortedKeyOrder) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.observe(10);
  h.observe(100);
  h.observe(1000);

  std::ostringstream os;
  write_metrics_json(os, {&reg});
  const std::string json = os.str();
  EXPECT_EQ(JsonLint::check(json), "");
  EXPECT_NE(json.find("\"p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"p95\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  // Stable field order inside each histogram object: count, sum, min, max,
  // then percentiles, then buckets — consumers diff these files.
  EXPECT_LT(json.find("\"count\""), json.find("\"sum\""));
  EXPECT_LT(json.find("\"max\""), json.find("\"p50\""));
  EXPECT_LT(json.find("\"p50\""), json.find("\"p95\""));
  EXPECT_LT(json.find("\"p95\""), json.find("\"p99\""));
  EXPECT_LT(json.find("\"p99\""), json.find("\"buckets\""));
}

TEST(PrometheusExport, MapsInstrumentsToTextExposition) {
  MetricsRegistry reg;
  reg.counter("svc.submits").add(12);
  reg.gauge("svc.queue_depth").set(3);
  Histogram& lat = reg.histogram("svc.job_latency_ns");
  lat.observe(100);
  lat.observe(900);
  lat.observe(70000);

  std::ostringstream os;
  write_prometheus(os, reg);
  const std::string text = os.str();

  // Names: dots to underscores under a pagen_ prefix, with TYPE headers.
  EXPECT_NE(text.find("# TYPE pagen_svc_submits counter"), std::string::npos);
  EXPECT_NE(text.find("pagen_svc_submits 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pagen_svc_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("pagen_svc_queue_depth 3"), std::string::npos);
  // Histograms: cumulative le buckets closed by +Inf, then _sum/_count and
  // the percentile companion gauges.
  EXPECT_NE(text.find("# TYPE pagen_svc_job_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("pagen_svc_job_latency_ns_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("pagen_svc_job_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("pagen_svc_job_latency_ns_sum 71000"),
            std::string::npos);
  EXPECT_NE(text.find("pagen_svc_job_latency_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("pagen_svc_job_latency_ns_p50"), std::string::npos);
  EXPECT_NE(text.find("pagen_svc_job_latency_ns_p99"), std::string::npos);

  // Deterministic: two exports are byte-identical.
  std::ostringstream again;
  write_prometheus(again, reg);
  EXPECT_EQ(text, again.str());
}

TEST(PrometheusExport, BucketCountsAreCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.observe(1);   // bucket le=1
  h.observe(2);   // bucket le=3
  h.observe(3);   // bucket le=3
  std::ostringstream os;
  write_prometheus(os, reg);
  const std::string text = os.str();
  EXPECT_NE(text.find("pagen_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("pagen_lat_bucket{le=\"3\"} 3"), std::string::npos);
  EXPECT_NE(text.find("pagen_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
}

TEST(CommStatsExport, PerDestinationAndPerTagCountsLandInRegistry) {
  mps::CommStats s;
  s.envelopes_sent = 3;
  s.bytes_sent = 100;
  s.envelopes_to = {2, 0, 1};
  s.sent_by_tag[1] = 2;
  s.sent_by_tag[2] = 1;
  s.received_by_tag[2] = 4;

  MetricsRegistry reg;
  mps::record_metrics(reg, s);
  EXPECT_EQ(reg.counter("mps.envelopes_sent").value(), 3u);
  EXPECT_EQ(reg.counter("mps.envelopes_to.0000").value(), 2u);
  EXPECT_EQ(reg.counter("mps.envelopes_to.0002").value(), 1u);
  // Zero rows are skipped entirely.
  EXPECT_EQ(reg.counters().count("mps.envelopes_to.0001"), 0u);
  EXPECT_EQ(reg.counter("mps.sent_by_tag.1").value(), 2u);
  EXPECT_EQ(reg.counter("mps.received_by_tag.2").value(), 4u);
}

TEST(ObsIntegration, GenerateFillsLoadCommAndLatencyMetrics) {
  constexpr int kRanks = 4;
  Config cfg;
  cfg.enabled = true;
  Session session(kRanks, cfg);

  PaConfig pa;
  pa.n = 30000;
  pa.x = 2;
  pa.seed = 5;
  core::ParallelOptions opt;
  opt.ranks = kRanks;
  opt.gather_edges = false;
  opt.obs = &session;
  const auto result = core::generate(pa, opt);

  Count nodes = 0, edges = 0;
  for (int r = 0; r < kRanks; ++r) {
    MetricsRegistry& m = session.rank(r).metrics();
    nodes += m.counter("pa.nodes").value();
    edges += m.counter("pa.edges").value();
    // The runtime folded its CommStats in as well.
    EXPECT_GT(m.counter("mps.envelopes_sent").value(), 0u) << "rank " << r;
    EXPECT_GT(m.gauge("mps.mailbox_depth").samples(), 0u) << "rank " << r;
  }
  EXPECT_EQ(nodes, pa.n);
  EXPECT_EQ(edges, result.total_edges);

  // Cross-rank traffic existed, so somebody measured a chain resolution.
  Count chain_obs = 0;
  for (int r = 0; r < kRanks; ++r) {
    chain_obs += session.rank(r).metrics().histogram("pa.chain_latency_ns").count();
  }
  EXPECT_GT(chain_obs, 0u);

  std::ostringstream os;
  session.write_metrics(os);
  EXPECT_EQ(JsonLint::check(os.str()), "");
}

TEST(ObsIntegration, MetricsAgreeWithRankLoadsAndMergeHelper) {
  constexpr int kRanks = 3;
  Config cfg;
  cfg.enabled = true;
  Session session(kRanks, cfg);

  PaConfig pa;
  pa.n = 12000;
  pa.x = 1;
  pa.seed = 9;
  core::ParallelOptions opt;
  opt.ranks = kRanks;
  opt.gather_edges = false;
  opt.obs = &session;
  const auto result = core::generate(pa, opt);

  const core::RankLoad total = core::merge_across_ranks(result.loads);
  EXPECT_EQ(total.nodes, pa.n);
  EXPECT_EQ(total.edges, result.total_edges);
  // max_queue_depth reduces by max, not sum.
  Count max_depth = 0;
  for (const core::RankLoad& l : result.loads) {
    max_depth = std::max(max_depth, l.max_queue_depth);
  }
  EXPECT_EQ(total.max_queue_depth, max_depth);

  for (int r = 0; r < kRanks; ++r) {
    MetricsRegistry& m = session.rank(r).metrics();
    const core::RankLoad& l = result.loads[static_cast<std::size_t>(r)];
    EXPECT_EQ(m.counter("pa.nodes").value(), l.nodes);
    EXPECT_EQ(m.counter("pa.requests_sent").value(), l.requests_sent);
    EXPECT_EQ(m.counter("pa.edges").value(), l.edges);
    EXPECT_EQ(
        static_cast<Count>(m.gauge("pa.max_queue_depth").max()),
        l.max_queue_depth);
  }
}

}  // namespace
}  // namespace pagen::obs
