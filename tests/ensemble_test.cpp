#include "analysis/ensemble.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen::analysis {
namespace {

TEST(Ensemble, CollectsOneEntryPerReplica) {
  const PaConfig cfg{.n = 4000, .x = 3, .p = 0.5, .seed = 100};
  core::ParallelOptions opt;
  opt.ranks = 4;
  const auto result = run_ensemble(cfg, opt, 5);
  ASSERT_EQ(result.replicas.size(), 5u);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(result.replicas[static_cast<std::size_t>(r)].seed,
              100u + static_cast<std::uint64_t>(r));
    EXPECT_EQ(result.replicas[static_cast<std::size_t>(r)].edges,
              expected_edge_count(cfg));
    EXPECT_EQ(result.replicas[static_cast<std::size_t>(r)].components, 1u);
  }
}

TEST(Ensemble, ReplicasActuallyDiffer) {
  const PaConfig cfg{.n = 4000, .x = 3, .p = 0.5, .seed = 7};
  core::ParallelOptions opt;
  opt.ranks = 4;
  const auto result = run_ensemble(cfg, opt, 4);
  // Hub degrees fluctuate across seeds; identical values would mean the
  // seeds are not being varied.
  EXPECT_GT(result.max_degree.stddev, 0.0);
}

TEST(Ensemble, SummariesAggregateReplicas) {
  const PaConfig cfg{.n = 20000, .x = 4, .p = 0.5, .seed = 50};
  core::ParallelOptions opt;
  opt.ranks = 6;
  const auto result = run_ensemble(cfg, opt, 6);
  EXPECT_EQ(result.gamma.count, 6u);
  EXPECT_NEAR(result.gamma.mean, 2.75, 0.3);
  EXPECT_LT(result.gamma.stddev, 0.2) << "exponent is stable across seeds";
  EXPECT_LT(result.assortativity.mean, 0.0) << "PA is disassortative";
}

TEST(Ensemble, DeterministicAcrossRuns) {
  // x = 1: bitwise deterministic for any rank count (for x > 1 retry order
  // is scheduling-dependent, so per-replica hubs may wobble run-to-run).
  const PaConfig cfg{.n = 3000, .x = 1, .p = 0.5, .seed = 9};
  core::ParallelOptions opt;
  opt.ranks = 3;
  const auto a = run_ensemble(cfg, opt, 3);
  const auto b = run_ensemble(cfg, opt, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(a.replicas[r].max_degree, b.replicas[r].max_degree);
  }
}

TEST(Ensemble, RejectsZeroReplicas) {
  const PaConfig cfg{.n = 100, .x = 1, .p = 0.5, .seed = 1};
  core::ParallelOptions opt;
  opt.ranks = 1;
  EXPECT_THROW(run_ensemble(cfg, opt, 0), CheckError);
}

}  // namespace
}  // namespace pagen::analysis
