#include "graph/csr.h"

#include <gtest/gtest.h>

namespace pagen::graph {
namespace {

// Small fixed graph: a triangle 0-1-2 with a pendant 3 off node 2 and an
// isolated node 4.
EdgeList test_edges() { return {{0, 1}, {1, 2}, {2, 0}, {2, 3}}; }

TEST(Csr, CountsAndDegrees) {
  const CsrGraph g(test_edges(), 5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(Csr, NeighborsSortedBothDirections) {
  const CsrGraph g(test_edges(), 5);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 3u);
}

TEST(Csr, HasEdgeSymmetric) {
  const CsrGraph g(test_edges(), 5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(4, 0));
}

TEST(Csr, MaxDegreeNode) {
  const CsrGraph g(test_edges(), 5);
  EXPECT_EQ(g.max_degree_node(), 2u);
}

TEST(Csr, MaxDegreeTieGoesToSmallestId) {
  const EdgeList e{{0, 1}, {2, 3}};
  const CsrGraph g(e, 4);
  EXPECT_EQ(g.max_degree_node(), 0u);
}

TEST(Csr, BfsDistances) {
  const CsrGraph g(test_edges(), 5);
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_EQ(dist[4], kNil) << "unreachable node";
}

TEST(Csr, EmptyGraph) {
  const CsrGraph g({}, 3);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.neighbors(1).empty());
}

TEST(Csr, StarGraphDegrees) {
  EdgeList star;
  for (NodeId leaf = 1; leaf <= 10; ++leaf) star.push_back({0, leaf});
  const CsrGraph g(star, 11);
  EXPECT_EQ(g.degree(0), 10u);
  for (NodeId leaf = 1; leaf <= 10; ++leaf) EXPECT_EQ(g.degree(leaf), 1u);
  EXPECT_EQ(g.max_degree_node(), 0u);
}

}  // namespace
}  // namespace pagen::graph
