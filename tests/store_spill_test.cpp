// External-memory spill tests (docs/storage.md §5): the ExternalArray
// paging primitive, and the commfree engine's guarantee that spilling its
// derivation state to disk is a pure memory optimization — the emitted
// edge set is identical with and without spill, at x = 1 (bounded memo)
// and x > 1 (paged completed rows), under budgets tiny enough to force
// heavy eviction.
#include "store/ext_array.h"

#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/generate.h"
#include "util/error.h"

namespace pagen::store {
namespace {

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pagen_spill_" + std::to_string(counter_++)))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  static int counter_;
};
int SpillTest::counter_ = 0;

TEST_F(SpillTest, FillValueReadsWithoutWrites) {
  ExternalArray<std::uint64_t> a(dir_ + "/a.spill", 100000, 42,
                                 /*budget_bytes=*/1 << 20);
  EXPECT_EQ(a.size(), 100000u);
  EXPECT_EQ(a.get(0), 42u);
  EXPECT_EQ(a.get(99999), 42u);
}

TEST_F(SpillTest, ValuesSurviveEvictionUnderOnePageBudget) {
  // budget < one page => max_pages clamps to 1: every page switch evicts.
  ExternalArray<std::uint64_t> a(dir_ + "/a.spill", 1 << 16, 0,
                                 /*budget_bytes=*/1);
  EXPECT_EQ(a.cached_pages(), 0u);
  for (std::uint64_t i = 0; i < a.size(); i += 997) {
    a.set(i, i * 3 + 1);
  }
  for (std::uint64_t i = 0; i < a.size(); i += 997) {
    EXPECT_EQ(a.get(i), i * 3 + 1);
  }
  // Untouched slots still read the fill value after all that paging.
  EXPECT_EQ(a.get(998), 0u);
  EXPECT_GT(a.page_faults(), 0u);
  EXPECT_GT(a.pages_spilled(), 0u);
  EXPECT_EQ(a.cached_pages(), 1u);
}

TEST_F(SpillTest, SparseIndexSpaceCostsOnlyTouchedPages) {
  // A huge index space with a few touched slots: the cache holds the two
  // touched pages, nothing else is ever materialized.
  ExternalArray<std::uint32_t> a(dir_ + "/sparse.spill",
                                 std::uint64_t{1} << 32, 7,
                                 /*budget_bytes=*/1 << 20);
  a.set(0, 1);
  a.set((std::uint64_t{1} << 32) - 1, 2);
  EXPECT_EQ(a.get(0), 1u);
  EXPECT_EQ(a.get((std::uint64_t{1} << 32) - 1), 2u);
  EXPECT_EQ(a.get(std::uint64_t{1} << 31), 7u);
  EXPECT_LE(a.cached_pages(), 3u);
}

TEST_F(SpillTest, OutOfRangeIndexRejected) {
  ExternalArray<std::uint32_t> a(dir_ + "/r.spill", 10, 0, 1 << 16);
  EXPECT_THROW((void)a.get(10), CheckError);
  EXPECT_THROW(a.set(10, 1), CheckError);
}

graph::EdgeList normalized(graph::EdgeList edges) {
  graph::normalize(edges);
  return edges;
}

core::ParallelOptions commfree_options(int ranks) {
  core::ParallelOptions opt;
  opt.engine = "commfree";
  opt.ranks = ranks;
  opt.gather_edges = true;
  return opt;
}

TEST_F(SpillTest, CommfreeSpillIsOutputIdenticalAtXOne) {
  PaConfig cfg;
  cfg.n = 4000;
  cfg.x = 1;
  cfg.seed = 23;
  const auto baseline = core::generate(cfg, commfree_options(2));

  core::ParallelOptions spilled = commfree_options(2);
  spilled.spill_dir = dir_;
  spilled.spill_budget_bytes = 1 << 12;  // bounded memo far below n slots
  const auto with_spill = core::generate(cfg, spilled);

  EXPECT_EQ(normalized(with_spill.edges), normalized(baseline.edges));
  EXPECT_EQ(with_spill.targets, baseline.targets);
}

TEST_F(SpillTest, CommfreeSpillIsOutputIdenticalAtXFour) {
  PaConfig cfg;
  cfg.n = 1500;
  cfg.x = 4;
  cfg.seed = 29;
  const auto baseline = core::generate(cfg, commfree_options(3));

  core::ParallelOptions spilled = commfree_options(3);
  spilled.spill_dir = dir_;
  spilled.spill_budget_bytes = 1;  // one cached page: maximal eviction
  const auto with_spill = core::generate(cfg, spilled);

  EXPECT_EQ(normalized(with_spill.edges), normalized(baseline.edges));
  // Spill files are per rank and must actually exist.
  int spill_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    spill_files += entry.path().extension() == ".spill" ? 1 : 0;
  }
  EXPECT_EQ(spill_files, 3);
}

TEST_F(SpillTest, SpillRejectedOnEnginesWithoutTheCapability) {
  PaConfig cfg;
  cfg.n = 200;
  cfg.x = 1;
  core::ParallelOptions opt;
  opt.engine = "mps";
  opt.ranks = 2;
  opt.spill_dir = dir_;
  EXPECT_THROW((void)core::generate(cfg, opt), CheckError)
      << "only engines advertising state_spill may take spill_dir";
}

}  // namespace
}  // namespace pagen::store
