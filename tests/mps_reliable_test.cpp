// Reliable-delivery layer (mps/reliable.h): ack/retransmit/dedup semantics
// and the poll_wait edge cases the fault tests depend on.
#include "mps/reliable.h"

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mps/engine.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::mps {
namespace {

using namespace std::chrono_literals;

WorldOptions reliable_options() {
  WorldOptions o;
  o.reliable = true;
  return o;
}

TEST(Reliable, InOrderExactlyOnceWithoutFaults) {
  run_ranks(2, reliable_options(), [](Comm& comm) {
    constexpr std::uint64_t kMessages = 200;
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < kMessages; ++i) {
        comm.send_item<std::uint64_t>(1, 1, i);
      }
    } else {
      std::vector<Envelope> in;
      while (in.size() < kMessages) {
        (void)comm.poll_wait(in, 100ms);
      }
      ASSERT_EQ(in.size(), kMessages);
      for (std::uint64_t i = 0; i < kMessages; ++i) {
        EXPECT_EQ(in[i].src, 0);
        EXPECT_EQ(in[i].seq, i);
        EXPECT_EQ(unpack<std::uint64_t>(in[i].payload)[0], i);
      }
    }
    comm.barrier();
  });
}

TEST(Reliable, AcksFlowAndLogicalVolumesStaySymmetric) {
  const RunResult r = run_ranks(4, reliable_options(), [](Comm& comm) {
    for (Rank dst = 0; dst < comm.size(); ++dst) {
      if (dst != comm.rank()) comm.send_item<std::uint64_t>(dst, 1, 7);
    }
    std::vector<Envelope> in;
    while (in.size() < 3u) (void)comm.poll_wait(in, 100ms);
    comm.barrier();
  });
  CommStats world;
  for (const CommStats& s : r.rank_stats) world += s;
  // Logical volumes balance exactly; acks ride the control path and are
  // counted separately (some may still be in a mailbox at teardown).
  EXPECT_EQ(world.envelopes_sent, world.envelopes_received);
  EXPECT_EQ(world.bytes_sent, world.bytes_received);
  EXPECT_EQ(world.envelopes_sent, 12u);
  EXPECT_GT(world.acks_sent, 0u);
  EXPECT_LE(world.acks_received, world.acks_sent);
  EXPECT_EQ(world.injected_drops, 0u);
  EXPECT_EQ(world.injected_dups, 0u);
}

TEST(Reliable, PollWaitZeroTimeoutIsOneNonBlockingAttempt) {
  run_ranks(2, reliable_options(), [](Comm& comm) {
    std::vector<Envelope> in;
    const std::int64_t start = now_ns();
    EXPECT_FALSE(comm.poll_wait(in, 0ms));
    EXPECT_TRUE(in.empty());
    // One attempt, no sleep: far below even a single retransmit chunk.
    EXPECT_LT(now_ns() - start, 1'000'000'000);
    comm.barrier();
  });
}

TEST(Reliable, PollWaitTimeoutExpiresOnEmptyMailbox) {
  run_ranks(1, reliable_options(), [](Comm& comm) {
    std::vector<Envelope> in;
    const std::int64_t start = now_ns();
    EXPECT_FALSE(comm.poll_wait(in, 60ms));
    EXPECT_TRUE(in.empty());
    // The chunked reliable wait must still honor the full timeout.
    EXPECT_GE(now_ns() - start, 50'000'000);
  });
}

TEST(Reliable, WakeupWithOnlyDuplicatesIsNotProgress) {
  // Drive World/Comm directly (single thread) so a duplicate can be planted
  // in the mailbox: a retransmission of an already-delivered envelope must
  // be dedup-filtered, and a poll_wait woken only by it must report false.
  World world(2, reliable_options());
  Comm sender(world, 0);
  Comm receiver(world, 1);

  std::vector<std::byte> payload;
  pack_one<std::uint64_t>(payload, 42);
  sender.send_bytes(1, 7, payload);

  std::vector<Envelope> in;
  ASSERT_TRUE(receiver.poll(in));
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].seq, 0u);

  // Replay the same physical envelope (attempt 1 = retransmission copy).
  world.invariants().on_phantom_send(0);
  world.deliver(1, Envelope{0, 7, payload, 0, 0, 0, {}}, 1, sender.stats());
  in.clear();
  EXPECT_FALSE(receiver.poll_wait(in, 20ms));
  EXPECT_TRUE(in.empty());
  EXPECT_GE(receiver.stats().duplicates_dropped, 1u);
  // The logical receive count is unchanged by the duplicate.
  EXPECT_EQ(receiver.stats().envelopes_received, 1u);
}

TEST(Reliable, RetransmissionRecoversFromUnackedLoss) {
  // Plant a drop by hand: send while the receiver's mailbox is swallowed
  // via a drop-all plan? Simpler: use the injector path with drop = 1 is a
  // livelock, so instead verify the timer fires by never polling on the
  // receiver until after the RTO has elapsed — the retransmit counter must
  // stay 0 (delivery succeeded, ack just late) or the dedup counter must
  // absorb every extra copy. Either way the receiver sees the payload once.
  WorldOptions o = reliable_options();
  o.rto_base_ms = 10;
  const RunResult r = run_ranks(2, o, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_item<std::uint64_t>(1, 1, 99);
      // Poll so the retransmission timer is serviced well past the RTO.
      std::vector<Envelope> in;
      const std::int64_t start = now_ns();
      while (now_ns() - start < 40'000'000) (void)comm.poll_wait(in, 5ms);
    } else {
      std::this_thread::sleep_for(30ms);
      std::vector<Envelope> in;
      while (in.empty()) (void)comm.poll_wait(in, 100ms);
      ASSERT_EQ(in.size(), 1u);
      EXPECT_EQ(unpack<std::uint64_t>(in[0].payload)[0], 99u);
    }
    comm.barrier();
  });
  CommStats world;
  for (const CommStats& s : r.rank_stats) world += s;
  // Every physical extra copy the timer produced was dedup-filtered.
  EXPECT_EQ(world.duplicates_dropped, world.retransmits);
  EXPECT_EQ(world.envelopes_received, world.envelopes_sent);
}

TEST(Reliable, RankFailureUnwindsBlockedReliableWaiters) {
  // Abort drain-safety under the reliable path: a rank death must translate
  // into WorldAborted inside reliable poll_wait loops, not a hang.
  bool observed = false;
  try {
    run_ranks(3, reliable_options(), [](Comm& comm) {
      if (comm.rank() == 0) {
        std::this_thread::sleep_for(20ms);
        throw std::runtime_error("rank 0 died");
      }
      std::vector<Envelope> in;
      for (;;) (void)comm.poll_wait(in, 50ms);
    });
  } catch (const std::runtime_error&) {
    observed = true;  // root cause preferred over WorldAborted
  }
  EXPECT_TRUE(observed);
}

TEST(Reliable, SendFastFailsAfterAbort) {
  // A send-only loop (never polling) must unwind via WorldAborted once a
  // peer has died, instead of pumping envelopes at the deceased.
  bool observed = false;
  try {
    run_ranks(2, reliable_options(), [](Comm& comm) {
      if (comm.rank() == 0) throw std::runtime_error("rank 0 died");
      for (std::uint64_t i = 0;; ++i) {
        comm.send_item<std::uint64_t>(0, 1, i);
      }
    });
  } catch (const std::runtime_error&) {
    observed = true;
  }
  EXPECT_TRUE(observed);
}

}  // namespace
}  // namespace pagen::mps
