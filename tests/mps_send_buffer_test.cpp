#include "mps/send_buffer.h"

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "mps/engine.h"

namespace pagen::mps {
namespace {

using namespace std::chrono_literals;

struct Item {
  std::uint64_t v;

  friend bool operator==(const Item&, const Item&) = default;
};

TEST(SendBuffer, HoldsItemsBelowCapacity) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      SendBuffer<Item> buf(comm, 1, 10);
      buf.add(1, {1});
      buf.add(1, {2});
      EXPECT_EQ(comm.stats().envelopes_sent, 0u)
          << "nothing should be sent before capacity or flush";
      EXPECT_FALSE(buf.empty());
      buf.flush_all();
      EXPECT_TRUE(buf.empty());
      EXPECT_EQ(comm.stats().envelopes_sent, 1u) << "one combined envelope";
    } else {
      std::vector<Envelope> in;
      while (!comm.poll_wait(in, 100ms)) {
      }
      ASSERT_EQ(in.size(), 1u);
      const auto items = unpack<Item>(in[0].payload);
      EXPECT_EQ(items, (std::vector<Item>{{1}, {2}}));
    }
    comm.barrier();
  });
}

TEST(SendBuffer, AutoFlushAtCapacity) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      SendBuffer<Item> buf(comm, 1, 3);
      for (std::uint64_t i = 0; i < 7; ++i) buf.add(1, {i});
      EXPECT_EQ(comm.stats().envelopes_sent, 2u) << "two full batches of 3";
      EXPECT_EQ(buf.flushes(), 2u);
      EXPECT_EQ(buf.items_added(), 7u);
      buf.flush_all();
      EXPECT_EQ(comm.stats().envelopes_sent, 3u);
    } else {
      std::vector<Envelope> in;
      std::vector<Item> got;
      while (got.size() < 7) {
        in.clear();
        if (comm.poll_wait(in, 100ms)) {
          for (const auto& env : in) {
            for (Item it : unpack<Item>(env.payload)) got.push_back(it);
          }
        }
      }
      for (std::uint64_t i = 0; i < 7; ++i) EXPECT_EQ(got[i].v, i);
    }
    comm.barrier();
  });
}

TEST(SendBuffer, CapacityOneDisablesAggregation) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      SendBuffer<Item> buf(comm, 1, 1);
      buf.add(1, {1});
      buf.add(1, {2});
      EXPECT_EQ(comm.stats().envelopes_sent, 2u);
    } else {
      std::vector<Envelope> in;
      while (in.size() < 2) comm.poll_wait(in, 100ms);
    }
    comm.barrier();
  });
}

TEST(SendBuffer, FlushOfEmptyDestinationIsNoop) {
  run_ranks(2, [](Comm& comm) {
    SendBuffer<Item> buf(comm, 1, 4);
    buf.flush_all();
    EXPECT_EQ(comm.stats().envelopes_sent, 0u);
    comm.barrier();
  });
}

TEST(SendBuffer, SeparateBuffersPerDestination) {
  run_ranks(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      SendBuffer<Item> buf(comm, 1, 10);
      buf.add(1, {11});
      buf.add(2, {22});
      buf.flush_all();
      EXPECT_EQ(comm.stats().envelopes_sent, 2u);
    } else {
      std::vector<Envelope> in;
      while (!comm.poll_wait(in, 100ms)) {
      }
      const auto items = unpack<Item>(in[0].payload);
      ASSERT_EQ(items.size(), 1u);
      EXPECT_EQ(items[0].v, comm.rank() == 1 ? 11u : 22u);
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pagen::mps
