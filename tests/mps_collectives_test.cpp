#include "mps/collectives.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mps/engine.h"

namespace pagen::mps {
namespace {

TEST(Collectives, SingleRankExchange) {
  CollectiveContext ctx(1);
  std::vector<std::byte> in;
  pack_one<std::uint64_t>(in, 5);
  const auto all = ctx.exchange(0, in);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(unpack<std::uint64_t>(all[0])[0], 5u);
}

TEST(Collectives, ExchangeDeliversAllToAll) {
  constexpr int kRanks = 8;
  CollectiveContext ctx(kRanks);
  std::vector<std::thread> threads;
  std::vector<int> failures(kRanks, 0);
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<std::byte> in;
      pack_one<std::uint64_t>(in, static_cast<std::uint64_t>(r * 10));
      const auto all = ctx.exchange(r, in);
      for (int j = 0; j < kRanks; ++j) {
        if (unpack<std::uint64_t>(all[static_cast<std::size_t>(j)])[0] !=
            static_cast<std::uint64_t>(j * 10)) {
          failures[r] = 1;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(std::accumulate(failures.begin(), failures.end(), 0), 0);
}

TEST(Collectives, RepeatedRoundsDoNotCrossContaminate) {
  constexpr int kRanks = 4;
  constexpr int kRounds = 200;
  CollectiveContext ctx(kRanks);
  std::vector<std::thread> threads;
  std::vector<int> failures(kRanks, 0);
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        std::vector<std::byte> in;
        pack_one<std::uint64_t>(in, round * 100 + static_cast<std::uint64_t>(r));
        const auto all = ctx.exchange(r, in);
        for (int j = 0; j < kRanks; ++j) {
          if (unpack<std::uint64_t>(all[static_cast<std::size_t>(j)])[0] !=
              round * 100 + static_cast<std::uint64_t>(j)) {
            failures[r] = 1;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(std::accumulate(failures.begin(), failures.end(), 0), 0);
}

TEST(Collectives, PoisonUnblocksWaiters) {
  CollectiveContext ctx(2);
  std::thread waiter([&] {
    EXPECT_THROW((void)ctx.exchange(0, {}), WorldAborted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ctx.poison();
  waiter.join();
  // Future calls also refuse.
  EXPECT_THROW((void)ctx.exchange(1, {}), WorldAborted);
}

TEST(CommCollectives, AllreduceSumAndMax) {
  run_ranks(6, [](Comm& comm) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    EXPECT_EQ(comm.allreduce_sum(r), 15u);  // 0+..+5
    EXPECT_EQ(comm.allreduce_max(r), 5u);
  });
}

TEST(CommCollectives, AllreduceSumDouble) {
  run_ranks(4, [](Comm& comm) {
    const double v = 0.5 * (comm.rank() + 1);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum_double(v), 0.5 + 1.0 + 1.5 + 2.0);
  });
}

TEST(CommCollectives, AllgatherOrderedByRank) {
  run_ranks(5, [](Comm& comm) {
    const auto all = comm.allgather(static_cast<std::uint64_t>(comm.rank()) * 7);
    ASSERT_EQ(all.size(), 5u);
    for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(all[j], j * 7);
  });
}

TEST(CommCollectives, BroadcastFromNonzeroRoot) {
  run_ranks(4, [](Comm& comm) {
    const std::uint64_t mine = comm.rank() == 2 ? 777u : 0u;
    EXPECT_EQ(comm.broadcast(mine, 2), 777u);
  });
}

TEST(CommCollectives, BarrierOrdersPhases) {
  // Without the barrier the late ranks could observe phase==0.
  std::atomic<int> phase{0};
  run_ranks(4, [&](Comm& comm) {
    if (comm.rank() == 0) phase.store(1);
    comm.barrier();
    EXPECT_EQ(phase.load(), 1);
  });
}

TEST(CommCollectives, StatsCountCollectives) {
  run_ranks(3, [](Comm& comm) {
    comm.barrier();
    (void)comm.allreduce_sum(1);
    EXPECT_EQ(comm.stats().collectives, 2u);
  });
}

}  // namespace
}  // namespace pagen::mps
