#include "core/distributed_degree.h"

#include <gtest/gtest.h>

#include "analysis/degree_dist.h"
#include "core/generate.h"
#include "graph/edge_list.h"

namespace pagen::core {
namespace {

using partition::Scheme;

// Reference: centralized degree distribution of the gathered edges.
DegreeHistogram reference_histogram(const graph::EdgeList& edges, NodeId n) {
  const auto deg = graph::degree_sequence(edges, n);
  const auto dist = analysis::degree_distribution(deg);
  DegreeHistogram out;
  for (const auto& p : dist) out.emplace_back(p.degree, p.count);
  return out;
}

class DistributedDegree : public ::testing::TestWithParam<Scheme> {};

TEST_P(DistributedDegree, MatchesCentralizedComputation) {
  const PaConfig cfg{.n = 20000, .x = 4, .p = 0.5, .seed = 77};
  ParallelOptions opt;
  opt.ranks = 8;
  opt.scheme = GetParam();
  opt.keep_shards = true;
  const auto result = generate(cfg, opt);
  ASSERT_EQ(result.shards.size(), 8u);

  const auto distributed =
      distributed_degree_distribution(result.shards, cfg.n, opt.scheme);
  EXPECT_EQ(distributed, reference_histogram(result.edges, cfg.n));
}

INSTANTIATE_TEST_SUITE_P(Schemes, DistributedDegree,
                         ::testing::Values(Scheme::kUcp, Scheme::kLcp,
                                           Scheme::kRrp),
                         [](const ::testing::TestParamInfo<Scheme>& param_info) {
                           return partition::to_string(param_info.param);
                         });

TEST(DistributedDegreeBasic, SingleRankWorld) {
  const PaConfig cfg{.n = 1000, .x = 1, .p = 0.5, .seed = 3};
  ParallelOptions opt;
  opt.ranks = 1;
  opt.keep_shards = true;
  const auto result = generate(cfg, opt);
  const auto hist = distributed_degree_distribution(result.shards, cfg.n,
                                                    opt.scheme);
  EXPECT_EQ(hist, reference_histogram(result.edges, cfg.n));
}

TEST(DistributedDegreeBasic, TotalNodesAccountedFor) {
  const PaConfig cfg{.n = 30000, .x = 2, .p = 0.5, .seed = 5};
  ParallelOptions opt;
  opt.ranks = 16;
  opt.scheme = Scheme::kRrp;
  opt.keep_shards = true;
  opt.gather_edges = false;  // the point: no central edge list needed
  const auto result = generate(cfg, opt);
  const auto hist = distributed_degree_distribution(result.shards, cfg.n,
                                                    opt.scheme);
  Count nodes = 0;
  Count degree_mass = 0;
  for (const auto& [degree, count] : hist) {
    nodes += count;
    degree_mass += degree * count;
  }
  EXPECT_EQ(nodes, cfg.n);
  EXPECT_EQ(degree_mass, 2 * result.total_edges);
}

TEST(DistributedDegreeBasic, KeepShardsWithGatherAgrees) {
  const PaConfig cfg{.n = 5000, .x = 3, .p = 0.5, .seed = 9};
  ParallelOptions opt;
  opt.ranks = 5;
  opt.keep_shards = true;
  const auto result = generate(cfg, opt);
  Count shard_total = 0;
  for (const auto& shard : result.shards) shard_total += shard.size();
  EXPECT_EQ(shard_total, result.edges.size())
      << "shards and gathered list must describe the same edges";
}

}  // namespace
}  // namespace pagen::core
