// Checkpoint file integrity (docs/robustness.md §6): the v2 format seals
// the payload with an FNV-1a trailer verified before parsing, so every
// torn, truncated, extended, or bit-flipped file raises CheckError instead
// of silently restoring garbage state into a resuming rank.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "graph/varint_io.h"
#include "util/error.h"
#include "util/types.h"

namespace pagen::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = (std::filesystem::temp_directory_path() /
            ("pagen_ckpt_test_" + std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

RankCheckpoint sample() {
  RankCheckpoint ck;
  ck.n = 64;
  ck.x = 2;
  ck.seed = 7;
  ck.rank = 1;
  ck.nranks = 4;
  ck.f = {3, kNil, 7, 0, 41, kNil, 2, 9};
  ck.attempts = {0, 1, 2, 0, 3, 0, 1, 1};
  ck.locked_copy = {0, 0, 1, 0, 1, 0, 0, 1};
  return ck;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(CheckpointTest, Roundtrip) {
  const RankCheckpoint ck = sample();
  save_checkpoint(dir_, ck);
  RankCheckpoint out;
  ASSERT_TRUE(load_checkpoint(dir_, ck.rank, out));
  EXPECT_EQ(out.n, ck.n);
  EXPECT_EQ(out.x, ck.x);
  EXPECT_EQ(out.seed, ck.seed);
  EXPECT_EQ(out.rank, ck.rank);
  EXPECT_EQ(out.nranks, ck.nranks);
  EXPECT_EQ(out.f, ck.f);
  EXPECT_EQ(out.attempts, ck.attempts);
  EXPECT_EQ(out.locked_copy, ck.locked_copy);
}

TEST_F(CheckpointTest, MissingFileIsFalseNotAnError) {
  RankCheckpoint out;
  EXPECT_FALSE(load_checkpoint(dir_, /*rank=*/3, out));
}

TEST_F(CheckpointTest, EveryTruncationRaisesNeverRestoresGarbage) {
  const RankCheckpoint ck = sample();
  save_checkpoint(dir_, ck);
  const std::string path = checkpoint_path(dir_, ck.rank);
  const std::vector<char> full = read_file(path);
  ASSERT_GT(full.size(), 16u);

  // Truncating at any length — including mid-varint, mid-magic, and inside
  // the checksum trailer itself — must raise, never quietly succeed with a
  // partial restore.
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_file(path, {full.begin(), full.begin() + len});
    RankCheckpoint out;
    EXPECT_THROW((void)load_checkpoint(dir_, ck.rank, out), CheckError)
        << "silent acceptance at truncation length " << len;
  }
}

TEST_F(CheckpointTest, EveryBitflipRaises) {
  const RankCheckpoint ck = sample();
  save_checkpoint(dir_, ck);
  const std::string path = checkpoint_path(dir_, ck.rank);
  const std::vector<char> full = read_file(path);

  for (std::size_t i = 0; i < full.size(); ++i) {
    std::vector<char> bytes = full;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x04);
    write_file(path, bytes);
    RankCheckpoint out;
    EXPECT_THROW((void)load_checkpoint(dir_, ck.rank, out), CheckError)
        << "bitflip at byte " << i << " restored silently";
  }
}

TEST_F(CheckpointTest, TrailingJunkRaises) {
  const RankCheckpoint ck = sample();
  save_checkpoint(dir_, ck);
  const std::string path = checkpoint_path(dir_, ck.rank);
  std::vector<char> bytes = read_file(path);
  bytes.push_back('\0');
  write_file(path, bytes);
  RankCheckpoint out;
  EXPECT_THROW((void)load_checkpoint(dir_, ck.rank, out), CheckError);
}

TEST_F(CheckpointTest, OverlongElementCountRaisesNotAllocates) {
  // A forged payload whose f-count varint claims 2^40 elements with no bytes
  // behind it must raise (counts are bounded by the remaining payload), not
  // attempt a terabyte allocation. Correctly sealed on purpose, so only the
  // count check can reject it.
  constexpr std::uint64_t kMagic = 0x7061676e636b7032ULL;
  std::vector<std::uint8_t> buf;
  graph::put_varint(buf, kMagic);
  graph::put_varint(buf, 64);              // n
  graph::put_varint(buf, 1);               // x
  graph::put_varint(buf, 7);               // seed
  graph::put_varint(buf, 0);               // rank
  graph::put_varint(buf, 2);               // nranks
  graph::put_varint(buf, 1ULL << 40);      // f count: absurd
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : buf) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>((h >> (8 * i)) & 0xff));
  }
  const std::string path = checkpoint_path(dir_, /*rank=*/0);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
  os.close();

  RankCheckpoint out;
  EXPECT_THROW((void)load_checkpoint(dir_, /*rank=*/0, out), CheckError);
}

TEST_F(CheckpointTest, RankSlotMismatchRaises) {
  // A checkpoint filed under the wrong rank slot (e.g. a botched copy of a
  // checkpoint directory) must not seed another rank's state.
  const RankCheckpoint ck = sample();  // rank 1
  save_checkpoint(dir_, ck);
  std::filesystem::copy_file(checkpoint_path(dir_, ck.rank),
                             checkpoint_path(dir_, ck.rank + 1));
  RankCheckpoint out;
  EXPECT_THROW((void)load_checkpoint(dir_, ck.rank + 1, out), CheckError);
}

}  // namespace
}  // namespace pagen::core
