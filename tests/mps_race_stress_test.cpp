// Concurrency stress for the runtime's shared structures, sized to give
// TSan real interleavings (the sanitizer CI jobs run this suite; see
// docs/static-analysis.md). Race verdicts come from the sanitizer — the
// assertions here only pin functional outcomes (counts, FIFO order) so the
// test also earns its keep in uninstrumented runs.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mps/engine.h"
#include "mps/mailbox.h"
#include "mps/message.h"
#include "obs/trace.h"

namespace pagen::mps {
namespace {

using namespace std::chrono_literals;

/// Many producers hammer one mailbox while the owner alternates blocking
/// and non-blocking drains and a bystander polls the (racy-by-design) size
/// gauge. Verifies nothing is lost and delivery is FIFO per producer —
/// the non-overtaking property at the queue level.
TEST(MailboxRaceStress, ManyProducersOneDrainingOwner) {
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 2000;

  Mailbox box;
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::vector<std::byte> payload;
        pack_one(payload, i);
        box.push(Envelope{p, /*tag=*/1, std::move(payload), 0, 0, 0, {}});
        if (i % 512 == 0) std::this_thread::yield();
      }
    });
  }

  std::thread gauge([&box, &done] {
    // Concurrent size() readers must be safe (mutexed) even though the
    // value itself is immediately stale.
    while (!done.load()) {
      (void)box.size();
      std::this_thread::yield();
    }
  });

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  std::vector<Envelope> batch;
  bool use_blocking = false;
  while (received < kProducers * kPerProducer) {
    batch.clear();
    const bool got = use_blocking ? box.wait_drain(batch, 10ms)
                                  : box.try_drain(batch);
    use_blocking = !use_blocking;
    if (!got) continue;
    for (const Envelope& env : batch) {
      const auto items = unpack<std::uint64_t>(env.payload);
      ASSERT_EQ(items.size(), 1u);
      EXPECT_EQ(items[0], next_seq[static_cast<std::size_t>(env.src)])
          << "per-producer FIFO order violated for producer " << env.src;
      ++next_seq[static_cast<std::size_t>(env.src)];
      ++received;
    }
  }
  done.store(true);

  for (auto& t : producers) t.join();
  gauge.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
  EXPECT_EQ(box.size(), 0u);
}

/// Every thread records into its own tracer (the single-writer discipline)
/// while a monitor thread concurrently reads the cross-thread-safe counters
/// — the one part of the tracer that is atomic (see the concurrency audit
/// in obs/trace.h). TSan validates the discipline; the assertions validate
/// the drop accounting.
TEST(TracerRaceStress, ConcurrentRecordingWithLiveMonitor) {
  constexpr int kThreads = 6;
  constexpr int kEventsPerThread = 4000;
  constexpr std::size_t kRingCapacity = 256;

  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  tracers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tracers.push_back(std::make_unique<obs::Tracer>(t, kRingCapacity));
  }

  constexpr auto kExpectedTotal =
      static_cast<Count>(kThreads) * kEventsPerThread;
  std::atomic<bool> done{false};
  std::thread monitor([&] {
    // At least one read races the writers (do-while: a single-core scheduler
    // may not run this thread until the writers finish). Live reads may be
    // stale but never exceed the true total and never go backwards.
    Count last = 0;
    do {
      Count sum = 0;
      for (const auto& t : tracers) sum += t->total_recorded();
      EXPECT_GE(sum, last) << "total_recorded went backwards";
      EXPECT_LE(sum, kExpectedTotal);
      last = sum;
      std::this_thread::yield();
    } while (!done.load());
    // done was set after the writers joined, so this read is exact: the
    // join + done-flag chain gives happens-before even for relaxed counters.
    Count final_sum = 0;
    for (const auto& t : tracers) final_sum += t->total_recorded();
    EXPECT_EQ(final_sum, kExpectedTotal);
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracers, t] {
      obs::Tracer& tr = *tracers[static_cast<std::size_t>(t)];
      for (int i = 0; i < kEventsPerThread; ++i) {
        switch (i % 3) {
          case 0: {
            const auto sp = tr.span("work");
            break;
          }
          case 1:
            tr.instant("tick");
            break;
          default:
            tr.counter("value", i);
            break;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  monitor.join();

  for (const auto& t : tracers) {
    EXPECT_EQ(t->total_recorded(), static_cast<Count>(kEventsPerThread));
    EXPECT_EQ(t->dropped(),
              static_cast<Count>(kEventsPerThread) - kRingCapacity);
    EXPECT_EQ(t->size(), kRingCapacity);
  }
}

/// Full-world churn: every rank mixes point-to-point bursts, drains, and
/// collectives in a tight loop. This is the engine-level counterpart of the
/// mailbox test — mailbox mutexes, the collective rendezvous, and (in debug
/// builds) the invariant checker's atomics all interleave under TSan.
TEST(EngineRaceStress, MixedTrafficAndCollectives) {
  constexpr int kRanks = 8;
  constexpr int kRounds = 40;

  const RunResult r = run_ranks(kRanks, [](Comm& comm) {
    std::vector<Envelope> inbox;
    std::uint64_t received = 0;
    for (int round = 0; round < kRounds; ++round) {
      const auto dst = static_cast<Rank>((comm.rank() + round) % kRanks);
      comm.send_item<std::uint64_t>(dst, /*tag=*/7,
                                    static_cast<std::uint64_t>(round));
      if (round % 4 == 0) {
        inbox.clear();
        comm.poll(inbox);
        for (const Envelope& env : inbox) {
          received += unpack<std::uint64_t>(env.payload).size();
        }
      }
      // Sends push synchronously, so the barrier orders every rank's
      // round-`round` traffic before anyone moves on; after the last one
      // the final drain below sees everything.
      comm.barrier();
    }
    inbox.clear();
    comm.poll(inbox);
    for (const Envelope& env : inbox) {
      received += unpack<std::uint64_t>(env.payload).size();
    }
    const auto total = comm.allreduce_sum(received);
    EXPECT_EQ(total, static_cast<std::uint64_t>(kRanks) * kRounds);
  });

  CommStats world;
  for (const CommStats& s : r.rank_stats) world += s;
  EXPECT_EQ(world.envelopes_sent, world.envelopes_received);
}

}  // namespace
}  // namespace pagen::mps
