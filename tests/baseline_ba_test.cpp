#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/ba_batagelj_brandes.h"
#include "baseline/ba_naive.h"
#include "graph/edge_list.h"

namespace pagen::baseline {
namespace {

// Both BA implementations share these structural properties; run the same
// assertions over both through a value-parameterized generator handle.
using Generator = graph::EdgeList (*)(const PaConfig&);

struct Named {
  const char* name;
  Generator gen;
};

class BaGenerators : public ::testing::TestWithParam<Named> {};

TEST_P(BaGenerators, ExactEdgeCount) {
  for (NodeId x : {NodeId{1}, NodeId{3}, NodeId{5}}) {
    const PaConfig cfg{.n = 800, .x = x, .p = 0.5, .seed = 7};
    EXPECT_EQ(GetParam().gen(cfg).size(), expected_edge_count(cfg))
        << GetParam().name << " x=" << x;
  }
}

TEST_P(BaGenerators, SimpleConnectedGraph) {
  const PaConfig cfg{.n = 1200, .x = 4, .p = 0.5, .seed = 19};
  const auto edges = GetParam().gen(cfg);
  EXPECT_EQ(graph::count_self_loops(edges), 0u);
  EXPECT_EQ(graph::count_duplicates(edges), 0u);
  EXPECT_EQ(graph::connected_components(edges, cfg.n), 1u);
}

TEST_P(BaGenerators, DeterministicInSeed) {
  const PaConfig cfg{.n = 500, .x = 2, .p = 0.5, .seed = 31};
  EXPECT_EQ(GetParam().gen(cfg), GetParam().gen(cfg));
  PaConfig other = cfg;
  other.seed = 32;
  EXPECT_NE(GetParam().gen(cfg), GetParam().gen(other));
}

TEST_P(BaGenerators, OldNodesAccumulateDegree) {
  const PaConfig cfg{.n = 2000, .x = 3, .p = 0.5, .seed = 3};
  const auto deg = graph::degree_sequence(GetParam().gen(cfg), cfg.n);
  // Mean degree of the first 20 nodes must dwarf the last 20's (which is x).
  double early = 0, late = 0;
  for (int i = 0; i < 20; ++i) {
    early += static_cast<double>(deg[i]);
    late += static_cast<double>(deg[cfg.n - 1 - i]);
  }
  EXPECT_GT(early, 4.0 * late);
}

INSTANTIATE_TEST_SUITE_P(
    Impls, BaGenerators,
    ::testing::Values(Named{"naive", &ba_naive},
                      Named{"batagelj_brandes", &ba_batagelj_brandes}),
    [](const ::testing::TestParamInfo<Named>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(BaAgreement, ImplementationsAgreeStatistically) {
  // The naive scanner and the repetition-list method sample the same
  // distribution; their mean hub degree over many seeds must coincide.
  const NodeId n = 300;
  const int runs = 150;
  double hub_naive = 0, hub_bb = 0;
  for (int r = 0; r < runs; ++r) {
    const PaConfig cfg{.n = n, .x = 2, .p = 0.5,
                       .seed = static_cast<std::uint64_t>(r + 1)};
    const auto dn = graph::degree_sequence(ba_naive(cfg), n);
    const auto db = graph::degree_sequence(ba_batagelj_brandes(cfg), n);
    hub_naive += static_cast<double>(*std::max_element(dn.begin(), dn.end()));
    hub_bb += static_cast<double>(*std::max_element(db.begin(), db.end()));
  }
  hub_naive /= runs;
  hub_bb /= runs;
  EXPECT_NEAR(hub_naive / hub_bb, 1.0, 0.1)
      << "hub growth must match between implementations";
}

}  // namespace
}  // namespace pagen::baseline
