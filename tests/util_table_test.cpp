#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace pagen {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"P", "speedup"});
  t.add_row({"16", "14.9"});
  t.add_row({"768", "590.1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("  P  speedup"), std::string::npos);
  EXPECT_NE(out.find("768"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(2.0, 0), "2");
}

TEST(Format, Scientific) {
  EXPECT_EQ(fmt_e(12345.0, 2), "1.23e+04");
}

TEST(Format, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(50000000000ull), "50,000,000,000");
}

}  // namespace
}  // namespace pagen
