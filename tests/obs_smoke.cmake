# End-to-end smoke for the observability pipeline: run quickstart with
# tracing, metrics, Prometheus, and causal chain stamps enabled, then
# validate every artifact with CMake's strict JSON parser (string(JSON)) —
# the same bar a real consumer (Perfetto, python json, a scraper) would
# apply. On top of plain JSON validity it checks the Perfetto flow-event
# contract: every "s" has a matching "f", both carry id + bind_id, and
# timestamps are monotonic within each track.
#
# Invoked by ctest as:
#   cmake -DQUICKSTART=<binary> -DOUT_DIR=<scratch dir> -P obs_smoke.cmake
cmake_minimum_required(VERSION 3.25)

if(NOT DEFINED QUICKSTART OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "obs_smoke.cmake needs -DQUICKSTART=... and -DOUT_DIR=...")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace_file "${OUT_DIR}/trace.json")
set(metrics_file "${OUT_DIR}/metrics.json")
set(prom_file "${OUT_DIR}/metrics.prom")
file(REMOVE "${trace_file}" "${metrics_file}" "${prom_file}")

# n kept small enough that the per-event monotonicity loop below stays
# fast: causal chain events bypass sampling, so events scale with n.
execute_process(
  COMMAND "${QUICKSTART}" --n=6000 --x=2 --ranks=4
          "--trace-out=${trace_file}" "--metrics-out=${metrics_file}"
          "--prom-out=${prom_file}"
          --trace-sample=8 --causal=1
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart failed (rc=${rc})\nstdout:\n${out}\nstderr:\n${err}")
endif()

foreach(artifact IN ITEMS "${trace_file}" "${metrics_file}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "expected artifact was not written: ${artifact}")
  endif()
  file(READ "${artifact}" body)
  string(JSON kind ERROR_VARIABLE json_err TYPE "${body}")
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "${artifact} is not valid JSON: ${json_err}")
  endif()
  if(NOT kind STREQUAL "OBJECT")
    message(FATAL_ERROR "${artifact}: expected a top-level object, got ${kind}")
  endif()
endforeach()

# Trace: must carry a traceEvents array with at least one event per rank
# (4 ranks + driver => well over 5 events) and the rank-name metadata.
file(READ "${trace_file}" trace_body)
string(JSON events_type TYPE "${trace_body}" "traceEvents")
if(NOT events_type STREQUAL "ARRAY")
  message(FATAL_ERROR "trace: traceEvents is ${events_type}, expected ARRAY")
endif()
string(JSON n_events LENGTH "${trace_body}" "traceEvents")
if(n_events LESS 5)
  message(FATAL_ERROR "trace: only ${n_events} events recorded")
endif()
string(FIND "${trace_body}" "\"rank 0\"" rank0_at)
if(rank0_at EQUAL -1)
  message(FATAL_ERROR "trace: missing 'rank 0' track name metadata")
endif()

# Perfetto flow-event contract: with --causal=1 every resolved remote
# request emits a start ("s") on the requester and an end ("f") back on the
# requester — counts must match and be nonzero, and each flow event must
# carry both the correlation id and bind_id Perfetto uses to draw arrows.
string(REGEX MATCHALL "\"ph\":\"s\"" flow_starts "${trace_body}")
string(REGEX MATCHALL "\"ph\":\"f\"" flow_ends "${trace_body}")
list(LENGTH flow_starts n_starts)
list(LENGTH flow_ends n_ends)
if(n_starts EQUAL 0)
  message(FATAL_ERROR "trace: --causal=1 produced no flow-start events")
endif()
if(NOT n_starts EQUAL n_ends)
  message(FATAL_ERROR "trace: ${n_starts} flow starts vs ${n_ends} flow ends — unbalanced")
endif()
string(REGEX MATCHALL "\"ph\":\"[stf]\"[^\n]*" flow_lines "${trace_body}")
foreach(line IN LISTS flow_lines)
  if(NOT line MATCHES "\"id\":[0-9]+" OR NOT line MATCHES "\"bind_id\":[0-9]+")
    message(FATAL_ERROR "trace: flow event missing id/bind_id pairing: ${line}")
  endif()
endforeach()

# Per-track monotonic timestamps: the exporter orders each track's events
# by start time, so walking the file and comparing the integer part of
# every ts against the previous one on the same tid must never go
# backwards (floor preserves non-decreasing order).
file(STRINGS "${trace_file}" trace_lines)
foreach(line IN LISTS trace_lines)
  if(line MATCHES "\"tid\":([0-9]+),.*\"ts\":([0-9]+)")
    set(tid "${CMAKE_MATCH_1}")
    set(ts "${CMAKE_MATCH_2}")
    if(DEFINED last_ts_${tid} AND ts LESS last_ts_${tid})
      message(FATAL_ERROR "trace: tid ${tid} ts went backwards: ${last_ts_${tid}} -> ${ts}")
    endif()
    set(last_ts_${tid} "${ts}")
  endif()
endforeach()

# Metrics: schema marker, one entry per rank, and a merged totals object.
file(READ "${metrics_file}" metrics_body)
string(JSON schema GET "${metrics_body}" "schema")
if(NOT schema STREQUAL "pagen.metrics.v1")
  message(FATAL_ERROR "metrics: unexpected schema '${schema}'")
endif()
string(JSON n_ranks LENGTH "${metrics_body}" "ranks")
if(n_ranks LESS 4)
  message(FATAL_ERROR "metrics: only ${n_ranks} rank entries, expected >= 4")
endif()
string(JSON totals_type TYPE "${metrics_body}" "totals")
if(NOT totals_type STREQUAL "OBJECT")
  message(FATAL_ERROR "metrics: totals is ${totals_type}, expected OBJECT")
endif()

# Prometheus text format: at least one typed pagen_ family, every sample
# line shaped "name{labels} value" or "name value", and histogram families
# exposed cumulatively with a +Inf bucket.
if(NOT EXISTS "${prom_file}")
  message(FATAL_ERROR "expected artifact was not written: ${prom_file}")
endif()
file(READ "${prom_file}" prom_body)
string(REGEX MATCHALL "# TYPE pagen_[a-z0-9_]+ (counter|gauge|histogram)" prom_types "${prom_body}")
list(LENGTH prom_types n_families)
if(n_families EQUAL 0)
  message(FATAL_ERROR "prometheus: no '# TYPE pagen_*' families in ${prom_file}")
endif()
string(FIND "${prom_body}" "le=\"+Inf\"" inf_at)
if(inf_at EQUAL -1)
  message(FATAL_ERROR "prometheus: histogram families missing the +Inf bucket")
endif()
file(STRINGS "${prom_file}" prom_lines)
foreach(line IN LISTS prom_lines)
  if(line STREQUAL "" OR line MATCHES "^#")
    continue()
  endif()
  if(NOT line MATCHES "^pagen_[a-z0-9_]+(\\{[^}]*\\})? [-+0-9.eE]+$")
    message(FATAL_ERROR "prometheus: malformed sample line: ${line}")
  endif()
endforeach()

message(STATUS "obs smoke OK: ${n_events} trace events (${n_starts} flows), ${n_ranks} rank metric blocks, ${n_families} prometheus families")
