# End-to-end smoke for the observability pipeline: run quickstart with
# tracing and metrics enabled, then validate both artifacts with CMake's
# strict JSON parser (string(JSON)) — the same bar a real consumer
# (Perfetto, python json) would apply.
#
# Invoked by ctest as:
#   cmake -DQUICKSTART=<binary> -DOUT_DIR=<scratch dir> -P obs_smoke.cmake
cmake_minimum_required(VERSION 3.25)

if(NOT DEFINED QUICKSTART OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "obs_smoke.cmake needs -DQUICKSTART=... and -DOUT_DIR=...")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace_file "${OUT_DIR}/trace.json")
set(metrics_file "${OUT_DIR}/metrics.json")
file(REMOVE "${trace_file}" "${metrics_file}")

execute_process(
  COMMAND "${QUICKSTART}" --n=20000 --x=2 --ranks=4
          "--trace-out=${trace_file}" "--metrics-out=${metrics_file}"
          --trace-sample=8
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart failed (rc=${rc})\nstdout:\n${out}\nstderr:\n${err}")
endif()

foreach(artifact IN ITEMS "${trace_file}" "${metrics_file}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "expected artifact was not written: ${artifact}")
  endif()
  file(READ "${artifact}" body)
  string(JSON kind ERROR_VARIABLE json_err TYPE "${body}")
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "${artifact} is not valid JSON: ${json_err}")
  endif()
  if(NOT kind STREQUAL "OBJECT")
    message(FATAL_ERROR "${artifact}: expected a top-level object, got ${kind}")
  endif()
endforeach()

# Trace: must carry a traceEvents array with at least one event per rank
# (4 ranks + driver => well over 5 events) and the rank-name metadata.
file(READ "${trace_file}" trace_body)
string(JSON events_type TYPE "${trace_body}" "traceEvents")
if(NOT events_type STREQUAL "ARRAY")
  message(FATAL_ERROR "trace: traceEvents is ${events_type}, expected ARRAY")
endif()
string(JSON n_events LENGTH "${trace_body}" "traceEvents")
if(n_events LESS 5)
  message(FATAL_ERROR "trace: only ${n_events} events recorded")
endif()
string(FIND "${trace_body}" "\"rank 0\"" rank0_at)
if(rank0_at EQUAL -1)
  message(FATAL_ERROR "trace: missing 'rank 0' track name metadata")
endif()

# Metrics: schema marker, one entry per rank, and a merged totals object.
file(READ "${metrics_file}" metrics_body)
string(JSON schema GET "${metrics_body}" "schema")
if(NOT schema STREQUAL "pagen.metrics.v1")
  message(FATAL_ERROR "metrics: unexpected schema '${schema}'")
endif()
string(JSON n_ranks LENGTH "${metrics_body}" "ranks")
if(n_ranks LESS 4)
  message(FATAL_ERROR "metrics: only ${n_ranks} rank entries, expected >= 4")
endif()
string(JSON totals_type TYPE "${metrics_body}" "totals")
if(NOT totals_type STREQUAL "OBJECT")
  message(FATAL_ERROR "metrics: totals is ${totals_type}, expected OBJECT")
endif()

message(STATUS "obs smoke OK: ${n_events} trace events, ${n_ranks} rank metric blocks")
