#include "mps/termination.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mps/engine.h"
#include "util/error.h"

namespace pagen::mps {
namespace {

using namespace std::chrono_literals;

constexpr int kDone = 100;
constexpr int kStop = 101;

TEST(Termination, SingleRankStopsImmediately) {
  run_ranks(1, [](Comm& comm) {
    DoneDetector done(comm, kDone, kStop);
    EXPECT_FALSE(done.stopped());
    done.notify_local_done();
    EXPECT_TRUE(done.stopped());
  });
}

TEST(Termination, AllRanksConverge) {
  run_ranks(8, [](Comm& comm) {
    DoneDetector done(comm, kDone, kStop);
    done.notify_local_done();
    std::vector<Envelope> in;
    while (!done.stopped()) {
      in.clear();
      comm.poll_wait(in, 50ms);
      for (const Envelope& env : in) EXPECT_TRUE(done.handle(env));
    }
  });
}

TEST(Termination, StaggeredCompletion) {
  run_ranks(6, [](Comm& comm) {
    DoneDetector done(comm, kDone, kStop);
    // Ranks finish at very different times.
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * comm.rank()));
    done.notify_local_done();
    std::vector<Envelope> in;
    while (!done.stopped()) {
      in.clear();
      comm.poll_wait(in, 50ms);
      for (const Envelope& env : in) done.handle(env);
    }
  });
}

TEST(Termination, NonProtocolEnvelopeNotConsumed) {
  run_ranks(2, [](Comm& comm) {
    DoneDetector done(comm, kDone, kStop);
    if (comm.rank() == 0) {
      comm.send_item<std::uint64_t>(1, 55, 9);
    } else {
      std::vector<Envelope> in;
      while (!comm.poll_wait(in, 100ms)) {
      }
      EXPECT_FALSE(done.handle(in[0]));
    }
    comm.barrier();
  });
}

TEST(Termination, DoubleNotifyIsChecked) {
  run_ranks(1, [](Comm& comm) {
    DoneDetector done(comm, kDone, kStop);
    done.notify_local_done();
    EXPECT_THROW(done.notify_local_done(), CheckError);
  });
}

TEST(Termination, WorkThenTerminate) {
  // Ranks exchange some data traffic, then terminate; no envelope may be
  // lost or misattributed to the protocol.
  run_ranks(4, [](Comm& comm) {
    const int kData = 7;
    // Everyone sends one data message to the next rank.
    comm.send_item<std::uint64_t>((comm.rank() + 1) % 4, kData, 1);
    DoneDetector done(comm, kDone, kStop);
    bool got_data = false;
    bool notified = false;
    std::vector<Envelope> in;
    while (!done.stopped()) {
      in.clear();
      comm.poll_wait(in, 50ms);
      for (const Envelope& env : in) {
        if (done.handle(env)) continue;
        EXPECT_EQ(env.tag, kData);
        got_data = true;
      }
      if (got_data && !notified) {
        done.notify_local_done();
        notified = true;
      }
    }
    EXPECT_TRUE(got_data);
  });
}

}  // namespace
}  // namespace pagen::mps
