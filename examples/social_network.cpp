// A synthetic social network study — the workload class the paper's
// introduction motivates (Twitter/instant-messenger scale-free graphs).
//
// Generates a PA network, then answers the questions a network scientist
// asks first: who are the hubs, how heavy is the tail, how many hops
// separate random users from the biggest hub ("small world" check).
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/degree_dist.h"
#include "analysis/powerlaw_fit.h"
#include "core/generate.h"
#include "graph/csr.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("social_network") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 300000);
  cfg.x = cli.get_u64("x", 8);  // denser graph: a "follows" network
  cfg.seed = cli.get_u64("seed", 2013);
  core::ParallelOptions opt;
  opt.ranks = static_cast<int>(cli.get_u64("ranks", 8));

  std::cout << "== synthetic social network: " << fmt_count(cfg.n)
            << " users, " << cfg.x << " follows per new user ==\n\n";
  Timer timer;
  const auto result = core::generate(cfg, opt);
  std::cout << fmt_count(result.total_edges) << " follow edges in "
            << fmt_f(timer.seconds(), 2) << " s\n\n";

  const graph::CsrGraph g(result.edges, cfg.n);

  // Celebrity table: the top-degree accounts are the earliest ones.
  std::vector<NodeId> by_degree(cfg.n);
  for (NodeId v = 0; v < cfg.n; ++v) by_degree[v] = v;
  std::partial_sort(by_degree.begin(), by_degree.begin() + 10, by_degree.end(),
                    [&](NodeId a, NodeId b) { return g.degree(a) > g.degree(b); });
  Table celebs({"rank", "user", "followers+following"});
  for (int i = 0; i < 10; ++i) {
    celebs.add_row({std::to_string(i + 1), std::to_string(by_degree[i]),
                    fmt_count(g.degree(by_degree[i]))});
  }
  celebs.print(std::cout);

  // Tail heaviness.
  const auto degrees = graph::degree_sequence(result.edges, cfg.n);
  const auto fit = analysis::fit_gamma_mle(degrees, cfg.x);
  const auto ccdf = analysis::degree_ccdf(degrees);
  double frac_100 = 0;
  for (const auto& point : ccdf) {
    if (point.degree >= 100) {
      frac_100 = point.fraction;
      break;
    }
  }
  std::cout << "\npower-law exponent gamma ≈ " << fmt_f(fit.gamma, 2) << "\n"
            << "fraction of users with degree >= 100: "
            << fmt_f(100.0 * frac_100, 3) << "%\n";

  // Small-world probe: BFS from the biggest hub.
  const NodeId hub = by_degree[0];
  const auto dist = g.bfs_distances(hub);
  std::vector<Count> hops_hist(16, 0);
  Count reachable = 0;
  double mean_hops = 0;
  for (NodeId v = 0; v < cfg.n; ++v) {
    if (dist[v] == kNil) continue;
    ++reachable;
    mean_hops += static_cast<double>(dist[v]);
    ++hops_hist[std::min<NodeId>(dist[v], 15)];
  }
  mean_hops /= static_cast<double>(reachable);
  std::cout << "\nBFS from hub " << hub << ": " << fmt_count(reachable)
            << " reachable users, mean distance " << fmt_f(mean_hops, 2)
            << " hops\n";
  Table hops({"hops", "users"});
  for (std::size_t h = 0; h < hops_hist.size(); ++h) {
    if (hops_hist[h] != 0) {
      hops.add_row({std::to_string(h), fmt_count(hops_hist[h])});
    }
  }
  hops.print(std::cout);
  std::cout << "\nscale-free + small-world: almost everyone sits within a\n"
            << "handful of hops of the main hub.\n";
  return 0;
}
