// Model comparison pipeline: preferential attachment vs. Erdős–Rényi.
//
// The introduction's point in one program: ER graphs do not exhibit the
// heavy-tailed structure of real complex networks, PA graphs do. Generates
// both at matched size/density, persists them, reloads, and contrasts their
// structure.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "analysis/degree_dist.h"
#include "analysis/powerlaw_fit.h"
#include "baseline/er_gen.h"
#include "core/generate.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("graph_pipeline") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 100000);
  cfg.x = cli.get_u64("x", 4);
  cfg.seed = cli.get_u64("seed", 8);
  core::ParallelOptions opt;
  opt.ranks = static_cast<int>(cli.get_u64("ranks", 4));

  // PA network via the distributed generator.
  const auto pa = core::generate(cfg, opt);

  // ER network with the same expected number of edges.
  baseline::ErConfig er_cfg;
  er_cfg.n = cfg.n;
  er_cfg.p = 2.0 * static_cast<double>(pa.total_edges) /
             (static_cast<double>(cfg.n) * static_cast<double>(cfg.n - 1));
  er_cfg.seed = cfg.seed;
  const auto er = baseline::erdos_renyi(er_cfg);

  // Persist + reload both (round-trip through the binary format).
  const auto dir = std::filesystem::temp_directory_path();
  const std::string pa_path = (dir / "pagen_pipeline_pa.bin").string();
  const std::string er_path = (dir / "pagen_pipeline_er.bin").string();
  graph::save_binary(pa_path, pa.edges);
  graph::save_binary(er_path, er);
  const auto pa_edges = graph::load_binary(pa_path);
  const auto er_edges = graph::load_binary(er_path);
  std::remove(pa_path.c_str());
  std::remove(er_path.c_str());

  const auto deg_pa = graph::degree_sequence(pa_edges, cfg.n);
  const auto deg_er = graph::degree_sequence(er_edges, cfg.n);

  auto hub = [](const std::vector<Count>& deg) {
    return *std::max_element(deg.begin(), deg.end());
  };
  auto frac_ge = [&](const std::vector<Count>& deg, Count bound) {
    Count c = 0;
    for (Count d : deg) c += (d >= bound);
    return 100.0 * static_cast<double>(c) / static_cast<double>(deg.size());
  };

  std::cout << "== preferential attachment vs Erdős–Rényi at matched density ==\n"
            << "n=" << fmt_count(cfg.n) << ", ~" << fmt_count(pa.total_edges)
            << " edges each\n\n";
  Table t({"metric", "PA", "ER"});
  t.add_row({"edges", fmt_count(pa_edges.size()), fmt_count(er_edges.size())});
  t.add_row({"max degree", fmt_count(hub(deg_pa)), fmt_count(hub(deg_er))});
  t.add_row({"% nodes with degree >= 3x mean",
             fmt_f(frac_ge(deg_pa, 3 * 2 * pa_edges.size() / cfg.n), 3),
             fmt_f(frac_ge(deg_er, 3 * 2 * er_edges.size() / cfg.n), 3)});
  t.add_row({"connected components",
             fmt_count(graph::connected_components(pa_edges, cfg.n)),
             fmt_count(graph::connected_components(er_edges, cfg.n))});
  const auto fit_pa = analysis::fit_gamma_mle(deg_pa, cfg.x);
  t.add_row({"power-law gamma (MLE)", fmt_f(fit_pa.gamma, 2), "n/a (no tail)"});
  t.print(std::cout);

  std::cout << "\nPA shows hubs orders of magnitude above the mean degree and\n"
            << "a power-law tail; ER concentrates around its mean — the\n"
            << "paper's motivation for scale-free generators.\n";
  return 0;
}
