// Massive-generation CLI: the tool a user actually runs to produce a
// scale-free edge list on disk (Section 4.5 as a utility).
//
//   ./massive_generation --n=5000000 --x=4 --ranks=8 --out=/tmp/edges.bin
//   ./massive_generation --n=5000000 --sharded=/tmp/edge_store
//   ./massive_generation --n=5000000 --engine=commfree   # zero-message run
//   ./massive_generation --n=1000000000 --x=1 --engine=commfree
//       --store-dir=/tmp/pcs --store-budget=$((8<<30))  # out-of-core store
//   ./massive_generation --fault-plan=seed=7,drop=0.01 --checkpoint-dir=/tmp/ck
//
// Writes the checksummed binary edge format of graph/io.h (text with
// --format=text, delta-varint compression with --format=varint), or a
// per-rank sharded store with --sharded=DIR (the paper's independent
// file-writes model), and prints throughput. --store-dir=DIR streams the
// edges into the compressed block store (src/store/, docs/storage.md)
// without gathering them — combinable with any mode — and the finished
// store is verified by re-opening it under --store-budget bytes.
// --spill-dir/--spill-budget page the commfree engine's derivation state
// to disk, bounding peak RSS. In statistics mode (no --out/--sharded) the
// edges are consumed in-flight through the batched span sink
// (ParallelOptions::edge_batch_sink), so the run demonstrates streaming
// consumption without ever materializing the edge list; the report
// includes the process's peak RSS (VmHWM) to make the memory claim
// checkable.
#include <fstream>
#include <iostream>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "core/engine/engine_cli.h"
#include "core/generate.h"
#include "core/robustness_cli.h"
#include "graph/io.h"
#include "graph/sharded_io.h"
#include "graph/varint_io.h"
#include "obs/config.h"
#include "obs/session.h"
#include "store/graph_view.h"
#include "util/cli.h"
#include "util/rss.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  std::vector<std::string> keys{
      "n",       "x",         "ranks",        "seed",
      "scheme",  "out",       "format",       "p",
      "sharded", "store-dir", "store-budget", "store-block-edges",
      "spill-dir", "spill-budget"};
  for (const std::string& k : core::engine_cli_keys()) keys.push_back(k);
  for (const std::string& k : core::robustness_cli_keys()) keys.push_back(k);
  for (const std::string& k : obs::cli_keys()) keys.push_back(k);
  const Cli cli(argc, argv, keys);
  if (cli.help()) {
    std::cout << cli.usage("massive_generation") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 2000000);
  cfg.x = cli.get_u64("x", 4);
  cfg.p = cli.get_double("p", 0.5);
  cfg.seed = cli.get_u64("seed", 1);
  core::ParallelOptions opt;
  opt.ranks = static_cast<int>(cli.get_u64("ranks", 8));
  opt.scheme = partition::scheme_from_string(cli.get_str("scheme", "RRP"));
  const std::string out = cli.get_str("out", "");
  const std::string sharded = cli.get_str("sharded", "");
  const std::string format = cli.get_str("format", "binary");
  opt.gather_edges = !out.empty();
  opt.keep_shards = !sharded.empty();
  opt.store_dir = cli.get_str("store-dir", "");
  opt.store_block_edges = cli.get_u64("store-block-edges", 65536);
  opt.spill_dir = cli.get_str("spill-dir", "");
  opt.spill_budget_bytes =
      cli.get_u64("spill-budget", opt.spill_budget_bytes);
  const std::uint64_t store_budget = cli.get_u64("store-budget", 0);
  core::apply_engine_cli(cli, opt);
  core::apply_robustness_cli(cli, opt);

  // Observability: --trace-out/--metrics-out/--prom-out instrument the run
  // (optionally with --causal=1 dependency-chain stamps) at zero cost when
  // none of the flags is given.
  const obs::Config obs_cfg = obs::config_from_cli(cli);
  std::optional<obs::Session> session;
  if (obs_cfg.enabled) {
    session.emplace(opt.ranks, obs_cfg);
    opt.obs = &*session;
  }

  // Statistics mode: no gather, no shards — stream the edges through the
  // batched span sink instead. Each rank thread owns its slot, so the
  // order-insensitive checksum (sum of per-edge mixes) needs no locking and
  // is independent of emission order.
  const bool streaming = out.empty() && sharded.empty();
  std::vector<std::uint64_t> rank_sums;
  std::vector<Count> rank_edges;
  if (streaming) {
    rank_sums.assign(static_cast<std::size_t>(opt.ranks), 0);
    rank_edges.assign(static_cast<std::size_t>(opt.ranks), 0);
    opt.edge_batch_sink = [&rank_sums, &rank_edges](
                              Rank rank, std::span<const graph::Edge> edges) {
      std::uint64_t sum = 0;
      for (const graph::Edge& e : edges) {
        std::uint64_t w = (std::min(e.u, e.v) << 32) ^ std::max(e.u, e.v);
        w *= 0x9e3779b97f4a7c15ULL;  // splitmix-style mix per edge
        w ^= w >> 29;
        sum += w;
      }
      rank_sums[static_cast<std::size_t>(rank)] += sum;
      rank_edges[static_cast<std::size_t>(rank)] +=
          static_cast<Count>(edges.size());
    };
  }

  Timer gen_timer;
  const auto result = core::generate(cfg, opt);
  const double gen_secs = gen_timer.seconds();

  std::cout << "generated " << fmt_count(result.total_edges) << " edges ("
            << fmt_count(cfg.n) << " nodes, x=" << cfg.x << ", p=" << cfg.p
            << ") on " << opt.ranks << " ranks ["
            << partition::to_string(opt.scheme) << "] in "
            << fmt_f(gen_secs, 2) << " s — "
            << fmt_count(static_cast<Count>(
                   static_cast<double>(result.total_edges) / gen_secs))
            << " edges/s\n";
  if (result.respawns > 0) {
    std::cout << "recovered from " << result.respawns
              << " injected crash(es) via respawn\n";
  }
  if (session) {
    for (const std::string& path : session->export_files()) {
      std::cout << "wrote observability artifact " << path << "\n";
    }
  }

  if (!opt.store_dir.empty()) {
    // Re-open under the budget: proves the store round-trips and that its
    // concurrent-stream working set fits the declared bytes.
    const store::ShardedGraphView view(opt.store_dir, store_budget);
    const double bytes_per_edge =
        result.total_edges == 0
            ? 0.0
            : static_cast<double>(result.store_bytes) /
                  static_cast<double>(result.total_edges);
    std::cout << "wrote compressed store " << opt.store_dir << " ("
              << view.manifest().num_shards << " shards, "
              << fmt_count(result.store_bytes) << " bytes, "
              << fmt_f(bytes_per_edge, 2) << " bytes/edge";
    if (store_budget > 0) {
      std::cout << "; re-opened under " << fmt_count(store_budget)
                << "-byte budget";
    }
    std::cout << ")\n";
  }

  if (!out.empty()) {
    Timer io_timer;
    if (format == "text") {
      std::ofstream os(out);
      if (!os.is_open()) {
        std::cerr << "cannot open " << out << " for writing\n";
        return 1;
      }
      graph::write_text(os, result.edges);
    } else if (format == "varint") {
      graph::save_varint(out, result.edges);
    } else {
      graph::save_binary(out, result.edges);
    }
    std::cout << "wrote " << out << " (" << format << ") in "
              << fmt_f(io_timer.seconds(), 2) << " s\n";
  } else if (!sharded.empty()) {
    Timer io_timer;
    graph::save_sharded(sharded, cfg.n, result.shards);
    std::cout << "wrote sharded store " << sharded << " (" << opt.ranks
              << " shards) in " << fmt_f(io_timer.seconds(), 2) << " s\n";
  } else {
    const std::uint64_t checksum =
        std::accumulate(rank_sums.begin(), rank_sums.end(), std::uint64_t{0});
    const Count streamed =
        std::accumulate(rank_edges.begin(), rank_edges.end(), Count{0});
    std::cout << "streamed " << fmt_count(streamed)
              << " edges through the batched sink (batch capacity "
              << opt.edge_batch_capacity << "), order-insensitive checksum 0x"
              << std::hex << checksum << std::dec << "\n"
              << "peak RSS " << fmt_count(peak_rss_bytes() >> 20)
              << " MiB (VmHWM)\n"
              << "(pass --out=PATH to persist the edge list; generation ran\n"
              << " without gathering, like the paper's timed runs, which\n"
              << " exclude disk I/O)\n";
  }
  return 0;
}
