// Quickstart: generate a scale-free network with the distributed
// preferential-attachment algorithm and look at it.
//
//   ./quickstart [--n=...] [--x=...] [--ranks=...] [--seed=...]
//                [--engine=mps|commfree|seq-copy|seq-bb]
//                [--trace-out=t.json] [--metrics-out=m.json]
//                [--trace-sample=N] [--fault-plan=SPEC]
//                [--checkpoint-dir=DIR] [--reliable]
//
// With --trace-out the run emits a Chrome trace-event JSON (open it at
// https://ui.perfetto.dev — one track per rank with generate/drain/
// collective spans); with --metrics-out a structured metrics JSON (per-rank
// node/message counters, mailbox-depth gauge, chain-latency histogram).
// See docs/observability.md.
#include <iostream>
#include <optional>

#include "analysis/powerlaw_fit.h"
#include "core/engine/engine_cli.h"
#include "core/generate.h"
#include "core/robustness_cli.h"
#include "graph/csr.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  std::vector<std::string> keys{"n", "x", "ranks", "seed"};
  for (const std::string& k : core::engine_cli_keys()) keys.push_back(k);
  for (const std::string& k : obs::cli_keys()) keys.push_back(k);
  for (const std::string& k : core::robustness_cli_keys()) keys.push_back(k);
  const Cli cli(argc, argv, keys);
  if (cli.help()) {
    std::cout << cli.usage("quickstart") << "\n";
    return 0;
  }

  // 1. Describe the network: n nodes, x edges per new node, copy
  //    probability 1/2 (exact Barabási–Albert behaviour).
  PaConfig config;
  config.n = cli.get_u64("n", 100000);
  config.x = cli.get_u64("x", 4);
  config.seed = cli.get_u64("seed", 1);

  // 2. Describe the run: how many ranks, which partitioning scheme, and
  //    whether to observe it (tracing/metrics are off unless asked for).
  core::ParallelOptions options;
  options.ranks = static_cast<int>(cli.get_u64("ranks", 4));
  options.scheme = partition::Scheme::kRrp;
  core::apply_engine_cli(cli, options);
  core::apply_robustness_cli(cli, options);

  const obs::Config obs_cfg = obs::config_from_cli(cli);
  std::optional<obs::Session> session;
  if (obs_cfg.enabled) {
    session.emplace(options.ranks, obs_cfg);
    options.obs = &*session;
  }

  // 3. Generate.
  Timer timer;
  const core::ParallelResult result = core::generate(config, options);
  std::cout << "generated " << fmt_count(result.total_edges) << " edges over "
            << options.ranks << " ranks in " << fmt_f(timer.seconds(), 2)
            << " s\n";
  if (result.respawns > 0) {
    std::cout << "recovered from " << result.respawns
              << " injected crash(es) via respawn\n";
  }

  // 4. Inspect: the network is connected, simple, and heavy-tailed.
  const graph::CsrGraph g(result.edges, config.n);
  const NodeId hub = g.max_degree_node();
  std::cout << "largest hub: node " << hub << " with degree "
            << fmt_count(g.degree(hub)) << "\n";

  const auto degrees = graph::degree_sequence(result.edges, config.n);
  const auto fit = analysis::fit_gamma_mle(degrees, config.x);
  std::cout << "power-law exponent gamma ≈ " << fmt_f(fit.gamma, 2)
            << " (paper reports 2.7 for x = 4 at n = 1e9)\n";

  // 5. Export observation artifacts, if any were requested.
  if (session) {
    for (const std::string& file : session->export_files()) {
      std::cout << "wrote " << file << "\n";
    }
  }
  return 0;
}
