// Quickstart: generate a scale-free network with the distributed
// preferential-attachment algorithm and look at it.
//
//   ./quickstart [--n=...] [--x=...] [--ranks=...] [--seed=...]
#include <iostream>

#include "analysis/powerlaw_fit.h"
#include "core/generate.h"
#include "graph/csr.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("quickstart") << "\n";
    return 0;
  }

  // 1. Describe the network: n nodes, x edges per new node, copy
  //    probability 1/2 (exact Barabási–Albert behaviour).
  PaConfig config;
  config.n = cli.get_u64("n", 100000);
  config.x = cli.get_u64("x", 4);
  config.seed = cli.get_u64("seed", 1);

  // 2. Describe the run: how many ranks, which partitioning scheme.
  core::ParallelOptions options;
  options.ranks = static_cast<int>(cli.get_u64("ranks", 4));
  options.scheme = partition::Scheme::kRrp;

  // 3. Generate.
  Timer timer;
  const core::ParallelResult result = core::generate(config, options);
  std::cout << "generated " << fmt_count(result.total_edges) << " edges over "
            << options.ranks << " ranks in " << fmt_f(timer.seconds(), 2)
            << " s\n";

  // 4. Inspect: the network is connected, simple, and heavy-tailed.
  const graph::CsrGraph g(result.edges, config.n);
  const NodeId hub = g.max_degree_node();
  std::cout << "largest hub: node " << hub << " with degree "
            << fmt_count(g.degree(hub)) << "\n";

  const auto degrees = graph::degree_sequence(result.edges, config.n);
  const auto fit = analysis::fit_gamma_mle(degrees, config.x);
  std::cout << "power-law exponent gamma ≈ " << fmt_f(fit.gamma, 2)
            << " (paper reports 2.7 for x = 4 at n = 1e9)\n";
  return 0;
}
