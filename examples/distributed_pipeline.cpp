// Distributed end-to-end pipeline: generate with per-rank shards, persist
// them as a sharded store (the paper's independent-file-writes model),
// compute degree distribution and connected components WITHOUT gathering
// the edges, then reload the store and cross-check centrally.
//
//   ./distributed_pipeline --n=500000 --x=4 --ranks=8 --dir=/tmp/pagen_store
#include <filesystem>
#include <iostream>

#include "analysis/degree_dist.h"
#include "core/distributed_cc.h"
#include "core/distributed_degree.h"
#include "core/generate.h"
#include "graph/edge_list.h"
#include "graph/sharded_io.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed", "dir", "keep"});
  if (cli.help()) {
    std::cout << cli.usage("distributed_pipeline") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 200000);
  cfg.x = cli.get_u64("x", 4);
  cfg.seed = cli.get_u64("seed", 77);
  core::ParallelOptions opt;
  opt.ranks = static_cast<int>(cli.get_u64("ranks", 8));
  opt.gather_edges = false;
  opt.keep_shards = true;
  const std::string dir = cli.get_str(
      "dir",
      (std::filesystem::temp_directory_path() / "pagen_pipeline_store")
          .string());

  // 1. Generate; each rank keeps its own edges.
  Timer timer;
  const auto result = core::generate(cfg, opt);
  std::cout << "1. generated " << fmt_count(result.total_edges)
            << " edges across " << opt.ranks << " rank shards in "
            << fmt_f(timer.seconds(), 2) << " s\n";

  // 2. Persist shards independently + manifest.
  timer.restart();
  graph::save_sharded(dir, cfg.n, result.shards);
  std::cout << "2. wrote sharded store " << dir << " in "
            << fmt_f(timer.seconds(), 2) << " s\n";

  // 3. Distributed analytics straight off the in-memory shards.
  timer.restart();
  const auto hist = core::distributed_degree_distribution(
      result.shards, cfg.n, opt.scheme);
  const auto cc = core::distributed_connected_components(result.shards, cfg.n,
                                                         opt.scheme);
  std::cout << "3. distributed analytics in " << fmt_f(timer.seconds(), 2)
            << " s: " << hist.size() << " distinct degrees, "
            << cc.components << " component(s) in " << cc.rounds
            << " label rounds\n";

  // 4. Reload the store centrally and cross-check.
  timer.restart();
  const auto reloaded = graph::load_all_shards(dir);
  const auto deg = graph::degree_sequence(reloaded, cfg.n);
  const auto central = analysis::degree_distribution(deg);
  bool match = central.size() == hist.size();
  for (std::size_t i = 0; match && i < central.size(); ++i) {
    match = central[i].degree == hist[i].first &&
            central[i].count == hist[i].second;
  }
  std::cout << "4. reloaded " << fmt_count(reloaded.size())
            << " edges and cross-checked in " << fmt_f(timer.seconds(), 2)
            << " s: distributed histogram "
            << (match ? "MATCHES" : "DIFFERS FROM")
            << " the centralized one\n";

  if (!cli.get_bool("keep", false)) {
    std::filesystem::remove_all(dir);
    std::cout << "   (store removed; pass --keep to retain it)\n";
  }
  return match ? 0 : 1;
}
