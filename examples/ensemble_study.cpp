// Ensemble study: structural statistics with error bars over independent
// replicas — how a network scientist actually reports results from a
// random-graph model ("a smaller network may not exhibit the same
// behavior": the paper's motivation for studying size effects carefully).
//
//   ./ensemble_study --n=50000 --x=4 --replicas=10 --ranks=8
#include <iostream>

#include "analysis/ensemble.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "p", "replicas", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("ensemble_study") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 50000);
  cfg.x = cli.get_u64("x", 4);
  cfg.p = cli.get_double("p", 0.5);
  cfg.seed = cli.get_u64("seed", 1000);
  core::ParallelOptions opt;
  opt.ranks = static_cast<int>(cli.get_u64("ranks", 8));
  const int replicas = static_cast<int>(cli.get_u64("replicas", 8));

  std::cout << "== ensemble of " << replicas << " PA networks (n="
            << fmt_count(cfg.n) << ", x=" << cfg.x << ", p=" << cfg.p
            << ") ==\n\n";
  Timer timer;
  const auto result = analysis::run_ensemble(cfg, opt, replicas);
  std::cout << "generated + analyzed in " << fmt_f(timer.seconds(), 2)
            << " s\n\n";

  Table per({"replica seed", "edges", "hub degree", "gamma", "assortativity"});
  for (const auto& r : result.replicas) {
    per.add_row({std::to_string(r.seed), fmt_count(r.edges),
                 fmt_count(r.max_degree), fmt_f(r.gamma, 2),
                 fmt_f(r.assortativity, 3)});
  }
  per.print(std::cout);

  Table agg({"statistic", "mean", "stddev", "min", "max"});
  auto row = [&](const char* name, const Summary& s, int digits) {
    agg.add_row({name, fmt_f(s.mean, digits), fmt_f(s.stddev, digits),
                 fmt_f(s.min, digits), fmt_f(s.max, digits)});
  };
  std::cout << "\n";
  row("hub degree", result.max_degree, 0);
  row("gamma (MLE)", result.gamma, 2);
  row("assortativity", result.assortativity, 3);
  agg.print(std::cout);

  std::cout << "\nthe exponent is tight across replicas (the model, not the\n"
            << "seed, sets the tail); the hub degree fluctuates — single-run\n"
            << "hub sizes should never be reported without error bars.\n";
  return 0;
}
