// Graph analyzer CLI: load an edge list (binary, text, or a sharded
// directory) — or generate a demo PA network if no input is given — and
// print the full structural report.
//
//   ./analyze_graph --in=edges.bin
//   ./analyze_graph --shards=/path/to/shard/dir
//   ./analyze_graph            # self-generates a 100k-node demo network
#include <fstream>
#include <iostream>

#include "analysis/degree_dist.h"
#include "analysis/powerlaw_fit.h"
#include "core/generate.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/sharded_io.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"in", "shards", "format", "n", "x", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("analyze_graph") << "\n";
    return 0;
  }

  graph::EdgeList edges;
  const std::string in = cli.get_str("in", "");
  const std::string shards = cli.get_str("shards", "");
  if (!in.empty()) {
    if (cli.get_str("format", "binary") == "text") {
      std::ifstream is(in);
      if (!is.is_open()) {
        std::cerr << "cannot open " << in << "\n";
        return 1;
      }
      edges = graph::read_text(is);
    } else {
      edges = graph::load_binary(in);
    }
    std::cout << "loaded " << fmt_count(edges.size()) << " edges from " << in
              << "\n";
  } else if (!shards.empty()) {
    edges = graph::load_all_shards(shards);
    std::cout << "loaded " << fmt_count(edges.size())
              << " edges from sharded store " << shards << "\n";
  } else {
    PaConfig cfg;
    cfg.n = cli.get_u64("n", 100000);
    cfg.x = cli.get_u64("x", 4);
    cfg.seed = cli.get_u64("seed", 1);
    core::ParallelOptions opt;
    opt.ranks = 4;
    edges = core::generate(cfg, opt).edges;
    std::cout << "no --in/--shards given; generated a demo PA network ("
              << fmt_count(edges.size()) << " edges)\n";
  }
  if (edges.empty()) {
    std::cerr << "empty edge list\n";
    return 1;
  }

  const NodeId n = graph::num_nodes(edges);
  const graph::CsrGraph g(edges, n);
  const auto deg = graph::degree_sequence(edges, n);

  Table t({"metric", "value"});
  t.add_row({"nodes", fmt_count(n)});
  t.add_row({"edges", fmt_count(edges.size())});
  t.add_row({"self loops", fmt_count(graph::count_self_loops(edges))});
  t.add_row({"duplicate edges", fmt_count(graph::count_duplicates(edges))});
  t.add_row({"connected components",
             fmt_count(graph::connected_components(edges, n))});
  const NodeId hub = g.max_degree_node();
  t.add_row({"max degree (hub)", fmt_count(g.degree(hub)) + " @ node " +
                                     std::to_string(hub)});
  t.add_row({"mean degree",
             fmt_f(2.0 * static_cast<double>(edges.size()) /
                       static_cast<double>(n),
                   2)});
  t.add_row({"assortativity", fmt_f(graph::degree_assortativity(g), 3)});
  t.add_row({"clustering (sampled local)",
             fmt_f(graph::sampled_local_clustering(g, 2000, 1), 4)});
  t.add_row(
      {"diameter (double-sweep >=)",
       fmt_count(graph::double_sweep_diameter(g, hub))});
  t.add_row({"mean distance (sampled)",
             fmt_f(graph::sampled_mean_distance(g, 3, 1), 2)});
  try {
    // Fit the tail from the modal degree upward (for a PA network the mode
    // is x, the paper's d_min choice).
    const auto dist = analysis::degree_distribution(deg);
    Count d_min = 2, best = 0;
    for (const auto& p : dist) {
      if (p.degree >= 1 && p.count > best) {
        best = p.count;
        d_min = std::max<Count>(p.degree, 2);
      }
    }
    const auto fit = analysis::fit_gamma_mle(deg, d_min);
    t.add_row({"power-law gamma (MLE, d_min=" + std::to_string(d_min) + ")",
               fmt_f(fit.gamma, 2)});
  } catch (const CheckError&) {
    t.add_row({"power-law gamma", "n/a (tail too small)"});
  }
  t.print(std::cout);
  return 0;
}
