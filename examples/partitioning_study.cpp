// Partitioning study: why the scheme choice matters (Section 3.5 in
// practice, at example scale).
//
// Runs the same generation under UCP, LCP and RRP and reports how evenly
// nodes, messages and total load spread across ranks — then says which
// scheme to pick for which downstream use (the paper: consecutive schemes
// when analysis code wants contiguous node ranges, RRP when pure balance
// wins).
#include <iostream>

#include "analysis/load_balance.h"
#include "core/generate.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pagen;
  const Cli cli(argc, argv, {"n", "x", "ranks", "seed"});
  if (cli.help()) {
    std::cout << cli.usage("partitioning_study") << "\n";
    return 0;
  }
  PaConfig cfg;
  cfg.n = cli.get_u64("n", 200000);
  cfg.x = cli.get_u64("x", 6);
  cfg.seed = cli.get_u64("seed", 35);
  const int ranks = static_cast<int>(cli.get_u64("ranks", 16));

  std::cout << "== partitioning schemes on n=" << fmt_count(cfg.n)
            << ", x=" << cfg.x << ", P=" << ranks << " ==\n\n";

  Table t({"scheme", "nodes max/mean", "msgs max/mean", "load max/mean",
           "wall_s"});
  for (auto scheme : {partition::Scheme::kUcp, partition::Scheme::kLcp,
                      partition::Scheme::kRrp}) {
    core::ParallelOptions opt;
    opt.ranks = ranks;
    opt.scheme = scheme;
    opt.gather_edges = false;
    const auto result = core::generate(cfg, opt);
    const auto nodes =
        analysis::summarize_metric(result.loads, analysis::LoadMetric::kNodes);
    const auto msgs = analysis::summarize_metric(
        result.loads, analysis::LoadMetric::kTotalMessages);
    const auto load = analysis::summarize_metric(
        result.loads, analysis::LoadMetric::kTotalLoad);
    t.add_row({partition::to_string(scheme), fmt_f(nodes.imbalance, 2),
               fmt_f(msgs.imbalance, 2), fmt_f(load.imbalance, 2),
               fmt_f(result.wall_seconds, 2)});
  }
  t.print(std::cout);

  std::cout
      << "\nreading the table (imbalance = max/mean; 1.00 is perfect):\n"
      << " * UCP: equal node counts but rank 0 drowns in incoming requests\n"
      << "   for the old, high-degree nodes -> worst total-load imbalance.\n"
      << " * LCP: sizes blocks by the Eq. 10 load model -> good balance\n"
      << "   while keeping each rank's nodes consecutive (nice for I/O and\n"
      << "   analysis kernels that want contiguous ranges).\n"
      << " * RRP: interleaves labels -> near-perfect balance; choose it\n"
      << "   when nothing downstream needs consecutive node ranges.\n";
  return 0;
}
