// Numerical solver for the paper's Eq. 10 load-balance system, and its
// linear approximation (Appendix A.2).
//
// Eq. 10 asks for consecutive block boundaries n_0 = 0 < n_1 < ... < n_P = n
// such that every block carries an equal share of the total computation
// load, where the load of block [lo, hi) is
//
//   L(lo, hi) = (hi - lo)(H_{n-1} + b) - (hi H_hi - lo H_lo)
//
// (type A+B work proportional to block size, plus the expected incoming
// request messages of Lemma 3.4 summed via Concrete Mathematics Eq. 2.36).
// The system is nonlinear; the paper solves it numerically once to observe
// that the boundaries are nearly linear in rank, then replaces it with the
// arithmetic-progression LCP scheme. We reproduce both: the exact solution
// (Fig. 3's "actual" series) and the a/d linear fit used by LcpPartition.
#pragma once

#include <vector>

#include "util/types.h"

namespace pagen::partition {

/// Block load L(lo, hi) as defined above; `b` is the per-node constant-work
/// coefficient (the paper's b = 1 + c).
[[nodiscard]] double block_load(NodeId n, double lo, double hi, double b);

/// Solve Eq. 10: returns P+1 real-valued boundaries, boundaries[0] = 0 and
/// boundaries[P] = n, such that every block's load equals the mean load.
/// Deterministic: sequential binary search per boundary.
[[nodiscard]] std::vector<double> solve_eq10(NodeId n, int parts,
                                             double b = 2.0);

/// Arithmetic-progression parameters for LCP (Appendix A.2): block i gets
/// a + i*d nodes. Derived from the exact solution's first and last blocks.
struct LcpParams {
  double a = 0.0;
  double d = 0.0;
};
[[nodiscard]] LcpParams fit_lcp_params(NodeId n, int parts, double b = 2.0);

}  // namespace pagen::partition
