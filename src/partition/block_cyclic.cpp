#include "partition/block_cyclic.h"

#include <string>

#include "util/error.h"

namespace pagen::partition {
namespace {

class BlockCyclicPartition final : public Partition {
 public:
  BlockCyclicPartition(NodeId n, int parts, NodeId block)
      : n_(n), parts_(parts), block_(block) {
    PAGEN_CHECK(parts >= 1);
    PAGEN_CHECK(block >= 1);
    PAGEN_CHECK(n >= static_cast<NodeId>(parts));
  }

  int num_parts() const override { return parts_; }
  NodeId num_nodes() const override { return n_; }

  Rank owner(NodeId u) const override {
    PAGEN_CHECK(u < n_);
    return static_cast<Rank>((u / block_) % static_cast<NodeId>(parts_));
  }

  Count part_size(Rank i) const override {
    check_rank(i);
    // Full stripes plus the partial stripe at the end.
    const NodeId stripe = block_ * static_cast<NodeId>(parts_);
    const NodeId full_stripes = n_ / stripe;
    Count size = full_stripes * block_;
    const NodeId rem = n_ % stripe;  // nodes in the final partial stripe
    const NodeId my_start = static_cast<NodeId>(i) * block_;
    if (rem > my_start) {
      size += std::min(block_, rem - my_start);
    }
    return size;
  }

  NodeId node_at(Rank i, Count idx) const override {
    check_rank(i);
    PAGEN_CHECK(idx < part_size(i));
    const NodeId stripe = block_ * static_cast<NodeId>(parts_);
    const NodeId stripe_index = idx / block_;
    const NodeId offset = idx % block_;
    return stripe_index * stripe + static_cast<NodeId>(i) * block_ + offset;
  }

  Count local_index(NodeId u) const override {
    PAGEN_CHECK(u < n_);
    const NodeId stripe = block_ * static_cast<NodeId>(parts_);
    return (u / stripe) * block_ + (u % block_);
  }

  std::string name() const override {
    return "BCP(" + std::to_string(block_) + ")";
  }

 private:
  void check_rank(Rank i) const { PAGEN_CHECK(i >= 0 && i < parts_); }

  NodeId n_;
  int parts_;
  NodeId block_;
};

}  // namespace

std::unique_ptr<Partition> make_block_cyclic(NodeId n, int parts,
                                             NodeId block) {
  return std::make_unique<BlockCyclicPartition>(n, parts, block);
}

}  // namespace pagen::partition
