#include "partition/lcp_solver.h"

#include <cmath>

#include "util/error.h"
#include "util/harmonic.h"

namespace pagen::partition {
namespace {

// Continuous extension of k * H_k (k H_k with H evaluated at real k via the
// asymptotic form; exact at integer k within table range).
double k_times_h(const pagen::Harmonic& h, double k) {
  if (k <= 0.0) return 0.0;
  // Interpolate between floor and ceil to keep the function smooth for the
  // binary search; the load function only needs monotonicity.
  const auto lo = static_cast<std::uint64_t>(k);
  const double frac = k - static_cast<double>(lo);
  const double at_lo = static_cast<double>(lo) * h(lo);
  const double at_hi = static_cast<double>(lo + 1) * h(lo + 1);
  return at_lo + frac * (at_hi - at_lo);
}

}  // namespace

double block_load(NodeId n, double lo, double hi, double b) {
  PAGEN_CHECK(hi >= lo);
  static const pagen::Harmonic h(1 << 16);
  const double hn1 = h(n - 1);
  return (hi - lo) * (hn1 + b) - (k_times_h(h, hi) - k_times_h(h, lo));
}

std::vector<double> solve_eq10(NodeId n, int parts, double b) {
  PAGEN_CHECK(parts >= 1);
  PAGEN_CHECK(n >= static_cast<NodeId>(parts));
  const double total = block_load(n, 0.0, static_cast<double>(n), b);
  const double target = total / parts;

  std::vector<double> bounds(static_cast<std::size_t>(parts) + 1, 0.0);
  bounds[static_cast<std::size_t>(parts)] = static_cast<double>(n);
  for (int i = 0; i + 1 < parts; ++i) {
    // Find hi with L(bounds[i], hi) == target. L is increasing in hi (every
    // node contributes positive load), so bisection converges.
    double lo = bounds[static_cast<std::size_t>(i)];
    double hi_min = lo;
    double hi_max = static_cast<double>(n);
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (hi_min + hi_max);
      if (block_load(n, lo, mid, b) < target) {
        hi_min = mid;
      } else {
        hi_max = mid;
      }
    }
    bounds[static_cast<std::size_t>(i) + 1] = 0.5 * (hi_min + hi_max);
  }
  return bounds;
}

LcpParams fit_lcp_params(NodeId n, int parts, double b) {
  const auto bounds = solve_eq10(n, parts, b);
  const auto p = static_cast<std::size_t>(parts);
  LcpParams out;
  if (parts == 1) {
    out.a = static_cast<double>(n);
    out.d = 0.0;
    return out;
  }
  // The paper samples two points of the exact solution to get the slope d;
  // since solve_eq10 already yields every block size, we least-squares the
  // whole series instead (same linear model, better-balanced residuals).
  // The intercept then comes from the sum constraint sum_i (a + i d) = n
  // (Appendix A.2, Eq. 12).
  const auto dp = static_cast<double>(parts);
  double sum_i = 0, sum_ii = 0, sum_s = 0, sum_is = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const auto di = static_cast<double>(i);
    const double size = bounds[i + 1] - bounds[i];
    sum_i += di;
    sum_ii += di * di;
    sum_s += size;
    sum_is += di * size;
  }
  out.d = (dp * sum_is - sum_i * sum_s) / (dp * sum_ii - sum_i * sum_i);
  out.a = static_cast<double>(n) / dp - (dp - 1.0) * out.d / 2.0;
  return out;
}

}  // namespace pagen::partition
