// Block-cyclic partitioning — an extension beyond the paper's three schemes.
//
// Blocks of `block` consecutive nodes are dealt to ranks round-robin:
// owner(u) = (u / block) mod P. block = 1 is exactly RRP; block = ceil(n/P)
// is exactly UCP. Sweeping the block size interpolates between RRP's
// perfect balance and UCP's locality (consecutive runs of nodes per rank),
// quantifying the trade-off the paper's Section 3.5 discusses qualitatively
// ("some algorithms require the consecutive nodes to be stored in the same
// processor"). See bench/ext_block_cyclic.
#pragma once

#include <memory>

#include "partition/partition.h"

namespace pagen::partition {

/// Create a block-cyclic partition with the given block size (>= 1).
[[nodiscard]] std::unique_ptr<Partition> make_block_cyclic(NodeId n, int parts,
                                                           NodeId block);

}  // namespace pagen::partition
