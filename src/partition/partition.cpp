#include "partition/partition.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "partition/lcp_solver.h"
#include "util/error.h"

namespace pagen::partition {

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kUcp:
      return "UCP";
    case Scheme::kLcp:
      return "LCP";
    case Scheme::kRrp:
      return "RRP";
  }
  PAGEN_CHECK(false);
  return {};
}

Scheme scheme_from_string(const std::string& name) {
  if (name == "UCP" || name == "ucp") return Scheme::kUcp;
  if (name == "LCP" || name == "lcp") return Scheme::kLcp;
  if (name == "RRP" || name == "rrp") return Scheme::kRrp;
  PAGEN_CHECK_MSG(false, "unknown partition scheme: " << name);
  return Scheme::kUcp;
}

namespace {

/// Uniform consecutive partitioning (Appendix A.1): block size B = ceil(n/P),
/// owner(u) = floor(u / B).
class UcpPartition final : public Partition {
 public:
  UcpPartition(NodeId n, int parts)
      : n_(n), parts_(parts), block_((n + parts - 1) / parts) {
    PAGEN_CHECK(parts >= 1);
    PAGEN_CHECK(n >= static_cast<NodeId>(parts));
  }

  int num_parts() const override { return parts_; }
  NodeId num_nodes() const override { return n_; }

  Rank owner(NodeId u) const override {
    PAGEN_CHECK(u < n_);
    return static_cast<Rank>(u / block_);
  }

  Count part_size(Rank i) const override {
    check_rank(i);
    const NodeId lo = static_cast<NodeId>(i) * block_;
    const NodeId hi = std::min(n_, lo + block_);
    return hi > lo ? hi - lo : 0;
  }

  NodeId node_at(Rank i, Count idx) const override {
    check_rank(i);
    PAGEN_CHECK(idx < part_size(i));
    return static_cast<NodeId>(i) * block_ + idx;
  }

  Count local_index(NodeId u) const override {
    PAGEN_CHECK(u < n_);
    return u % block_;
  }

  std::string name() const override { return "UCP"; }

 private:
  void check_rank(Rank i) const { PAGEN_CHECK(i >= 0 && i < parts_); }

  NodeId n_;
  int parts_;
  NodeId block_;
};

/// Round-robin partitioning (Appendix A.3): owner(u) = u mod P.
class RrpPartition final : public Partition {
 public:
  RrpPartition(NodeId n, int parts) : n_(n), parts_(parts) {
    PAGEN_CHECK(parts >= 1);
    PAGEN_CHECK(n >= static_cast<NodeId>(parts));
  }

  int num_parts() const override { return parts_; }
  NodeId num_nodes() const override { return n_; }

  Rank owner(NodeId u) const override {
    PAGEN_CHECK(u < n_);
    return static_cast<Rank>(u % static_cast<NodeId>(parts_));
  }

  Count part_size(Rank i) const override {
    check_rank(i);
    const auto p = static_cast<NodeId>(parts_);
    return (n_ - static_cast<NodeId>(i) + p - 1) / p;
  }

  NodeId node_at(Rank i, Count idx) const override {
    check_rank(i);
    PAGEN_CHECK(idx < part_size(i));
    return static_cast<NodeId>(i) + idx * static_cast<NodeId>(parts_);
  }

  Count local_index(NodeId u) const override {
    PAGEN_CHECK(u < n_);
    return u / static_cast<NodeId>(parts_);
  }

  std::string name() const override { return "RRP"; }

 private:
  void check_rank(Rank i) const { PAGEN_CHECK(i >= 0 && i < parts_); }

  NodeId n_;
  int parts_;
};

/// Linear consecutive partitioning (Appendix A.2): block i holds ~a + i*d
/// nodes. Integer boundaries are rounded from the arithmetic progression and
/// repaired to stay strictly increasing and sum to n. owner(u) starts from
/// the closed-form quadratic inverse and applies a bounded local correction,
/// keeping the O(1) Criterion A guarantee.
class LcpPartition final : public Partition {
 public:
  LcpPartition(NodeId n, int parts) : n_(n), parts_(parts) {
    PAGEN_CHECK(parts >= 1);
    PAGEN_CHECK(n >= static_cast<NodeId>(parts));
    const LcpParams params = fit_lcp_params(n, parts);
    a_ = params.a;
    d_ = params.d;
    bounds_.resize(static_cast<std::size_t>(parts) + 1);
    bounds_[0] = 0;
    for (int i = 1; i <= parts; ++i) {
      const double x = static_cast<double>(i);
      const double boundary = a_ * x + d_ * x * (x - 1.0) / 2.0;
      bounds_[static_cast<std::size_t>(i)] =
          static_cast<NodeId>(std::llround(std::max(0.0, boundary)));
    }
    bounds_[static_cast<std::size_t>(parts)] = n;
    // Repair rounding: every block must hold at least one node.
    for (int i = 1; i <= parts; ++i) {
      auto& b = bounds_[static_cast<std::size_t>(i)];
      b = std::max(b, bounds_[static_cast<std::size_t>(i) - 1] + 1);
    }
    for (int i = parts - 1; i >= 1; --i) {
      auto& b = bounds_[static_cast<std::size_t>(i)];
      b = std::min(b, bounds_[static_cast<std::size_t>(i) + 1] - 1);
    }
    PAGEN_CHECK(bounds_[static_cast<std::size_t>(parts)] == n);
  }

  int num_parts() const override { return parts_; }
  NodeId num_nodes() const override { return n_; }

  Rank owner(NodeId u) const override {
    PAGEN_CHECK(u < n_);
    // Closed-form inverse of the progression (paper, Appendix A.2), then a
    // bounded walk to absorb integer rounding of the boundaries.
    Rank i = guess(u);
    while (i > 0 && u < bounds_[static_cast<std::size_t>(i)]) --i;
    while (i + 1 < parts_ + 1 && u >= bounds_[static_cast<std::size_t>(i) + 1])
      ++i;
    PAGEN_DCHECK(i >= 0 && i < parts_);
    return i;
  }

  Count part_size(Rank i) const override {
    check_rank(i);
    return bounds_[static_cast<std::size_t>(i) + 1] -
           bounds_[static_cast<std::size_t>(i)];
  }

  NodeId node_at(Rank i, Count idx) const override {
    check_rank(i);
    PAGEN_CHECK(idx < part_size(i));
    return bounds_[static_cast<std::size_t>(i)] + idx;
  }

  Count local_index(NodeId u) const override {
    return u - bounds_[static_cast<std::size_t>(owner(u))];
  }

  std::string name() const override { return "LCP"; }

  /// Fitted progression parameters (exposed for the Fig. 3 bench).
  [[nodiscard]] LcpParams params() const { return {a_, d_}; }

 private:
  void check_rank(Rank i) const { PAGEN_CHECK(i >= 0 && i < parts_); }

  Rank guess(NodeId u) const {
    if (d_ == 0.0) {
      return static_cast<Rank>(
          std::min<NodeId>(u / std::max<NodeId>(1, n_ / parts_),
                           static_cast<NodeId>(parts_ - 1)));
    }
    const double two_a_minus_d = 2.0 * a_ - d_;
    const double disc =
        two_a_minus_d * two_a_minus_d + 8.0 * d_ * static_cast<double>(u);
    if (disc < 0.0) return 0;
    const double x = (-two_a_minus_d + std::sqrt(disc)) / (2.0 * d_);
    const auto i = static_cast<long long>(std::floor(x));
    return static_cast<Rank>(
        std::clamp<long long>(i, 0, static_cast<long long>(parts_) - 1));
  }

  NodeId n_;
  int parts_;
  double a_ = 0.0;
  double d_ = 0.0;
  std::vector<NodeId> bounds_;
};

}  // namespace

std::unique_ptr<Partition> make_partition(Scheme scheme, NodeId n, int parts) {
  switch (scheme) {
    case Scheme::kUcp:
      return std::make_unique<UcpPartition>(n, parts);
    case Scheme::kLcp:
      return std::make_unique<LcpPartition>(n, parts);
    case Scheme::kRrp:
      return std::make_unique<RrpPartition>(n, parts);
  }
  PAGEN_CHECK(false);
  return nullptr;
}

}  // namespace pagen::partition
