// Node partitioning schemes (Section 3.5 + Appendix A of the paper).
//
// A partition splits nodes {0..n-1} into P disjoint parts, one per rank.
// Criterion A of the paper requires owner(u) in O(1) with no communication;
// every scheme here satisfies it.  Parts are iterated through node_at(),
// which enumerates a part's nodes in increasing label order (the order the
// generation loop processes them).
#pragma once

#include <memory>
#include <string>

#include "util/types.h"

namespace pagen::partition {

enum class Scheme {
  kUcp,  ///< uniform consecutive (equal blocks)
  kLcp,  ///< linear consecutive (arithmetic-progression blocks, Eq. 10 approx)
  kRrp,  ///< round robin (owner = u mod P)
};

[[nodiscard]] std::string to_string(Scheme s);
[[nodiscard]] Scheme scheme_from_string(const std::string& name);

class Partition {
 public:
  virtual ~Partition() = default;

  [[nodiscard]] virtual int num_parts() const = 0;
  [[nodiscard]] virtual NodeId num_nodes() const = 0;

  /// Rank owning node u. O(1), no communication (Criterion A).
  [[nodiscard]] virtual Rank owner(NodeId u) const = 0;

  /// Number of nodes assigned to part i.
  [[nodiscard]] virtual Count part_size(Rank i) const = 0;

  /// The idx-th node (0-based, ascending label order) of part i.
  [[nodiscard]] virtual NodeId node_at(Rank i, Count idx) const = 0;

  /// Inverse of node_at for u's owning part: node_at(owner(u), local_index(u))
  /// == u. O(1) for every scheme; ranks index their per-node state with it.
  [[nodiscard]] virtual Count local_index(NodeId u) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Construct a partition of `n` nodes into `parts` parts under `scheme`.
[[nodiscard]] std::unique_ptr<Partition> make_partition(Scheme scheme,
                                                        NodeId n, int parts);

}  // namespace pagen::partition
