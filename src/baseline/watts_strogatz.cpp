#include "baseline/watts_strogatz.h"

#include <unordered_set>

#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::baseline {
namespace {

/// Pack an undirected pair into one key for the duplicate set.
std::uint64_t pair_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (a << 32) | b;
}

}  // namespace

graph::EdgeList watts_strogatz(const WsConfig& config) {
  PAGEN_CHECK_MSG(config.k >= 2 && config.k % 2 == 0,
                  "k must be even and >= 2");
  PAGEN_CHECK_MSG(config.k < config.n, "k must be below n");
  PAGEN_CHECK_MSG(config.n < (NodeId{1} << 32),
                  "WS generator packs pairs into 64 bits");
  PAGEN_CHECK(config.beta >= 0.0 && config.beta <= 1.0);
  rng::Xoshiro256pp rng(config.seed);

  const NodeId n = config.n;
  const NodeId half_k = config.k / 2;

  graph::EdgeList edges;
  edges.reserve(n * half_k);
  std::unordered_set<std::uint64_t> present;
  present.reserve(n * half_k * 2);

  // Ring lattice: node v connects to v+1 .. v+k/2 (mod n).
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId j = 1; j <= half_k; ++j) {
      const NodeId w = (v + j) % n;
      edges.push_back({v, w});
      present.insert(pair_key(v, w));
    }
  }

  // Rewire: with probability beta, replace edge (v, w) by (v, w') for a
  // uniform w' avoiding self-loops and duplicates.
  for (auto& e : edges) {
    if (rng.unit() >= config.beta) continue;
    // Fully rewired graphs can exhaust options around high-degree nodes;
    // bail out of the attempt loop rather than loop forever.
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const NodeId candidate = rng.below(n);
      if (candidate == e.u) continue;
      if (present.contains(pair_key(e.u, candidate))) continue;
      present.erase(pair_key(e.u, e.v));
      present.insert(pair_key(e.u, candidate));
      e.v = candidate;
      break;
    }
  }
  return edges;
}

}  // namespace pagen::baseline
