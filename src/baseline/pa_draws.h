// The draw schema: every random choice of the copy-model generators.
//
// Both the sequential copy model and the distributed Algorithm 3.1/3.2 pull
// their choices exclusively through this schema, so a choice is a pure
// function of (seed, t, e, attempt) — independent of rank count, partition
// scheme, message timing, and execution order.  This is what makes the
// parallel generator *exact* and testable against the sequential one
// (DESIGN.md §5).
#pragma once

#include "baseline/pa_config.h"
#include "rng/counter_rng.h"
#include "util/types.h"

namespace pagen {

class DrawSchema {
 public:
  explicit DrawSchema(const PaConfig& config)
      : rng_(config.seed), p_(config.p), x_(config.x) {}

  /// Line 3 / Line 4: the uniformly selected node k for (t, e, attempt).
  /// Range is [1, t-1] for x = 1 and [x, t-1] for the general algorithm.
  [[nodiscard]] NodeId pick_k(NodeId t, NodeId e, std::uint64_t attempt) const {
    const NodeId lo = x_ == 1 ? NodeId{1} : x_;
    return rng_.range(lo, t - 1, {kPurposeK, t, e, attempt});
  }

  /// Line 5: true means "connect directly to k" (probability p).
  [[nodiscard]] bool pick_direct(NodeId t, NodeId e,
                                 std::uint64_t attempt) const {
    return rng_.coin(p_, {kPurposeCoin, t, e, attempt});
  }

  /// Line 12: which of k's x edges to copy (0-based).
  [[nodiscard]] NodeId pick_l(NodeId t, NodeId e, std::uint64_t attempt) const {
    return rng_.below(x_, {kPurposeL, t, e, attempt});
  }

 private:
  static constexpr std::uint64_t kPurposeK = 1;
  static constexpr std::uint64_t kPurposeCoin = 2;
  static constexpr std::uint64_t kPurposeL = 3;

  rng::CounterRng rng_;
  double p_;
  NodeId x_;
};

}  // namespace pagen
