#include "baseline/copy_model_seq.h"

#include <unordered_set>

#include "baseline/pa_draws.h"
#include "util/error.h"

namespace pagen::baseline {

std::vector<NodeId> copy_model_targets(const PaConfig& config) {
  PAGEN_CHECK_MSG(config.x == 1, "copy_model_targets is the x = 1 model");
  PAGEN_CHECK(config.n >= 2);
  const DrawSchema draws(config);

  std::vector<NodeId> f(config.n, kNil);
  f[1] = 0;  // bootstrap edge (1, 0)
  for (NodeId t = 2; t < config.n; ++t) {
    const NodeId k = draws.pick_k(t, 0, 0);
    f[t] = draws.pick_direct(t, 0, 0) ? k : f[k];
    PAGEN_DCHECK(f[t] < t);
  }
  return f;
}

void extend_copy_model(std::vector<NodeId>& targets, const PaConfig& config) {
  PAGEN_CHECK_MSG(config.x == 1, "extend_copy_model is the x = 1 model");
  PAGEN_CHECK_MSG(targets.size() >= 2, "seed network too small");
  PAGEN_CHECK_MSG(config.n >= targets.size(), "cannot shrink a network");
  const DrawSchema draws(config);
  const auto old_n = static_cast<NodeId>(targets.size());
  targets.resize(config.n, kNil);
  for (NodeId t = old_n; t < config.n; ++t) {
    const NodeId k = draws.pick_k(t, 0, 0);
    targets[t] = draws.pick_direct(t, 0, 0) ? k : targets[k];
    PAGEN_DCHECK(targets[t] < t);
  }
}

graph::EdgeList copy_model_x1(const PaConfig& config) {
  const auto f = copy_model_targets(config);
  graph::EdgeList edges;
  edges.reserve(config.n - 1);
  for (NodeId t = 1; t < config.n; ++t) {
    edges.push_back({t, f[t]});
  }
  return edges;
}

GeneralResult copy_model_general(const PaConfig& config) {
  PAGEN_CHECK(config.x >= 1);
  if (config.x == 1) {
    GeneralResult r;
    r.targets = copy_model_targets(config);
    r.edges = copy_model_x1(config);
    return r;
  }
  PAGEN_CHECK_MSG(config.n > config.x, "need n > x");
  PAGEN_CHECK_MSG(config.p >= 0.0 && config.p < 1.0,
                  "general model needs p in [0, 1): p = 1 cannot supply x "
                  "distinct endpoints for node x+1");
  const DrawSchema draws(config);
  const NodeId x = config.x;

  GeneralResult result;
  result.targets.assign(config.n * x, kNil);
  result.edges.reserve(expected_edge_count(config));

  // Initial clique over nodes 0..x-1.
  for (NodeId i = 0; i < x; ++i) {
    for (NodeId j = i + 1; j < x; ++j) {
      result.edges.push_back({j, i});
    }
  }
  // Bootstrap convention: node x connects to every clique node (the paper's
  // Line 4 range [x, t-1] is empty at t = x; see DESIGN.md §5).
  for (NodeId e = 0; e < x; ++e) {
    result.targets[x * x + e] = e;
    result.edges.push_back({x, e});
  }

  constexpr std::uint64_t kMaxAttempts = 100000;
  for (NodeId t = x + 1; t < config.n; ++t) {
    auto* row = &result.targets[t * x];
    auto is_dup = [&](NodeId v) {
      for (NodeId e = 0; e < x; ++e) {
        if (row[e] == v) return true;
      }
      return false;
    };
    for (NodeId e = 0; e < x; ++e) {
      // Algorithm 3.2 retry semantics: a duplicate on the direct path goes
      // back to Line 4 (fresh k and coin); a duplicate discovered on the
      // copy path re-draws k and l but stays on the copy path (Lines 27-29).
      bool locked_copy = false;
      for (std::uint64_t attempt = 0;; ++attempt) {
        PAGEN_CHECK_MSG(attempt < kMaxAttempts,
                        "duplicate-retry cap exceeded at node " << t);
        const NodeId k = draws.pick_k(t, e, attempt);
        if (!locked_copy && draws.pick_direct(t, e, attempt)) {
          if (!is_dup(k)) {
            row[e] = k;
            break;
          }
        } else {
          const NodeId l = draws.pick_l(t, e, attempt);
          const NodeId v = result.targets[k * x + l];
          PAGEN_DCHECK(v != kNil);
          if (!is_dup(v)) {
            row[e] = v;
            break;
          }
          locked_copy = true;
        }
        ++result.retries;
      }
      PAGEN_DCHECK(row[e] < t);
      result.edges.push_back({t, row[e]});
    }
  }
  return result;
}

}  // namespace pagen::baseline
