// Selection-chain and dependency-chain tracing (Section 3.4).
//
// For the x = 1 copy model the chains are fully determined by the per-node
// draws (k_t, coin_t); this tracer reconstructs them without running the
// message-passing algorithm, enabling the empirical validation of
// Lemma 3.1 (Pr{i in S_t} = 1/i), Theorem 3.3 (E[L_t] <= log n,
// L_max = O(log n) w.h.p.) and the constant-p bound E[L_t] <= 1/p.
#pragma once

#include <vector>

#include "baseline/pa_config.h"
#include "util/types.h"

namespace pagen::baseline {

class ChainTrace {
 public:
  /// Evaluate all draws for the x = 1 model under `config`.
  explicit ChainTrace(const PaConfig& config);

  [[nodiscard]] NodeId n() const { return static_cast<NodeId>(k_.size()); }

  /// The k selected for node t (t >= 2).
  [[nodiscard]] NodeId selected(NodeId t) const { return k_[t]; }

  /// True if node t resolved directly (F_t = k, Line 5-6).
  [[nodiscard]] bool independent(NodeId t) const { return direct_[t] != 0; }

  /// Selection chain S_t = <t, k_t, k_{k_t}, ..., 1> (node count >= 1).
  [[nodiscard]] std::vector<NodeId> selection_chain(NodeId t) const;

  /// |D_t| for every t in [2, n): dependency-chain node counts. D_t stops at
  /// the first independent node (inclusive). Entries 0 and 1 are 0.
  [[nodiscard]] std::vector<Count> dependency_lengths() const;

  /// |S_t| for every t in [2, n). Entries 0 and 1 are 0 and 1.
  [[nodiscard]] std::vector<Count> selection_lengths() const;

 private:
  std::vector<NodeId> k_;        // k_[t] valid for t >= 2
  std::vector<std::uint8_t> direct_;
};

}  // namespace pagen::baseline
