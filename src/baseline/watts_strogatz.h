// Watts–Strogatz small-world generator (Nature 1998), one of the related
// models the paper's introduction surveys: a ring lattice whose edges are
// rewired with probability beta, interpolating between regular lattices
// (beta = 0) and Erdős–Rényi-like graphs (beta = 1).
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::baseline {

struct WsConfig {
  NodeId n = 1000;
  /// Each node connects to its k nearest ring neighbors; k must be even
  /// and < n. The lattice has n*k/2 edges.
  NodeId k = 4;
  /// Rewiring probability for each lattice edge.
  double beta = 0.1;
  std::uint64_t seed = 1;
};

/// Generate a Watts–Strogatz graph. Rewired endpoints are resampled until
/// the result is neither a self-loop nor a duplicate, so the output is
/// always a simple graph with exactly n*k/2 edges.
[[nodiscard]] graph::EdgeList watts_strogatz(const WsConfig& config);

}  // namespace pagen::baseline
