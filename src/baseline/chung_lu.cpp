#include "baseline/chung_lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::baseline {

graph::EdgeList chung_lu(const ClConfig& config) {
  const std::size_t n = config.weights.size();
  PAGEN_CHECK_MSG(n >= 2, "need at least two nodes");
  for (double w : config.weights) PAGEN_CHECK_MSG(w >= 0.0, "negative weight");

  // Sort node indices by weight descending; the skipping bound requires
  // within-row monotone non-increasing probabilities.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return config.weights[a] > config.weights[b];
  });
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = config.weights[order[i]];

  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  PAGEN_CHECK_MSG(total > 0.0, "all weights zero");

  rng::Xoshiro256pp rng(config.seed);
  graph::EdgeList edges;

  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (w[i] == 0.0) break;  // all remaining rows are zero too
    std::size_t j = i + 1;
    double p = std::min(1.0, w[i] * w[j] / total);
    while (j < n && p > 0.0) {
      if (p < 1.0) {
        const double r = rng.unit();
        j += static_cast<std::size_t>(std::log1p(-r) / std::log1p(-p));
      }
      if (j < n) {
        const double q = std::min(1.0, w[i] * w[j] / total);
        if (rng.unit() < q / p) {
          edges.push_back({order[i], order[j]});
        }
        p = q;
        ++j;
      }
    }
  }
  return edges;
}

std::vector<double> power_law_weights(NodeId n, double gamma,
                                      double mean_degree) {
  PAGEN_CHECK(gamma > 2.0);
  PAGEN_CHECK(mean_degree > 0.0 && n >= 1);
  std::vector<double> w(n);
  const double exponent = -1.0 / (gamma - 1.0);
  // i0 offsets the head so the maximum weight stays O(n^{1/(gamma-1)}).
  const double i0 = 1.0;
  double sum = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + i0, exponent);
    sum += w[i];
  }
  const double scale = mean_degree * static_cast<double>(n) / sum;
  for (double& x : w) x *= scale;
  return w;
}

}  // namespace pagen::baseline
