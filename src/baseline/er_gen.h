// Erdős–Rényi G(n, p) via geometric edge skipping (Batagelj–Brandes).
//
// The paper's introduction positions efficient ER generation as the sibling
// problem (and cites the parallelization of this exact algorithm); we include
// it as a comparison substrate for the examples and tests.  Expected time
// O(n + m): instead of testing all binom(n,2) pairs, jump between successive
// edges with geometrically distributed skips.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::baseline {

struct ErConfig {
  NodeId n = 1000;
  double p = 0.01;  ///< independent edge probability
  std::uint64_t seed = 1;
};

[[nodiscard]] graph::EdgeList erdos_renyi(const ErConfig& config);

}  // namespace pagen::baseline
