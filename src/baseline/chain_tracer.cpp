#include "baseline/chain_tracer.h"

#include "baseline/pa_draws.h"
#include "util/error.h"

namespace pagen::baseline {

ChainTrace::ChainTrace(const PaConfig& config) {
  PAGEN_CHECK_MSG(config.x == 1, "chains are defined for the x = 1 model");
  PAGEN_CHECK(config.n >= 2);
  const DrawSchema draws(config);
  k_.assign(config.n, kNil);
  direct_.assign(config.n, 0);
  direct_[1] = 1;  // F_1 = 0 is fixed, so node 1 is independent
  for (NodeId t = 2; t < config.n; ++t) {
    k_[t] = draws.pick_k(t, 0, 0);
    direct_[t] = draws.pick_direct(t, 0, 0) ? 1 : 0;
  }
}

std::vector<NodeId> ChainTrace::selection_chain(NodeId t) const {
  PAGEN_CHECK(t >= 1 && t < n());
  std::vector<NodeId> chain{t};
  while (t >= 2) {
    t = k_[t];
    chain.push_back(t);
  }
  return chain;
}

std::vector<Count> ChainTrace::dependency_lengths() const {
  std::vector<Count> len(n(), 0);
  if (n() >= 2) len[1] = 1;
  for (NodeId t = 2; t < n(); ++t) {
    len[t] = independent(t) ? 1 : 1 + len[k_[t]];
  }
  return len;
}

std::vector<Count> ChainTrace::selection_lengths() const {
  std::vector<Count> len(n(), 0);
  if (n() >= 2) len[1] = 1;
  for (NodeId t = 2; t < n(); ++t) {
    len[t] = 1 + len[k_[t]];
  }
  return len;
}

}  // namespace pagen::baseline
