#include "baseline/ba_batagelj_brandes.h"

#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::baseline {

graph::EdgeList ba_batagelj_brandes(const PaConfig& config) {
  const NodeId n = config.n;
  const NodeId x = std::max<NodeId>(config.x, 1);
  PAGEN_CHECK(n > x);
  rng::Xoshiro256pp rng(config.seed);

  graph::EdgeList edges;
  edges.reserve(expected_edge_count(config));
  // Repetition list: node id appears once per unit of degree.
  std::vector<NodeId> repeated;
  repeated.reserve(2 * expected_edge_count(config));

  auto add_edge = [&](NodeId u, NodeId v) {
    edges.push_back({u, v});
    repeated.push_back(u);
    repeated.push_back(v);
  };

  if (x == 1) {
    add_edge(1, 0);
  } else {
    for (NodeId i = 0; i < x; ++i) {
      for (NodeId j = i + 1; j < x; ++j) add_edge(j, i);
    }
  }

  std::vector<NodeId> chosen;
  for (NodeId t = (x == 1 ? NodeId{2} : x); t < n; ++t) {
    chosen.clear();
    while (chosen.size() < x) {
      const NodeId v = repeated[rng.below(repeated.size())];
      bool dup = false;
      for (NodeId c : chosen) dup = dup || (c == v);
      if (!dup) chosen.push_back(v);
    }
    for (NodeId v : chosen) add_edge(t, v);
  }
  return edges;
}

}  // namespace pagen::baseline
