#include "baseline/er_gen.h"

#include <cmath>

#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::baseline {

graph::EdgeList erdos_renyi(const ErConfig& config) {
  PAGEN_CHECK(config.n >= 1);
  PAGEN_CHECK(config.p >= 0.0 && config.p <= 1.0);
  graph::EdgeList edges;
  if (config.p == 0.0 || config.n < 2) return edges;

  rng::Xoshiro256pp rng(config.seed);
  if (config.p == 1.0) {
    for (NodeId v = 1; v < config.n; ++v) {
      for (NodeId w = 0; w < v; ++w) edges.push_back({v, w});
    }
    return edges;
  }

  // Enumerate pairs (v, w), w < v, in lexicographic order and skip ahead by
  // 1 + floor(log(1-r) / log(1-p)) pairs between successive edges.
  const double log_q = std::log(1.0 - config.p);
  NodeId v = 1;
  // Signed position within row v; -1 means "before the first column".
  std::int64_t w = -1;
  while (v < config.n) {
    const double r = rng.unit();
    const double skip = std::floor(std::log1p(-r) / log_q);
    w += 1 + static_cast<std::int64_t>(skip);
    while (w >= static_cast<std::int64_t>(v) && v < config.n) {
      w -= static_cast<std::int64_t>(v);
      ++v;
    }
    if (v < config.n) edges.push_back({v, static_cast<NodeId>(w)});
  }
  return edges;
}

}  // namespace pagen::baseline
