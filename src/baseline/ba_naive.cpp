#include "baseline/ba_naive.h"

#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::baseline {

graph::EdgeList ba_naive(const PaConfig& config) {
  const NodeId n = config.n;
  const NodeId x = std::max<NodeId>(config.x, 1);
  PAGEN_CHECK(n > x);
  rng::Xoshiro256pp rng(config.seed);

  graph::EdgeList edges;
  edges.reserve(expected_edge_count(config));
  std::vector<Count> degree(n, 0);
  Count total_degree = 0;

  auto add_edge = [&](NodeId u, NodeId v) {
    edges.push_back({u, v});
    ++degree[u];
    ++degree[v];
    total_degree += 2;
  };

  // Initial clique (a single bootstrap edge when x = 1).
  if (x == 1) {
    add_edge(1, 0);
  } else {
    for (NodeId i = 0; i < x; ++i) {
      for (NodeId j = i + 1; j < x; ++j) add_edge(j, i);
    }
  }

  std::vector<NodeId> chosen;
  for (NodeId t = (x == 1 ? NodeId{2} : x); t < n; ++t) {
    chosen.clear();
    while (chosen.size() < x) {
      // Degree-proportional pick by linear scan of cumulative degree.
      Count r = rng.below(total_degree);
      NodeId v = 0;
      while (r >= degree[v]) {
        r -= degree[v];
        ++v;
      }
      bool dup = false;
      for (NodeId c : chosen) dup = dup || (c == v);
      if (!dup) chosen.push_back(v);
    }
    for (NodeId v : chosen) add_edge(t, v);
  }
  return edges;
}

}  // namespace pagen::baseline
