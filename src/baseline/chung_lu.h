// Chung–Lu random graphs with given expected degrees, via the efficient
// Miller–Hagberg algorithm (WAW 2011) — reference [23] of the paper and one
// of the models its introduction surveys.
//
// Given weights w_i, edge (i, j) exists independently with probability
// min(1, w_i w_j / S), S = sum w. The efficient algorithm sorts weights
// descending and skips geometrically inside each row using the current
// probability upper bound, for expected time O(n + m).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::baseline {

struct ClConfig {
  /// Expected degree per node. Need not be sorted; nodes are relabeled
  /// internally and edges reported under the original labels.
  std::vector<double> weights;
  std::uint64_t seed = 1;
};

/// Generate a Chung–Lu graph. No self-loops, no duplicate edges.
[[nodiscard]] graph::EdgeList chung_lu(const ClConfig& config);

/// Power-law weight sequence: w_i ∝ (i + i0)^{-1/(gamma-1)}, scaled so the
/// mean weight is `mean_degree`. The standard way to make Chung–Lu emulate
/// a scale-free network with exponent gamma.
[[nodiscard]] std::vector<double> power_law_weights(NodeId n, double gamma,
                                                    double mean_degree);

}  // namespace pagen::baseline
