// R-MAT recursive matrix graph generator (Chakrabarti, Zhan, Faloutsos —
// SDM 2004), reference [7] of the paper.
//
// Each edge is placed by descending log2(n) levels of the adjacency
// matrix, choosing a quadrant with probabilities (a, b, c, d) at each
// level. Skewed parameters (a >> d) yield heavy-tailed degree
// distributions; R-MAT is the generator behind Graph500.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::baseline {

struct RmatConfig {
  /// log2 of the node count (n = 2^scale), Graph500 terminology.
  unsigned scale = 10;

  /// Edges to generate. R-MAT naturally produces duplicates and self-loops;
  /// set `simple` to filter them (the count then applies before filtering).
  Count edges = 8192;

  /// Quadrant probabilities; must be positive and sum to 1.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;

  /// Remove self-loops and duplicate undirected edges from the output.
  bool simple = false;

  std::uint64_t seed = 1;
};

[[nodiscard]] graph::EdgeList rmat(const RmatConfig& config);

}  // namespace pagen::baseline
