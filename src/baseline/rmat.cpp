#include "baseline/rmat.h"

#include <algorithm>
#include <cmath>

#include "graph/edge_list.h"
#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::baseline {

graph::EdgeList rmat(const RmatConfig& config) {
  PAGEN_CHECK(config.scale >= 1 && config.scale < 63);
  PAGEN_CHECK(config.a > 0 && config.b >= 0 && config.c >= 0 && config.d >= 0);
  PAGEN_CHECK_MSG(std::abs(config.a + config.b + config.c + config.d - 1.0) <
                      1e-9,
                  "quadrant probabilities must sum to 1");
  rng::Xoshiro256pp rng(config.seed);

  const double ab = config.a + config.b;
  const double abc = ab + config.c;

  graph::EdgeList edges;
  edges.reserve(config.edges);
  for (Count e = 0; e < config.edges; ++e) {
    NodeId u = 0, v = 0;
    for (unsigned level = 0; level < config.scale; ++level) {
      const double r = rng.unit();
      u <<= 1;
      v <<= 1;
      if (r >= ab) u |= 1;                // quadrants c or d: lower half rows
      if (r >= config.a && r < ab) v |= 1;  // quadrant b: right half cols
      if (r >= abc) v |= 1;               // quadrant d: right half cols
    }
    edges.push_back({u, v});
  }

  if (config.simple) {
    graph::normalize(edges);
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    std::erase_if(edges, [](const graph::Edge& e) { return e.u == e.v; });
  }
  return edges;
}

}  // namespace pagen::baseline
