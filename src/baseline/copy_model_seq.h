// Sequential copy-model generators (Section 3.1, Kumar et al. model).
//
// These are the reference implementations the parallel algorithms are tested
// against: for x = 1 the parallel generator must reproduce these edges
// bitwise (same seed), and for x >= 1 it must match all structural
// invariants.  Both pull randomness exclusively through DrawSchema.
#pragma once

#include <vector>

#include "baseline/pa_config.h"
#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::baseline {

/// x = 1 copy model: returns F where F[t] is node t's chosen endpoint
/// (F[0] = kNil, F[1] = 0). The network is the tree {(t, F[t]) : t >= 1}.
[[nodiscard]] std::vector<NodeId> copy_model_targets(const PaConfig& config);

/// Grow an existing x = 1 network in place to config.n nodes ("they are
/// evolving in nature", Section 3.1): because every draw is a pure function
/// of (seed, t), extending a network is indistinguishable from having
/// generated the larger network in one shot — extend(k)∘generate(m) ==
/// generate(k) for the same seed. `targets` must be a prefix produced by
/// copy_model_targets (or a previous extend) under the same config seed/p.
void extend_copy_model(std::vector<NodeId>& targets, const PaConfig& config);

/// Edge-list form of copy_model_targets.
[[nodiscard]] graph::EdgeList copy_model_x1(const PaConfig& config);

/// General x >= 1 sequential copy model (the sequential semantics of
/// Algorithm 3.2).
struct GeneralResult {
  /// targets[t * x + e] = F_t(e). Clique rows (t < x) are kNil except the
  /// bootstrap convention row t == x, where F_x(e) = e.
  std::vector<NodeId> targets;
  graph::EdgeList edges;
  /// Duplicate-triggered retries (paper lines 9-10 and 26-29).
  Count retries = 0;
};
[[nodiscard]] GeneralResult copy_model_general(const PaConfig& config);

}  // namespace pagen::baseline
