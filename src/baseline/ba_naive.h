// Naive Θ(n²) Barabási–Albert generator (Section 3.1's strawman).
//
// Maintains the degree array and finds each preferentially-attached target
// by a linear scan over cumulative degrees.  Exists as the motivating
// baseline for the sequential-algorithms benchmark (tab_seq_baselines) and
// as an independent implementation of the BA distribution for statistical
// cross-checks at small n.
#pragma once

#include "baseline/pa_config.h"
#include "graph/edge_list.h"

namespace pagen::baseline {

/// Generate a BA network by direct degree-proportional sampling. Quadratic;
/// intended for n up to ~1e5. Uses a stateful xoshiro stream seeded from
/// config.seed (counter-determinism is not needed for a strawman).
[[nodiscard]] graph::EdgeList ba_naive(const PaConfig& config);

}  // namespace pagen::baseline
