// Configuration shared by all preferential-attachment generators.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace pagen {

/// Parameters of one preferential-attachment generation run. Used by the
/// sequential baselines and the parallel algorithms alike, so experiments
/// compare the same workload across implementations.
struct PaConfig {
  /// Total number of nodes, labeled 0..n-1.
  NodeId n = 1000;

  /// Edges contributed by each new node (the paper's x). x = 1 produces a
  /// random tree; x >= 2 starts from an x-clique and yields a connected
  /// simple graph with binom(x,2) + (n - x) * x edges.
  NodeId x = 1;

  /// Copy-model probability of taking the directly selected node. p = 0.5
  /// reproduces the Barabási–Albert process exactly (Section 3.1).
  double p = 0.5;

  /// Seed for the counter-based RNG. Runs with equal seeds produce equal
  /// graphs for x = 1 regardless of rank count or partitioning scheme.
  std::uint64_t seed = 1;
};

/// Total edges the generators emit for a config: an x-clique plus x edges
/// per subsequent node (for x = 1: the single bootstrap edge (1,0) plus one
/// edge per node t >= 2, i.e. n - 1 in total).
[[nodiscard]] constexpr Count expected_edge_count(const PaConfig& c) {
  if (c.x == 1) return c.n >= 2 ? c.n - 1 : 0;
  const Count clique = c.x * (c.x - 1) / 2;
  return clique + (c.n - c.x) * c.x;
}

}  // namespace pagen
