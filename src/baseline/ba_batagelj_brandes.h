// Batagelj–Brandes O(m) Barabási–Albert generator (Phys. Rev. E 71, 2005).
//
// The efficient sequential algorithm the paper cites as the state of the
// art (and the algorithm behind NetworkX's generator): keep a repetition
// list in which every node appears once per unit of degree; preferential
// attachment is then a uniform pick from the list.
#pragma once

#include "baseline/pa_config.h"
#include "graph/edge_list.h"

namespace pagen::baseline {

/// Generate a BA network with the repetition-list method. O(m) time and
/// memory; the comparison target of bench/tab_seq_baselines.
[[nodiscard]] graph::EdgeList ba_batagelj_brandes(const PaConfig& config);

}  // namespace pagen::baseline
