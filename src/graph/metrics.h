// Structural graph metrics used by the examples and the analysis pipeline.
//
// Exact computations where cheap; sampled estimators (with an explicit
// sample size) where the exact cost would be super-linear — PA networks
// reach millions of edges in this repo's default workloads.
#pragma once

#include <cstdint>

#include "graph/csr.h"
#include "util/types.h"

namespace pagen::graph {

/// Global clustering coefficient (transitivity): 3*triangles / wedges.
/// Exact; cost O(sum_v deg(v)^2 / 2) — fine up to moderate densities.
[[nodiscard]] double global_clustering(const CsrGraph& g);

/// Mean local clustering coefficient over `samples` uniformly chosen nodes
/// of degree >= 2 (Watts–Strogatz definition). Deterministic in `seed`.
[[nodiscard]] double sampled_local_clustering(const CsrGraph& g,
                                              std::size_t samples,
                                              std::uint64_t seed);

/// Degree assortativity: Pearson correlation of endpoint degrees over all
/// edges (Newman 2002). Negative for PA networks (hubs attach to leaves).
[[nodiscard]] double degree_assortativity(const CsrGraph& g);

/// Lower bound on the diameter by a double BFS sweep (start at `seed_node`,
/// run BFS, restart from the farthest node). Ignores unreachable nodes.
[[nodiscard]] Count double_sweep_diameter(const CsrGraph& g, NodeId seed_node);

/// Mean shortest-path length from `samples` random sources to all their
/// reachable targets (the small-world statistic). Deterministic in `seed`.
[[nodiscard]] double sampled_mean_distance(const CsrGraph& g,
                                           std::size_t samples,
                                           std::uint64_t seed);

/// Average neighbor degree as a function of node degree — knn(d), the
/// standard mixing diagnostic (Pastor-Satorras et al.): decreasing knn(d)
/// means disassortative mixing, the signature of growth-model PA networks.
struct KnnPoint {
  Count degree = 0;   ///< node degree class
  double knn = 0.0;   ///< mean degree of neighbors of nodes in this class
  Count nodes = 0;    ///< class size
};
[[nodiscard]] std::vector<KnnPoint> average_neighbor_degree(const CsrGraph& g);

}  // namespace pagen::graph
