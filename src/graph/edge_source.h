// Streaming access to a sharded edge set.
//
// The distributed analysis kernels (core/distributed_*.h) make exactly one
// pass over each rank's shard to build their local state; nothing in them
// needs the shard materialized. EdgeSource captures that contract: a shard
// count, a node count, and a visit function that streams one shard's edges
// through a callback in batches. In-memory shards adapt via
// make_edge_source; the compressed on-disk store serves the same interface
// block by block (store/graph_view.h), so a billion-edge graph feeds the
// kernels under a fixed memory budget.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::graph {

/// Receives consecutive runs of one shard's edges, in shard order.
using EdgeVisitor = std::function<void(std::span<const Edge>)>;

struct EdgeSource {
  NodeId num_nodes = 0;
  int num_shards = 0;
  /// Stream shard `shard`'s edges through `visit`. Must be safe to call
  /// concurrently for *distinct* shards — the kernels call it from one rank
  /// thread per shard.
  std::function<void(int shard, const EdgeVisitor& visit)> visit_shard;
};

/// Adapt in-memory shards (non-owning: `shards` must outlive the source).
[[nodiscard]] inline EdgeSource make_edge_source(
    NodeId num_nodes, const std::vector<EdgeList>& shards) {
  EdgeSource source;
  source.num_nodes = num_nodes;
  source.num_shards = static_cast<int>(shards.size());
  source.visit_shard = [&shards](int shard, const EdgeVisitor& visit) {
    visit(shards[static_cast<std::size_t>(shard)]);
  };
  return source;
}

}  // namespace pagen::graph
