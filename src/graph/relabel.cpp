#include "graph/relabel.h"

#include <numeric>

#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::graph {

std::vector<NodeId> random_permutation(NodeId n, std::uint64_t seed) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  rng::Xoshiro256pp rng(seed);
  for (NodeId i = n; i > 1; --i) {
    const NodeId j = rng.below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

EdgeList relabel(std::span<const Edge> edges,
                 std::span<const NodeId> permutation) {
  EdgeList out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    PAGEN_CHECK_MSG(e.u < permutation.size() && e.v < permutation.size(),
                    "endpoint outside the permutation's domain");
    out.push_back({permutation[e.u], permutation[e.v]});
  }
  return out;
}

std::vector<NodeId> invert_permutation(std::span<const NodeId> permutation) {
  std::vector<NodeId> inverse(permutation.size(), kNil);
  for (NodeId i = 0; i < permutation.size(); ++i) {
    const NodeId target = permutation[i];
    PAGEN_CHECK_MSG(target < permutation.size() && inverse[target] == kNil,
                    "input is not a permutation");
    inverse[target] = i;
  }
  return inverse;
}

}  // namespace pagen::graph
