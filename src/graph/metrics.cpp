#include "graph/metrics.h"

#include <algorithm>
#include <map>

#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::graph {
namespace {

/// Triangles through v = edges among v's neighbors; counted via sorted
/// adjacency intersection.
Count triangles_at(const CsrGraph& g, NodeId v) {
  const auto nb = g.neighbors(v);
  Count triangles = 0;
  for (std::size_t i = 0; i < nb.size(); ++i) {
    for (std::size_t j = i + 1; j < nb.size(); ++j) {
      if (g.has_edge(nb[i], nb[j])) ++triangles;
    }
  }
  return triangles;
}

}  // namespace

double global_clustering(const CsrGraph& g) {
  Count closed = 0;  // ordered wedge closures = 3 * triangles (per vertex)
  Count wedges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Count d = g.degree(v);
    if (d < 2) continue;
    wedges += d * (d - 1) / 2;
    closed += triangles_at(g, v);
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(wedges);
}

double sampled_local_clustering(const CsrGraph& g, std::size_t samples,
                                std::uint64_t seed) {
  PAGEN_CHECK(samples >= 1);
  rng::Xoshiro256pp rng(seed);
  double acc = 0.0;
  std::size_t used = 0;
  // Rejection-sample nodes of degree >= 2; cap attempts to avoid spinning
  // on degenerate graphs.
  for (std::size_t attempt = 0; attempt < samples * 50 && used < samples;
       ++attempt) {
    const NodeId v = rng.below(g.num_nodes());
    const Count d = g.degree(v);
    if (d < 2) continue;
    const double possible = static_cast<double>(d) * (d - 1) / 2.0;
    acc += static_cast<double>(triangles_at(g, v)) / possible;
    ++used;
  }
  return used == 0 ? 0.0 : acc / static_cast<double>(used);
}

double degree_assortativity(const CsrGraph& g) {
  // Pearson correlation over directed edge endpoint pairs (each undirected
  // edge contributes both orientations, the standard symmetrization).
  double sx = 0, sxx = 0, sxy = 0;
  Count pairs = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dv = static_cast<double>(g.degree(v));
    for (NodeId w : g.neighbors(v)) {
      const auto dw = static_cast<double>(g.degree(w));
      sx += dv;
      sxx += dv * dv;
      sxy += dv * dw;
      ++pairs;
    }
  }
  if (pairs == 0) return 0.0;
  const auto n = static_cast<double>(pairs);
  const double mean = sx / n;
  const double var = sxx / n - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = sxy / n - mean * mean;
  return cov / var;
}

Count double_sweep_diameter(const CsrGraph& g, NodeId seed_node) {
  PAGEN_CHECK(seed_node < g.num_nodes());
  auto farthest = [&](NodeId from) {
    const auto dist = g.bfs_distances(from);
    NodeId best = from;
    Count best_d = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] != kNil && dist[v] > best_d) {
        best_d = dist[v];
        best = v;
      }
    }
    return std::pair{best, best_d};
  };
  const auto [far_node, d1] = farthest(seed_node);
  const auto [far2, d2] = farthest(far_node);
  (void)far2;
  return std::max(d1, d2);
}

std::vector<KnnPoint> average_neighbor_degree(const CsrGraph& g) {
  // Accumulate (sum of mean neighbor degrees, node count) per degree class.
  std::map<Count, std::pair<double, Count>> classes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Count d = g.degree(v);
    if (d == 0) continue;
    double acc = 0.0;
    for (NodeId w : g.neighbors(v)) acc += static_cast<double>(g.degree(w));
    auto& [sum, count] = classes[d];
    sum += acc / static_cast<double>(d);
    ++count;
  }
  std::vector<KnnPoint> out;
  out.reserve(classes.size());
  for (const auto& [degree, entry] : classes) {
    out.push_back({degree, entry.first / static_cast<double>(entry.second),
                   entry.second});
  }
  return out;
}

double sampled_mean_distance(const CsrGraph& g, std::size_t samples,
                             std::uint64_t seed) {
  PAGEN_CHECK(samples >= 1);
  rng::Xoshiro256pp rng(seed);
  double acc = 0.0;
  Count pairs = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const NodeId source = rng.below(g.num_nodes());
    const auto dist = g.bfs_distances(source);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v != source && dist[v] != kNil) {
        acc += static_cast<double>(dist[v]);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : acc / static_cast<double>(pairs);
}

}  // namespace pagen::graph
