#include "graph/csr.h"

#include <algorithm>
#include <deque>

#include "util/error.h"

namespace pagen::graph {

CsrGraph::CsrGraph(std::span<const Edge> edges, NodeId n)
    : n_(n), m_(edges.size()), offsets_(n + 1, 0) {
  for (const Edge& e : edges) {
    PAGEN_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (NodeId v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];

  adjacency_.resize(2 * m_);
  std::vector<Count> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    adjacency_[cursor[e.u]++] = e.v;
    adjacency_[cursor[e.v]++] = e.u;
  }
  for (NodeId v = 0; v < n; ++v) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  PAGEN_CHECK(u < n_ && v < n_);
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

NodeId CsrGraph::max_degree_node() const {
  NodeId best = kNil;
  Count best_deg = 0;
  for (NodeId v = 0; v < n_; ++v) {
    if (best == kNil || degree(v) > best_deg) {
      best = v;
      best_deg = degree(v);
    }
  }
  return best;
}

std::vector<NodeId> CsrGraph::bfs_distances(NodeId source) const {
  PAGEN_CHECK(source < n_);
  std::vector<NodeId> dist(n_, kNil);
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (NodeId w : neighbors(v)) {
      if (dist[w] == kNil) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace pagen::graph
