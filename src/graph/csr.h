// Compressed sparse row adjacency built from an edge list.
//
// The analysis passes (clustering samples, hub extraction, BFS distance
// probes in the examples) operate on CSR rather than edge lists.
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::graph {

class CsrGraph {
 public:
  /// Build an undirected CSR over nodes [0, n). Each edge (u, v) appears in
  /// both u's and v's adjacency. Neighbor lists are sorted ascending.
  CsrGraph(std::span<const Edge> edges, NodeId n);

  [[nodiscard]] NodeId num_nodes() const { return n_; }
  [[nodiscard]] Count num_edges() const { return m_; }

  [[nodiscard]] Count degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// True if (u, v) is an edge; O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Node with the largest degree (ties to the smallest id); kNil when empty.
  [[nodiscard]] NodeId max_degree_node() const;

  /// Breadth-first distances from `source`; unreachable nodes get kNil.
  [[nodiscard]] std::vector<NodeId> bfs_distances(NodeId source) const;

 private:
  NodeId n_;
  Count m_;
  std::vector<Count> offsets_;     // size n_ + 1
  std::vector<NodeId> adjacency_;  // size 2 * m_
};

}  // namespace pagen::graph
