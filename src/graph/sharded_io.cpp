#include "graph/sharded_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/io.h"
#include "util/error.h"

namespace pagen::graph {
namespace {

constexpr const char* kManifestName = "manifest.pagen";

}  // namespace

std::string shard_path(const std::string& dir, int rank) {
  std::ostringstream os;
  os << dir << "/edges." << rank << ".shard";
  return os.str();
}

void write_shard(const std::string& dir, int rank,
                 std::span<const Edge> edges) {
  std::filesystem::create_directories(dir);
  save_binary(shard_path(dir, rank), edges);
}

void write_manifest(const std::string& dir, NodeId num_nodes,
                    std::span<const EdgeList> shards) {
  // Verify every shard file round-trips with the expected count before
  // committing the manifest — a missing shard must fail loudly now, not at
  // load time on another machine.
  for (int r = 0; r < static_cast<int>(shards.size()); ++r) {
    const auto on_disk = load_shard(dir, r);
    PAGEN_CHECK_MSG(on_disk.size() == shards[static_cast<std::size_t>(r)].size(),
                    "shard " << r << " on disk has " << on_disk.size()
                             << " edges, expected "
                             << shards[static_cast<std::size_t>(r)].size());
  }
  std::ofstream os(dir + "/" + kManifestName);
  PAGEN_CHECK_MSG(os.is_open(), "cannot write manifest in " << dir);
  os << "pagen-shards 1\n";
  os << "nodes " << num_nodes << "\n";
  os << "shards " << shards.size() << "\n";
  for (const auto& shard : shards) os << shard.size() << "\n";
  PAGEN_CHECK(os.good());
}

void save_sharded(const std::string& dir, NodeId num_nodes,
                  std::span<const EdgeList> shards) {
  for (int r = 0; r < static_cast<int>(shards.size()); ++r) {
    write_shard(dir, r, shards[static_cast<std::size_t>(r)]);
  }
  write_manifest(dir, num_nodes, shards);
}

ShardManifest load_manifest(const std::string& dir) {
  std::ifstream is(dir + "/" + kManifestName);
  PAGEN_CHECK_MSG(is.is_open(), "no manifest in " << dir);
  std::string magic;
  int version = 0;
  is >> magic >> version;
  PAGEN_CHECK_MSG(magic == "pagen-shards" && version == 1,
                  "unrecognized manifest header");
  ShardManifest m;
  std::string key;
  is >> key >> m.num_nodes;
  PAGEN_CHECK(key == "nodes");
  is >> key >> m.num_shards;
  PAGEN_CHECK(key == "shards" && m.num_shards >= 0);
  m.shard_edge_counts.resize(static_cast<std::size_t>(m.num_shards));
  for (auto& c : m.shard_edge_counts) is >> c;
  PAGEN_CHECK_MSG(is.good() || is.eof(), "truncated manifest");
  return m;
}

EdgeList load_shard(const std::string& dir, int rank) {
  return load_binary(shard_path(dir, rank));
}

EdgeList load_all_shards(const std::string& dir) {
  const ShardManifest m = load_manifest(dir);
  EdgeList all;
  all.reserve(m.total_edges());
  for (int r = 0; r < m.num_shards; ++r) {
    const auto shard = load_shard(dir, r);
    PAGEN_CHECK_MSG(
        shard.size() == m.shard_edge_counts[static_cast<std::size_t>(r)],
        "shard " << r << " edge count disagrees with manifest");
    all.insert(all.end(), shard.begin(), shard.end());
  }
  return all;
}

}  // namespace pagen::graph
