// Per-rank sharded edge persistence.
//
// The paper's execution model: "The processors have a shared file system and
// they read-write data files from the same external memory. However, such
// reading and writing of the files are done independently."  A sharded
// store is a directory holding one checksummed binary edge file per rank
// plus a manifest; ranks write their shard without coordination and a
// loader reassembles (or selectively reads) them.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_list.h"

namespace pagen::graph {

struct ShardManifest {
  NodeId num_nodes = 0;
  int num_shards = 0;
  std::vector<Count> shard_edge_counts;

  [[nodiscard]] Count total_edges() const {
    Count total = 0;
    for (Count c : shard_edge_counts) total += c;
    return total;
  }
};

/// Path of shard `rank` inside `dir`.
[[nodiscard]] std::string shard_path(const std::string& dir, int rank);

/// Write one shard file (safe to call concurrently for distinct ranks).
void write_shard(const std::string& dir, int rank,
                 std::span<const Edge> edges);

/// Write the manifest after all shards exist. Verifies each shard is
/// present and its edge count matches.
void write_manifest(const std::string& dir, NodeId num_nodes,
                    std::span<const EdgeList> shards);

/// Convenience: write all shards + manifest from one process.
void save_sharded(const std::string& dir, NodeId num_nodes,
                  std::span<const EdgeList> shards);

/// Read the manifest; throws CheckError if absent or malformed.
[[nodiscard]] ShardManifest load_manifest(const std::string& dir);

/// Load a single shard.
[[nodiscard]] EdgeList load_shard(const std::string& dir, int rank);

/// Load and concatenate every shard in rank order; validates counts
/// against the manifest.
[[nodiscard]] EdgeList load_all_shards(const std::string& dir);

}  // namespace pagen::graph
