// Node relabeling utilities.
//
// PA generators correlate node label with age (and therefore degree); many
// downstream consumers — partitioners, samplers, anonymized releases —
// want that correlation destroyed. A seeded Fisher–Yates permutation keeps
// the operation reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::graph {

/// Uniform random permutation of [0, n) (Fisher–Yates, seeded).
[[nodiscard]] std::vector<NodeId> random_permutation(NodeId n,
                                                     std::uint64_t seed);

/// Apply `permutation` to every endpoint: new id of u is permutation[u].
[[nodiscard]] EdgeList relabel(std::span<const Edge> edges,
                               std::span<const NodeId> permutation);

/// Inverse permutation: inverse[permutation[i]] == i.
[[nodiscard]] std::vector<NodeId> invert_permutation(
    std::span<const NodeId> permutation);

}  // namespace pagen::graph
