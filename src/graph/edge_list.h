// Edge lists and simple-graph audits.
//
// Generators produce undirected edges (t, F_t(e)). The audits here back the
// correctness tests: Algorithm 3.2 must never emit self-loops or parallel
// edges, and must emit exactly clique(x) + (n - x) * x edges.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.h"

namespace pagen::graph {

/// One undirected edge. Generators emit (new node, chosen endpoint).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

/// Largest endpoint + 1; 0 for an empty list.
[[nodiscard]] NodeId num_nodes(std::span<const Edge> edges);

/// Canonicalize each edge to (min, max) and sort lexicographically.
/// After this, duplicates are adjacent.
void normalize(EdgeList& edges);

/// Number of self-loop edges (u == v).
[[nodiscard]] Count count_self_loops(std::span<const Edge> edges);

/// Number of duplicate undirected edges, i.e. edges beyond the first
/// occurrence of each endpoint pair. Takes a copy internally (the input is
/// not reordered).
[[nodiscard]] Count count_duplicates(std::span<const Edge> edges);

/// Degree of every node in [0, n): each undirected edge contributes one to
/// both endpoints.
[[nodiscard]] std::vector<Count> degree_sequence(std::span<const Edge> edges,
                                                 NodeId n);

/// Number of connected components over nodes [0, n) (isolated nodes each
/// count as one component). Union-find with path halving.
[[nodiscard]] Count connected_components(std::span<const Edge> edges, NodeId n);

}  // namespace pagen::graph
