// Edge-list serialization: text ("u v" rows) and a checksummed binary format.
//
// The paper's processors "read-write data files from the same external
// memory ... independently"; the binary writer supports appending per-rank
// shards and concatenating them, so each rank can persist its local edges
// without coordination.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.h"

namespace pagen::graph {

/// Write edges as "u v\n" rows.
void write_text(std::ostream& os, std::span<const Edge> edges);

/// Parse "u v" rows; ignores blank lines and lines starting with '#'.
[[nodiscard]] EdgeList read_text(std::istream& is);

/// Binary format: 8-byte magic, u64 edge count, packed (u64, u64) edges,
/// u64 FNV-1a checksum over the edge bytes.
void write_binary(std::ostream& os, std::span<const Edge> edges);

/// Read the binary format; throws CheckError on a magic/size/checksum
/// mismatch (a truncated shard must never silently load).
[[nodiscard]] EdgeList read_binary(std::istream& is);

/// Convenience file wrappers.
void save_binary(const std::string& path, std::span<const Edge> edges);
[[nodiscard]] EdgeList load_binary(const std::string& path);

}  // namespace pagen::graph
