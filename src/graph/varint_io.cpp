// pagen-lint: legacy-edge-io — the pre-store whole-file varint format; new
// on-disk edge bytes go through src/store/ (docs/storage.md).
#include "graph/varint_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace pagen::graph {
namespace {

constexpr char kMagic[8] = {'P', 'A', 'G', 'E', 'N', 'V', 'I', '1'};

}  // namespace

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::span<const std::uint8_t> buf,
                         std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    PAGEN_CHECK_MSG(pos < buf.size(), "truncated varint stream");
    const std::uint8_t byte = buf[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  PAGEN_CHECK_MSG(false, "overlong varint");
  return 0;
}

void write_varint_edges(std::ostream& os, std::span<const Edge> edges) {
  EdgeList sorted(edges.begin(), edges.end());
  normalize(sorted);

  std::vector<std::uint8_t> buf;
  buf.reserve(sorted.size() * 3);
  NodeId prev_u = 0;
  NodeId prev_v = 0;
  for (const Edge& e : sorted) {
    const NodeId du = e.u - prev_u;  // non-negative: sorted by (u, v)
    put_varint(buf, du);
    if (du == 0) {
      // Same u-run: v is strictly increasing after dedup-free normalize
      // (duplicates permitted: delta may be 0).
      put_varint(buf, e.v - prev_v);
    } else {
      put_varint(buf, e.v);
    }
    prev_u = e.u;
    prev_v = e.v;
  }

  os.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = sorted.size();
  const std::uint64_t bytes = buf.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  os.write(reinterpret_cast<const char*>(&bytes), sizeof(bytes));
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
  PAGEN_CHECK_MSG(os.good(), "varint edge write failed");
}

EdgeList read_varint_edges(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  PAGEN_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, sizeof(magic)) == 0,
                  "bad varint edge-file magic");
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  is.read(reinterpret_cast<char*>(&bytes), sizeof(bytes));
  PAGEN_CHECK(is.good());
  std::vector<std::uint8_t> buf(bytes);
  is.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(bytes));
  PAGEN_CHECK_MSG(is.good(), "truncated varint edge file");

  EdgeList edges;
  edges.reserve(count);
  std::size_t pos = 0;
  NodeId prev_u = 0;
  NodeId prev_v = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const NodeId du = get_varint(buf, pos);
    const NodeId u = prev_u + du;
    const NodeId v = du == 0 ? prev_v + get_varint(buf, pos)
                             : static_cast<NodeId>(get_varint(buf, pos));
    edges.push_back({u, v});
    prev_u = u;
    prev_v = v;
  }
  PAGEN_CHECK_MSG(pos == buf.size(), "trailing bytes in varint edge file");
  return edges;
}

void save_varint(const std::string& path, std::span<const Edge> edges) {
  std::ofstream os(path, std::ios::binary);
  PAGEN_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_varint_edges(os, edges);
}

EdgeList load_varint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PAGEN_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  return read_varint_edges(is);
}

void save_bytes_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    PAGEN_CHECK_MSG(os.is_open(), "cannot open " << tmp << " for writing");
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    PAGEN_CHECK_MSG(os.good(), "write failed for " << tmp);
  }
  PAGEN_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "atomic rename to " << path << " failed");
}

bool try_load_bytes(const std::string& path, std::vector<std::uint8_t>& out) {
  out.clear();
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return false;
  is.seekg(0, std::ios::end);
  const std::streamsize size = is.tellg();
  is.seekg(0, std::ios::beg);
  out.resize(static_cast<std::size_t>(size));
  if (size > 0) is.read(reinterpret_cast<char*>(out.data()), size);
  PAGEN_CHECK_MSG(is.good(), "read failed for " << path);
  return true;
}

}  // namespace pagen::graph
