// pagen-lint: legacy-edge-io — the pre-store flat binary format; new
// on-disk edge bytes go through src/store/ (docs/storage.md).
#include "graph/io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace pagen::graph {
namespace {

constexpr char kMagic[8] = {'P', 'A', 'G', 'E', 'N', 'E', 'L', '1'};

std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void write_text(std::ostream& os, std::span<const Edge> edges) {
  for (const Edge& e : edges) {
    os << e.u << ' ' << e.v << '\n';
  }
}

EdgeList read_text(std::istream& is) {
  EdgeList edges;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    Edge e;
    PAGEN_CHECK_MSG(static_cast<bool>(row >> e.u >> e.v),
                    "malformed edge row: " << line);
    edges.push_back(e);
  }
  return edges;
}

void write_binary(std::ostream& os, std::span<const Edge> edges) {
  os.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = edges.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  static_assert(sizeof(Edge) == 2 * sizeof(NodeId));
  os.write(reinterpret_cast<const char*>(edges.data()),
           static_cast<std::streamsize>(edges.size_bytes()));
  const std::uint64_t checksum = fnv1a(edges.data(), edges.size_bytes());
  os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  PAGEN_CHECK_MSG(os.good(), "binary edge write failed");
}

EdgeList read_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  PAGEN_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, sizeof(magic)) == 0,
                  "bad edge-file magic");
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  PAGEN_CHECK(is.good());
  EdgeList edges(count);
  is.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(count * sizeof(Edge)));
  PAGEN_CHECK_MSG(is.good(), "truncated edge file");
  std::uint64_t checksum = 0;
  is.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  PAGEN_CHECK_MSG(is.good(), "missing edge-file checksum");
  PAGEN_CHECK_MSG(checksum == fnv1a(edges.data(), count * sizeof(Edge)),
                  "edge-file checksum mismatch");
  return edges;
}

void save_binary(const std::string& path, std::span<const Edge> edges) {
  std::ofstream os(path, std::ios::binary);
  PAGEN_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_binary(os, edges);
}

EdgeList load_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PAGEN_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  return read_binary(is);
}

}  // namespace pagen::graph
