// Compressed edge serialization: delta + varint encoding.
//
// Sorted edge lists compress extremely well: consecutive edges share or
// nearly share their first endpoint, so we store (delta u, v or delta v)
// as LEB128 varints. Generated PA edge lists shrink ~4-6x against the raw
// 16-byte binary format, which matters at the paper's billions-of-edges
// scale where I/O dominates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.h"

namespace pagen::graph {

/// Append a LEB128 varint encoding of `value` to `out`.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Decode one varint starting at `pos`; advances `pos`. Throws CheckError
/// on truncation or overlong encodings (> 10 bytes). Vectors convert
/// implicitly; the span form lets the store's block codec decode slices.
[[nodiscard]] std::uint64_t get_varint(std::span<const std::uint8_t> buf,
                                       std::size_t& pos);

/// Serialize edges in compressed form. The list is sorted (normalized
/// copy) internally; the on-disk order is canonical (min, max) ascending.
void write_varint_edges(std::ostream& os, std::span<const Edge> edges);

/// Read a compressed edge file. Output is in canonical normalized order.
[[nodiscard]] EdgeList read_varint_edges(std::istream& is);

/// File convenience wrappers.
void save_varint(const std::string& path, std::span<const Edge> edges);
[[nodiscard]] EdgeList load_varint(const std::string& path);

/// Write `bytes` to `path` atomically: the data lands in a sibling temp
/// file first and is renamed into place, so a reader (or a crash mid-write)
/// never observes a torn file. The crash-consistency primitive of the
/// checkpoint/restart path (core/checkpoint.h).
void save_bytes_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Read a whole file into `out`. Returns false (leaving `out` empty) when
/// the file does not exist or cannot be opened — a missing checkpoint means
/// "recover from nothing", not an error.
[[nodiscard]] bool try_load_bytes(const std::string& path,
                                  std::vector<std::uint8_t>& out);

}  // namespace pagen::graph
