#include "graph/edge_list.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace pagen::graph {

NodeId num_nodes(std::span<const Edge> edges) {
  NodeId maxv = 0;
  bool any = false;
  for (const Edge& e : edges) {
    maxv = std::max({maxv, e.u, e.v});
    any = true;
  }
  return any ? maxv + 1 : 0;
}

void normalize(EdgeList& edges) {
  for (Edge& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
}

Count count_self_loops(std::span<const Edge> edges) {
  Count c = 0;
  for (const Edge& e : edges) {
    if (e.u == e.v) ++c;
  }
  return c;
}

Count count_duplicates(std::span<const Edge> edges) {
  EdgeList copy(edges.begin(), edges.end());
  normalize(copy);
  Count dups = 0;
  for (std::size_t i = 1; i < copy.size(); ++i) {
    if (copy[i] == copy[i - 1]) ++dups;
  }
  return dups;
}

std::vector<Count> degree_sequence(std::span<const Edge> edges, NodeId n) {
  std::vector<Count> deg(n, 0);
  for (const Edge& e : edges) {
    PAGEN_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
    ++deg[e.u];
    ++deg[e.v];
  }
  return deg;
}

namespace {

// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<Count> size_;
};

}  // namespace

Count connected_components(std::span<const Edge> edges, NodeId n) {
  if (n == 0) return 0;
  UnionFind uf(n);
  Count components = n;
  for (const Edge& e : edges) {
    PAGEN_CHECK(e.u < n && e.v < n);
    if (uf.unite(e.u, e.v)) --components;
  }
  return components;
}

}  // namespace pagen::graph
