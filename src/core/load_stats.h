// Per-rank load accounting in the paper's own metrics.
//
// Section 3.5: "we measure the computational load in terms of the number of
// nodes per processor, the number of outgoing messages (request message)
// from a processor, and the number of incoming messages (response messages)
// to a processor."  Figure 7 plots nodes, outgoing requests, incoming
// requests and total load per rank; the scaling model (scaling_model.h)
// converts these counters into modeled parallel time.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "util/types.h"

namespace pagen::core {

/// Cross-rank reduction semantics (operator+= / merge_across_ranks): every
/// field is a volume and sums, EXCEPT max_queue_depth, which is a
/// high-water mark and takes the max — "total queue depth" across ranks is
/// not a quantity the paper (or anyone) plots, but "deepest queue anywhere"
/// bounds the Theorem 3.3 wait chains.
struct RankLoad {
  Count nodes = 0;              ///< [sum] nodes assigned to the rank (type A work)
  Count requests_sent = 0;      ///< [sum] outgoing <request> messages (type B)
  Count requests_received = 0;  ///< [sum] incoming <request> messages (type C)
  Count resolved_sent = 0;      ///< [sum] outgoing <resolved> messages
  Count resolved_received = 0;  ///< [sum] incoming <resolved> messages
  Count queued = 0;             ///< [sum] requests parked because F_k was NILL
  Count local_waits = 0;        ///< [sum] same-rank waits (no message needed)
  Count retries = 0;            ///< [sum] duplicate-edge retries (x >= 1 only)
  Count edges = 0;              ///< [sum] edges emitted by this rank
  Count max_queue_depth = 0;    ///< [max] deepest wait queue Q_k(,l) observed

  /// All algorithm-level messages this rank touched.
  [[nodiscard]] Count total_messages() const {
    return requests_sent + requests_received + resolved_sent +
           resolved_received;
  }

  /// The paper's Fig. 7(d) metric: nodes + incoming + outgoing messages.
  [[nodiscard]] Count total_load() const { return nodes + total_messages(); }

  RankLoad& operator+=(const RankLoad& o) {
    nodes += o.nodes;
    requests_sent += o.requests_sent;
    requests_received += o.requests_received;
    resolved_sent += o.resolved_sent;
    resolved_received += o.resolved_received;
    queued += o.queued;
    local_waits += o.local_waits;
    retries += o.retries;
    edges += o.edges;
    max_queue_depth = std::max(max_queue_depth, o.max_queue_depth);
    return *this;
  }
};

using LoadVector = std::vector<RankLoad>;

/// Reduce per-rank loads into one world-wide RankLoad, with the per-field
/// semantics documented on RankLoad (sums + max_queue_depth as max). The
/// one way benches and exporters compute Fig. 7 totals.
[[nodiscard]] inline RankLoad merge_across_ranks(
    std::span<const RankLoad> loads) {
  RankLoad total;
  for (const RankLoad& l : loads) total += l;
  return total;
}

/// Fold one rank's load counters into its metrics registry under "pa.*".
/// max_queue_depth is exported as a gauge so the cross-rank merge in the
/// JSON "totals" takes its max, mirroring operator+=.
inline void record_metrics(obs::MetricsRegistry& reg, const RankLoad& l) {
  reg.counter("pa.nodes").add(l.nodes);
  reg.counter("pa.requests_sent").add(l.requests_sent);
  reg.counter("pa.requests_received").add(l.requests_received);
  reg.counter("pa.resolved_sent").add(l.resolved_sent);
  reg.counter("pa.resolved_received").add(l.resolved_received);
  reg.counter("pa.queued").add(l.queued);
  reg.counter("pa.local_waits").add(l.local_waits);
  reg.counter("pa.retries").add(l.retries);
  reg.counter("pa.edges").add(l.edges);
  reg.counter("pa.total_load").add(l.total_load());
  reg.gauge("pa.max_queue_depth")
      .set(static_cast<std::int64_t>(l.max_queue_depth));
}

}  // namespace pagen::core
