// Per-rank load accounting in the paper's own metrics.
//
// Section 3.5: "we measure the computational load in terms of the number of
// nodes per processor, the number of outgoing messages (request message)
// from a processor, and the number of incoming messages (response messages)
// to a processor."  Figure 7 plots nodes, outgoing requests, incoming
// requests and total load per rank; the scaling model (scaling_model.h)
// converts these counters into modeled parallel time.
#pragma once

#include <algorithm>
#include <vector>

#include "util/types.h"

namespace pagen::core {

struct RankLoad {
  Count nodes = 0;              ///< nodes assigned to the rank (type A work)
  Count requests_sent = 0;      ///< outgoing <request> messages (type B)
  Count requests_received = 0;  ///< incoming <request> messages (type C)
  Count resolved_sent = 0;      ///< outgoing <resolved> messages
  Count resolved_received = 0;  ///< incoming <resolved> messages
  Count queued = 0;             ///< requests parked because F_k was NILL
  Count local_waits = 0;        ///< same-rank waits (no message needed)
  Count retries = 0;            ///< duplicate-edge retries (x >= 1 only)
  Count edges = 0;              ///< edges emitted by this rank
  Count max_queue_depth = 0;    ///< deepest wait queue Q_k(,l) observed

  /// All algorithm-level messages this rank touched.
  [[nodiscard]] Count total_messages() const {
    return requests_sent + requests_received + resolved_sent +
           resolved_received;
  }

  /// The paper's Fig. 7(d) metric: nodes + incoming + outgoing messages.
  [[nodiscard]] Count total_load() const { return nodes + total_messages(); }

  RankLoad& operator+=(const RankLoad& o) {
    nodes += o.nodes;
    requests_sent += o.requests_sent;
    requests_received += o.requests_received;
    resolved_sent += o.resolved_sent;
    resolved_received += o.resolved_received;
    queued += o.queued;
    local_waits += o.local_waits;
    retries += o.retries;
    edges += o.edges;
    max_queue_depth = std::max(max_queue_depth, o.max_queue_depth);
    return *this;
  }
};

using LoadVector = std::vector<RankLoad>;

}  // namespace pagen::core
