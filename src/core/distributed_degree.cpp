#include "core/distributed_degree.h"

#include <map>
#include <span>

#include "mps/bsp.h"
#include "mps/engine.h"
#include "mps/send_buffer.h"
#include "util/error.h"

namespace pagen::core {
namespace {

constexpr int kTagIncrement = 10;

}  // namespace

DegreeHistogram distributed_degree_distribution(
    const std::vector<graph::EdgeList>& shards, NodeId n,
    partition::Scheme scheme) {
  PAGEN_CHECK(!shards.empty());
  return distributed_degree_distribution(graph::make_edge_source(n, shards),
                                         scheme);
}

DegreeHistogram distributed_degree_distribution(
    const graph::EdgeSource& source, partition::Scheme scheme) {
  PAGEN_CHECK(source.num_shards > 0);
  const int ranks = source.num_shards;
  const auto part = partition::make_partition(scheme, source.num_nodes, ranks);

  // Merged histogram, assembled identically on every rank; rank 0's copy is
  // returned. Written once (by the rank-0 thread) after its allgather.
  DegreeHistogram merged;

  mps::run_ranks(ranks, [&](mps::Comm& comm) {
    const Rank me = comm.rank();
    std::vector<Count> degree(part->part_size(me), 0);

    auto bump = [&](NodeId v) { ++degree[part->local_index(v)]; };

    // Phases 1+2 as one BSP superstep: count local endpoints, ship remote
    // ones, then absorb the increments shipped to us.
    mps::SendBuffer<NodeId> increments(comm, kTagIncrement, 512);
    source.visit_shard(me, [&](std::span<const graph::Edge> batch) {
      for (const graph::Edge& e : batch) {
        for (NodeId v : {e.u, e.v}) {
          const Rank owner = part->owner(v);
          if (owner == me) {
            bump(v);
          } else {
            increments.add(owner, v);
          }
        }
      }
    });
    mps::bsp_exchange<NodeId>(comm, increments, kTagIncrement,
                              [&](const NodeId& v) { bump(v); });

    // Phase 3: fold my nodes' degrees into a (degree -> count) table and
    // allgather the tables.
    std::map<Count, Count> local;
    for (Count d : degree) ++local[d];
    std::vector<std::byte> blob;
    for (const auto& [deg, count] : local) {
      mps::pack_one(blob, deg);
      mps::pack_one(blob, count);
    }
    const auto all = comm.allgather_bytes(std::move(blob));

    if (me == 0) {
      std::map<Count, Count> total;
      for (const auto& rank_blob : all) {
        const auto items = mps::unpack<Count>(rank_blob);
        PAGEN_CHECK(items.size() % 2 == 0);
        for (std::size_t i = 0; i < items.size(); i += 2) {
          total[items[i]] += items[i + 1];
        }
      }
      merged.assign(total.begin(), total.end());
    }
  });

  return merged;
}

}  // namespace pagen::core
