#include "core/parallel_cl.h"

#include <cmath>
#include <numeric>

#include "core/genrt/launch.h"
#include "rng/splitmix.h"
#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::core {

ParallelClResult generate_cl(const baseline::ClConfig& config, int ranks,
                             bool gather) {
  const std::size_t n = config.weights.size();
  PAGEN_CHECK(ranks >= 1);
  PAGEN_CHECK_MSG(n >= 2, "need at least two nodes");
  for (std::size_t i = 0; i + 1 < n; ++i) {
    PAGEN_CHECK_MSG(config.weights[i] >= config.weights[i + 1],
                    "weights must be sorted non-increasing (see header)");
  }
  PAGEN_CHECK_MSG(config.weights.back() >= 0.0, "negative weight");
  const double total =
      std::accumulate(config.weights.begin(), config.weights.end(), 0.0);
  PAGEN_CHECK_MSG(total > 0.0, "all weights zero");

  return genrt::run_sharded<ParallelClResult>(
      ranks, gather, [&](mps::Comm& comm, graph::EdgeList& shard) {
        const auto me = static_cast<std::size_t>(comm.rank());
        const auto& w = config.weights;
        // Round-robin over rows; per-row stream derived from (seed, row) so
        // the output is independent of the rank count.
        for (std::size_t i = me; i + 1 < n;
             i += static_cast<std::size_t>(ranks)) {
          if (w[i] == 0.0) break;  // sorted: all later rows are zero too
          rng::Xoshiro256pp rng(rng::splitmix64_mix(
              config.seed ^ (0xc2b2ae3d27d4eb4fULL * (i + 1))));
          std::size_t j = i + 1;
          double p = std::min(1.0, w[i] * w[j] / total);
          while (j < n && p > 0.0) {
            if (p < 1.0) {
              const double r = rng.unit();
              j += static_cast<std::size_t>(std::log1p(-r) / std::log1p(-p));
            }
            if (j < n) {
              const double q = std::min(1.0, w[i] * w[j] / total);
              if (rng.unit() < q / p) {
                shard.push_back(
                    {static_cast<NodeId>(i), static_cast<NodeId>(j)});
              }
              p = q;
              ++j;
            }
          }
        }
      });
}

}  // namespace pagen::core
