#include "core/generate.h"

#include "core/engine/engine.h"

namespace pagen::core {

ParallelResult generate(const PaConfig& config, const ParallelOptions& options) {
  const Engine& engine = EngineRegistry::instance().require(options.engine);
  check_engine_options(engine, options);
  return engine.run(config, options);
}

}  // namespace pagen::core
