#include "core/generate.h"

#include <span>
#include <utility>

#include "core/engine/engine.h"
#include "store/edge_writer.h"
#include "util/error.h"

namespace pagen::core {

ParallelResult generate(const PaConfig& config, const ParallelOptions& options) {
  const Engine& engine = EngineRegistry::instance().require(options.engine);
  check_engine_options(engine, options);
  if (options.store_dir.empty()) return engine.run(config, options);

  // Compressed-store tap: every engine already streams its edges through
  // the batched sink, so the store rides that path — one truncating shard
  // writer per rank slot (each rank thread appends only to its own writer,
  // no locking), sealed with the v3 manifest after the run. The store must
  // see every edge exactly once, which rules out the at-least-once
  // re-emission paths: a crash respawn or a checkpoint resume would append
  // restored edges again.
  PAGEN_CHECK_MSG(!options.fault_plan.has_crash(),
                  "store_dir cannot be combined with crash injection: a "
                  "respawned rank re-emits restored edges, duplicating "
                  "blocks in the store");
  PAGEN_CHECK_MSG(!options.resume,
                  "store_dir cannot be combined with resume: restored edges "
                  "are re-emitted, duplicating blocks in the store");

  store::StoreWriter writer(options.store_dir, options.ranks,
                            options.store_block_edges);
  ParallelOptions inner = options;
  const auto user_sink = options.edge_batch_sink;
  inner.edge_batch_sink = [&writer, &user_sink](
                              Rank r, std::span<const graph::Edge> edges) {
    writer.append(r, edges);
    if (user_sink) user_sink(r, edges);
  };
  ParallelResult result = engine.run(config, inner);
  const store::StoreManifest manifest = writer.finish(config.n);
  result.store_bytes = manifest.total_bytes();
  PAGEN_CHECK_MSG(manifest.total_edges() == result.total_edges,
                  "store edge count " << manifest.total_edges()
                                      << " disagrees with the run's "
                                      << result.total_edges);
  return result;
}

}  // namespace pagen::core
