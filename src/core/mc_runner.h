// Property oracles for model-checked generator runs (tools/mpsmc and
// tests/mps_modelcheck_test.cpp).
//
// PropertyRunner adapts core::generate into an mps::mc::Runner: each
// invocation builds one ParallelOptions with the given Scheduler as the
// delivery hook, runs the generator, and checks every safety property we
// have an oracle for:
//
//  * termination: the run returns (deadlock/livelock are detected by the
//    Scheduler itself and folded into the verdict by the explorer);
//  * exact edge count (expected_edge_count) and structural sanity
//    (endpoints in range, no self-loops, no duplicate edges);
//  * x = 1: bitwise-identical output across schedules — targets and the
//    normalized edge list hash-match a schedule-free P = 1 reference run
//    (F is a pure function of (seed, n, p); Theorem 3.2's argument);
//  * x > 1: the per-schedule output hash is recorded instead of asserted —
//    distinct_outputs() is the measured schedule-(in)dependence report
//    that ROADMAP item 2 needs (the edge *set* is arrival-order dependent
//    by design today);
//  * optionally (causal_check, x = 1): the merged "pa.chain_length"
//    histogram from causal tracing must exactly equal the
//    baseline::ChainTrace |D_t| oracle — the Theorem 3.3 chain-depth
//    check, valid per schedule because the dependency DAG is
//    schedule-independent.
//
// The runner never throws: WorldAborted (the expected unwind of schedules
// the Scheduler tears down) and any other exception become a failed
// RunOutcome for the explorer to attribute.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baseline/chain_tracer.h"
#include "baseline/pa_config.h"
#include "core/generate.h"
#include "graph/edge_list.h"
#include "mps/collectives.h"
#include "mps/modelcheck.h"
#include "obs/session.h"
#include "partition/partition.h"
#include "util/types.h"

namespace pagen::core::mc {

/// FNV-1a over little-endian 64-bit words — the same convention the golden
/// pinning suite uses, so hashes are comparable across both.
class Fnv1a {
 public:
  void word(std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (w >> (8 * i)) & 0xffU;
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

[[nodiscard]] inline std::uint64_t hash_targets(
    const std::vector<NodeId>& targets) {
  Fnv1a h;
  for (const NodeId t : targets) h.word(t);
  return h.digest();
}

/// Hash of the normalized ((min, max), sorted) edge list.
[[nodiscard]] inline std::uint64_t hash_edges(graph::EdgeList edges) {
  graph::normalize(edges);
  Fnv1a h;
  for (const graph::Edge& e : edges) {
    h.word(e.u);
    h.word(e.v);
  }
  return h.digest();
}

class PropertyRunner {
 public:
  struct Options {
    PaConfig pa;
    int ranks = 2;
    partition::Scheme scheme = partition::Scheme::kRrp;
    /// Small buffers and batches on purpose: every flush boundary is a
    /// scheduling point, so small values maximize explorable interleavings
    /// per unit of work.
    std::size_t buffer_capacity = 8;
    std::size_t node_batch = 16;
    /// Set false to re-introduce the RRP flush-rule deadlock (the PR 2
    /// regression) — the model checker's canary.
    bool flush_resolved_after_batch = true;
    /// x = 1 only: verify Theorem 3.3 chain depths via causal tracing.
    bool causal_check = false;
  };

  explicit PropertyRunner(Options options) : options_(std::move(options)) {
    if (options_.pa.x == 1) {
      // Schedule-free reference: F is a pure function of (seed, n, p), so
      // a plain single-rank run pins the expected output of every
      // schedule and every rank count.
      ParallelOptions ref;
      ref.ranks = 1;
      const ParallelResult result = generate(options_.pa, ref);
      ref_targets_hash_ = hash_targets(result.targets);
      ref_edges_hash_ = hash_edges(result.edges);
    }
    if (options_.causal_check && options_.pa.x == 1) {
      const baseline::ChainTrace trace(options_.pa);
      const auto dep = trace.dependency_lengths();
      for (NodeId t = 2; t < options_.pa.n; ++t) oracle_.observe(dep[t]);
    }
  }

  /// The Runner for mps::mc::explore_* / replay_schedule. The returned
  /// callable borrows `this`; keep the PropertyRunner alive.
  [[nodiscard]] mps::mc::Runner runner() {
    return [this](mps::mc::Scheduler& sched) { return run_once(sched); };
  }

  /// Distinct normalized-edge-list hashes seen across all passing runs.
  /// Size 1 after an exploration = the output was schedule-independent for
  /// every schedule explored (proof by exploration, up to the bound).
  [[nodiscard]] const std::set<std::uint64_t>& distinct_outputs() const {
    return distinct_outputs_;
  }
  [[nodiscard]] std::uint64_t runs() const { return runs_; }
  [[nodiscard]] std::uint64_t ref_targets_hash() const {
    return ref_targets_hash_;
  }
  [[nodiscard]] std::uint64_t ref_edges_hash() const {
    return ref_edges_hash_;
  }

  /// Record the generator config into a trace's meta block so a dumped
  /// schedule is replayable without the command line that produced it.
  void fill_meta(mps::mc::ScheduleTrace& trace) const {
    trace.meta["n"] = std::to_string(options_.pa.n);
    trace.meta["x"] = std::to_string(options_.pa.x);
    trace.meta["p"] = std::to_string(options_.pa.p);
    trace.meta["seed"] = std::to_string(options_.pa.seed);
    trace.meta["ranks"] = std::to_string(options_.ranks);
    trace.meta["scheme"] = partition::to_string(options_.scheme);
    trace.meta["buffer_capacity"] = std::to_string(options_.buffer_capacity);
    trace.meta["node_batch"] = std::to_string(options_.node_batch);
    trace.meta["flush_resolved_after_batch"] =
        options_.flush_resolved_after_batch ? "1" : "0";
  }

  /// Rebuild runner options from a dumped trace's meta block (the inverse
  /// of fill_meta). Returns false with `error` set on a missing key.
  static bool options_from_meta(const mps::mc::ScheduleTrace& trace,
                                Options& out, std::string& error) {
    const auto need = [&](const char* key, std::string& into) {
      const auto it = trace.meta.find(key);
      if (it == trace.meta.end()) {
        error = std::string("trace meta is missing \"") + key + '"';
        return false;
      }
      into = it->second;
      return true;
    };
    std::string v;
    if (!need("n", v)) return false;
    out.pa.n = std::stoull(v);
    if (!need("x", v)) return false;
    out.pa.x = std::stoull(v);
    if (!need("p", v)) return false;
    out.pa.p = std::stod(v);
    if (!need("seed", v)) return false;
    out.pa.seed = std::stoull(v);
    if (!need("ranks", v)) return false;
    out.ranks = std::stoi(v);
    if (!need("scheme", v)) return false;
    out.scheme = partition::scheme_from_string(v);
    if (!need("buffer_capacity", v)) return false;
    out.buffer_capacity = std::stoull(v);
    if (!need("node_batch", v)) return false;
    out.node_batch = std::stoull(v);
    if (!need("flush_resolved_after_batch", v)) return false;
    out.flush_resolved_after_batch = v == "1";
    return true;
  }

 private:
  mps::mc::RunOutcome run_once(mps::mc::Scheduler& sched) {
    ++runs_;
    ParallelOptions opt;
    opt.ranks = options_.ranks;
    opt.scheme = options_.scheme;
    opt.buffer_capacity = options_.buffer_capacity;
    opt.node_batch = options_.node_batch;
    opt.flush_resolved_after_batch = options_.flush_resolved_after_batch;
    opt.delivery_hook = &sched;

    const bool causal = options_.causal_check && options_.pa.x == 1;
    std::optional<obs::Session> session;
    if (causal) {
      session.emplace(options_.ranks, causal_config());
      opt.obs = &*session;
    }

    ParallelResult result;
    try {
      result = generate(options_.pa, opt);
    } catch (const mps::WorldAborted&) {
      // Expected unwind of schedules the Scheduler tears down (deadlock,
      // prune, step limit); the explorer attributes the real reason.
      return {true, "world aborted"};
    } catch (const std::exception& e) {
      return {true, std::string("exception: ") + e.what()};
    }
    return check(result, causal ? &*session : nullptr);
  }

  [[nodiscard]] static obs::Config causal_config() {
    obs::Config cfg;
    cfg.enabled = true;
    cfg.causal = true;
    cfg.ring_capacity = 1 << 12;
    return cfg;
  }

  mps::mc::RunOutcome check(const ParallelResult& result,
                            const obs::Session* session) {
    const Count expected = expected_edge_count(options_.pa);
    if (result.edges.size() != expected) {
      return {true, "edge count " + std::to_string(result.edges.size()) +
                        " != expected " + std::to_string(expected)};
    }
    graph::EdgeList normalized = result.edges;
    graph::normalize(normalized);
    for (std::size_t i = 0; i < normalized.size(); ++i) {
      const graph::Edge& e = normalized[i];
      if (e.u >= options_.pa.n || e.v >= options_.pa.n) {
        return {true, "edge endpoint out of range"};
      }
      if (e.u == e.v) {
        return {true, "self-loop at node " + std::to_string(e.u)};
      }
      if (i > 0 && normalized[i - 1] == e) {
        return {true, "duplicate edge (" + std::to_string(e.u) + ", " +
                          std::to_string(e.v) + ")"};
      }
    }
    const std::uint64_t edge_hash = hash_edges(result.edges);
    distinct_outputs_.insert(edge_hash);
    if (options_.pa.x == 1) {
      if (hash_targets(result.targets) != ref_targets_hash_) {
        return {true,
                "x=1 targets differ from the schedule-free reference "
                "(output is schedule-dependent)"};
      }
      if (edge_hash != ref_edges_hash_) {
        return {true,
                "x=1 edges differ from the schedule-free reference "
                "(output is schedule-dependent)"};
      }
    }
    if (session != nullptr) {
      if (const std::string err = check_chain_lengths(*session);
          !err.empty()) {
        return {true, err};
      }
    }
    return {};
  }

  [[nodiscard]] std::string check_chain_lengths(
      const obs::Session& session) const {
    obs::Histogram merged;
    for (int r = 0; r < session.nranks(); ++r) {
      const auto& hists = session.rank(r).metrics().histograms();
      const auto it = hists.find("pa.chain_length");
      if (it != hists.end()) merged += it->second;
    }
    if (merged.count() == oracle_.count() && merged.sum() == oracle_.sum() &&
        merged.min() == oracle_.min() && merged.max() == oracle_.max()) {
      return {};
    }
    std::ostringstream os;
    os << "causal chain-length mismatch vs Theorem 3.3 oracle: count "
       << merged.count() << "/" << oracle_.count() << ", sum " << merged.sum()
       << "/" << oracle_.sum() << ", max " << merged.max() << "/"
       << oracle_.max();
    return os.str();
  }

  Options options_;
  std::uint64_t ref_targets_hash_ = 0;
  std::uint64_t ref_edges_hash_ = 0;
  obs::Histogram oracle_;
  std::set<std::uint64_t> distinct_outputs_;
  std::uint64_t runs_ = 0;
};

}  // namespace pagen::core::mc
