#include "core/distributed_bfs.h"

#include <algorithm>
#include <span>
#include <utility>

#include "mps/bsp.h"
#include "mps/engine.h"
#include "util/error.h"

namespace pagen::core {
namespace {

constexpr int kTagIncidence = 30;
constexpr int kTagVisit = 31;

struct Incidence {
  NodeId local;
  NodeId remote;
};

}  // namespace

DistributedBfsResult distributed_bfs(const std::vector<graph::EdgeList>& shards,
                                     NodeId n, partition::Scheme scheme,
                                     NodeId source) {
  PAGEN_CHECK(!shards.empty());
  return distributed_bfs(graph::make_edge_source(n, shards), scheme, source);
}

DistributedBfsResult distributed_bfs(const graph::EdgeSource& edges,
                                     partition::Scheme scheme, NodeId source) {
  PAGEN_CHECK(edges.num_shards > 0);
  const NodeId n = edges.num_nodes;
  PAGEN_CHECK(source < n);
  const int ranks = edges.num_shards;
  const auto part = partition::make_partition(scheme, n, ranks);

  DistributedBfsResult result;
  result.distances.assign(n, kNil);
  std::vector<std::vector<NodeId>> dist_slots(static_cast<std::size_t>(ranks));

  mps::run_ranks(ranks, [&](mps::Comm& comm) {
    const Rank me = comm.rank();
    const Count my_nodes = part->part_size(me);

    // Setup superstep: per-node local adjacency (CSR-lite over incidences).
    std::vector<std::vector<NodeId>> adjacency(my_nodes);
    {
      mps::SendBuffer<Incidence> buf(comm, kTagIncidence, 512);
      edges.visit_shard(me, [&](std::span<const graph::Edge> batch) {
        for (const graph::Edge& e : batch) {
          for (const auto& [mine, other] :
               {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
            const Rank owner = part->owner(mine);
            if (owner == me) {
              adjacency[part->local_index(mine)].push_back(other);
            } else {
              buf.add(owner, {mine, other});
            }
          }
        }
      });
      mps::bsp_exchange<Incidence>(comm, buf, kTagIncidence,
                                   [&](const Incidence& inc) {
                                     adjacency[part->local_index(inc.local)]
                                         .push_back(inc.remote);
                                   });
    }

    std::vector<NodeId> dist(my_nodes, kNil);
    std::vector<NodeId> frontier;  // local nodes discovered last level
    if (part->owner(source) == me) {
      dist[part->local_index(source)] = 0;
      frontier.push_back(source);
    }

    NodeId level = 0;
    for (;;) {
      // Global frontier size decides continuation — every rank agrees.
      const Count global_frontier = comm.allreduce_sum(frontier.size());
      if (me == 0) {
        result.frontier_peak = std::max(result.frontier_peak, global_frontier);
      }
      if (global_frontier == 0) break;
      ++level;

      // Expand: propose `level` to every neighbor of the frontier.
      std::vector<NodeId> next;
      mps::SendBuffer<NodeId> buf(comm, kTagVisit, 512);
      auto visit_local = [&](NodeId v) {
        auto& d = dist[part->local_index(v)];
        if (d == kNil) {
          d = level;
          next.push_back(v);
        }
      };
      for (NodeId u : frontier) {
        for (NodeId w : adjacency[part->local_index(u)]) {
          const Rank owner = part->owner(w);
          if (owner == me) {
            visit_local(w);
          } else {
            buf.add(owner, w);
          }
        }
      }
      mps::bsp_exchange<NodeId>(comm, buf, kTagVisit,
                                [&](const NodeId& w) { visit_local(w); });
      frontier = std::move(next);
    }

    dist_slots[static_cast<std::size_t>(me)] = std::move(dist);
    const Count my_visited =
        static_cast<Count>(std::count_if(
            dist_slots[static_cast<std::size_t>(me)].begin(),
            dist_slots[static_cast<std::size_t>(me)].end(),
            [](NodeId d) { return d != kNil; }));
    const Count total_visited = comm.allreduce_sum(my_visited);
    if (me == 0) {
      result.visited = total_visited;
      result.levels = level > 0 ? level - 1 : 0;
    }
  });

  for (Rank r = 0; r < ranks; ++r) {
    const auto& slot = dist_slots[static_cast<std::size_t>(r)];
    for (Count idx = 0; idx < slot.size(); ++idx) {
      result.distances[part->node_at(r, idx)] = slot[idx];
    }
  }
  return result;
}

}  // namespace pagen::core
