#include "core/distributed_cc.h"

#include <span>
#include <utility>

#include "mps/bsp.h"
#include "mps/engine.h"
#include "util/error.h"

namespace pagen::core {
namespace {

constexpr int kTagIncidence = 20;
constexpr int kTagProposal = 21;

struct Incidence {
  NodeId local;   ///< node owned by the receiving rank
  NodeId remote;  ///< the other endpoint (any owner)
};

struct Proposal {
  NodeId target;  ///< node owned by the receiving rank
  NodeId label;   ///< proposed (smaller) component label
};

}  // namespace

DistributedCcResult distributed_connected_components(
    const std::vector<graph::EdgeList>& shards, NodeId n,
    partition::Scheme scheme) {
  PAGEN_CHECK(!shards.empty());
  return distributed_connected_components(graph::make_edge_source(n, shards),
                                          scheme);
}

DistributedCcResult distributed_connected_components(
    const graph::EdgeSource& source, partition::Scheme scheme) {
  PAGEN_CHECK(source.num_shards > 0);
  const int ranks = source.num_shards;
  const auto part = partition::make_partition(scheme, source.num_nodes, ranks);

  DistributedCcResult result;

  mps::run_ranks(ranks, [&](mps::Comm& comm) {
    const Rank me = comm.rank();
    const Count my_nodes = part->part_size(me);

    // --- Setup superstep: symmetrize the edge incidence so each rank holds
    // the full incidence list of its own nodes.
    std::vector<Incidence> incidence;
    {
      mps::SendBuffer<Incidence> buf(comm, kTagIncidence, 512);
      source.visit_shard(me, [&](std::span<const graph::Edge> batch) {
        for (const graph::Edge& e : batch) {
          for (const auto& [mine, other] :
               {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
            const Rank owner = part->owner(mine);
            if (owner == me) {
              incidence.push_back({mine, other});
            } else {
              buf.add(owner, {mine, other});
            }
          }
        }
      });
      mps::bsp_exchange<Incidence>(
          comm, buf, kTagIncidence,
          [&](const Incidence& inc) { incidence.push_back(inc); });
    }

    // --- Label propagation rounds.
    std::vector<NodeId> label(my_nodes);
    for (Count i = 0; i < my_nodes; ++i) label[i] = part->node_at(me, i);

    Count rounds = 0;
    for (;;) {
      ++rounds;
      Count changes = 0;
      mps::SendBuffer<Proposal> buf(comm, kTagProposal, 512);
      for (const Incidence& inc : incidence) {
        const NodeId my_label = label[part->local_index(inc.local)];
        const Rank owner = part->owner(inc.remote);
        if (owner == me) {
          auto& other = label[part->local_index(inc.remote)];
          if (my_label < other) {
            other = my_label;
            ++changes;
          }
        } else {
          buf.add(owner, {inc.remote, my_label});
        }
      }
      mps::bsp_exchange<Proposal>(comm, buf, kTagProposal,
                                  [&](const Proposal& prop) {
                                    auto& l =
                                        label[part->local_index(prop.target)];
                                    if (prop.label < l) {
                                      l = prop.label;
                                      ++changes;
                                    }
                                  });
      if (comm.allreduce_sum(changes) == 0) break;
    }

    // --- Roots: a node whose label equals its own id heads a component.
    Count roots = 0;
    for (Count i = 0; i < my_nodes; ++i) {
      if (label[i] == part->node_at(me, i)) ++roots;
    }
    const Count total_roots = comm.allreduce_sum(roots);
    const Count total_rounds = comm.allreduce_max(rounds);
    if (me == 0) {
      result.components = total_roots;
      result.rounds = total_rounds;
    }
  });

  return result;
}

}  // namespace pagen::core
