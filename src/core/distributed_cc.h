// Distributed connected components over per-rank edge shards.
//
// Companion analytics pass to distributed_degree.h: verifies the paper's
// connectivity property (a PA network with x >= 1 is connected by
// construction) without gathering edges. Algorithm: distributed label
// propagation with pointer jumping — every node starts with its own label;
// each round, edges propose the smaller endpoint label to the larger
// endpoint's owner, then labels shortcut through their current values;
// rounds continue until a global allreduce reports no change. Converges in
// O(log n) rounds on graphs with low diameter (PA networks: O(log n)).
#pragma once

#include <vector>

#include "graph/edge_list.h"
#include "graph/edge_source.h"
#include "partition/partition.h"
#include "util/types.h"

namespace pagen::core {

struct DistributedCcResult {
  /// Number of connected components (isolated nodes count individually).
  Count components = 0;
  /// Label-propagation rounds until convergence.
  Count rounds = 0;
};

/// Compute connected components of the union of `shards` over nodes
/// [0, n). Shard/ownership contract matches distributed_degree.h. Runs a
/// rank world of shards.size() ranks.
[[nodiscard]] DistributedCcResult distributed_connected_components(
    const std::vector<graph::EdgeList>& shards, NodeId n,
    partition::Scheme scheme);

/// Streaming variant over any EdgeSource (in-memory or compressed store).
[[nodiscard]] DistributedCcResult distributed_connected_components(
    const graph::EdgeSource& source, partition::Scheme scheme);

}  // namespace pagen::core
