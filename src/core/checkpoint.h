// Coarse per-rank generation checkpoints for crash recovery.
//
// A checkpoint captures the durable core of one rank's Algorithm 3.1/3.2
// state: the resolved F slice (plus, for x > 1, the per-slot attempt
// counters and copy-path latches that keep the counter-based draws on
// track). Waiter queues, send buffers, and transport state are deliberately
// NOT checkpointed — they are reconstructed by the recovery protocol: the
// respawned rank replays its unresolved slots (re-issuing requests), and a
// kTagRecover broadcast makes peers re-offer every request they still wait
// on (docs/robustness.md §3). Files are written atomically via
// graph::save_bytes_atomic so a crash mid-write never leaves a torn
// checkpoint, serialized with the same varint coder as the edge files, and
// sealed with an FNV-1a content checksum verified before any field is
// parsed — a truncated, extended, or bit-flipped file raises CheckError
// instead of silently restoring garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace pagen::core {

/// One rank's durable generation state. `f` holds one entry per slot
/// (x = 1: one per owned node; x > 1: part_size * x, slot-major), kNil for
/// unresolved slots. `attempts` / `locked_copy` are empty for x = 1.
struct RankCheckpoint {
  std::uint64_t n = 0;
  std::uint64_t x = 0;
  std::uint64_t seed = 0;
  std::int32_t rank = -1;
  std::int32_t nranks = 0;
  std::vector<NodeId> f;
  std::vector<std::uint32_t> attempts;
  std::vector<std::uint8_t> locked_copy;
};

/// Per-rank checkpoint file path inside `dir`.
[[nodiscard]] std::string checkpoint_path(const std::string& dir, Rank rank);

/// Serialize and atomically (over)write `ck` into `dir`. Throws CheckError
/// when the directory is not writable.
void save_checkpoint(const std::string& dir, const RankCheckpoint& ck);

/// Load rank `rank`'s checkpoint from `dir` into `out`. Returns false when
/// no checkpoint exists yet (recover from nothing); throws CheckError on a
/// corrupt or mismatching file (checksum mismatch — covering truncation,
/// trailing junk, and bitflips — wrong magic/version, element counts that
/// exceed the payload, or run-parameter mismatch).
[[nodiscard]] bool load_checkpoint(const std::string& dir, Rank rank,
                                   RankCheckpoint& out);

}  // namespace pagen::core
