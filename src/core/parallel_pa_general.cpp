// pagen-lint: policy-impl, engine-facade — the XkPolicy speaks only through
// the Driver; the x == 1 delegation below is the entry point itself, not a
// facade bypass.
#include "core/parallel_pa_general.h"

#include <cstdint>
#include <vector>

#include "baseline/pa_draws.h"
#include "core/genrt/driver.h"
#include "core/genrt/launch.h"
#include "core/pa_messages.h"
#include "util/error.h"

namespace pagen::core {
namespace {

constexpr std::uint64_t kMaxAttempts = 100000;

/// Algorithm 3.2 as a genrt policy: x slots per node (F_t(e)), an initial
/// x-clique, and duplicate-edge avoidance — direct-path duplicates retry
/// with a fresh (k, coin) (paper Lines 9-10), copy-path duplicates re-draw
/// (k, l) and latch onto the copy path (Lines 26-29). The per-slot attempt
/// counter doubles as the request round so stale answers after a crash
/// recovery are filtered. Everything else lives in the genrt runtime.
class XkPolicy {
 public:
  using Request = RequestXk;
  using Resolved = ResolvedXk;
  /// Duplicate retries create fresh requests while serving messages; in the
  /// waiting phases nothing else would flush them.
  static constexpr bool kFlushRequestsAfterPump = true;
  /// Rows are per-edge for x > 1; there is no targets row.
  static constexpr bool kHasTargets = false;

  static Count slots_per_node(const PaConfig& config) { return config.x; }

  using D = genrt::Driver<XkPolicy>;

  explicit XkPolicy(D& d)
      : d_(d),
        draws_(d.config()),
        x_(d.config().x),
        attempts_(d.slots().size(), 0),
        locked_copy_(d.slots().size(), 0) {}

  /// Clique nodes (t < x) have no attachment choices of their own.
  [[nodiscard]] bool node_has_slots(NodeId t) const { return t >= x_; }

  void process_own_node(NodeId t) {
    if (t < x_) {
      // Initial clique: the larger endpoint emits each clique edge.
      for (NodeId i = 0; i < t; ++i) d_.emit_edge({t, i});
      return;
    }
    if (t == x_) {
      // Bootstrap convention (DESIGN.md §5): node x connects to the whole
      // clique, so F_x(e) = e deterministically.
      for (std::uint32_t e = 0; e < x_; ++e) {
        if (d_.recovering() && d_.slots().resolved(slot(t, e))) continue;
        if (!d_.recovering()) d_.add_open_slot();  // recovery pre-counts
        assign(t, e, e);
      }
      return;
    }
    for (std::uint32_t e = 0; e < x_; ++e) {
      if (d_.recovering() && d_.slots().resolved(slot(t, e))) continue;
      if (!d_.recovering()) d_.add_open_slot();  // recovery pre-counts
      try_edge(t, e);
    }
  }

  // --- Request/resolved mapping (Lines 17-20) ---

  [[nodiscard]] Count request_slot(const Request& req) const {
    return slot(req.k, req.l);
  }
  [[nodiscard]] static genrt::Waiter request_waiter(const Request& req,
                                                    Rank src) {
    return {req.t, req.e, src, req.round};  // Lines 19-20: queue Q_{k,l}
  }
  [[nodiscard]] static Resolved make_resolved(const Request& req, NodeId v) {
    return {req.t, v, req.e, req.round};  // Lines 17-18
  }
  [[nodiscard]] static Resolved waiter_resolved(const genrt::Waiter& w,
                                                NodeId v) {
    return {w.t, v, w.e, w.round};
  }
  [[nodiscard]] Count resolved_slot(const Resolved& res) const {
    return slot(res.t, res.e);
  }
  /// Stale answer to a superseded round: processing it would bump the
  /// attempt counter a second time and desync the deterministic draw
  /// sequence (docs/robustness.md §3).
  [[nodiscard]] bool accept_resolved(const Resolved& res) const {
    return !d_.tolerant() || res.round == attempts_[slot(res.t, res.e)];
  }
  void apply_resolved(const Resolved& res) {
    on_resolved(res.t, res.e, res.v);
  }
  void deliver_local(const genrt::Waiter& w, NodeId v) {
    on_resolved(w.t, w.e, v);
  }

  // --- Checkpoint extras: attempt counters and copy-path latches ---

  void fill_checkpoint(RankCheckpoint& ck) const {
    ck.attempts = attempts_;
    ck.locked_copy = locked_copy_;
  }
  void restore_checkpoint_extras(const RankCheckpoint& ck) {
    PAGEN_CHECK_MSG(ck.attempts.size() == d_.slots().size() &&
                        ck.locked_copy.size() == d_.slots().size(),
                    "checkpoint does not match this run's parameters");
    attempts_ = ck.attempts;
    locked_copy_ = ck.locked_copy;
  }

 private:
  [[nodiscard]] Count slot(NodeId t, std::uint32_t e) const {
    return d_.part().local_index(t) * x_ + e;
  }

  /// True if v already is one of t's resolved endpoints (k ∈ F_t check).
  [[nodiscard]] bool is_duplicate(NodeId t, NodeId v) const {
    const Count base = d_.part().local_index(t) * x_;
    for (NodeId e = 0; e < x_; ++e) {
      if (d_.slots().value(base + e) == v) return true;
    }
    return false;
  }

  /// Drive edge (t, e) forward until it is assigned, parked in a local
  /// queue, or waiting on a remote request (Lines 3-14 and 26-29).
  void try_edge(NodeId t, std::uint32_t e) {
    const Count s = slot(t, e);
    for (;;) {
      const std::uint64_t attempt = attempts_[s];
      PAGEN_CHECK_MSG(attempt < kMaxAttempts,
                      "duplicate-retry cap exceeded at node " << t);
      const NodeId k = draws_.pick_k(t, e, attempt);
      if (locked_copy_[s] == 0 && draws_.pick_direct(t, e, attempt)) {
        if (!is_duplicate(t, k)) {
          assign(t, e, k);  // Lines 7-8
          return;
        }
        ++attempts_[s];  // Lines 9-10: fresh k and coin
        ++d_.load().retries;
        continue;
      }
      const auto l = static_cast<std::uint32_t>(draws_.pick_l(t, e, attempt));
      const Rank owner = d_.part().owner(k);
      if (owner != d_.rank()) {
        // Line 14; the round echo is this slot's attempt at issue time.
        d_.send_request(owner, s,
                        {t, k, e, l, static_cast<std::uint32_t>(attempt)});
        return;
      }
      const Count ks = slot(k, l);
      if (!d_.slots().resolved(ks)) {
        d_.queue_waiter(ks, {t, e, d_.rank(), 0});  // local Q_{k,l}
        return;
      }
      const NodeId v = d_.slots().value(ks);
      if (!is_duplicate(t, v)) {
        d_.note_copy_depth(ks);  // F_t(e) extends F_k(l)'s dependency chain
        assign(t, e, v);
        return;
      }
      locked_copy_[s] = 1;  // Lines 26-29: stay on the copy path
      ++attempts_[s];
      ++d_.load().retries;
    }
  }

  /// F_t(e) := v (the runtime emits the edge and answers everyone queued
  /// on (t, e), re-entering deliver_local for local waiters).
  void assign(NodeId t, std::uint32_t e, NodeId v) {
    PAGEN_DCHECK(!is_duplicate(t, v));
    d_.assign_slot(slot(t, e), t, v);
  }

  /// A value arrived for edge (t, e) — either accept it or retry on the
  /// copy path (Lines 21-29).
  void on_resolved(NodeId t, std::uint32_t e, NodeId v) {
    const Count s = slot(t, e);
    if (d_.slots().resolved(s)) {
      // Crash-tolerant mode: a recovery re-offer can answer a slot that an
      // in-flight first answer already settled. The value must agree —
      // F_k(l) is unique once resolved, and stale rounds were filtered.
      PAGEN_CHECK_MSG(d_.tolerant(),
                      "duplicate resolution of (" << t << "," << e << ")");
      PAGEN_CHECK_MSG(d_.slots().value(s) == v,
                      "conflicting resolution of (" << t << "," << e << ")");
      return;
    }
    if (is_duplicate(t, v)) {
      locked_copy_[s] = 1;
      ++attempts_[s];
      ++d_.load().retries;
      try_edge(t, e);
      return;
    }
    assign(t, e, v);
  }

  D& d_;
  DrawSchema draws_;
  NodeId x_;
  std::vector<std::uint32_t> attempts_;    // per-slot draw attempt counter
  std::vector<std::uint8_t> locked_copy_;  // per-slot Lines 26-29 latch
};

}  // namespace

ParallelResult generate_pa_general(const PaConfig& config,
                                   const ParallelOptions& options) {
  PAGEN_CHECK(config.x >= 1);
  if (config.x == 1) return generate_pa_x1(config, options);
  PAGEN_CHECK_MSG(config.n > config.x, "need n > x");
  PAGEN_CHECK_MSG(config.p >= 0.0 && config.p <= 1.0, "p must be in [0, 1]");
  // p == 1 never takes the copy path, and node x+1's only direct candidate
  // is node x — the x distinct endpoints Algorithm 3.2 requires cannot
  // exist. (p == 1 is fine for x == 1.)
  PAGEN_CHECK_MSG(config.p < 1.0, "p must be below 1 for x > 1");
  PAGEN_CHECK(options.ranks >= 1);
  PAGEN_CHECK_MSG(static_cast<NodeId>(options.ranks) <= config.n,
                  "more ranks than nodes");
  return genrt::launch<XkPolicy>(config, options);
}

}  // namespace pagen::core
