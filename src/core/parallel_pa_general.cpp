#include "core/parallel_pa_general.h"

#include <chrono>
#include <map>

#include "baseline/pa_draws.h"
#include "core/checkpoint.h"
#include "core/pa_messages.h"
#include "mps/engine.h"
#include "mps/send_buffer.h"
#include "mps/termination.h"
#include "obs/session.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::core {
namespace {

using partition::Partition;

constexpr std::chrono::milliseconds kIdleWait{20};
constexpr std::uint64_t kMaxAttempts = 100000;

/// Private state and protocol logic of one rank executing Algorithm 3.2.
class RankXk {
 public:
  RankXk(const PaConfig& config, const ParallelOptions& options,
         const Partition& part, mps::Comm& comm)
      : config_(config),
        options_(options),
        part_(part),
        comm_(comm),
        draws_(config),
        store_edges_(options.gather_edges || options.keep_shards),
        x_(config.x),
        slots_(part.part_size(comm.rank()) * config.x),
        f_(slots_, kNil),
        attempts_(slots_, 0),
        locked_copy_(slots_, 0),
        waiters_(slots_),
        req_buf_(comm, kTagRequest, options.buffer_capacity),
        res_buf_(comm, kTagResolved, options.buffer_capacity),
        done_(comm, kTagDone, kTagStop),
        tolerant_(options.fault_plan.has_crash()),
        recovering_(comm.incarnation() > 0),
        ob_(comm.obs()) {
    load_.nodes = part.part_size(comm.rank());
    if (ob_ != nullptr) {
      wait_depth_hist_ = &ob_->metrics().histogram("pa.wait_queue_depth");
      chain_hist_ = &ob_->metrics().histogram("pa.chain_latency_ns");
      mailbox_gauge_ = &ob_->metrics().gauge("mps.mailbox_depth");
      pending_since_.assign(slots_, -1);
    }
  }

  void run() {
    if (!recovering_) {
      comm_.barrier();
    } else {
      // Respawned incarnation: the start barrier already completed in a
      // previous life (sends — where crashes fire — happen only after it),
      // so joining it again would desynchronize the collective generation.
      // Restore the durable slice and announce the restart so peers
      // re-offer whatever they still wait on (our queues died with us).
      const auto sp = obs::span(ob_, "recover");
      restore_from_checkpoint();
      // Count the replay's open slots up front: answers to the previous
      // incarnation's requests may arrive before the replay loop reaches
      // their node, and assign() must always see a consistent count.
      const Count my_nodes = part_.part_size(comm_.rank());
      for (Count idx = 0; idx < my_nodes; ++idx) {
        if (part_.node_at(comm_.rank(), idx) < x_) continue;  // clique
        for (std::uint32_t e = 0; e < x_; ++e) {
          if (f_[idx * x_ + e] == kNil) ++unresolved_;
        }
      }
      for (Rank r = 0; r < comm_.size(); ++r) {
        if (r != comm_.rank()) comm_.send_item<char>(r, kTagRecover, 0);
      }
    }

    {
      const auto sp = obs::span(ob_, "generate");
      const Count my_nodes = part_.part_size(comm_.rank());
      for (Count idx = 0; idx < my_nodes; ++idx) {
        process_own_node(part_.node_at(comm_.rank(), idx));
        if ((idx + 1) % options_.node_batch == 0) {
          pump(false);
          maybe_checkpoint(false);
        }
      }
      req_buf_.flush_all();
      maybe_checkpoint(true);
    }

    {
      const auto sp = obs::span(ob_, "drain");
      while (unresolved_ > 0) {
        pump(true);
        maybe_checkpoint(false);
      }
    }

    {
      const auto sp = obs::span(ob_, "termination");
      res_buf_.flush_all();
      PAGEN_CHECK(res_buf_.empty());
      maybe_checkpoint(true);
      done_.notify_local_done();
      while (!done_.stopped()) pump(true);
      res_buf_.flush_all();
    }

    comm_.barrier();
  }

  [[nodiscard]] RankLoad load() const { return load_; }
  [[nodiscard]] graph::EdgeList&& take_edges() { return std::move(edges_); }

 private:
  [[nodiscard]] Count slot(NodeId t, std::uint32_t e) const {
    return part_.local_index(t) * x_ + e;
  }

  /// True if v already is one of t's resolved endpoints (k ∈ F_t check).
  [[nodiscard]] bool is_duplicate(NodeId t, NodeId v) const {
    const Count base = part_.local_index(t) * x_;
    for (NodeId e = 0; e < x_; ++e) {
      if (f_[base + e] == v) return true;
    }
    return false;
  }

  void process_own_node(NodeId t) {
    if (t < x_) {
      // Initial clique: the larger endpoint emits each clique edge.
      for (NodeId i = 0; i < t; ++i) emit_edge({t, i});
      return;
    }
    if (t == x_) {
      // Bootstrap convention (DESIGN.md §5): node x connects to the whole
      // clique, so F_x(e) = e deterministically.
      for (std::uint32_t e = 0; e < x_; ++e) {
        if (recovering_ && f_[slot(t, e)] != kNil) continue;  // restored
        if (!recovering_) ++unresolved_;  // recovery pre-counts open slots
        assign(t, e, e);
      }
      return;
    }
    for (std::uint32_t e = 0; e < x_; ++e) {
      if (recovering_ && f_[slot(t, e)] != kNil) continue;  // restored
      if (!recovering_) ++unresolved_;  // recovery pre-counts open slots
      try_edge(t, e);
    }
  }

  /// Drive edge (t, e) forward until it is assigned, parked in a local
  /// queue, or waiting on a remote request (Lines 3-14 and 26-29).
  void try_edge(NodeId t, std::uint32_t e) {
    const Count s = slot(t, e);
    for (;;) {
      const std::uint64_t attempt = attempts_[s];
      PAGEN_CHECK_MSG(attempt < kMaxAttempts,
                      "duplicate-retry cap exceeded at node " << t);
      const NodeId k = draws_.pick_k(t, e, attempt);
      if (locked_copy_[s] == 0 && draws_.pick_direct(t, e, attempt)) {
        if (!is_duplicate(t, k)) {
          assign(t, e, k);  // Lines 7-8
          return;
        }
        ++attempts_[s];  // Lines 9-10: fresh k and coin
        ++load_.retries;
        continue;
      }
      const auto l = static_cast<std::uint32_t>(draws_.pick_l(t, e, attempt));
      const Rank owner = part_.owner(k);
      if (owner != comm_.rank()) {
        const RequestXk req{t, k, e, l, static_cast<std::uint32_t>(attempt)};
        req_buf_.add(owner, req);  // Line 14
        ++load_.requests_sent;
        if (tolerant_) outstanding_[s] = req;
        if (ob_ != nullptr) pending_since_[s] = now_ns();
        return;
      }
      const Count ks = slot(k, l);
      if (f_[ks] == kNil) {
        waiters_[ks].push_back({t, e, comm_.rank(), 0});  // local Q_{k,l}
        ++load_.local_waits;
        note_queue_depth(waiters_[ks].size());
        return;
      }
      const NodeId v = f_[ks];
      if (!is_duplicate(t, v)) {
        assign(t, e, v);
        return;
      }
      locked_copy_[s] = 1;  // Lines 26-29: stay on the copy path
      ++attempts_[s];
      ++load_.retries;
    }
  }

  /// F_t(e) := v; emit the edge and answer everyone queued on (t, e).
  void assign(NodeId t, std::uint32_t e, NodeId v) {
    const Count s = slot(t, e);
    PAGEN_CHECK_MSG(f_[s] == kNil, "double assign of (" << t << "," << e << ")");
    PAGEN_DCHECK(!is_duplicate(t, v));
    f_[s] = v;
    PAGEN_CHECK(unresolved_ > 0);
    --unresolved_;
    ++resolved_since_ckpt_;
    emit_edge({t, v});
    for (const Waiter& w : waiters_[s]) {
      if (w.owner == comm_.rank()) {
        on_resolved(w.t, w.e, v);
      } else {
        res_buf_.add(w.owner, {w.t, v, w.e, w.round});
        ++load_.resolved_sent;
      }
    }
    waiters_[s].clear();
    waiters_[s].shrink_to_fit();
  }

  /// A value arrived for edge (t, e) — either accept it or retry on the
  /// copy path (Lines 21-29).
  void on_resolved(NodeId t, std::uint32_t e, NodeId v) {
    if (f_[slot(t, e)] != kNil) {
      // Crash-tolerant mode: a recovery re-offer can answer a slot that an
      // in-flight first answer already settled. The value must agree —
      // F_k(l) is unique once resolved, and stale rounds were filtered.
      PAGEN_CHECK_MSG(tolerant_,
                      "duplicate resolution of (" << t << "," << e << ")");
      PAGEN_CHECK_MSG(f_[slot(t, e)] == v,
                      "conflicting resolution of (" << t << "," << e << ")");
      return;
    }
    if (is_duplicate(t, v)) {
      const Count s = slot(t, e);
      locked_copy_[s] = 1;
      ++attempts_[s];
      ++load_.retries;
      try_edge(t, e);
      return;
    }
    assign(t, e, v);
  }

  void handle_request(Rank src, const RequestXk& req) {
    ++load_.requests_received;
    PAGEN_DCHECK(part_.owner(req.k) == comm_.rank());
    const Count ks = slot(req.k, req.l);
    if (f_[ks] != kNil) {
      res_buf_.add(src, {req.t, f_[ks], req.e, req.round});  // Lines 17-18
      ++load_.resolved_sent;
    } else {
      waiters_[ks].push_back({req.t, req.e, src, req.round});  // Lines 19-20
      ++load_.queued;
      note_queue_depth(waiters_[ks].size());
    }
  }

  /// A peer respawned: every request we still wait on that it owns died
  /// with its waiter queues, so offer them again (latest round per slot).
  /// Stale in-flight answers are filtered by the round echo.
  void handle_recover(Rank src) {
    for (const auto& [s, req] : outstanding_) {
      if (part_.owner(req.k) == src) {
        req_buf_.add(src, req);
        ++load_.requests_sent;
      }
    }
    req_buf_.flush(src);
    done_.on_peer_recover(src);
    if (ob_ != nullptr) ob_->trace().instant("peer_recover");
  }

  /// Restore the durable slice of a previous incarnation — resolved slots,
  /// attempt counters, and copy-path latches — re-emitting the restored
  /// edges (the sink contract is at-least-once under crashes). Unresolved
  /// slots replay from their restored attempt, re-drawing identically.
  void restore_from_checkpoint() {
    if (options_.checkpoint_dir.empty()) return;
    RankCheckpoint ck;
    if (!load_checkpoint(options_.checkpoint_dir, comm_.rank(), ck)) return;
    PAGEN_CHECK_MSG(ck.n == config_.n && ck.x == config_.x &&
                        ck.seed == config_.seed &&
                        ck.nranks == comm_.size() && ck.f.size() == slots_ &&
                        ck.attempts.size() == slots_ &&
                        ck.locked_copy.size() == slots_,
                    "checkpoint does not match this run's parameters");
    attempts_ = ck.attempts;
    locked_copy_ = ck.locked_copy;
    for (Count s = 0; s < slots_; ++s) {
      if (ck.f[s] == kNil) continue;
      f_[s] = ck.f[s];
      emit_edge({part_.node_at(comm_.rank(), s / x_), ck.f[s]});
    }
  }

  void maybe_checkpoint(bool force) {
    if (options_.checkpoint_dir.empty()) return;
    if (resolved_since_ckpt_ == 0) return;  // nothing new since last write
    if (!force && resolved_since_ckpt_ < options_.checkpoint_every) return;
    const auto sp = obs::span(ob_, "checkpoint");
    RankCheckpoint ck;
    ck.n = config_.n;
    ck.x = config_.x;
    ck.seed = config_.seed;
    ck.rank = comm_.rank();
    ck.nranks = comm_.size();
    ck.f = f_;
    ck.attempts = attempts_;
    ck.locked_copy = locked_copy_;
    save_checkpoint(options_.checkpoint_dir, ck);
    resolved_since_ckpt_ = 0;
  }

  void pump(bool blocking) {
    inbox_.clear();
    if (ob_ != nullptr) {
      const auto depth = static_cast<std::int64_t>(comm_.pending());
      mailbox_gauge_->set(depth);
      if (ob_->trace().sample_tick()) {
        ob_->trace().counter("mailbox_depth", depth);
      }
    }
    const bool got = blocking ? comm_.poll_wait(inbox_, kIdleWait)
                              : comm_.poll(inbox_);
    if (!got) return;
    for (const mps::Envelope& env : inbox_) {
      if (done_.handle(env)) continue;
      if (env.tag == kTagRequest) {
        mps::for_each_packed<RequestXk>(
            env.payload, [&](const RequestXk& r) { handle_request(env.src, r); });
      } else if (env.tag == kTagResolved) {
        mps::for_each_packed<ResolvedXk>(
            env.payload, [&](const ResolvedXk& r) {
              ++load_.resolved_received;
              const Count rs = slot(r.t, r.e);
              if (tolerant_) {
                // Stale answer to a superseded round: processing it would
                // bump the attempt counter a second time and desync the
                // deterministic draw sequence (docs/robustness.md §3).
                if (r.round != attempts_[rs]) return;
                outstanding_.erase(rs);
              }
              if (ob_ != nullptr) {
                // Chain-resolution latency: request departure → resolution
                // arrival for this slot (re-stamped on duplicate retries).
                std::int64_t& since = pending_since_[slot(r.t, r.e)];
                if (since >= 0) {
                  chain_hist_->observe(
                      static_cast<std::uint64_t>(now_ns() - since));
                  since = -1;
                }
              }
              on_resolved(r.t, r.e, r.v);
            });
      } else if (env.tag == kTagRecover) {
        handle_recover(env.src);
      } else {
        PAGEN_CHECK_MSG(false, "unexpected tag " << env.tag);
      }
    }
    if (options_.flush_resolved_after_batch || unresolved_ == 0) {
      res_buf_.flush_all();
    }
    // Retries triggered by duplicates may have produced fresh requests; in
    // the waiting phases nothing else flushes them.
    req_buf_.flush_all();
  }

  void note_queue_depth(std::size_t depth) {
    load_.max_queue_depth = std::max<Count>(load_.max_queue_depth, depth);
    if (wait_depth_hist_ != nullptr) wait_depth_hist_->observe(depth);
  }

  void emit_edge(const graph::Edge& e) {
    if (store_edges_) edges_.push_back(e);
    if (options_.edge_sink) options_.edge_sink(comm_.rank(), e);
    ++load_.edges;
  }

  struct Waiter {
    NodeId t;
    std::uint32_t e;
    Rank owner;
    std::uint32_t round;  ///< request round to echo (remote waiters only)
  };

  const PaConfig& config_;
  const ParallelOptions& options_;
  const Partition& part_;
  mps::Comm& comm_;
  DrawSchema draws_;
  bool store_edges_;
  NodeId x_;

  Count slots_;
  std::vector<NodeId> f_;                    // F_t(e) by slot
  std::vector<std::uint32_t> attempts_;      // per-slot draw attempt counter
  std::vector<std::uint8_t> locked_copy_;    // per-slot Lines 26-29 latch
  std::vector<std::vector<Waiter>> waiters_;  // Q_{k,l} by slot
  graph::EdgeList edges_;
  std::vector<mps::Envelope> inbox_;
  mps::SendBuffer<RequestXk> req_buf_;
  mps::SendBuffer<ResolvedXk> res_buf_;
  mps::DoneDetector done_;
  bool tolerant_;    ///< crash plan active: absorb duplicate resolutions
  bool recovering_;  ///< this Comm is a respawned incarnation
  RankLoad load_;
  Count unresolved_ = 0;

  /// Latest unanswered request per slot, kept only under a crash plan so
  /// it can be re-offered when its owner respawns (docs/robustness.md).
  std::map<Count, RequestXk> outstanding_;
  Count resolved_since_ckpt_ = 0;

  // Observability (all null / empty when observation is off).
  obs::RankObserver* ob_;
  obs::Histogram* wait_depth_hist_ = nullptr;
  obs::Histogram* chain_hist_ = nullptr;
  obs::Gauge* mailbox_gauge_ = nullptr;
  std::vector<std::int64_t> pending_since_;  ///< request departure, by slot
};

}  // namespace

ParallelResult generate_pa_general(const PaConfig& config,
                                   const ParallelOptions& options) {
  PAGEN_CHECK(config.x >= 1);
  if (config.x == 1) return generate_pa_x1(config, options);
  PAGEN_CHECK_MSG(config.n > config.x, "need n > x");
  PAGEN_CHECK_MSG(config.p >= 0.0 && config.p <= 1.0, "p must be in [0, 1]");
  // p == 1 never takes the copy path, and node x+1's only direct candidate
  // is node x — the x distinct endpoints Algorithm 3.2 requires cannot
  // exist. (p == 1 is fine for x == 1.)
  PAGEN_CHECK_MSG(config.p < 1.0, "p must be below 1 for x > 1");
  PAGEN_CHECK(options.ranks >= 1);
  PAGEN_CHECK_MSG(static_cast<NodeId>(options.ranks) <= config.n,
                  "more ranks than nodes");

  obs::RankObserver* drv =
      options.obs != nullptr ? &options.obs->driver() : nullptr;

  std::shared_ptr<const partition::Partition> part = options.custom_partition;
  if (part) {
    PAGEN_CHECK_MSG(part->num_nodes() == config.n &&
                        part->num_parts() == options.ranks,
                    "custom partition does not match (n, ranks)");
  } else {
    const auto sp = obs::span(drv, "partition_build");
    part = partition::make_partition(options.scheme, config.n, options.ranks);
  }

  const auto nranks = static_cast<std::size_t>(options.ranks);
  std::vector<graph::EdgeList> edge_slots(nranks);
  LoadVector load_slots(nranks);

  mps::WorldOptions world_options;
  world_options.fault_plan = options.fault_plan;
  world_options.reliable = options.reliable;

  mps::RunResult run;
  {
    const auto world_span = obs::span(drv, "run_ranks");
    run = mps::run_ranks(
        options.ranks, world_options,
        [&](mps::Comm& comm) {
          RankXk rank(config, options, *part, comm);
          rank.run();
          const auto slot = static_cast<std::size_t>(comm.rank());
          load_slots[slot] = rank.load();
          if (auto* ob = comm.obs()) record_metrics(ob->metrics(), rank.load());
          if (options.gather_edges || options.keep_shards) {
            edge_slots[slot] = rank.take_edges();
          }
        },
        options.obs);
  }

  ParallelResult result;
  result.loads = std::move(load_slots);
  result.comm_stats = run.rank_stats;
  result.wall_seconds = run.wall_seconds;
  result.respawns = run.respawns;
  for (const RankLoad& l : result.loads) result.total_edges += l.edges;

  if (options.gather_edges) {
    result.edges.reserve(result.total_edges);
    for (auto& slot : edge_slots) {
      result.edges.insert(result.edges.end(), slot.begin(), slot.end());
      if (!options.keep_shards) slot.clear();
    }
  }
  if (options.keep_shards) result.shards = std::move(edge_slots);
  return result;
}

}  // namespace pagen::core
