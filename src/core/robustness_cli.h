// Shared --fault-plan / --checkpoint-dir / --reliable wiring for the
// example and bench binaries (docs/robustness.md). Header-only so binaries
// that never expose the flags pay nothing.
#pragma once

#include <string>
#include <vector>

#include "core/options.h"
#include "mps/fault.h"
#include "util/cli.h"

namespace pagen::core {

/// Keys understood by apply_robustness_cli; append to a binary's key list.
inline std::vector<std::string> robustness_cli_keys() {
  return {"fault-plan", "checkpoint-dir", "reliable", "rto"};
}

/// Apply the robustness flags to `options`:
///   --fault-plan=SPEC       fault spec (mps::FaultPlan grammar, e.g.
///                           "seed=7,drop=0.02,crash=3@1000")
///   --checkpoint-dir=DIR    per-rank checkpoint directory (must exist)
///   --reliable              ack/retransmit layer even without a fault plan
///   --rto=BASE[:MAX]        retransmission timeout in ms, base and cap
inline void apply_robustness_cli(const Cli& cli, ParallelOptions& options) {
  const std::string spec = cli.get_str("fault-plan", "");
  if (!spec.empty()) options.fault_plan = mps::FaultPlan::parse(spec);
  options.checkpoint_dir = cli.get_str("checkpoint-dir", "");
  options.reliable = cli.get_bool("reliable", options.reliable);
  const std::string rto = cli.get_str("rto", "");
  if (!rto.empty()) {
    const auto colon = rto.find(':');
    options.rto_base_ms = std::stoll(rto.substr(0, colon));
    options.rto_max_ms = colon == std::string::npos
                             ? options.rto_base_ms * 16
                             : std::stoll(rto.substr(colon + 1));
  }
}

}  // namespace pagen::core
