#include "core/approx_pa.h"

#include <vector>

#include "mps/engine.h"
#include "partition/partition.h"
#include "rng/splitmix.h"
#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::core {
namespace {

constexpr int kRetryCap = 10000;

}  // namespace

ApproxPaResult generate_approx_pa(const PaConfig& config,
                                  const ApproxPaOptions& options) {
  PAGEN_CHECK(config.x >= 1);
  PAGEN_CHECK(config.n > config.x);
  PAGEN_CHECK(options.ranks >= 1);
  PAGEN_CHECK(options.sync_interval >= 1);
  PAGEN_CHECK(options.sample_size >= 1);
  PAGEN_CHECK_MSG(static_cast<NodeId>(options.ranks) <= config.n,
                  "more ranks than nodes");

  // Round-robin keeps every rank's label frontier advancing in lockstep, so
  // the local lists are only mildly stale between syncs.
  const auto part = partition::make_partition(partition::Scheme::kRrp,
                                              config.n, options.ranks);
  const NodeId x = config.x;

  const auto nranks = static_cast<std::size_t>(options.ranks);
  std::vector<graph::EdgeList> edge_slots(nranks);
  std::vector<Count> exchanged_slots(nranks, 0);

  // Global sync schedule: every rank participates in the same number of
  // collective rounds regardless of its part size.
  Count max_part = 0;
  for (int r = 0; r < options.ranks; ++r) {
    max_part = std::max(max_part, part->part_size(r));
  }
  const Count rounds = (max_part + options.sync_interval - 1) /
                       options.sync_interval;

  const mps::RunResult run = mps::run_ranks(options.ranks, [&](mps::Comm& comm) {
    const Rank me = comm.rank();
    rng::Xoshiro256pp rng(
        rng::splitmix64_mix(config.seed ^ (0x51ed270b7a03f2edULL * (me + 1))));

    // Local repetition-list proxy, seeded with the initial clique (global
    // knowledge: the clique is part of the model definition).
    std::vector<NodeId> proxy;
    for (NodeId i = 0; i < x; ++i) {
      for (NodeId j = i + 1; j < x; ++j) {
        proxy.push_back(i);
        proxy.push_back(j);
      }
    }
    // Bootstrap mass for x = 1: the edge (1,0) gives both endpoints degree
    // one. Every rank starts from this shared knowledge.
    if (x == 1) proxy.assign({0, 1});

    auto& edges = edge_slots[static_cast<std::size_t>(me)];
    // Clique edges are emitted once, by rank 0.
    if (me == 0 && x > 1) {
      for (NodeId i = 0; i < x; ++i) {
        for (NodeId j = i + 1; j < x; ++j) edges.push_back({j, i});
      }
    }

    // Recent appends since the last sync — the pool samples are drawn from.
    std::vector<NodeId> recent;
    std::vector<NodeId> chosen;

    const Count my_nodes = part->part_size(me);
    Count processed = 0;
    for (Count round = 0; round < rounds; ++round) {
      const Count until =
          std::min(my_nodes, (round + 1) * options.sync_interval);
      for (; processed < until; ++processed) {
        const NodeId t = part->node_at(me, processed);
        if (t < x) continue;  // clique edges emitted by rank 0 above
        if (t == x) {
          // Bootstrap convention shared with the exact algorithms: node x
          // connects to the whole clique (the single edge (1,0) for x = 1,
          // whose proxy mass is already in every rank's initial list).
          for (NodeId e = 0; e < x; ++e) {
            edges.push_back({t, e});
            if (x > 1) {
              proxy.push_back(t);
              proxy.push_back(e);
            }
          }
          continue;
        }
        chosen.clear();
        for (NodeId e = 0; e < x; ++e) {
          NodeId v = kNil;
          for (int attempt = 0; attempt < kRetryCap; ++attempt) {
            const NodeId candidate = proxy[rng.below(proxy.size())];
            if (candidate >= t) continue;  // attach to older nodes only
            bool dup = false;
            for (NodeId c : chosen) dup = dup || (c == candidate);
            if (!dup) {
              v = candidate;
              break;
            }
          }
          if (v == kNil) v = e;  // degenerate fallback: clique node
          chosen.push_back(v);
          edges.push_back({t, v});
          proxy.push_back(t);
          proxy.push_back(v);
          recent.push_back(t);
          recent.push_back(v);
        }
      }

      // Synchronization round: exchange uniform samples of recent endpoint
      // appends; everyone absorbs everyone's samples into their proxy.
      std::vector<std::byte> blob;
      const Count contribute =
          std::min<Count>(options.sample_size, recent.size());
      for (Count s = 0; s < contribute; ++s) {
        mps::pack_one(blob, recent[rng.below(recent.size())]);
      }
      recent.clear();
      const auto all = comm.allgather_bytes(std::move(blob));
      for (std::size_t r = 0; r < all.size(); ++r) {
        if (static_cast<Rank>(r) == me) continue;
        mps::for_each_packed<NodeId>(all[r], [&](const NodeId& v) {
          proxy.push_back(v);
          ++exchanged_slots[static_cast<std::size_t>(me)];
        });
      }
    }
  });

  ApproxPaResult result;
  result.sync_rounds = rounds;
  result.wall_seconds = run.wall_seconds;
  for (Count c : exchanged_slots) result.exchanged_samples += c;
  Count total = 0;
  for (const auto& slot : edge_slots) total += slot.size();
  result.edges.reserve(total);
  for (const auto& slot : edge_slots) {
    result.edges.insert(result.edges.end(), slot.begin(), slot.end());
  }
  return result;
}

}  // namespace pagen::core
