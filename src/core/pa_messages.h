// Wire formats of the distributed PA algorithms (Algorithms 3.1 and 3.2).
#pragma once

#include <cstdint>

#include "util/types.h"

namespace pagen::core {

// Tag space of the generation protocol.
inline constexpr int kTagRequest = 1;   ///< <request, ...>
inline constexpr int kTagResolved = 2;  ///< <resolved, ...>
inline constexpr int kTagDone = 3;      ///< rank -> 0 local-completion notice
inline constexpr int kTagStop = 4;      ///< 0 -> all stop broadcast

/// Algorithm 3.1 <request, t, k>: "tell me F_k so I can set F_t".
struct RequestX1 {
  NodeId t = 0;
  NodeId k = 0;
};

/// Algorithm 3.1 <resolved, t, v>: "F_t = v".
struct ResolvedX1 {
  NodeId t = 0;
  NodeId v = 0;
};

/// Algorithm 3.2 <request, t, e, k, l>: "tell me F_k(l) for t's e-th edge".
struct RequestXk {
  NodeId t = 0;
  NodeId k = 0;
  std::uint32_t e = 0;
  std::uint32_t l = 0;
};

/// Algorithm 3.2 <resolved, t, e, v>.
struct ResolvedXk {
  NodeId t = 0;
  NodeId v = 0;
  std::uint32_t e = 0;
  std::uint32_t pad = 0;  ///< keeps the struct trivially packed at 24 bytes
};

}  // namespace pagen::core
