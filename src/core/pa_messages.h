// Wire formats of the distributed PA algorithms (Algorithms 3.1 and 3.2).
//
// The definitions moved to core/genrt/protocol.h when the shared generator
// runtime was extracted (docs/architecture.md); this forwarding header keeps
// the historical include path working for code that only needs the message
// structs and tags.
#pragma once

#include "core/genrt/protocol.h"  // IWYU pragma: export
