// Wire formats of the distributed PA algorithms (Algorithms 3.1 and 3.2).
#pragma once

#include <cstdint>

#include "util/types.h"

namespace pagen::core {

// Tag space of the generation protocol.
inline constexpr int kTagRequest = 1;   ///< <request, ...>
inline constexpr int kTagResolved = 2;  ///< <resolved, ...>
inline constexpr int kTagDone = 3;      ///< rank -> 0 local-completion notice
inline constexpr int kTagStop = 4;      ///< 0 -> all stop broadcast
inline constexpr int kTagRecover = 5;   ///< restarted incarnation -> all:
                                        ///< "my queues died; re-offer what
                                        ///< you still wait on" (robustness)

/// Algorithm 3.1 <request, t, k>: "tell me F_k so I can set F_t".
struct RequestX1 {
  NodeId t = 0;
  NodeId k = 0;
};

/// Algorithm 3.1 <resolved, t, v>: "F_t = v".
struct ResolvedX1 {
  NodeId t = 0;
  NodeId v = 0;
};

/// Algorithm 3.2 <request, t, e, k, l>: "tell me F_k(l) for t's e-th edge".
/// `round` echoes the requester's per-slot attempt counter at issue time;
/// the owner copies it into the response so the requester can discard stale
/// answers after a crash recovery re-offers requests (the answer value is a
/// pure function of (t, e, round), so duplicates are otherwise ambiguous —
/// docs/robustness.md). pad keeps the struct trivially packed at 32 bytes.
struct RequestXk {
  NodeId t = 0;
  NodeId k = 0;
  std::uint32_t e = 0;
  std::uint32_t l = 0;
  std::uint32_t round = 0;
  std::uint32_t pad = 0;
};

/// Algorithm 3.2 <resolved, t, e, v>. `round` echoes the request's (see
/// RequestXk); the struct stays trivially packed at 24 bytes.
struct ResolvedXk {
  NodeId t = 0;
  NodeId v = 0;
  std::uint32_t e = 0;
  std::uint32_t round = 0;
};

}  // namespace pagen::core
