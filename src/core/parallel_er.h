// Distributed Erdős–Rényi G(n, p) generation.
//
// The paper's introduction: "Even for the Erdős–Rényi model where the
// existence of edges are independent of each other, parallelization of a
// non-naive efficient algorithm, such as the algorithm by Batagelj and
// Brandes, is a non-trivial problem. A parallelization ... was recently
// proposed in [24]."  This module implements that parallelization as a
// companion generator and as the contrast case for the PA algorithms: the
// pair-index space [0, C(n,2)) is split into contiguous chunks, and each
// rank runs the geometric-skipping enumeration privately — zero messages,
// perfect independence, versus PA's request/resolve protocol.
#pragma once

#include <vector>

#include "baseline/er_gen.h"
#include "graph/edge_list.h"
#include "mps/stats.h"
#include "util/types.h"

namespace pagen::core {

struct ParallelErResult {
  graph::EdgeList edges;                 ///< gathered (empty if !gather)
  std::vector<graph::EdgeList> shards;   ///< per-rank edges
  Count total_edges = 0;
  double wall_seconds = 0.0;
};

/// Generate G(n, p) on `ranks` ranks. Deterministic in (config.seed, ranks):
/// each rank derives an independent stream from the seed and its chunk.
[[nodiscard]] ParallelErResult generate_er(const baseline::ErConfig& config,
                                           int ranks, bool gather = true);

/// Map a linear pair index to the pair (v, w), w < v, under lexicographic
/// enumeration idx = v(v-1)/2 + w. Exposed for tests.
[[nodiscard]] graph::Edge pair_from_index(Count idx);

}  // namespace pagen::core
