// Analytic parallel-time model driven by measured per-rank loads.
//
// This reproduction runs on a single physical core, so wall-clock cannot
// exhibit real parallel speedup.  The paper's own analysis (Section 3.5)
// measures load as nodes + messages per rank; we model the parallel time of
// a run as the most loaded rank's work plus a logarithmic collective term:
//
//   T_P = max_i (c_node * nodes_i + c_msg * messages_i) + c_col * ceil(log2 P)
//
// with c_node calibrated from a real timed sequential run and c_msg
// expressed as a multiple of c_node (the paper's simplifying assumption i:
// "sending a message takes the same computation time as receiving").
// The strong/weak scaling benches (Figs. 5-6) report modeled speedups whose
// *shape* — LCP ≈ RRP > UCP, near-linear growth — is fully determined by the
// measured load distribution.
#pragma once

#include <span>

#include "core/load_stats.h"

namespace pagen::core {

struct CostModel {
  /// Seconds of compute per generated node (type A+B unit work).
  double sec_per_node = 1e-7;

  /// Seconds per algorithm-level message sent or received. The paper's
  /// analysis uses one unit per message vs. a constant b per node; the
  /// default keeps that 1:1 ratio.
  double sec_per_message = 1e-7;

  /// Seconds per collective hop; collectives cost ceil(log2 P) hops.
  double sec_per_collective_hop = 5e-6;
};

/// Calibrate from a measured sequential run: `seconds` wall-clock for a run
/// that produced `nodes` nodes. The message cost is msg_cost_ratio times the
/// node cost.
[[nodiscard]] CostModel calibrate_cost_model(double seconds, Count nodes,
                                             double msg_cost_ratio = 1.0);

/// Modeled parallel runtime of a run with the given per-rank loads.
[[nodiscard]] double modeled_parallel_seconds(const CostModel& model,
                                              std::span<const RankLoad> loads);

/// Modeled runtime of the same total work executed by a single rank, i.e.
/// the model's sequential reference (no messages are exchanged when P = 1).
[[nodiscard]] double modeled_sequential_seconds(const CostModel& model,
                                                std::span<const RankLoad> loads);

}  // namespace pagen::core
