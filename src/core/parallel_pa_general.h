// Algorithm 3.2: distributed-memory preferential attachment, x >= 1.
//
// Extends Algorithm 3.1 with x edges per node, an initial x-clique, and
// duplicate-edge avoidance: a duplicate discovered on the direct path
// retries with a fresh (k, coin) (paper Lines 9-10); a duplicate discovered
// when a <resolved> arrives re-draws (k, l) and stays on the copy path
// (Lines 26-29).  Each rank maintains x wait-queues per owned node
// (Q_{k,l}) and the same buffering/termination machinery as the x = 1 case.
//
// The duplicate-retry decisions depend on the order in which a node's edges
// resolve, so — exactly as in the paper — the emitted edge set for x > 1 is
// scheduling-dependent; the distribution and all structural invariants
// (simple graph, exact edge count, connectivity) are preserved and tested.
#pragma once

#include "baseline/pa_config.h"
#include "core/parallel_pa.h"

namespace pagen::core {

/// Run Algorithm 3.2. Requires config.n > config.x >= 1. For x == 1 this
/// delegates to generate_pa_x1 (identical protocol, cheaper bookkeeping).
/// ParallelResult::targets stays empty for x > 1 (rows are per-edge; use
/// `edges`).
[[nodiscard]] ParallelResult generate_pa_general(const PaConfig& config,
                                                 const ParallelOptions& options);

}  // namespace pagen::core
