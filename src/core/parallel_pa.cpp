#include "core/parallel_pa.h"

#include <chrono>
#include <map>

#include "baseline/pa_draws.h"
#include "core/checkpoint.h"
#include "core/pa_messages.h"
#include "mps/engine.h"
#include "mps/send_buffer.h"
#include "mps/termination.h"
#include "obs/session.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::core {
namespace {

using partition::Partition;

/// Interval a rank sleeps in poll_wait when it has nothing runnable.
constexpr std::chrono::milliseconds kIdleWait{20};

/// Private state and protocol logic of one rank executing Algorithm 3.1.
class RankX1 {
 public:
  RankX1(const PaConfig& config, const ParallelOptions& options,
         const Partition& part, mps::Comm& comm)
      : config_(config),
        options_(options),
        part_(part),
        comm_(comm),
        draws_(config),
        store_edges_(options.gather_edges || options.keep_shards),
        f_(part.part_size(comm.rank()), kNil),
        waiters_(f_.size()),
        req_buf_(comm, kTagRequest, options.buffer_capacity),
        res_buf_(comm, kTagResolved, options.buffer_capacity),
        done_(comm, kTagDone, kTagStop),
        tolerant_(options.fault_plan.has_crash()),
        recovering_(comm.incarnation() > 0),
        ob_(comm.obs()) {
    load_.nodes = f_.size();
    edges_.reserve(f_.size());
    if (ob_ != nullptr) {
      wait_depth_hist_ = &ob_->metrics().histogram("pa.wait_queue_depth");
      chain_hist_ = &ob_->metrics().histogram("pa.chain_latency_ns");
      mailbox_gauge_ = &ob_->metrics().gauge("mps.mailbox_depth");
      pending_since_.assign(f_.size(), -1);
    }
  }

  void run() {
    if (!recovering_) {
      comm_.barrier();  // common start line, as mpirun would provide
    } else {
      // Respawned incarnation: the start barrier already completed in a
      // previous life (sends — where crashes fire — happen only after it),
      // so joining it again would desynchronize the collective generation.
      // Restore the durable slice and announce the restart so peers
      // re-offer whatever they still wait on (our queues died with us).
      const auto sp = obs::span(ob_, "recover");
      restore_from_checkpoint();
      // Count the replay's open slots up front: answers to the previous
      // incarnation's requests may arrive before the replay loop reaches
      // their node, and resolve() must always see a consistent count.
      const Count my_nodes = part_.part_size(comm_.rank());
      for (Count idx = 0; idx < my_nodes; ++idx) {
        if (f_[idx] == kNil && part_.node_at(comm_.rank(), idx) != 0) {
          ++unresolved_;
        }
      }
      for (Rank r = 0; r < comm_.size(); ++r) {
        if (r != comm_.rank()) comm_.send_item<char>(r, kTagRecover, 0);
      }
    }

    {
      // Phase 1: process own nodes in ascending label order, pumping
      // messages between batches so requests from other ranks are never
      // starved. A recovering rank skips slots its checkpoint restored.
      const auto sp = obs::span(ob_, "generate");
      const Count my_nodes = part_.part_size(comm_.rank());
      for (Count idx = 0; idx < my_nodes; ++idx) {
        if (!(recovering_ && f_[idx] != kNil)) {
          process_own_node(part_.node_at(comm_.rank(), idx));
        }
        if ((idx + 1) % options_.node_batch == 0) {
          pump(false);
          maybe_checkpoint(false);
        }
      }
      req_buf_.flush_all();
      maybe_checkpoint(true);
    }

    {
      // Phase 2: serve and wait until every local F is resolved.
      const auto sp = obs::span(ob_, "drain");
      while (unresolved_ > 0) {
        pump(true);
        maybe_checkpoint(false);
      }
    }

    {
      // Phase 3: local completion. All responses we owe so far are flushed
      // before the done notice; afterwards we keep serving requests (always
      // flushing responses) until the global stop arrives.
      const auto sp = obs::span(ob_, "termination");
      res_buf_.flush_all();
      PAGEN_CHECK(req_buf_.empty() && res_buf_.empty());
      maybe_checkpoint(true);
      done_.notify_local_done();
      while (!done_.stopped()) pump(true);
      res_buf_.flush_all();
    }

    comm_.barrier();  // nobody tears down while peers might still poll
  }

  [[nodiscard]] RankLoad load() const { return load_; }
  [[nodiscard]] graph::EdgeList&& take_edges() { return std::move(edges_); }
  [[nodiscard]] std::vector<NodeId>&& take_targets() { return std::move(f_); }

 private:
  void process_own_node(NodeId t) {
    if (t == 0) return;  // node 0 has no outgoing choice
    if (!recovering_) ++unresolved_;  // a recovery pre-counts open slots
    if (t == 1) {
      resolve(t, 0);  // bootstrap edge (1, 0)
      return;
    }
    const NodeId k = draws_.pick_k(t, 0, 0);
    if (draws_.pick_direct(t, 0, 0)) {
      resolve(t, k);  // Line 5-6: F_t = k
      return;
    }
    // Line 8-9: F_t = F_k, which may not be known yet.
    const Rank owner = part_.owner(k);
    if (owner == comm_.rank()) {
      const Count kidx = part_.local_index(k);
      if (f_[kidx] != kNil) {
        resolve(t, f_[kidx]);
      } else {
        waiters_[kidx].push_back({t, comm_.rank()});
        ++load_.local_waits;
        note_queue_depth(waiters_[kidx].size());
      }
    } else {
      req_buf_.add(owner, {t, k});
      ++load_.requests_sent;
      if (tolerant_) outstanding_.emplace(t, RequestX1{t, k});
      if (ob_ != nullptr) {
        pending_since_[part_.local_index(t)] = now_ns();
      }
    }
  }

  /// F_t := v. Emits the edge and cascades to every waiter of t.
  void resolve(NodeId t, NodeId v) {
    const Count idx = part_.local_index(t);
    if (f_[idx] != kNil) {
      // Crash-tolerant mode: a recovery legitimately produces duplicate
      // resolutions (a checkpoint-restored slot answered again via
      // re-offer, or a peer's re-request of a waiter that survived). The
      // value must agree — draws are pure in (seed, t), so F_t is unique.
      PAGEN_CHECK_MSG(tolerant_, "double resolve of node " << t);
      PAGEN_CHECK_MSG(f_[idx] == v, "conflicting resolution of node " << t);
      return;
    }
    f_[idx] = v;
    PAGEN_CHECK(unresolved_ > 0);
    --unresolved_;
    ++resolved_since_ckpt_;
    emit_edge({t, v});
    // Waiters of t have F_{t'} = F_t = v (Lines 16-19).
    for (const Waiter& w : waiters_[idx]) {
      if (w.owner == comm_.rank()) {
        resolve(w.t, v);
      } else {
        res_buf_.add(w.owner, {w.t, v});
        ++load_.resolved_sent;
      }
    }
    waiters_[idx].clear();
    waiters_[idx].shrink_to_fit();
  }

  void handle_request(Rank src, const RequestX1& req) {
    ++load_.requests_received;
    const Count kidx = part_.local_index(req.k);
    PAGEN_DCHECK(part_.owner(req.k) == comm_.rank());
    if (f_[kidx] != kNil) {
      res_buf_.add(src, {req.t, f_[kidx]});  // Line 12-13
      ++load_.resolved_sent;
    } else {
      waiters_[kidx].push_back({req.t, src});  // Line 15: queue Q_k
      ++load_.queued;
      note_queue_depth(waiters_[kidx].size());
    }
  }

  void handle_resolved(const ResolvedX1& res) {
    ++load_.resolved_received;
    if (ob_ != nullptr) {
      // Chain-resolution latency: time from our <request> leaving to its
      // <resolved> arriving — the wait Theorem 3.3 bounds by O(log n) hops.
      std::int64_t& since = pending_since_[part_.local_index(res.t)];
      if (since >= 0) {
        chain_hist_->observe(static_cast<std::uint64_t>(now_ns() - since));
        since = -1;
      }
    }
    if (tolerant_) outstanding_.erase(res.t);
    resolve(res.t, res.v);  // Lines 16-19 (cascade happens inside)
  }

  /// A peer respawned: every request we still wait on that it owns died
  /// with its waiter queues, so offer them again. The answers that were
  /// already in flight arrive as duplicates and are absorbed by the
  /// tolerant resolve path.
  void handle_recover(Rank src) {
    for (const auto& [t, req] : outstanding_) {
      if (part_.owner(req.k) == src) {
        req_buf_.add(src, req);
        ++load_.requests_sent;
      }
    }
    req_buf_.flush(src);
    done_.on_peer_recover(src);
    if (ob_ != nullptr) ob_->trace().instant("peer_recover");
  }

  /// Restore the resolved F slice of a previous incarnation, re-emitting
  /// its edges (the sink contract is at-least-once under crashes). Nodes
  /// left kNil are replayed by phase 1 exactly as in the first life.
  void restore_from_checkpoint() {
    if (options_.checkpoint_dir.empty()) return;
    RankCheckpoint ck;
    if (!load_checkpoint(options_.checkpoint_dir, comm_.rank(), ck)) return;
    PAGEN_CHECK_MSG(ck.n == config_.n && ck.x == config_.x &&
                        ck.seed == config_.seed &&
                        ck.nranks == comm_.size() && ck.f.size() == f_.size(),
                    "checkpoint does not match this run's parameters");
    for (Count idx = 0; idx < ck.f.size(); ++idx) {
      if (ck.f[idx] == kNil) continue;
      f_[idx] = ck.f[idx];
      emit_edge({part_.node_at(comm_.rank(), idx), ck.f[idx]});
    }
  }

  void maybe_checkpoint(bool force) {
    if (options_.checkpoint_dir.empty()) return;
    if (resolved_since_ckpt_ == 0) return;  // nothing new since last write
    if (!force && resolved_since_ckpt_ < options_.checkpoint_every) return;
    const auto sp = obs::span(ob_, "checkpoint");
    RankCheckpoint ck;
    ck.n = config_.n;
    ck.x = config_.x;
    ck.seed = config_.seed;
    ck.rank = comm_.rank();
    ck.nranks = comm_.size();
    ck.f = f_;
    save_checkpoint(options_.checkpoint_dir, ck);
    resolved_since_ckpt_ = 0;
  }

  /// Drain and process incoming envelopes. Blocking variants sleep briefly
  /// when idle. Resolved buffers are force-flushed after every processed
  /// batch (the paper's RRP deadlock-avoidance rule) unless the ablation
  /// option disables it; they are always flushed once this rank is done.
  void pump(bool blocking) {
    inbox_.clear();
    if (ob_ != nullptr) {
      const auto depth = static_cast<std::int64_t>(comm_.pending());
      mailbox_gauge_->set(depth);
      if (ob_->trace().sample_tick()) {
        ob_->trace().counter("mailbox_depth", depth);
      }
    }
    const bool got = blocking ? comm_.poll_wait(inbox_, kIdleWait)
                              : comm_.poll(inbox_);
    if (!got) return;
    for (const mps::Envelope& env : inbox_) {
      if (done_.handle(env)) continue;
      if (env.tag == kTagRequest) {
        mps::for_each_packed<RequestX1>(
            env.payload, [&](const RequestX1& r) { handle_request(env.src, r); });
      } else if (env.tag == kTagResolved) {
        mps::for_each_packed<ResolvedX1>(
            env.payload, [&](const ResolvedX1& r) { handle_resolved(r); });
      } else if (env.tag == kTagRecover) {
        handle_recover(env.src);
      } else {
        PAGEN_CHECK_MSG(false, "unexpected tag " << env.tag);
      }
    }
    if (options_.flush_resolved_after_batch || unresolved_ == 0) {
      res_buf_.flush_all();
    }
  }

  void note_queue_depth(std::size_t depth) {
    load_.max_queue_depth = std::max<Count>(load_.max_queue_depth, depth);
    if (wait_depth_hist_ != nullptr) wait_depth_hist_->observe(depth);
  }

  void emit_edge(const graph::Edge& e) {
    if (store_edges_) edges_.push_back(e);
    if (options_.edge_sink) options_.edge_sink(comm_.rank(), e);
    ++load_.edges;
  }

  struct Waiter {
    NodeId t;
    Rank owner;
  };

  const PaConfig& config_;
  const ParallelOptions& options_;
  const Partition& part_;
  mps::Comm& comm_;
  DrawSchema draws_;
  bool store_edges_;

  std::vector<NodeId> f_;                    // F by local index
  std::vector<std::vector<Waiter>> waiters_;  // Q_k by local index
  graph::EdgeList edges_;
  std::vector<mps::Envelope> inbox_;
  mps::SendBuffer<RequestX1> req_buf_;
  mps::SendBuffer<ResolvedX1> res_buf_;
  mps::DoneDetector done_;
  bool tolerant_;    ///< crash plan active: absorb duplicate resolutions
  bool recovering_;  ///< this Comm is a respawned incarnation
  RankLoad load_;
  Count unresolved_ = 0;

  /// Requests sent but not yet answered, kept only under a crash plan so
  /// they can be re-offered when their owner respawns (docs/robustness.md).
  std::map<NodeId, RequestX1> outstanding_;
  Count resolved_since_ckpt_ = 0;

  // Observability (all null / empty when observation is off).
  obs::RankObserver* ob_;
  obs::Histogram* wait_depth_hist_ = nullptr;
  obs::Histogram* chain_hist_ = nullptr;
  obs::Gauge* mailbox_gauge_ = nullptr;
  std::vector<std::int64_t> pending_since_;  ///< request departure, by local idx
};

}  // namespace

ParallelResult generate_pa_x1(const PaConfig& config,
                              const ParallelOptions& options) {
  PAGEN_CHECK_MSG(config.x == 1, "generate_pa_x1 requires x == 1");
  PAGEN_CHECK(config.n >= 2);
  PAGEN_CHECK_MSG(config.p >= 0.0 && config.p <= 1.0, "p must be in [0, 1]");
  PAGEN_CHECK(options.ranks >= 1);
  PAGEN_CHECK_MSG(static_cast<NodeId>(options.ranks) <= config.n,
                  "more ranks than nodes");

  obs::RankObserver* drv =
      options.obs != nullptr ? &options.obs->driver() : nullptr;

  std::shared_ptr<const partition::Partition> part = options.custom_partition;
  if (part) {
    PAGEN_CHECK_MSG(part->num_nodes() == config.n &&
                        part->num_parts() == options.ranks,
                    "custom partition does not match (n, ranks)");
  } else {
    const auto sp = obs::span(drv, "partition_build");
    part = partition::make_partition(options.scheme, config.n, options.ranks);
  }

  const auto nranks = static_cast<std::size_t>(options.ranks);
  std::vector<graph::EdgeList> edge_slots(nranks);
  std::vector<std::vector<NodeId>> target_slots(nranks);
  LoadVector load_slots(nranks);

  mps::WorldOptions world_options;
  world_options.fault_plan = options.fault_plan;
  world_options.reliable = options.reliable;

  mps::RunResult run;
  {
    const auto world_span = obs::span(drv, "run_ranks");
    run = mps::run_ranks(
        options.ranks, world_options,
        [&](mps::Comm& comm) {
          RankX1 rank(config, options, *part, comm);
          rank.run();
          const auto slot = static_cast<std::size_t>(comm.rank());
          load_slots[slot] = rank.load();
          if (auto* ob = comm.obs()) record_metrics(ob->metrics(), rank.load());
          if (options.gather_edges || options.keep_shards) {
            edge_slots[slot] = rank.take_edges();
          }
          if (options.gather_edges) {
            target_slots[slot] = rank.take_targets();
          }
        },
        options.obs);
  }

  ParallelResult result;
  result.loads = std::move(load_slots);
  result.comm_stats = run.rank_stats;
  result.wall_seconds = run.wall_seconds;
  result.respawns = run.respawns;
  for (const RankLoad& l : result.loads) result.total_edges += l.edges;

  if (options.gather_edges) {
    result.edges.reserve(result.total_edges);
    for (auto& slot : edge_slots) {
      result.edges.insert(result.edges.end(), slot.begin(), slot.end());
      if (!options.keep_shards) slot.clear();
    }
    result.targets.assign(config.n, kNil);
    for (Rank r = 0; r < options.ranks; ++r) {
      const auto& slot = target_slots[static_cast<std::size_t>(r)];
      for (Count idx = 0; idx < slot.size(); ++idx) {
        result.targets[part->node_at(r, idx)] = slot[idx];
      }
    }
  }
  if (options.keep_shards) result.shards = std::move(edge_slots);
  return result;
}

}  // namespace pagen::core
