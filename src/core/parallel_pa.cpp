// pagen-lint: policy-impl — the X1Policy speaks only through the Driver.
#include "core/parallel_pa.h"

#include "baseline/pa_draws.h"
#include "core/genrt/driver.h"
#include "core/genrt/launch.h"
#include "core/pa_messages.h"
#include "util/error.h"

namespace pagen::core {
namespace {

/// Algorithm 3.1 as a genrt policy: one slot per node (F_t itself), no
/// duplicate retries, no rounds. Everything else — phases, buffering, flush
/// rules, termination, checkpoints, recovery — lives in the genrt runtime.
class X1Policy {
 public:
  using Request = RequestX1;
  using Resolved = ResolvedX1;
  /// Serving messages never creates fresh requests for x = 1 (no duplicate
  /// retries), so only phase 1 flushes the request buffer.
  static constexpr bool kFlushRequestsAfterPump = false;
  /// The slot table IS the targets row F_t.
  static constexpr bool kHasTargets = true;

  static Count slots_per_node(const PaConfig&) { return 1; }

  using D = genrt::Driver<X1Policy>;

  explicit X1Policy(D& d) : d_(d), draws_(d.config()) {}

  /// Node 0 has no outgoing choice; everything else owns one slot.
  [[nodiscard]] static bool node_has_slots(NodeId t) { return t != 0; }

  void process_own_node(NodeId t) {
    if (t == 0) return;  // node 0 has no outgoing choice
    const Count s = d_.part().local_index(t);
    if (d_.recovering() && d_.slots().resolved(s)) return;  // restored
    if (!d_.recovering()) d_.add_open_slot();  // recovery pre-counts these
    if (t == 1) {
      resolve(t, 0);  // bootstrap edge (1, 0)
      return;
    }
    const NodeId k = draws_.pick_k(t, 0, 0);
    if (draws_.pick_direct(t, 0, 0)) {
      resolve(t, k);  // Line 5-6: F_t = k
      return;
    }
    // Line 8-9: F_t = F_k, which may not be known yet.
    const Rank owner = d_.part().owner(k);
    if (owner == d_.rank()) {
      const Count ks = d_.part().local_index(k);
      if (d_.slots().resolved(ks)) {
        d_.note_copy_depth(ks);  // F_t extends F_k's dependency chain
        resolve(t, d_.slots().value(ks));
      } else {
        d_.queue_waiter(ks, {.t = t, .owner = d_.rank()});
      }
    } else {
      d_.send_request(owner, s, {t, k});
    }
  }

  // --- Request/resolved mapping (Lines 12-19) ---

  [[nodiscard]] Count request_slot(const Request& req) const {
    return d_.part().local_index(req.k);
  }
  [[nodiscard]] genrt::Waiter request_waiter(const Request& req,
                                             Rank src) const {
    return {.t = req.t, .owner = src};  // Line 15: queue Q_k
  }
  [[nodiscard]] static Resolved make_resolved(const Request& req, NodeId v) {
    return {req.t, v};  // Line 12-13
  }
  [[nodiscard]] static Resolved waiter_resolved(const genrt::Waiter& w,
                                                NodeId v) {
    return {w.t, v};
  }
  [[nodiscard]] Count resolved_slot(const Resolved& res) const {
    return d_.part().local_index(res.t);
  }
  [[nodiscard]] static bool accept_resolved(const Resolved&) {
    return true;  // no rounds for x = 1: every answer is current
  }
  void apply_resolved(const Resolved& res) { resolve(res.t, res.v); }
  void deliver_local(const genrt::Waiter& w, NodeId v) { resolve(w.t, v); }

  // --- Checkpoint extras: x = 1 has none beyond the F slice ---

  static void fill_checkpoint(RankCheckpoint&) {}
  static void restore_checkpoint_extras(const RankCheckpoint&) {}

 private:
  /// F_t := v (cascades to every waiter of t inside the runtime).
  void resolve(NodeId t, NodeId v) {
    const Count s = d_.part().local_index(t);
    if (d_.slots().resolved(s)) {
      // Crash-tolerant mode: a recovery legitimately produces duplicate
      // resolutions (a checkpoint-restored slot answered again via
      // re-offer, or a peer's re-request of a waiter that survived). The
      // value must agree — draws are pure in (seed, t), so F_t is unique.
      PAGEN_CHECK_MSG(d_.tolerant(), "double resolve of node " << t);
      PAGEN_CHECK_MSG(d_.slots().value(s) == v,
                      "conflicting resolution of node " << t);
      return;
    }
    d_.assign_slot(s, t, v);
  }

  D& d_;
  DrawSchema draws_;
};

}  // namespace

ParallelResult generate_pa_x1(const PaConfig& config,
                              const ParallelOptions& options) {
  PAGEN_CHECK_MSG(config.x == 1, "generate_pa_x1 requires x == 1");
  PAGEN_CHECK(config.n >= 2);
  PAGEN_CHECK_MSG(config.p >= 0.0 && config.p <= 1.0, "p must be in [0, 1]");
  PAGEN_CHECK(options.ranks >= 1);
  PAGEN_CHECK_MSG(static_cast<NodeId>(options.ranks) <= config.n,
                  "more ranks than nodes");
  return genrt::launch<X1Policy>(config, options);
}

}  // namespace pagen::core
