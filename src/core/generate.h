// Front door of the pagen library.
//
// Quickstart:
//   #include "core/generate.h"
//   pagen::PaConfig config{.n = 1'000'000, .x = 4, .p = 0.5, .seed = 42};
//   pagen::core::ParallelOptions options{.engine = "mps", .ranks = 8};
//   auto result = pagen::core::generate(config, options);
//   // result.edges holds the scale-free network's 4e6 edges.
#pragma once

#include "baseline/pa_config.h"
#include "core/options.h"
#include "core/parallel_pa.h"

namespace pagen::core {

/// Generate a preferential-attachment network with the engine named by
/// options.engine (core/engine/engine.h): "mps" (the default) runs the
/// paper's request/resolved protocol — Algorithm 3.1 for x = 1, 3.2
/// otherwise — "commfree" the communication-free pseudorandomization
/// backend, "seq-copy"/"seq-bb" the sequential references. Unknown engine
/// names and options the engine's capabilities cannot honor (e.g. a
/// checkpoint_dir for an engine without checkpoint support) are rejected
/// with a CheckError before any work starts.
[[nodiscard]] ParallelResult generate(const PaConfig& config,
                                      const ParallelOptions& options);

}  // namespace pagen::core
