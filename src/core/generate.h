// Front door of the pagen library.
//
// Quickstart:
//   #include "core/generate.h"
//   pagen::PaConfig config{.n = 1'000'000, .x = 4, .p = 0.5, .seed = 42};
//   pagen::core::ParallelOptions options{.ranks = 8};
//   auto result = pagen::core::generate(config, options);
//   // result.edges holds the scale-free network's 4e6 edges.
#pragma once

#include "core/parallel_pa.h"
#include "core/parallel_pa_general.h"

namespace pagen::core {

/// Generate a preferential-attachment network with the distributed
/// algorithm matching config.x: Algorithm 3.1 for x = 1 (dispatched
/// directly — the general front door's x == 1 delegation is bypassed, not
/// relied on), Algorithm 3.2 otherwise. Both routes produce identical
/// x = 1 output (tests/generate_dispatch_test.cpp pins this).
[[nodiscard]] inline ParallelResult generate(const PaConfig& config,
                                             const ParallelOptions& options) {
  if (config.x == 1) return generate_pa_x1(config, options);
  return generate_pa_general(config, options);
}

}  // namespace pagen::core
