// genrt layer 3 — the event-loop driver: the shared rank engine of every
// request/resolved generator.
//
// Algorithms 3.1 and 3.2 differ only in slot bookkeeping and duplicate-edge
// retry; the message loop around them is one machine. Driver<Policy> owns
// that machine — the generate → drain → termination phases, per-destination
// send buffering, the post-batch flush rule, counting termination, the flat
// slot store, load accounting, observability spans, cooperative
// cancellation (ParallelOptions::cancel_requested, polled at every phase
// boundary), the batched edge sink, and the crash-recovery adapter — and
// delegates the algorithm to a small policy object.
//
// pagen-lint: hot-path — the per-message event loop; flat tables only.
//
// A policy plugs in with (see docs/architecture.md for the full contract,
// parallel_pa.cpp / parallel_pa_general.cpp for the two instances):
//
//   using Request / Resolved;         // slot-addressed wire pair (protocol.h)
//   kFlushRequestsAfterPump;          // true if serving messages can create
//                                     // fresh requests (duplicate retries)
//   kHasTargets;                      // expose the value table as targets
//   static slots_per_node(config);    // 1 for x = 1, x for the general case
//   Policy(Driver&);                  // holds algorithm state (draws, ...)
//   process_own_node(t);              // phase-1 work for one owned node
//   node_has_slots(t);                // false for seed/clique nodes
//   request_slot / request_waiter / make_resolved / waiter_resolved;
//   resolved_slot / accept_resolved / apply_resolved / deliver_local;
//   fill_checkpoint / restore_checkpoint_extras;
//
// The driver's state transitions are exactly the rank lifecycle of
// docs/protocol.md §3; the recovery flow is docs/robustness.md §3.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "baseline/pa_config.h"
#include "core/genrt/protocol.h"
#include "core/genrt/recovery.h"
#include "core/genrt/slot_store.h"
#include "core/load_stats.h"
#include "core/options.h"
#include "graph/edge_list.h"
#include "mps/comm.h"
#include "mps/message.h"
#include "mps/send_buffer.h"
#include "mps/termination.h"
#include "obs/session.h"
#include "partition/partition.h"
#include "util/error.h"

namespace pagen::core::genrt {

/// One parked party waiting for a slot to resolve: either a remote
/// requester (owner != self; `round` echoes its request) or a local node
/// whose own slot copies the awaited one (e/round meaningful per policy).
struct Waiter {
  NodeId t = 0;
  std::uint32_t e = 0;
  Rank owner = 0;
  std::uint32_t round = 0;
  /// Causal root-slot id of the parked remote request (0 = untraced: node 0
  /// never requests, so 0 is never a real root). Filled by the driver from
  /// the incoming stamp, never by policies.
  std::uint64_t root = 0;
};

/// Interval a rank sleeps in poll_wait when it has nothing runnable.
inline constexpr std::chrono::milliseconds kIdleWait{20};

template <typename P>
  requires SlotMessages<typename P::Request, typename P::Resolved>
class Driver {
 public:
  using Request = typename P::Request;
  using Resolved = typename P::Resolved;

  Driver(const PaConfig& config, const ParallelOptions& options,
         const partition::Partition& part, mps::Comm& comm)
      : config_(config),
        options_(options),
        part_(part),
        comm_(comm),
        store_edges_(options.gather_edges || options.keep_shards),
        spn_(P::slots_per_node(config)),
        tolerant_(options.fault_plan.has_crash()),
        recovering_(comm.incarnation() > 0 ||
                    (options.resume && !options.checkpoint_dir.empty())),
        ob_(comm.obs()),
        chain_hist_(ob_ != nullptr
                        ? &ob_->metrics().histogram("pa.chain_latency_ns")
                        : nullptr),
        slots_(part.part_size(comm.rank()) * spn_, tolerant_, chain_hist_),
        waiters_(slots_.size()),
        req_buf_(comm, kTagRequest, options.buffer_capacity),
        res_buf_(comm, kTagResolved, options.buffer_capacity),
        done_(comm, kTagDone, kTagStop),
        recovery_(*this),
        policy_(*this) {
    load_.nodes = part.part_size(comm.rank());
    if (store_edges_) edges_.reserve(slots_.size());
    if (options.edge_batch_sink) {
      PAGEN_CHECK_MSG(options.edge_batch_capacity >= 1,
                      "edge_batch_capacity must be >= 1");
      batch_buf_.reserve(options.edge_batch_capacity);
    }
    if (ob_ != nullptr) {
      wait_depth_hist_ = &ob_->metrics().histogram("pa.wait_queue_depth");
      mailbox_gauge_ = &ob_->metrics().gauge("mps.mailbox_depth");
      if (ob_->causal()) {
        causal_ = true;
        chain_len_hist_ = &ob_->metrics().histogram("pa.chain_length");
        depth_.assign(slots_.size(), 0);
      }
    }
  }

  /// The full rank lifecycle (docs/protocol.md §3).
  void run() {
    if (comm_.incarnation() > 0) {
      // Mid-run respawn: the start rendezvous already completed in a
      // previous life; restore and announce so peers re-offer.
      const auto sp = obs::span(ob_, "recover");
      recovery_.restore_and_announce();
    } else {
      comm_.barrier();  // common start line, as mpirun would provide
      if (recovering_) {
        // Fresh-run resume (ParallelOptions::resume): all ranks restore
        // their own checkpoints together behind the barrier — no peer
        // holds state for us, so no re-offer broadcast.
        const auto sp = obs::span(ob_, "resume");
        recovery_.restore_quietly();
      }
    }

    {
      // Phase 1: process own nodes in ascending label order, pumping
      // messages between batches so requests from other ranks are never
      // starved. A recovering policy skips slots its checkpoint restored.
      const auto sp = obs::span(ob_, "generate");
      const Count my_nodes = part_.part_size(comm_.rank());
      for (Count idx = 0; idx < my_nodes; ++idx) {
        policy_.process_own_node(part_.node_at(comm_.rank(), idx));
        if ((idx + 1) % options_.node_batch == 0) {
          check_cancel();
          pump(false);
          recovery_.maybe_checkpoint(false);
        }
      }
      req_buf_.flush_all();
      recovery_.maybe_checkpoint(true);
    }

    {
      // Phase 2: serve and wait until every local slot is resolved.
      const auto sp = obs::span(ob_, "drain");
      while (unresolved_ > 0) {
        check_cancel();
        pump(true);
        recovery_.maybe_checkpoint(false);
      }
    }

    {
      // Phase 3: local completion. All responses we owe so far are flushed
      // before the done notice; afterwards we keep serving requests (always
      // flushing responses) until the global stop arrives.
      const auto sp = obs::span(ob_, "termination");
      res_buf_.flush_all();
      PAGEN_CHECK(req_buf_.empty() && res_buf_.empty());
      recovery_.maybe_checkpoint(true);
      done_.notify_local_done();
      while (!done_.stopped()) {
        check_cancel();
        pump(true);
      }
      res_buf_.flush_all();
    }

    flush_edge_batch();
    comm_.barrier();  // nobody tears down while peers might still poll
  }

  // --- Results (read after run()) ---

  [[nodiscard]] const RankLoad& load() const { return load_; }
  /// Slots restored from a checkpoint by this incarnation's bring-up
  /// (resume or respawn); 0 on a cold start.
  [[nodiscard]] Count restored_slots() const { return recovery_.restored(); }
  [[nodiscard]] graph::EdgeList&& take_edges() { return std::move(edges_); }
  /// The slot-value table (x = 1: the targets row F_t by local index).
  [[nodiscard]] std::vector<NodeId> take_values() {
    return slots_.release_values();
  }

  // --- Facilities for the policy and the recovery adapter ---

  [[nodiscard]] const PaConfig& config() const { return config_; }
  [[nodiscard]] const ParallelOptions& options() const { return options_; }
  [[nodiscard]] const partition::Partition& part() const { return part_; }
  [[nodiscard]] mps::Comm& comm() { return comm_; }
  [[nodiscard]] Rank rank() const { return comm_.rank(); }
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] bool tolerant() const { return tolerant_; }
  [[nodiscard]] Count slots_per_node() const { return spn_; }
  [[nodiscard]] SlotStore<Request>& slots() { return slots_; }
  [[nodiscard]] P& policy() { return policy_; }
  [[nodiscard]] mps::DoneDetector& done() { return done_; }
  [[nodiscard]] obs::RankObserver* obs() const { return ob_; }
  [[nodiscard]] RankLoad& load() { return load_; }

  /// One more local slot awaits resolution (phase-1 discovery; a recovery
  /// pre-counts its open slots instead).
  void add_open_slot() { ++unresolved_; }

  /// Globally unique causal id of node `t`'s slot `slot`: t * spn + e. For
  /// x = 1 this is just t; for x >= 1 it is t * x + e. Used as the flow
  /// correlation id and the stamp's root across ranks.
  [[nodiscard]] std::uint64_t causal_root(NodeId t, Count slot) const {
    return static_cast<std::uint64_t>(t) * spn_ + slot % spn_;
  }

  /// Ship `req` for local slot `slot` to `owner`: buffer it, account it,
  /// and let the slot store remember it (re-offer tracking + latency stamp).
  /// Under causal tracing the request carries a stamp naming this slot as
  /// the chain root, and a flow starts on this rank's track — the "s" end
  /// of the Perfetto arrow that lands on the owner's resolve.
  void send_request(Rank owner, Count slot, const Request& req) {
    if (causal_) {
      const std::uint64_t root = causal_root(req.t, slot);
      ob_->trace().flow_start("chain", root);
      req_buf_.add_stamped(owner, req, {root, comm_.rank(), 0});
      ++load_.requests_sent;
    } else {
      offer_request(owner, req);
    }
    slots_.note_sent(slot, req);
  }

  /// Buffer `req` toward `dst` without touching the slot store (the
  /// recovery re-offer path: the slot already holds it).
  void offer_request(Rank dst, const Request& req) {
    req_buf_.add(dst, req);
    ++load_.requests_sent;
  }

  void flush_requests_to(Rank dst) { req_buf_.flush(dst); }

  void send_resolved(Rank dst, const Resolved& res) {
    res_buf_.add(dst, res);
    ++load_.resolved_sent;
  }

  /// Park `w` on `slot` until it resolves (Line 15 / Lines 19-20).
  void queue_waiter(Count slot, const Waiter& w) {
    waiters_[slot].push_back(w);
    if (w.owner == comm_.rank()) {
      ++load_.local_waits;
    } else {
      ++load_.queued;
    }
    note_queue_depth(waiters_[slot].size());
  }

  /// Causal hook for policies: the next assign_slot copies its value from
  /// already-resolved local slot `from_slot`, so the assigned slot extends
  /// that slot's dependency chain by one. No-op when causal tracing is off.
  void note_copy_depth(Count from_slot) {
    if (causal_) pending_depth_ = depth_[from_slot] + 1;
  }

  /// Slot := v. Emits the edge and answers everyone queued on the slot —
  /// locally through the policy (which may retry a duplicate), remotely
  /// with a buffered <resolved>.
  ///
  /// Causal bookkeeping: the slot's chain length is the staged
  /// pending_depth_ (1 for independent resolutions; predecessor + 1 when
  /// staged by note_copy_depth, the waiter cascade below, or an incoming
  /// stamp in handle_resolved) — exactly the |D_t| recursion of
  /// baseline/chain_tracer.cpp, so on deterministic x = 1 runs the
  /// "pa.chain_length" histogram matches thm33_dependency_chains bit for
  /// bit. Each resolution also records a chain trace event, and remote
  /// waiters get their response stamped with this slot's depth.
  void assign_slot(Count slot, NodeId t, NodeId v) {
    PAGEN_CHECK_MSG(!slots_.resolved(slot), "double assign of node " << t);
    slots_.set_value(slot, v);
    PAGEN_CHECK(unresolved_ > 0);
    --unresolved_;
    std::uint32_t depth = 1;
    if (causal_) {
      depth = pending_depth_;
      pending_depth_ = 1;
      depth_[slot] = depth;
      if (t >= 2) {  // the thm33 oracle counts |D_t| for t in [2, n) only
        chain_len_hist_->observe(depth);
        ob_->trace().chain("chain_len", causal_root(t, slot), depth);
      }
    }
    recovery_.note_resolution();
    emit_edge({t, v});
    auto& q = waiters_[slot];
    for (const Waiter& w : q) {
      if (w.owner == comm_.rank()) {
        if (causal_) pending_depth_ = depth + 1;
        policy_.deliver_local(w, v);
      } else if (causal_ && w.root != 0) {
        ob_->trace().flow_step("chain", w.root);
        res_buf_.add_stamped(w.owner, policy_.waiter_resolved(w, v),
                             {w.root, w.owner, depth});
        ++load_.resolved_sent;
      } else {
        send_resolved(w.owner, policy_.waiter_resolved(w, v));
      }
    }
    if (causal_) pending_depth_ = 1;
    q.clear();
    q.shrink_to_fit();
  }

  void emit_edge(const graph::Edge& e) {
    if (store_edges_) edges_.push_back(e);
    if (options_.edge_sink) options_.edge_sink(comm_.rank(), e);
    if (options_.edge_batch_sink) {
      batch_buf_.push_back(e);
      if (batch_buf_.size() >= options_.edge_batch_capacity) {
        flush_edge_batch();
      }
    }
    ++load_.edges;
  }

 private:
  /// Cooperative cancellation (docs/serving.md §4): polled at every phase
  /// boundary and pump round, so a cancel lands within ~kIdleWait even on a
  /// rank that is only waiting. Throwing here unwinds through run_ranks'
  /// abort path — peers are woken, nobody wedges — and a buffered batch
  /// sink simply drops its tail (a cancelled job's stream is truncated by
  /// contract).
  void check_cancel() {
    if (options_.cancel_requested && options_.cancel_requested()) {
      throw Cancelled();
    }
  }

  /// Hand the buffered edges to the batch sink (emission order preserved).
  void flush_edge_batch() {
    if (!options_.edge_batch_sink || batch_buf_.empty()) return;
    options_.edge_batch_sink(comm_.rank(), batch_buf_);
    batch_buf_.clear();
  }
  /// Drain and process incoming envelopes; blocking variants sleep briefly
  /// when idle. Ends every processed batch with flush_after_batch().
  void pump(bool blocking) {
    inbox_.clear();
    if (ob_ != nullptr) {
      const auto depth = static_cast<std::int64_t>(comm_.pending());
      mailbox_gauge_->set(depth);
      if (ob_->trace().sample_tick()) {
        ob_->trace().counter("mailbox_depth", depth);
      }
    }
    const bool got = blocking ? comm_.poll_wait(inbox_, kIdleWait)
                              : comm_.poll(inbox_);
    if (!got) return;
    for (const mps::Envelope& env : inbox_) {
      if (done_.handle(env)) continue;
      if (env.tag == kTagRequest) {
        std::size_t item = 0;
        mps::for_each_packed<Request>(env.payload, [&](const Request& r) {
          handle_request(env.src, r, causal_stamp_at(env, item++));
        });
      } else if (env.tag == kTagResolved) {
        std::size_t item = 0;
        mps::for_each_packed<Resolved>(env.payload, [&](const Resolved& r) {
          handle_resolved(r, causal_stamp_at(env, item++));
        });
      } else if (env.tag == kTagRecover) {
        recovery_.on_peer_recover(env.src);
      } else {
        PAGEN_CHECK_MSG(false, "unexpected tag " << env.tag);
      }
    }
    flush_after_batch();
  }

  /// THE post-batch flush rule, in one place (both generators used to
  /// hand-roll it, with drift):
  ///
  /// 1. <resolved> buffers are force-flushed after every processed batch —
  ///    the paper's RRP deadlock-avoidance rule (Section 3.5): under
  ///    round-robin partitioning every rank still has unprocessed own nodes
  ///    while serving others, so an answer parked in a partially-full
  ///    buffer could wait on a sender that is itself blocked waiting for
  ///    answers — a cycle. Flushing answers eagerly breaks it. The ablation
  ///    option exists only to measure the rule's cost under CP schemes;
  ///    once this rank has nothing unresolved the flush is unconditional
  ///    (it owes the world everything it knows).
  /// 2. <request> buffers flush only for policies whose message handling
  ///    can create fresh requests (x >= 1 duplicate retries): in the
  ///    waiting phases nothing else would flush those, and a parked
  ///    request is a parked dependency chain.
  void flush_after_batch() {
    if (options_.flush_resolved_after_batch || unresolved_ == 0) {
      res_buf_.flush_all();
    }
    if constexpr (P::kFlushRequestsAfterPump) {
      req_buf_.flush_all();
    }
  }

  /// Per-item stamp of a mixed batch, or null when the item is unstamped
  /// (untraced run, or a recovery re-offer padded with origin = -1).
  static const mps::CausalStamp* causal_stamp_at(const mps::Envelope& env,
                                                 std::size_t i) {
    if (i >= env.causal.size()) return nullptr;
    const mps::CausalStamp& st = env.causal[i];
    return st.origin >= 0 ? &st : nullptr;
  }

  /// Owner side of <request> (Lines 12-15 / 17-20): answer from the slot
  /// store or park the requester. A stamped request continues its flow here
  /// ("t" on this rank's track); the answer — immediate or deferred via the
  /// waiter — echoes the root with this slot's chain depth as the hop.
  void handle_request(Rank src, const Request& req,
                      const mps::CausalStamp* stamp = nullptr) {
    ++load_.requests_received;
    PAGEN_DCHECK(part_.owner(req.k) == comm_.rank());
    const Count s = policy_.request_slot(req);
    if (causal_ && stamp != nullptr) ob_->trace().flow_step("chain", stamp->root);
    if (slots_.resolved(s)) {
      if (causal_ && stamp != nullptr) {
        res_buf_.add_stamped(src, policy_.make_resolved(req, slots_.value(s)),
                             {stamp->root, src, depth_[s]});
        ++load_.resolved_sent;
      } else {
        send_resolved(src, policy_.make_resolved(req, slots_.value(s)));
      }
    } else {
      Waiter w = policy_.request_waiter(req, src);
      if (stamp != nullptr) w.root = stamp->root;
      queue_waiter(s, w);
    }
  }

  /// Requester side of <resolved>: filter (stale rounds after a recovery
  /// re-offer), close the slot-store entry (latency + re-offer bookkeeping),
  /// then let the policy accept or retry the value. A stamped answer ends
  /// its flow ("f") and stages hop + 1 as the depth of whatever slot the
  /// policy assigns while applying it.
  void handle_resolved(const Resolved& res,
                       const mps::CausalStamp* stamp = nullptr) {
    ++load_.resolved_received;
    if (!policy_.accept_resolved(res)) return;
    slots_.note_answered(policy_.resolved_slot(res));
    if (causal_ && stamp != nullptr) {
      ob_->trace().flow_end("chain", stamp->root);
      pending_depth_ = stamp->hop + 1;
    }
    policy_.apply_resolved(res);
    if (causal_) pending_depth_ = 1;
  }

  void note_queue_depth(std::size_t depth) {
    load_.max_queue_depth = std::max<Count>(load_.max_queue_depth, depth);
    if (wait_depth_hist_ != nullptr) wait_depth_hist_->observe(depth);
  }

  const PaConfig& config_;
  const ParallelOptions& options_;
  const partition::Partition& part_;
  mps::Comm& comm_;
  bool store_edges_;
  Count spn_;        ///< slots per node (1 for x = 1, x for the general case)
  bool tolerant_;    ///< crash plan active: absorb duplicate resolutions
  bool recovering_;  ///< this Comm is a respawned incarnation

  // Observability (all null when observation is off).
  obs::RankObserver* ob_;
  obs::Histogram* chain_hist_;
  obs::Histogram* wait_depth_hist_ = nullptr;
  obs::Gauge* mailbox_gauge_ = nullptr;

  // Causal tracing (ob_ != nullptr && cfg.causal). depth_[s] mirrors the
  // Theorem 3.3 recursion |D_t|: 1 for an independent resolution, parent + 1
  // for a copy — staged through pending_depth_ by whichever path knows the
  // parent (local copy via note_copy_depth, waiter cascade, incoming stamp).
  obs::Histogram* chain_len_hist_ = nullptr;
  bool causal_ = false;
  std::vector<std::uint32_t> depth_;  ///< per-slot chain depth (causal only)
  std::uint32_t pending_depth_ = 1;   ///< depth the next assign_slot records

  SlotStore<Request> slots_;
  std::vector<std::vector<Waiter>> waiters_;  ///< Q_{k(,l)} by slot
  graph::EdgeList edges_;
  graph::EdgeList batch_buf_;  ///< pending edges of the batch sink
  std::vector<mps::Envelope> inbox_;
  mps::SendBuffer<Request> req_buf_;
  mps::SendBuffer<Resolved> res_buf_;
  mps::DoneDetector done_;
  RankLoad load_;
  Count unresolved_ = 0;
  Recovery<Driver> recovery_;
  P policy_;  ///< constructed last: sees every runtime member initialized
};

}  // namespace pagen::core::genrt
