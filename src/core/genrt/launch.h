// genrt launch scaffolding: everything between "validated config + options"
// and "assembled ParallelResult" that is identical for every generator.
//
// Two entry points:
//
//  * launch<Policy>() — the request/resolved generators (Algorithms 3.1 and
//    3.2). Builds (or validates) the partition, runs one genrt::Driver<P>
//    per rank under mps::run_ranks, and assembles edges / shards / loads /
//    comm stats. When the policy exposes a targets row (P::kHasTargets, the
//    x = 1 value table) it is scattered back to global node order.
//
//  * run_sharded() — the embarrassingly parallel generators (ER, Chung-Lu):
//    no protocol, just per-rank edge production under the same world
//    machinery, load accounting, and shard/gather assembly.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "baseline/pa_config.h"
#include "core/genrt/driver.h"
#include "core/load_stats.h"
#include "core/options.h"
#include "core/parallel_pa.h"
#include "graph/edge_list.h"
#include "mps/engine.h"
#include "obs/session.h"
#include "partition/partition.h"
#include "util/error.h"

namespace pagen::core::genrt {

/// The session's driver-thread observer, or null when observation is off.
inline obs::RankObserver* driver_observer(const ParallelOptions& options) {
  return options.obs != nullptr ? &options.obs->driver() : nullptr;
}

/// The run's partition: the caller's custom one (validated against
/// (n, ranks)) or a fresh build of the configured scheme.
inline std::shared_ptr<const partition::Partition> make_run_partition(
    NodeId n, const ParallelOptions& options, obs::RankObserver* drv) {
  std::shared_ptr<const partition::Partition> part = options.custom_partition;
  if (part) {
    PAGEN_CHECK_MSG(
        part->num_nodes() == n && part->num_parts() == options.ranks,
        "custom partition does not match (n, ranks)");
  } else {
    const auto sp = obs::span(drv, "partition_build");
    part = partition::make_partition(options.scheme, n, options.ranks);
  }
  return part;
}

/// Run one Driver<P> per rank and assemble the result. The caller has
/// already validated config and options (the checks differ per algorithm).
template <typename P>
ParallelResult launch(const PaConfig& config, const ParallelOptions& options) {
  // A job cancelled before launch never pays for a partition build or a
  // world spin-up (the svc worker checks admission-time cancels here).
  if (options.cancel_requested && options.cancel_requested()) {
    throw Cancelled();
  }
  obs::RankObserver* drv = driver_observer(options);
  const auto part = make_run_partition(config.n, options, drv);

  const auto nranks = static_cast<std::size_t>(options.ranks);
  std::vector<graph::EdgeList> edge_slots(nranks);
  std::vector<std::vector<NodeId>> value_slots(nranks);
  LoadVector load_slots(nranks);
  std::vector<Count> restored_slots(nranks, 0);

  mps::WorldOptions world_options;
  world_options.fault_plan = options.fault_plan;
  world_options.reliable = options.reliable;
  world_options.max_respawns = options.max_respawns;
  world_options.rto_base_ms = options.rto_base_ms;
  world_options.rto_max_ms = options.rto_max_ms;
  world_options.delivery_hook = options.delivery_hook;
  if (options.delivery_hook != nullptr) {
    // The World's own constructor re-checks reliable/fault incompatibility;
    // checkpointing is a generator-level concern, so gate it here.
    PAGEN_CHECK_MSG(options.checkpoint_dir.empty(),
                    "delivery_hook is incompatible with checkpointing");
  }

  mps::RunResult run;
  {
    const auto world_span = obs::span(drv, "run_ranks");
    run = mps::run_ranks(
        options.ranks, world_options,
        [&](mps::Comm& comm) {
          Driver<P> rank(config, options, *part, comm);
          rank.run();
          const auto slot = static_cast<std::size_t>(comm.rank());
          load_slots[slot] = rank.load();
          restored_slots[slot] = rank.restored_slots();
          if (auto* ob = comm.obs()) record_metrics(ob->metrics(), rank.load());
          if (options.gather_edges || options.keep_shards) {
            edge_slots[slot] = rank.take_edges();
          }
          if constexpr (P::kHasTargets) {
            if (options.gather_edges) value_slots[slot] = rank.take_values();
          }
        },
        options.obs);
  }

  ParallelResult result;
  result.loads = std::move(load_slots);
  result.comm_stats = run.rank_stats;
  result.wall_seconds = run.wall_seconds;
  result.respawns = run.respawns;
  for (const Count r : restored_slots) result.restored_slots += r;
  for (const RankLoad& l : result.loads) result.total_edges += l.edges;

  if (options.gather_edges) {
    result.edges.reserve(result.total_edges);
    for (auto& slot : edge_slots) {
      result.edges.insert(result.edges.end(), slot.begin(), slot.end());
      if (!options.keep_shards) slot.clear();
    }
    if constexpr (P::kHasTargets) {
      // Scatter each rank's value row back to global node order.
      result.targets.assign(config.n, kNil);
      for (Rank r = 0; r < options.ranks; ++r) {
        const auto& slot = value_slots[static_cast<std::size_t>(r)];
        for (Count idx = 0; idx < slot.size(); ++idx) {
          result.targets[part->node_at(r, idx)] = slot[idx];
        }
      }
    }
  }
  if (options.keep_shards) result.shards = std::move(edge_slots);
  return result;
}

/// Shared scaffolding for generators with no cross-rank protocol (ER,
/// Chung-Lu): run `body(comm, shard)` per rank under the same world
/// machinery (one trailing barrier so wall_seconds covers all ranks'
/// generation), then total, and optionally gather, the shards. `Result`
/// needs members {edges, shards, total_edges, wall_seconds}; shards are
/// always kept (these generators are sharded by construction).
template <typename Result, typename Body>
Result run_sharded(int ranks, bool gather, Body&& body) {
  Result result;
  result.shards.resize(static_cast<std::size_t>(ranks));

  const mps::RunResult run = mps::run_ranks(ranks, [&](mps::Comm& comm) {
    body(comm, result.shards[static_cast<std::size_t>(comm.rank())]);
    comm.barrier();
  });

  result.wall_seconds = run.wall_seconds;
  for (const auto& shard : result.shards) result.total_edges += shard.size();
  if (gather) {
    result.edges.reserve(result.total_edges);
    for (const auto& shard : result.shards) {
      result.edges.insert(result.edges.end(), shard.begin(), shard.end());
    }
  }
  return result;
}

}  // namespace pagen::core::genrt
