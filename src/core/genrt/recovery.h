// genrt layer 4 — the recovery adapter: every crash-tolerance concern of a
// generator rank, funneled through one code path.
//
// PR 3 wired checkpoint restore, epoch-bumped respawn bring-up, and the
// kTagRecover re-offer into parallel_pa.cpp and parallel_pa_general.cpp by
// hand — twice, with drift (docs/robustness.md §3). This adapter is the
// single implementation both policies now share:
//
//  * restore_and_announce() — a respawned incarnation restores the durable
//    F slice (plus policy extras: attempt counters, copy-path latches),
//    re-emits the restored edges (the sink contract is at-least-once under
//    crashes), pre-counts the replay's open slots up front (answers to the
//    previous incarnation's requests may arrive before the replay loop
//    reaches their node, and the resolve path must always see a consistent
//    count), and broadcasts kTagRecover so peers re-offer whatever they
//    still wait on — our queues died with us.
//  * on_peer_recover() — the other side: every outstanding request owned by
//    the respawned peer is offered again from the flat slot store, and the
//    termination detector repairs whatever done/stop state died with it.
//    In-flight answers then arrive as duplicates and are absorbed by the
//    tolerant resolve path (round echoes disambiguate for x > 1).
//  * note_resolution() / maybe_checkpoint() — the checkpoint write cadence.
//
// `D` is the genrt::Driver instantiation; the adapter reaches policy hooks
// (fill_checkpoint / restore_checkpoint_extras / node_has_slots) through it.
#pragma once

#include "core/checkpoint.h"
#include "core/genrt/protocol.h"
#include "core/options.h"
#include "obs/session.h"
#include "util/error.h"
#include "util/types.h"

namespace pagen::core::genrt {

template <typename D>
class Recovery {
 public:
  explicit Recovery(D& d) : d_(d) {}

  /// Respawned-incarnation bring-up (replaces the start barrier: that
  /// rendezvous already completed in a previous life — sends, where crashes
  /// fire, happen only after it — so joining it again would desynchronize
  /// the collective generation).
  void restore_and_announce() {
    restore_from_checkpoint();
    precount_open_slots();
    for (Rank r = 0; r < d_.comm().size(); ++r) {
      if (r != d_.rank()) {
        d_.comm().template send_item<char>(r, kTagRecover, 0);
      }
    }
  }

  /// Fresh-run resume bring-up (ParallelOptions::resume, the service retry
  /// path): every rank restores its own checkpoint after the common start
  /// barrier, so — unlike a mid-run respawn — no peer holds in-flight state
  /// for us and no kTagRecover re-offer broadcast is needed (one would
  /// produce duplicate answers that only the crash-tolerant resolve path
  /// absorbs). Missing checkpoints leave the rank a plain cold start.
  void restore_quietly() {
    restore_from_checkpoint();
    precount_open_slots();
  }

  /// Slots this incarnation restored from its checkpoint (0 on cold start).
  [[nodiscard]] Count restored() const { return restored_; }

  /// A peer respawned: re-offer every request we still wait on that it owns
  /// (its waiter queues died with it), then let the termination detector
  /// repair its lost done/stop state.
  void on_peer_recover(Rank src) {
    d_.slots().for_each_outstanding(
        [&](Count, const typename D::Request& req) {
          if (d_.part().owner(req.k) == src) d_.offer_request(src, req);
        });
    d_.flush_requests_to(src);
    d_.done().on_peer_recover(src);
    if (d_.obs() != nullptr) d_.obs()->trace().instant("peer_recover");
  }

  /// One slot resolved since the last checkpoint write.
  void note_resolution() { ++resolved_since_ckpt_; }

  void maybe_checkpoint(bool force) {
    if (d_.options().checkpoint_dir.empty()) return;
    if (resolved_since_ckpt_ == 0) return;  // nothing new since last write
    if (!force && resolved_since_ckpt_ < d_.options().checkpoint_every) return;
    const auto sp = obs::span(d_.obs(), "checkpoint");
    RankCheckpoint ck;
    ck.n = d_.config().n;
    ck.x = d_.config().x;
    ck.seed = d_.config().seed;
    ck.rank = d_.rank();
    ck.nranks = d_.comm().size();
    ck.f = d_.slots().values();
    d_.policy().fill_checkpoint(ck);
    save_checkpoint(d_.options().checkpoint_dir, ck);
    resolved_since_ckpt_ = 0;
  }

 private:
  /// Restore the durable slice of a previous incarnation, re-emitting its
  /// edges. Slots left kNil are replayed by the generate phase exactly as
  /// in the first life (re-drawing identically from any restored attempt).
  void restore_from_checkpoint() {
    if (d_.options().checkpoint_dir.empty()) return;
    RankCheckpoint ck;
    if (!load_checkpoint(d_.options().checkpoint_dir, d_.rank(), ck)) return;
    PAGEN_CHECK_MSG(ck.n == d_.config().n && ck.x == d_.config().x &&
                        ck.seed == d_.config().seed &&
                        ck.nranks == d_.comm().size() &&
                        ck.f.size() == d_.slots().size(),
                    "checkpoint does not match this run's parameters");
    d_.policy().restore_checkpoint_extras(ck);
    const Count spn = d_.slots_per_node();
    for (Count s = 0; s < ck.f.size(); ++s) {
      if (ck.f[s] == kNil) continue;
      d_.slots().set_value(s, ck.f[s]);
      d_.emit_edge({d_.part().node_at(d_.rank(), s / spn), ck.f[s]});
      ++restored_;
    }
  }

  /// Count the replay's open slots up front so the drain phase's unresolved
  /// count is consistent before the replay loop runs.
  void precount_open_slots() {
    const Count my_nodes = d_.part().part_size(d_.rank());
    const Count spn = d_.slots_per_node();
    for (Count idx = 0; idx < my_nodes; ++idx) {
      const NodeId t = d_.part().node_at(d_.rank(), idx);
      if (!d_.policy().node_has_slots(t)) continue;  // seed/clique node
      for (Count e = 0; e < spn; ++e) {
        if (!d_.slots().resolved(idx * spn + e)) d_.add_open_slot();
      }
    }
  }

  D& d_;
  Count resolved_since_ckpt_ = 0;
  Count restored_ = 0;
};

}  // namespace pagen::core::genrt
