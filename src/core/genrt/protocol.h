// genrt layer 1 — the protocol: tags and slot-addressed messages.
//
// The generation protocol of Algorithms 3.1 and 3.2 is one conversation
// shape: a requester that cannot resolve a local *slot* (an attachment
// choice F_t(e)) sends a <request> to the owner of the node it copies from,
// and eventually receives a <resolved> carrying the value. Everything else —
// per-destination batching, the flush rules, termination, recovery — is
// independent of what precisely a slot is. The genrt runtime therefore
// treats messages through the *slot-addressed message concept*:
//
//  * `Request` names the requester's slot (via fields `t` and, for x > 1,
//    `e`) and the owner-side slot it reads (via `k` and, for x > 1, `l`).
//    The runtime routes it with `partition.owner(req.k)` and re-offers it
//    verbatim when that owner respawns, so `k` is the one field the runtime
//    itself reads.
//  * `Resolved` echoes the requester's slot plus the value `v`. The policy
//    maps it back to a slot index (`resolved_slot`) and decides acceptance
//    (`accept_resolved` filters stale rounds after a crash re-offer).
//
// The concrete x = 1 and x >= 1 wire structs below are exactly the paper's
// message contents (docs/protocol.md §2); the runtime never inspects the
// x-specific fields.
//
// pagen-lint: wire-structs — every struct here travels through
// mps::pack/unpack; keep them trivially copyable (static_asserts below) and
// bump kProtocolWireVersion whenever any of them changes shape.
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>

#include "util/types.h"

namespace pagen::core {

/// Version of the on-the-wire protocol layout below. Checkpoint files and
/// replayable model-checker traces implicitly assume one layout; bump this
/// (and treat mismatching artifacts as stale) whenever a tag is added or a
/// wire struct changes size, field order, or meaning.
inline constexpr std::uint32_t kProtocolWireVersion = 1;

// Tag space of the generation protocol (shared by every genrt policy).
inline constexpr int kTagRequest = 1;   ///< <request, ...>
inline constexpr int kTagResolved = 2;  ///< <resolved, ...>
inline constexpr int kTagDone = 3;      ///< rank -> 0 local-completion notice
inline constexpr int kTagStop = 4;      ///< 0 -> all stop broadcast
inline constexpr int kTagRecover = 5;   ///< restarted incarnation -> all:
                                        ///< "my queues died; re-offer what
                                        ///< you still wait on" (robustness)

/// Algorithm 3.1 <request, t, k>: "tell me F_k so I can set F_t".
struct RequestX1 {
  NodeId t = 0;
  NodeId k = 0;
};

/// Algorithm 3.1 <resolved, t, v>: "F_t = v".
struct ResolvedX1 {
  NodeId t = 0;
  NodeId v = 0;
};

/// Algorithm 3.2 <request, t, e, k, l>: "tell me F_k(l) for t's e-th edge".
/// `round` echoes the requester's per-slot attempt counter at issue time;
/// the owner copies it into the response so the requester can discard stale
/// answers after a crash recovery re-offers requests (the answer value is a
/// pure function of (t, e, round), so duplicates are otherwise ambiguous —
/// docs/robustness.md). pad keeps the struct trivially packed at 32 bytes.
struct RequestXk {
  NodeId t = 0;
  NodeId k = 0;
  std::uint32_t e = 0;
  std::uint32_t l = 0;
  std::uint32_t round = 0;
  std::uint32_t pad = 0;
};

/// Algorithm 3.2 <resolved, t, e, v>. `round` echoes the request's (see
/// RequestXk); the struct stays trivially packed at 24 bytes.
struct ResolvedXk {
  NodeId t = 0;
  NodeId v = 0;
  std::uint32_t e = 0;
  std::uint32_t round = 0;
};

namespace genrt {

/// Wire requirements the runtime places on a policy's message pair: both
/// trivially copyable (they travel through mps::pack/unpack) and the request
/// naming the owner-side node `k` the runtime routes and re-offers by, plus
/// the requesting node `t` from which the causal tracer derives the global
/// root-slot id it stamps onto outgoing requests.
template <typename Req, typename Res>
concept SlotMessages =
    std::is_trivially_copyable_v<Req> && std::is_trivially_copyable_v<Res> &&
    requires(const Req& req) {
      { req.k } -> std::convertible_to<NodeId>;
      { req.t } -> std::convertible_to<NodeId>;
    };

static_assert(SlotMessages<RequestX1, ResolvedX1>);
static_assert(SlotMessages<RequestXk, ResolvedXk>);

}  // namespace genrt
}  // namespace pagen::core
