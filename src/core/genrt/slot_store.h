// genrt layer 2 — the slot store: one flat, slot-indexed table of a rank's
// attachment state.
//
// pagen-lint: hot-path — touched once per message; flat vectors only.
//
// A *slot* is one attachment choice this rank owns: for x = 1 the local node
// index itself, for x >= 1 `local_index(t) * x + e`. Slot indices are dense
// and bounded by `part_size * x`, so every per-slot concern lives in flat
// vectors indexed by slot instead of node-keyed trees:
//
//  * `values_` — the resolved F values (kNil = still unresolved);
//  * `requests_` / `open_` — the in-flight remote request per slot, kept
//    only under a crash plan so it can be re-offered when its owner
//    respawns. This replaces the old hot-path
//    `std::map<NodeId, RequestX1>` / `std::map<Count, RequestXk>`
//    `outstanding_` maps of the two generators: note_sent / note_answered
//    are O(1) array writes with zero allocation instead of rb-tree
//    insert/erase (bench/micro_components.cpp, BM_Outstanding*).
//  * `pending_since_` — the request-departure stamps behind the
//    pa.chain_latency_ns histogram (the wait Theorem 3.3 bounds by
//    O(log n) hops). The store owns the stamping rule, so it is uniform
//    across policies by construction: stamped on every note_sent and
//    observed on the first accepted answer, exactly when a chain-latency
//    histogram is attached (observation off keeps the hot path bare).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/timer.h"
#include "util/types.h"

namespace pagen::core::genrt {

template <typename Request>
class SlotStore {
 public:
  /// @param slots        number of local slots (part_size * x).
  /// @param track_requests keep the outstanding Request per slot for crash
  ///   re-offer (crash-tolerant runs only; costs slots * sizeof(Request)).
  /// @param chain_hist   chain-resolution latency histogram, or null to
  ///   disable stamping entirely.
  SlotStore(Count slots, bool track_requests, obs::Histogram* chain_hist)
      : values_(slots, kNil), chain_hist_(chain_hist) {
    if (track_requests) {
      requests_.assign(slots, Request{});
      open_.assign(slots, 0);
    }
    if (chain_hist_ != nullptr) pending_since_.assign(slots, -1);
  }

  [[nodiscard]] Count size() const { return values_.size(); }

  [[nodiscard]] bool resolved(Count slot) const {
    return values_[slot] != kNil;
  }
  [[nodiscard]] NodeId value(Count slot) const { return values_[slot]; }

  void set_value(Count slot, NodeId v) {
    PAGEN_DCHECK(v != kNil);
    values_[slot] = v;
  }

  /// The whole value table, slot-indexed — the checkpointed F slice and the
  /// x = 1 targets row.
  [[nodiscard]] const std::vector<NodeId>& values() const { return values_; }

  /// Move the value table out (end of run; the store is spent afterwards).
  [[nodiscard]] std::vector<NodeId> release_values() {
    return std::move(values_);
  }

  /// A <request> for `slot` left this rank: remember it for re-offer (when
  /// tracking) and stamp the latency clock (when observing). A re-send after
  /// a duplicate retry overwrites — only the latest round is re-offered, and
  /// the latency clock restarts with it.
  void note_sent(Count slot, const Request& req) {
    if (!requests_.empty()) {
      if (open_[slot] == 0) {
        open_[slot] = 1;
        ++outstanding_;
      }
      requests_[slot] = req;
    }
    if (chain_hist_ != nullptr) pending_since_[slot] = now_ns();
  }

  /// The answer for `slot` arrived and was accepted: observe the chain
  /// latency (first answer only) and close the outstanding entry.
  void note_answered(Count slot) {
    if (chain_hist_ != nullptr) {
      std::int64_t& since = pending_since_[slot];
      if (since >= 0) {
        chain_hist_->observe(static_cast<std::uint64_t>(now_ns() - since));
        since = -1;
      }
    }
    if (!open_.empty() && open_[slot] != 0) {
      open_[slot] = 0;
      PAGEN_DCHECK(outstanding_ > 0);
      --outstanding_;
    }
  }

  /// In-flight remote requests (0 unless tracking is on).
  [[nodiscard]] Count outstanding() const { return outstanding_; }

  /// Visit every outstanding request in slot order (ascending — for x = 1
  /// that is ascending node label, matching the old map iteration). Rare
  /// path: only the kTagRecover re-offer walks this.
  template <typename Fn>
  void for_each_outstanding(Fn&& fn) const {
    Count seen = 0;
    for (Count s = 0; s < open_.size() && seen < outstanding_; ++s) {
      if (open_[s] != 0) {
        ++seen;
        fn(s, requests_[s]);
      }
    }
  }

 private:
  std::vector<NodeId> values_;        ///< F by slot; kNil = unresolved
  std::vector<Request> requests_;     ///< in-flight request by slot (tracking)
  std::vector<std::uint8_t> open_;    ///< 1 = requests_[s] is in flight
  Count outstanding_ = 0;
  obs::Histogram* chain_hist_;
  std::vector<std::int64_t> pending_since_;  ///< request departure, by slot
};

}  // namespace pagen::core::genrt
