#include "core/parallel_er.h"

#include <cmath>

#include "core/genrt/launch.h"
#include "rng/splitmix.h"
#include "rng/xoshiro.h"
#include "util/error.h"

namespace pagen::core {

graph::Edge pair_from_index(Count idx) {
  // v is the largest integer with v(v-1)/2 <= idx. Start from the floating
  // inverse and correct the ±1 rounding integer-exactly.
  auto v = static_cast<Count>(
      (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) / 2.0);
  while (v * (v - 1) / 2 > idx) --v;
  while ((v + 1) * v / 2 <= idx) ++v;
  const Count w = idx - v * (v - 1) / 2;
  PAGEN_DCHECK(w < v);
  return {v, w};
}

ParallelErResult generate_er(const baseline::ErConfig& config, int ranks,
                             bool gather) {
  PAGEN_CHECK(ranks >= 1);
  PAGEN_CHECK(config.p >= 0.0 && config.p <= 1.0);
  const Count total_pairs = config.n < 2 ? 0 : config.n * (config.n - 1) / 2;

  return genrt::run_sharded<ParallelErResult>(
      ranks, gather, [&](mps::Comm& comm, graph::EdgeList& shard) {
        const auto r = static_cast<Count>(comm.rank());
        const Count begin = total_pairs * r / static_cast<Count>(ranks);
        const Count end = total_pairs * (r + 1) / static_cast<Count>(ranks);
        if (config.p <= 0.0 || begin >= end) return;

        if (config.p >= 1.0) {
          shard.reserve(end - begin);
          for (Count idx = begin; idx < end; ++idx) {
            shard.push_back(pair_from_index(idx));
          }
          return;
        }
        // Private stream per (seed, rank): mix the rank into the seed.
        rng::Xoshiro256pp rng(rng::splitmix64_mix(
            config.seed ^ (0x9e3779b97f4a7c15ULL * (r + 1))));
        const double log_q = std::log(1.0 - config.p);
        // Positions are linear pair indices; walk by geometric skips.
        Count pos = begin;
        bool first = true;
        while (true) {
          const double u = rng.unit();
          const auto skip =
              static_cast<Count>(std::floor(std::log1p(-u) / log_q));
          // The first step lands uniformly inside the chunk's initial
          // geometric gap; subsequent steps advance past the previous edge.
          pos = first ? begin + skip : pos + 1 + skip;
          first = false;
          if (pos >= end) break;
          shard.push_back(pair_from_index(pos));
        }
      });
}

}  // namespace pagen::core
