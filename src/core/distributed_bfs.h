// Distributed breadth-first search over per-rank edge shards.
//
// The third analytics pass of the suite (with distributed_degree and
// distributed_cc): level-synchronous BFS where each rank holds the
// distance array of its own nodes and the frontier expands through BSP
// supersteps — visit messages carry newly reached nodes to their owners.
// This is the Graph500 kernel shape, and what "use the generated network"
// looks like for the paper's target applications (epidemic/cascade
// simulations over synthetic social networks).
#pragma once

#include <vector>

#include "graph/edge_list.h"
#include "graph/edge_source.h"
#include "partition/partition.h"
#include "util/types.h"

namespace pagen::core {

struct DistributedBfsResult {
  /// dist[v] = hops from the source (kNil if unreachable). Gathered on
  /// return for verification; the per-rank pass never gathers edges.
  std::vector<NodeId> distances;
  Count levels = 0;          ///< BFS depth reached (max finite distance)
  Count visited = 0;         ///< reachable nodes including the source
  Count frontier_peak = 0;   ///< largest frontier across levels
};

/// Run a level-synchronous BFS from `source` over the union of `shards`.
/// Shard/ownership contract matches distributed_degree.h.
[[nodiscard]] DistributedBfsResult distributed_bfs(
    const std::vector<graph::EdgeList>& shards, NodeId n,
    partition::Scheme scheme, NodeId source);

/// Streaming variant over any EdgeSource (in-memory or compressed store).
[[nodiscard]] DistributedBfsResult distributed_bfs(
    const graph::EdgeSource& edges, partition::Scheme scheme, NodeId source);

}  // namespace pagen::core
