// Distributed degree-distribution computation over per-rank edge shards.
//
// The paper (Section 3.2): "Some network analysts may prefer to generate
// networks on the fly and analyze it without performing disk I/O."  This
// pass does exactly that for the first statistic anyone computes: each rank
// owns the degree counters of its own nodes; endpoints owned elsewhere are
// shipped as batched increment messages; the per-rank degree tables are
// folded into local (degree -> node count) histograms and allgathered.
//
// Message complexity: one increment per cross-rank endpoint, batched by
// SendBuffer. Exchange is bulk-synchronous: flush, barrier, drain — valid
// because the runtime's send enqueues synchronously (the MPI analogue
// would be an MPI_Alltoallv).
#pragma once

#include <utility>
#include <vector>

#include "graph/edge_list.h"
#include "graph/edge_source.h"
#include "partition/partition.h"
#include "util/types.h"

namespace pagen::core {

/// (degree, number of nodes with that degree), ascending by degree — the
/// same data Fig. 4 plots, computed without ever gathering the edges.
using DegreeHistogram = std::vector<std::pair<Count, Count>>;

/// Compute the exact degree distribution of the union of `shards` over
/// nodes [0, n). shards[r] must contain edges whose *newer* endpoint is
/// owned by rank r under `scheme` with P = shards.size() (which is what
/// ParallelOptions::keep_shards produces); the older endpoint may live
/// anywhere. Runs its own rank world of shards.size() ranks.
[[nodiscard]] DegreeHistogram distributed_degree_distribution(
    const std::vector<graph::EdgeList>& shards, NodeId n,
    partition::Scheme scheme);

/// Streaming variant: same computation over any EdgeSource — in-memory
/// shards or a compressed on-disk store (store::ShardedGraphView) — without
/// ever materializing a shard. One pass per shard.
[[nodiscard]] DegreeHistogram distributed_degree_distribution(
    const graph::EdgeSource& source, partition::Scheme scheme);

}  // namespace pagen::core
