// Runtime options of the distributed generators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "graph/edge_list.h"
#include "mps/fault.h"
#include "partition/partition.h"
#include "util/types.h"

namespace pagen::obs {
class Session;
}

namespace pagen::mps {
class DeliveryHook;
}

namespace pagen::core {

/// Thrown out of generate() when ParallelOptions::cancel_requested fires.
/// Every rank checks the hook in its event-loop phases (genrt/driver.h), so
/// all ranks unwind cooperatively — the world tears down through the mps
/// abort path instead of wedging peers that still wait for answers — and
/// mps::run_ranks rethrows this root cause after all rank threads join.
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("generation cancelled") {}
};

struct ParallelOptions {
  /// Which registered generation engine runs the job (core/engine/engine.h):
  /// "mps" is the paper's request/resolved protocol, "commfree" the
  /// communication-free pseudorandomization backend, "seq-copy"/"seq-bb"
  /// the sequential references. generate() rejects unknown names and
  /// capability mismatches (e.g. checkpoint_dir on an engine without
  /// checkpoint support) with a CheckError.
  std::string engine = "mps";

  /// Number of ranks (the paper's P). Ranks are runtime threads and may
  /// exceed hardware cores (DESIGN.md §2).
  int ranks = 4;

  /// Node partitioning scheme (Section 3.5).
  partition::Scheme scheme = partition::Scheme::kRrp;

  /// Override the scheme with an arbitrary Partition (e.g. block-cyclic,
  /// partition/block_cyclic.h). Must cover exactly `n` nodes over exactly
  /// `ranks` parts. When set, `scheme` is ignored.
  std::shared_ptr<const partition::Partition> custom_partition;

  /// Items per (destination, tag) buffer before an automatic flush
  /// ("message buffering", Section 3.5). 1 disables aggregation.
  std::size_t buffer_capacity = 256;

  /// Own nodes processed between message pumps.
  std::size_t node_batch = 1024;

  /// Force-flush resolved buffers after processing every received batch —
  /// the paper's deadlock-avoidance rule for RRP, applied in one place:
  /// genrt::Driver::flush_after_batch(). Always safe; switchable only so
  /// the ablation bench can quantify its cost under CP schemes.
  bool flush_resolved_after_batch = true;

  /// Collect the generated edges into one EdgeList on return. Disable for
  /// throughput runs that only need load statistics.
  bool gather_edges = true;

  /// Also return each rank's local edges separately (ParallelResult::shards)
  /// — the input format of sharded persistence (graph/sharded_io.h) and of
  /// the distributed analytics passes (core/distributed_degree.h).
  bool keep_shards = false;

  /// Observability session (src/obs/). Non-owning; must have at least
  /// `ranks` rank observers and outlive the generate call. When set, every
  /// rank emits phase spans (generate / drain / termination), runtime
  /// events, and metrics into session->rank(r), and the driver thread's
  /// partition construction is traced on the session's driver track. Null
  /// (the default) keeps the uninstrumented hot path.
  obs::Session* obs = nullptr;

  /// Streaming consumption: invoked on the generating rank's thread for
  /// every emitted edge, in emission order. Enables "generate on the fly
  /// and analyze without disk I/O" (Section 3.2) with gather_edges = false
  /// and no edge storage at all. Called concurrently from different rank
  /// threads — the callback must be thread-safe (e.g. write to
  /// rank-indexed state). Under a crash plan the sink sees restored edges
  /// again after a recovery (at-least-once); see docs/robustness.md.
  std::function<void(Rank, const graph::Edge&)> edge_sink;

  /// Batched streaming consumption: like edge_sink, but invoked with a span
  /// of edges each time a rank's flush buffer fills (and once at the end of
  /// the rank's run with the remainder), in emission order. One indirect
  /// call per edge_batch_capacity edges instead of one per edge — use this
  /// for high-volume sinks (docs/serving.md measures the difference with
  /// BM_EdgeSink*). Same thread-safety contract as edge_sink; both sinks
  /// may be set and each sees every edge.
  std::function<void(Rank, std::span<const graph::Edge>)> edge_batch_sink;

  /// Edges buffered per rank between edge_batch_sink flushes (>= 1).
  std::size_t edge_batch_capacity = 4096;

  /// Cooperative cancellation hook (generation-as-a-service, src/svc/).
  /// Polled by every rank between node batches and on every drain /
  /// termination pump round; must be thread-safe and cheap (typically one
  /// relaxed atomic load). When it returns true each rank throws
  /// core::Cancelled and the run drains cleanly: the first unwinding rank
  /// aborts the mps world, which wakes peers blocked in polls or
  /// collectives, and run_ranks rethrows Cancelled after the join. Null
  /// (the default) keeps the hook off the hot path entirely.
  std::function<bool()> cancel_requested;

  // --- Out-of-core storage (docs/storage.md) ---

  /// Stream every emitted edge into a compressed sharded store at this
  /// directory (src/store/), one shard per rank, finalized with the v3
  /// manifest when the run completes. Engine-independent: generate() wraps
  /// the batched sink path, so any engine that emits edges feeds the store
  /// without materializing them. Incompatible with crash injection and
  /// checkpoint resume — both re-emit restored edges (at-least-once), which
  /// would duplicate blocks in the store; generate() rejects the combo.
  std::string store_dir;

  /// Edges per compressed block in the store (the seek / integrity /
  /// streaming-memory granularity; store::kDefaultBlockEdges).
  std::size_t store_block_edges = 65536;

  /// Spill per-rank derivation state to files under this directory instead
  /// of holding it all in RAM, bounding peak RSS at any n. Only engines
  /// with the state_spill capability honor it (commfree: the x = 1 memo
  /// becomes a bounded cache, x > 1 completed rows page out through
  /// store::ExternalArray); generate() rejects it elsewhere. Output is
  /// bitwise-identical with or without spill.
  std::string spill_dir;

  /// In-RAM bytes each rank's spilled state may cache (>= one page).
  std::uint64_t spill_budget_bytes = std::uint64_t{64} << 20;

  // --- Robustness (docs/robustness.md) ---

  /// Deterministic fault script for the mps transport (mps/fault.h). An
  /// active plan implies `reliable`; a crash entry additionally switches
  /// the generators into crash-tolerant mode (duplicate resolutions are
  /// ignored instead of fatal, and outstanding requests are tracked for
  /// re-offer when a peer respawns).
  mps::FaultPlan fault_plan;

  /// Route sends through the ack/retransmit/dedup layer even without an
  /// active fault plan (mps/reliable.h).
  bool reliable = false;

  /// Directory for per-rank generation checkpoints. Empty (the default)
  /// disables checkpointing: a crashed rank then replays from scratch,
  /// which is still correct, just slower. The directory must exist; files
  /// are named pagen-ckpt-<rank> and overwritten atomically.
  std::string checkpoint_dir;

  /// Resolutions between checkpoint writes (per rank).
  Count checkpoint_every = 4096;

  /// Resume a *fresh* run from existing checkpoints in `checkpoint_dir`
  /// (generation-as-a-service retries, docs/robustness.md §6). Each rank
  /// restores its checkpointed slot slice before the generate phase and
  /// re-emits the restored edges, then continues with only the unresolved
  /// remainder. Unlike an in-run respawn, no peer re-offer broadcast is
  /// needed — all ranks start from their own checkpoints together. Missing
  /// or unreadable checkpoint files make the resume a plain cold start.
  bool resume = false;

  /// In-run crash tolerance budget: how many times a rank scripted to crash
  /// (fault_plan crash=) is respawned before the failure is surfaced to the
  /// caller as a job-level error (mps engine default: 3). Service retries
  /// set this to 0 so an injected crash fails the *attempt*, exercising the
  /// job-level retry path instead of the rank-level one.
  int max_respawns = 3;

  /// Reliable-delivery retransmission timeout, base and cap (milliseconds).
  std::int64_t rto_base_ms = 25;
  std::int64_t rto_max_ms = 400;

  // --- Model checking (docs/static-analysis.md, tools/mpsmc) ---

  /// Schedule-control seam: hand every delivery decision of the run's mps
  /// world to this hook (mps/delivery_hook.h; in practice an
  /// mps::mc::Scheduler). Incompatible with `reliable`, an active
  /// `fault_plan`, and checkpointing — a schedule-controlled world is
  /// plain best-effort transport. Non-owning; must outlive the call.
  mps::DeliveryHook* delivery_hook = nullptr;
};

}  // namespace pagen::core
