// Approximate distributed preferential attachment, in the style of
// Yoo & Henderson (2010) — the only prior distributed-memory PA generator
// the paper cites, and its motivating comparator.
//
// The paper's critique (Section 1): "(i) to deal [with] the dependencies
// and the required complex synchronization, they came up with an
// approximation algorithm rather than an exact algorithm; and (ii) the
// accuracy of their algorithm depends on several control parameters, which
// are manually adjusted by running the algorithm repeatedly."
//
// This module reproduces that design point so the repo can *measure* the
// critique: every rank attaches its nodes using a purely local repetition
// list (a sampled proxy of the global degree distribution) that is only
// periodically refreshed by exchanging endpoint samples with the other
// ranks. Two control parameters govern accuracy: how often ranks
// synchronize and how many samples they exchange. bench/ext_approx_accuracy
// sweeps them and scores the degree distribution against the exact
// algorithm's (KS distance and fitted gamma).
#pragma once

#include <cstddef>

#include "baseline/pa_config.h"
#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::core {

struct ApproxPaOptions {
  int ranks = 4;

  /// Nodes each rank processes between synchronization rounds (the "how
  /// often" control parameter). Larger = faster, less accurate.
  Count sync_interval = 1024;

  /// Endpoint samples each rank contributes per synchronization round (the
  /// "how much" control parameter). Smaller = faster, less accurate.
  Count sample_size = 256;
};

struct ApproxPaResult {
  graph::EdgeList edges;
  Count sync_rounds = 0;
  Count exchanged_samples = 0;
  double wall_seconds = 0.0;
};

/// Generate an *approximate* PA network: same n, x and seed semantics as the
/// exact algorithms, but attachments are drawn from each rank's local proxy
/// list. The degree distribution converges to the exact one as
/// sync_interval shrinks and sample_size grows.
[[nodiscard]] ApproxPaResult generate_approx_pa(const PaConfig& config,
                                                const ApproxPaOptions& options);

}  // namespace pagen::core
