#include "core/scaling_model.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pagen::core {

CostModel calibrate_cost_model(double seconds, Count nodes,
                               double msg_cost_ratio) {
  PAGEN_CHECK(seconds > 0.0 && nodes > 0);
  CostModel m;
  m.sec_per_node = seconds / static_cast<double>(nodes);
  m.sec_per_message = m.sec_per_node * msg_cost_ratio;
  return m;
}

double modeled_parallel_seconds(const CostModel& model,
                                std::span<const RankLoad> loads) {
  PAGEN_CHECK(!loads.empty());
  double slowest = 0.0;
  for (const RankLoad& l : loads) {
    const double t = model.sec_per_node * static_cast<double>(l.nodes) +
                     model.sec_per_message * static_cast<double>(l.total_messages());
    slowest = std::max(slowest, t);
  }
  const double hops =
      loads.size() > 1 ? std::ceil(std::log2(static_cast<double>(loads.size())))
                       : 0.0;
  return slowest + model.sec_per_collective_hop * hops;
}

double modeled_sequential_seconds(const CostModel& model,
                                  std::span<const RankLoad> loads) {
  Count nodes = 0;
  for (const RankLoad& l : loads) nodes += l.nodes;
  return model.sec_per_node * static_cast<double>(nodes);
}

}  // namespace pagen::core
