// Sequential reference engines behind the facade: the copy-model oracle the
// distributed algorithms are tested against (seq-copy) and the classic
// Batagelj-Brandes BA sampler (seq-bb). Single-rank by declaration —
// generate() rejects ranks > 1 for them — and mostly useful as the ground
// truth end of cross-engine validation (tests/engine_equivalence_test.cpp)
// and for small interactive runs.
#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "baseline/ba_batagelj_brandes.h"
#include "baseline/copy_model_seq.h"
#include "baseline/pa_config.h"
#include "core/engine/engine.h"
#include "core/load_stats.h"
#include "core/options.h"
#include "core/parallel_pa.h"
#include "graph/edge_list.h"
#include "mps/stats.h"
#include "obs/session.h"
#include "util/error.h"
#include "util/timer.h"
#include "util/types.h"

namespace pagen::core {
namespace {

/// Shared single-rank assembly: package a sequential generator's edges as a
/// one-rank ParallelResult and feed the streaming sinks in emission order
/// (everything reports as rank 0). Cancellation is coarse for these engines
/// — checked before the run only; the baselines are monolithic.
ParallelResult assemble_sequential(const ParallelOptions& options,
                                   graph::EdgeList edges,
                                   std::vector<NodeId> targets, Count nodes,
                                   Count retries, const Timer& timer) {
  RankLoad load;
  load.nodes = nodes;
  load.edges = edges.size();
  load.retries = retries;

  if (options.edge_sink) {
    for (const graph::Edge& e : edges) options.edge_sink(0, e);
  }
  if (options.edge_batch_sink) {
    PAGEN_CHECK_MSG(options.edge_batch_capacity >= 1,
                    "edge_batch_capacity must be >= 1");
    const std::span<const graph::Edge> all(edges);
    for (std::size_t off = 0; off < all.size();
         off += options.edge_batch_capacity) {
      options.edge_batch_sink(
          0, all.subspan(off, std::min(options.edge_batch_capacity,
                                       all.size() - off)));
    }
  }
  if (options.obs != nullptr) record_metrics(options.obs->rank(0).metrics(), load);

  ParallelResult result;
  result.total_edges = edges.size();
  result.loads = {load};
  result.comm_stats = {mps::CommStats{}};
  if (options.keep_shards) result.shards.push_back(edges);
  if (options.gather_edges) {
    result.edges = std::move(edges);
    result.targets = std::move(targets);
  }
  result.wall_seconds = timer.seconds();
  return result;
}

void check_sequential_options(const ParallelOptions& options) {
  PAGEN_CHECK_MSG(options.ranks == 1, "sequential engines are single-rank");
  if (options.cancel_requested && options.cancel_requested()) {
    throw Cancelled();
  }
}

class SeqCopyEngine final : public Engine {
 public:
  [[nodiscard]] std::string_view name() const override { return "seq-copy"; }

  [[nodiscard]] std::string_view description() const override {
    return "sequential copy model (the oracle of Algorithms 3.1/3.2)";
  }

  [[nodiscard]] EngineCaps capabilities() const override {
    return {.checkpointing = false,
            .fault_tolerance = false,
            .delivery_hook = false,
            .multi_rank = false,
            .determinism = Determinism::kBitwise};
  }

  [[nodiscard]] ParallelResult run(
      const PaConfig& config, const ParallelOptions& options) const override {
    check_sequential_options(options);
    const Timer timer;
    if (config.x == 1) {
      std::vector<NodeId> targets = baseline::copy_model_targets(config);
      graph::EdgeList edges;
      edges.reserve(config.n - 1);
      for (NodeId t = 1; t < config.n; ++t) edges.push_back({t, targets[t]});
      return assemble_sequential(options, std::move(edges), std::move(targets),
                                 config.n, 0, timer);
    }
    baseline::GeneralResult seq = baseline::copy_model_general(config);
    return assemble_sequential(options, std::move(seq.edges), {}, config.n,
                               seq.retries, timer);
  }
};

class SeqBbEngine final : public Engine {
 public:
  [[nodiscard]] std::string_view name() const override { return "seq-bb"; }

  [[nodiscard]] std::string_view description() const override {
    return "sequential Batagelj-Brandes BA sampler (p is ignored: pure "
           "preferential attachment)";
  }

  [[nodiscard]] EngineCaps capabilities() const override {
    return {.checkpointing = false,
            .fault_tolerance = false,
            .delivery_hook = false,
            .multi_rank = false,
            .determinism = Determinism::kBitwise};
  }

  [[nodiscard]] ParallelResult run(
      const PaConfig& config, const ParallelOptions& options) const override {
    check_sequential_options(options);
    const Timer timer;
    graph::EdgeList edges = baseline::ba_batagelj_brandes(config);
    std::vector<NodeId> targets;
    if (config.x == 1) {
      // Each node t >= 1 contributes exactly one edge (t, F_t): recover the
      // targets row so x = 1 gather output is shaped like the other engines.
      targets.assign(config.n, kNil);
      for (const graph::Edge& e : edges) targets[e.u] = e.v;
      targets[0] = kNil;
    }
    return assemble_sequential(options, std::move(edges), std::move(targets),
                               config.n, 0, timer);
  }
};

}  // namespace

std::unique_ptr<Engine> make_seq_copy_engine() {
  return std::make_unique<SeqCopyEngine>();
}

std::unique_ptr<Engine> make_seq_bb_engine() {
  return std::make_unique<SeqBbEngine>();
}

}  // namespace pagen::core
