// CommFreeEngine: communication-free preferential attachment by
// pseudorandomization (Sanders & Schulz, "Scalable Generation of Scale-free
// Graphs", arXiv:1602.07106).
//
// The mps protocol resolves a copy dependency F_t = F_k by *asking* k's
// owner. But every draw of the copy model is a pure function of
// (seed, t, e, attempt) through DrawSchema, so k's owner knows nothing the
// asking rank cannot recompute: instead of a <request>/<resolved> round
// trip, each rank re-derives the remote draw chain locally and memoizes the
// result. No mailboxes, no dependency-chain wait queues, no messages of any
// kind — the RankLoad request/resolved counters of a run are identically 0
// (tests/engine_equivalence_test.cpp asserts this; BENCH_engines.json shows
// it next to the mps volumes).
//
// The trade is recomputation: work that mps does once and shares via
// messages is re-derived by every rank that needs it (Theorem 3.3 bounds the
// chains, so the expected overlap is small). RankLoad::retries therefore
// counts the duplicate-retries *performed by this rank*, including those
// re-derived on behalf of remote nodes.
//
// Determinism: because every rank resolves in the canonical sequential
// order, the output is bitwise-identical to the sequential copy model —
// baseline::copy_model_targets for x = 1 and baseline::copy_model_general
// for x > 1 — for EVERY rank count and partition scheme. This is strictly
// stronger than the mps engine, whose x > 1 multi-rank edge set depends on
// message timing (docs/serving.md §5).
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baseline/pa_config.h"
#include "baseline/pa_draws.h"
#include "core/engine/engine.h"
#include "core/genrt/launch.h"
#include "core/load_stats.h"
#include "core/options.h"
#include "core/parallel_pa.h"
#include "graph/edge_list.h"
#include "mps/engine.h"
#include "obs/session.h"
#include "partition/partition.h"
#include "store/ext_array.h"
#include "util/error.h"
#include "util/types.h"

namespace pagen::core {
namespace {

/// Same duplicate-retry cap as baseline::copy_model_general and XkPolicy.
constexpr std::uint64_t kMaxAttempts = 100000;

/// x = 1 re-derivation: F_t follows the copy chain t -> k -> k' ... until a
/// direct draw (or a memoized node) ends it; every node on the walked path
/// shares the chain's final value, so one walk resolves the whole path.
///
/// The memo is purely an accelerator — a chain walk terminates without it,
/// and every memoized value is the chain's *final* value — so bounding it
/// cannot change the output. memo_budget_bytes > 0 switches the unbounded
/// map for a direct-mapped cache of that many bytes (the state_spill
/// capability for x = 1: bounded RSS at any n, no disk needed; a miss
/// costs one expected-O(1/p) re-walk).
class X1Deriver {
 public:
  X1Deriver(const PaConfig& config, std::uint64_t memo_budget_bytes)
      : draws_(config) {
    if (memo_budget_bytes > 0) {
      // The memo never holds more than n entries, so small graphs get a
      // right-sized table instead of the whole budget up front.
      const auto slots = static_cast<std::size_t>(std::min<std::uint64_t>(
          std::max<std::uint64_t>(memo_budget_bytes / sizeof(Slot), 1),
          config.n));
      cache_.assign(slots, Slot{kNil, kNil});
    } else {
      memo_.emplace(NodeId{1}, NodeId{0});  // bootstrap edge (1, 0)
    }
  }

  [[nodiscard]] NodeId value(NodeId t) {
    path_.clear();
    NodeId val = kNil;
    for (NodeId cur = t;;) {
      if (lookup(cur, val)) break;
      const NodeId k = draws_.pick_k(cur, 0, 0);
      if (draws_.pick_direct(cur, 0, 0)) {
        val = k;
        remember(cur, k);
        break;
      }
      path_.push_back(cur);
      cur = k;  // k in [1, cur-1] and node 1 always hits: the walk terminates
    }
    for (const NodeId u : path_) remember(u, val);
    return val;
  }

 private:
  struct Slot {
    NodeId key;
    NodeId val;
  };

  bool lookup(NodeId u, NodeId& val) {
    if (u == 1) {  // bootstrap edge (1, 0) — never evictable
      val = 0;
      return true;
    }
    if (cache_.empty()) {
      const auto it = memo_.find(u);
      if (it == memo_.end()) return false;
      val = it->second;
      return true;
    }
    const Slot& slot = cache_[slot_index(u)];
    if (slot.key != u) return false;
    val = slot.val;
    return true;
  }

  void remember(NodeId u, NodeId val) {
    if (u == 1) return;
    if (cache_.empty()) {
      memo_.emplace(u, val);
    } else {
      cache_[slot_index(u)] = {u, val};  // direct-mapped: collision evicts
    }
  }

  [[nodiscard]] std::size_t slot_index(NodeId u) const {
    std::uint64_t h = u * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h % cache_.size());
  }

  DrawSchema draws_;
  std::unordered_map<NodeId, NodeId> memo_;
  std::vector<Slot> cache_;
  std::vector<NodeId> path_;
};

/// x > 1 re-derivation: whole rows F_u(0..x-1) in the sequential order of
/// baseline::copy_model_general. A row suspends when its copy path needs a
/// node whose row is not derived yet; dependencies are strictly smaller
/// (pick_k range [x, u-1]), so the explicit stack never cycles.
///
/// With a spill path (the state_spill capability), *completed* rows page
/// out to a store::ExternalArray keyed u * x + e — completed rows are
/// immutable and never contain kNil, so the fill value doubles as the
/// "not derived yet" marker — and only in-progress rows stay in the map.
/// Peak RSS is the spill page-cache budget plus the suspended-row
/// frontier, instead of every row ever derived; the derivation order, and
/// therefore the output, is bitwise-unchanged.
class XkDeriver {
 public:
  XkDeriver(const PaConfig& config, const std::string& spill_path,
            std::uint64_t spill_budget_bytes)
      : draws_(config), x_(config.x) {
    if (!spill_path.empty()) {
      spill_.emplace(spill_path, config.n * x_, kNil, spill_budget_bytes);
    }
  }

  /// The fully resolved row of node t (t >= x). Reference stays valid until
  /// the next node_row call.
  [[nodiscard]] const std::vector<NodeId>& node_row(NodeId t) {
    ensure(t);
    if (!spill_) return rows_.find(t)->second.v;
    row_buf_.resize(x_);
    for (NodeId e = 0; e < x_; ++e) row_buf_[e] = spill_->get(t * x_ + e);
    return row_buf_;
  }

  /// Duplicate-retries performed by this deriver (own + re-derived nodes).
  [[nodiscard]] Count retries() const { return retries_; }

 private:
  struct Row {
    std::vector<NodeId> v;         ///< F_u(e); kNil while unresolved
    NodeId next_e = 0;             ///< first unresolved slot; == x when done
    std::uint64_t attempt = 0;     ///< in-progress attempt for slot next_e
    bool locked_copy = false;      ///< Lines 27-29 latch for slot next_e
  };

  Row& row(NodeId u) {
    const auto [it, inserted] = rows_.try_emplace(u);
    if (inserted) {
      it->second.v.assign(x_, kNil);
      if (u == x_) {  // bootstrap convention: F_x(e) = e (DESIGN.md §5)
        for (NodeId e = 0; e < x_; ++e) it->second.v[e] = e;
        it->second.next_e = x_;
      }
    }
    return it->second;
  }

  /// Resolve u's remaining slots exactly as copy_model_general would.
  /// Returns kNil when the row completes, or the dependency node the copy
  /// path is blocked on. The attempt counter is NOT advanced on suspension,
  /// so resuming re-derives the identical (k, l) pair — draws are pure in
  /// (seed, u, e, attempt).
  NodeId advance(Row& r, NodeId u) {
    while (r.next_e < x_) {
      const NodeId e = r.next_e;
      const auto is_dup = [&](NodeId v) {
        for (NodeId j = 0; j < x_; ++j) {
          if (r.v[j] == v) return true;
        }
        return false;
      };
      for (;;) {
        PAGEN_CHECK_MSG(r.attempt < kMaxAttempts,
                        "duplicate-retry cap exceeded at node " << u);
        const NodeId k = draws_.pick_k(u, e, r.attempt);
        if (!r.locked_copy && draws_.pick_direct(u, e, r.attempt)) {
          if (!is_dup(k)) {
            r.v[e] = k;
            break;
          }
        } else {
          const NodeId l = draws_.pick_l(u, e, r.attempt);
          NodeId v = kNil;
          const auto dep = rows_.find(k);
          if (dep != rows_.end()) {
            if (dep->second.next_e < x_) return k;
            v = dep->second.v[l];
          } else if (spill_ && spill_->get(k * x_) != kNil) {
            v = spill_->get(k * x_ + l);
          } else {
            return k;
          }
          if (!is_dup(v)) {
            r.v[e] = v;
            break;
          }
          r.locked_copy = true;
        }
        ++r.attempt;
        ++retries_;
      }
      ++r.next_e;
      r.attempt = 0;
      r.locked_copy = false;
    }
    return kNil;
  }

  void ensure(NodeId t) {
    // Spill invariant: rows_ holds only in-progress rows; every completed
    // row lives in the spill array (slot 0 != kNil marks it derived).
    if (spill_ && !rows_.contains(t) && spill_->get(t * x_) != kNil) return;
    stack_.clear();
    stack_.push_back(t);
    while (!stack_.empty()) {
      const NodeId u = stack_.back();
      const NodeId dep = advance(row(u), u);
      if (dep == kNil) {
        if (spill_) evict(u);
        stack_.pop_back();
      } else {
        stack_.push_back(dep);
      }
    }
  }

  /// Page the completed row out and drop it from the in-RAM map.
  void evict(NodeId u) {
    const auto it = rows_.find(u);
    for (NodeId e = 0; e < x_; ++e) spill_->set(u * x_ + e, it->second.v[e]);
    rows_.erase(it);
  }

  DrawSchema draws_;
  NodeId x_;
  std::unordered_map<NodeId, Row> rows_;
  std::optional<store::ExternalArray<NodeId>> spill_;
  std::vector<NodeId> row_buf_;
  std::vector<NodeId> stack_;
  Count retries_ = 0;
};

/// One rank's derivation pass: walk the rank's own nodes in partition-local
/// order, re-derive each value locally, and emit through the same sink
/// surface as the genrt driver (edge_sink / edge_batch_sink / local shard).
void derive_rank(const PaConfig& config, const ParallelOptions& options,
                 const partition::Partition& part, mps::Comm& comm,
                 std::vector<graph::EdgeList>& edge_slots,
                 std::vector<std::vector<NodeId>>& value_slots,
                 LoadVector& load_slots) {
  const auto slot = static_cast<std::size_t>(comm.rank());
  obs::RankObserver* ob = comm.obs();
  const auto sp = obs::span(ob, "derive");

  const bool store_edges = options.gather_edges || options.keep_shards;
  RankLoad load;
  graph::EdgeList edges;
  graph::EdgeList batch;
  if (options.edge_batch_sink) batch.reserve(options.edge_batch_capacity);

  const auto emit = [&](NodeId t, NodeId v) {
    const graph::Edge e{t, v};
    if (store_edges) edges.push_back(e);
    if (options.edge_sink) options.edge_sink(comm.rank(), e);
    if (options.edge_batch_sink) {
      batch.push_back(e);
      if (batch.size() >= options.edge_batch_capacity) {
        options.edge_batch_sink(comm.rank(), batch);
        batch.clear();
      }
    }
    ++load.edges;
  };
  const auto check_cancel = [&] {
    if (options.cancel_requested && options.cancel_requested()) {
      throw Cancelled();
    }
  };

  const Count own = part.part_size(comm.rank());
  load.nodes = own;

  if (config.x == 1) {
    X1Deriver derive(config,
                     options.spill_dir.empty() ? 0 : options.spill_budget_bytes);
    std::vector<NodeId> values;
    if (options.gather_edges) values.assign(own, kNil);
    for (Count idx = 0; idx < own; ++idx) {
      if (idx % options.node_batch == 0) check_cancel();
      const NodeId t = part.node_at(comm.rank(), idx);
      if (t == 0) continue;  // the root has no target
      const NodeId v = derive.value(t);
      if (options.gather_edges) values[idx] = v;
      emit(t, v);
    }
    if (options.gather_edges) value_slots[slot] = std::move(values);
  } else {
    const std::string spill_path =
        options.spill_dir.empty()
            ? std::string{}
            : options.spill_dir + "/commfree-rank-" +
                  std::to_string(comm.rank()) + ".spill";
    XkDeriver derive(config, spill_path, options.spill_budget_bytes);
    for (Count idx = 0; idx < own; ++idx) {
      if (idx % options.node_batch == 0) check_cancel();
      const NodeId t = part.node_at(comm.rank(), idx);
      if (t < config.x) {
        // Initial clique: the newer endpoint emits, as in the mps shards.
        for (NodeId i = 0; i < t; ++i) emit(t, i);
        continue;
      }
      const std::vector<NodeId>& row = derive.node_row(t);
      for (NodeId e = 0; e < config.x; ++e) emit(t, row[e]);
    }
    load.retries = derive.retries();
  }

  if (options.edge_batch_sink && !batch.empty()) {
    options.edge_batch_sink(comm.rank(), batch);
  }
  if (ob != nullptr) record_metrics(ob->metrics(), load);
  load_slots[slot] = load;
  if (store_edges) edge_slots[slot] = std::move(edges);
}

class CommFreeEngine final : public Engine {
 public:
  [[nodiscard]] std::string_view name() const override { return "commfree"; }

  [[nodiscard]] std::string_view description() const override {
    return "communication-free pseudorandomization (re-derive remote draws "
           "locally; zero request/resolved traffic)";
  }

  [[nodiscard]] EngineCaps capabilities() const override {
    return {.checkpointing = false,
            .fault_tolerance = false,
            .delivery_hook = false,
            .multi_rank = true,
            .state_spill = true,
            .determinism = Determinism::kBitwise};
  }

  [[nodiscard]] ParallelResult run(
      const PaConfig& config, const ParallelOptions& options) const override {
    PAGEN_CHECK_MSG(config.x >= 1, "x must be >= 1");
    if (config.x == 1) {
      PAGEN_CHECK_MSG(config.n >= 2, "x == 1 needs n >= 2");
    } else {
      PAGEN_CHECK_MSG(config.n > config.x, "need n > x");
      PAGEN_CHECK_MSG(config.p >= 0.0 && config.p < 1.0,
                      "general model needs p in [0, 1)");
    }
    PAGEN_CHECK_MSG(options.ranks >= 1, "ranks must be >= 1");
    PAGEN_CHECK_MSG(static_cast<NodeId>(options.ranks) <= config.n,
                    "more ranks than nodes");
    PAGEN_CHECK_MSG(options.node_batch >= 1, "node_batch must be >= 1");
    PAGEN_CHECK_MSG(!options.edge_batch_sink || options.edge_batch_capacity >= 1,
                    "edge_batch_capacity must be >= 1");

    if (options.cancel_requested && options.cancel_requested()) {
      throw Cancelled();
    }
    if (!options.spill_dir.empty()) {
      std::filesystem::create_directories(options.spill_dir);
    }
    obs::RankObserver* drv = genrt::driver_observer(options);
    const auto part = genrt::make_run_partition(config.n, options, drv);

    const auto nranks = static_cast<std::size_t>(options.ranks);
    std::vector<graph::EdgeList> edge_slots(nranks);
    std::vector<std::vector<NodeId>> value_slots(nranks);
    LoadVector load_slots(nranks);

    mps::RunResult run;
    {
      const auto world_span = obs::span(drv, "run_ranks");
      run = mps::run_ranks(
          options.ranks, mps::WorldOptions{},
          [&](mps::Comm& comm) {
            derive_rank(config, options, *part, comm, edge_slots, value_slots,
                        load_slots);
            // One trailing barrier so wall_seconds covers the slowest
            // rank's derivation; collectives are not logical messages.
            comm.barrier();
          },
          options.obs);
    }

    ParallelResult result;
    result.loads = std::move(load_slots);
    result.comm_stats = run.rank_stats;
    result.wall_seconds = run.wall_seconds;
    for (const RankLoad& l : result.loads) result.total_edges += l.edges;

    if (options.gather_edges) {
      result.edges.reserve(result.total_edges);
      for (auto& es : edge_slots) {
        result.edges.insert(result.edges.end(), es.begin(), es.end());
        if (!options.keep_shards) es.clear();
      }
      if (config.x == 1) {
        // Scatter each rank's value row back to global node order.
        result.targets.assign(config.n, kNil);
        for (Rank r = 0; r < options.ranks; ++r) {
          const auto& values = value_slots[static_cast<std::size_t>(r)];
          for (Count idx = 0; idx < values.size(); ++idx) {
            result.targets[part->node_at(r, idx)] = values[idx];
          }
        }
      }
    }
    if (options.keep_shards) result.shards = std::move(edge_slots);
    return result;
  }
};

}  // namespace

std::unique_ptr<Engine> make_comm_free_engine() {
  return std::make_unique<CommFreeEngine>();
}

}  // namespace pagen::core
