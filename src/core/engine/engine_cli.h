// Shared --engine CLI plumbing: every bench/example that exposes engine
// selection builds its allowed-key list with engine_cli_keys() and applies
// the choice with apply_engine_cli(), so the flag is spelled and validated
// identically everywhere (unknown names fail at generate() with the list of
// registered engines).
#pragma once

#include <string>
#include <vector>

#include "core/engine/engine.h"
#include "core/options.h"
#include "util/cli.h"

namespace pagen::core {

[[nodiscard]] inline std::vector<std::string> engine_cli_keys() {
  return {"engine"};
}

inline void apply_engine_cli(const Cli& cli, ParallelOptions& options) {
  options.engine = cli.get_str("engine", options.engine);
}

/// "mps | commfree | seq-copy | seq-bb" style help text for --engine.
[[nodiscard]] inline std::string engine_cli_help() {
  return EngineRegistry::instance().names();
}

}  // namespace pagen::core
