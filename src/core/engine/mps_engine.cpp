// MpsEngine: the paper's request/resolved message-passing protocol, wrapped
// behind the Engine facade. This file (with the x == 1 delegation inside
// generate_pa_general) is the only sanctioned caller of the raw algorithm
// entry points — pagen-lint's engine-facade rule keeps it that way.
// pagen-lint: engine-facade
#include <memory>
#include <string_view>

#include "core/engine/engine.h"
#include "core/parallel_pa.h"
#include "core/parallel_pa_general.h"

namespace pagen::core {
namespace {

class MpsEngine final : public Engine {
 public:
  [[nodiscard]] std::string_view name() const override { return "mps"; }

  [[nodiscard]] std::string_view description() const override {
    return "request/resolved message-passing protocol (Algorithms 3.1/3.2)";
  }

  [[nodiscard]] EngineCaps capabilities() const override {
    return {.checkpointing = true,
            .fault_tolerance = true,
            .delivery_hook = true,
            .multi_rank = true,
            .determinism = Determinism::kBitwiseX1};
  }

  [[nodiscard]] ParallelResult run(
      const PaConfig& config, const ParallelOptions& options) const override {
    // Algorithm 3.1 for x = 1 (dispatched directly — the general front
    // door's x == 1 delegation is bypassed, not relied on), 3.2 otherwise.
    // Both routes produce identical x = 1 output
    // (tests/generate_dispatch_test.cpp pins this).
    if (config.x == 1) return generate_pa_x1(config, options);
    return generate_pa_general(config, options);
  }
};

}  // namespace

std::unique_ptr<Engine> make_mps_engine() {
  return std::make_unique<MpsEngine>();
}

}  // namespace pagen::core
