// The engine layer: one front door, N interchangeable generator backends.
//
// An Engine is a complete strategy for producing the preferential-attachment
// graph of a (PaConfig, ParallelOptions) pair. core::generate() is a thin
// dispatcher over the EngineRegistry: it looks up ParallelOptions::engine,
// verifies the requested options against the engine's declared capabilities
// (an engine without checkpoint support *rejects* checkpoint_dir instead of
// silently ignoring it), and delegates. Built-in engines:
//
//   mps       the paper's request/resolved message-passing protocol
//             (Algorithms 3.1 / 3.2 via the genrt runtime)
//   commfree  communication-free pseudorandomization (Sanders & Schulz,
//             arXiv:1602.07106): every rank re-derives remote F_k values
//             locally from the counter-based draw chain — zero messages
//   seq-copy  sequential copy-model reference (baseline/copy_model_seq.h)
//   seq-bb    sequential Batagelj-Brandes BA reference (p is ignored)
//
// docs/architecture.md "Engine layer" documents the capability matrix and
// how to add an engine.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/pa_config.h"
#include "core/options.h"
#include "core/parallel_pa.h"

namespace pagen::core {

/// How reproducible an engine's output is across runs of one spec.
enum class Determinism : std::uint8_t {
  /// Bitwise-identical edge *set* for every supported rank count and
  /// partition scheme, for every x (emission order may still differ).
  kBitwise,
  /// Bitwise for x = 1 on any rank count, and for any x at ranks = 1;
  /// x > 1 multi-rank output depends on message timing (docs/serving.md §5).
  kBitwiseX1,
};

[[nodiscard]] const char* to_string(Determinism d);

/// What an engine supports beyond plain generation. generate() enforces
/// these against the requested ParallelOptions before dispatch, so asking an
/// engine for a feature it lacks is a loud CheckError, never a silent no-op.
struct EngineCaps {
  bool checkpointing = false;    ///< honors checkpoint_dir / resume
  bool fault_tolerance = false;  ///< honors fault_plan / reliable transport
  bool delivery_hook = false;    ///< honors the mpsmc schedule-control seam
  bool multi_rank = true;        ///< supports ranks > 1
  /// Honors spill_dir / spill_budget_bytes: per-rank derivation state pages
  /// to disk under a byte budget, bounding peak RSS at any n
  /// (docs/storage.md §5).
  bool state_spill = false;
  Determinism determinism = Determinism::kBitwise;
};

/// One generator backend. Implementations are stateless (all run state is
/// local to run()), so a single registered instance serves concurrent jobs.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Registry key and CLI spelling (--engine=<name>).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// One-line human description for --help and docs.
  [[nodiscard]] virtual std::string_view description() const = 0;

  [[nodiscard]] virtual EngineCaps capabilities() const = 0;

  /// Generate. The caller (core::generate) has already verified the options
  /// against capabilities(); engines re-check their own PaConfig
  /// preconditions so direct run() calls stay safe.
  [[nodiscard]] virtual ParallelResult run(
      const PaConfig& config, const ParallelOptions& options) const = 0;
};

/// Process-wide engine table. The built-in engines are registered by the
/// constructor, so instance() is never empty. add() is not thread-safe —
/// register custom engines during startup, before concurrent generate()
/// calls.
class EngineRegistry {
 public:
  [[nodiscard]] static EngineRegistry& instance();

  /// Register an engine; names must be unique.
  void add(std::unique_ptr<Engine> engine);

  /// The named engine, or null when unknown.
  [[nodiscard]] const Engine* find(std::string_view name) const;

  /// The named engine; throws CheckError listing the registered names when
  /// unknown.
  [[nodiscard]] const Engine& require(std::string_view name) const;

  /// All engines in registration order (built-ins first).
  [[nodiscard]] std::vector<const Engine*> engines() const;

  /// "mps, commfree, seq-copy, seq-bb" — for error messages and --help.
  [[nodiscard]] std::string names() const;

 private:
  EngineRegistry();

  std::vector<std::unique_ptr<Engine>> engines_;
};

/// Reject options the engine's capabilities cannot honor (checkpointing,
/// fault injection, delivery hook, multi-rank). Called by generate() before
/// dispatch; throws CheckError naming the engine and the offending option.
void check_engine_options(const Engine& engine, const ParallelOptions& options);

// Built-in engine factories (one translation unit each).
[[nodiscard]] std::unique_ptr<Engine> make_mps_engine();
[[nodiscard]] std::unique_ptr<Engine> make_comm_free_engine();
[[nodiscard]] std::unique_ptr<Engine> make_seq_copy_engine();
[[nodiscard]] std::unique_ptr<Engine> make_seq_bb_engine();

}  // namespace pagen::core
