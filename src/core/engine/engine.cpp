#include "core/engine/engine.h"

#include <utility>

#include "util/error.h"

namespace pagen::core {

const char* to_string(Determinism d) {
  switch (d) {
    case Determinism::kBitwise:
      return "bitwise";
    case Determinism::kBitwiseX1:
      return "bitwise-x1";
  }
  return "unknown";
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

EngineRegistry::EngineRegistry() {
  add(make_mps_engine());
  add(make_comm_free_engine());
  add(make_seq_copy_engine());
  add(make_seq_bb_engine());
}

void EngineRegistry::add(std::unique_ptr<Engine> engine) {
  PAGEN_CHECK_MSG(engine != nullptr, "cannot register a null engine");
  PAGEN_CHECK_MSG(find(engine->name()) == nullptr,
                  "engine '" << engine->name() << "' is already registered");
  engines_.push_back(std::move(engine));
}

const Engine* EngineRegistry::find(std::string_view name) const {
  for (const auto& engine : engines_) {
    if (engine->name() == name) return engine.get();
  }
  return nullptr;
}

const Engine& EngineRegistry::require(std::string_view name) const {
  const Engine* engine = find(name);
  PAGEN_CHECK_MSG(engine != nullptr, "unknown engine '" << name
                                                        << "' (registered: "
                                                        << names() << ")");
  return *engine;
}

std::vector<const Engine*> EngineRegistry::engines() const {
  std::vector<const Engine*> out;
  out.reserve(engines_.size());
  for (const auto& engine : engines_) out.push_back(engine.get());
  return out;
}

std::string EngineRegistry::names() const {
  std::string out;
  for (const auto& engine : engines_) {
    if (!out.empty()) out += ", ";
    out += engine->name();
  }
  return out;
}

void check_engine_options(const Engine& engine, const ParallelOptions& options) {
  const EngineCaps caps = engine.capabilities();
  PAGEN_CHECK_MSG(caps.multi_rank || options.ranks == 1,
                  "engine '" << engine.name() << "' is single-rank; got ranks = "
                             << options.ranks);
  PAGEN_CHECK_MSG(
      caps.checkpointing || (options.checkpoint_dir.empty() && !options.resume),
      "engine '" << engine.name()
                 << "' does not support checkpointing; drop checkpoint_dir / "
                    "resume or pick an engine with the capability (e.g. mps)");
  PAGEN_CHECK_MSG(
      caps.fault_tolerance || (!options.fault_plan.active() && !options.reliable),
      "engine '" << engine.name()
                 << "' does not support fault injection or reliable transport");
  PAGEN_CHECK_MSG(caps.delivery_hook || options.delivery_hook == nullptr,
                  "engine '" << engine.name()
                             << "' does not support a delivery hook");
  PAGEN_CHECK_MSG(caps.state_spill || options.spill_dir.empty(),
                  "engine '" << engine.name()
                             << "' does not support external-memory state "
                                "spill (spill_dir); use commfree");
}

}  // namespace pagen::core
