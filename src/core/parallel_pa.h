// Algorithm 3.1: distributed-memory preferential attachment, x = 1.
//
// Every rank owns a slice of the nodes (per the chosen partitioning scheme)
// and computes F_t for its own nodes.  A node whose F_t copies F_k asks k's
// owner with a <request> message; unanswerable requests park in per-node
// queues until F_k resolves, then cascade <resolved> messages to all
// waiters.  Requests and responses are aggregated per destination
// (send_buffer.h) and the run terminates through counting detection
// (termination.h).
//
// With the counter-based draw schema the generated tree is bitwise identical
// to baseline::copy_model_x1 for every rank count and partitioning scheme.
#pragma once

#include <vector>

#include "baseline/pa_config.h"
#include "core/load_stats.h"
#include "core/options.h"
#include "graph/edge_list.h"
#include "mps/stats.h"
#include "util/types.h"

namespace pagen::core {

struct ParallelResult {
  /// All edges, gathered across ranks (empty when options.gather_edges is
  /// false). Order is rank-concatenation order; normalize before comparing.
  graph::EdgeList edges;

  /// F_t per node (x = 1 only; kNil for node 0). Empty when gather_edges is
  /// false.
  std::vector<NodeId> targets;

  /// Per-rank local edges (only when options.keep_shards). shards[r] holds
  /// the edges whose newer endpoint is owned by rank r.
  std::vector<graph::EdgeList> shards;

  /// Algorithm-level per-rank load counters (Fig. 7 metrics).
  LoadVector loads;

  /// Runtime-level per-rank envelope/byte counters.
  std::vector<mps::CommStats> comm_stats;

  /// Wall-clock of the whole world (threads are oversubscribed on this
  /// machine; see scaling_model.h for modeled parallel time).
  double wall_seconds = 0.0;

  /// Total edges generated (valid even when not gathered).
  Count total_edges = 0;

  /// Rank incarnations beyond the first (0 unless a crash plan fired and
  /// the run recovered; docs/robustness.md).
  Count respawns = 0;

  /// Slots restored from checkpoints across all ranks (0 on a cold start).
  /// Nonzero proves the run resumed prior progress instead of regenerating
  /// it — the service retry path (ParallelOptions::resume) surfaces this in
  /// the job's flight record.
  Count restored_slots = 0;

  /// Compressed bytes written to ParallelOptions::store_dir (0 when no
  /// store was requested). store_bytes / total_edges is the bytes-per-edge
  /// figure BENCH_massive.json tracks.
  std::uint64_t store_bytes = 0;
};

/// Run Algorithm 3.1. Requires config.x == 1 and config.n >= 2, and
/// options.ranks <= config.n.
[[nodiscard]] ParallelResult generate_pa_x1(const PaConfig& config,
                                            const ParallelOptions& options);

}  // namespace pagen::core
