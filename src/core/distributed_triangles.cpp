#include "core/distributed_triangles.h"

#include <algorithm>
#include <span>
#include <utility>

#include "mps/bsp.h"
#include "mps/engine.h"
#include "util/error.h"

namespace pagen::core {
namespace {

constexpr int kTagIncidence = 40;
constexpr int kTagDegQuery = 41;
constexpr int kTagDegReply = 42;
constexpr int kTagWedge = 43;

struct Incidence {
  NodeId local;
  NodeId remote;
};

struct DegQuery {
  Count flat_index;  ///< position in the asker's flattened adjacency
  NodeId node;       ///< whose degree is wanted
  Rank asker;
};

struct DegReply {
  Count flat_index;
  Count degree;
};

struct WedgeQuery {
  NodeId v;  ///< owned by the receiving rank
  NodeId w;  ///< the candidate third corner
};

}  // namespace

DistributedTriangleResult distributed_triangle_count(
    const std::vector<graph::EdgeList>& shards, NodeId n,
    partition::Scheme scheme) {
  PAGEN_CHECK(!shards.empty());
  return distributed_triangle_count(graph::make_edge_source(n, shards),
                                    scheme);
}

DistributedTriangleResult distributed_triangle_count(
    const graph::EdgeSource& source, partition::Scheme scheme) {
  PAGEN_CHECK(source.num_shards > 0);
  const int ranks = source.num_shards;
  const auto part = partition::make_partition(scheme, source.num_nodes, ranks);

  DistributedTriangleResult result;

  mps::run_ranks(ranks, [&](mps::Comm& comm) {
    const Rank me = comm.rank();
    const Count my_nodes = part->part_size(me);

    // Superstep 1: adjacency of owned nodes (flattened with offsets).
    std::vector<std::vector<NodeId>> adjacency(my_nodes);
    {
      mps::SendBuffer<Incidence> buf(comm, kTagIncidence, 512);
      source.visit_shard(me, [&](std::span<const graph::Edge> batch) {
        for (const graph::Edge& e : batch) {
          for (const auto& [mine, other] :
               {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
            const Rank owner = part->owner(mine);
            if (owner == me) {
              adjacency[part->local_index(mine)].push_back(other);
            } else {
              buf.add(owner, {mine, other});
            }
          }
        }
      });
      mps::bsp_exchange<Incidence>(comm, buf, kTagIncidence,
                                   [&](const Incidence& inc) {
                                     adjacency[part->local_index(inc.local)]
                                         .push_back(inc.remote);
                                   });
    }

    // Flatten adjacency; neighbor degrees land in a parallel array.
    std::vector<Count> offsets(my_nodes + 1, 0);
    for (Count i = 0; i < my_nodes; ++i) {
      offsets[i + 1] = offsets[i] + adjacency[i].size();
    }
    std::vector<NodeId> flat(offsets[my_nodes]);
    std::vector<Count> neighbor_deg(offsets[my_nodes], 0);
    for (Count i = 0; i < my_nodes; ++i) {
      std::copy(adjacency[i].begin(), adjacency[i].end(),
                flat.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
    }

    auto local_degree = [&](NodeId v) {
      return adjacency[part->local_index(v)].size();
    };

    // Supersteps 2+3: fetch the degree of every (remote) neighbor.
    {
      mps::SendBuffer<DegQuery> queries(comm, kTagDegQuery, 512);
      for (Count idx = 0; idx < flat.size(); ++idx) {
        const NodeId w = flat[idx];
        const Rank owner = part->owner(w);
        if (owner == me) {
          neighbor_deg[idx] = local_degree(w);
        } else {
          queries.add(owner, {idx, w, me});
        }
      }
      mps::bsp_query_reply<DegQuery, DegReply>(
          comm, queries, kTagDegQuery, kTagDegReply, 512,
          [&](const DegQuery& q) {
            return std::pair{q.asker,
                             DegReply{q.flat_index, local_degree(q.node)}};
          },
          [&](const DegReply& r) { neighbor_deg[r.flat_index] = r.degree; });
    }

    // Orientation: u -> v iff (deg u, u) < (deg v, v). Build sorted
    // out-neighbor lists of owned nodes.
    auto precedes = [](Count deg_a, NodeId a, Count deg_b, NodeId b) {
      return deg_a != deg_b ? deg_a < deg_b : a < b;
    };
    std::vector<std::vector<std::pair<NodeId, Count>>> out(my_nodes);
    for (Count i = 0; i < my_nodes; ++i) {
      const NodeId u = part->node_at(me, i);
      const Count du = adjacency[i].size();
      for (Count idx = offsets[i]; idx < offsets[i + 1]; ++idx) {
        if (precedes(du, u, neighbor_deg[idx], flat[idx])) {
          out[i].emplace_back(flat[idx], neighbor_deg[idx]);
        }
      }
      std::sort(out[i].begin(), out[i].end());
    }
    auto has_out_edge = [&](NodeId v, NodeId w) {
      const auto& row = out[part->local_index(v)];
      return std::binary_search(
          row.begin(), row.end(), std::pair{w, Count{0}},
          [](const auto& a, const auto& b) { return a.first < b.first; });
    };

    // Superstep 4: wedge queries. For each owned u and each ordered pair
    // (v, w) of its out-neighbors, ask owner(v) whether v -> w exists.
    Count local_triangles = 0;
    Count local_queries = 0;
    {
      mps::SendBuffer<WedgeQuery> buf(comm, kTagWedge, 512);
      for (Count i = 0; i < my_nodes; ++i) {
        const auto& row = out[i];
        for (std::size_t a = 0; a < row.size(); ++a) {
          for (std::size_t b = a + 1; b < row.size(); ++b) {
            // Orient the closing edge from the smaller corner.
            auto [v, dv] = row[a];
            auto [w, dw] = row[b];
            if (!precedes(dv, v, dw, w)) {
              std::swap(v, w);
            }
            ++local_queries;
            const Rank owner = part->owner(v);
            if (owner == me) {
              local_triangles += has_out_edge(v, w);
            } else {
              buf.add(owner, {v, w});
            }
          }
        }
      }
      mps::bsp_exchange<WedgeQuery>(comm, buf, kTagWedge,
                                    [&](const WedgeQuery& q) {
                                      local_triangles += has_out_edge(q.v, q.w);
                                    });
    }

    const Count total_triangles = comm.allreduce_sum(local_triangles);
    const Count total_queries = comm.allreduce_sum(local_queries);
    if (me == 0) {
      result.triangles = total_triangles;
      result.wedge_queries = total_queries;
    }
  });

  return result;
}

}  // namespace pagen::core
