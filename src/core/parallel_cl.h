// Distributed Chung–Lu generation.
//
// Completes the distributed generator suite (exact PA, approximate PA, ER):
// the Chung–Lu model's rows are independent given the weight vector, so the
// Miller–Hagberg skipping enumeration parallelizes without messages. Rows
// are dealt round-robin — with weights sorted descending, row cost is
// monotone decreasing, so round-robin balances the same way RRP balances
// the PA algorithm (Appendix A.3's argument transplanted).
//
// Randomness is a per-row counter-derived stream, so the emitted edge set
// is independent of the rank count — tested bitwise.
#pragma once

#include <vector>

#include "baseline/chung_lu.h"
#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::core {

struct ParallelClResult {
  graph::EdgeList edges;                ///< gathered (empty if !gather)
  std::vector<graph::EdgeList> shards;  ///< per-rank edges
  Count total_edges = 0;
  double wall_seconds = 0.0;
};

/// Generate a Chung–Lu graph over `ranks` ranks. `config.weights` must be
/// sorted in non-increasing order (power_law_weights produces this form);
/// the skipping bound requires it per row. The weight vector is replicated
/// on every rank (it is model input, like the paper's clique).
[[nodiscard]] ParallelClResult generate_cl(const baseline::ClConfig& config,
                                           int ranks, bool gather = true);

}  // namespace pagen::core
