#include "core/checkpoint.h"

#include <filesystem>

#include "graph/varint_io.h"
#include "util/error.h"

namespace pagen::core {
namespace {

/// "pagnckp2": format magic + version in one varint-framed constant. v2
/// appends an FNV-1a content checksum trailer (v1 files fail the magic
/// check and are treated as corrupt — regenerate, never restore garbage).
constexpr std::uint64_t kMagic = 0x7061676e636b7032ULL;

/// Bytes of the fixed-width FNV-1a trailer.
constexpr std::size_t kChecksumBytes = 8;

/// F entries are biased by one on disk so kNil (all-ones) stays a one-byte
/// varint instead of ten.
constexpr std::uint64_t encode_f(NodeId v) { return v == kNil ? 0 : v + 1; }
constexpr NodeId decode_f(std::uint64_t raw) {
  return raw == 0 ? kNil : static_cast<NodeId>(raw - 1);
}

/// FNV-1a over the payload bytes (same constants as svc::job's spec hash).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void append_u64_le(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t read_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// A declared element count can never exceed the bytes left in the payload
/// (every varint element is at least one byte) — rejects the huge-alloc /
/// silent-garbage parses a corrupted count would otherwise cause.
std::size_t checked_count(const std::vector<std::uint8_t>& body,
                          std::size_t pos, std::uint64_t count, Rank rank) {
  PAGEN_CHECK_MSG(count <= body.size() - pos,
                  "checkpoint for rank " << rank << " declares " << count
                                         << " elements with only "
                                         << (body.size() - pos)
                                         << " payload bytes left");
  return static_cast<std::size_t>(count);
}

}  // namespace

std::string checkpoint_path(const std::string& dir, Rank rank) {
  return dir + "/pagen-ckpt-" + std::to_string(rank);
}

void save_checkpoint(const std::string& dir, const RankCheckpoint& ck) {
  // Racing create_directories from several rank threads is fine: it only
  // fails on a real error, not on "already exists".
  std::filesystem::create_directories(dir);
  std::vector<std::uint8_t> buf;
  buf.reserve(24 + ck.f.size() * 2);
  graph::put_varint(buf, kMagic);
  graph::put_varint(buf, ck.n);
  graph::put_varint(buf, ck.x);
  graph::put_varint(buf, ck.seed);
  graph::put_varint(buf, static_cast<std::uint64_t>(ck.rank));
  graph::put_varint(buf, static_cast<std::uint64_t>(ck.nranks));
  graph::put_varint(buf, ck.f.size());
  for (const NodeId v : ck.f) graph::put_varint(buf, encode_f(v));
  graph::put_varint(buf, ck.attempts.size());
  for (const std::uint32_t a : ck.attempts) graph::put_varint(buf, a);
  graph::put_varint(buf, ck.locked_copy.size());
  for (const std::uint8_t l : ck.locked_copy) graph::put_varint(buf, l);
  append_u64_le(buf, fnv1a(buf.data(), buf.size()));
  graph::save_bytes_atomic(checkpoint_path(dir, ck.rank), buf);
}

bool load_checkpoint(const std::string& dir, Rank rank, RankCheckpoint& out) {
  std::vector<std::uint8_t> buf;
  if (!graph::try_load_bytes(checkpoint_path(dir, rank), buf)) return false;
  // Verify the content checksum before parsing a single field: a truncated,
  // extended, or bit-flipped file fails here, never restores garbage.
  PAGEN_CHECK_MSG(buf.size() > kChecksumBytes,
                  "checkpoint for rank " << rank << " is too short");
  const std::size_t payload = buf.size() - kChecksumBytes;
  PAGEN_CHECK_MSG(fnv1a(buf.data(), payload) == read_u64_le(buf.data() + payload),
                  "checkpoint checksum mismatch for rank " << rank);
  const std::vector<std::uint8_t> body(buf.begin(),
                                       buf.begin() + static_cast<std::ptrdiff_t>(payload));
  std::size_t pos = 0;
  PAGEN_CHECK_MSG(graph::get_varint(body, pos) == kMagic,
                  "bad checkpoint magic for rank " << rank);
  out.n = graph::get_varint(body, pos);
  out.x = graph::get_varint(body, pos);
  out.seed = graph::get_varint(body, pos);
  out.rank = static_cast<std::int32_t>(graph::get_varint(body, pos));
  out.nranks = static_cast<std::int32_t>(graph::get_varint(body, pos));
  PAGEN_CHECK_MSG(out.rank == rank, "checkpoint rank mismatch");
  out.f.resize(checked_count(body, pos, graph::get_varint(body, pos), rank));
  for (NodeId& v : out.f) v = decode_f(graph::get_varint(body, pos));
  out.attempts.resize(
      checked_count(body, pos, graph::get_varint(body, pos), rank));
  for (std::uint32_t& a : out.attempts) {
    a = static_cast<std::uint32_t>(graph::get_varint(body, pos));
  }
  out.locked_copy.resize(
      checked_count(body, pos, graph::get_varint(body, pos), rank));
  for (std::uint8_t& l : out.locked_copy) {
    l = static_cast<std::uint8_t>(graph::get_varint(body, pos));
  }
  PAGEN_CHECK_MSG(pos == body.size(),
                  "trailing bytes in checkpoint for rank " << rank);
  return true;
}

}  // namespace pagen::core
