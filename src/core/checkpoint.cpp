#include "core/checkpoint.h"

#include <filesystem>

#include "graph/varint_io.h"
#include "util/error.h"

namespace pagen::core {
namespace {

/// "pagnckp1": format magic + version in one varint-framed constant.
constexpr std::uint64_t kMagic = 0x7061676e636b7031ULL;

/// F entries are biased by one on disk so kNil (all-ones) stays a one-byte
/// varint instead of ten.
constexpr std::uint64_t encode_f(NodeId v) { return v == kNil ? 0 : v + 1; }
constexpr NodeId decode_f(std::uint64_t raw) {
  return raw == 0 ? kNil : static_cast<NodeId>(raw - 1);
}

}  // namespace

std::string checkpoint_path(const std::string& dir, Rank rank) {
  return dir + "/pagen-ckpt-" + std::to_string(rank);
}

void save_checkpoint(const std::string& dir, const RankCheckpoint& ck) {
  // Racing create_directories from several rank threads is fine: it only
  // fails on a real error, not on "already exists".
  std::filesystem::create_directories(dir);
  std::vector<std::uint8_t> buf;
  buf.reserve(16 + ck.f.size() * 2);
  graph::put_varint(buf, kMagic);
  graph::put_varint(buf, ck.n);
  graph::put_varint(buf, ck.x);
  graph::put_varint(buf, ck.seed);
  graph::put_varint(buf, static_cast<std::uint64_t>(ck.rank));
  graph::put_varint(buf, static_cast<std::uint64_t>(ck.nranks));
  graph::put_varint(buf, ck.f.size());
  for (const NodeId v : ck.f) graph::put_varint(buf, encode_f(v));
  graph::put_varint(buf, ck.attempts.size());
  for (const std::uint32_t a : ck.attempts) graph::put_varint(buf, a);
  graph::put_varint(buf, ck.locked_copy.size());
  for (const std::uint8_t l : ck.locked_copy) graph::put_varint(buf, l);
  graph::save_bytes_atomic(checkpoint_path(dir, ck.rank), buf);
}

bool load_checkpoint(const std::string& dir, Rank rank, RankCheckpoint& out) {
  std::vector<std::uint8_t> buf;
  if (!graph::try_load_bytes(checkpoint_path(dir, rank), buf)) return false;
  std::size_t pos = 0;
  PAGEN_CHECK_MSG(graph::get_varint(buf, pos) == kMagic,
                  "bad checkpoint magic for rank " << rank);
  out.n = graph::get_varint(buf, pos);
  out.x = graph::get_varint(buf, pos);
  out.seed = graph::get_varint(buf, pos);
  out.rank = static_cast<std::int32_t>(graph::get_varint(buf, pos));
  out.nranks = static_cast<std::int32_t>(graph::get_varint(buf, pos));
  PAGEN_CHECK_MSG(out.rank == rank, "checkpoint rank mismatch");
  out.f.resize(graph::get_varint(buf, pos));
  for (NodeId& v : out.f) v = decode_f(graph::get_varint(buf, pos));
  out.attempts.resize(graph::get_varint(buf, pos));
  for (std::uint32_t& a : out.attempts) {
    a = static_cast<std::uint32_t>(graph::get_varint(buf, pos));
  }
  out.locked_copy.resize(graph::get_varint(buf, pos));
  for (std::uint8_t& l : out.locked_copy) {
    l = static_cast<std::uint8_t>(graph::get_varint(buf, pos));
  }
  PAGEN_CHECK_MSG(pos == buf.size(),
                  "trailing bytes in checkpoint for rank " << rank);
  return true;
}

}  // namespace pagen::core
