// Distributed triangle counting over per-rank edge shards.
//
// The fourth analytics kernel (after degree, components, BFS). Algorithm:
// each rank materializes the adjacency of its own nodes (setup superstep),
// then for every local wedge (u; v, w) with deg-ordered orientation sends
// an existence query "(v, w)?" to v's owner; a second superstep returns
// confirmations. Orientation by (degree, id) ensures each triangle is
// counted exactly once and bounds the wedge count by O(m^{3/2}) on
// arbitrary graphs (the standard forward-counting argument).
#pragma once

#include <vector>

#include "graph/edge_list.h"
#include "graph/edge_source.h"
#include "partition/partition.h"
#include "util/types.h"

namespace pagen::core {

struct DistributedTriangleResult {
  Count triangles = 0;
  Count wedge_queries = 0;  ///< existence queries issued (message volume)
};

/// Count triangles in the union of `shards` over nodes [0, n). Shard
/// placement may be arbitrary (each edge once, any rank).
[[nodiscard]] DistributedTriangleResult distributed_triangle_count(
    const std::vector<graph::EdgeList>& shards, NodeId n,
    partition::Scheme scheme);

/// Streaming variant over any EdgeSource (in-memory or compressed store).
[[nodiscard]] DistributedTriangleResult distributed_triangle_count(
    const graph::EdgeSource& source, partition::Scheme scheme);

}  // namespace pagen::core
