// Configuration of the observability subsystem (tracing + metrics).
//
// The default-constructed Config is disabled: instrumented code paths see a
// null RankObserver* and pay one predictable branch, nothing else — the
// generators' hot paths are unchanged from the uninstrumented build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pagen {
class Cli;
}

namespace pagen::obs {

struct Config {
  /// Master switch. Off = no observers are created, hooks are no-ops.
  bool enabled = false;

  /// Chrome trace-event JSON output path ("" = don't write a trace).
  std::string trace_out;

  /// Structured metrics JSON output path ("" = don't write metrics).
  std::string metrics_out;

  /// Prometheus text-format output path ("" = don't write). Exports the
  /// cross-rank merged totals of the same registries metrics_out carries.
  std::string prom_out;

  /// Causal dependency-chain tracing: stamp every outgoing request/resolved
  /// item with (root slot, origin rank, hop depth), emit Perfetto flow
  /// events linking request -> resolve across rank tracks, and record the
  /// per-slot chain lengths that validate Theorem 3.3. Off by default: the
  /// stamps cost one small vector per envelope while enabled and exactly
  /// nothing while disabled.
  bool causal = false;

  /// 1-in-N sampling for high-frequency trace events (per-envelope sends,
  /// mailbox-depth counters). Spans, flow events, and metrics are never
  /// sampled.
  std::uint64_t trace_sample = 1;

  /// Trace events retained per rank; the ring buffer keeps the newest
  /// events and counts how many older ones it dropped.
  std::size_t ring_capacity = 1 << 16;
};

/// CLI keys consumed by config_from_cli; append to a binary's allowed-key
/// list: --trace-out=FILE --metrics-out=FILE --prom-out=FILE
/// --trace-sample=N --causal=0|1 --ring-cap=N.
[[nodiscard]] std::vector<std::string> cli_keys();

/// Build a Config from the standard flags. Enabled iff at least one of
/// --trace-out / --metrics-out / --prom-out was given.
[[nodiscard]] Config config_from_cli(const Cli& cli);

}  // namespace pagen::obs
