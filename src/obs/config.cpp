#include "obs/config.h"

#include "util/cli.h"
#include "util/error.h"

namespace pagen::obs {

std::vector<std::string> cli_keys() {
  return {"trace-out", "metrics-out", "prom-out",
          "trace-sample", "causal",   "ring-cap"};
}

Config config_from_cli(const Cli& cli) {
  Config cfg;
  cfg.trace_out = cli.get_str("trace-out", "");
  cfg.metrics_out = cli.get_str("metrics-out", "");
  cfg.prom_out = cli.get_str("prom-out", "");
  cfg.trace_sample = cli.get_u64("trace-sample", 1);
  cfg.causal = cli.get_bool("causal", false);
  cfg.ring_capacity = static_cast<std::size_t>(
      cli.get_u64("ring-cap", Config{}.ring_capacity));
  PAGEN_CHECK_MSG(cfg.trace_sample >= 1, "--trace-sample must be >= 1");
  PAGEN_CHECK_MSG(cfg.ring_capacity >= 1, "--ring-cap must be >= 1");
  cfg.enabled = !cfg.trace_out.empty() || !cfg.metrics_out.empty() ||
                !cfg.prom_out.empty();
  return cfg;
}

}  // namespace pagen::obs
