#include "obs/session.h"

#include <fstream>

#include "obs/prom.h"
#include "util/error.h"

namespace pagen::obs {

namespace {

/// Fail on an unwritable output path up front, not after the run it was
/// supposed to capture has already burned its wall time.
void check_writable(const std::string& path, const char* what) {
  if (path.empty()) return;
  std::ofstream os(path);
  PAGEN_CHECK_MSG(os.good(), "cannot open " << what << " output " << path);
}

}  // namespace

Session::Session(int nranks, Config cfg) : cfg_(std::move(cfg)) {
  PAGEN_CHECK_MSG(nranks >= 1, "session needs at least one rank");
  check_writable(cfg_.trace_out, "trace");
  check_writable(cfg_.metrics_out, "metrics");
  check_writable(cfg_.prom_out, "prometheus");
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<RankObserver>(r, cfg_));
  }
  driver_ = std::make_unique<RankObserver>(nranks, cfg_, "driver");
}

RankObserver& Session::rank(int r) {
  PAGEN_CHECK(r >= 0 && r < nranks());
  return *ranks_[static_cast<std::size_t>(r)];
}

const RankObserver& Session::rank(int r) const {
  PAGEN_CHECK(r >= 0 && r < nranks());
  return *ranks_[static_cast<std::size_t>(r)];
}

void Session::write_trace(std::ostream& os) const {
  std::vector<const Tracer*> tracers;
  tracers.reserve(ranks_.size() + 1);
  for (const auto& ob : ranks_) tracers.push_back(&ob->trace());
  tracers.push_back(&driver_->trace());
  write_chrome_trace(os, tracers);
}

void Session::write_metrics(std::ostream& os) const {
  std::vector<const MetricsRegistry*> regs;
  regs.reserve(ranks_.size() + 1);
  for (const auto& ob : ranks_) regs.push_back(&ob->metrics());
  regs.push_back(&driver_->metrics());
  write_metrics_json(os, regs);
}

void Session::write_prometheus(std::ostream& os) const {
  MetricsRegistry totals;
  for (const auto& ob : ranks_) totals.merge(ob->metrics());
  totals.merge(driver_->metrics());
  obs::write_prometheus(os, totals);
}

std::vector<std::string> Session::export_files() const {
  std::vector<std::string> written;
  if (!cfg_.trace_out.empty()) {
    std::ofstream os(cfg_.trace_out);
    PAGEN_CHECK_MSG(os.good(), "cannot open trace output " << cfg_.trace_out);
    write_trace(os);
    PAGEN_CHECK_MSG(os.good(), "failed writing trace to " << cfg_.trace_out);
    written.push_back(cfg_.trace_out);
  }
  if (!cfg_.metrics_out.empty()) {
    std::ofstream os(cfg_.metrics_out);
    PAGEN_CHECK_MSG(os.good(),
                    "cannot open metrics output " << cfg_.metrics_out);
    write_metrics(os);
    PAGEN_CHECK_MSG(os.good(),
                    "failed writing metrics to " << cfg_.metrics_out);
    written.push_back(cfg_.metrics_out);
  }
  if (!cfg_.prom_out.empty()) {
    std::ofstream os(cfg_.prom_out);
    PAGEN_CHECK_MSG(os.good(),
                    "cannot open prometheus output " << cfg_.prom_out);
    write_prometheus(os);
    PAGEN_CHECK_MSG(os.good(),
                    "failed writing prometheus to " << cfg_.prom_out);
    written.push_back(cfg_.prom_out);
  }
  return written;
}

}  // namespace pagen::obs
