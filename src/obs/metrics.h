// Named counters / gauges / histograms with structured JSON export.
//
// One MetricsRegistry per rank, written only by that rank's thread. Lookup
// by name is a map walk — call sites on hot paths fetch the Counter& /
// Histogram& handle once and bump it directly. Export iterates the
// registries in rank order and each registry in sorted-name order, so two
// identical runs produce byte-identical JSON (the property the tests and
// the diffable bench artifacts rely on).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/types.h"

namespace pagen::obs {

/// Monotonically increasing tally. Merge across ranks = sum.
class Counter {
 public:
  void add(Count n = 1) { value_ += n; }
  [[nodiscard]] Count value() const { return value_; }

  Counter& operator+=(const Counter& o) {
    value_ += o.value_;
    return *this;
  }

 private:
  Count value_ = 0;
};

/// Point-in-time samples of a level (queue depth, buffer fill). Keeps
/// last/min/max and the sample count. Merge across ranks: min of mins, max
/// of maxes, samples summed, `last` taken from the last registry merged
/// (meaningful per rank, indicative only in totals).
class Gauge {
 public:
  void set(std::int64_t v);

  [[nodiscard]] Count samples() const { return samples_; }
  [[nodiscard]] std::int64_t last() const { return last_; }
  [[nodiscard]] std::int64_t min() const { return min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }

  Gauge& operator+=(const Gauge& o);

 private:
  Count samples_ = 0;
  std::int64_t last_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Power-of-two bucketed histogram of nonnegative values: bucket i holds
/// values whose bit width is i, i.e. upper bounds 0, 1, 3, 7, ..., 2^i - 1.
/// Exact count/sum/min/max ride along. Merge across ranks = bucket sums.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit widths 0..64

  void observe(std::uint64_t v);

  [[nodiscard]] Count count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  struct Bucket {
    std::uint64_t upper = 0;  ///< inclusive upper bound (2^i - 1)
    Count count = 0;
  };

  /// Non-empty buckets in increasing-bound order.
  [[nodiscard]] std::vector<Bucket> buckets() const;

  /// Quantile estimate for q in [0, 1]: nearest-rank bucket selection with
  /// linear interpolation inside the bucket's value range, clamped to the
  /// exact [min, max]. Deterministic (pure function of the bucket counts),
  /// so exports carrying percentiles stay byte-identical across runs. With
  /// power-of-two buckets the estimate is exact when the target bucket
  /// holds one distinct value (widths 0 and 1) and within the bucket span
  /// otherwise. Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double q) const;
  [[nodiscard]] std::uint64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p95() const { return percentile(0.95); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(0.99); }

  Histogram& operator+=(const Histogram& o);

 private:
  Count count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<Count, kBuckets> counts_{};
};

/// Name → instrument map of one rank. Names are dot-separated lowercase
/// ("mps.envelopes_sent", "pa.chain_latency_ns"); export order is the
/// map's sorted-name order.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Fold another registry in (the cross-rank reduction): counters and
  /// histograms sum, gauges merge per Gauge::operator+=.
  void merge(const MetricsRegistry& o);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Write the per-rank registries plus their cross-rank merge as one JSON
/// object: {"schema":"pagen.metrics.v1","ranks":[{"rank":0,...},...],
/// "totals":{...}}. Deterministic: rank order, then sorted names.
void write_metrics_json(std::ostream& os,
                        const std::vector<const MetricsRegistry*>& ranks);

}  // namespace pagen::obs
