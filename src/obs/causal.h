// Offline causal-chain reconstruction from merged per-rank traces.
//
// With causal tracing on (Config::causal), the genrt driver records three
// families of events:
//
//  * flow events ("chain"): kFlowStart on the requester when a request
//    leaves, kFlowStep on the owner when it arrives, kFlowEnd on the
//    requester when the resolution is accepted — all carrying the same
//    correlation id (the global slot id of the requesting slot), which the
//    Chrome/Perfetto export turns into "s"/"t"/"f" flow arrows across rank
//    tracks;
//  * chain events ("chain_len"): one per resolved slot, carrying the slot's
//    dependency-chain length |D_t| (Theorem 3.3);
//  * the phase spans PR 1 already emits ("generate"/"drain"/"termination").
//
// This module reconstructs the run from those events alone: the
// chain-length distribution (which on a deterministic x=1 run must exactly
// match bench/thm33_dependency_chains), a per-hop latency breakdown
// (request wire time s->t, owner resolve time t->f), and the critical path
// — the single slowest request->resolve flow — attributed to the rank and
// phase it stalled in. write_chain_report renders the whole analysis as a
// deterministic JSON document ("pagen.chains.v1").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/types.h"

namespace pagen::obs {

class Session;
class Tracer;

/// Result of reconstructing one run's causal record.
struct ChainReport {
  // --- Dependency chains (Theorem 3.3) ---
  Count chain_records = 0;          ///< resolved slots with a chain event
  std::uint64_t max_chain_length = 0;
  Histogram chain_length;           ///< |D_t| distribution across all ranks

  // --- Cross-rank flows (request -> resolve) ---
  Count flows = 0;          ///< completed start/end pairs
  Count orphan_starts = 0;  ///< kFlowStart without a kFlowEnd (ring drop /
                            ///< abandoned retry round)
  Count orphan_ends = 0;    ///< kFlowEnd whose start was overwritten
  Histogram request_hop_ns;  ///< s -> t: request wire + queue time
  Histogram resolve_hop_ns;  ///< t -> f: owner resolve + response time
  Histogram flow_ns;         ///< s -> f: full request round trip

  /// The slowest completed flow of the run.
  struct Critical {
    std::uint64_t id = 0;        ///< global slot id of the request
    int requester = -1;          ///< rank that issued it (s/f track)
    int owner = -1;              ///< rank that resolved it (t track), -1 if
                                 ///< the step event was dropped
    std::int64_t start_ns = 0;   ///< kFlowStart timestamp
    std::int64_t dur_ns = 0;     ///< s -> f
    std::string phase = "none";  ///< enclosing phase span on the requester
  } critical;
};

/// Reconstruct chains from raw tracers (index order = track order). Null
/// entries are skipped. Must run post-join, like any trace export.
[[nodiscard]] ChainReport reconstruct_chains(
    const std::vector<const Tracer*>& tracers);

/// Convenience overload over a session's rank tracks (driver included —
/// it carries no causal events but costs nothing to scan).
[[nodiscard]] ChainReport reconstruct_chains(const Session& session);

/// Deterministic chain-analytics JSON ({"schema": "pagen.chains.v1", ...}).
void write_chain_report(std::ostream& os, const ChainReport& report);

}  // namespace pagen::obs
