#include "obs/metrics.h"

#include <bit>
#include <ostream>

namespace pagen::obs {
namespace {

/// Registry names are programmer-chosen literals; escape defensively.
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

void write_registry(std::ostream& os, const MetricsRegistry& reg,
                    const char* indent) {
  os << "{\n" << indent << R"(  "counters": {)";
  bool first = true;
  for (const auto& [name, c] : reg.counters()) {
    os << (first ? "" : ",") << "\n" << indent << R"(    ")";
    write_escaped(os, name);
    os << R"(": )" << c.value();
    first = false;
  }
  os << (first ? "" : "\n") << (first ? "" : indent) << (first ? "" : "  ")
     << "},\n";

  os << indent << R"(  "gauges": {)";
  first = true;
  for (const auto& [name, g] : reg.gauges()) {
    os << (first ? "" : ",") << "\n" << indent << R"(    ")";
    write_escaped(os, name);
    os << R"(": {"last": )" << g.last() << R"(, "min": )" << g.min()
       << R"(, "max": )" << g.max() << R"(, "samples": )" << g.samples()
       << '}';
    first = false;
  }
  os << (first ? "" : "\n") << (first ? "" : indent) << (first ? "" : "  ")
     << "},\n";

  os << indent << R"(  "histograms": {)";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    os << (first ? "" : ",") << "\n" << indent << R"(    ")";
    write_escaped(os, name);
    os << R"(": {"count": )" << h.count() << R"(, "sum": )" << h.sum()
       << R"(, "min": )" << h.min() << R"(, "max": )" << h.max()
       << R"(, "p50": )" << h.p50() << R"(, "p95": )" << h.p95()
       << R"(, "p99": )" << h.p99() << R"(, "buckets": [)";
    bool bfirst = true;
    for (const Histogram::Bucket& b : h.buckets()) {
      os << (bfirst ? "" : ", ") << R"({"le": )" << b.upper << R"(, "count": )"
         << b.count << '}';
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n") << (first ? "" : indent) << (first ? "" : "  ")
     << "}\n";
  os << indent << '}';
}

}  // namespace

void Gauge::set(std::int64_t v) {
  last_ = v;
  if (samples_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++samples_;
}

Gauge& Gauge::operator+=(const Gauge& o) {
  if (o.samples_ == 0) return *this;
  if (samples_ == 0) {
    *this = o;
    return *this;
  }
  last_ = o.last_;
  if (o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
  samples_ += o.samples_;
  return *this;
}

void Histogram::observe(std::uint64_t v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  counts_[static_cast<std::size_t>(std::bit_width(v))] += 1;
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    // Bit width i covers [2^{i-1}, 2^i - 1]; upper bound 2^i - 1. Width 0
    // is the value 0 alone; width 64 caps at the maximal uint64.
    const std::uint64_t upper =
        i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
    out.push_back({upper, counts_[i]});
  }
  return out;
}

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank target: the smallest rank r (1-based) with r >= q * count.
  Count target = static_cast<Count>(q * static_cast<double>(count_) + 0.5);
  if (target < 1) target = 1;
  if (target > count_) target = count_;
  Count before = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    if (before + counts_[i] < target) {
      before += counts_[i];
      continue;
    }
    // Bit width i spans [lower, upper]; interpolate by rank position.
    const std::uint64_t lower = i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    const std::uint64_t upper =
        i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
    const double frac = static_cast<double>(target - before) /
                        static_cast<double>(counts_[i]);
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(lower) +
        frac * static_cast<double>(upper - lower) + 0.5);
    if (v < min_) v = min_;
    if (v > max_) v = max_;
    return v;
  }
  return max_;
}

Histogram& Histogram::operator+=(const Histogram& o) {
  if (o.count_ == 0) return *this;
  if (count_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }
  count_ += o.count_;
  sum_ += o.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
  return *this;
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name] += c;
  for (const auto& [name, g] : o.gauges_) gauges_[name] += g;
  for (const auto& [name, h] : o.histograms_) histograms_[name] += h;
}

void write_metrics_json(std::ostream& os,
                        const std::vector<const MetricsRegistry*>& ranks) {
  MetricsRegistry totals;
  os << "{\n" << R"(  "schema": "pagen.metrics.v1",)" << "\n"
     << R"(  "ranks": [)";
  bool first = true;
  int rank = 0;
  for (const MetricsRegistry* reg : ranks) {
    if (reg == nullptr) {
      ++rank;
      continue;
    }
    totals.merge(*reg);
    os << (first ? "" : ",") << "\n    " << R"({"rank": )" << rank
       << R"(, "metrics": )";
    write_registry(os, *reg, "    ");
    os << '}';
    first = false;
    ++rank;
  }
  os << (first ? "" : "\n  ") << "],\n" << R"(  "totals": )";
  write_registry(os, totals, "  ");
  os << "\n}\n";
}

}  // namespace pagen::obs
