// Session: the per-run container of observability state.
//
// A Session owns one RankObserver per rank plus one for the driver thread
// (partition construction, world setup). Instrumented code receives a
// RankObserver* that is null when observation is off — the entire subsystem
// costs one branch per hook on the disabled path. Each observer is
// single-writer (its rank's thread), so recording needs no locks; the
// Session is read for export only after the world has joined.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pagen::obs {

/// One rank's observation endpoint: an event tracer and a metrics registry.
class RankObserver {
 public:
  RankObserver(int rank, const Config& cfg, const char* label = nullptr)
      : rank_(rank),
        causal_(cfg.causal),
        trace_(rank, cfg.ring_capacity, cfg.trace_sample, label),
        metrics_() {}

  [[nodiscard]] int rank() const { return rank_; }
  /// Causal chain tracing requested (Config::causal). The genrt driver
  /// checks this once at construction and stamps envelopes only when set.
  [[nodiscard]] bool causal() const { return causal_; }
  [[nodiscard]] Tracer& trace() { return trace_; }
  [[nodiscard]] const Tracer& trace() const { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

 private:
  int rank_;
  bool causal_;
  Tracer trace_;
  MetricsRegistry metrics_;
};

/// Null-safe RAII span over an optional observer.
[[nodiscard]] inline Tracer::Span span(RankObserver* ob, const char* name) {
  return Tracer::Span{ob != nullptr ? &ob->trace() : nullptr, name};
}

class Session {
 public:
  /// Observers for ranks 0..nranks-1 plus a driver observer exported as an
  /// extra trace track named "driver" (tid nranks).
  Session(int nranks, Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] int nranks() const { return static_cast<int>(ranks_.size()); }

  [[nodiscard]] RankObserver& rank(int r);
  [[nodiscard]] const RankObserver& rank(int r) const;
  [[nodiscard]] RankObserver& driver() { return *driver_; }
  [[nodiscard]] const RankObserver& driver() const { return *driver_; }

  /// Chrome trace-event JSON of every track (ranks + driver).
  void write_trace(std::ostream& os) const;

  /// Metrics JSON of the rank registries (driver metrics are merged into
  /// the driver's own entry at tid nranks).
  void write_metrics(std::ostream& os) const;

  /// Prometheus text format of the cross-rank merged totals (obs/prom.h).
  void write_prometheus(std::ostream& os) const;

  /// Write config().trace_out / metrics_out / prom_out when set; returns
  /// the paths actually written. Call after the instrumented run has
  /// joined.
  std::vector<std::string> export_files() const;

 private:
  Config cfg_;
  std::vector<std::unique_ptr<RankObserver>> ranks_;
  std::unique_ptr<RankObserver> driver_;
};

}  // namespace pagen::obs
