// Per-rank event tracer with Chrome trace-event JSON export.
//
// One Tracer per rank, written only by that rank's thread — no locks on the
// record path. Events land in a fixed-capacity ring buffer (newest win;
// dropped events are counted), timestamped from the process-wide monotonic
// epoch (util/timer.h::now_ns), so trace times line up with bench Timer
// readings. Export produces a trace-event array that chrome://tracing and
// https://ui.perfetto.dev open directly, with one track ("thread") per rank.
//
// ## Concurrency audit (kept in sync with the TSan suite)
//
// The record path is lock-free by *single-writer discipline*, not by
// atomics: ring_, head_, stack_, and tick_ are owned by the recording
// thread. Cross-thread visibility of those fields comes solely from
// thread::join — export (events(), size(), write_chrome_trace) must run
// after the recording thread has joined, never concurrently with it.
//
// The one exception is total_: live monitors (progress displays, the race
// stress test) legitimately read total_recorded()/dropped() *while* the
// owner is still recording, so total_ is a std::atomic<Count>.
//   * increment: fetch_add(1, memory_order_relaxed) — the counter orders
//     nothing; no other memory must become visible with it.
//   * read: load(memory_order_relaxed) — monitors want a recent value, not
//     a synchronized snapshot; exact reads post-join are guaranteed by the
//     join's happens-before edge, not by this load's ordering.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/types.h"

namespace pagen::obs {

enum class EventKind : std::uint8_t {
  kSpan,       ///< begin/end pair, recorded at end ("X" complete event)
  kInstant,    ///< point event ("i")
  kCounter,    ///< sampled value over time ("C")
  kFlowStart,  ///< causal flow origin ("s"), id binds across tracks
  kFlowStep,   ///< causal flow step ("t") on an intermediate track
  kFlowEnd,    ///< causal flow terminus ("f")
  kChain,      ///< resolved dependency chain: id = slot, value = length
};

struct TraceEvent {
  const char* name = "";      ///< must outlive the tracer (string literals)
  std::int64_t start_ns = 0;  ///< epoch-relative (now_ns)
  std::int64_t dur_ns = 0;    ///< spans only
  std::int64_t value = 0;     ///< counters and chain lengths
  std::uint64_t id = 0;       ///< flow/chain correlation id (global slot id)
  EventKind kind = EventKind::kInstant;
};

class Tracer {
 public:
  /// @param rank track id in the exported trace.
  /// @param ring_capacity events retained (oldest overwritten, counted).
  /// @param sample 1-in-N gate returned by sample_tick() for call sites
  ///   that fire per message; spans are never sampled.
  /// @param label track name in the trace viewer; null = "rank <rank>".
  Tracer(int rank, std::size_t ring_capacity, std::uint64_t sample = 1,
         const char* label = nullptr);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] const char* label() const { return label_; }

  /// Open a span; every begin() must be matched by end() on the same
  /// thread. The span is recorded once it closes, so the ring buffer never
  /// holds half an event and wraparound cannot orphan a begin.
  void begin(const char* name);
  void end();

  void instant(const char* name);
  void counter(const char* name, std::int64_t value);

  /// Record an already-measured span (e.g. a blocking wait timed by the
  /// caller) without touching the open-span stack.
  void span_at(const char* name, std::int64_t start_ns, std::int64_t dur_ns);

  // Causal flow events. `id` correlates one logical flow (a request and its
  // resolution) across rank tracks; the exporter emits Perfetto "s"/"t"/"f"
  // phases carrying both `id` and `bind_id`. Like spans — and unlike the
  // per-message instants — flows are never subject to sample_tick(), so a
  // sampled-out request can never orphan its start/end pair.
  void flow_start(const char* name, std::uint64_t id);
  void flow_step(const char* name, std::uint64_t id);
  void flow_end(const char* name, std::uint64_t id);

  /// Record one resolved dependency chain: `id` names the slot (global slot
  /// id), `length` its chain length |D_t|. The offline reconstructor
  /// (obs/causal.h) rebuilds the Theorem 3.3 distribution from these.
  void chain(const char* name, std::uint64_t id, std::int64_t length);

  /// 1-in-N sampling gate for high-frequency events: true on the first call
  /// and then every sample-th call. With sample == 1, always true.
  [[nodiscard]] bool sample_tick() {
    return tick_++ % sample_ == 0;
  }

  /// RAII span; no-ops when constructed with a null tracer, so call sites
  /// need no branch of their own.
  class Span {
   public:
    Span(Tracer* t, const char* name) : t_(t) {
      if (t_ != nullptr) t_->begin(name);
    }
    ~Span() {
      if (t_ != nullptr) t_->end();
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& o) noexcept : t_(o.t_) { o.t_ = nullptr; }
    Span& operator=(Span&&) = delete;

   private:
    Tracer* t_;
  };

  [[nodiscard]] Span span(const char* name) { return Span{this, name}; }

  /// Retained events, oldest first (resolves the ring wraparound). Owner
  /// thread only, or post-join (see the concurrency audit above).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events recorded over the tracer's lifetime, including dropped ones.
  /// Safe to call from any thread while recording is in progress (relaxed
  /// read; see the concurrency audit above).
  [[nodiscard]] Count total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Events overwritten because the ring filled up. Same thread-safety as
  /// total_recorded().
  [[nodiscard]] Count dropped() const {
    const Count total = total_.load(std::memory_order_relaxed);
    return total > capacity_ ? total - capacity_ : 0;
  }

  /// Owner thread only, or post-join.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Open {
    const char* name;
    std::int64_t start_ns;
  };

  void record(const TraceEvent& e);

  int rank_;
  const char* label_;
  std::uint64_t sample_;
  std::uint64_t tick_ = 0;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::atomic<Count> total_{0};  ///< sole cross-thread field; audit above
  std::vector<TraceEvent> ring_;
  std::vector<Open> stack_;
};

/// Null-safe RAII span over an optional tracer pointer.
[[nodiscard]] inline Tracer::Span span(Tracer* t, const char* name) {
  return Tracer::Span{t, name};
}

/// Write all tracers as one Chrome trace-event JSON object
/// ({"traceEvents":[...]}): pid 1, tid = rank, a thread_name metadata
/// record per rank, span/instant/counter/flow phases, timestamps in
/// microseconds. Events are emitted in non-decreasing `ts` order per track
/// (spans land in the ring at end(), so raw ring order is not time order) —
/// the CI schema validator asserts this monotonicity. Loads in
/// chrome://tracing and Perfetto as-is.
void write_chrome_trace(std::ostream& os,
                        const std::vector<const Tracer*>& tracers);

}  // namespace pagen::obs
