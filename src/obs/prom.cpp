#include "obs/prom.h"

#include <cctype>
#include <ostream>

#include "obs/metrics.h"

namespace pagen::obs {
namespace {

void write_histogram(std::ostream& os, const std::string& name,
                     const Histogram& h) {
  os << "# TYPE " << name << " histogram\n";
  // Prometheus buckets are cumulative; ours are per-bucket tallies.
  Count cum = 0;
  for (const Histogram::Bucket& b : h.buckets()) {
    cum += b.count;
    os << name << "_bucket{le=\"" << b.upper << "\"} " << cum << '\n';
  }
  os << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
  os << name << "_sum " << h.sum() << '\n';
  os << name << "_count " << h.count() << '\n';
  os << "# TYPE " << name << "_p50 gauge\n"
     << name << "_p50 " << h.p50() << '\n';
  os << "# TYPE " << name << "_p95 gauge\n"
     << name << "_p95 " << h.p95() << '\n';
  os << "# TYPE " << name << "_p99 gauge\n"
     << name << "_p99 " << h.p99() << '\n';
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "pagen_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_prometheus(std::ostream& os, const MetricsRegistry& reg) {
  for (const auto& [name, c] : reg.counters()) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << c.value() << '\n';
  }
  for (const auto& [name, g] : reg.gauges()) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << g.last() << '\n';
    os << "# TYPE " << n << "_min gauge\n" << n << "_min " << g.min() << '\n';
    os << "# TYPE " << n << "_max gauge\n" << n << "_max " << g.max() << '\n';
    os << "# TYPE " << n << "_samples gauge\n"
       << n << "_samples " << g.samples() << '\n';
  }
  for (const auto& [name, h] : reg.histograms()) {
    write_histogram(os, prometheus_name(name), h);
  }
}

}  // namespace pagen::obs
