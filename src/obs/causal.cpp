#include "obs/causal.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <ostream>

#include "obs/session.h"
#include "obs/trace.h"

namespace pagen::obs {
namespace {

/// One causal event lifted out of its track, ready for global time-order
/// processing (a flow's start/step/end live on different tracks).
struct FlowEvent {
  std::int64_t ts = 0;
  std::uint64_t id = 0;
  int track = -1;
  std::uint8_t order = 0;  ///< s=0, t=1, f=2 — tie-break at equal ts
};

struct OpenFlow {
  std::int64_t start_ns = 0;
  std::int64_t step_ns = -1;
  int requester = -1;
  int owner = -1;
};

bool phase_name(const char* name) {
  return std::strcmp(name, "generate") == 0 ||
         std::strcmp(name, "drain") == 0 ||
         std::strcmp(name, "termination") == 0;
}

void write_histogram_json(std::ostream& os, const Histogram& h) {
  os << R"({"count": )" << h.count() << R"(, "sum": )" << h.sum()
     << R"(, "min": )" << h.min() << R"(, "max": )" << h.max()
     << R"(, "p50": )" << h.p50() << R"(, "p95": )" << h.p95()
     << R"(, "p99": )" << h.p99() << R"(, "buckets": [)";
  bool first = true;
  for (const Histogram::Bucket& b : h.buckets()) {
    os << (first ? "" : ", ") << R"({"le": )" << b.upper << R"(, "count": )"
       << b.count << '}';
    first = false;
  }
  os << "]}";
}

}  // namespace

ChainReport reconstruct_chains(const std::vector<const Tracer*>& tracers) {
  ChainReport report;
  std::vector<FlowEvent> starts, steps, ends;
  // Phase spans per track, for critical-path attribution.
  std::map<int, std::vector<TraceEvent>> phases;

  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    for (const TraceEvent& e : t->events()) {
      switch (e.kind) {
        case EventKind::kChain:
          report.chain_records += 1;
          report.chain_length.observe(static_cast<std::uint64_t>(e.value));
          report.max_chain_length = std::max(
              report.max_chain_length, static_cast<std::uint64_t>(e.value));
          break;
        case EventKind::kFlowStart:
          starts.push_back({e.start_ns, e.id, t->rank(), 0});
          break;
        case EventKind::kFlowStep:
          steps.push_back({e.start_ns, e.id, t->rank(), 1});
          break;
        case EventKind::kFlowEnd:
          ends.push_back({e.start_ns, e.id, t->rank(), 2});
          break;
        case EventKind::kSpan:
          if (phase_name(e.name)) phases[t->rank()].push_back(e);
          break;
        default:
          break;
      }
    }
  }

  // Replay every flow event in global time order so retry rounds that reuse
  // an id (x > 1 duplicate-avoidance re-requests) resolve unambiguously:
  // each start opens a round, the next end on that id closes it.
  std::vector<FlowEvent> all;
  all.reserve(starts.size() + steps.size() + ends.size());
  all.insert(all.end(), starts.begin(), starts.end());
  all.insert(all.end(), steps.begin(), steps.end());
  all.insert(all.end(), ends.begin(), ends.end());
  std::sort(all.begin(), all.end(), [](const FlowEvent& a, const FlowEvent& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.order != b.order) return a.order < b.order;
    return a.id < b.id;
  });

  std::map<std::uint64_t, OpenFlow> open;
  for (const FlowEvent& e : all) {
    const auto it = open.find(e.id);
    switch (e.order) {
      case 0:  // start
        if (it != open.end()) report.orphan_starts += 1;
        open[e.id] = OpenFlow{e.ts, -1, e.track, -1};
        break;
      case 1:  // step
        if (it != open.end() && it->second.step_ns < 0) {
          it->second.step_ns = e.ts;
          it->second.owner = e.track;
        }
        break;
      default:  // end
        if (it == open.end()) {
          report.orphan_ends += 1;
          break;
        }
        {
          const OpenFlow& f = it->second;
          const auto dur = static_cast<std::uint64_t>(e.ts - f.start_ns);
          report.flows += 1;
          report.flow_ns.observe(dur);
          if (f.step_ns >= 0) {
            report.request_hop_ns.observe(
                static_cast<std::uint64_t>(f.step_ns - f.start_ns));
            report.resolve_hop_ns.observe(
                static_cast<std::uint64_t>(e.ts - f.step_ns));
          }
          const bool better =
              static_cast<std::int64_t>(dur) > report.critical.dur_ns ||
              (static_cast<std::int64_t>(dur) == report.critical.dur_ns &&
               report.critical.requester >= 0 && e.id < report.critical.id);
          if (better || report.critical.requester < 0) {
            report.critical = {e.id,       f.requester,
                               f.owner,    f.start_ns,
                               static_cast<std::int64_t>(dur), "none"};
          }
        }
        open.erase(it);
        break;
    }
  }
  report.orphan_starts += open.size();

  // Attribute the critical flow to the phase span enclosing its start on
  // the requester's track.
  if (report.critical.requester >= 0) {
    const auto it = phases.find(report.critical.requester);
    if (it != phases.end()) {
      for (const TraceEvent& span : it->second) {
        if (span.start_ns <= report.critical.start_ns &&
            report.critical.start_ns <= span.start_ns + span.dur_ns) {
          report.critical.phase = span.name;
          break;
        }
      }
    }
  }
  return report;
}

ChainReport reconstruct_chains(const Session& session) {
  std::vector<const Tracer*> tracers;
  tracers.reserve(static_cast<std::size_t>(session.nranks()) + 1);
  for (int r = 0; r < session.nranks(); ++r) {
    tracers.push_back(&session.rank(r).trace());
  }
  tracers.push_back(&session.driver().trace());
  return reconstruct_chains(tracers);
}

void write_chain_report(std::ostream& os, const ChainReport& r) {
  os << "{\n"
     << R"(  "schema": "pagen.chains.v1",)" << "\n"
     << R"(  "chains": {"records": )" << r.chain_records
     << R"(, "max_length": )" << r.max_chain_length << R"(, "histogram": )";
  write_histogram_json(os, r.chain_length);
  os << "},\n"
     << R"(  "flows": {"completed": )" << r.flows << R"(, "orphan_starts": )"
     << r.orphan_starts << R"(, "orphan_ends": )" << r.orphan_ends << ",\n"
     << R"(    "request_hop_ns": )";
  write_histogram_json(os, r.request_hop_ns);
  os << ",\n" << R"(    "resolve_hop_ns": )";
  write_histogram_json(os, r.resolve_hop_ns);
  os << ",\n" << R"(    "round_trip_ns": )";
  write_histogram_json(os, r.flow_ns);
  os << "},\n"
     << R"(  "critical_path": {"id": )" << r.critical.id
     << R"(, "requester": )" << r.critical.requester << R"(, "owner": )"
     << r.critical.owner << R"(, "start_ns": )" << r.critical.start_ns
     << R"(, "dur_ns": )" << r.critical.dur_ns << R"(, "phase": ")"
     << r.critical.phase << R"("})" << "\n}\n";
}

}  // namespace pagen::obs
