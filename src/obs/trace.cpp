#include "obs/trace.h"

#include <algorithm>
#include <ostream>

#include "util/error.h"
#include "util/timer.h"

namespace pagen::obs {
namespace {

/// Trace-event names are compile-time literals, but escape defensively so
/// the emitted JSON can never be invalidated by a stray quote or backslash.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

/// Microseconds with nanosecond precision, without float rounding drama.
void write_us(std::ostream& os, std::int64_t ns) {
  const std::int64_t us = ns / 1000;
  const std::int64_t frac = (ns < 0 ? -ns : ns) % 1000;
  os << us << '.';
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

void write_event(std::ostream& os, int rank, const TraceEvent& e) {
  os << R"({"pid":1,"tid":)" << rank << R"(,"cat":"pagen","name":")";
  write_escaped(os, e.name);
  os << R"(","ts":)";
  write_us(os, e.start_ns);
  switch (e.kind) {
    case EventKind::kSpan:
      os << R"(,"ph":"X","dur":)";
      write_us(os, e.dur_ns);
      break;
    case EventKind::kInstant:
      os << R"(,"ph":"i","s":"t")";
      break;
    case EventKind::kCounter:
      os << R"(,"ph":"C","args":{"value":)" << e.value << '}';
      break;
    case EventKind::kFlowStart:
      os << R"(,"ph":"s","id":)" << e.id << R"(,"bind_id":)" << e.id;
      break;
    case EventKind::kFlowStep:
      os << R"(,"ph":"t","id":)" << e.id << R"(,"bind_id":)" << e.id;
      break;
    case EventKind::kFlowEnd:
      os << R"(,"ph":"f","bp":"e","id":)" << e.id << R"(,"bind_id":)" << e.id;
      break;
    case EventKind::kChain:
      os << R"(,"ph":"i","s":"t","args":{"slot":)" << e.id << R"(,"len":)"
         << e.value << '}';
      break;
  }
  os << '}';
}

}  // namespace

Tracer::Tracer(int rank, std::size_t ring_capacity, std::uint64_t sample,
               const char* label)
    : rank_(rank), label_(label), sample_(sample), capacity_(ring_capacity) {
  PAGEN_CHECK_MSG(ring_capacity >= 1, "trace ring needs capacity >= 1");
  PAGEN_CHECK_MSG(sample >= 1, "trace sample factor must be >= 1");
  ring_.reserve(capacity_);
}

void Tracer::record(const TraceEvent& e) {
  // Relaxed: the lifetime counter carries no ordering obligations — it
  // publishes nothing, and concurrent readers tolerate lag (trace.h audit).
  total_.fetch_add(1, std::memory_order_relaxed);
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
}

void Tracer::begin(const char* name) { stack_.push_back({name, now_ns()}); }

void Tracer::end() {
  PAGEN_CHECK_MSG(!stack_.empty(), "Tracer::end without matching begin");
  const Open open = stack_.back();
  stack_.pop_back();
  record({open.name, open.start_ns, now_ns() - open.start_ns, 0, 0,
          EventKind::kSpan});
}

void Tracer::instant(const char* name) {
  record({name, now_ns(), 0, 0, 0, EventKind::kInstant});
}

void Tracer::counter(const char* name, std::int64_t value) {
  record({name, now_ns(), 0, value, 0, EventKind::kCounter});
}

void Tracer::span_at(const char* name, std::int64_t start_ns,
                     std::int64_t dur_ns) {
  record({name, start_ns, dur_ns, 0, 0, EventKind::kSpan});
}

void Tracer::flow_start(const char* name, std::uint64_t id) {
  record({name, now_ns(), 0, 0, id, EventKind::kFlowStart});
}

void Tracer::flow_step(const char* name, std::uint64_t id) {
  record({name, now_ns(), 0, 0, id, EventKind::kFlowStep});
}

void Tracer::flow_end(const char* name, std::uint64_t id) {
  record({name, now_ns(), 0, 0, id, EventKind::kFlowEnd});
}

void Tracer::chain(const char* name, std::uint64_t id, std::int64_t length) {
  record({name, now_ns(), 0, length, id, EventKind::kChain});
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once full, head_ points at the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t Tracer::size() const { return ring_.size(); }

void write_chrome_trace(std::ostream& os,
                        const std::vector<const Tracer*>& tracers) {
  os << R"({"displayTimeUnit":"ms","traceEvents":[)";
  bool first = true;
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    if (!first) os << ',';
    first = false;
    os << "\n"
       << R"({"pid":1,"tid":)" << t->rank()
       << R"(,"ph":"M","name":"thread_name","args":{"name":")";
    if (t->label() != nullptr) {
      write_escaped(os, t->label());
    } else {
      os << "rank " << t->rank();
    }
    os << R"("}})";
    // Spans are recorded when they *close*, so ring order interleaves a
    // span's (earlier) start behind events that happened inside it. Emit in
    // start-time order instead: consumers may assume per-track monotonic ts
    // and the CI validator enforces it. stable_sort keeps same-ts record
    // order, so the export stays deterministic.
    std::vector<TraceEvent> ordered = t->events();
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.start_ns < b.start_ns;
                     });
    for (const TraceEvent& e : ordered) {
      os << ",\n";
      write_event(os, t->rank(), e);
    }
  }
  os << "\n]}\n";
}

}  // namespace pagen::obs
