// Prometheus text-format (exposition format 0.0.4) exporter for a
// MetricsRegistry.
//
// Maps the registry's instruments onto the closest native Prometheus
// types: Counter -> counter, Gauge -> gauge (last value, with _min/_max/
// _samples companions so the extrema survive scraping), Histogram -> a
// classic histogram with cumulative power-of-two `le` buckets plus _sum and
// _count, and _p50/_p95/_p99 companion gauges carrying the deterministic
// percentile estimates (obs/metrics.h). Metric names are sanitized to the
// Prometheus charset ([a-zA-Z0-9_:], dots become underscores) and prefixed
// "pagen_" so a scrape of the svc server never collides with other jobs.
// Output is deterministic: sorted-name order, one exposition block per
// instrument.
#pragma once

#include <iosfwd>
#include <string>

namespace pagen::obs {

class MetricsRegistry;

/// Sanitize one registry metric name into a Prometheus identifier:
/// "svc.job_latency_ns" -> "pagen_svc_job_latency_ns".
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Write `reg` in Prometheus text exposition format.
void write_prometheus(std::ostream& os, const MetricsRegistry& reg);

}  // namespace pagen::obs
