// Common scalar types shared by every pagen module.
#pragma once

#include <cstdint>

namespace pagen {

/// Vertex identifier. Graphs with up to 2^63 nodes are representable; the
/// paper generates networks with 10^9 nodes, far above the 32-bit range.
using NodeId = std::uint64_t;

/// Count of edges / messages / generic 64-bit tallies.
using Count = std::uint64_t;

/// Rank (processor) index inside a message-passing world.
using Rank = std::int32_t;

/// Invalid / "not yet resolved" sentinel used for F_t values (the paper's
/// NILL). NodeId is unsigned so the all-ones pattern is never a valid node.
inline constexpr NodeId kNil = ~NodeId{0};

}  // namespace pagen
