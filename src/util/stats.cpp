#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pagen {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.sum = sum;
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  return s;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  PAGEN_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double imbalance(std::span<const double> xs) {
  const Summary s = summarize(xs);
  if (s.count == 0 || s.mean == 0.0) return 0.0;
  return s.max / s.mean;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  PAGEN_CHECK(x.size() == y.size());
  LinearFit fit;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  if (sst > 0.0) {
    double sse = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept + fit.slope * x[i]);
      sse += e * e;
    }
    fit.r_squared = 1.0 - sse / sst;
  }
  return fit;
}

double chi_squared(std::span<const double> observed,
                   std::span<const double> expected, double min_expected) {
  PAGEN_CHECK(observed.size() == expected.size());
  double chi2 = 0.0;
  double pooled_obs = 0.0;
  double pooled_exp = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    pooled_obs += observed[i];
    pooled_exp += expected[i];
    if (pooled_exp >= min_expected) {
      const double d = pooled_obs - pooled_exp;
      chi2 += d * d / pooled_exp;
      pooled_obs = 0.0;
      pooled_exp = 0.0;
    }
  }
  if (pooled_exp > 0.0) {
    const double d = pooled_obs - pooled_exp;
    chi2 += d * d / pooled_exp;
  }
  return chi2;
}

}  // namespace pagen
