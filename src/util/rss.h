// Peak resident-set-size probe for bounded-memory claims.
#pragma once

#include <cstdint>
#include <fstream>
#include <limits>
#include <string>

namespace pagen {

/// The process's peak RSS (VmHWM from /proc/self/status) in bytes; 0 when
/// the proc file is unavailable (non-Linux). The high-water mark is what a
/// memory-budget claim must be checked against — instantaneous RSS misses
/// transients.
inline std::uint64_t peak_rss_bytes() {
  std::ifstream is("/proc/self/status");
  std::string key;
  while (is >> key) {
    if (key == "VmHWM:") {
      std::uint64_t kib = 0;
      is >> kib;
      return kib * 1024;
    }
    is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
  return 0;
}

}  // namespace pagen
