// Fixed-width plain-text table printer for bench/example output.
//
// The bench harnesses print the same rows/series the paper's tables and
// figures report; this printer keeps them aligned and machine-greppable
// (every data row is also emitted in a `key=value` trailer when requested).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pagen {

/// Column-aligned table. Usage:
///   Table t({"P", "speedup", "scheme"});
///   t.add_row({"16", "14.9", "RRP"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule. Numbers should be pre-formatted by callers
  /// (see fmt_* helpers below).
  void print(std::ostream& os) const;

  /// Render as tab-separated values (header row first) — the
  /// plot-tool-ready form the figure benches write with --tsv=PATH.
  /// Thousands separators are stripped from cells so numeric columns stay
  /// parseable.
  void print_tsv(std::ostream& os) const;

  /// Write TSV to `path` unless it is empty; returns true if written.
  bool save_tsv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant decimals (fixed notation).
[[nodiscard]] std::string fmt_f(double v, int digits = 3);

/// Format a double in scientific notation with `digits` decimals.
[[nodiscard]] std::string fmt_e(double v, int digits = 2);

/// Format an integer with thousands separators ("1,234,567").
[[nodiscard]] std::string fmt_count(std::uint64_t v);

}  // namespace pagen
