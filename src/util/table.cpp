#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace pagen {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PAGEN_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PAGEN_CHECK_MSG(cells.size() == header_.size(),
                  "row width " << cells.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_tsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      std::erase(cell, ',');
      os << (c == 0 ? "" : "\t") << cell;
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::save_tsv(const std::string& path) const {
  if (path.empty()) return false;
  std::ofstream os(path);
  PAGEN_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  print_tsv(os);
  return true;
}

std::string fmt_f(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_e(double v, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  const std::size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

}  // namespace pagen
