// Minimal --key=value command-line parsing for examples and benches.
//
// Every experiment binary accepts overrides such as --n=1000000 --x=4
// --ranks=16 --seed=42; unknown keys abort with a usage message so typos
// never silently run the default workload.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pagen {

/// Parsed command line. Only `--key=value` and `--flag` forms are accepted.
class Cli {
 public:
  /// @param allowed_keys keys this binary understands; anything else is an
  ///   error. `--help` is always recognized.
  Cli(int argc, const char* const* argv, std::vector<std::string> allowed_keys);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] std::string get_str(const std::string& key,
                                    std::string def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// True when --help was passed; callers should print usage and exit 0.
  [[nodiscard]] bool help() const { return help_; }

  /// Render "usage: prog --a=.. --b=.." for the allowed keys.
  [[nodiscard]] std::string usage(const std::string& prog) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> allowed_;
  bool help_ = false;
};

}  // namespace pagen
