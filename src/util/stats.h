// Descriptive statistics over numeric samples.
//
// Used throughout the experiment harnesses: load-balance summaries (Fig. 7),
// dependency-chain statistics (Theorem 3.3), and timing aggregation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pagen {

/// Summary of a numeric sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double sum = 0.0;
};

/// Compute min/max/mean/stddev/sum in one pass. Empty input yields all zeros.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Overload accepting any integral span by widening to double.
template <typename T>
[[nodiscard]] Summary summarize_of(std::span<const T> xs) {
  std::vector<double> d(xs.begin(), xs.end());
  return summarize(std::span<const double>(d));
}

/// q-th percentile (0 <= q <= 1) via linear interpolation on a sorted copy.
/// Empty input returns 0.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Load-imbalance factor: max / mean. 1.0 means perfectly balanced.
/// Returns 0 for empty input or zero mean.
[[nodiscard]] double imbalance(std::span<const double> xs);

/// Ordinary least-squares fit y = a + b x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Pearson chi-squared statistic of observed counts against expected counts.
/// Bins with expected < min_expected are pooled into the previous bin.
/// Used by the statistical tests for the copy model (Pr{F_t=i} = d_i/sum d).
[[nodiscard]] double chi_squared(std::span<const double> observed,
                                 std::span<const double> expected,
                                 double min_expected = 5.0);

}  // namespace pagen
