// Harmonic numbers H_k = sum_{i=1..k} 1/i.
//
// The paper's load-balancing analysis (Lemma 3.4, Eq. 10, Appendix A) is
// written entirely in terms of harmonic numbers: the expected number of
// request messages received for node k is (1-p) * (H_{n-1} - H_k).  The LCP
// partition solver evaluates H at ~P*log(n) points up to n, so we provide an
// exact prefix table for small arguments and the Euler–Maclaurin asymptotic
// expansion beyond it (absolute error < 1e-12 past the table).
#pragma once

#include <cstdint>
#include <vector>

namespace pagen {

/// Evaluator for harmonic numbers, exact up to `table_size` and asymptotic
/// beyond.  Cheap to construct (the default table costs ~8 KB) and safe to
/// share across threads once built.
class Harmonic {
 public:
  /// @param table_size number of exactly-tabulated values (H_0..H_{table_size-1}).
  explicit Harmonic(std::size_t table_size = 1024);

  /// H_k. H_0 == 0.
  [[nodiscard]] double operator()(std::uint64_t k) const;

  /// Sum of H_i for i in [0, k]: sum_{i<=k} H_i = (k+1) H_{k+1} - (k+1).
  /// (Concrete Mathematics Eq. 2.36, the identity the paper invokes.)
  [[nodiscard]] double prefix_sum(std::uint64_t k) const;

 private:
  std::vector<double> table_;
};

/// One-shot H_k using a process-wide default evaluator.
[[nodiscard]] double harmonic(std::uint64_t k);

}  // namespace pagen
