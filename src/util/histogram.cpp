#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pagen {

IntHistogram::IntHistogram(std::uint64_t max_value)
    : max_value_(max_value), counts_(max_value + 1, 0) {
  PAGEN_CHECK(max_value >= 1);
}

void IntHistogram::add(std::uint64_t value, std::uint64_t weight) {
  counts_[std::min(value, max_value_)] += weight;
  total_ += weight;
}

std::uint64_t IntHistogram::count(std::uint64_t value) const {
  PAGEN_CHECK(value <= max_value_);
  return counts_[value];
}

std::vector<HistBin> IntHistogram::bins() const {
  std::vector<HistBin> out;
  for (std::uint64_t v = 0; v <= max_value_; ++v) {
    if (counts_[v] != 0) {
      out.push_back({static_cast<double>(v), 1.0, counts_[v]});
    }
  }
  return out;
}

LogHistogram::LogHistogram(double base) : base_(base), log_base_(std::log(base)) {
  PAGEN_CHECK(base > 1.0);
}

void LogHistogram::add(double value, std::uint64_t weight) {
  PAGEN_CHECK_MSG(value > 0.0, "LogHistogram only accepts positive values");
  const int e = static_cast<int>(std::floor(std::log(value) / log_base_));
  if (empty_) {
    min_exp_ = e;
    counts_.assign(1, 0);
    empty_ = false;
  } else if (e < min_exp_) {
    counts_.insert(counts_.begin(), static_cast<std::size_t>(min_exp_ - e), 0);
    min_exp_ = e;
  } else if (const auto idx = static_cast<std::size_t>(e - min_exp_);
             idx >= counts_.size()) {
    counts_.resize(idx + 1, 0);
  }
  counts_[static_cast<std::size_t>(e - min_exp_)] += weight;
  total_ += weight;
}

std::vector<HistBin> LogHistogram::bins() const {
  std::vector<HistBin> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo = std::pow(base_, static_cast<double>(min_exp_) + static_cast<double>(i));
    const double hi = lo * base_;
    out.push_back({std::sqrt(lo * hi), hi - lo, counts_[i]});
  }
  return out;
}

}  // namespace pagen
