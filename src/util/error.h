// Lightweight runtime checking used across pagen.
//
// PAGEN_CHECK is active in all build types: generator correctness bugs
// (duplicate edges, unresolved nodes) must never be silently ignored, and the
// checks are off the hot path.  PAGEN_DCHECK compiles away in release builds
// and is used inside inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pagen {

/// Exception thrown by PAGEN_CHECK failures. Derives from std::logic_error:
/// a failed check is a programming error, not an environmental condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PAGEN_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace pagen

#define PAGEN_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::pagen::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define PAGEN_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream pagen_os_;                                    \
      pagen_os_ << msg;                                                \
      ::pagen::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                    pagen_os_.str());                  \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
#define PAGEN_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define PAGEN_DCHECK(expr) PAGEN_CHECK(expr)
#endif
