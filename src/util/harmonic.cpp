#include "util/harmonic.h"

#include <cmath>

#include "util/error.h"

namespace pagen {
namespace {

// Euler–Mascheroni constant to double precision.
constexpr double kGamma = 0.57721566490153286060651209;

// Euler–Maclaurin expansion:
//   H_k ≈ ln k + γ + 1/(2k) − 1/(12k²) + 1/(120k⁴) − 1/(252k⁶)
// Absolute error is below 1e-16 already for k ≥ 16; we only use it past the
// exact table, so precision is never the binding constraint.
double harmonic_asymptotic(double k) {
  const double inv = 1.0 / k;
  const double inv2 = inv * inv;
  return std::log(k) + kGamma + 0.5 * inv -
         inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
}

}  // namespace

Harmonic::Harmonic(std::size_t table_size) {
  PAGEN_CHECK(table_size >= 2);
  table_.resize(table_size);
  table_[0] = 0.0;
  for (std::size_t k = 1; k < table_size; ++k) {
    table_[k] = table_[k - 1] + 1.0 / static_cast<double>(k);
  }
}

double Harmonic::operator()(std::uint64_t k) const {
  if (k < table_.size()) return table_[k];
  return harmonic_asymptotic(static_cast<double>(k));
}

double Harmonic::prefix_sum(std::uint64_t k) const {
  const double kp1 = static_cast<double>(k) + 1.0;
  return kp1 * (*this)(k + 1) - kp1;
}

double harmonic(std::uint64_t k) {
  static const Harmonic h;
  return h(k);
}

}  // namespace pagen
