// Histograms: linear-binned and logarithmic-binned.
//
// The degree-distribution experiments (Fig. 4) plot log–log degree frequency;
// log binning smooths the heavy tail exactly as the paper's figure does.
#pragma once

#include <cstdint>
#include <vector>

namespace pagen {

/// A (center, count) pair emitted by histogram readers.
struct HistBin {
  double center = 0.0;
  double width = 0.0;
  std::uint64_t count = 0;
};

/// Exact integer-value histogram (bin per distinct value up to a cap).
/// Values above the cap are clamped into the final bin.
class IntHistogram {
 public:
  explicit IntHistogram(std::uint64_t max_value);

  void add(std::uint64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t count(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t max_value() const { return max_value_; }

  /// All non-empty bins in increasing value order.
  [[nodiscard]] std::vector<HistBin> bins() const;

 private:
  std::uint64_t max_value_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Logarithmically binned histogram for positive values: bin i covers
/// [base^i, base^{i+1}). Used for heavy-tailed degree distributions.
class LogHistogram {
 public:
  /// @param base bin growth factor, must be > 1. The paper's figures use
  ///   roughly base 1.3–2 binning for the tail.
  explicit LogHistogram(double base = 1.5);

  void add(double value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Non-empty bins; `center` is the geometric mean of bin edges and `width`
  /// the bin's extent (used to normalize counts into densities).
  [[nodiscard]] std::vector<HistBin> bins() const;

 private:
  double base_;
  double log_base_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;  // index = floor(log_base(value)) + offset
  int min_exp_ = 0;
  bool empty_ = true;
};

}  // namespace pagen
