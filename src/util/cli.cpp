#include "util/cli.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pagen {

Cli::Cli(int argc, const char* const* argv,
         std::vector<std::string> allowed_keys)
    : allowed_(std::move(allowed_keys)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg.erase(0, 2);
    std::string key = arg;
    std::string value = "true";
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    if (std::find(allowed_.begin(), allowed_.end(), key) == allowed_.end()) {
      throw std::invalid_argument("unknown option --" + key);
    }
    values_[key] = value;
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) != 0; }

std::uint64_t Cli::get_u64(const std::string& key, std::uint64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::stoull(it->second);
}

double Cli::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::stod(it->second);
}

std::string Cli::get_str(const std::string& key, std::string def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second;
}

bool Cli::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Cli::usage(const std::string& prog) const {
  std::ostringstream os;
  os << "usage: " << prog;
  for (const auto& k : allowed_) os << " [--" << k << "=VALUE]";
  return os.str();
}

}  // namespace pagen
