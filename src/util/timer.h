// Wall-clock timing helpers.
//
// Everything stamps from one process-wide monotonic epoch (now_ns), so
// bench timings (Timer) and trace timestamps (obs::Tracer) are directly
// comparable: second 3.2 of a bench log is microsecond 3.2e6 in the trace.
#pragma once

#include <chrono>
#include <cstdint>

namespace pagen {

/// Nanoseconds since the process-wide monotonic epoch. The epoch is the
/// first call in the process (thread-safe static init), so values are
/// small, positive, and shared by every Timer and tracer.
[[nodiscard]] inline std::int64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

/// Monotonic stopwatch. Started on construction; restart() rewinds.
class Timer {
 public:
  Timer() : start_(now_ns()) {}

  void restart() { start_ = now_ns(); }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return static_cast<double>(now_ns() - start_) * 1e-9;
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::int64_t start_;
};

}  // namespace pagen
