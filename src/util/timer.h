// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace pagen {

/// Monotonic stopwatch. Started on construction; restart() rewinds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pagen
