#include "svc/job.h"

#include <bit>
#include <sstream>

#include "core/engine/engine.h"

namespace pagen::svc {
namespace {

/// FNV-1a over little-endian 64-bit words (the same construction the golden
/// tests use for edge hashes, so hashes are stable and diffable).
class Fnv1a {
 public:
  void word(std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      byte((w >> (8 * i)) & 0xffU);
    }
  }
  /// Length-prefixed so no two string sequences collide by concatenation.
  void str(const std::string& s) {
    word(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  void byte(std::uint64_t b) {
    h_ ^= b & 0xffU;
    h_ *= 0x100000001b3ULL;
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Domain tag: rotate when the hashed schema changes so stale sharded-store
/// markers from an older layout can never satisfy a probe. '02 added the
/// engine field (ISSUE 9).
constexpr std::uint64_t kSpecHashVersion = 0x7061672e737663'02ULL;

}  // namespace

std::uint64_t spec_hash(const JobSpec& spec) {
  Fnv1a h;
  h.word(kSpecHashVersion);
  h.word(spec.config.n);
  h.word(spec.config.x);
  h.word(std::bit_cast<std::uint64_t>(spec.config.p));
  h.word(spec.config.seed);
  h.str(spec.engine);
  h.word(static_cast<std::uint64_t>(spec.ranks));
  h.word(static_cast<std::uint64_t>(spec.scheme));
  h.word(spec.buffer_capacity);
  h.word(spec.node_batch);
  return h.digest();
}

std::string validate(const JobSpec& spec) {
  const PaConfig& c = spec.config;
  std::ostringstream why;
  if (c.x < 1) {
    why << "x must be >= 1 (got " << c.x << ")";
  } else if (c.x == 1 && c.n < 2) {
    why << "x == 1 needs n >= 2 (got n = " << c.n << ")";
  } else if (c.x > 1 && c.n <= c.x) {
    why << "x > 1 needs n > x (got n = " << c.n << ", x = " << c.x << ")";
  } else if (c.p < 0.0 || c.p > 1.0) {
    why << "p must be in [0, 1] (got " << c.p << ")";
  } else if (c.x > 1 && c.p >= 1.0) {
    why << "p must be below 1 for x > 1";
  } else if (spec.ranks < 1) {
    why << "ranks must be >= 1 (got " << spec.ranks << ")";
  } else if (static_cast<NodeId>(spec.ranks) > c.n) {
    why << "more ranks (" << spec.ranks << ") than nodes (" << c.n << ")";
  } else if (spec.buffer_capacity < 1) {
    why << "buffer_capacity must be >= 1";
  } else if (spec.node_batch < 1) {
    why << "node_batch must be >= 1";
  } else if ((spec.sink == Sink::kShardedStore ||
              spec.sink == Sink::kCompressedStore) &&
             spec.store_dir.empty()) {
    why << (spec.sink == Sink::kShardedStore ? "Sink::kShardedStore"
                                             : "Sink::kCompressedStore")
        << " requires store_dir";
  } else if (spec.sink == Sink::kCompressedStore &&
             spec.fault_plan.has_crash()) {
    why << "Sink::kCompressedStore cannot run under a crash plan: a "
           "respawned rank re-emits restored edges, duplicating store blocks";
  } else if (spec.max_attempts < 1) {
    why << "max_attempts must be >= 1";
  } else if (const core::Engine* engine =
                 core::EngineRegistry::instance().find(spec.engine);
             engine == nullptr) {
    why << "unknown engine '" << spec.engine << "' (registered: "
        << core::EngineRegistry::instance().names() << ")";
  } else if (!engine->capabilities().multi_rank && spec.ranks > 1) {
    why << "engine '" << spec.engine << "' is single-rank (got ranks = "
        << spec.ranks << ")";
  } else if (!engine->capabilities().fault_tolerance &&
             (spec.fault_plan.active() || spec.reliable)) {
    why << "engine '" << spec.engine
        << "' does not support fault injection or reliable transport";
  }
  return why.str();
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
    case JobState::kFailed:
      return "failed";
    case JobState::kShed:
      return "shed";
  }
  return "unknown";
}

const char* to_string(Reject r) {
  switch (r) {
    case Reject::kNone:
      return "accepted";
    case Reject::kQueueFull:
      return "queue-full";
    case Reject::kShuttingDown:
      return "shutting-down";
    case Reject::kInvalidSpec:
      return "invalid-spec";
    case Reject::kDeadlineExpired:
      return "deadline-expired";
    case Reject::kCircuitOpen:
      return "circuit-open";
  }
  return "unknown";
}

}  // namespace pagen::svc
