// svc flight recorder: a tiny per-job ring of timestamped state notes.
//
// Every job record carries one. Each state transition (queued, dispatched,
// running, cancel-requested, terminal) appends a note cheaply — a fixed-size
// ring, no allocation after construction — and when a job ends badly
// (cancelled, rejected at dispatch, expired, failed) the server renders the
// ring into a human-readable incident line. The recorder answers "what did
// this job go through, and when" without replaying the whole service trace:
// the black box you pull after the crash, not the telemetry stream.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/timer.h"

namespace pagen::svc {

/// Fixed-capacity ring of (wall-clock ns, label, value) notes. Oldest notes
/// are overwritten once the ring is full; dropped() says how many. Not
/// thread-safe on its own — the server notes under its one mutex.
class FlightRecorder {
 public:
  struct Note {
    std::int64_t ns = 0;      ///< wall clock at note time (util now_ns)
    const char* what = "";    ///< static label, e.g. "queued", "running"
    std::int64_t value = 0;   ///< optional context (queue depth, tick, ...)
  };

  static constexpr std::size_t kCapacity = 32;

  void note(const char* what, std::int64_t value = 0) {
    ring_[head_ % kCapacity] = Note{now_ns(), what, value};
    ++head_;
    if (head_ > kCapacity) ++dropped_;
  }

  /// Notes in record order, oldest first (at most kCapacity).
  [[nodiscard]] std::vector<Note> entries() const {
    std::vector<Note> out;
    const std::size_t n = head_ < kCapacity ? head_ : kCapacity;
    out.reserve(n);
    const std::size_t start = head_ - n;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring_[(start + i) % kCapacity]);
    }
    return out;
  }

  /// Notes overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// One-line rendering: "queued+0us -> running+180us -> cancelled+421us"
  /// with offsets relative to the first retained note.
  [[nodiscard]] std::string dump() const {
    const std::vector<Note> notes = entries();
    std::ostringstream os;
    if (dropped_ != 0) os << "(" << dropped_ << " dropped) ";
    const std::int64_t base = notes.empty() ? 0 : notes.front().ns;
    bool first = true;
    for (const Note& n : notes) {
      if (!first) os << " -> ";
      os << n.what << "+" << (n.ns - base) / 1000 << "us";
      if (n.value != 0) os << "(" << n.value << ")";
      first = false;
    }
    return os.str();
  }

 private:
  std::array<Note, kCapacity> ring_{};
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace pagen::svc
