#include "svc/server.h"

#include <exception>
#include <sstream>
#include <utility>

#include "core/generate.h"
#include "graph/sharded_io.h"
#include "obs/prom.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::svc {

Server::Server(ServerOptions options)
    : options_(options),
      queue_(options.queue_capacity),
      cache_(options.cache_entries),
      paused_(options.start_paused),
      submits_(&metrics_.counter("svc.submits")),
      accepted_(&metrics_.counter("svc.accepted")),
      rejects_all_(&metrics_.counter("svc.rejects")),
      rejects_queue_full_(&metrics_.counter("svc.rejects_queue_full")),
      rejects_shutting_down_(&metrics_.counter("svc.rejects_shutting_down")),
      rejects_invalid_(&metrics_.counter("svc.rejects_invalid_spec")),
      rejects_deadline_(&metrics_.counter("svc.rejects_deadline_expired")),
      completed_(&metrics_.counter("svc.completed")),
      cancelled_(&metrics_.counter("svc.cancelled")),
      expired_(&metrics_.counter("svc.expired")),
      failed_(&metrics_.counter("svc.failed")),
      store_hits_(&metrics_.counter("svc.cache_store_hits")),
      queue_depth_(&metrics_.gauge("svc.queue_depth")),
      running_gauge_(&metrics_.gauge("svc.running")),
      latency_(&metrics_.histogram("svc.job_latency_ns")),
      queue_wait_(&metrics_.histogram("svc.queue_wait_ns")),
      run_ns_(&metrics_.histogram("svc.run_ns")) {
  PAGEN_CHECK_MSG(options.workers >= 1, "server needs workers >= 1");
  cache_.bind_metrics(&metrics_.counter("svc.cache_hits"),
                      &metrics_.counter("svc.cache_misses"),
                      &metrics_.counter("svc.cache_evictions"));
  workers_.reserve(static_cast<std::size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(false); }

namespace {

const char* reject_name(Reject why) {
  switch (why) {
    case Reject::kQueueFull:
      return "queue_full";
    case Reject::kShuttingDown:
      return "shutting_down";
    case Reject::kInvalidSpec:
      return "invalid_spec";
    case Reject::kDeadlineExpired:
      return "deadline_expired";
    case Reject::kNone:
      break;
  }
  return "none";
}

}  // namespace

void Server::push_incident(std::string line) {
  incidents_.push_back(std::move(line));
  while (incidents_.size() > kMaxIncidents) incidents_.pop_front();
}

void Server::flight_incident(JobId id, const Record& rec, const char* why) {
  std::ostringstream os;
  os << "job " << id << " " << why << ": " << rec.flight.dump();
  push_incident(os.str());
}

Server::Submitted Server::rejected(Reject why) {
  rejects_all_->add();
  switch (why) {
    case Reject::kQueueFull:
      rejects_queue_full_->add();
      break;
    case Reject::kShuttingDown:
      rejects_shutting_down_->add();
      break;
    case Reject::kInvalidSpec:
      rejects_invalid_->add();
      break;
    case Reject::kDeadlineExpired:
      rejects_deadline_->add();
      break;
    case Reject::kNone:
      break;
  }
  std::ostringstream os;
  os << "submit rejected: " << reject_name(why) << " (tick "
     << ticks_.load(std::memory_order_relaxed) << ", queue depth "
     << queue_.size() << ")";
  push_incident(os.str());
  return Submitted{kNoJob, why, false};
}

Server::Submitted Server::serve_completed(
    const JobSpec& spec, std::uint64_t hash,
    std::shared_ptr<const JobOutput> output) {
  const JobId id = next_id_++;
  auto rec = std::make_shared<Record>();
  rec->spec = spec;
  rec->hash = hash;
  rec->seq = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec->submit_ns = now_ns();
  rec->state = JobState::kCompleted;
  rec->from_cache = true;
  rec->output = std::move(output);
  rec->flight.note("cache_serve");
  jobs_.emplace(id, std::move(rec));
  accepted_->add();
  completed_->add();
  done_cv_.notify_all();
  return Submitted{id, Reject::kNone, true};
}

Server::Submitted Server::submit(const JobSpec& spec) {
  std::lock_guard lk(mu_);
  submits_->add();
  if (draining_) return rejected(Reject::kShuttingDown);
  if (!validate(spec).empty()) return rejected(Reject::kInvalidSpec);
  // The job would be accepted at tick() + 1; a deadline already at or
  // behind the current tick can never be met (docs/serving.md §2).
  if (spec.deadline != 0 &&
      ticks_.load(std::memory_order_relaxed) >= spec.deadline) {
    return rejected(Reject::kDeadlineExpired);
  }

  const std::uint64_t hash = spec_hash(spec);

  // Tier 1: the in-memory result cache.
  if (auto cached = cache_.lookup(hash); cached && serves(spec, *cached)) {
    return serve_completed(spec, hash, std::move(cached));
  }

  // Tier 2: an existing sharded store produced by this very spec. Any
  // defect (store deleted between probe and load, torn files) demotes to a
  // plain miss — the job just generates.
  if (!spec.store_dir.empty() && store_matches(spec.store_dir, spec)) {
    try {
      auto out = std::make_shared<JobOutput>();
      out->store_dir = spec.store_dir;
      out->total_edges = graph::load_manifest(spec.store_dir).total_edges();
      if (spec.sink == Sink::kGather) {
        // Shards concatenated in rank order == the gather order of a fresh
        // run, so a store serve is bitwise-identical to generating.
        out->edges = graph::load_all_shards(spec.store_dir);
      }
      store_hits_->add();
      cache_.insert(hash, out);
      return serve_completed(spec, hash, std::move(out));
    } catch (const CheckError&) {
    }
  }

  if (queue_.full()) return rejected(Reject::kQueueFull);

  const JobId id = next_id_++;
  auto rec = std::make_shared<Record>();
  rec->spec = spec;
  rec->hash = hash;
  rec->seq = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec->submit_ns = now_ns();
  const bool pushed = queue_.push(id, spec.priority, rec->seq);
  PAGEN_CHECK_MSG(pushed, "queue rejected a push below capacity");
  rec->flight.note("queued", static_cast<std::int64_t>(queue_.size()));
  jobs_.emplace(id, std::move(rec));
  queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  accepted_->add();
  work_cv_.notify_one();
  return Submitted{id, Reject::kNone, false};
}

bool Server::serves(const JobSpec& spec, const JobOutput& out) {
  switch (spec.sink) {
    case Sink::kCount:
      return true;  // only the tallies are needed; any shape has them
    case Sink::kGather:
      return !out.edges.empty() || out.total_edges == 0;
    case Sink::kShardedStore:
      return out.store_dir == spec.store_dir;
  }
  return false;
}

void Server::worker_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || (!paused_ && !queue_.empty()); });
    if (stop_ && queue_.empty()) return;
    const JobId id = queue_.pop();
    if (id == kNoJob) continue;  // raced with another worker or a cancel
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    const std::shared_ptr<Record> rec = jobs_.at(id);
    rec->dispatch_ns = now_ns();
    rec->flight.note("dispatched", static_cast<std::int64_t>(queue_.size()));
    queue_wait_->observe(
        static_cast<std::uint64_t>(rec->dispatch_ns - rec->submit_ns));

    // Dispatch-time gates: a cancel that raced the pop, then the virtual
    // deadline — both terminal without ever spinning up ranks.
    if (rec->cancel.load(std::memory_order_relaxed)) {
      rec->state = JobState::kCancelled;
      rec->flight.note("cancelled");
      flight_incident(id, *rec, "cancelled at dispatch");
      cancelled_->add();
      done_cv_.notify_all();
      continue;
    }
    if (rec->spec.deadline != 0 &&
        ticks_.load(std::memory_order_relaxed) > rec->spec.deadline) {
      rec->state = JobState::kExpired;
      rec->flight.note("expired",
                       static_cast<std::int64_t>(rec->spec.deadline));
      flight_incident(id, *rec, "expired");
      expired_->add();
      done_cv_.notify_all();
      continue;
    }

    rec->state = JobState::kRunning;
    rec->flight.note("running");
    ++running_;
    running_gauge_->set(running_);
    lk.unlock();
    run_job(id, rec);
    lk.lock();
    --running_;
    running_gauge_->set(running_);
    done_cv_.notify_all();
  }
}

void Server::run_job(JobId id, const std::shared_ptr<Record>& rec) {
  const JobSpec& spec = rec->spec;  // immutable once admitted
  core::ParallelOptions opt;
  opt.ranks = spec.ranks;
  opt.scheme = spec.scheme;
  opt.buffer_capacity = spec.buffer_capacity;
  opt.node_batch = spec.node_batch;
  opt.gather_edges = spec.sink == Sink::kGather;
  opt.keep_shards = spec.sink == Sink::kShardedStore;
  opt.cancel_requested = [rec] {
    return rec->cancel.load(std::memory_order_relaxed);
  };

  JobState final_state = JobState::kCompleted;
  std::string error;
  std::shared_ptr<JobOutput> out;
  try {
    core::ParallelResult result = core::generate(spec.config, opt);
    out = std::make_shared<JobOutput>();
    out->edges = std::move(result.edges);
    out->targets = std::move(result.targets);
    out->total_edges = result.total_edges;
    if (spec.sink == Sink::kShardedStore) {
      graph::save_sharded(spec.store_dir, spec.config.n, result.shards);
      write_store_marker(spec.store_dir, rec->hash);
      out->store_dir = spec.store_dir;
    }
  } catch (const core::Cancelled&) {
    final_state = JobState::kCancelled;
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = e.what();
  }

  std::lock_guard lk(mu_);
  const std::int64_t end_ns = now_ns();
  rec->state = final_state;
  rec->error = std::move(error);
  run_ns_->observe(static_cast<std::uint64_t>(end_ns - rec->dispatch_ns));
  switch (final_state) {
    case JobState::kCompleted:
      rec->output = std::move(out);
      cache_.insert(rec->hash, rec->output);
      rec->flight.note("completed");
      completed_->add();
      latency_->observe(static_cast<std::uint64_t>(end_ns - rec->submit_ns));
      break;
    case JobState::kCancelled:
      rec->flight.note("cancelled");
      flight_incident(id, *rec, "cancelled while running");
      cancelled_->add();
      break;
    default:
      rec->flight.note("failed");
      flight_incident(id, *rec, "failed");
      failed_->add();
      break;
  }
  done_cv_.notify_all();
}

JobStatus Server::poll(JobId id) const {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  PAGEN_CHECK_MSG(it != jobs_.end(), "poll of unknown job " << id);
  const Record& rec = *it->second;
  JobStatus status;
  status.state = rec.state;
  status.from_cache = rec.from_cache;
  status.error = rec.error;
  status.output = rec.output;
  return status;
}

bool Server::cancel(JobId id) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  PAGEN_CHECK_MSG(it != jobs_.end(), "cancel of unknown job " << id);
  Record& rec = *it->second;
  if (terminal(rec.state)) return false;
  rec.cancel.store(true, std::memory_order_relaxed);
  rec.flight.note("cancel_requested");
  if (rec.state == JobState::kQueued) {
    queue_.remove(id);
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    rec.state = JobState::kCancelled;
    rec.flight.note("cancelled");
    flight_incident(id, rec, "cancelled while queued");
    cancelled_->add();
    done_cv_.notify_all();
  }
  // kRunning: the flag is set; the job's ranks observe it at their next
  // phase-boundary poll and unwind (docs/serving.md §4). If generation
  // completes before any rank polls, the job finishes kCompleted — the
  // output is valid and the cancel was simply too late.
  return true;
}

JobStatus Server::wait(JobId id) {
  std::unique_lock lk(mu_);
  const auto it = jobs_.find(id);
  PAGEN_CHECK_MSG(it != jobs_.end(), "wait on unknown job " << id);
  const std::shared_ptr<Record> rec = it->second;
  done_cv_.wait(lk, [&] { return terminal(rec->state); });
  JobStatus status;
  status.state = rec->state;
  status.from_cache = rec->from_cache;
  status.error = rec->error;
  status.output = rec->output;
  return status;
}

void Server::resume() {
  std::lock_guard lk(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

void Server::shutdown(bool drain) {
  std::unique_lock lk(mu_);
  if (draining_) {  // a shutdown is (or was) already in flight
    done_cv_.wait(lk, [&] { return joined_; });
    return;
  }
  draining_ = true;  // admission closed from here on
  paused_ = false;   // a paused queue must still drain (or be cancelled)
  if (!drain) {
    for (JobId id = queue_.pop(); id != kNoJob; id = queue_.pop()) {
      Record& rec = *jobs_.at(id);
      rec.cancel.store(true, std::memory_order_relaxed);
      rec.state = JobState::kCancelled;
      rec.flight.note("cancelled");
      flight_incident(id, rec, "cancelled at shutdown");
      cancelled_->add();
    }
    queue_depth_->set(0);
    for (auto& entry : jobs_) {
      if (entry.second->state == JobState::kRunning) {
        entry.second->cancel.store(true, std::memory_order_relaxed);
      }
    }
    done_cv_.notify_all();
  }
  work_cv_.notify_all();
  done_cv_.wait(lk, [&] { return queue_.empty() && running_ == 0; });
  stop_ = true;
  lk.unlock();
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  lk.lock();
  joined_ = true;
  done_cv_.notify_all();
}

ServerStats Server::stats() const {
  std::lock_guard lk(mu_);
  ServerStats s;
  s.submits = submits_->value();
  s.accepted = accepted_->value();
  s.rejected = rejects_all_->value();
  s.completed = completed_->value();
  s.cancelled = cancelled_->value();
  s.expired = expired_->value();
  s.failed = failed_->value();
  s.cache_hits = cache_.hits();
  s.cache_store_hits = store_hits_->value();
  s.cache_misses = cache_.misses();
  s.queue_depth = queue_.size();
  s.running = running_;
  return s;
}

void Server::write_metrics(std::ostream& os) const {
  std::lock_guard lk(mu_);
  obs::write_metrics_json(os, {&metrics_});
}

void Server::write_prometheus(std::ostream& os) const {
  std::lock_guard lk(mu_);
  obs::write_prometheus(os, metrics_);
}

std::vector<std::string> Server::incidents() const {
  std::lock_guard lk(mu_);
  return {incidents_.begin(), incidents_.end()};
}

}  // namespace pagen::svc
