#include "svc/server.h"

#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/engine/engine.h"
#include "core/generate.h"
#include "graph/sharded_io.h"
#include "graph/varint_io.h"
#include "obs/prom.h"
#include "store/edge_writer.h"
#include "store/graph_view.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::svc {

Server::Server(ServerOptions options)
    : options_(options),
      queue_(options.queue_capacity),
      cache_(options.cache_entries),
      breaker_(options.breaker_threshold, options.breaker_cooldown),
      paused_(options.start_paused),
      submits_(&metrics_.counter("svc.submits")),
      accepted_(&metrics_.counter("svc.accepted")),
      rejects_all_(&metrics_.counter("svc.rejects")),
      rejects_queue_full_(&metrics_.counter("svc.rejects_queue_full")),
      rejects_shutting_down_(&metrics_.counter("svc.rejects_shutting_down")),
      rejects_invalid_(&metrics_.counter("svc.rejects_invalid_spec")),
      rejects_deadline_(&metrics_.counter("svc.rejects_deadline_expired")),
      rejects_circuit_(&metrics_.counter("svc.rejects_circuit_open")),
      completed_(&metrics_.counter("svc.completed")),
      cancelled_(&metrics_.counter("svc.cancelled")),
      expired_(&metrics_.counter("svc.expired")),
      failed_(&metrics_.counter("svc.failed")),
      shed_(&metrics_.counter("svc.shed")),
      retries_(&metrics_.counter("svc.retries")),
      resumed_(&metrics_.counter("svc.resumed")),
      store_quarantined_(&metrics_.counter("svc.store_quarantined")),
      ckpt_quarantined_(&metrics_.counter("svc.ckpt_quarantined")),
      store_hits_(&metrics_.counter("svc.cache_store_hits")),
      queue_depth_(&metrics_.gauge("svc.queue_depth")),
      running_gauge_(&metrics_.gauge("svc.running")),
      latency_(&metrics_.histogram("svc.job_latency_ns")),
      queue_wait_(&metrics_.histogram("svc.queue_wait_ns")),
      run_ns_(&metrics_.histogram("svc.run_ns")) {
  PAGEN_CHECK_MSG(options.workers >= 1, "server needs workers >= 1");
  cache_.bind_metrics(&metrics_.counter("svc.cache_hits"),
                      &metrics_.counter("svc.cache_misses"),
                      &metrics_.counter("svc.cache_evictions"));
  workers_.reserve(static_cast<std::size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(false); }

namespace {

const char* reject_name(Reject why) {
  switch (why) {
    case Reject::kQueueFull:
      return "queue_full";
    case Reject::kShuttingDown:
      return "shutting_down";
    case Reject::kInvalidSpec:
      return "invalid_spec";
    case Reject::kDeadlineExpired:
      return "deadline_expired";
    case Reject::kCircuitOpen:
      return "circuit_open";
    case Reject::kNone:
      break;
  }
  return "none";
}

// Chaos decision salts (FaultPlan::svc_roll): one domain per fault kind so
// the three decisions of one (job, attempt) are independent.
constexpr std::uint64_t kSaltJobfail = 0x6a6f626661696cULL;    // "jobfail"
constexpr std::uint64_t kSaltStoreCorrupt = 0x73746f7265ULL;   // "store"
constexpr std::uint64_t kSaltCkptCorrupt = 0x636b7074ULL;      // "ckpt"

/// Deterministically flip one byte in the middle of `path` (the chaos
/// corruption primitive). No-op when the file is missing or empty.
void flip_byte_in_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  if (!graph::try_load_bytes(path, bytes) || bytes.empty()) return;
  bytes[bytes.size() / 2] ^= 0x01U;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.is_open()) return;
  os.write(  // pagen-lint: allow(store-format) — chaos corrupts raw bytes
      reinterpret_cast<const char*>(bytes.data()),
      static_cast<std::streamsize>(bytes.size()));
}

/// Like flip_byte_in_file, but a missing/empty target gets a torn garbage
/// file planted instead — the write-interrupted-at-crash failure mode. The
/// rank's checkpoint schedule depends on thread interleaving, so a corrupt
/// checkpoint chaos decision must not silently no-op just because that
/// rank had not checkpointed yet; either way the verify-on-read pass sees
/// an unreadable file and quarantines it.
void rot_checkpoint_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  if (graph::try_load_bytes(path, bytes) && !bytes.empty()) {
    flip_byte_in_file(path);
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.is_open()) return;
  const char torn[] = "pagnckp2 torn write";
  os.write(torn, sizeof(torn) - 1);  // pagen-lint: allow(store-format)
}

}  // namespace

void Server::push_incident(std::string line) {
  incidents_.push_back(std::move(line));
  while (incidents_.size() > kMaxIncidents) incidents_.pop_front();
}

void Server::flight_incident(JobId id, const Record& rec, const char* why) {
  std::ostringstream os;
  os << "job " << id << " " << why << ": " << rec.flight.dump();
  push_incident(os.str());
}

Server::Submitted Server::rejected(Reject why) {
  rejects_all_->add();
  switch (why) {
    case Reject::kQueueFull:
      rejects_queue_full_->add();
      break;
    case Reject::kShuttingDown:
      rejects_shutting_down_->add();
      break;
    case Reject::kInvalidSpec:
      rejects_invalid_->add();
      break;
    case Reject::kDeadlineExpired:
      rejects_deadline_->add();
      break;
    case Reject::kCircuitOpen:
      rejects_circuit_->add();
      break;
    case Reject::kNone:
      break;
  }
  std::ostringstream os;
  os << "submit rejected: " << reject_name(why) << " (tick "
     << ticks_.load(std::memory_order_relaxed) << ", queue depth "
     << queue_.size() << ")";
  push_incident(os.str());
  return Submitted{kNoJob, why, false};
}

Server::Submitted Server::serve_completed(
    const JobSpec& spec, std::uint64_t hash,
    std::shared_ptr<const JobOutput> output) {
  const JobId id = next_id_++;
  auto rec = std::make_shared<Record>();
  rec->spec = spec;
  rec->hash = hash;
  rec->seq = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec->submit_ns = now_ns();
  rec->state = JobState::kCompleted;
  rec->from_cache = true;
  rec->output = std::move(output);
  rec->flight.note("cache_serve");
  jobs_.emplace(id, std::move(rec));
  accepted_->add();
  completed_->add();
  done_cv_.notify_all();
  return Submitted{id, Reject::kNone, true};
}

Server::Submitted Server::submit(const JobSpec& spec) {
  std::lock_guard lk(mu_);
  submits_->add();
  if (draining_) return rejected(Reject::kShuttingDown);
  if (!validate(spec).empty()) return rejected(Reject::kInvalidSpec);
  // The job would be accepted at tick() + 1; a deadline already at or
  // behind the current tick can never be met (docs/serving.md §2).
  if (spec.deadline != 0 &&
      ticks_.load(std::memory_order_relaxed) >= spec.deadline) {
    return rejected(Reject::kDeadlineExpired);
  }

  const std::uint64_t hash = spec_hash(spec);

  // Tier 1: the in-memory result cache.
  if (auto cached = cache_.lookup(hash); cached && serves(spec, *cached)) {
    return serve_completed(spec, hash, std::move(cached));
  }

  // Tier 2: an existing sharded store produced by this very spec,
  // verify-on-read. A verified match serves from disk; a *corrupt* store
  // (the marker claims this spec but the content fails its checksums) is
  // quarantined and the job regenerates — poison is never served. Any
  // other defect is a plain miss.
  if (!spec.store_dir.empty()) {
    const StoreProbe probe = probe_store(spec.store_dir, spec);
    if (probe.corrupt) {
      quarantine_store(spec.store_dir);
      store_quarantined_->add();
      std::ostringstream os;
      os << "store " << spec.store_dir << " quarantined: " << probe.detail;
      push_incident(os.str());
    } else if (probe.match) {
      try {
        auto out = std::make_shared<JobOutput>();
        out->store_dir = spec.store_dir;
        if (probe.compressed) {
          const store::ShardedGraphView view(spec.store_dir);
          out->total_edges = view.manifest().total_edges();
          if (spec.sink == Sink::kGather) {
            // Shards decoded in rank order == the gather order of a fresh
            // run, so a compressed-store serve is bitwise-identical.
            out->edges.reserve(out->total_edges);
            for (int r = 0; r < view.manifest().num_shards; ++r) {
              const graph::EdgeList shard = view.load_shard(r);
              out->edges.insert(out->edges.end(), shard.begin(), shard.end());
            }
          }
        } else {
          out->total_edges = graph::load_manifest(spec.store_dir).total_edges();
          if (spec.sink == Sink::kGather) {
            // Shards concatenated in rank order == the gather order of a
            // fresh run, so a store serve is bitwise-identical to generating.
            out->edges = graph::load_all_shards(spec.store_dir);
          }
        }
        store_hits_->add();
        cache_.insert(hash, out);
        return serve_completed(spec, hash, std::move(out));
      } catch (const CheckError&) {
      }
    }
  }

  // The per-spec circuit breaker: a spec that failed its last k jobs
  // fast-fails instead of burning worker time on a known-bad workload.
  if (!breaker_.allow(hash, ticks_.load(std::memory_order_relaxed))) {
    Submitted s = rejected(Reject::kCircuitOpen);
    s.retry_after = options_.breaker_cooldown;
    return s;
  }

  // Overload ladder (docs/robustness.md §6): at capacity, first try to
  // shed the least important queued job — strictly lower priority only, so
  // load never sheds equals — and admit the newcomer in its place; only
  // when everyone queued is at least as important does the submit get a
  // kQueueFull reject, with a retry-after hint in admission ticks.
  if (queue_.full()) {
    const JobId victim = queue_.shed_below(spec.priority);
    if (victim == kNoJob) {
      Submitted s = rejected(Reject::kQueueFull);
      s.retry_after = queue_.size();
      return s;
    }
    Record& v = *jobs_.at(victim);
    v.state = JobState::kShed;
    v.flight.note("shed", static_cast<std::int64_t>(spec.priority));
    flight_incident(victim, v, "shed for higher-priority arrival");
    shed_->add();
    done_cv_.notify_all();
  }

  const JobId id = next_id_++;
  auto rec = std::make_shared<Record>();
  rec->spec = spec;
  rec->hash = hash;
  rec->seq = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec->submit_ns = now_ns();
  const bool pushed = queue_.push(id, spec.priority, rec->seq);
  PAGEN_CHECK_MSG(pushed, "queue rejected a push below capacity");
  rec->flight.note("queued", static_cast<std::int64_t>(queue_.size()));
  jobs_.emplace(id, std::move(rec));
  queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  accepted_->add();
  ++retry_clock_;  // accepts advance the virtual retry clock
  work_cv_.notify_one();
  return Submitted{id, Reject::kNone, false};
}

bool Server::serves(const JobSpec& spec, const JobOutput& out) {
  switch (spec.sink) {
    case Sink::kCount:
      return true;  // only the tallies are needed; any shape has them
    case Sink::kGather:
      return !out.edges.empty() || out.total_edges == 0;
    case Sink::kShardedStore:
    case Sink::kCompressedStore:
      return out.store_dir == spec.store_dir;
  }
  return false;
}

bool Server::dispatchable() {
  if (queue_.empty()) return false;
  if (queue_.peek(retry_clock_) != kNoJob) return true;
  if (running_ == 0) {
    // Every queued entry is in retry backoff and nothing is running:
    // fast-forward the virtual clock to the earliest eligible tick.
    // Virtual time costs nothing, so an idle server never waits out a
    // backoff on wall clock — backoff only orders retries relative to
    // competing work.
    const std::uint64_t ready = queue_.earliest_ready();
    if (ready > retry_clock_ && ready != JobQueue::kAnyTick) {
      retry_clock_ = ready;
    }
    return queue_.peek(retry_clock_) != kNoJob;
  }
  return false;
}

void Server::worker_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || (!paused_ && dispatchable()); });
    if (stop_ && queue_.empty()) return;
    const JobId id = queue_.pop(retry_clock_);
    if (id == kNoJob) continue;  // raced with another worker or a cancel
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    const std::shared_ptr<Record> rec = jobs_.at(id);
    rec->dispatch_ns = now_ns();
    rec->flight.note("dispatched", static_cast<std::int64_t>(queue_.size()));
    queue_wait_->observe(
        static_cast<std::uint64_t>(rec->dispatch_ns - rec->submit_ns));

    // Dispatch-time gates: a cancel that raced the pop, then the virtual
    // deadline — both terminal without ever spinning up ranks.
    if (rec->cancel.load(std::memory_order_relaxed)) {
      rec->state = JobState::kCancelled;
      rec->flight.note("cancelled");
      flight_incident(id, *rec, "cancelled at dispatch");
      cancelled_->add();
      done_cv_.notify_all();
      continue;
    }
    if (rec->spec.deadline != 0 &&
        ticks_.load(std::memory_order_relaxed) > rec->spec.deadline) {
      rec->state = JobState::kExpired;
      rec->flight.note("expired",
                       static_cast<std::int64_t>(rec->spec.deadline));
      flight_incident(id, *rec, "expired");
      expired_->add();
      done_cv_.notify_all();
      continue;
    }

    rec->state = JobState::kRunning;
    ++rec->attempts;
    rec->flight.note("running", rec->attempts);
    ++running_;
    running_gauge_->set(running_);
    lk.unlock();
    run_job(id, rec);
    lk.lock();
    --running_;
    running_gauge_->set(running_);
    done_cv_.notify_all();
    // Idle workers re-evaluate the fast-forward rule now that running_
    // dropped (a pure-backoff backlog may have become dispatchable).
    work_cv_.notify_all();
  }
}

std::string Server::job_checkpoint_dir(JobId id) const {
  if (options_.checkpoint_root.empty()) return {};
  return options_.checkpoint_root + "/job-" + std::to_string(id);
}

void Server::quarantine_bad_checkpoints(JobId id, const std::string& dir,
                                        int ranks) {
  for (int r = 0; r < ranks; ++r) {
    core::RankCheckpoint ck;
    try {
      (void)core::load_checkpoint(dir, r, ck);
    } catch (const CheckError& e) {
      const std::string path = core::checkpoint_path(dir, r);
      quarantine_file(path);
      std::lock_guard lk(mu_);
      ckpt_quarantined_->add();
      std::ostringstream os;
      os << "job " << id << " checkpoint rank " << r
         << " quarantined: " << e.what();
      push_incident(os.str());
      // That rank cold-starts its slice; the others still resume.
    }
  }
}

void Server::run_job(JobId id, const std::shared_ptr<Record>& rec) {
  const JobSpec& spec = rec->spec;  // immutable once admitted
  const std::uint32_t attempt = rec->attempts;  // bumped at dispatch
  core::ParallelOptions opt;
  opt.engine = spec.engine;
  opt.ranks = spec.ranks;
  opt.scheme = spec.scheme;
  opt.buffer_capacity = spec.buffer_capacity;
  opt.node_batch = spec.node_batch;
  opt.gather_edges = spec.sink == Sink::kGather;
  opt.keep_shards = spec.sink == Sink::kShardedStore;
  if (spec.sink == Sink::kCompressedStore) {
    // Edges stream from the sink straight into the compressed store —
    // no gather, no kept shards, regardless of graph size.
    opt.store_dir = spec.store_dir;
  }
  opt.fault_plan = spec.fault_plan;
  opt.reliable = spec.reliable;
  opt.max_respawns = spec.max_respawns;
  opt.rto_base_ms = spec.rto_base_ms;
  opt.rto_max_ms = spec.rto_max_ms;
  opt.cancel_requested = [rec] {
    return rec->cancel.load(std::memory_order_relaxed);
  };

  // Per-job checkpointing: attempt 1 starts clean (job ids recycle across
  // server lifetimes, so a stale directory must never alias); retries
  // resume from whatever the failed attempts checkpointed, after
  // quarantining any file that no longer verifies (a corrupt checkpoint
  // degrades that rank to a cold start, never to restored garbage).
  // Capability gating: an engine without checkpoint support would reject a
  // wired checkpoint_dir at generate(), so its jobs degrade gracefully —
  // every retry attempt regenerates from scratch (spec.engine was validated
  // at submit, so the lookup cannot miss).
  // kCompressedStore additionally opts out: generate() rejects store_dir +
  // resume (restored edges would re-enter the store), so its retries are
  // cold starts by design.
  const core::Engine* engine = core::EngineRegistry::instance().find(spec.engine);
  const bool can_checkpoint = engine != nullptr &&
                              engine->capabilities().checkpointing &&
                              spec.sink != Sink::kCompressedStore;
  const std::string ckpt_dir =
      can_checkpoint ? job_checkpoint_dir(id) : std::string{};
  if (!ckpt_dir.empty()) {
    if (attempt == 1) {
      std::error_code ec;
      std::filesystem::remove_all(ckpt_dir, ec);
    } else {
      quarantine_bad_checkpoints(id, ckpt_dir, spec.ranks);
    }
    opt.checkpoint_dir = ckpt_dir;
    opt.checkpoint_every = options_.checkpoint_every;
    opt.resume = attempt > 1;
  }

  // Service-scope chaos: a jobfail decision for this (job, attempt) plants
  // a sink that throws midway through the run — the "sink I/O error"
  // failure mode, after enough progress that checkpoints exist to resume
  // from. Pure in (chaos seed, id, attempt): replayable, schedule-free.
  const mps::FaultPlan& chaos = options_.chaos;
  if (chaos.jobfail > 0.0 && attempt <= chaos.jobfail_attempts &&
      chaos.svc_roll(kSaltJobfail, id, attempt) < chaos.jobfail) {
    const Count limit = expected_edge_count(spec.config) / 2 + 1;
    auto emitted = std::make_shared<std::atomic<Count>>(0);
    opt.edge_sink = [emitted, limit](Rank, const graph::Edge&) {
      if (emitted->fetch_add(1, std::memory_order_relaxed) + 1 >= limit) {
        throw CheckError("injected jobfail: sink failure");
      }
    };
  }

  JobState final_state = JobState::kCompleted;
  Count restored = 0;
  std::string error;
  std::shared_ptr<JobOutput> out;
  try {
    core::ParallelResult result = core::generate(spec.config, opt);
    restored = result.restored_slots;
    out = std::make_shared<JobOutput>();
    out->edges = std::move(result.edges);
    out->targets = std::move(result.targets);
    out->total_edges = result.total_edges;
    if (spec.sink == Sink::kShardedStore) {
      graph::save_sharded(spec.store_dir, spec.config.n, result.shards);
      write_store_marker(spec.store_dir, rec->hash);
      out->store_dir = spec.store_dir;
      if (chaos.storecorrupt > 0.0 &&
          chaos.svc_roll(kSaltStoreCorrupt, id, attempt) <
              chaos.storecorrupt) {
        // Rot a shard *after* the marker sealed the store: the next probe
        // must catch the mismatch and quarantine instead of serving it.
        flip_byte_in_file(graph::shard_path(
            spec.store_dir, static_cast<int>(id % static_cast<JobId>(
                                                      spec.ranks))));
      }
    } else if (spec.sink == Sink::kCompressedStore) {
      // generate() already streamed the edges into the store and sealed
      // the v3 manifest; the marker (auto-detected as v3) seals provenance.
      write_store_marker(spec.store_dir, rec->hash);
      out->store_dir = spec.store_dir;
      if (chaos.storecorrupt > 0.0 &&
          chaos.svc_roll(kSaltStoreCorrupt, id, attempt) <
              chaos.storecorrupt) {
        flip_byte_in_file(store::shard_path(
            spec.store_dir, static_cast<int>(id % static_cast<JobId>(
                                                      spec.ranks))));
      }
    }
  } catch (const core::Cancelled&) {
    final_state = JobState::kCancelled;
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = e.what();
  }

  if (final_state == JobState::kFailed && !ckpt_dir.empty() &&
      chaos.ckptcorrupt > 0.0 &&
      chaos.svc_roll(kSaltCkptCorrupt, id, attempt) < chaos.ckptcorrupt) {
    // Rot one checkpoint between the failed attempt and its retry: the
    // pre-resume integrity pass must quarantine it.
    rot_checkpoint_file(core::checkpoint_path(
        ckpt_dir,
        static_cast<Rank>(id % static_cast<JobId>(spec.ranks))));
  }

  std::unique_lock lk(mu_);
  const std::int64_t end_ns = now_ns();
  rec->error = std::move(error);
  run_ns_->observe(static_cast<std::uint64_t>(end_ns - rec->dispatch_ns));
  if (restored > 0 && attempt > 1) {
    rec->resumed = true;
    rec->flight.note("resumed", static_cast<std::int64_t>(restored));
    resumed_->add();
  }

  // A failed attempt with budget left is not terminal: record it, requeue
  // with deterministic capped-exponential backoff on the virtual retry
  // clock, and let a worker re-dispatch (resuming from the checkpoints).
  // A cancel observed during the attempt wins over the retry.
  if (final_state == JobState::kFailed &&
      attempt < spec.max_attempts &&
      !rec->cancel.load(std::memory_order_relaxed) && !stop_) {
    const std::uint64_t delay =
        backoff_ticks(attempt, options_.backoff_base, options_.backoff_cap);
    rec->state = JobState::kQueued;
    rec->flight.note("attempt_failed", attempt);
    rec->flight.note("retry_backoff", static_cast<std::int64_t>(delay));
    retries_->add();
    const bool pushed = queue_.push(id, spec.priority, rec->seq,
                                    retry_clock_ + delay, /*force=*/true);
    PAGEN_CHECK_MSG(pushed, "retry requeue failed");
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    std::ostringstream os;
    os << "job " << id << " attempt " << attempt << "/" << spec.max_attempts
       << " failed (" << rec->error << "); retrying after " << delay
       << " ticks";
    push_incident(os.str());
    lk.unlock();
    work_cv_.notify_all();
    return;
  }

  rec->state = final_state;
  switch (final_state) {
    case JobState::kCompleted:
      rec->output = std::move(out);
      cache_.insert(rec->hash, rec->output);
      rec->flight.note("completed");
      completed_->add();
      breaker_.on_success(rec->hash);
      latency_->observe(static_cast<std::uint64_t>(end_ns - rec->submit_ns));
      break;
    case JobState::kCancelled:
      rec->flight.note("cancelled");
      flight_incident(id, *rec, "cancelled while running");
      cancelled_->add();
      break;
    default:
      rec->flight.note("failed", attempt);
      flight_incident(id, *rec, "failed");
      failed_->add();
      breaker_.on_failure(rec->hash, ticks_.load(std::memory_order_relaxed));
      break;
  }
  ++retry_clock_;  // terminal jobs advance the virtual retry clock
  if (!ckpt_dir.empty() && final_state != JobState::kCancelled) {
    // The job is settled; its checkpoints have no future. (A cancelled
    // job keeps them only until the id is reused — attempt 1 wipes.)
    lk.unlock();
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir, ec);
    lk.lock();
  }
  done_cv_.notify_all();
}

JobStatus Server::poll(JobId id) const {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  PAGEN_CHECK_MSG(it != jobs_.end(), "poll of unknown job " << id);
  const Record& rec = *it->second;
  JobStatus status;
  status.state = rec.state;
  status.from_cache = rec.from_cache;
  status.attempts = rec.attempts;
  status.resumed = rec.resumed;
  status.error = rec.error;
  status.output = rec.output;
  return status;
}

bool Server::cancel(JobId id) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  PAGEN_CHECK_MSG(it != jobs_.end(), "cancel of unknown job " << id);
  Record& rec = *it->second;
  if (terminal(rec.state)) return false;
  rec.cancel.store(true, std::memory_order_relaxed);
  rec.flight.note("cancel_requested");
  if (rec.state == JobState::kQueued) {
    queue_.remove(id);
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    rec.state = JobState::kCancelled;
    rec.flight.note("cancelled");
    flight_incident(id, rec, "cancelled while queued");
    cancelled_->add();
    done_cv_.notify_all();
  }
  // kRunning: the flag is set; the job's ranks observe it at their next
  // phase-boundary poll and unwind (docs/serving.md §4). If generation
  // completes before any rank polls, the job finishes kCompleted — the
  // output is valid and the cancel was simply too late.
  return true;
}

JobStatus Server::wait(JobId id) {
  std::unique_lock lk(mu_);
  const auto it = jobs_.find(id);
  PAGEN_CHECK_MSG(it != jobs_.end(), "wait on unknown job " << id);
  const std::shared_ptr<Record> rec = it->second;
  done_cv_.wait(lk, [&] { return terminal(rec->state); });
  JobStatus status;
  status.state = rec->state;
  status.from_cache = rec->from_cache;
  status.attempts = rec->attempts;
  status.resumed = rec->resumed;
  status.error = rec->error;
  status.output = rec->output;
  return status;
}

void Server::resume() {
  std::lock_guard lk(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

void Server::shutdown(bool drain) {
  std::unique_lock lk(mu_);
  if (draining_) {  // a shutdown is (or was) already in flight
    done_cv_.wait(lk, [&] { return joined_; });
    return;
  }
  draining_ = true;  // admission closed from here on
  paused_ = false;   // a paused queue must still drain (or be cancelled)
  if (!drain) {
    for (JobId id = queue_.pop(); id != kNoJob; id = queue_.pop()) {
      Record& rec = *jobs_.at(id);
      rec.cancel.store(true, std::memory_order_relaxed);
      rec.state = JobState::kCancelled;
      rec.flight.note("cancelled");
      flight_incident(id, rec, "cancelled at shutdown");
      cancelled_->add();
    }
    queue_depth_->set(0);
    for (auto& entry : jobs_) {
      if (entry.second->state == JobState::kRunning) {
        entry.second->cancel.store(true, std::memory_order_relaxed);
      }
    }
    done_cv_.notify_all();
  }
  work_cv_.notify_all();
  done_cv_.wait(lk, [&] { return queue_.empty() && running_ == 0; });
  stop_ = true;
  lk.unlock();
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  lk.lock();
  joined_ = true;
  done_cv_.notify_all();
}

ServerStats Server::stats() const {
  std::lock_guard lk(mu_);
  ServerStats s;
  s.submits = submits_->value();
  s.accepted = accepted_->value();
  s.rejected = rejects_all_->value();
  s.completed = completed_->value();
  s.cancelled = cancelled_->value();
  s.expired = expired_->value();
  s.failed = failed_->value();
  s.shed = shed_->value();
  s.retries = retries_->value();
  s.resumed = resumed_->value();
  s.circuit_open_rejects = rejects_circuit_->value();
  s.quarantined_stores = store_quarantined_->value();
  s.quarantined_checkpoints = ckpt_quarantined_->value();
  s.cache_hits = cache_.hits();
  s.cache_store_hits = store_hits_->value();
  s.cache_misses = cache_.misses();
  s.queue_depth = queue_.size();
  s.running = running_;
  return s;
}

void Server::write_metrics(std::ostream& os) const {
  std::lock_guard lk(mu_);
  obs::write_metrics_json(os, {&metrics_});
}

void Server::write_prometheus(std::ostream& os) const {
  std::lock_guard lk(mu_);
  obs::write_prometheus(os, metrics_);
}

std::vector<std::string> Server::incidents() const {
  std::lock_guard lk(mu_);
  return {incidents_.begin(), incidents_.end()};
}

}  // namespace pagen::svc
