// svc layer 2 — the bounded priority job queue.
//
// pagen-lint: no-wallclock — dispatch order is a pure function of the
// submit history (docs/serving.md); no wall-clock reads in here.
//
// Pure scheduling state, externally synchronized (the Server guards it with
// its mutex; the unit tests drive it single-threaded). Ordering is total
// and wall-clock free: higher priority first, FIFO by admission sequence
// within a priority — so the dispatch order is a deterministic function of
// the submit history. The bound is the admission-control backpressure
// valve: push() refuses at capacity and the Server translates that into
// Reject::kQueueFull instead of buffering unboundedly.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "svc/job.h"

namespace pagen::svc {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] bool full() const { return ids_.size() >= capacity_; }

  /// Admit a job. False (and no state change) when full; `seq` must be
  /// unique across the queue's lifetime (the Server uses the job id).
  bool push(JobId id, std::uint32_t priority, std::uint64_t seq);

  /// Best queued job: highest priority, then lowest seq. kNoJob when empty.
  [[nodiscard]] JobId peek() const;

  /// Remove and return the best queued job; kNoJob when empty.
  JobId pop();

  /// Remove a specific job (a cancel of a queued job). False if absent.
  bool remove(JobId id);

 private:
  struct Entry {
    std::uint32_t priority = 0;
    std::uint64_t seq = 0;
    JobId id = kNoJob;

    /// std::set order = dispatch order: priority desc, then seq asc.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq < b.seq;
    }
  };

  std::size_t capacity_;
  std::set<Entry> order_;
  std::map<JobId, Entry> ids_;  ///< reverse index for remove(id)
};

}  // namespace pagen::svc
