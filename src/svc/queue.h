// svc layer 2 — the bounded priority job queue.
//
// pagen-lint: no-wallclock — dispatch order is a pure function of the
// submit history (docs/serving.md); no wall-clock reads in here.
//
// Pure scheduling state, externally synchronized (the Server guards it with
// its mutex; the unit tests drive it single-threaded). Ordering is total
// and wall-clock free: higher priority first, FIFO by admission sequence
// within a priority — so the dispatch order is a deterministic function of
// the submit history. The bound is the admission-control backpressure
// valve: push() refuses at capacity and the Server translates that into
// Reject::kQueueFull instead of buffering unboundedly — unless the ladder
// can shed a strictly lower-priority entry first (shed_below).
//
// Retry backoff rides on the same virtual clock as deadlines: an entry may
// carry a `not_before` tick and is invisible to peek/pop until the caller's
// `now` reaches it (docs/robustness.md §6). earliest_ready() lets an idle
// server fast-forward its retry clock instead of waiting on wall time.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <set>

#include "svc/job.h"

namespace pagen::svc {

class JobQueue {
 public:
  /// `now` value that makes every entry eligible (peek/pop default).
  static constexpr std::uint64_t kAnyTick =
      std::numeric_limits<std::uint64_t>::max();

  explicit JobQueue(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] bool full() const { return ids_.size() >= capacity_; }

  /// Admit a job. False (and no state change) when full; `seq` must be
  /// unique across the queue's lifetime (the Server uses the job id).
  /// `not_before` hides the entry from peek/pop until that virtual tick.
  /// `force` bypasses the capacity bound — the retry requeue path, which
  /// must never lose an already-admitted job to a momentarily full queue.
  bool push(JobId id, std::uint32_t priority, std::uint64_t seq,
            std::uint64_t not_before = 0, bool force = false);

  /// Best *eligible* queued job at virtual tick `now`: highest priority,
  /// then lowest seq, skipping entries still in backoff. kNoJob when none.
  [[nodiscard]] JobId peek(std::uint64_t now = kAnyTick) const;

  /// Remove and return the best eligible job; kNoJob when none.
  JobId pop(std::uint64_t now = kAnyTick);

  /// Remove a specific job (a cancel of a queued job). False if absent.
  bool remove(JobId id);

  /// Smallest `not_before` over all entries — the tick an idle server must
  /// fast-forward its retry clock to. kAnyTick when the queue is empty.
  [[nodiscard]] std::uint64_t earliest_ready() const;

  /// Load-shedding ladder, rung 1: evict the least important entry that is
  /// *strictly* below `priority` (the youngest among the lowest priority —
  /// most recently admitted, least invested). Returns its id, or kNoJob
  /// when every entry is at least as important as the newcomer.
  JobId shed_below(std::uint32_t priority);

 private:
  struct Entry {
    std::uint32_t priority = 0;
    std::uint64_t seq = 0;
    JobId id = kNoJob;
    std::uint64_t not_before = 0;

    /// std::set order = dispatch order: priority desc, then seq asc.
    /// (not_before is an eligibility filter, not an ordering key: a job in
    /// backoff keeps its place in line, it just cannot be dispatched yet.)
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq < b.seq;
    }
  };

  std::size_t capacity_;
  std::set<Entry> order_;
  std::map<JobId, Entry> ids_;  ///< reverse index for remove(id)
};

}  // namespace pagen::svc
