// svc layer 2b — retry backoff and the per-spec failure circuit breaker.
//
// pagen-lint: no-wallclock — every scheduling decision here is a pure
// function of virtual ticks (the Server's retry clock) and the failure
// history; no wall-clock reads, no sleeps (docs/robustness.md §6).
//
// Both pieces are plain deterministic state, externally synchronized by the
// Server's mutex (like JobQueue). backoff_ticks gives a failed attempt a
// capped exponential re-dispatch delay on the virtual clock; CircuitBreaker
// fast-fails submits of a spec that failed k consecutive attempts, closing
// again after a cooldown with one probationary attempt (half-open).
#pragma once

#include <cstdint>
#include <map>

namespace pagen::svc {

/// Virtual-tick delay before re-dispatching attempt `attempt` (1-based: the
/// attempt that just failed). Capped exponential: base, 2*base, 4*base, ...
/// up to `cap`. Deterministic — a retry schedule is a pure function of the
/// failure count, so a chaos run replays identically from its seed.
[[nodiscard]] inline std::uint64_t backoff_ticks(std::uint32_t attempt,
                                                 std::uint64_t base,
                                                 std::uint64_t cap) {
  if (base == 0) return 0;
  std::uint64_t d = base;
  for (std::uint32_t i = 1; i < attempt && d < cap; ++i) d *= 2;
  return d < cap ? d : cap;
}

/// Per-spec failure circuit breaker (keyed by spec_hash). After `threshold`
/// consecutive terminal failures of a spec, the circuit opens: submits of
/// that spec fast-fail (Reject::kCircuitOpen) until the virtual clock
/// passes the cooldown. The first submit after cooldown is probationary
/// (half-open): the breaker re-arms so one more failure reopens it
/// immediately, while a success resets the spec's history. threshold == 0
/// disables the breaker entirely.
class CircuitBreaker {
 public:
  CircuitBreaker(std::uint32_t threshold, std::uint64_t cooldown_ticks)
      : threshold_(threshold), cooldown_(cooldown_ticks) {}

  /// May a job of this spec be admitted at virtual tick `now`?
  [[nodiscard]] bool allow(std::uint64_t spec, std::uint64_t now) {
    if (threshold_ == 0) return true;
    const auto it = state_.find(spec);
    if (it == state_.end() || !it->second.open) return true;
    if (now < it->second.open_until) return false;
    // Cooldown elapsed: half-open. One probationary failure reopens.
    it->second.open = false;
    it->second.consecutive = threshold_ == 0 ? 0 : threshold_ - 1;
    return true;
  }

  /// A job of this spec failed terminally at tick `now`.
  void on_failure(std::uint64_t spec, std::uint64_t now) {
    if (threshold_ == 0) return;
    State& s = state_[spec];
    if (++s.consecutive >= threshold_) {
      s.open = true;
      s.open_until = now + cooldown_;
    }
  }

  /// A job of this spec completed: full reset of its failure history.
  void on_success(std::uint64_t spec) {
    if (threshold_ != 0) state_.erase(spec);
  }

  /// True when submits of this spec would currently fast-fail.
  [[nodiscard]] bool open(std::uint64_t spec, std::uint64_t now) const {
    const auto it = state_.find(spec);
    return it != state_.end() && it->second.open && now < it->second.open_until;
  }

 private:
  struct State {
    std::uint32_t consecutive = 0;
    bool open = false;
    std::uint64_t open_until = 0;
  };

  std::uint32_t threshold_;
  std::uint64_t cooldown_;
  std::map<std::uint64_t, State> state_;
};

}  // namespace pagen::svc
