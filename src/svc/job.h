// svc layer 1 — jobs: what a client asks the generation service to do.
//
// A JobSpec is one generation request: the PaConfig workload, the runtime
// knobs that shape the run (ranks, scheme, buffering), where the edges
// should go (Sink), and the scheduling attributes (priority, virtual-tick
// deadline). spec_hash() is the canonical identity of the *output* — it
// covers exactly the fields that determine which graph is generated, and
// deliberately excludes priority / deadline / sink routing, so a cached
// result can serve any repeat request for the same graph regardless of how
// it is scheduled or delivered. See docs/serving.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/pa_config.h"
#include "graph/edge_list.h"
#include "mps/fault.h"
#include "partition/partition.h"
#include "util/types.h"

namespace pagen::svc {

/// Opaque job ticket returned by Server::submit. 0 is never issued.
using JobId = std::uint64_t;
inline constexpr JobId kNoJob = 0;

/// Where a job's edges go.
enum class Sink : std::uint8_t {
  kCount,         ///< no edge storage: load statistics / warm-up runs
  kGather,        ///< edges (and the x = 1 targets row) in the JobOutput
  kShardedStore,  ///< per-rank shard files + manifest in store_dir
  /// Compressed block store (src/store/, docs/storage.md) in store_dir:
  /// edges stream straight from the generator's sink into delta+varint
  /// blocks, so the job never materializes its edges, and the result is
  /// re-loadable under a memory budget (store::ShardedGraphView). Sealed
  /// with a v3 marker; verified on probe like kShardedStore. Incompatible
  /// with crash-injection fault plans (re-emission would duplicate
  /// blocks); retries regenerate from scratch instead of resuming.
  kCompressedStore,
};

struct JobSpec {
  PaConfig config;

  // Runtime shape (the ParallelOptions subset a service client may set).
  /// Generation engine (core/engine/engine.h): "mps", "commfree",
  /// "seq-copy", "seq-bb". Part of spec_hash — engines are only
  /// distribution-equivalent, not bitwise-equivalent, so outputs of
  /// different engines are different cacheable identities. validate()
  /// rejects unknown names and capability mismatches at submit.
  std::string engine = "mps";
  int ranks = 4;
  partition::Scheme scheme = partition::Scheme::kRrp;
  std::size_t buffer_capacity = 256;
  std::size_t node_batch = 1024;

  // Delivery.
  Sink sink = Sink::kGather;
  /// Sharded-store directory. Required for Sink::kShardedStore; when set on
  /// any sink it is also probed for an existing matching store at submit
  /// (docs/serving.md §3). Give distinct specs distinct directories.
  std::string store_dir;

  // Scheduling (never part of spec_hash).
  std::uint32_t priority = 0;  ///< higher runs first; FIFO within a priority
  /// Virtual deadline: the job expires if it has not been dispatched by the
  /// time this many jobs have been accepted (Server's admission tick), and
  /// a running job past it is cancelled at the next hook poll. 0 = none.
  /// Virtual ticks keep every scheduling decision wall-clock free.
  std::uint64_t deadline = 0;

  // Robustness (never part of spec_hash — retries reproduce the same graph).
  /// Worker runs this job may consume before it fails terminally. Attempts
  /// beyond the first resume from the job's checkpoint directory (when the
  /// server has one) after a deterministic virtual-tick backoff.
  std::uint32_t max_attempts = 1;
  /// Per-job transport fault plan (tests/chaos; inert by default). Applied
  /// to the ParallelOptions of every attempt.
  mps::FaultPlan fault_plan;
  /// Route the run through the reliable-delivery layer even without faults.
  bool reliable = false;
  /// In-run rank respawn budget for scripted crashes (mps engine default
  /// 3). 0 turns a crash into an attempt-level failure, exercising the
  /// job retry path instead of the rank respawn path.
  int max_respawns = 3;
  /// Reliable-transport retransmission timeout, base and cap in ms
  /// (core::ParallelOptions defaults; only consulted on reliable runs).
  std::int64_t rto_base_ms = 25;
  std::int64_t rto_max_ms = 400;
};

/// Canonical FNV-1a identity of the graph a spec generates: config fields,
/// the engine, plus the runtime knobs that can shape x > 1 output (ranks,
/// scheme, buffering). Stable across processes and platforms; versioned by a
/// domain tag so the hash space can be rotated if the schema ever changes
/// (the engine field rotated it to '02).
[[nodiscard]] std::uint64_t spec_hash(const JobSpec& spec);

/// Spec admission check: empty string = admissible, otherwise the reason
/// (mirrors the PAGEN_CHECK preconditions of core::generate so an invalid
/// spec is rejected at submit instead of killing a worker).
[[nodiscard]] std::string validate(const JobSpec& spec);

enum class JobState : std::uint8_t {
  kQueued,     ///< admitted, waiting for a worker
  kRunning,    ///< a worker is generating
  kCompleted,  ///< terminal: output available
  kCancelled,  ///< terminal: cancelled before or during generation
  kExpired,    ///< terminal: virtual deadline passed before dispatch
  kFailed,     ///< terminal: generation threw on every attempt
  kShed,       ///< terminal: evicted from the queue to admit higher priority
};
[[nodiscard]] const char* to_string(JobState s);
[[nodiscard]] inline bool terminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

/// Admission verdicts (reject-with-reason backpressure, docs/serving.md §2).
enum class Reject : std::uint8_t {
  kNone,             ///< accepted
  kQueueFull,        ///< bounded queue at capacity: back off and retry
  kShuttingDown,     ///< server draining or stopped
  kInvalidSpec,      ///< validate() failed
  kDeadlineExpired,  ///< deadline already behind the admission tick
  kCircuitOpen,      ///< this spec failed k consecutive attempts: fast-fail
};
[[nodiscard]] const char* to_string(Reject r);

/// A completed job's product. Shared immutably between the job record, the
/// result cache, and every client that polled it.
struct JobOutput {
  /// Gathered edges in emission (rank-concatenation) order. Sink::kGather
  /// only; normalize before comparing across runs.
  graph::EdgeList edges;
  /// F_t per node (Sink::kGather with x == 1 on a fresh run; empty when the
  /// job was served from a sharded store, which persists only edges).
  std::vector<NodeId> targets;
  Count total_edges = 0;
  /// Directory of the sharded store this output lives in (kShardedStore
  /// jobs and store-served repeats).
  std::string store_dir;
};

/// Snapshot returned by Server::poll / wait.
struct JobStatus {
  JobState state = JobState::kQueued;
  /// Served from the result cache or an existing sharded store, without
  /// running the generators.
  bool from_cache = false;
  /// Worker runs consumed so far (0 for cache/store hits).
  std::uint32_t attempts = 0;
  /// A retry attempt restored at least one slot from the job's checkpoint —
  /// proof the job resumed prior progress instead of regenerating it.
  bool resumed = false;
  /// What() of the generation failure (kFailed only; the last attempt's).
  std::string error;
  /// Non-null exactly when state == kCompleted.
  std::shared_ptr<const JobOutput> output;
};

}  // namespace pagen::svc
